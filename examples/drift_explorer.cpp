// Drift explorer: renders the paper's *shift graph* (Section III) as ASCII —
// each batch becomes a point in 2-D PCA space, consecutive points are the
// shifts — and annotates every batch with the detector's pattern decision.
// Run it on any canned scenario, a scenario spec file, or a built-in
// dataset to see how slight / sudden / reoccurring shifts look through the
// detector's eyes.
//
// Build & run:  ./build/examples/drift_explorer [scenario|spec-file|dataset]
//   scenario: any name from `run_scenario --list` or a .scn file
//   dataset in {Hyperplane, SEA, Airlines, Covertype, NSL-KDD, Electricity}
//   (default: Electricity)

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/shift_detector.h"
#include "data/simulators.h"
#include "scenarios/scenario.h"
#include "scenarios/spec.h"

using namespace freeway;  // NOLINT — example code.

namespace {

/// Plots 2-D points labeled 'a', 'b', ... chronologically on a character
/// grid.
void PlotShiftGraph(const std::vector<std::vector<double>>& points) {
  if (points.empty()) return;
  double min_x = points[0][0], max_x = points[0][0];
  double min_y = points[0][1], max_y = points[0][1];
  for (const auto& p : points) {
    min_x = std::min(min_x, p[0]);
    max_x = std::max(max_x, p[0]);
    min_y = std::min(min_y, p[1]);
    max_y = std::max(max_y, p[1]);
  }
  const int width = 72, height = 20;
  std::vector<std::string> grid(height, std::string(width, ' '));
  const double span_x = std::max(max_x - min_x, 1e-9);
  const double span_y = std::max(max_y - min_y, 1e-9);
  for (size_t i = 0; i < points.size(); ++i) {
    const int col = static_cast<int>((points[i][0] - min_x) / span_x *
                                     (width - 1));
    const int row = static_cast<int>((points[i][1] - min_y) / span_y *
                                     (height - 1));
    grid[static_cast<size_t>(height - 1 - row)][static_cast<size_t>(col)] =
        static_cast<char>('a' + (i % 26));
  }
  for (const auto& line : grid) std::printf("|%s|\n", line.c_str());
}

/// A bare dataset name becomes a 70-batch immediate-label scenario, so the
/// explorer drives every stream — canned scenarios, spec files, and the
/// classic benchmark simulators — through one code path.
Result<ScenarioSpec> ResolveArgument(const std::string& argument) {
  Result<ScenarioSpec> spec = ResolveScenarioSpec(argument);
  if (spec.ok()) return spec;
  const auto& names = BenchmarkDatasetNames();
  if (std::find(names.begin(), names.end(), argument) == names.end()) {
    return spec;  // Neither scenario nor dataset — keep the scenario error.
  }
  ScenarioSpec dataset_spec;
  dataset_spec.name = argument;
  dataset_spec.dataset = argument;
  dataset_spec.num_batches = 70;
  dataset_spec.batch_size = 512;
  return dataset_spec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string argument = argc > 1 ? argv[1] : "Electricity";
  auto spec = ResolveArgument(argument);
  if (!spec.ok()) {
    std::printf("unknown scenario/dataset %s\n  scenarios:", argument.c_str());
    for (const auto& name : CannedScenarioNames()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n  datasets: ");
    for (const auto& name : BenchmarkDatasetNames()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    return 1;
  }
  auto scenario = GenerateScenario(*spec);
  scenario.status().CheckOk();

  // 2-D PCA reproduces the paper's visual shift graph.
  ShiftDetectorOptions options;
  options.pca_components = 2;
  ShiftDetector detector(options);

  std::printf("shift trace on %s (alpha = %.2f):\n\n", spec->name.c_str(),
              options.alpha);
  std::printf("batch  distance   M-score  d_h       pattern\n");

  std::vector<std::vector<double>> graph_points;
  for (size_t b = 0; b < scenario->batches.size(); ++b) {
    const Batch& batch = scenario->batches[b];
    Result<ShiftAssessment> shift = detector.Assess(batch.features);
    shift.status().CheckOk();
    if (shift->warmup) continue;
    graph_points.push_back(shift->representation);
    const bool severe = shift->pattern != ShiftPattern::kSlight;
    if (b % 6 == 0 || severe) {
      std::printf("%5zu  %8.4f  %8.2f  %8.4f  %s%s\n", b, shift->distance,
                  shift->m_score, shift->d_h,
                  ShiftPatternName(shift->pattern), severe ? "  <==" : "");
    }
  }

  std::printf("\nshift graph (letters are batches in chronological order, "
              "wrapping a..z):\n\n");
  PlotShiftGraph(graph_points);
  return 0;
}
