// Multi-stream serving demo: 8 concurrent producers (one per stream) feed
// a sharded StreamRuntime with mixed labeled/unlabeled Hyperplane traffic.
// Labeled batches train each shard's pipeline; unlabeled batches come back
// as inference results through the completion callback. The run ends with
// the per-shard stats snapshot — the counters a serving dashboard would
// scrape — and a second, deliberately undersized runtime that shows the
// load-shedding policy engaging under overload.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "eval/report.h"
#include "ml/models.h"
#include "obs/metrics.h"
#include "runtime/stream_runtime.h"

using namespace freeway;  // NOLINT — example driver.

namespace {

constexpr size_t kStreams = 8;
constexpr size_t kBatchesPerStream = 30;
constexpr size_t kBatchSize = 128;

/// One producer: its own drifting Hyperplane stream, every 3rd batch
/// submitted unlabeled (pure inference traffic).
void ProduceStream(StreamRuntime* runtime, uint64_t stream_id) {
  HyperplaneOptions options;
  options.seed = 42 + stream_id;
  HyperplaneSource source(options);
  for (size_t b = 0; b < kBatchesPerStream; ++b) {
    auto batch = source.NextBatch(kBatchSize);
    batch.status().CheckOk();
    if ((b + 1) % 3 == 0) batch->labels.clear();
    runtime->Submit(stream_id, *std::move(batch)).CheckOk();
  }
}

void PrintSnapshot(const RuntimeStatsSnapshot& snapshot) {
  TablePrinter table({"Shard", "Enqueued", "Processed", "Shed", "Rejected",
                      "Errors", "Quarantined", "Undrained", "HighWater",
                      "Blocked us", "Rate b/s"});
  for (const ShardStatsSnapshot& s : snapshot.shards) {
    table.AddRow({std::to_string(s.shard), std::to_string(s.enqueued),
                  std::to_string(s.processed), std::to_string(s.shed),
                  std::to_string(s.rejected), std::to_string(s.errors),
                  std::to_string(s.quarantined), std::to_string(s.undrained),
                  std::to_string(s.queue_high_water),
                  std::to_string(s.blocked_micros),
                  FormatDouble(s.arrival_rate, 1)});
  }
  table.AddRow({"total", std::to_string(snapshot.totals.enqueued),
                std::to_string(snapshot.totals.processed),
                std::to_string(snapshot.totals.shed),
                std::to_string(snapshot.totals.rejected),
                std::to_string(snapshot.totals.errors),
                std::to_string(snapshot.totals.quarantined),
                std::to_string(snapshot.totals.undrained),
                std::to_string(snapshot.totals.queue_high_water),
                std::to_string(snapshot.totals.blocked_micros), "-"});
  table.Print();
}

}  // namespace

int main() {
  std::printf("== Multi-stream runtime: %zu concurrent streams ==\n\n",
              kStreams);
  ThreadPool::SetGlobalThreads(8);

  auto proto = MakeLogisticRegression(10, 2);

  // Phase 1 — normal serving with backpressure. One shard per stream; the
  // callback runs on drain-task threads, so it only touches atomics. A
  // MetricsRegistry rides along: this is the text a /metrics endpoint
  // would serve to a Prometheus scraper.
  MetricsRegistry registry;
  std::atomic<size_t> results{0};
  std::atomic<size_t> records{0};
  {
    RuntimeOptions options;
    options.num_shards = kStreams;
    options.queue_capacity = 16;
    options.metrics = &registry;
    StreamRuntime runtime(*proto, options, [&](const StreamResult& r) {
      results.fetch_add(1);
      records.fetch_add(r.report.predictions.size());
    });

    std::vector<std::thread> producers;
    for (size_t s = 0; s < kStreams; ++s) {
      producers.emplace_back(ProduceStream, &runtime, s);
    }
    for (auto& t : producers) t.join();
    runtime.Flush();

    std::printf("Backpressure policy: %zu inference results (%zu records "
                "classified)\n",
                results.load(), records.load());
    PrintSnapshot(runtime.Snapshot());
    runtime.Shutdown();

    std::printf("\nPrometheus exposition (scrape of the attached "
                "registry):\n%s",
                registry.ToPrometheusText().c_str());
  }

  // Phase 2 — overload. Two shards absorb all eight streams through
  // capacity-4 queues; the arrival-rate adjuster flags sustained overload
  // and the runtime sheds the oldest unlabeled batches instead of stalling
  // the producers. Labeled (training) batches are never dropped.
  {
    RuntimeOptions options;
    options.num_shards = 2;
    options.queue_capacity = 4;
    options.overload_policy = OverloadPolicy::kShed;
    options.overload_rate.high_rate = 50.0;  // Overloaded above 50 b/s.
    StreamRuntime runtime(*proto, options);

    std::vector<std::thread> producers;
    for (size_t s = 0; s < kStreams; ++s) {
      producers.emplace_back(ProduceStream, &runtime, s);
    }
    for (auto& t : producers) t.join();
    runtime.Flush();

    RuntimeStatsSnapshot snapshot = runtime.Snapshot();
    std::printf("\nLoad-shed policy (2 shards, capacity 4): shed %llu of "
                "%llu batches under overload\n",
                static_cast<unsigned long long>(snapshot.totals.shed),
                static_cast<unsigned long long>(snapshot.totals.enqueued));
    PrintSnapshot(snapshot);
    runtime.Shutdown();
    std::printf("Dead letters after shutdown: %zu\n",
                runtime.TakeDeadLetters().size());
  }

  std::printf("\nDone.\n");
  return 0;
}
