// Offline replay of a durable ingest log (see src/ingest/ingest_log.h).
//
// Two modes:
//
//   replay_log <log_dir>   Replays a captured log through a fresh runtime
//                          and writes its standard stats JSON next to a
//                          replay summary in REPLAY_stats.json. The model
//                          shape is inferred from the first logged batch.
//
//   replay_log             Self-contained demo + CI check: a server with
//                          the durable log enabled ingests traffic from
//                          two clients while a failpoint destroys ACKs in
//                          flight (forcing duplicate resends), then the
//                          captured log is replayed twice into fresh
//                          pipelines. The run proves exactly-once — the
//                          runtime admitted each unique batch once despite
//                          the duplicates — and that replay is
//                          bit-identical (both replay passes produce
//                          byte-equal pipeline snapshots). Exits non-zero
//                          if any invariant fails.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "fault/failpoint.h"
#include "ingest/ingest_log.h"
#include "ml/models.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"

using namespace freeway;  // NOLINT — example driver.

namespace {

namespace fs = std::filesystem;

constexpr size_t kDim = 8;
constexpr size_t kBatchRows = 32;
constexpr size_t kClients = 2;
constexpr size_t kBatchesPerClient = 20;

PipelineOptions DeterministicPipeline() {
  PipelineOptions opts;
  opts.learner.base_window_batches = 4;
  opts.learner.detector.warmup_batches = 3;
  opts.enable_rate_adjuster = false;  // Wall-clock state breaks determinism.
  return opts;
}

/// Replays every surviving record into per-stream pipelines; returns the
/// concatenated per-stream snapshot bytes (stream order), which two passes
/// over the same log must reproduce byte for byte.
Status ReplayIntoPipelines(const IngestLog& log, const Model& prototype,
                           std::map<uint64_t, size_t>* per_stream,
                           std::vector<char>* snapshot_bytes) {
  std::map<uint64_t, std::unique_ptr<StreamPipeline>> pipelines;
  RETURN_IF_ERROR(log.Replay([&](const IngestRecord& record) {
    auto& pipeline = pipelines[record.stream_id];
    if (pipeline == nullptr) {
      pipeline = std::make_unique<StreamPipeline>(prototype,
                                                  DeterministicPipeline());
    }
    ++(*per_stream)[record.stream_id];
    return pipeline->Push(record.batch).status();
  }));
  for (auto& [stream_id, pipeline] : pipelines) {
    std::vector<char> payload;
    RETURN_IF_ERROR(pipeline->Snapshot(&payload));
    snapshot_bytes->insert(snapshot_bytes->end(), payload.begin(),
                           payload.end());
  }
  return Status::OK();
}

/// Mode A: replay an existing log directory through a fresh StreamRuntime
/// and emit its standard stats JSON.
int ReplayDirectory(const std::string& log_dir) {
  std::printf("== Replaying ingest log %s ==\n\n", log_dir.c_str());
  IngestLogOptions lopts;
  lopts.directory = log_dir;
  lopts.read_only = true;
  IngestLog log(lopts);
  Status opened = log.Open(nullptr);
  if (!opened.ok()) {
    std::printf("cannot open log: %s\n", opened.ToString().c_str());
    return 1;
  }
  const IngestLogStats lstats = log.stats();
  std::printf("recovered %llu records across %zu segment%s (%llu torn "
              "bytes truncated at the tail)\n",
              static_cast<unsigned long long>(lstats.recovered_records),
              lstats.segments, lstats.segments == 1 ? "" : "s",
              static_cast<unsigned long long>(lstats.torn_bytes_truncated));

  // Peek the first record for the model shape, then stream the rest.
  size_t feature_dim = 0;
  int max_label = 1;
  Status peeked = log.Replay([&](const IngestRecord& record) {
    if (feature_dim == 0) feature_dim = record.batch.features.cols();
    for (int label : record.batch.labels) {
      if (label > max_label) max_label = label;
    }
    return Status::OK();
  });
  if (!peeked.ok()) {
    std::printf("log scan failed: %s\n", peeked.ToString().c_str());
    return 1;
  }
  if (feature_dim == 0) {
    std::printf("log holds no batch records; nothing to replay\n");
    return 0;
  }

  auto proto = MakeLogisticRegression(feature_dim, max_label + 1);
  RuntimeOptions ropts;
  ropts.pipeline = DeterministicPipeline();
  StreamRuntime runtime(*proto, ropts);
  size_t replayed = 0;
  Status fed = log.Replay([&](const IngestRecord& record) {
    SubmitContext context;
    context.tenant_id = record.tenant_id;
    context.priority = static_cast<TenantPriority>(record.priority);
    ++replayed;
    return runtime.Submit(record.stream_id, record.batch, context);
  });
  runtime.Shutdown();
  if (!fed.ok()) {
    std::printf("replay failed: %s\n", fed.ToString().c_str());
    return 1;
  }
  const RuntimeStatsSnapshot snapshot = runtime.Snapshot();
  std::printf("replayed %zu batches: processed=%llu shed=%llu "
              "quarantined=%llu\n",
              replayed,
              static_cast<unsigned long long>(snapshot.totals.processed),
              static_cast<unsigned long long>(snapshot.totals.shed),
              static_cast<unsigned long long>(snapshot.totals.quarantined));
  std::ofstream out("REPLAY_stats.json");
  out << "{\n  \"log_dir\": \"" << log_dir << "\",\n"
      << "  \"recovered_records\": " << lstats.recovered_records << ",\n"
      << "  \"replayed_batches\": " << replayed << ",\n"
      << "  \"runtime_stats\": " << snapshot.ToJson() << "\n}\n";
  std::printf("Wrote REPLAY_stats.json\n");
  return snapshot.totals.processed == replayed ? 0 : 1;
}

/// Mode B: capture a log under duplicate-inducing chaos, then prove
/// exactly-once and bit-identical replay.
int SelfContainedDemo() {
  std::printf("== Durable ingest + exactly-once replay demo ==\n\n");
  const fs::path dir = fs::path("replay_log_demo");
  fs::remove_all(dir);
  const std::string log_dir = (dir / "log").string();

  auto proto = MakeLogisticRegression(kDim, 2);
  MetricsRegistry registry;
  ServerOptions options;
  options.metrics = &registry;
  options.runtime.num_shards = 2;
  options.runtime.pipeline = DeterministicPipeline();
  options.ingest.enabled = true;
  options.ingest.log_dir = log_dir;
  StreamServer server(*proto, options);
  server.Start().CheckOk();

  // Destroy two ACKs in flight: the affected clients resend, and the
  // server's watermark table absorbs the duplicates.
  failpoint::FailPointSpec spec;
  spec.code = StatusCode::kIoError;
  spec.skip = 7;
  spec.count = 2;
  failpoint::Arm("net.write", spec);

  std::vector<ClientTallies> tallies(kClients);
  std::vector<std::thread> producers;
  for (size_t c = 0; c < kClients; ++c) {
    producers.emplace_back([&, c] {
      ClientOptions copts;
      copts.port = server.port();
      copts.backoff_initial_micros = 200;
      StreamClient client(copts);
      HyperplaneOptions sopts;
      sopts.dim = kDim;
      sopts.seed = 42 + c;
      HyperplaneSource source(sopts);
      for (size_t b = 0; b < kBatchesPerClient; ++b) {
        auto batch = source.NextBatch(kBatchRows);
        batch.status().CheckOk();
        client.Submit(100 + c, *std::move(batch)).CheckOk();
      }
      tallies[c] = client.tallies();
    });
  }
  for (auto& t : producers) t.join();
  server.Stop();
  failpoint::DisarmAll();

  const size_t unique = kClients * kBatchesPerClient;
  uint64_t acked = 0, resends = 0, stale_acks = 0;
  for (const ClientTallies& t : tallies) {
    acked += t.acked;
    resends += t.resends;
    stale_acks += t.stale_acks;
  }
  const uint64_t duplicates =
      registry.GetCounter("freeway_net_duplicates_total")->Value();
  const RuntimeStatsSnapshot live = server.runtime()->Snapshot();
  std::printf("live run: %zu unique batches, %llu acked, %llu resends, "
              "%llu deduped, enqueued=%llu processed=%llu\n",
              unique, static_cast<unsigned long long>(acked),
              static_cast<unsigned long long>(resends),
              static_cast<unsigned long long>(duplicates),
              static_cast<unsigned long long>(live.totals.enqueued),
              static_cast<unsigned long long>(live.totals.processed));

  bool ok = true;
  auto check = [&ok](bool condition, const char* what) {
    std::printf("  [%s] %s\n", condition ? "PASS" : "FAIL", what);
    if (!condition) ok = false;
  };
  check(acked == unique, "every batch acknowledged");
  check(live.totals.enqueued == unique,
        "exactly-once: runtime admitted each unique batch once");
  check(live.totals.processed == unique, "every admitted batch processed");
  check(stale_acks == 0, "no stale ACK ever reached a client");

  // Replay the captured log twice into fresh pipelines: identical bytes.
  IngestLogOptions lopts;
  lopts.directory = log_dir;
  lopts.read_only = true;
  IngestLog log(lopts);
  log.Open(nullptr).CheckOk();
  std::map<uint64_t, size_t> per_stream_a, per_stream_b;
  std::vector<char> pass_a, pass_b;
  ReplayIntoPipelines(log, *proto, &per_stream_a, &pass_a).CheckOk();
  ReplayIntoPipelines(log, *proto, &per_stream_b, &pass_b).CheckOk();
  size_t replayed = 0;
  for (const auto& [stream_id, count] : per_stream_a) replayed += count;
  std::printf("\nreplay: %zu records across %zu streams, snapshot %zu "
              "bytes per pass\n",
              replayed, per_stream_a.size(), pass_a.size());
  check(replayed == unique, "replay yields exactly the unique batches");
  check(pass_a.size() == pass_b.size() && !pass_a.empty() &&
            std::memcmp(pass_a.data(), pass_b.data(), pass_a.size()) == 0,
        "two replay passes are bit-identical");

  std::ofstream out("REPLAY_stats.json");
  out << "{\n  \"unique_batches\": " << unique << ",\n"
      << "  \"acked\": " << acked << ",\n"
      << "  \"resends\": " << resends << ",\n"
      << "  \"duplicates_deduped\": " << duplicates << ",\n"
      << "  \"stale_acks\": " << stale_acks << ",\n"
      << "  \"replayed_batches\": " << replayed << ",\n"
      << "  \"replay_bit_identical\": " << (ok ? "true" : "false") << ",\n"
      << "  \"runtime_stats\": " << live.ToJson() << "\n}\n";
  std::printf("\nWrote REPLAY_stats.json\n");

  if (std::getenv("REPLAY_KEEP") == nullptr) {
    fs::remove_all(dir);
  } else {
    std::printf("Kept captured log in %s (REPLAY_KEEP set) — try\n"
                "  replay_log %s\n",
                log_dir.c_str(), log_dir.c_str());
  }
  std::printf("%s\n", ok ? "\nAll invariants hold." : "\nINVARIANT FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) return ReplayDirectory(argv[1]);
  return SelfContainedDemo();
}
