// One command replays any scenario end-to-end. A scenario spec (canned
// name or spec file) declares the drift schedule, arrival process,
// label-delay policy, and tenant mix; this driver materializes it and
// replays it through one of three stacks:
//
//   --mode=net      (default) a live loopback StreamServer (optionally a
//                   3-node replicated HA group with --ha) fed by N
//                   concurrent StreamClients honoring the arrival process
//                   in scaled wall-clock time
//   --mode=local    an in-process sharded StreamRuntime, as fast as it
//                   can submit
//   --mode=learner  the bare prequential test-then-train loop (the
//                   figure-bench protocol; --system picks the learner)
//
// Every mode writes SCENARIO_stats.json (accuracy + kappa + per-mechanism
// latency + shed/quarantine/dedup/failover curves) and the net/local modes
// exit non-zero unless the run reconciled exactly
// (enqueued = processed + shed + quarantined + undrained + in_flight)
// with zero labeled-batch loss — the CI gate.
//
// Build & run:  ./build/examples/run_scenario mixed
//               ./build/examples/run_scenario scenarios/flash_crowd.scn
//               ./build/examples/run_scenario abrupt --mode=learner
//               ./build/examples/run_scenario mixed --ha --clients=6

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "baselines/freeway_adapter.h"
#include "common/thread_pool.h"
#include "ml/models.h"
#include "net/server.h"
#include "net/socket_util.h"
#include "scenarios/harness.h"
#include "scenarios/loadgen.h"
#include "scenarios/scenario.h"
#include "scenarios/spec.h"

using namespace freeway;  // NOLINT — example driver.

namespace {

struct Args {
  std::string scenario;
  std::string mode = "net";
  std::string system = "FreewayML";
  std::string out = "SCENARIO_stats.json";
  size_t clients = 4;
  size_t workers = 2;
  size_t shards = 2;
  double time_scale = 1.0;
  bool ha = false;
  bool list = false;
};

void PrintUsage() {
  std::printf(
      "usage: run_scenario <scenario|spec-file> [options]\n"
      "  --mode=net|local|learner  replay stack (default net)\n"
      "  --clients=N               loadgen clients (net mode, default 4)\n"
      "  --workers=N               server reactor workers (default 2)\n"
      "  --shards=N                runtime shards (default 2)\n"
      "  --time-scale=X            arrival pacing: 1 = wall clock,\n"
      "                            10 = 10x compressed, 0 = max speed\n"
      "  --ha                      3-node replicated server group\n"
      "  --system=NAME             learner-mode system (default FreewayML)\n"
      "  --out=PATH                stats JSON path (SCENARIO_stats.json)\n"
      "  --list                    list canned scenarios\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg == "--list") {
      args->list = true;
    } else if (arg == "--ha") {
      args->ha = true;
    } else if (arg.rfind("--mode=", 0) == 0) {
      args->mode = value("--mode=");
    } else if (arg.rfind("--system=", 0) == 0) {
      args->system = value("--system=");
    } else if (arg.rfind("--out=", 0) == 0) {
      args->out = value("--out=");
    } else if (arg.rfind("--clients=", 0) == 0) {
      args->clients = static_cast<size_t>(std::atoll(value("--clients=").c_str()));
    } else if (arg.rfind("--workers=", 0) == 0) {
      args->workers = static_cast<size_t>(std::atoll(value("--workers=").c_str()));
    } else if (arg.rfind("--shards=", 0) == 0) {
      args->shards = static_cast<size_t>(std::atoll(value("--shards=").c_str()));
    } else if (arg.rfind("--time-scale=", 0) == 0) {
      args->time_scale = std::atof(value("--time-scale=").c_str());
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return false;
    } else if (args->scenario.empty()) {
      args->scenario = arg;
    } else {
      std::fprintf(stderr, "unexpected argument %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void PrintReport(const ScenarioReport& report) {
  std::printf("\n-- %s via %s (%s) --\n", report.scenario.c_str(),
              report.mode.c_str(), report.system.c_str());
  std::printf("accuracy: g_acc=%.2f%%  SI=%.4f  kappa=%.4f  (%zu scored)\n",
              100.0 * report.prequential.g_acc,
              report.prequential.stability_index, report.kappa,
              report.scored_batches);
  const PatternAccuracy& pp = report.prequential.per_pattern;
  std::printf("per-pattern: slight=%.2f%% (%zu)  sudden=%.2f%% (%zu)  "
              "reoccurring=%.2f%% (%zu)\n",
              100.0 * pp.slight, pp.slight_batches, 100.0 * pp.sudden,
              pp.sudden_batches, 100.0 * pp.reoccurring,
              pp.reoccurring_batches);
  for (const MechanismReport& m : report.mechanisms) {
    std::printf("mechanism %-18s %4zu batches  acc=%.2f%%  "
                "p50=%.0fus  p99=%.0fus\n",
                m.name.c_str(), m.batches, 100.0 * m.accuracy,
                m.latency_p50_micros, m.latency_p99_micros);
  }
  std::printf("ops: enqueued=%llu processed=%llu shed=%llu rejected=%llu "
              "quarantined=%llu undrained=%llu in_flight=%llu\n",
              static_cast<unsigned long long>(report.enqueued),
              static_cast<unsigned long long>(report.processed),
              static_cast<unsigned long long>(report.shed),
              static_cast<unsigned long long>(report.rejected),
              static_cast<unsigned long long>(report.quarantined),
              static_cast<unsigned long long>(report.undrained),
              static_cast<unsigned long long>(report.in_flight));
  std::printf("replay: %.2fs wall for %.2fs of scenario time "
              "(scale %.1f, %zu clients, %zu workers, %zu nodes)\n",
              report.wall_seconds, report.scenario_seconds, report.time_scale,
              report.clients, report.workers, report.nodes);
}

int WriteReport(const ScenarioReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << RenderScenarioJson(report);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int RunLearnerMode(const Args& args, const GeneratedScenario& scenario) {
  auto source = MakeScenarioSource(scenario.spec);
  source.status().CheckOk();
  auto system = MakeSystem(args.system, ModelKind::kMlp,
                           (*source)->input_dim(), (*source)->num_classes());
  system.status().CheckOk();
  LearnerHarnessOptions options;
  if (auto* freeway = dynamic_cast<FreewayAdapter*>(system->get())) {
    options.mechanism_probe = [freeway] {
      return static_cast<int>(freeway->last_report().strategy);
    };
  }
  auto report = RunScenarioOnLearner(system->get(), scenario, options);
  report.status().CheckOk();
  PrintReport(*report);
  if (WriteReport(*report, args.out) != 0) return 1;
  return report->scored_batches > 0 ? 0 : 1;
}

int RunLocalMode(const Args& args, const GeneratedScenario& scenario) {
  auto source = MakeScenarioSource(scenario.spec);
  source.status().CheckOk();
  auto proto =
      MakeMlp((*source)->input_dim(), (*source)->num_classes());
  RuntimeHarnessOptions options;
  options.num_shards = args.shards;
  auto report = RunScenarioOnRuntime(*proto, scenario, options);
  report.status().CheckOk();
  PrintReport(*report);
  if (WriteReport(*report, args.out) != 0) return 1;
  if (!report->reconciled || !report->zero_labeled_loss) {
    std::fprintf(stderr, "FAIL: reconciliation or labeled-loss gate\n");
    return 1;
  }
  return 0;
}

int RunNetMode(const Args& args, const GeneratedScenario& scenario) {
  namespace fs = std::filesystem;
  auto source = MakeScenarioSource(scenario.spec);
  source.status().CheckOk();
  auto proto =
      MakeMlp((*source)->input_dim(), (*source)->num_classes());

  const size_t nodes = args.ha ? 3 : 1;
  const fs::path root =
      fs::temp_directory_path() /
      ("freeway_run_scenario_" + scenario.spec.name);
  std::error_code ec;
  fs::remove_all(root, ec);

  // Reserve the HA ports up front: each node must know its peers' ports
  // before any of them starts.
  std::vector<uint16_t> ports(nodes, 0);
  std::vector<std::unique_ptr<MetricsRegistry>> registries;
  std::vector<std::unique_ptr<StreamServer>> servers;
  if (args.ha) {
    for (size_t i = 0; i < nodes; ++i) {
      auto fd = net::CreateListenSocket("127.0.0.1", 0, 4, false);
      fd.status().CheckOk();
      auto port = net::LocalPort(*fd);
      port.status().CheckOk();
      net::CloseFd(*fd);
      ports[i] = *port;
    }
  }
  for (size_t i = 0; i < nodes; ++i) {
    registries.push_back(std::make_unique<MetricsRegistry>());
    ServerOptions options;
    options.metrics = registries.back().get();
    options.num_workers = args.workers;
    options.runtime.num_shards = args.shards;
    if (args.ha) {
      options.port = ports[i];
      options.ingest.enabled = true;
      options.ingest.log_dir =
          (root / ("n" + std::to_string(i)) / "log").string();
      options.replication.enabled = true;
      options.replication.node_id = i + 1;
      options.replication.data_dir =
          (root / ("n" + std::to_string(i)) / "raft").string();
      options.replication.tick_millis = 10;
      options.replication.heartbeat_ticks = 2;
      for (size_t j = 0; j < nodes; ++j) {
        if (j == i) continue;
        options.replication.peers.push_back(
            {static_cast<uint64_t>(j + 1), "127.0.0.1", ports[j]});
      }
    }
    servers.push_back(std::make_unique<StreamServer>(*proto, options));
    servers.back()->Start().CheckOk();
    if (!args.ha) ports[i] = servers.back()->port();
  }
  std::printf("serving on");
  for (uint16_t port : ports) std::printf(" 127.0.0.1:%u", port);
  std::printf(" (%zu node%s, %zu workers each)\n", nodes,
              nodes == 1 ? "" : "s", servers.front()->num_workers());

  LoadgenOptions options;
  for (uint16_t port : ports) options.endpoints.push_back({"127.0.0.1", port});
  options.num_clients = args.clients;
  options.time_scale = args.time_scale;
  auto report = RunScenarioOverNetwork(scenario, options);
  for (auto& server : servers) server->Stop();
  report.status().CheckOk();
  report->workers = args.workers;
  PrintReport(*report);
  if (WriteReport(*report, args.out) != 0) return 1;
  if (!report->reconciled || !report->zero_labeled_loss) {
    std::fprintf(stderr, "FAIL: reconciliation or labeled-loss gate\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }
  if (args.list || args.scenario.empty()) {
    if (args.scenario.empty() && !args.list) PrintUsage();
    std::printf("canned scenarios:\n");
    for (const std::string& name : CannedScenarioNames()) {
      std::printf("  %s\n", name.c_str());
    }
    return args.list ? 0 : 2;
  }
  ThreadPool::SetGlobalThreads(8);

  auto spec = ResolveScenarioSpec(args.scenario);
  spec.status().CheckOk();
  std::printf("scenario %s: %zu batches x %zu rows, %zu drift segments, "
              "arrival=%s, labels=%s\n",
              spec->name.c_str(), spec->num_batches, spec->batch_size,
              spec->drift.size(), ArrivalKindName(spec->arrival.kind),
              LabelDelayKindName(spec->labels.kind));
  auto scenario = GenerateScenario(*spec);
  scenario.status().CheckOk();

  if (args.mode == "learner") return RunLearnerMode(args, *scenario);
  if (args.mode == "local") return RunLocalMode(args, *scenario);
  if (args.mode == "net") return RunNetMode(args, *scenario);
  std::fprintf(stderr, "unknown mode %s\n", args.mode.c_str());
  PrintUsage();
  return 2;
}
