// Crash-recovery demo: the fault-tolerance layer end to end.
//
//   Act 1 — a shard "crashes" twice mid-stream (failpoint-injected drain
//           faults). The supervisor restores the shard pipeline from its
//           latest checkpoint and retries; every batch is still processed.
//   Act 2 — a poison batch (NaN feature) fails every retry and lands on
//           the dead-letter queue instead of being dropped: labeled
//           training data survives for operator inspection.
//   Act 3 — a "process crash": the first runtime shuts down (flushing a
//           final checkpoint per shard), and a brand-new runtime restores
//           the shard's learned state from disk and keeps serving.
//
// Checkpoints land under ./crash_recovery_ckpt (removed at exit).

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "fault/checkpoint.h"
#include "fault/failpoint.h"
#include "ml/models.h"
#include "runtime/stream_runtime.h"

using namespace freeway;  // NOLINT — example driver.

namespace {

constexpr size_t kBatchSize = 64;
constexpr size_t kDim = 6;

Batch MakeBatch(bool labeled, uint64_t seed, int64_t index) {
  Rng rng(seed);
  Batch b;
  b.index = index;
  b.features = Matrix(kBatchSize, kDim);
  if (labeled) b.labels.resize(kBatchSize);
  for (size_t i = 0; i < kBatchSize; ++i) {
    const int label = static_cast<int>(rng.NextBelow(2));
    if (labeled) b.labels[i] = label;
    for (size_t j = 0; j < kDim; ++j) {
      b.features.At(i, j) = rng.Gaussian(label * 2.0, 0.5);
    }
  }
  return b;
}

RuntimeOptions FaultyOptions(const std::string& checkpoint_dir) {
  RuntimeOptions options;
  options.num_shards = 1;  // One shard keeps the story readable.
  options.pipeline.enable_rate_adjuster = false;
  options.fault.enabled = true;
  options.fault.checkpoint_dir = checkpoint_dir;
  options.fault.checkpoint_interval_batches = 4;
  options.fault.max_batch_retries = 2;
  options.fault.backoff_initial_micros = 50;
  return options;
}

void PrintCounters(const char* when, const RuntimeStatsSnapshot& snapshot) {
  const ShardStatsSnapshot& t = snapshot.totals;
  std::printf("%s: enqueued=%llu processed=%llu errors=%llu retries=%llu "
              "restores=%llu quarantined=%llu\n",
              when, static_cast<unsigned long long>(t.enqueued),
              static_cast<unsigned long long>(t.processed),
              static_cast<unsigned long long>(t.errors),
              static_cast<unsigned long long>(t.retries),
              static_cast<unsigned long long>(t.restores),
              static_cast<unsigned long long>(t.quarantined));
}

}  // namespace

int main() {
  ThreadPool::SetGlobalThreads(4);
  const std::string dir = "crash_recovery_ckpt";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  auto proto = MakeLogisticRegression(kDim, 2);

  // ---- Act 1: a shard crashes twice, the supervisor recovers ----------
  std::printf("== Act 1: shard crash + supervised recovery ==\n");
  {
    StreamRuntime runtime(*proto, FaultyOptions(dir + "/act1"));
    // The 4th and 5th drains of shard 0 fail as if the pipeline crashed.
    failpoint::FailPointSpec kill;
    kill.message = "injected shard crash";
    kill.skip = 3;
    kill.count = 2;
    failpoint::Arm("runtime.drain.shard0", kill);
    for (int64_t i = 0; i < 12; ++i) {
      runtime.Submit(0, MakeBatch(/*labeled=*/i % 3 != 2,
                                  /*seed=*/100 + i, i)).CheckOk();
    }
    runtime.Flush();
    PrintCounters("after 12 batches with 2 injected crashes",
                  runtime.Snapshot());
    runtime.Shutdown();
    failpoint::DisarmAll();
    std::printf("every batch was processed; each crash cost one restore + "
                "one retry\n\n");
  }

  // ---- Act 2: a poison batch is quarantined, never dropped ------------
  std::printf("== Act 2: poison batch -> dead-letter queue ==\n");
  {
    StreamRuntime runtime(*proto, FaultyOptions(dir + "/act2"));
    for (int64_t i = 0; i < 6; ++i) {
      runtime.Submit(0, MakeBatch(true, 200 + i, i)).CheckOk();
    }
    Batch poison = MakeBatch(true, 999, 6);
    poison.features.At(0, 0) = std::nan("");  // Rejected on every attempt.
    runtime.Submit(0, std::move(poison)).CheckOk();
    runtime.Flush();
    PrintCounters("after 6 clean + 1 poison batch", runtime.Snapshot());
    for (const DeadLetter& letter : runtime.TakeDeadLetters()) {
      std::printf("dead letter: stream=%llu shard=%zu batch_index=%lld "
                  "attempts=%zu labeled_records=%zu\n  error: %s\n",
                  static_cast<unsigned long long>(letter.stream_id),
                  letter.shard, static_cast<long long>(letter.batch.index),
                  letter.attempts, letter.batch.labels.size(),
                  letter.error.message().c_str());
    }
    runtime.Shutdown();
    std::printf("the labeled batch is preserved for repair + resubmission\n\n");
  }

  // ---- Act 3: full process crash, new runtime restores from disk ------
  std::printf("== Act 3: process restart from the final checkpoint ==\n");
  {
    StreamRuntime first(*proto, FaultyOptions(dir + "/act3"));
    for (int64_t i = 0; i < 10; ++i) {
      first.Submit(0, MakeBatch(true, 300 + i, i)).CheckOk();
    }
    first.Shutdown();  // Writes the final checkpoint for shard 0.
  }
  {
    // The "restarted process": read the shard's latest checkpoint from
    // disk and restore it into a fresh runtime's shard pipeline.
    CheckpointStore store({.directory = dir + "/act3"});
    auto payload = store.ReadLatest("shard0");
    payload.status().CheckOk();
    std::printf("restored checkpoint: %zu bytes\n", payload->size());

    StreamRuntime second(*proto, FaultyOptions(dir + "/act3"));
    second.mutable_shard_pipeline(0)->Restore(*payload).CheckOk();

    // Serving continues with the pre-crash learned state.
    size_t results = 0;
    for (int64_t i = 10; i < 14; ++i) {
      second.Submit(0, MakeBatch(/*labeled=*/false, 300 + i, i)).CheckOk();
    }
    second.Flush();
    results = second.Drain().size();
    std::printf("post-restart inference: %zu results from the restored "
                "model\n",
                results);
    second.Shutdown();
  }

  std::filesystem::remove_all(dir, ec);
  std::printf("\nDone.\n");
  return 0;
}
