// Detector comparison: the paper's core motivation is that classical
// *error-based* drift detectors (DDM, EDDM, Page-Hinkley, ADWIN — what
// River/MOA provide) only react after accuracy has already collapsed,
// while FreewayML's *distribution-based* shift detector sees the shift in
// the features of the very batch that carries it.
//
// This example streams a concept with one sudden jump and prints, for each
// detector, the batch at which it first signaled — relative to the batch
// the jump actually happened on.
//
// Build & run:  ./build/examples/detector_comparison

#include <cstdio>
#include <memory>
#include <vector>

#include "core/shift_detector.h"
#include "data/concept.h"
#include "detectors/drift_detectors.h"
#include "ml/models.h"

using namespace freeway;  // NOLINT — example code.

int main() {
  // One calm phase, then a sudden jump at a known batch.
  ConceptSourceOptions opts;
  opts.dim = 10;
  opts.num_classes = 2;
  opts.seed = 99;
  opts.transition_fraction = 0.0;  // Exact, known jump batch.
  DriftScript script;
  DriftSegment calm;
  calm.kind = DriftKind::kLocalized;
  calm.num_batches = 40;
  calm.magnitude = 0.05;
  DriftSegment jump;
  jump.kind = DriftKind::kSudden;
  jump.num_batches = 20;
  jump.magnitude = 3.0;
  script.segments = {calm, jump};
  script.loop = false;
  GaussianConceptSource stream("one-jump", opts, script);

  // The error stream all classical detectors watch comes from one shared
  // prequential model.
  std::unique_ptr<Model> model = MakeMlp(opts.dim, opts.num_classes);

  ShiftDetector freeway_detector;
  std::vector<std::unique_ptr<DriftDetector>> classical;
  for (const char* name : {"DDM", "EDDM", "PageHinkley", "ADWIN"}) {
    classical.push_back(MakeDriftDetector(name));
  }
  std::vector<int> classical_first(classical.size(), -1);
  int freeway_first = -1;
  int jump_batch = -1;

  const size_t batch_size = 512;
  for (int b = 0; b < 60; ++b) {
    Result<Batch> batch = stream.NextBatch(batch_size);
    batch.status().CheckOk();
    if (stream.LastBatchMeta().shift_event && jump_batch < 0) jump_batch = b;

    // FreewayML's detector sees only the features.
    Result<ShiftAssessment> shift = freeway_detector.Assess(batch->features);
    shift.status().CheckOk();
    // Monitor after a short burn-in: every detector (including the shift
    // detector's distance statistics) is unstable while the model and the
    // statistics are still cold.
    const bool armed = b >= 15;
    if (armed && !shift->warmup && shift->pattern != ShiftPattern::kSlight &&
        freeway_first < 0) {
      freeway_first = b;
    }

    // Classical detectors see per-sample error indicators of the deployed
    // model (prequential: predict before training).
    Result<std::vector<int>> pred = model->Predict(batch->features);
    pred.status().CheckOk();
    for (size_t d = 0; d < classical.size(); ++d) {
      for (size_t i = 0; i < batch->size(); ++i) {
        const DriftState state = classical[d]->Add(
            (*pred)[i] == batch->labels[i] ? 0.0 : 1.0);
        if (armed && state == DriftState::kDrift &&
            classical_first[d] < 0) {
          classical_first[d] = b;
        }
      }
    }
    model->TrainBatch(batch->features, batch->labels).status().CheckOk();
  }

  std::printf("sudden jump occurs at batch %d\n\n", jump_batch);
  std::printf("detector             first signal   delay (batches)\n");
  auto print_row = [&](const char* name, int first) {
    if (first < 0) {
      std::printf("%-20s %-14s %s\n", name, "never", "-");
    } else {
      std::printf("%-20s %-14d %d\n", name, first, first - jump_batch);
    }
  };
  print_row("FreewayML (features)", freeway_first);
  for (size_t d = 0; d < classical.size(); ++d) {
    print_row(classical[d]->name().c_str(), classical_first[d]);
  }
  std::printf(
      "\nAt this batch size every detector catches a hard jump within a\n"
      "batch. The structural differences remain: the distribution-based\n"
      "detector needs NO labels (it watches features, so it also works on\n"
      "pure inference traffic) and classifies the shift (sudden vs\n"
      "reoccurring), which is what lets FreewayML pick a strategy rather\n"
      "than just reset.\n");
  return 0;
}
