// Quickstart: the FreewayML user template from Section V of the paper,
// driven over a drifting synthetic stream.
//
//   SML = Learner(Model = model, ModelNum = 2, MiniBatch = 1024,
//                 KdgBuffer = 20, ExpBuffer = 10, alpha = 1.96)
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "common/strings.h"
#include "core/learner.h"
#include "data/synthetic.h"
#include "ml/models.h"

using namespace freeway;  // NOLINT — example code.

int main() {
  // 1. Pick a data stream. Hyperplane rotates slowly and re-randomizes
  //    every 30 batches, so the stream exhibits both slight and sudden
  //    shifts.
  HyperplaneOptions stream_options;
  stream_options.sudden_every = 30;
  HyperplaneSource stream(stream_options);

  // 2. Pick a base model — any Model works; FreewayML clones it into the
  //    multi-granularity ensemble.
  std::unique_ptr<Model> model =
      MakeMlp(stream.input_dim(), stream.num_classes());

  // 3. Configure the Learner exactly like the paper's template.
  LearnerOptions options;
  options.model_num = 2;       // 1 short + 1 long granularity model.
  options.mini_batch = 1024;
  options.kdg_buffer = 20;     // Historical-knowledge capacity.
  options.exp_buffer_age = 10; // Experience expiration (batches).
  options.alpha = 1.96;        // Shift-severity threshold.
  Learner learner(*model, options);

  // 4. Stream: each labeled batch is first predicted (real-time accuracy),
  //    then used for the incremental update (prequential protocol).
  std::printf("batch  acc     pattern      strategy\n");
  for (int b = 0; b < 60; ++b) {
    Result<Batch> batch = stream.NextBatch(options.mini_batch);
    batch.status().CheckOk();

    Result<InferenceReport> report = learner.InferThenTrain(*batch);
    report.status().CheckOk();

    size_t hits = 0;
    for (size_t i = 0; i < batch->size(); ++i) {
      if (report->predictions[i] == batch->labels[i]) ++hits;
    }
    const double acc =
        static_cast<double>(hits) / static_cast<double>(batch->size());

    if (b % 5 == 0 || report->strategy != Strategy::kMultiGranularity) {
      std::printf("%5d  %s  %-11s  %s\n", b, FormatPercent(acc).c_str(),
                  report->assessment.warmup
                      ? "warmup"
                      : ShiftPatternName(report->assessment.pattern),
                  StrategyName(report->strategy));
    }
  }

  // 5. Inspect what the framework did.
  const LearnerStats& stats = learner.stats();
  std::printf("\nprocessed %zu batches:\n", stats.batches_inferred);
  std::printf("  ensemble inferences:  %zu\n", stats.ensemble_inferences);
  std::printf("  CEC inferences:       %zu\n", stats.cec_inferences);
  std::printf("  knowledge reuses:     %zu\n", stats.knowledge_inferences);
  std::printf("  long-model updates:   %zu\n", stats.long_model_updates);
  std::printf("  knowledge preserved:  %zu (%zu entries hot, %.1f KB)\n",
              stats.knowledge_preserved, learner.knowledge().hot_count(),
              static_cast<double>(learner.knowledge().HotSpaceBytes()) /
                  1024.0);
  return 0;
}
