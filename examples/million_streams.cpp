// Million-stream directory e2e: drives 100k+ logical streams (default
// 100000, FREEWAY_MS_STREAMS to rescale) from three mixed-priority tenants
// through a directory-mode StreamRuntime whose hydrated working set is
// capped orders of magnitude below the stream count. Labeled batches go
// through blocking Submit (training data takes backpressure, never loss);
// unlabeled traffic goes through TrySubmit with a bounded retry, the
// serving-frontend idiom. The run ends with hard checks of the directory
// contracts — hydration invariant, bounded residency, zero labeled-batch
// loss, parked streams restorable after shutdown — writes the stats to
// DIRECTORY_stats.json, and exits non-zero if any check fails, so CI can
// run it under ASan/TSan as an end-to-end gate.
//
// Environment:
//   FREEWAY_MS_STREAMS             logical stream count (default 100000)
//   FREEWAY_DIRECTORY_WORKING_SET  hydrated-pipeline cap (default 1024)
//   FREEWAY_TENANT_WEIGHTS         tenant spec (default 1:8:critical,
//                                  2:4:standard,3:1:best_effort)

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "directory/working_set.h"
#include "ml/models.h"
#include "runtime/stream_runtime.h"

using namespace freeway;  // NOLINT — example driver.

namespace {

namespace fs = std::filesystem;

constexpr size_t kDim = 4;
constexpr size_t kBatchSize = 4;
constexpr size_t kProducers = 2;

size_t EnvSize(const char* name, size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || value == 0) return fallback;
  return static_cast<size_t>(value);
}

Batch MakeBatch(bool labeled, uint64_t seed) {
  Rng rng(seed);
  Batch b;
  b.index = 0;
  b.features = Matrix(kBatchSize, kDim);
  if (labeled) b.labels.resize(kBatchSize);
  for (size_t i = 0; i < kBatchSize; ++i) {
    const int label = static_cast<int>(rng.NextBelow(2));
    if (labeled) b.labels[i] = label;
    for (size_t j = 0; j < kDim; ++j) {
      b.features.At(i, j) = rng.Gaussian(label * 2.0, 0.5);
    }
  }
  return b;
}

/// Tenants 1..3: stream id decides ownership, each tenant in a different
/// priority band so admission and shed-band selection both see a mix.
SubmitContext ContextFor(uint64_t stream_id) {
  SubmitContext ctx;
  ctx.tenant_id = static_cast<uint32_t>(stream_id % 3) + 1;
  switch (ctx.tenant_id) {
    case 1: ctx.priority = TenantPriority::kCritical; break;
    case 2: ctx.priority = TenantPriority::kStandard; break;
    default: ctx.priority = TenantPriority::kBestEffort; break;
  }
  return ctx;
}

struct ProducerTally {
  uint64_t accepted = 0;
  uint64_t labeled = 0;
  uint64_t dropped_unlabeled = 0;
};

/// One producer thread: cold-touches its half of the stream space in order,
/// retouching a recent stream (LRU hit) every 8th submit and a long-evicted
/// one (park-restore hydration) every 32nd.
void Produce(StreamRuntime* runtime, size_t worker, size_t num_streams,
             ProducerTally* tally) {
  auto submit = [&](uint64_t stream_id, uint64_t seed) {
    // Labeled traffic blocks (backpressure, never loss); unlabeled traffic
    // uses the non-blocking path with a bounded retry and is droppable.
    const bool labeled = stream_id % 2 == 0;
    const SubmitContext ctx = ContextFor(stream_id);
    if (labeled) {
      runtime->Submit(stream_id, MakeBatch(true, seed), ctx).CheckOk();
      ++tally->accepted;
      ++tally->labeled;
      return;
    }
    for (int attempt = 0; attempt < 3; ++attempt) {
      const Status status =
          runtime->TrySubmit(stream_id, MakeBatch(false, seed), ctx);
      if (status.ok()) {
        ++tally->accepted;
        return;
      }
      std::this_thread::yield();
    }
    ++tally->dropped_unlabeled;
  };

  for (uint64_t id = worker; id < num_streams; id += kProducers) {
    submit(id, /*seed=*/1000 + id);
    if (id % 8 == 7 && id > 128) submit(id - 64, /*seed=*/9000 + id);
    if (id % 32 == 31 && id > 8192) submit(id / 2, /*seed=*/5000 + id);
  }
}

}  // namespace

int main() {
  const size_t kStreams = EnvSize("FREEWAY_MS_STREAMS", 100000);
  std::printf("== Stream directory e2e: %zu logical streams ==\n\n",
              kStreams);
  ThreadPool::SetGlobalThreads(4);
  auto proto = MakeLogisticRegression(kDim, 2);

  const std::string park_dir = "million_streams_park";
  std::error_code ec;
  fs::remove_all(park_dir, ec);

  RuntimeOptions options;
  options.num_shards = 4;
  options.queue_capacity = 256;
  options.pipeline.learner.base_window_batches = 4;
  options.pipeline.learner.detector.warmup_batches = 3;
  options.directory.enabled = true;
  options.directory.park_dir = park_dir;
  options.directory.working_set_capacity = 1024;
  options.directory.admission.enabled = true;
  options.directory.admission.tenants = {
      {/*tenant_id=*/1, /*weight=*/8.0, TenantPriority::kCritical},
      {/*tenant_id=*/2, /*weight=*/4.0, TenantPriority::kStandard},
      {/*tenant_id=*/3, /*weight=*/1.0, TenantPriority::kBestEffort},
  };
  options.directory.ApplyEnv();

  std::atomic<uint64_t> results{0};
  StreamRuntime runtime(*proto, options,
                        [&results](const StreamResult&) { ++results; });

  std::vector<ProducerTally> tallies(kProducers);
  std::vector<std::thread> producers;
  for (size_t w = 0; w < kProducers; ++w) {
    producers.emplace_back(Produce, &runtime, w, kStreams, &tallies[w]);
  }
  for (auto& t : producers) t.join();
  runtime.Flush();

  uint64_t accepted = 0, labeled = 0, dropped = 0;
  for (const ProducerTally& t : tallies) {
    accepted += t.accepted;
    labeled += t.labeled;
    dropped += t.dropped_unlabeled;
  }
  RuntimeStatsSnapshot snapshot = runtime.Snapshot();
  const DirectoryStatsSnapshot& dir = snapshot.directory;
  runtime.Shutdown();

  // ---- Contract checks ----------------------------------------------
  struct Check {
    const char* name;
    bool ok;
  };
  std::vector<Check> checks;
  checks.push_back({"hydration_invariant",
                    dir.hydrations_fresh + dir.hydrations_restored ==
                        dir.evictions + dir.discards + dir.resident});
  checks.push_back({"working_set_bounded", dir.resident <= dir.capacity});
  // Every stream whose traffic was accepted activated; the only streams
  // that may never hydrate are those whose sole (unlabeled, droppable)
  // batch was admission-rejected on a pressured queue.
  checks.push_back(
      {"all_streams_activated", dir.hydrations_fresh + dropped >= kStreams});
  checks.push_back({"evict_hydrate_cycled",
                    dir.evictions > 0 && dir.hydrations_restored > 0});
  checks.push_back(
      {"every_accepted_batch_processed",
       snapshot.totals.enqueued == accepted &&
           snapshot.totals.processed == snapshot.totals.enqueued});
  checks.push_back({"zero_labeled_loss",
                    snapshot.totals.quarantined == 0 &&
                        snapshot.totals.undrained == 0 &&
                        runtime.TakeDeadLetters().empty()});

  // Shutdown parked every resident and evictions parked the rest, so every
  // stream that carried labeled traffic (even ids — the blocking-Submit
  // class that can never be dropped) must be restorable from the park
  // store. A 512-stream sample keeps the e2e fast.
  bool parked_ok = true;
  for (uint64_t id = 0; id < kStreams && parked_ok; id += kStreams / 512) {
    const uint64_t even = id & ~uint64_t{1};
    parked_ok = runtime.park_store()
                    ->ReadLatest("stream-" + std::to_string(even))
                    .ok();
  }
  checks.push_back({"labeled_streams_restorable", parked_ok});

  bool ok = true;
  for (const Check& c : checks) {
    std::printf("%-32s %s\n", c.name, c.ok ? "OK" : "FAIL");
    ok = ok && c.ok;
  }
  std::printf("\naccepted=%llu (labeled=%llu) dropped_unlabeled=%llu "
              "results=%llu\nresident=%llu/%llu evictions=%llu "
              "restored=%llu\n",
              static_cast<unsigned long long>(accepted),
              static_cast<unsigned long long>(labeled),
              static_cast<unsigned long long>(dropped),
              static_cast<unsigned long long>(results.load()),
              static_cast<unsigned long long>(dir.resident),
              static_cast<unsigned long long>(dir.capacity),
              static_cast<unsigned long long>(dir.evictions),
              static_cast<unsigned long long>(dir.hydrations_restored));

  std::ofstream out("DIRECTORY_stats.json");
  out << "{\n  \"streams\": " << kStreams
      << ",\n  \"accepted\": " << accepted << ",\n  \"labeled\": " << labeled
      << ",\n  \"dropped_unlabeled\": " << dropped
      << ",\n  \"results\": " << results.load() << ",\n  \"checks\": {";
  for (size_t i = 0; i < checks.size(); ++i) {
    out << (i > 0 ? ", " : "") << "\"" << checks[i].name
        << "\": " << (checks[i].ok ? "true" : "false");
  }
  out << "},\n  \"runtime_stats\": " << snapshot.ToJson() << "\n}\n";
  std::printf("Wrote DIRECTORY_stats.json\n");

  fs::remove_all(park_dir, ec);
  std::printf("%s\n", ok ? "All directory contracts hold." : "FAILED");
  return ok ? 0 : 1;
}
