// Network serving demo: a StreamServer on a loopback TCP port ingests
// drifting Hyperplane traffic from four concurrent StreamClient loadgen
// threads over the binary wire protocol. Labeled batches train the sharded
// runtime; unlabeled batches come back as RESULT frames on the submitting
// connection. The shard queues are deliberately small, so the run shows
// admission control engaging: full queues become OVERLOAD(retry_after)
// replies and the clients back off exponentially instead of stalling the
// server's event loop. The same port answers `GET /metrics` with the
// Prometheus exposition — the run scrapes itself and prints an excerpt.
//
// Set FREEWAY_NET_WORKERS=N to run the server multi-reactor: N worker
// event loops share the port via SO_REUSEPORT and the kernel shards the
// client connections across them.

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "eval/report.h"
#include "ml/models.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"

using namespace freeway;  // NOLINT — example driver.

namespace {

constexpr size_t kClients = 4;
constexpr size_t kBatchesPerClient = 25;
constexpr size_t kBatchSize = 128;
constexpr size_t kDim = 10;

/// One loadgen thread: its own connection, its own drifting stream. Every
/// 3rd batch goes out unlabeled (pure inference traffic) and its results
/// are collected on the same connection.
void RunClient(uint16_t port, uint64_t stream_id, ClientTallies* out) {
  ClientOptions options;
  options.port = port;
  StreamClient client(options);
  HyperplaneOptions source_options;
  source_options.dim = kDim;
  source_options.seed = 42 + stream_id;
  HyperplaneSource source(source_options);
  for (size_t b = 0; b < kBatchesPerClient; ++b) {
    auto batch = source.NextBatch(kBatchSize);
    batch.status().CheckOk();
    if ((b + 1) % 3 == 0) batch->labels.clear();
    client.Submit(stream_id, *std::move(batch)).CheckOk();
  }
  // Collect the remaining in-flight inference results.
  size_t expected = kBatchesPerClient / 3;
  while (client.tallies().results < expected) {
    auto more = client.PollResults(2000);
    if (!more.ok() || more->empty()) break;
  }
  *out = client.tallies();
}

}  // namespace

int main() {
  std::printf("== Network serving: %zu loadgen clients over loopback ==\n\n",
              kClients);
  ThreadPool::SetGlobalThreads(8);

  auto proto = MakeLogisticRegression(kDim, 2);
  MetricsRegistry registry;
  ServerOptions options;
  options.metrics = &registry;
  options.runtime.num_shards = 4;
  // Small queues: overload replies are part of the demo, not a failure.
  options.runtime.queue_capacity = 4;
  StreamServer server(*proto, options);
  server.Start().CheckOk();
  std::printf("serving on 127.0.0.1:%u (%zu worker%s, %s)\n\n", server.port(),
              server.num_workers(), server.num_workers() == 1 ? "" : "s",
              server.num_workers() == 1       ? "single reactor"
              : server.reuseport_sharding()   ? "SO_REUSEPORT sharding"
                                              : "dup-listener fallback");

  std::vector<ClientTallies> tallies(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back(RunClient, server.port(), c, &tallies[c]);
  }
  for (auto& t : clients) t.join();

  TablePrinter table({"Client", "Sent", "Acked", "Overloads", "Results",
                      "Reconnects"});
  uint64_t acked = 0;
  for (size_t c = 0; c < kClients; ++c) {
    const ClientTallies& t = tallies[c];
    acked += t.acked;
    table.AddRow({std::to_string(c), std::to_string(t.submits_sent),
                  std::to_string(t.acked), std::to_string(t.overloads),
                  std::to_string(t.results), std::to_string(t.reconnects)});
  }
  table.Print();
  std::printf("\n%llu of %zu batches admitted (every batch, despite "
              "overload replies)\n",
              static_cast<unsigned long long>(acked),
              kClients * kBatchesPerClient);

  // The server is its own Prometheus target: scrape it over the same port.
  auto scrape = HttpGet("127.0.0.1", server.port(), "/metrics");
  scrape.status().CheckOk();
  std::printf("\nGET /metrics excerpt:\n");
  std::istringstream lines(*scrape);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("freeway_net_", 0) == 0) std::printf("  %s\n", line.c_str());
  }

  server.Stop();
  const RuntimeStatsSnapshot snapshot = server.runtime()->Snapshot();
  std::printf("\nruntime after shutdown: enqueued=%llu processed=%llu "
              "rejected=%llu shed=%llu\n",
              static_cast<unsigned long long>(snapshot.totals.enqueued),
              static_cast<unsigned long long>(snapshot.totals.processed),
              static_cast<unsigned long long>(snapshot.totals.rejected),
              static_cast<unsigned long long>(snapshot.totals.shed));
  if (snapshot.totals.processed != acked) {
    std::printf("RECONCILIATION FAILED: processed != acked\n");
    return 1;
  }
  std::printf("reconciliation OK: every acked batch was processed\n");
  std::printf("\nDone.\n");
  return 0;
}
