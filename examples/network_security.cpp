// Network-security scenario (the paper's NSL-KDD motivation): attack waves
// arrive as sudden distribution shifts with heavy class imbalance, and known
// attack families return later as reoccurring shifts.
//
// This example runs the full deployment pipeline — a single mixed stream of
// labeled (training) and unlabeled (inference) traffic routed by the
// StreamPipeline — and shows how the strategy selector reacts to each wave.
//
// Build & run:  ./build/examples/network_security

#include <cstdio>

#include "common/strings.h"
#include "core/pipeline.h"
#include "data/simulators.h"
#include "ml/models.h"

using namespace freeway;  // NOLINT — example code.

namespace {

const char* kClassNames[] = {"normal", "dos", "probe", "r2l", "u2r"};

void PrintWaveHeader(DriftKind kind) {
  if (kind == DriftKind::kSudden) {
    std::printf("--- sudden shift: unknown traffic pattern begins ---\n");
  } else if (kind == DriftKind::kReoccurring) {
    std::printf("--- reoccurring shift: a known pattern returns ---\n");
  }
}

}  // namespace

int main() {
  auto stream = MakeNslKddSim(/*seed=*/2026);

  std::unique_ptr<Model> model =
      MakeMlp(stream->input_dim(), stream->num_classes());

  PipelineOptions options;
  options.learner.alpha = 1.96;
  options.learner.kdg_buffer = 20;
  StreamPipeline pipeline(*model, options);

  const size_t batch_size = 512;
  size_t alerts = 0;
  for (int b = 0; b < 90; ++b) {
    Result<Batch> batch = stream->NextBatch(batch_size);
    batch.status().CheckOk();
    const BatchMeta meta = stream->LastBatchMeta();
    if (meta.shift_event) PrintWaveHeader(meta.segment_kind);

    // Deployment pattern: every 4th batch arrives unlabeled (pure inference
    // traffic — e.g. flows whose ground truth is not yet known); the rest
    // are labeled and feed the training path.
    if (b % 4 == 3) {
      Batch unlabeled = *batch;
      std::vector<int> truth = std::move(unlabeled.labels);
      unlabeled.labels.clear();
      auto result = pipeline.Push(unlabeled);
      result.status().CheckOk();
      const InferenceReport& report = **result;

      // Count predicted-attack flows (anything not "normal").
      size_t predicted_attacks = 0;
      size_t hits = 0;
      for (size_t i = 0; i < truth.size(); ++i) {
        if (report.predictions[i] != 0) ++predicted_attacks;
        if (report.predictions[i] == truth[i]) ++hits;
      }
      const double attack_rate = static_cast<double>(predicted_attacks) /
                                 static_cast<double>(truth.size());
      if (attack_rate > 0.5) ++alerts;
      std::printf(
          "batch %3d [infer]  acc=%s  attack-rate=%s  strategy=%s\n", b,
          FormatPercent(static_cast<double>(hits) /
                        static_cast<double>(truth.size()))
              .c_str(),
          FormatPercent(attack_rate).c_str(), StrategyName(report.strategy));
    } else {
      pipeline.Push(*batch).status().CheckOk();
    }
  }

  const LearnerStats& stats = pipeline.learner().stats();
  std::printf("\nsummary:\n");
  std::printf("  inference batches: %zu, training batches: %zu\n",
              stats.batches_inferred, stats.batches_trained);
  std::printf("  CEC activations (sudden waves):        %zu\n",
              stats.cec_inferences);
  std::printf("  knowledge reuses (returning attacks):  %zu\n",
              stats.knowledge_inferences);
  std::printf("  high-attack-rate alerts raised:        %zu\n", alerts);
  std::printf("  class families tracked: ");
  for (size_t c = 0; c < stream->num_classes(); ++c) {
    std::printf("%s%s", c == 0 ? "" : ", ", kClassNames[c]);
  }
  std::printf("\n");
  return 0;
}
