// Power-scheduling scenario (the paper's Electricity motivation): intraday
// demand regimes drift directionally, spike suddenly, and reoccur daily.
// This example contrasts a plain streaming MLP with FreewayML on identical
// streams and prints a side-by-side accuracy series — a miniature of the
// paper's Fig. 9 — plus the knowledge the framework accumulated about the
// recurring regimes.
//
// Build & run:  ./build/examples/electricity_forecast

#include <cstdio>

#include "baselines/factory.h"
#include "baselines/freeway_adapter.h"
#include "common/strings.h"
#include "data/simulators.h"
#include "ml/models.h"

using namespace freeway;  // NOLINT — example code.

int main() {
  const uint64_t seed = 77;
  const size_t batch_size = 512;
  const int num_batches = 80;

  // Two identical streams, one per system, so the comparison is exact.
  auto stream_plain = MakeElectricitySim(seed);
  auto stream_freeway = MakeElectricitySim(seed);

  auto plain = MakeSystem("Plain", ModelKind::kMlp,
                          stream_plain->input_dim(),
                          stream_plain->num_classes());
  plain.status().CheckOk();

  std::unique_ptr<Model> proto = MakeMlp(stream_freeway->input_dim(),
                                         stream_freeway->num_classes());
  FreewayAdapter freeway(*proto);

  std::printf("batch  regime        plain    freeway  strategy\n");
  double plain_sum = 0.0, freeway_sum = 0.0;
  int measured = 0;
  for (int b = 0; b < num_batches; ++b) {
    Result<Batch> batch_a = stream_plain->NextBatch(batch_size);
    Result<Batch> batch_b = stream_freeway->NextBatch(batch_size);
    batch_a.status().CheckOk();
    batch_b.status().CheckOk();

    auto pred_plain = (*plain)->PrequentialStep(*batch_a);
    auto pred_freeway = freeway.PrequentialStep(*batch_b);
    pred_plain.status().CheckOk();
    pred_freeway.status().CheckOk();

    if (b < 10) continue;  // Skip the cold start in the printed series.

    size_t hits_plain = 0, hits_freeway = 0;
    for (size_t i = 0; i < batch_a->size(); ++i) {
      if ((*pred_plain)[i] == batch_a->labels[i]) ++hits_plain;
      if ((*pred_freeway)[i] == batch_b->labels[i]) ++hits_freeway;
    }
    const double acc_plain =
        static_cast<double>(hits_plain) / static_cast<double>(batch_a->size());
    const double acc_freeway = static_cast<double>(hits_freeway) /
                               static_cast<double>(batch_b->size());
    plain_sum += acc_plain;
    freeway_sum += acc_freeway;
    ++measured;

    const BatchMeta meta = stream_freeway->LastBatchMeta();
    if (b % 5 == 0 || meta.shift_event) {
      std::printf("%5d  %-12s  %s  %s  %s\n", b,
                  meta.shift_event ? DriftKindName(meta.segment_kind)
                                   : "steady",
                  FormatPercent(acc_plain).c_str(),
                  FormatPercent(acc_freeway).c_str(),
                  StrategyName(freeway.last_report().strategy));
    }
  }

  std::printf("\nglobal average accuracy over %d measured batches:\n",
              measured);
  std::printf("  plain StreamingMLP : %s\n",
              FormatPercent(plain_sum / measured).c_str());
  std::printf("  FreewayML          : %s\n",
              FormatPercent(freeway_sum / measured).c_str());

  const Learner& learner = freeway.learner();
  std::printf("\nknowledge about recurring demand regimes: %zu entries "
              "(%.1f KB hot)\n",
              learner.knowledge().hot_count(),
              static_cast<double>(learner.knowledge().HotSpaceBytes()) /
                  1024.0);
  std::printf("strategy usage: ensemble=%zu cec=%zu knowledge=%zu\n",
              learner.stats().ensemble_inferences,
              learner.stats().cec_inferences,
              learner.stats().knowledge_inferences);
  return 0;
}
