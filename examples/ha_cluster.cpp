// Replicated high-availability demo: three StreamServer processes form a
// raft cluster on loopback, a client streams labeled batches at the
// leader, and the leader process is SIGKILLed mid-stream — real machine
// loss, not an in-process simulation. The client fails over to the new
// leader and every submit keeps returning OK.
//
// The run is exit-gated on the reconciliation: after the stream ends, the
// parent opens both survivors' ingest logs read-only (from outside the
// server processes), replays them, and requires
//   - every acknowledged batch present exactly once (zero labeled loss,
//     no duplicates), and
//   - the two logs byte-identical in replayed content,
// exiting non-zero otherwise. CI runs this binary under the sanitizers.
//
// Forking happens before any server (or thread) exists; each child builds
// its node and runs until SIGTERM. Cluster logs land in
// ha_cluster_artifacts/ (one file per node) so a failing CI run can be
// diagnosed from the uploaded directory.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <filesystem>
#include <set>
#include <string>
#include <sys/types.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include "data/synthetic.h"
#include "ingest/ingest_log.h"
#include "ml/models.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket_util.h"
#include "obs/metrics.h"

using namespace freeway;  // NOLINT — example driver.

namespace {

namespace fs = std::filesystem;

constexpr size_t kDim = 8;
constexpr size_t kBatchRows = 64;
constexpr int kBatchesBeforeKill = 20;
constexpr int kBatchesAfterKill = 20;
constexpr uint64_t kStreamId = 7;
constexpr uint64_t kClientId = 424242;

volatile sig_atomic_t g_terminate = 0;
void OnTerm(int) { g_terminate = 1; }

uint16_t ReservePort() {
  auto fd = net::CreateListenSocket("127.0.0.1", 0, 4, false);
  fd.status().CheckOk();
  auto port = net::LocalPort(*fd);
  port.status().CheckOk();
  net::CloseFd(*fd);
  return *port;
}

/// Child body: one cluster node. Runs until SIGTERM, then stops cleanly.
/// Never returns.
[[noreturn]] void RunNode(const fs::path& root, size_t index,
                          const std::vector<uint16_t>& ports) {
  // Per-node log file so a CI failure can be unpicked node by node. Lands
  // under the working directory (not the scratch root) so CI can upload
  // build/ha_cluster_artifacts/ directly.
  const std::string log_path =
      (fs::current_path() / "ha_cluster_artifacts" /
       ("node" + std::to_string(index + 1) + ".log"))
          .string();
  const int log_fd = ::open(log_path.c_str(),
                            O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (log_fd >= 0) {
    ::dup2(log_fd, STDOUT_FILENO);
    ::dup2(log_fd, STDERR_FILENO);
    ::close(log_fd);
  }
  std::signal(SIGTERM, OnTerm);

  MetricsRegistry registry;
  ServerOptions options;
  options.metrics = &registry;
  options.port = ports[index];
  options.num_workers = 1;
  options.runtime.num_shards = 2;
  options.ingest.enabled = true;
  options.ingest.log_dir =
      (root / ("n" + std::to_string(index)) / "log").string();
  options.replication.enabled = true;
  options.replication.node_id = index + 1;
  options.replication.data_dir =
      (root / ("n" + std::to_string(index)) / "raft").string();
  options.replication.tick_millis = 10;
  options.replication.heartbeat_ticks = 2;
  for (size_t j = 0; j < ports.size(); ++j) {
    if (j == index) continue;
    options.replication.peers.push_back(
        {static_cast<uint64_t>(j + 1), "127.0.0.1", ports[j]});
  }

  auto proto = MakeLogisticRegression(kDim, 2);
  StreamServer server(*proto, std::move(options));
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "node %zu failed to start: %s\n", index + 1,
                 started.ToString().c_str());
    std::_Exit(2);
  }
  std::printf("node %zu serving on 127.0.0.1:%u\n", index + 1,
              ports[index]);
  std::fflush(stdout);
  while (g_terminate == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  server.Stop();
  std::printf("node %zu stopped (last_lsn %llu)\n", index + 1,
              static_cast<unsigned long long>(server.ingest_log()->last_lsn()));
  std::_Exit(0);
}

/// Replays one node's ingest log from outside its process. Returns the
/// (client_id, sequence) pairs seen, in replay order.
std::vector<std::pair<uint64_t, uint64_t>> ReplayLog(const fs::path& dir) {
  IngestLogOptions options;
  options.directory = dir.string();
  options.read_only = true;
  IngestLog log(options);
  log.Open(nullptr).CheckOk();
  std::vector<std::pair<uint64_t, uint64_t>> records;
  log.Replay([&](const IngestRecord& record) {
        records.emplace_back(record.client_id, record.sequence);
        return Status::OK();
      })
      .CheckOk();
  return records;
}

}  // namespace

int main() {
  std::printf("== Replicated HA: 3-node cluster, leader killed "
              "mid-stream ==\n\n");
  const fs::path root =
      fs::temp_directory_path() / "freeway_ha_cluster_example";
  std::error_code ec;
  fs::remove_all(root, ec);
  fs::create_directories(root);
  fs::create_directories(fs::current_path() / "ha_cluster_artifacts");

  std::vector<uint16_t> ports = {ReservePort(), ReservePort(),
                                 ReservePort()};
  std::vector<pid_t> pids(3, -1);
  for (size_t i = 0; i < 3; ++i) {
    const pid_t pid = ::fork();
    if (pid == 0) RunNode(root, i, ports);  // Child: never returns.
    pids[i] = pid;
  }

  ClientOptions copts;
  copts.client_id = kClientId;
  copts.max_submit_attempts = 64;
  // Short reply timeout: a freshly-killed leader's port may still accept
  // (backlog) — only timing out and rotating finds the new leader.
  copts.reply_timeout_millis = 500;
  copts.backoff_initial_micros = 500;
  copts.backoff_max_micros = 50000;
  for (uint16_t port : ports) copts.endpoints.push_back({"127.0.0.1", port});
  StreamClient client(copts);

  HyperplaneOptions sopts;
  sopts.dim = kDim;
  sopts.seed = 7;
  HyperplaneSource source(sopts);

  int acked = 0;
  for (int b = 0; b < kBatchesBeforeKill; ++b) {
    auto batch = source.NextBatch(kBatchRows);
    batch.status().CheckOk();
    client.Submit(kStreamId, *std::move(batch)).CheckOk();
    ++acked;
  }
  // The endpoint the last ACK came from is the leader.
  const uint16_t leader_port = client.current_endpoint().port;
  size_t leader = 0;
  while (ports[leader] != leader_port) ++leader;
  std::printf("streamed %d batches; leader is node %zu (port %u)\n", acked,
              leader + 1, leader_port);

  std::printf("SIGKILL node %zu mid-stream...\n", leader + 1);
  ::kill(pids[leader], SIGKILL);
  int status = 0;
  ::waitpid(pids[leader], &status, 0);

  for (int b = 0; b < kBatchesAfterKill; ++b) {
    auto batch = source.NextBatch(kBatchRows);
    batch.status().CheckOk();
    Status submitted = client.Submit(kStreamId, *std::move(batch));
    if (!submitted.ok()) {
      std::fprintf(stderr, "FAIL: batch %d lost after leader kill: %s\n",
                   acked + b, submitted.ToString().c_str());
      for (size_t i = 0; i < 3; ++i) {
        if (i != leader) ::kill(pids[i], SIGTERM);
      }
      return 1;
    }
    ++acked;
  }
  std::printf("all %d submits acknowledged across the failover "
              "(%llu endpoint switches, %llu redirects)\n",
              acked,
              static_cast<unsigned long long>(client.tallies().failovers),
              static_cast<unsigned long long>(client.tallies().not_leader));

  // Let the survivor pair finish applying, then stop them cleanly.
  const uint64_t expected =
      static_cast<uint64_t>(kBatchesBeforeKill + kBatchesAfterKill);
  for (int spin = 0; spin < 200; ++spin) {
    bool caught_up = true;
    for (size_t i = 0; i < 3; ++i) {
      if (i == leader) continue;
      if (ReplayLog(root / ("n" + std::to_string(i)) / "log").size() <
          expected) {
        caught_up = false;
      }
    }
    if (caught_up) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  for (size_t i = 0; i < 3; ++i) {
    if (i != leader) ::kill(pids[i], SIGTERM);
  }
  for (size_t i = 0; i < 3; ++i) {
    if (i != leader) ::waitpid(pids[i], &status, 0);
  }

  // Exit-gated reconciliation over the survivors' durable logs.
  int rc = 0;
  std::vector<std::vector<std::pair<uint64_t, uint64_t>>> replays;
  for (size_t i = 0; i < 3; ++i) {
    if (i == leader) continue;
    auto records = ReplayLog(root / ("n" + std::to_string(i)) / "log");
    const std::set<std::pair<uint64_t, uint64_t>> unique(records.begin(),
                                                         records.end());
    std::printf("node %zu log: %zu records, %zu unique\n", i + 1,
                records.size(), unique.size());
    if (records.size() != expected || unique.size() != expected) {
      std::fprintf(stderr,
                   "FAIL: node %zu holds %zu/%zu unique of %llu acked "
                   "batches\n",
                   i + 1, unique.size(), records.size(),
                   static_cast<unsigned long long>(expected));
      rc = 1;
    }
    replays.push_back(std::move(records));
  }
  if (replays.size() == 2 && replays[0] != replays[1]) {
    std::fprintf(stderr, "FAIL: survivor logs diverge\n");
    rc = 1;
  }
  if (rc == 0) {
    std::printf("\nreconciled: zero labeled-batch loss, exactly-once, "
                "identical survivor logs\n");
  }
  return rc;
}
