#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/reporter.h"

namespace freeway {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("freeway_test_total");
  EXPECT_EQ(counter->Value(), 0u);
  counter->Inc();
  counter->Inc(41);
  EXPECT_EQ(counter->Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  // The TSan canary: many threads hammering one counter must be data-race
  // free and lose no increments (each thread writes its own slot).
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("freeway_test_concurrent_total");
  constexpr size_t kThreads = 8;
  constexpr size_t kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (size_t i = 0; i < kIncrements; ++i) counter->Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->Value(), kThreads * kIncrements);
}

TEST(GaugeTest, SetAddIncDec) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("freeway_test_depth");
  EXPECT_EQ(gauge->Value(), 0);
  gauge->Set(10);
  gauge->Add(-3);
  gauge->Inc();
  gauge->Dec();
  gauge->Dec();
  EXPECT_EQ(gauge->Value(), 6);
}

TEST(GaugeTest, ConcurrentBalancedUpdatesReturnToZero) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("freeway_test_balanced_depth");
  constexpr size_t kThreads = 8;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([gauge] {
      for (size_t i = 0; i < 5000; ++i) {
        gauge->Inc();
        gauge->Dec();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(gauge->Value(), 0);
}

TEST(HistogramTest, BucketsByUpperBoundInclusive) {
  MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("freeway_test_seconds", {1.0, 2.0, 4.0});
  histogram->Observe(0.5);  // bucket 0 (<= 1.0)
  histogram->Observe(1.0);  // bucket 0 (bound is inclusive)
  histogram->Observe(1.5);  // bucket 1
  histogram->Observe(9.0);  // +Inf bucket
  EXPECT_EQ(histogram->TotalCount(), 4u);
  EXPECT_DOUBLE_EQ(histogram->Sum(), 12.0);
  EXPECT_EQ(histogram->BucketCount(0), 2u);
  EXPECT_EQ(histogram->BucketCount(1), 1u);
  EXPECT_EQ(histogram->BucketCount(2), 0u);
  EXPECT_EQ(histogram->BucketCount(3), 1u);  // +Inf
}

TEST(HistogramTest, DefaultBoundsAreAscending) {
  const std::vector<double> bounds = Histogram::DefaultLatencyBounds();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(HistogramTest, ConcurrentObservationsAreExact) {
  MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("freeway_test_concurrent_seconds", {0.5});
  constexpr size_t kThreads = 8;
  constexpr size_t kObservations = 4000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram] {
      for (size_t i = 0; i < kObservations; ++i) {
        histogram->Observe(i % 2 == 0 ? 0.25 : 1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(histogram->TotalCount(), kThreads * kObservations);
  EXPECT_EQ(histogram->BucketCount(0), kThreads * kObservations / 2);
  EXPECT_EQ(histogram->BucketCount(1), kThreads * kObservations / 2);
}

TEST(MetricsRegistryTest, GetIsIdempotent) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("freeway_test_total");
  Counter* second = registry.GetCounter("freeway_test_total");
  EXPECT_EQ(first, second);
  Histogram* h1 = registry.GetHistogram("freeway_test_seconds", {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("freeway_test_seconds");
  EXPECT_EQ(h1, h2);
  // The bounds of the first creation win.
  EXPECT_EQ(h2->bounds().size(), 2u);
}

TEST(MetricsRegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("freeway_test_total"), nullptr);
  EXPECT_EQ(registry.GetGauge("freeway_test_total"), nullptr);
  EXPECT_EQ(registry.GetHistogram("freeway_test_total"), nullptr);
  ASSERT_NE(registry.GetGauge("freeway_test_depth"), nullptr);
  EXPECT_EQ(registry.GetCounter("freeway_test_depth"), nullptr);
}

TEST(MetricsRegistryTest, JsonExposition) {
  MetricsRegistry registry;
  registry.GetCounter("freeway_a_total")->Inc(3);
  registry.GetGauge("freeway_b_depth")->Set(-2);
  registry.GetHistogram("freeway_c_seconds", {1.0})->Observe(0.5);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"freeway_a_total\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"freeway_b_depth\": -2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("+Inf"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, PrometheusExposition) {
  MetricsRegistry registry;
  registry.GetCounter("freeway_runtime_batches_total{event=\"shed\"}")
      ->Inc(2);
  registry.GetCounter("freeway_runtime_batches_total{event=\"enqueued\"}")
      ->Inc(7);
  registry.GetGauge("freeway_runtime_queue_depth{shard=\"0\"}")->Set(4);
  Histogram* histogram =
      registry.GetHistogram("freeway_pipeline_push_seconds", {1.0, 2.0});
  histogram->Observe(0.5);
  histogram->Observe(1.5);
  const std::string text = registry.ToPrometheusText();
  // One TYPE comment per family, not per labeled series.
  EXPECT_NE(text.find("# TYPE freeway_runtime_batches_total counter"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("# TYPE freeway_runtime_batches_total counter"),
            text.rfind("# TYPE freeway_runtime_batches_total counter"))
      << text;
  EXPECT_NE(
      text.find("freeway_runtime_batches_total{event=\"shed\"} 2"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("freeway_runtime_queue_depth{shard=\"0\"} 4"),
            std::string::npos)
      << text;
  // Histogram buckets are cumulative and end at +Inf == count.
  EXPECT_NE(text.find("freeway_pipeline_push_seconds_bucket{le=\"1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("freeway_pipeline_push_seconds_bucket{le=\"2\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("freeway_pipeline_push_seconds_bucket{le=\"+Inf\"} 2"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("freeway_pipeline_push_seconds_count 2"),
            std::string::npos)
      << text;
}

TEST(PeriodicReporterTest, EmitsSnapshotsAndFinalOnStop) {
  MetricsRegistry registry;
  registry.GetCounter("freeway_test_total")->Inc(5);
  std::mutex mutex;
  std::vector<std::string> delivered;
  PeriodicReporter reporter(
      &registry, std::chrono::milliseconds(5),
      [&](const std::string& snapshot) {
        std::lock_guard<std::mutex> lock(mutex);
        delivered.push_back(snapshot);
      },
      PeriodicReporter::Format::kPrometheusText);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  reporter.Stop();
  reporter.Stop();  // Idempotent.
  ASSERT_GE(reporter.reports_emitted(), 1u);
  std::lock_guard<std::mutex> lock(mutex);
  ASSERT_EQ(delivered.size(), reporter.reports_emitted());
  EXPECT_NE(delivered.back().find("freeway_test_total 5"), std::string::npos);
}

TEST(PeriodicReporterTest, FinalSnapshotSeesLateUpdates) {
  // A run shorter than the interval still records its end-state.
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("freeway_test_total");
  std::mutex mutex;
  std::string last;
  {
    PeriodicReporter reporter(&registry, std::chrono::hours(1),
                              [&](const std::string& snapshot) {
                                std::lock_guard<std::mutex> lock(mutex);
                                last = snapshot;
                              });
    counter->Inc(3);
  }
  std::lock_guard<std::mutex> lock(mutex);
  EXPECT_NE(last.find("\"freeway_test_total\": 3"), std::string::npos)
      << last;
}

}  // namespace
}  // namespace freeway
