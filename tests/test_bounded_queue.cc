#include "runtime/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace freeway {
namespace {

using Queue = BoundedQueue<int>;

TEST(BoundedQueueTest, FifoOrderAndConsumerActivation) {
  Queue queue(8);
  auto first = queue.PushBlocking(1);
  EXPECT_TRUE(first.accepted);
  EXPECT_TRUE(first.activate_consumer);  // Idle queue: caller must schedule.
  auto second = queue.PushBlocking(2);
  EXPECT_TRUE(second.accepted);
  EXPECT_FALSE(second.activate_consumer);  // Consumer already active.

  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.Pop(&out));  // Empty: consumer deactivates.

  // Deactivated consumer must be re-activated by the next push.
  EXPECT_TRUE(queue.PushBlocking(3).activate_consumer);
}

TEST(BoundedQueueTest, TracksHighWater) {
  Queue queue(8);
  for (int i = 0; i < 5; ++i) queue.PushBlocking(i);
  int out = 0;
  while (queue.Pop(&out)) {
  }
  EXPECT_EQ(queue.high_water(), 5u);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, PushBlocksOnFullUntilPop) {
  Queue queue(2);
  queue.PushBlocking(1);
  queue.PushBlocking(2);

  std::atomic<bool> third_done{false};
  int64_t blocked_micros = 0;
  std::thread producer([&] {
    auto result = queue.PushBlocking(3);
    blocked_micros = result.blocked_micros;
    EXPECT_TRUE(result.accepted);
    third_done.store(true);
  });

  // Give the producer time to park on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_done.load());

  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));  // Frees one slot.
  producer.join();
  EXPECT_TRUE(third_done.load());
  EXPECT_GT(blocked_micros, 0);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedQueueTest, SheddingEvictsOldestVictim) {
  Queue queue(3);
  queue.PushBlocking(10);  // victim (even)
  queue.PushBlocking(11);
  queue.PushBlocking(12);  // victim, but 10 is older

  auto result =
      queue.PushShedding(13, [](int value) { return value % 2 == 0; });
  EXPECT_TRUE(result.accepted);
  EXPECT_TRUE(result.shed);
  EXPECT_EQ(queue.size(), 3u);

  std::vector<int> drained;
  int out = 0;
  while (queue.Pop(&out)) drained.push_back(out);
  EXPECT_EQ(drained, (std::vector<int>{11, 12, 13}));
}

TEST(BoundedQueueTest, SheddingFallsBackToBlockingWithoutVictims) {
  Queue queue(2);
  queue.PushBlocking(1);
  queue.PushBlocking(3);  // No even (sheddable) items in the queue.

  std::atomic<bool> done{false};
  std::thread producer([&] {
    auto result = queue.PushShedding(5, [](int value) { return value % 2 == 0; });
    EXPECT_TRUE(result.accepted);
    EXPECT_FALSE(result.shed);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load());

  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  producer.join();
  EXPECT_TRUE(done.load());
}

TEST(BoundedQueueTest, CloseRejectsPushesAndWakesBlockedProducers) {
  Queue queue(1);
  queue.PushBlocking(1);

  std::atomic<bool> rejected{false};
  std::thread producer([&] {
    auto result = queue.PushBlocking(2);
    rejected.store(!result.accepted);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  producer.join();
  EXPECT_TRUE(rejected.load());
  EXPECT_FALSE(queue.PushBlocking(3).accepted);

  // Accepted items survive the close so shutdown can drain.
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(BoundedQueueTest, WaitIdleBlocksUntilConsumerDrains) {
  Queue queue(4);
  queue.PushBlocking(1);
  queue.PushBlocking(2);

  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    int out = 0;
    while (queue.Pop(&out)) {
    }
  });
  queue.WaitIdle();
  EXPECT_EQ(queue.size(), 0u);
  consumer.join();
}

TEST(BoundedQueueTest, ManyProducersOneConsumer) {
  Queue queue(16);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;

  std::atomic<bool> stop{false};
  std::vector<int> drained;
  std::thread consumer([&] {
    int out = 0;
    while (!stop.load() || queue.size() > 0) {
      if (queue.Pop(&out)) drained.push_back(out);
    }
    while (queue.Pop(&out)) drained.push_back(out);
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(queue.PushBlocking(p * kPerProducer + i).accepted);
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true);
  consumer.join();

  ASSERT_EQ(drained.size(), static_cast<size_t>(kProducers * kPerProducer));
  // Per-producer FIFO: each producer's items appear in its own order.
  std::vector<int> last(kProducers, -1);
  for (int value : drained) {
    const int producer = value / kPerProducer;
    EXPECT_GT(value, last[producer]);
    last[producer] = value;
  }
}

TEST(BoundedQueueTest, CloseWhileProducerBlockedRejectsThatPush) {
  Queue queue(1);
  queue.PushBlocking(1);

  // Several producers park on the full queue; Close must wake every one of
  // them and reject every parked push — none may hang, none may enqueue.
  constexpr int kBlocked = 3;
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kBlocked; ++p) {
    producers.emplace_back([&queue, &rejected, p] {
      if (!queue.PushBlocking(100 + p).accepted) rejected.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  for (auto& t : producers) t.join();
  EXPECT_EQ(rejected.load(), kBlocked);
  EXPECT_EQ(queue.size(), 1u);  // Only the pre-close item remains.
}

TEST(BoundedQueueTest, CloseWithItemsKeepsThemPoppableInOrder) {
  Queue queue(8);
  for (int i = 0; i < 5; ++i) queue.PushBlocking(i);
  queue.Close();
  EXPECT_TRUE(queue.closed());

  std::vector<int> drained;
  int out = 0;
  while (queue.Pop(&out)) drained.push_back(out);
  EXPECT_EQ(drained, (std::vector<int>{0, 1, 2, 3, 4}));
  // Drained to empty: the queue reports idle immediately.
  queue.WaitIdle();
}

TEST(BoundedQueueTest, TakeAllRemovesEverythingAndFreesSpace) {
  Queue queue(2);
  queue.PushBlocking(1);
  queue.PushBlocking(2);

  std::atomic<bool> third_done{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.PushBlocking(3).accepted);
    third_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_done.load());

  // TakeAll empties the queue without consuming: the blocked producer gets
  // its slot and the taken items come back to the caller untouched.
  std::deque<int> taken = queue.TakeAll();
  producer.join();
  EXPECT_TRUE(third_done.load());
  EXPECT_EQ(taken, (std::deque<int>{1, 2}));
  EXPECT_EQ(queue.size(), 1u);  // The unblocked push landed after the take.
}

TEST(BoundedQueueTest, TakeAllOnEmptyQueueUnblocksWaitIdle) {
  Queue queue(4);
  queue.PushBlocking(1);  // Consumer marked active, nothing ever drains it.
  std::deque<int> taken = queue.TakeAll();
  EXPECT_EQ(taken.size(), 1u);
  int out = 0;
  EXPECT_FALSE(queue.Pop(&out));  // Deactivates the consumer.
  queue.WaitIdle();               // Returns immediately: empty and idle.
}

}  // namespace
}  // namespace freeway
