#include "clustering/kmeans.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace freeway {
namespace {

/// Three tight, well-separated blobs of `per` points each.
Matrix ThreeBlobs(size_t per, uint64_t seed) {
  Rng rng(seed);
  Matrix m(per * 3, 2);
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (size_t c = 0; c < 3; ++c) {
    for (size_t i = 0; i < per; ++i) {
      m.At(c * per + i, 0) = rng.Gaussian(centers[c][0], 0.3);
      m.At(c * per + i, 1) = rng.Gaussian(centers[c][1], 0.3);
    }
  }
  return m;
}

TEST(KMeansTest, ValidatesArguments) {
  Matrix pts(5, 2);
  EXPECT_FALSE(KMeans(pts, 0).ok());
  EXPECT_FALSE(KMeans(pts, 6).ok());
  EXPECT_FALSE(KMeans(Matrix(0, 2), 1).ok());
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  Matrix pts = ThreeBlobs(50, 7);
  auto result = KMeans(pts, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignments.size(), 150u);

  // All points of one blob share a cluster, and blobs get distinct clusters.
  std::set<int> blob_clusters;
  for (size_t blob = 0; blob < 3; ++blob) {
    const int first = result->assignments[blob * 50];
    for (size_t i = 0; i < 50; ++i) {
      EXPECT_EQ(result->assignments[blob * 50 + i], first);
    }
    blob_clusters.insert(first);
  }
  EXPECT_EQ(blob_clusters.size(), 3u);

  // Centroids land near the true centers.
  double best_origin = 1e18;
  for (size_t c = 0; c < 3; ++c) {
    std::vector<double> zero = {0.0, 0.0};
    best_origin = std::min(
        best_origin, vec::EuclideanDistance(result->centroids.Row(c), zero));
  }
  EXPECT_LT(best_origin, 0.5);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Matrix pts = ThreeBlobs(40, 11);
  auto k1 = KMeans(pts, 1);
  auto k3 = KMeans(pts, 3);
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(k3.ok());
  EXPECT_LT(k3->inertia, k1->inertia * 0.2);
}

TEST(KMeansTest, DeterministicUnderSeed) {
  Matrix pts = ThreeBlobs(30, 3);
  KMeansOptions opts;
  opts.seed = 5;
  auto a = KMeans(pts, 3, opts);
  auto b = KMeans(pts, 3, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
  EXPECT_DOUBLE_EQ(a->inertia, b->inertia);
}

TEST(KMeansTest, KEqualsNPutsOnePointPerCluster) {
  Matrix pts = Matrix::FromData(3, 1, {0.0, 5.0, 10.0}).value();
  auto result = KMeans(pts, 3);
  ASSERT_TRUE(result.ok());
  std::set<int> distinct(result->assignments.begin(),
                         result->assignments.end());
  EXPECT_EQ(distinct.size(), 3u);
  EXPECT_NEAR(result->inertia, 0.0, 1e-18);
}

TEST(KMeansTest, DuplicatePointsHandled) {
  // All identical points: must terminate and produce zero inertia.
  Matrix pts(20, 2);
  pts.Fill(1.0);
  auto result = KMeans(pts, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-18);
}

TEST(AssignToCentroidsTest, NearestWins) {
  Matrix centroids = Matrix::FromData(2, 1, {0.0, 10.0}).value();
  Matrix pts = Matrix::FromData(4, 1, {-1.0, 3.0, 7.0, 12.0}).value();
  auto assign = AssignToCentroids(pts, centroids);
  EXPECT_EQ(assign, (std::vector<int>{0, 0, 1, 1}));
}

}  // namespace
}  // namespace freeway
