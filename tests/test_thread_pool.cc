#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace freeway {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    for (size_t grain : {1u, 3u, 64u, 5000u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      pool.ParallelFor(0, n, grain, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " grain=" << grain
                                     << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, CoversOffsetRange) {
  ThreadPool pool(3);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(10, 110, 7, [&](size_t b, size_t e) {
    size_t local = 0;
    for (size_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local);
  });
  size_t expected = 0;
  for (size_t i = 10; i < 110; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, ChunkBoundariesIndependentOfPoolSize) {
  // The determinism contract: the chunk partition is a pure function of
  // (begin, end, grain). Collect the chunks at two pool sizes and compare.
  auto chunks_at = [](size_t threads) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> chunks;
    pool.ParallelFor(3, 250, 16, [&](size_t b, size_t e) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(b, e);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  EXPECT_EQ(chunks_at(1), chunks_at(4));
  EXPECT_EQ(chunks_at(2), chunks_at(8));
}

TEST(ThreadPoolTest, PropagatesFirstExceptionAfterDraining) {
  ThreadPool pool(4);
  std::atomic<size_t> visited{0};
  try {
    pool.ParallelFor(0, 100, 1, [&](size_t b, size_t) {
      visited.fetch_add(1);
      if (b == 50) throw std::runtime_error("chunk 50 failed");
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 50 failed");
  }
  // Every chunk still ran: an error does not abandon queued work.
  EXPECT_EQ(visited.load(), 100u);
}

TEST(ThreadPoolTest, NestedParallelForRunsSeriallyOnWorkers) {
  // Four chunks on a caller + 3 workers, with a rendezvous so each thread
  // takes exactly one chunk: the caller cannot drain the whole range before
  // the workers wake, so nested calls provably execute on worker threads.
  ThreadPool pool(4);
  std::atomic<size_t> arrived{0};
  std::atomic<size_t> on_worker{0};
  std::atomic<size_t> inner_total{0};
  pool.ParallelFor(0, 4, 1, [&](size_t, size_t) {
    arrived.fetch_add(1);
    while (arrived.load() < 4) {}
    if (ThreadPool::InWorkerThread()) on_worker.fetch_add(1);
    // Inner call from a worker must neither deadlock nor double-count.
    pool.ParallelFor(0, 10, 1, [&](size_t b, size_t e) {
      inner_total.fetch_add(e - b);
    });
  });
  EXPECT_EQ(on_worker.load(), 3u);
  EXPECT_EQ(inner_total.load(), 40u);
  EXPECT_FALSE(ThreadPool::InWorkerThread());
}

TEST(ThreadPoolTest, SerialPoolStillCovers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  size_t total = 0;  // No atomics needed: everything runs on this thread.
  pool.ParallelFor(0, 33, 4, [&](size_t b, size_t e) { total += e - b; });
  EXPECT_EQ(total, 33u);
}

TEST(ThreadPoolTest, GlobalPoolWorks) {
  ThreadPool::SetGlobalThreads(3);
  std::atomic<size_t> total{0};
  ParallelFor(0, 100, 9, [&](size_t b, size_t e) { total.fetch_add(e - b); });
  EXPECT_EQ(total.load(), 100u);
  ThreadPool::SetGlobalThreads(1);
}

TEST(ThreadPoolTest, MetricsCountSubmittedTasks) {
  MetricsRegistry registry;
  {
    // Single-thread pool: Submit runs inline, so task accounting is exact
    // and nothing ever sits in the queue.
    ThreadPool pool(1);
    pool.AttachMetrics(&registry);
    std::atomic<size_t> ran{0};
    for (int i = 0; i < 5; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    EXPECT_EQ(ran.load(), 5u);
  }
  EXPECT_EQ(registry.GetCounter("freeway_threadpool_tasks_total")->Value(),
            5u);
  EXPECT_EQ(registry.GetGauge("freeway_threadpool_queue_depth")->Value(), 0);
  EXPECT_EQ(
      registry.GetHistogram("freeway_threadpool_task_run_seconds")
          ->TotalCount(),
      5u);
  // Inline execution never queued, so no waits were recorded.
  EXPECT_EQ(
      registry.GetHistogram("freeway_threadpool_task_wait_seconds")
          ->TotalCount(),
      0u);
}

TEST(ThreadPoolTest, MetricsTrackQueuedTasksThroughWorkers) {
  MetricsRegistry registry;
  std::atomic<size_t> ran{0};
  {
    ThreadPool pool(3);
    pool.AttachMetrics(&registry);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    // Destruction drains the queue before joining the workers.
  }
  EXPECT_EQ(ran.load(), 20u);
  EXPECT_EQ(registry.GetCounter("freeway_threadpool_tasks_total")->Value(),
            20u);
  // Quiescent: every enqueued task was dequeued.
  EXPECT_EQ(registry.GetGauge("freeway_threadpool_queue_depth")->Value(), 0);
  EXPECT_EQ(
      registry.GetHistogram("freeway_threadpool_task_wait_seconds")
          ->TotalCount(),
      20u);
}

TEST(ThreadPoolTest, DetachedPoolRunsWithoutMetrics) {
  ThreadPool pool(2);
  std::atomic<size_t> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.AttachMetrics(nullptr);  // Explicit detach is a no-op when detached.
  pool.ParallelFor(0, 10, 1, [&](size_t, size_t) { ran.fetch_add(1); });
  while (ran.load() < 11) {
    std::this_thread::yield();
  }
  EXPECT_EQ(ran.load(), 11u);
}

TEST(ThreadPoolTest, GrainForCost) {
  EXPECT_EQ(GrainForCost(1, 1024), 1024u);
  EXPECT_EQ(GrainForCost(512, 1024), 2u);
  EXPECT_EQ(GrainForCost(4096, 1024), 1u);  // Never below one item.
  EXPECT_GE(GrainForCost(0), 1u);
}

}  // namespace
}  // namespace freeway
