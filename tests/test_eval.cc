#include <cmath>

#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "data/synthetic.h"
#include "eval/perf.h"
#include "eval/prequential.h"
#include "eval/report.h"

namespace freeway {
namespace {

TEST(PrequentialMetricsTest, GAccIsMeanOfBatchAccuracies) {
  PrequentialResult r;
  r.batch_accuracies = {0.8, 0.9, 1.0};
  FinalizePrequentialMetrics(&r);
  EXPECT_NEAR(r.g_acc, 0.9, 1e-12);
}

TEST(PrequentialMetricsTest, StabilityIndexFormula) {
  PrequentialResult r;
  r.batch_accuracies = {0.8, 0.9, 1.0};
  FinalizePrequentialMetrics(&r);
  const double mean = 0.9;
  const double sd = std::sqrt((0.01 + 0.0 + 0.01) / 3.0);
  EXPECT_NEAR(r.stability_index, std::exp(-sd / mean), 1e-12);
}

TEST(PrequentialMetricsTest, ConstantAccuracyGivesPerfectStability) {
  PrequentialResult r;
  r.batch_accuracies = {0.85, 0.85, 0.85, 0.85};
  FinalizePrequentialMetrics(&r);
  EXPECT_NEAR(r.stability_index, 1.0, 1e-12);
}

TEST(PrequentialMetricsTest, MoreVolatileStreamScoresLowerSi) {
  PrequentialResult stable, shaky;
  stable.batch_accuracies = {0.80, 0.82, 0.81, 0.80};
  shaky.batch_accuracies = {0.95, 0.55, 0.95, 0.55};
  FinalizePrequentialMetrics(&stable);
  FinalizePrequentialMetrics(&shaky);
  EXPECT_GT(stable.stability_index, shaky.stability_index);
}

TEST(PrequentialMetricsTest, EmptyResultSafe) {
  PrequentialResult r;
  FinalizePrequentialMetrics(&r);
  EXPECT_DOUBLE_EQ(r.g_acc, 0.0);
  EXPECT_DOUBLE_EQ(r.stability_index, 0.0);
}

TEST(PrequentialMetricsTest, PerPatternBuckets) {
  PrequentialResult r;
  r.batch_accuracies = {0.9, 0.5, 0.7, 0.8};
  r.batch_kinds = {DriftKind::kDirectional, DriftKind::kSudden,
                   DriftKind::kReoccurring, DriftKind::kLocalized};
  r.shift_events = {false, true, true, false};
  FinalizePrequentialMetrics(&r);
  EXPECT_EQ(r.per_pattern.slight_batches, 2u);
  EXPECT_NEAR(r.per_pattern.slight, 0.85, 1e-12);
  EXPECT_EQ(r.per_pattern.sudden_batches, 1u);
  EXPECT_NEAR(r.per_pattern.sudden, 0.5, 1e-12);
  EXPECT_EQ(r.per_pattern.reoccurring_batches, 1u);
  EXPECT_NEAR(r.per_pattern.reoccurring, 0.7, 1e-12);
}

TEST(RunPrequentialTest, EndToEndOnHyperplane) {
  auto learner = MakeSystem("Plain", ModelKind::kMlp, 10, 2);
  ASSERT_TRUE(learner.ok());
  HyperplaneSource source;
  PrequentialOptions opts;
  opts.num_batches = 30;
  opts.batch_size = 128;
  opts.warmup_batches = 5;
  auto result = RunPrequential(learner->get(), &source, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->batch_accuracies.size(), 25u);
  EXPECT_GT(result->g_acc, 0.6);  // Learns well above chance.
  EXPECT_GT(result->stability_index, 0.5);
  EXPECT_LE(result->stability_index, 1.0);
}

TEST(RunPrequentialTest, NullArgsRejected) {
  HyperplaneSource source;
  EXPECT_FALSE(RunPrequential(nullptr, &source, {}).ok());
  auto learner = MakeSystem("Plain", ModelKind::kMlp, 10, 2);
  EXPECT_FALSE(RunPrequential(learner->get(), nullptr, {}).ok());
}

TEST(PerfTest, LatencyMeasurementPositive) {
  auto learner = MakeSystem("Plain", ModelKind::kLogisticRegression, 10, 2);
  ASSERT_TRUE(learner.ok());
  HyperplaneSource source;
  PerfOptions opts;
  opts.batch_size = 256;
  opts.measure_batches = 5;
  opts.warmup_batches = 2;
  auto lat = MeasureLatency(learner->get(), &source, opts);
  ASSERT_TRUE(lat.ok());
  EXPECT_GT(lat->infer_micros, 0.0);
  EXPECT_GT(lat->update_micros, 0.0);
}

TEST(PerfTest, ThroughputMeasurementPositive) {
  auto learner = MakeSystem("Plain", ModelKind::kLogisticRegression, 10, 2);
  ASSERT_TRUE(learner.ok());
  HyperplaneSource source;
  PerfOptions opts;
  opts.batch_size = 256;
  opts.measure_batches = 5;
  opts.warmup_batches = 2;
  auto tput = MeasureThroughput(learner->get(), &source, opts);
  ASSERT_TRUE(tput.ok());
  EXPECT_GT(tput.value(), 0.0);
}

TEST(TablePrinterTest, FormatsAlignedTable) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "23456"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 23456 |"), std::string::npos);
}

TEST(SeriesPrinterTest, AlignsUnevenSeries) {
  SeriesPrinter series("batch");
  series.AddSeries("a", {0.5, 0.6});
  series.AddSeries("b", {0.7});
  const std::string out = series.ToString(2);
  EXPECT_NE(out.find("batch,a,b"), std::string::npos);
  EXPECT_NE(out.find("0,0.50,0.70"), std::string::npos);
  EXPECT_NE(out.find("1,0.60,-"), std::string::npos);
}

}  // namespace
}  // namespace freeway
