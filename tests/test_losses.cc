#include "ml/losses.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace freeway {
namespace {

TEST(SoftmaxTest, RowsSumToOne) {
  Matrix logits =
      Matrix::FromData(2, 3, {1.0, 2.0, 3.0, -5.0, 0.0, 5.0}).value();
  Matrix probs = Softmax(logits);
  for (size_t i = 0; i < 2; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_GT(probs.At(i, j), 0.0);
      sum += probs.At(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(SoftmaxTest, NumericallyStableForLargeLogits) {
  Matrix logits = Matrix::FromData(1, 2, {1000.0, 999.0}).value();
  Matrix probs = Softmax(logits);
  EXPECT_TRUE(std::isfinite(probs.At(0, 0)));
  EXPECT_NEAR(probs.At(0, 0), 1.0 / (1.0 + std::exp(-1.0)), 1e-9);
}

TEST(SoftmaxTest, ShiftInvariance) {
  Matrix a = Matrix::FromData(1, 3, {1.0, 2.0, 3.0}).value();
  Matrix b = Matrix::FromData(1, 3, {11.0, 12.0, 13.0}).value();
  Matrix pa = Softmax(a);
  Matrix pb = Softmax(b);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(pa.At(0, j), pb.At(0, j), 1e-12);
  }
}

TEST(CrossEntropyTest, PerfectPredictionNearZeroLoss) {
  Matrix logits = Matrix::FromData(1, 2, {20.0, -20.0}).value();
  EXPECT_NEAR(SoftmaxCrossEntropyLoss(logits, {0}), 0.0, 1e-8);
  EXPECT_GT(SoftmaxCrossEntropyLoss(logits, {1}), 10.0);
}

TEST(CrossEntropyTest, UniformLogitsGiveLogC) {
  Matrix logits(4, 3);  // All zeros -> uniform distribution.
  const double loss = SoftmaxCrossEntropyLoss(logits, {0, 1, 2, 0});
  EXPECT_NEAR(loss, std::log(3.0), 1e-9);
}

TEST(CrossEntropyGradTest, MatchesFiniteDifferences) {
  Rng rng(42);
  const size_t n = 5, c = 4;
  Matrix logits(n, c);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(rng.NextBelow(c));
    for (size_t j = 0; j < c; ++j) logits.At(i, j) = rng.Gaussian(0, 2);
  }
  Matrix grad = SoftmaxCrossEntropyGrad(logits, labels);

  const double eps = 1e-6;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < c; ++j) {
      Matrix up = logits, down = logits;
      up.At(i, j) += eps;
      down.At(i, j) -= eps;
      const double numeric = (SoftmaxCrossEntropyLoss(up, labels) -
                              SoftmaxCrossEntropyLoss(down, labels)) /
                             (2 * eps);
      EXPECT_NEAR(grad.At(i, j), numeric, 1e-7);
    }
  }
}

TEST(CrossEntropyGradTest, RowsSumToZero) {
  // d/dlogits of CE sums to zero per row (softmax shift invariance).
  Rng rng(1);
  Matrix logits(3, 5);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 5; ++j) logits.At(i, j) = rng.Gaussian(0, 1);
  }
  Matrix grad = SoftmaxCrossEntropyGrad(logits, {4, 2, 0});
  for (size_t i = 0; i < 3; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < 5; ++j) sum += grad.At(i, j);
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
}

}  // namespace
}  // namespace freeway
