#include "linalg/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "clustering/kmeans.h"
#include "common/rng.h"
#include "linalg/matrix.h"

namespace freeway {
namespace {

/// Scalar ↔ AVX2 equivalence for every dispatched kernel, plus the
/// dispatch machinery itself. On hosts without AVX2 the ForceTarget calls
/// degrade to scalar and the comparisons become trivially exact — the
/// suite still runs, it just stops being a cross-target test (CI covers
/// both by also running with FREEWAY_SIMD=off).
///
/// Tolerances: AVX2 kernels fuse multiply-adds and lane-split reductions,
/// so scalar and vector results are NOT bit-identical — they differ by
/// reassociation-level rounding. The bound used here is a relative 1e-12
/// (double epsilon is ~2.2e-16; thousands of accumulations stay far below
/// 1e-12 relative for well-conditioned inputs).

constexpr double kRelTol = 1e-12;

void ExpectClose(double a, double b, const char* what) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  EXPECT_LE(std::fabs(a - b), kRelTol * scale)
      << what << ": scalar=" << a << " avx2=" << b;
}

std::vector<double> RandomVector(Rng& rng, size_t n) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(-1.0, 1.0);
  return v;
}

/// RAII guard: force a target for one scope, restore the auto-resolved
/// target afterwards so test order does not leak state.
class TargetGuard {
 public:
  explicit TargetGuard(simd::DispatchTarget target)
      : previous_(simd::ActiveTarget()) {
    installed_ = simd::ForceTarget(target);
  }
  ~TargetGuard() { simd::ForceTarget(previous_); }
  simd::DispatchTarget installed() const { return installed_; }

 private:
  simd::DispatchTarget previous_;
  simd::DispatchTarget installed_;
};

TEST(SimdDispatchTest, ForceTargetInstallsAndReports) {
  {
    TargetGuard scalar(simd::DispatchTarget::kScalar);
    EXPECT_EQ(simd::ActiveTarget(), simd::DispatchTarget::kScalar);
    EXPECT_STREQ(simd::TargetName(simd::ActiveTarget()), "scalar");
  }
  {
    TargetGuard avx2(simd::DispatchTarget::kAvx2);
    if (simd::Avx2Supported()) {
      EXPECT_EQ(avx2.installed(), simd::DispatchTarget::kAvx2);
      EXPECT_STREQ(simd::TargetName(simd::ActiveTarget()), "avx2");
    } else {
      // Requesting AVX2 on a host without it must degrade, not crash.
      EXPECT_EQ(avx2.installed(), simd::DispatchTarget::kScalar);
    }
  }
}

TEST(SimdKernelTest, DotMatchesAcrossTargets) {
  Rng rng(17);
  // Lengths straddle every AVX2 code path: sub-lane, one lane, unaligned
  // tails, and a long reduction.
  for (size_t n : {0u, 1u, 3u, 4u, 7u, 8u, 15u, 16u, 17u, 64u, 1001u}) {
    const std::vector<double> a = RandomVector(rng, n);
    const std::vector<double> b = RandomVector(rng, n);
    double scalar = 0.0, vector = 0.0;
    {
      TargetGuard g(simd::DispatchTarget::kScalar);
      scalar = simd::Dot(a.data(), b.data(), n);
    }
    {
      TargetGuard g(simd::DispatchTarget::kAvx2);
      vector = simd::Dot(a.data(), b.data(), n);
    }
    ExpectClose(scalar, vector, "Dot");
  }
}

TEST(SimdKernelTest, SquaredDistanceMatchesAcrossTargets) {
  Rng rng(19);
  for (size_t n : {1u, 2u, 8u, 9u, 31u, 32u, 33u, 257u}) {
    const std::vector<double> a = RandomVector(rng, n);
    const std::vector<double> b = RandomVector(rng, n);
    double scalar = 0.0, vector = 0.0;
    {
      TargetGuard g(simd::DispatchTarget::kScalar);
      scalar = simd::SquaredDistance(a.data(), b.data(), n);
    }
    {
      TargetGuard g(simd::DispatchTarget::kAvx2);
      vector = simd::SquaredDistance(a.data(), b.data(), n);
    }
    ExpectClose(scalar, vector, "SquaredDistance");
    EXPECT_GE(vector, 0.0);
  }
}

TEST(SimdKernelTest, AccumPanel4MatchesAcrossTargets) {
  Rng rng(23);
  for (size_t n : {1u, 4u, 5u, 8u, 12u, 13u, 100u}) {
    const std::vector<double> b0 = RandomVector(rng, n);
    const std::vector<double> b1 = RandomVector(rng, n);
    const std::vector<double> b2 = RandomVector(rng, n);
    const std::vector<double> b3 = RandomVector(rng, n);
    const std::vector<double> base = RandomVector(rng, n);
    const double a0 = rng.NextDouble(), a1 = rng.NextDouble(),
                 a2 = rng.NextDouble(), a3 = rng.NextDouble();
    std::vector<double> scalar = base, vector = base;
    {
      TargetGuard g(simd::DispatchTarget::kScalar);
      simd::AccumPanel4(scalar.data(), b0.data(), b1.data(), b2.data(),
                        b3.data(), a0, a1, a2, a3, n);
    }
    {
      TargetGuard g(simd::DispatchTarget::kAvx2);
      simd::AccumPanel4(vector.data(), b0.data(), b1.data(), b2.data(),
                        b3.data(), a0, a1, a2, a3, n);
    }
    for (size_t j = 0; j < n; ++j) {
      ExpectClose(scalar[j], vector[j], "AccumPanel4");
    }
  }
}

TEST(SimdKernelTest, AxpyRowMatchesAcrossTargets) {
  Rng rng(29);
  for (size_t n : {1u, 3u, 8u, 11u, 64u}) {
    const std::vector<double> b = RandomVector(rng, n);
    const std::vector<double> base = RandomVector(rng, n);
    const double a = rng.Uniform(-2.0, 2.0);
    std::vector<double> scalar = base, vector = base;
    {
      TargetGuard g(simd::DispatchTarget::kScalar);
      simd::AxpyRow(scalar.data(), b.data(), a, n);
    }
    {
      TargetGuard g(simd::DispatchTarget::kAvx2);
      simd::AxpyRow(vector.data(), b.data(), a, n);
    }
    for (size_t j = 0; j < n; ++j) ExpectClose(scalar[j], vector[j], "Axpy");
  }
}

TEST(SimdKernelTest, NearestCentroidAgreesAndBreaksTiesLow) {
  Rng rng(31);
  for (size_t dim : {2u, 8u, 9u, 33u}) {
    const size_t k = 7;
    std::vector<double> centroids(k * dim);
    for (double& x : centroids) x = rng.NextDouble();
    for (int trial = 0; trial < 20; ++trial) {
      const std::vector<double> point = RandomVector(rng, dim);
      double d2_scalar = 0.0, d2_vector = 0.0;
      int scalar = -1, vector = -1;
      {
        TargetGuard g(simd::DispatchTarget::kScalar);
        scalar = simd::NearestCentroid(point.data(), centroids.data(), k, dim,
                                       &d2_scalar);
      }
      {
        TargetGuard g(simd::DispatchTarget::kAvx2);
        vector = simd::NearestCentroid(point.data(), centroids.data(), k, dim,
                                       &d2_vector);
      }
      // Random points have distinct distances, so the winner must agree
      // exactly (a tolerance-level distance tie would be a different test).
      EXPECT_EQ(scalar, vector) << "dim=" << dim << " trial=" << trial;
      ExpectClose(d2_scalar, d2_vector, "NearestCentroid d2");
    }
  }

  // Exact duplicate centroids: both targets must pick the lowest index.
  const std::vector<double> point = {0.5, 0.5};
  const std::vector<double> dup = {3.0, 3.0, 0.5, 0.5, 0.5, 0.5, 9.0, 9.0};
  for (simd::DispatchTarget t :
       {simd::DispatchTarget::kScalar, simd::DispatchTarget::kAvx2}) {
    TargetGuard g(t);
    EXPECT_EQ(simd::NearestCentroid(point.data(), dup.data(), 4, 2), 1);
  }
}

TEST(SimdIntegrationTest, MatMulToleranceAcrossTargets) {
  Rng rng(37);
  // Odd shapes force the k-tail and column-tail paths inside the GEMM.
  Matrix a(35, 27), b(27, 19);
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < a.cols(); ++j)
      a.At(i, j) = rng.Uniform(-1.0, 1.0);
  for (size_t i = 0; i < b.rows(); ++i)
    for (size_t j = 0; j < b.cols(); ++j)
      b.At(i, j) = rng.Uniform(-1.0, 1.0);

  Matrix scalar, vector;
  {
    TargetGuard g(simd::DispatchTarget::kScalar);
    scalar = a.MatMul(b);
  }
  {
    TargetGuard g(simd::DispatchTarget::kAvx2);
    vector = a.MatMul(b);
  }
  for (size_t i = 0; i < scalar.rows(); ++i) {
    for (size_t j = 0; j < scalar.cols(); ++j) {
      ExpectClose(scalar.At(i, j), vector.At(i, j), "MatMul");
    }
  }
}

TEST(SimdIntegrationTest, MatMulZeroSkipStillShortCircuitsNonFinite) {
  // The zero-skip contract: a == 0 entries are skipped entirely, so a 0 row
  // weight times an inf/NaN operand contributes nothing under BOTH targets
  // (the AVX2 panel only runs on all-nonzero groups).
  Matrix a(1, 4), b(4, 3);
  a.At(0, 0) = 1.0;
  a.At(0, 1) = 0.0;  // row of b with non-finite values — must be skipped
  a.At(0, 2) = 2.0;
  a.At(0, 3) = 0.0;
  for (size_t j = 0; j < 3; ++j) {
    b.At(0, j) = 1.0;
    b.At(1, j) = std::numeric_limits<double>::infinity();
    b.At(2, j) = 10.0;
    b.At(3, j) = std::nan("");
  }
  for (simd::DispatchTarget t :
       {simd::DispatchTarget::kScalar, simd::DispatchTarget::kAvx2}) {
    TargetGuard g(t);
    const Matrix out = a.MatMul(b);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(out.At(0, j), 21.0) << simd::TargetName(t);
    }
  }
}

TEST(SimdIntegrationTest, KMeansAssignmentsAgreeAcrossTargets) {
  Rng rng(41);
  Matrix points(200, 16);
  for (size_t i = 0; i < points.rows(); ++i)
    for (size_t j = 0; j < points.cols(); ++j)
      points.At(i, j) = rng.Uniform(0.0, 10.0);

  KMeansOptions opts;
  opts.seed = 7;
  std::vector<int> scalar_assign, vector_assign;
  {
    TargetGuard g(simd::DispatchTarget::kScalar);
    Result<KMeansResult> km = KMeans(points, 5, opts);
    ASSERT_TRUE(km.ok()) << km.status();
    scalar_assign = AssignToCentroids(points, km->centroids);
  }
  {
    TargetGuard g(simd::DispatchTarget::kAvx2);
    Result<KMeansResult> km = KMeans(points, 5, opts);
    ASSERT_TRUE(km.ok()) << km.status();
    vector_assign = AssignToCentroids(points, km->centroids);
  }
  // Same seed, same data: Lloyd's iterations see tolerance-level
  // differences at most, and on random data the argmin per point is stable
  // under 1e-12-relative perturbation.
  EXPECT_EQ(scalar_assign, vector_assign);
}

}  // namespace
}  // namespace freeway
