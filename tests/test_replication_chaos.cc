/// Replicated-HA chaos: the leader is partitioned away mid-stream (the
/// "machine loss" of the acceptance gate) while a client keeps submitting
/// labeled batches. Every submit must still return OK — the client fails
/// over to the new leader — and after the partition heals, all three
/// nodes converge to bit-identical ingest logs holding every acknowledged
/// batch exactly once. Parameterized over reactor worker counts like the
/// other chaos suites.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "fault/failpoint.h"
#include "ingest/ingest_log.h"
#include "ml/models.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket_util.h"

namespace freeway {
namespace {

namespace fs = std::filesystem;

constexpr size_t kDim = 4;
constexpr size_t kBatchRows = 16;

PipelineOptions DeterministicPipeline() {
  PipelineOptions opts;
  opts.learner.base_window_batches = 4;
  opts.learner.detector.warmup_batches = 3;
  opts.enable_rate_adjuster = false;
  return opts;
}

uint16_t ReservePort() {
  Result<int> fd = net::CreateListenSocket("127.0.0.1", 0, 4, false);
  EXPECT_TRUE(fd.ok()) << fd.status();
  Result<uint16_t> port = net::LocalPort(*fd);
  EXPECT_TRUE(port.ok()) << port.status();
  net::CloseFd(*fd);
  return *port;
}

class ReplicationChaosTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("freeway_replication_chaos_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()) +
            "_w" + std::to_string(GetParam()));
    fs::remove_all(dir_);
    failpoint::DisarmAll();
  }

  void TearDown() override {
    failpoint::DisarmAll();
    nodes_.clear();
    registries_.clear();
    fs::remove_all(dir_);
  }

  void StartNode(size_t i) {
    ServerOptions opts;
    opts.port = ports_[i];
    opts.num_workers = GetParam();
    opts.metrics = registries_[i].get();
    opts.runtime.num_shards = 2;
    opts.runtime.pipeline = DeterministicPipeline();
    opts.ingest.enabled = true;
    opts.ingest.log_dir = (dir_ / ("n" + std::to_string(i)) / "log").string();
    opts.maintenance_interval_millis = 50;
    opts.replication.enabled = true;
    opts.replication.node_id = i + 1;
    opts.replication.data_dir =
        (dir_ / ("n" + std::to_string(i)) / "raft").string();
    opts.replication.tick_millis = 5;
    opts.replication.heartbeat_ticks = 2;
    // Per-node seeds: identical seeds give identical randomized election
    // timeouts, which is exactly the repeated-split-vote pathology the
    // randomization exists to break.
    opts.replication.seed = 99 + i;
    opts.replication.failpoint_scope = "n" + std::to_string(i + 1) + ".";
    for (size_t j = 0; j < ports_.size(); ++j) {
      if (j == i) continue;
      opts.replication.peers.push_back({j + 1, "127.0.0.1", ports_[j]});
    }
    auto proto = MakeLogisticRegression(kDim, 2);
    nodes_[i] = std::make_unique<StreamServer>(*proto, std::move(opts));
    ASSERT_TRUE(nodes_[i]->Start().ok());
  }

  void StartCluster(size_t n) {
    ports_.clear();
    for (size_t i = 0; i < n; ++i) ports_.push_back(ReservePort());
    nodes_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      registries_.push_back(std::make_unique<MetricsRegistry>());
    }
    for (size_t i = 0; i < n; ++i) StartNode(i);
  }

  int LeaderIndex() {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i] != nullptr && nodes_[i]->replicator()->IsLeader()) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  int WaitForLeader(int64_t timeout_millis = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_millis);
    while (std::chrono::steady_clock::now() < deadline) {
      const int leader = LeaderIndex();
      if (leader >= 0) return leader;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return -1;
  }

  /// Waits for a leader whose index differs from `excluded` (the
  /// partitioned node may still believe it leads — it cannot know better
  /// without quorum contact — so it is skipped, not counted).
  int WaitForOtherLeader(int excluded, int64_t timeout_millis = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_millis);
    while (std::chrono::steady_clock::now() < deadline) {
      for (size_t i = 0; i < nodes_.size(); ++i) {
        if (static_cast<int>(i) == excluded) continue;
        if (nodes_[i]->replicator()->IsLeader()) return static_cast<int>(i);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return -1;
  }

  void WaitForAllApplied(uint64_t commit, int64_t timeout_millis = 10000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_millis);
    for (auto& node : nodes_) {
      while (node->replicator()->applied_index() < commit) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "node stuck at applied "
            << node->replicator()->applied_index() << " of " << commit;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
  }

  Batch NextLabeled(HyperplaneSource& source) {
    Result<Batch> batch = source.NextBatch(kBatchRows);
    EXPECT_TRUE(batch.ok()) << batch.status();
    return *std::move(batch);
  }

  std::string LogBytes(size_t i) {
    std::vector<fs::path> segments;
    for (const auto& entry :
         fs::directory_iterator(dir_ / ("n" + std::to_string(i)) / "log")) {
      segments.push_back(entry.path());
    }
    std::sort(segments.begin(), segments.end());
    std::string bytes;
    for (const fs::path& path : segments) {
      std::ifstream in(path, std::ios::binary);
      bytes.append(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    }
    return bytes;
  }

  fs::path dir_;
  std::vector<uint16_t> ports_;
  std::vector<std::unique_ptr<MetricsRegistry>> registries_;
  std::vector<std::unique_ptr<StreamServer>> nodes_;
};

TEST_P(ReplicationChaosTest, LeaderPartitionedMidStreamZeroLabeledLoss) {
  StartCluster(3);
  const int first_leader = WaitForLeader();
  ASSERT_GE(first_leader, 0);

  HyperplaneOptions sopts;
  sopts.dim = kDim;
  sopts.seed = 77;
  HyperplaneSource source(sopts);

  ClientOptions copts;
  copts.client_id = 701;
  copts.max_submit_attempts = 64;
  // A partitioned leader still accepts the connection and proposes but can
  // never commit; the short reply timeout is what lets the client escape
  // it by rotating to the next endpoint.
  copts.reply_timeout_millis = 300;
  copts.backoff_initial_micros = 200;
  copts.backoff_max_micros = 20000;
  copts.endpoints.push_back({"127.0.0.1", ports_[first_leader]});
  for (size_t i = 0; i < ports_.size(); ++i) {
    if (static_cast<int>(i) == first_leader) continue;
    copts.endpoints.push_back({"127.0.0.1", ports_[i]});
  }
  StreamClient client(copts);

  constexpr int kBefore = 6;
  constexpr int kAfter = 10;
  for (int b = 0; b < kBefore; ++b) {
    ASSERT_TRUE(client.Submit(12, NextLabeled(source)).ok());
  }

  // Machine loss: the leader drops off the network entirely — every
  // message it sends or receives on its raft links vanishes. It keeps
  // serving its client port, which is the nastier failure mode: accepted
  // batches go nowhere.
  const std::string scope =
      "n" + std::to_string(first_leader + 1) + ".";
  failpoint::FailPointSpec forever;
  forever.count = SIZE_MAX;
  failpoint::Arm(scope + "repl.send", forever);
  failpoint::Arm(scope + "repl.recv", forever);

  // Every submit during the outage must still come back OK: the client
  // times out on the dead leader, rotates, and lands on the new majority
  // leader. Zero labeled-batch loss is exactly this loop not failing.
  for (int b = 0; b < kAfter; ++b) {
    ASSERT_TRUE(client.Submit(12, NextLabeled(source)).ok())
        << "submit " << b << " lost during leader partition";
  }
  const int second_leader = WaitForOtherLeader(first_leader);
  ASSERT_GE(second_leader, 0);
  EXPECT_NE(second_leader, first_leader);
  EXPECT_GE(client.tallies().failovers, 1u);

  // Heal. The deposed leader rejoins, its never-committed proposals are
  // overwritten by the new leader's log, and it catches up.
  failpoint::DisarmAll();
  const uint64_t commit = nodes_[second_leader]->replicator()->commit_index();
  WaitForAllApplied(commit);
  for (auto& node : nodes_) node->Stop();

  // Reconciliation: every node holds every acknowledged batch exactly
  // once, in the same order, byte for byte.
  constexpr uint64_t kTotal = kBefore + kAfter;
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(nodes_[i]->ingest_log()->last_lsn(), kTotal) << "node " << i;
    std::set<std::pair<uint64_t, uint64_t>> seen;
    uint64_t replayed = 0;
    Status replay = nodes_[i]->ingest_log()->Replay(
        [&](const IngestRecord& record) {
          ++replayed;
          EXPECT_TRUE(
              seen.insert({record.client_id, record.sequence}).second)
              << "duplicate (client, sequence) in node " << i << "'s log";
          return Status::OK();
        });
    ASSERT_TRUE(replay.ok()) << replay;
    EXPECT_EQ(replayed, kTotal) << "node " << i;
  }
  const std::string reference = LogBytes(0);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(LogBytes(1), reference);
  EXPECT_EQ(LogBytes(2), reference);

  // The new leader ACKed only after local apply, so its runtime admitted
  // each unique batch exactly once.
  const RuntimeStatsSnapshot snapshot =
      nodes_[second_leader]->runtime()->Snapshot();
  EXPECT_EQ(snapshot.totals.enqueued, kTotal);
  EXPECT_EQ(snapshot.totals.processed, kTotal);
  EXPECT_EQ(snapshot.totals.shed, 0u);
  EXPECT_EQ(snapshot.totals.quarantined, 0u);
}

TEST_P(ReplicationChaosTest, KilledLeaderReplaysBitIdenticalOnRestart) {
  StartCluster(3);
  const int first_leader = WaitForLeader();
  ASSERT_GE(first_leader, 0);

  HyperplaneOptions sopts;
  sopts.dim = kDim;
  sopts.seed = 83;
  HyperplaneSource source(sopts);

  ClientOptions copts;
  copts.client_id = 702;
  copts.max_submit_attempts = 64;
  copts.reply_timeout_millis = 300;
  copts.backoff_initial_micros = 200;
  copts.backoff_max_micros = 20000;
  for (uint16_t port : ports_) copts.endpoints.push_back({"127.0.0.1", port});
  StreamClient client(copts);

  for (int b = 0; b < 4; ++b) {
    ASSERT_TRUE(client.Submit(8, NextLabeled(source)).ok());
  }

  // Hard kill: the leader process dies outright (server destroyed; its
  // durable raft log and ingest log stay on disk).
  nodes_[first_leader].reset();
  for (int b = 0; b < 8; ++b) {
    ASSERT_TRUE(client.Submit(8, NextLabeled(source)).ok())
        << "submit " << b << " lost after leader death";
  }
  const int second_leader = WaitForOtherLeader(first_leader);
  ASSERT_GE(second_leader, 0);

  // The dead machine comes back and must rebuild the exact same log the
  // survivors carry — recovery replays its own raft log from the applied
  // prefix (the recovered ingest last_lsn) and fetches the rest from the
  // new leader.
  StartNode(first_leader);
  const uint64_t commit = nodes_[second_leader]->replicator()->commit_index();
  WaitForAllApplied(commit);
  for (auto& node : nodes_) node->Stop();
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(nodes_[i]->ingest_log()->last_lsn(), 12u) << "node " << i;
  }
  const std::string reference = LogBytes(second_leader);
  ASSERT_FALSE(reference.empty());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(LogBytes(i), reference) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, ReplicationChaosTest,
                         ::testing::Values(size_t{1}, size_t{2}));

}  // namespace
}  // namespace freeway
