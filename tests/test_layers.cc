#include "ml/layers.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace freeway {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng, double scale = 1.0) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m.At(i, j) = rng->Gaussian(0.0, scale);
  }
  return m;
}

/// Numerically checks dL/d(input) and dL/d(params) of a single layer, where
/// L = sum(forward(input) * probe) for a fixed random probe matrix (so the
/// upstream gradient is exactly `probe`).
void CheckLayerGradients(Layer* layer, const Matrix& input, uint64_t seed,
                         double tol = 1e-5) {
  Rng rng(seed);
  Matrix out = layer->Forward(input);
  Matrix probe = RandomMatrix(out.rows(), out.cols(), &rng);

  layer->ZeroGrads();
  layer->Forward(input);
  Matrix grad_input = layer->Backward(probe);
  ASSERT_TRUE(grad_input.SameShape(input));

  const double eps = 1e-6;
  auto loss_at = [&](const Matrix& x) {
    Matrix y = layer->Forward(x);
    double acc = 0.0;
    for (size_t i = 0; i < y.rows(); ++i) {
      for (size_t j = 0; j < y.cols(); ++j) acc += y.At(i, j) * probe.At(i, j);
    }
    return acc;
  };

  // Input gradient (spot-check a grid of entries).
  Matrix perturbed = input;
  for (size_t i = 0; i < input.rows(); i += 2) {
    for (size_t j = 0; j < input.cols(); j += 3) {
      const double orig = perturbed.At(i, j);
      perturbed.At(i, j) = orig + eps;
      const double up = loss_at(perturbed);
      perturbed.At(i, j) = orig - eps;
      const double down = loss_at(perturbed);
      perturbed.At(i, j) = orig;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(grad_input.At(i, j), numeric, tol)
          << "input grad mismatch at (" << i << "," << j << ")";
    }
  }

  // Parameter gradients (must re-run backward after each perturbation is
  // reverted, since Forward mutates caches).
  layer->ZeroGrads();
  layer->Forward(input);
  layer->Backward(probe);
  auto params = layer->Params();
  auto grads = layer->Grads();
  ASSERT_EQ(params.size(), grads.size());
  for (size_t p = 0; p < params.size(); ++p) {
    Matrix analytic = *grads[p];
    for (size_t i = 0; i < params[p]->rows(); i += 2) {
      for (size_t j = 0; j < params[p]->cols(); j += 3) {
        const double orig = params[p]->At(i, j);
        params[p]->At(i, j) = orig + eps;
        const double up = loss_at(input);
        params[p]->At(i, j) = orig - eps;
        const double down = loss_at(input);
        params[p]->At(i, j) = orig;
        const double numeric = (up - down) / (2 * eps);
        EXPECT_NEAR(analytic.At(i, j), numeric, tol)
            << "param " << p << " grad mismatch at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(DenseLayerTest, ForwardComputesAffineMap) {
  Rng rng(1);
  DenseLayer layer(2, 2, &rng);
  // Overwrite weights with known values.
  layer.Params()[0]->At(0, 0) = 1.0;
  layer.Params()[0]->At(0, 1) = 2.0;
  layer.Params()[0]->At(1, 0) = 3.0;
  layer.Params()[0]->At(1, 1) = 4.0;
  layer.Params()[1]->At(0, 0) = 0.5;
  layer.Params()[1]->At(0, 1) = -0.5;

  Matrix x = Matrix::FromData(1, 2, {1.0, 2.0}).value();
  Matrix y = layer.Forward(x);
  EXPECT_DOUBLE_EQ(y.At(0, 0), 1.0 + 6.0 + 0.5);
  EXPECT_DOUBLE_EQ(y.At(0, 1), 2.0 + 8.0 - 0.5);
}

TEST(DenseLayerTest, GradientsMatchFiniteDifferences) {
  Rng rng(2);
  DenseLayer layer(5, 4, &rng);
  Matrix input = RandomMatrix(6, 5, &rng);
  CheckLayerGradients(&layer, input, 100);
}

TEST(ReluLayerTest, ForwardClampsNegatives) {
  ReluLayer layer;
  Matrix x = Matrix::FromData(1, 4, {-1.0, 0.0, 2.0, -0.5}).value();
  Matrix y = layer.Forward(x);
  EXPECT_DOUBLE_EQ(y.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(y.At(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(y.At(0, 3), 0.0);
}

TEST(ReluLayerTest, GradientsMatchFiniteDifferences) {
  Rng rng(3);
  ReluLayer layer;
  // Keep activations away from the kink at 0 for a clean numeric check.
  Matrix input = RandomMatrix(4, 6, &rng);
  for (size_t i = 0; i < input.rows(); ++i) {
    for (auto& v : input.Row(i)) {
      if (std::fabs(v) < 0.05) v = 0.2;
    }
  }
  CheckLayerGradients(&layer, input, 101);
}

TEST(Conv2dLayerTest, OutputShape) {
  Rng rng(4);
  Conv2dLayer layer({3, 8, 8}, 16, 3, 3, &rng);
  EXPECT_EQ(layer.output_shape().channels, 16u);
  EXPECT_EQ(layer.output_shape().height, 6u);
  EXPECT_EQ(layer.output_shape().width, 6u);
  Matrix x = RandomMatrix(2, 3 * 8 * 8, &rng);
  Matrix y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 16u * 6u * 6u);
}

TEST(Conv2dLayerTest, KnownConvolution) {
  Rng rng(5);
  Conv2dLayer layer({1, 1, 3}, 1, 1, 2, &rng);
  // Kernel [1, -1], bias 0.5.
  layer.Params()[0]->At(0, 0) = 1.0;
  layer.Params()[0]->At(0, 1) = -1.0;
  layer.Params()[1]->At(0, 0) = 0.5;
  Matrix x = Matrix::FromData(1, 3, {3.0, 1.0, 4.0}).value();
  Matrix y = layer.Forward(x);
  ASSERT_EQ(y.cols(), 2u);
  EXPECT_DOUBLE_EQ(y.At(0, 0), 3.0 - 1.0 + 0.5);
  EXPECT_DOUBLE_EQ(y.At(0, 1), 1.0 - 4.0 + 0.5);
}

TEST(Conv2dLayerTest, GradientsMatchFiniteDifferences) {
  Rng rng(6);
  Conv2dLayer layer({2, 5, 5}, 3, 3, 3, &rng);
  Matrix input = RandomMatrix(3, 2 * 5 * 5, &rng);
  CheckLayerGradients(&layer, input, 102, 2e-5);
}

TEST(Conv2dLayerTest, TabularOneByKKernel) {
  Rng rng(7);
  Conv2dLayer layer({1, 1, 10}, 4, 1, 3, &rng);
  EXPECT_EQ(layer.output_shape().height, 1u);
  EXPECT_EQ(layer.output_shape().width, 8u);
  Matrix input = RandomMatrix(4, 10, &rng);
  CheckLayerGradients(&layer, input, 103, 2e-5);
}

TEST(MaxPool2dLayerTest, ForwardTakesWindowMaxima) {
  MaxPool2dLayer layer({1, 2, 4}, 2, 2);
  Matrix x =
      Matrix::FromData(1, 8, {1, 5, 2, 0, 3, 4, 7, 6}).value();
  Matrix y = layer.Forward(x);
  ASSERT_EQ(y.cols(), 2u);
  EXPECT_DOUBLE_EQ(y.At(0, 0), 5.0);  // max(1,5,3,4)
  EXPECT_DOUBLE_EQ(y.At(0, 1), 7.0);  // max(2,0,7,6)
}

TEST(MaxPool2dLayerTest, BackwardRoutesToArgmaxOnly) {
  MaxPool2dLayer layer({1, 2, 2}, 2, 2);
  Matrix x = Matrix::FromData(1, 4, {1, 9, 3, 2}).value();
  layer.Forward(x);
  Matrix gy = Matrix::FromData(1, 1, {2.5}).value();
  Matrix gx = layer.Backward(gy);
  EXPECT_DOUBLE_EQ(gx.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(gx.At(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(gx.At(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(gx.At(0, 3), 0.0);
}

TEST(MaxPool2dLayerTest, GradientsMatchFiniteDifferences) {
  Rng rng(8);
  MaxPool2dLayer layer({2, 4, 4}, 2, 2);
  Matrix input = RandomMatrix(3, 2 * 4 * 4, &rng);
  // Separate near-ties so argmax is stable under the eps perturbation.
  for (size_t i = 0; i < input.rows(); ++i) {
    auto row = input.Row(i);
    for (size_t j = 0; j < row.size(); ++j) {
      row[j] += 1e-3 * static_cast<double>(j % 7);
    }
  }
  CheckLayerGradients(&layer, input, 104);
}

TEST(LayerCloneTest, CloneIsDeepCopy) {
  Rng rng(9);
  DenseLayer layer(3, 2, &rng);
  auto clone = layer.Clone();
  // Mutating the clone's params must not affect the original.
  const double before = layer.Params()[0]->At(0, 0);
  clone->Params()[0]->At(0, 0) = before + 42.0;
  EXPECT_DOUBLE_EQ(layer.Params()[0]->At(0, 0), before);
}

}  // namespace
}  // namespace freeway
