#include "core/learner.h"

#include <gtest/gtest.h>

#include "data/concept.h"
#include "data/simulators.h"
#include "ml/models.h"

namespace freeway {
namespace {

LearnerOptions FastOptions() {
  LearnerOptions opts;
  opts.base_window_batches = 4;
  opts.detector.warmup_batches = 3;
  opts.exp_buffer_capacity = 512;
  return opts;
}

TEST(LearnerTest, OptionsMaterializeIntoComponents) {
  auto proto = MakeLogisticRegression(4, 2);
  LearnerOptions opts = FastOptions();
  opts.model_num = 3;
  opts.alpha = 2.5;
  opts.kdg_buffer = 10;
  Learner learner(*proto, opts);
  EXPECT_EQ(learner.options().granularity.long_window_batches.size(), 2u);
  EXPECT_EQ(learner.options().granularity.long_window_batches[0], 4u);
  EXPECT_EQ(learner.options().granularity.long_window_batches[1], 8u);
  EXPECT_DOUBLE_EQ(learner.options().detector.alpha, 2.5);
  EXPECT_EQ(learner.options().knowledge.capacity, 10u);
  EXPECT_EQ(learner.ensemble()->num_long_models(), 2u);
}

TEST(LearnerTest, RequiresLabeledBatches) {
  auto proto = MakeLogisticRegression(4, 2);
  Learner learner(*proto, FastOptions());
  Batch unlabeled;
  unlabeled.features = Matrix(8, 4);
  EXPECT_FALSE(learner.InferThenTrain(unlabeled).ok());
  EXPECT_FALSE(learner.Train(unlabeled).ok());
}

TEST(LearnerTest, PrequentialLearningOnStableStream) {
  ConceptSourceOptions sopts;
  sopts.dim = 4;
  sopts.num_classes = 2;
  sopts.seed = 3;
  DriftScript script;
  DriftSegment seg;
  seg.kind = DriftKind::kStationary;
  seg.num_batches = 1000;
  script.segments = {seg};
  GaussianConceptSource source("stable", sopts, script);

  auto proto = MakeMlp(4, 2);
  Learner learner(*proto, FastOptions());

  double late_acc = 0.0;
  size_t late_batches = 0;
  for (int b = 0; b < 30; ++b) {
    auto batch = source.NextBatch(128);
    ASSERT_TRUE(batch.ok());
    auto report = learner.InferThenTrain(*batch);
    ASSERT_TRUE(report.ok());
    if (b >= 20) {
      size_t hits = 0;
      for (size_t i = 0; i < batch->size(); ++i) {
        if (report->predictions[i] == batch->labels[i]) ++hits;
      }
      late_acc += static_cast<double>(hits) / static_cast<double>(batch->size());
      ++late_batches;
    }
  }
  EXPECT_GT(late_acc / static_cast<double>(late_batches), 0.85);
  EXPECT_EQ(learner.stats().batches_inferred, 30u);
  EXPECT_EQ(learner.stats().batches_trained, 30u);
  // A stable stream stays in the slight regime -> ensemble inference.
  EXPECT_GT(learner.stats().ensemble_inferences, 25u);
}

TEST(LearnerTest, SuddenShiftTriggersCec) {
  auto source = MakeNslKddSim(7);
  auto proto = MakeMlp(source->input_dim(), source->num_classes());
  Learner learner(*proto, FastOptions());

  for (int b = 0; b < 60; ++b) {
    auto batch = source->NextBatch(256);
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(learner.InferThenTrain(*batch).ok());
  }
  // The NSL-KDD script contains sudden waves: CEC must have fired.
  EXPECT_GT(learner.stats().sudden_patterns, 0u);
  EXPECT_GT(learner.stats().cec_inferences, 0u);
}

TEST(LearnerTest, ReoccurringShiftUsesKnowledge) {
  auto source = MakeElectricitySim(11);
  auto proto = MakeLogisticRegression(source->input_dim(),
                                      source->num_classes());
  LearnerOptions opts = FastOptions();
  Learner learner(*proto, opts);

  for (int b = 0; b < 90; ++b) {
    auto batch = source->NextBatch(256);
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(learner.InferThenTrain(*batch).ok());
  }
  EXPECT_GT(learner.stats().knowledge_preserved, 0u);
  EXPECT_GT(learner.knowledge().hot_count(), 0u);
  EXPECT_GT(learner.stats().reoccurring_patterns, 0u);
}

TEST(LearnerTest, StrategySelectorRunsExactlyOneStrategyPerBatch) {
  auto source = MakeAirlinesSim(5);
  auto proto = MakeMlp(source->input_dim(), source->num_classes());
  Learner learner(*proto, FastOptions());
  for (int b = 0; b < 40; ++b) {
    auto batch = source->NextBatch(128);
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(learner.InferThenTrain(*batch).ok());
  }
  const LearnerStats& stats = learner.stats();
  EXPECT_EQ(stats.ensemble_inferences + stats.cec_inferences +
                stats.knowledge_inferences,
            stats.batches_inferred);
}

TEST(LearnerTest, InferOnlyPathWorks) {
  auto proto = MakeLogisticRegression(4, 2);
  Learner learner(*proto, FastOptions());
  Rng rng(1);
  // Warm up with a few training batches.
  for (int b = 0; b < 6; ++b) {
    Batch batch;
    batch.index = b;
    batch.features = Matrix(64, 4);
    batch.labels.resize(64);
    for (size_t i = 0; i < 64; ++i) {
      batch.labels[i] = static_cast<int>(rng.NextBelow(2));
      for (size_t j = 0; j < 4; ++j) {
        batch.features.At(i, j) = rng.Gaussian(batch.labels[i] * 2.0, 0.5);
      }
    }
    ASSERT_TRUE(learner.Train(batch).ok());
  }
  Matrix query(16, 4);
  for (size_t i = 0; i < 16; ++i) {
    for (size_t j = 0; j < 4; ++j) query.At(i, j) = rng.Gaussian(0, 1);
  }
  auto report = learner.Infer(query);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->predictions.size(), 16u);
  EXPECT_EQ(report->proba.rows(), 16u);
}

TEST(LearnerTest, ColdStartCecFallsBackToEnsemble) {
  // Force a "sudden" classification immediately after warm-up with an empty
  // experience buffer via an inference-only path: the learner must fall back
  // to the ensemble rather than fail.
  auto proto = MakeLogisticRegression(4, 2);
  LearnerOptions opts = FastOptions();
  Learner learner(*proto, opts);
  Rng rng(2);
  // Warm up the detector with inference-only traffic (never trains, so the
  // ExpBuffer stays empty).
  Matrix base(64, 4);
  for (int b = 0; b < 10; ++b) {
    for (size_t i = 0; i < 64; ++i) {
      for (size_t j = 0; j < 4; ++j) base.At(i, j) = rng.Gaussian(0, 0.3);
    }
    ASSERT_TRUE(learner.Infer(base).ok());
  }
  // Now a massive jump: Pattern B, but no experience -> ensemble fallback.
  Matrix jumped(64, 4);
  for (size_t i = 0; i < 64; ++i) {
    for (size_t j = 0; j < 4; ++j) jumped.At(i, j) = rng.Gaussian(50, 0.3);
  }
  auto report = learner.Infer(jumped);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->strategy, Strategy::kMultiGranularity);
}

TEST(LearnerTest, StrategyNames) {
  EXPECT_STREQ(StrategyName(Strategy::kMultiGranularity),
               "multi-granularity");
  EXPECT_STREQ(StrategyName(Strategy::kCec), "cec");
  EXPECT_STREQ(StrategyName(Strategy::kKnowledgeReuse), "knowledge-reuse");
}

}  // namespace
}  // namespace freeway
// -- appended tests: selector gates & update-mode plumbing -------------------

namespace freeway {
namespace {

TEST(LearnerTest, CecPurityGateConfigurable) {
  // With an impossible purity floor CEC can never answer; every severe
  // batch falls back to the ensemble or knowledge reuse.
  auto source = MakeNslKddSim(41);
  auto proto = MakeMlp(source->input_dim(), source->num_classes());
  LearnerOptions opts = FastOptions();
  opts.cec_min_purity = 1.1;
  Learner learner(*proto, opts);
  for (int b = 0; b < 50; ++b) {
    auto batch = source->NextBatch(128);
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(learner.InferThenTrain(*batch).ok());
  }
  EXPECT_EQ(learner.stats().cec_inferences, 0u);
}

TEST(LearnerTest, KnowledgeMatchFactorZeroDisablesReuse) {
  auto source = MakeElectricitySim(43);
  auto proto = MakeLogisticRegression(source->input_dim(),
                                      source->num_classes());
  LearnerOptions opts = FastOptions();
  opts.knowledge_match_factor = 0.0;
  Learner learner(*proto, opts);
  for (int b = 0; b < 80; ++b) {
    auto batch = source->NextBatch(128);
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(learner.InferThenTrain(*batch).ok());
  }
  EXPECT_EQ(learner.stats().knowledge_inferences, 0u);
  // Knowledge is still preserved — only reuse is disabled.
  EXPECT_GT(learner.stats().knowledge_preserved, 0u);
}

TEST(LearnerTest, KnowledgeRefreshBoundsHotEntries) {
  // A stream that keeps revisiting the same few concepts must not overflow
  // the KdgBuffer with duplicates: refresh keeps the hot tier small.
  auto source = MakeElectricitySim(47);
  auto proto = MakeLogisticRegression(source->input_dim(),
                                      source->num_classes());
  LearnerOptions opts = FastOptions();
  opts.kdg_buffer = 20;
  Learner learner(*proto, opts);
  for (int b = 0; b < 150; ++b) {
    auto batch = source->NextBatch(128);
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(learner.InferThenTrain(*batch).ok());
  }
  EXPECT_GT(learner.knowledge().refresh_count(), 0u);
  EXPECT_LE(learner.knowledge().hot_count(), 20u);
}

TEST(LearnerTest, WorksWithAsyncUpdatesEnabled) {
  auto source = MakeAirlinesSim(49);
  auto proto = MakeMlp(source->input_dim(), source->num_classes());
  LearnerOptions opts = FastOptions();
  opts.granularity.async_long_updates = true;
  {
    Learner learner(*proto, opts);
    for (int b = 0; b < 40; ++b) {
      auto batch = source->NextBatch(128);
      ASSERT_TRUE(batch.ok());
      ASSERT_TRUE(learner.InferThenTrain(*batch).ok());
    }
    EXPECT_GT(learner.stats().long_model_updates, 0u);
  }  // Destructor must join in-flight workers without issue.
}

TEST(LearnerTest, WorksWithPrecomputeEnabled) {
  auto source = MakeAirlinesSim(51);
  auto proto = MakeLogisticRegression(source->input_dim(),
                                      source->num_classes());
  LearnerOptions opts = FastOptions();
  opts.granularity.use_precompute = true;
  Learner learner(*proto, opts);
  for (int b = 0; b < 40; ++b) {
    auto batch = source->NextBatch(128);
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(learner.InferThenTrain(*batch).ok());
  }
  EXPECT_GT(learner.stats().long_model_updates, 0u);
}

}  // namespace
}  // namespace freeway
