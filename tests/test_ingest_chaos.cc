/// Exactly-once ingest chaos tests: ACKs are destroyed in flight, servers
/// restart over their durable log, and drops land scattered across
/// concurrent producers — and the invariant under test is always the same:
/// `runtime enqueued == unique batches submitted`. Before wire v3 these
/// scenarios duplicated batches into the learner (the documented
/// at-least-once caveat); the per-client watermark table plus the durable
/// ingest log make each of them exactly-once, which is what every assertion
/// below pins down.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "fault/failpoint.h"
#include "ingest/ingest_log.h"
#include "ml/models.h"
#include "net/client.h"
#include "net/server.h"

namespace freeway {
namespace {

namespace fs = std::filesystem;

constexpr size_t kDim = 4;
constexpr size_t kBatchRows = 16;

/// Deterministic pipeline options (same discipline as test_chaos.cc): the
/// wall-clock-driven rate adjuster off, small windows.
PipelineOptions DeterministicPipeline() {
  PipelineOptions opts;
  opts.learner.base_window_batches = 4;
  opts.learner.detector.warmup_batches = 3;
  opts.enable_rate_adjuster = false;
  return opts;
}

class IngestChaosTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("freeway_ingest_chaos_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    failpoint::DisarmAll();
  }
  void TearDown() override {
    failpoint::DisarmAll();
    server_.reset();
    fs::remove_all(dir_);
  }

  void StartServer() {
    ServerOptions opts;
    opts.metrics = &registry_;
    opts.num_workers = GetParam();
    opts.runtime.num_shards = 2;
    opts.runtime.pipeline = DeterministicPipeline();
    opts.ingest.enabled = true;
    opts.ingest.log_dir = (dir_ / "log").string();
    auto proto = MakeLogisticRegression(kDim, 2);
    server_ = std::make_unique<StreamServer>(*proto, std::move(opts));
    ASSERT_TRUE(server_->Start().ok());
  }

  ClientOptions ClientFor(uint64_t client_id = 0) {
    ClientOptions opts;
    opts.port = server_->port();
    opts.backoff_initial_micros = 100;
    opts.backoff_max_micros = 2000;
    opts.client_id = client_id;
    return opts;
  }

  Batch NextLabeled(HyperplaneSource& source) {
    Result<Batch> batch = source.NextBatch(kBatchRows);
    EXPECT_TRUE(batch.ok()) << batch.status();
    return *std::move(batch);
  }

  uint64_t CounterValue(const std::string& name) {
    return registry_.GetCounter(name)->Value();
  }

  /// The exactly-once reconciliation: the runtime admitted each unique
  /// batch exactly once and processed all of them — nothing duplicated,
  /// shed, quarantined, or abandoned.
  void ExpectExactlyOnce(uint64_t unique_batches) {
    const RuntimeStatsSnapshot snapshot = server_->runtime()->Snapshot();
    EXPECT_EQ(snapshot.totals.enqueued, unique_batches);
    EXPECT_EQ(snapshot.totals.processed, unique_batches);
    EXPECT_EQ(snapshot.totals.shed, 0u);
    EXPECT_EQ(snapshot.totals.quarantined, 0u);
    EXPECT_EQ(snapshot.totals.undrained, 0u);
    EXPECT_TRUE(server_->runtime()->TakeDeadLetters().empty());
  }

  fs::path dir_;
  MetricsRegistry registry_;
  std::unique_ptr<StreamServer> server_;
};

TEST_P(IngestChaosTest, AckDestroyedInFlightIsDedupedOnResend) {
  StartServer();
  // The 3rd reply flush dies with the ACK on the wire: the batch was
  // admitted and logged, but the client never hears it. The resend on the
  // fresh connection must be re-ACKed from the watermark table — before
  // wire v3 it was admitted a second time.
  failpoint::FailPointSpec spec;
  spec.code = StatusCode::kIoError;
  spec.skip = 2;
  spec.count = 1;
  failpoint::Arm("net.write", spec);

  StreamClient client(ClientFor());
  HyperplaneOptions sopts;
  sopts.dim = kDim;
  sopts.seed = 61;
  HyperplaneSource source(sopts);
  constexpr int kBatches = 6;
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(client.Submit(1, NextLabeled(source)).ok()) << "batch " << b;
  }
  EXPECT_EQ(failpoint::Hits("net.write"), 1u);
  EXPECT_EQ(client.tallies().acked, static_cast<uint64_t>(kBatches));
  EXPECT_GE(client.tallies().resends, 1u);
  EXPECT_EQ(client.tallies().stale_acks, 0u);

  client.Disconnect();
  server_->Stop();
  EXPECT_EQ(CounterValue("freeway_net_duplicates_total"), 1u);
  // The duplicate never reached the log either: one record per batch.
  EXPECT_EQ(server_->ingest_log()->stats().appends,
            static_cast<uint64_t>(kBatches));
  ExpectExactlyOnce(kBatches);
}

TEST_P(IngestChaosTest, RestartRebuildsWatermarksFromLog) {
  constexpr uint64_t kClientId = 777;
  constexpr int kBatches = 5;
  constexpr int kExtra = 3;
  HyperplaneOptions sopts;
  sopts.dim = kDim;
  sopts.seed = 71;

  StartServer();
  {
    StreamClient client(ClientFor(kClientId));
    HyperplaneSource source(sopts);
    for (int b = 0; b < kBatches; ++b) {
      ASSERT_TRUE(client.Submit(2, NextLabeled(source)).ok());
    }
  }
  server_->Stop();
  ExpectExactlyOnce(kBatches);

  // A new server over the same log directory: recovery must rebuild the
  // watermark table before the first frame arrives.
  StartServer();
  EXPECT_EQ(server_->dedup_index()->Watermark(kClientId),
            static_cast<uint64_t>(kBatches));
  {
    // The same producer identity restarts from sequence 1 and re-sends its
    // whole history (the crash-recovery worst case), then continues with
    // fresh batches. Only the fresh ones may reach the learner.
    StreamClient client(ClientFor(kClientId));
    HyperplaneSource source(sopts);
    for (int b = 0; b < kBatches + kExtra; ++b) {
      ASSERT_TRUE(client.Submit(2, NextLabeled(source)).ok()) << "batch " << b;
    }
    EXPECT_EQ(client.tallies().acked,
              static_cast<uint64_t>(kBatches + kExtra));
    EXPECT_EQ(client.tallies().stale_acks, 0u);
  }
  server_->Stop();
  EXPECT_EQ(CounterValue("freeway_net_duplicates_total"),
            static_cast<uint64_t>(kBatches));
  EXPECT_EQ(server_->dedup_index()->Watermark(kClientId),
            static_cast<uint64_t>(kBatches + kExtra));
  ExpectExactlyOnce(kExtra);

  // The log across both incarnations holds one record per unique batch.
  size_t replayed = 0;
  ASSERT_TRUE(server_->ingest_log()
                  ->Replay([&replayed](const IngestRecord&) {
                    ++replayed;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(replayed, static_cast<size_t>(kBatches + kExtra));
}

TEST_P(IngestChaosTest, ReplayedLogIsBitIdenticalToDirectFeed) {
  StartServer();
  constexpr int kBatches = 10;
  HyperplaneOptions sopts;
  sopts.dim = kDim;
  sopts.seed = 83;
  HyperplaneSource source(sopts);
  std::vector<Batch> sent;
  {
    StreamClient client(ClientFor());
    for (int b = 0; b < kBatches; ++b) {
      sent.push_back(NextLabeled(source));
      ASSERT_TRUE(client.Submit(7, sent.back()).ok());
    }
  }
  server_->Stop();
  ExpectExactlyOnce(kBatches);

  // Replay the captured log into a fresh pipeline and feed the batches we
  // kept in memory into another: byte-identical snapshots prove the log
  // preserved every batch bit-exactly and in admission order.
  IngestLogOptions lopts;
  lopts.directory = (dir_ / "log").string();
  lopts.read_only = true;
  IngestLog log(lopts);
  ASSERT_TRUE(log.Open(nullptr).ok());

  auto proto = MakeLogisticRegression(kDim, 2);
  StreamPipeline from_log(*proto, DeterministicPipeline());
  size_t replayed = 0;
  ASSERT_TRUE(log.Replay([&](const IngestRecord& record) {
                   EXPECT_EQ(record.stream_id, 7u);
                   ++replayed;
                   return from_log.Push(record.batch).status();
                 })
                  .ok());
  ASSERT_EQ(replayed, static_cast<size_t>(kBatches));

  StreamPipeline from_memory(*proto, DeterministicPipeline());
  for (const Batch& batch : sent) {
    ASSERT_TRUE(from_memory.Push(batch).ok());
  }

  std::vector<char> snapshot_log, snapshot_memory;
  ASSERT_TRUE(from_log.Snapshot(&snapshot_log).ok());
  ASSERT_TRUE(from_memory.Snapshot(&snapshot_memory).ok());
  ASSERT_FALSE(snapshot_log.empty());
  ASSERT_EQ(snapshot_log.size(), snapshot_memory.size());
  EXPECT_EQ(std::memcmp(snapshot_log.data(), snapshot_memory.data(),
                        snapshot_log.size()),
            0);
}

TEST_P(IngestChaosTest, ScatteredAckDropsAcrossClientsStayExactlyOnce) {
  StartServer();
  // Three reply flushes die mid-run, scattered across whichever client
  // connections are active: every kill destroys one admitted batch's ACK,
  // and every affected client resends into the dedup table.
  failpoint::FailPointSpec spec;
  spec.code = StatusCode::kIoError;
  spec.skip = 4;
  spec.count = 3;
  failpoint::Arm("net.write", spec);

  constexpr int kClients = 3;
  constexpr int kBatches = 8;
  std::vector<ClientTallies> tallies(kClients);
  std::vector<std::thread> producers;
  for (int c = 0; c < kClients; ++c) {
    producers.emplace_back([this, c, &tallies] {
      StreamClient client(ClientFor());
      HyperplaneOptions sopts;
      sopts.dim = kDim;
      sopts.seed = 90 + c;
      HyperplaneSource source(sopts);
      for (int b = 0; b < kBatches; ++b) {
        ASSERT_TRUE(client.Submit(10 + c, NextLabeled(source)).ok())
            << "client " << c << " batch " << b;
      }
      tallies[c] = client.tallies();
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(failpoint::Hits("net.write"), 3u);

  uint64_t acked = 0;
  for (const ClientTallies& t : tallies) {
    acked += t.acked;
    EXPECT_EQ(t.stale_acks, 0u);
  }
  EXPECT_EQ(acked, static_cast<uint64_t>(kClients * kBatches));

  server_->Stop();
  EXPECT_EQ(CounterValue("freeway_net_duplicates_total"), 3u);
  ExpectExactlyOnce(static_cast<uint64_t>(kClients * kBatches));
  // Replay agrees: the admitted set is exactly the unique batches.
  size_t replayed = 0;
  ASSERT_TRUE(server_->ingest_log()
                  ->Replay([&replayed](const IngestRecord&) {
                    ++replayed;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(replayed, static_cast<size_t>(kClients * kBatches));
}

INSTANTIATE_TEST_SUITE_P(Workers, IngestChaosTest, ::testing::Values(1, 2),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "workers" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace freeway
