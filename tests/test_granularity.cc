#include "core/granularity.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/models.h"

namespace freeway {
namespace {

Batch LabeledBatch(double center, size_t n, uint64_t seed, int64_t index) {
  Rng rng(seed);
  Batch b;
  b.index = index;
  b.features = Matrix(n, 2);
  b.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(rng.NextBelow(2));
    b.labels[i] = label;
    b.features.At(i, 0) = center + rng.Gaussian(label == 0 ? -1.5 : 1.5, 0.5);
    b.features.At(i, 1) = rng.Gaussian(label == 0 ? 1.0 : -1.0, 0.5);
  }
  return b;
}

MultiGranularityOptions SmallOptions() {
  MultiGranularityOptions opts;
  opts.long_window_batches = {4};
  return opts;
}

TEST(GranularityTest, RejectsUnlabeledTraining) {
  auto proto = MakeLogisticRegression(2, 2);
  MultiGranularityEnsemble ensemble(*proto, SmallOptions());
  Batch unlabeled;
  unlabeled.features = Matrix(4, 2);
  EXPECT_FALSE(ensemble.Train(unlabeled).ok());
}

TEST(GranularityTest, ShortModelUpdatesEveryBatchLongOnRollover) {
  auto proto = MakeLogisticRegression(2, 2);
  MultiGranularityEnsemble ensemble(*proto, SmallOptions());

  const auto long_before = ensemble.long_model(0)->GetParameters();
  size_t rollovers = 0;
  for (int b = 0; b < 3; ++b) {
    auto report = ensemble.Train(LabeledBatch(0.0, 64, b, b));
    ASSERT_TRUE(report.ok());
    rollovers += report->rollovers.size();
    // Short model changed on the very first batch.
    if (b == 0) {
      EXPECT_NE(ensemble.short_model()->GetParameters(),
                proto->GetParameters());
    }
  }
  EXPECT_EQ(rollovers, 0u);
  EXPECT_EQ(ensemble.long_model(0)->GetParameters(), long_before);

  // Fourth batch fills the 4-batch window: long model updates.
  auto report = ensemble.Train(LabeledBatch(0.0, 64, 3, 3));
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->rollovers.size(), 1u);
  EXPECT_EQ(report->rollovers[0].model_index, 0u);
  EXPECT_FALSE(report->rollovers[0].window_centroid.empty());
  EXPECT_NE(ensemble.long_model(0)->GetParameters(), long_before);
}

TEST(GranularityTest, PredictProbaRowsSumToOne) {
  auto proto = MakeMlp(2, 2);
  MultiGranularityEnsemble ensemble(*proto, SmallOptions());
  for (int b = 0; b < 6; ++b) {
    ASSERT_TRUE(ensemble.Train(LabeledBatch(0.0, 64, b, b)).ok());
  }
  Batch query = LabeledBatch(0.0, 32, 99, 99);
  auto proba = ensemble.PredictProba(query.features);
  ASSERT_TRUE(proba.ok());
  for (size_t i = 0; i < proba->rows(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < proba->cols(); ++j) {
      EXPECT_GE(proba->At(i, j), -1e-12);
      sum += proba->At(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(GranularityTest, WeightsFavorNearbyModel) {
  auto proto = MakeLogisticRegression(2, 2);
  MultiGranularityOptions opts = SmallOptions();
  opts.long_window_batches = {8};
  MultiGranularityEnsemble ensemble(*proto, opts);

  // Long window accumulates around center 0; the latest short update is at
  // center 6. A query at 6 is near the short model's data and far from the
  // window centroid.
  for (int b = 0; b < 6; ++b) {
    ASSERT_TRUE(ensemble.Train(LabeledBatch(0.0, 64, b, b)).ok());
  }
  ASSERT_TRUE(ensemble.Train(LabeledBatch(6.0, 64, 50, 6)).ok());

  Batch near_short = LabeledBatch(6.0, 32, 51, 7);
  ASSERT_TRUE(ensemble.PredictProba(near_short.features).ok());
  const auto& weights = ensemble.last_weights();
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_GT(weights[0], weights[1]);  // Short model dominates.

  const auto& distances = ensemble.last_distances();
  EXPECT_LT(distances[0], distances[1]);
}

TEST(GranularityTest, EnsembleLearnsStream) {
  auto proto = MakeMlp(2, 2);
  MultiGranularityEnsemble ensemble(*proto, SmallOptions());
  double last_acc = 0.0;
  for (int b = 0; b < 20; ++b) {
    Batch batch = LabeledBatch(0.0, 128, 200 + b, b);
    if (b >= 15) {
      auto proba = ensemble.PredictProba(batch.features);
      ASSERT_TRUE(proba.ok());
      size_t hits = 0;
      for (size_t i = 0; i < proba->rows(); ++i) {
        const int pred = proba->At(i, 0) > proba->At(i, 1) ? 0 : 1;
        if (pred == batch.labels[i]) ++hits;
      }
      last_acc = static_cast<double>(hits) / static_cast<double>(batch.size());
    }
    ASSERT_TRUE(ensemble.Train(batch).ok());
  }
  EXPECT_GT(last_acc, 0.9);
}

TEST(GranularityTest, MultipleLongModels) {
  auto proto = MakeLogisticRegression(2, 2);
  MultiGranularityOptions opts;
  opts.long_window_batches = {2, 4};
  MultiGranularityEnsemble ensemble(*proto, opts);
  EXPECT_EQ(ensemble.num_long_models(), 2u);

  size_t rollovers_fast = 0, rollovers_slow = 0;
  for (int b = 0; b < 8; ++b) {
    auto report = ensemble.Train(LabeledBatch(0.0, 32, b, b));
    ASSERT_TRUE(report.ok());
    for (const auto& r : report->rollovers) {
      if (r.model_index == 0) ++rollovers_fast;
      if (r.model_index == 1) ++rollovers_slow;
    }
  }
  EXPECT_GT(rollovers_fast, rollovers_slow);
  ASSERT_TRUE(
      ensemble.PredictProba(LabeledBatch(0.0, 8, 99, 9).features).ok());
  EXPECT_EQ(ensemble.last_weights().size(), 3u);
}

TEST(GranularityTest, FixedKernelSigmaRespected) {
  auto proto = MakeLogisticRegression(2, 2);
  MultiGranularityOptions opts = SmallOptions();
  opts.kernel_sigma = 0.5;
  MultiGranularityEnsemble ensemble(*proto, opts);
  ASSERT_TRUE(ensemble.Train(LabeledBatch(0.0, 64, 1, 0)).ok());
  ASSERT_TRUE(
      ensemble.PredictProba(LabeledBatch(0.0, 16, 2, 1).features).ok());
  double sum = 0.0;
  for (double w : ensemble.last_weights()) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

}  // namespace
}  // namespace freeway
// -- appended tests: precompute & async update modes -------------------------

namespace freeway {
namespace {

TEST(GranularityTest, PrecomputeModeUpdatesLongModelAtRollover) {
  auto proto = MakeLogisticRegression(2, 2);
  MultiGranularityOptions opts = SmallOptions();
  opts.use_precompute = true;
  MultiGranularityEnsemble ensemble(*proto, opts);

  const auto before = ensemble.long_model(0)->GetParameters();
  size_t rollovers = 0;
  for (int b = 0; b < 4; ++b) {
    auto report = ensemble.Train(LabeledBatch(0.0, 64, b, b));
    ASSERT_TRUE(report.ok());
    rollovers += report->rollovers.size();
  }
  EXPECT_EQ(rollovers, 1u);
  // The aggregated pre-computed step moved the long model.
  EXPECT_NE(ensemble.long_model(0)->GetParameters(), before);
}

TEST(GranularityTest, PrecomputeLearnsComparablyToReplay) {
  auto proto = MakeMlp(2, 2);
  MultiGranularityOptions replay_opts = SmallOptions();
  MultiGranularityOptions precompute_opts = SmallOptions();
  precompute_opts.use_precompute = true;

  for (const auto* opts : {&replay_opts, &precompute_opts}) {
    MultiGranularityEnsemble ensemble(*proto, *opts);
    for (int b = 0; b < 16; ++b) {
      ASSERT_TRUE(ensemble.Train(LabeledBatch(0.0, 128, 300 + b, b)).ok());
    }
    Batch test = LabeledBatch(0.0, 256, 999, 17);
    auto proba = ensemble.PredictProba(test.features);
    ASSERT_TRUE(proba.ok());
    size_t hits = 0;
    for (size_t i = 0; i < proba->rows(); ++i) {
      const int pred = proba->At(i, 0) > proba->At(i, 1) ? 0 : 1;
      if (pred == test.labels[i]) ++hits;
    }
    EXPECT_GT(static_cast<double>(hits) / static_cast<double>(test.size()),
              0.85)
        << (opts->use_precompute ? "precompute" : "replay");
  }
}

TEST(GranularityTest, AsyncUpdatesLandAndLearn) {
  auto proto = MakeMlp(2, 2);
  MultiGranularityOptions opts = SmallOptions();
  opts.async_long_updates = true;
  MultiGranularityEnsemble ensemble(*proto, opts);

  const auto before = ensemble.long_model(0)->GetParameters();
  for (int b = 0; b < 20; ++b) {
    ASSERT_TRUE(ensemble.Train(LabeledBatch(0.0, 128, 400 + b, b)).ok());
    // Inference interleaves with in-flight updates without tearing.
    Batch probe = LabeledBatch(0.0, 16, 500 + b, b);
    ASSERT_TRUE(ensemble.PredictProba(probe.features).ok());
  }
  ensemble.WaitForAsyncUpdates();
  EXPECT_NE(ensemble.LongModelParameters(0), before);

  // After the updates land, the ensemble predicts the stream well.
  Batch test = LabeledBatch(0.0, 256, 998, 21);
  auto proba = ensemble.PredictProba(test.features);
  ASSERT_TRUE(proba.ok());
  size_t hits = 0;
  for (size_t i = 0; i < proba->rows(); ++i) {
    const int pred = proba->At(i, 0) > proba->At(i, 1) ? 0 : 1;
    if (pred == test.labels[i]) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(test.size()),
            0.85);
}

TEST(GranularityTest, AsyncReportsPreviousUpdateLoss) {
  auto proto = MakeLogisticRegression(2, 2);
  MultiGranularityOptions opts = SmallOptions();
  opts.async_long_updates = true;
  MultiGranularityEnsemble ensemble(*proto, opts);

  std::vector<double> losses;
  for (int b = 0; b < 12; ++b) {
    auto report = ensemble.Train(LabeledBatch(0.0, 64, 600 + b, b));
    ASSERT_TRUE(report.ok());
    for (const auto& rollover : report->rollovers) {
      losses.push_back(rollover.long_loss);
    }
  }
  ensemble.WaitForAsyncUpdates();
  ASSERT_GE(losses.size(), 2u);
  EXPECT_DOUBLE_EQ(losses[0], 0.0);  // First rollover: nothing landed yet.
  EXPECT_GT(losses[1], 0.0);         // Second reports the first's loss.
}

}  // namespace
}  // namespace freeway
