#include "linalg/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace freeway {
namespace {

TEST(MatrixTest, ConstructionAndShape) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_FALSE(m.empty());
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) EXPECT_EQ(m.At(i, j), 0.0);
  }

  Matrix filled(2, 2, 1.5);
  EXPECT_EQ(filled.At(1, 1), 1.5);

  Matrix empty;
  EXPECT_TRUE(empty.empty());
}

TEST(MatrixTest, FromDataValidatesSize) {
  auto ok = Matrix::FromData(2, 2, {1, 2, 3, 4});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->At(0, 1), 2.0);
  EXPECT_EQ(ok->At(1, 0), 3.0);

  auto bad = Matrix::FromData(2, 2, {1, 2, 3});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(MatrixTest, Identity) {
  Matrix eye = Matrix::Identity(3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(eye.At(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, RowAccessAndSetRow) {
  Matrix m(2, 3);
  std::vector<double> row = {1.0, 2.0, 3.0};
  m.SetRow(1, row);
  EXPECT_EQ(m.At(1, 2), 3.0);
  auto copied = m.RowVector(1);
  EXPECT_EQ(copied, row);
  m.Row(0)[1] = 9.0;
  EXPECT_EQ(m.At(0, 1), 9.0);
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a = Matrix::FromData(2, 2, {1, 2, 3, 4}).value();
  Matrix b = Matrix::FromData(2, 2, {10, 20, 30, 40}).value();
  a.AddInPlace(b);
  EXPECT_EQ(a.At(1, 1), 44.0);
  a.SubInPlace(b);
  EXPECT_EQ(a.At(1, 1), 4.0);
  a.ScaleInPlace(0.5);
  EXPECT_EQ(a.At(0, 0), 0.5);
  a.Axpy(2.0, b);
  EXPECT_EQ(a.At(0, 1), 1.0 + 40.0);
  a.Fill(7.0);
  EXPECT_EQ(a.At(1, 0), 7.0);
}

TEST(MatrixTest, MatMul) {
  Matrix a = Matrix::FromData(2, 3, {1, 2, 3, 4, 5, 6}).value();
  Matrix b = Matrix::FromData(3, 2, {7, 8, 9, 10, 11, 12}).value();
  Matrix c = a.MatMul(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_EQ(c.At(0, 0), 58.0);
  EXPECT_EQ(c.At(0, 1), 64.0);
  EXPECT_EQ(c.At(1, 0), 139.0);
  EXPECT_EQ(c.At(1, 1), 154.0);
}

TEST(MatrixTest, TransposeMatMulMatchesExplicitTranspose) {
  Matrix a = Matrix::FromData(3, 2, {1, 2, 3, 4, 5, 6}).value();
  Matrix b = Matrix::FromData(3, 2, {1, 0, 0, 1, 1, 1}).value();
  Matrix direct = a.TransposeMatMul(b);
  Matrix expected = a.Transposed().MatMul(b);
  ASSERT_TRUE(direct.SameShape(expected));
  for (size_t i = 0; i < direct.rows(); ++i) {
    for (size_t j = 0; j < direct.cols(); ++j) {
      EXPECT_DOUBLE_EQ(direct.At(i, j), expected.At(i, j));
    }
  }
}

TEST(MatrixTest, MatMulTransposeMatchesExplicitTranspose) {
  Matrix a = Matrix::FromData(2, 3, {1, 2, 3, 4, 5, 6}).value();
  Matrix b = Matrix::FromData(4, 3, {1, 1, 1, 0, 1, 0, 2, 0, 1, 1, 2, 3})
                 .value();
  Matrix direct = a.MatMulTranspose(b);
  Matrix expected = a.MatMul(b.Transposed());
  ASSERT_TRUE(direct.SameShape(expected));
  for (size_t i = 0; i < direct.rows(); ++i) {
    for (size_t j = 0; j < direct.cols(); ++j) {
      EXPECT_DOUBLE_EQ(direct.At(i, j), expected.At(i, j));
    }
  }
}

TEST(MatrixTest, ColumnMean) {
  Matrix m = Matrix::FromData(2, 3, {1, 2, 3, 3, 4, 5}).value();
  auto mean = m.ColumnMean();
  ASSERT_EQ(mean.size(), 3u);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 3.0);
  EXPECT_DOUBLE_EQ(mean[2], 4.0);
}

TEST(MatrixTest, NormsAndSum) {
  Matrix m = Matrix::FromData(1, 2, {3, 4}).value();
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.Sum(), 7.0);
}

TEST(VecTest, DotNormDistance) {
  std::vector<double> a = {1, 2, 2};
  std::vector<double> b = {2, 0, 1};
  EXPECT_DOUBLE_EQ(vec::Dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(vec::Norm(a), 3.0);
  EXPECT_DOUBLE_EQ(vec::SquaredDistance(a, b), 1 + 4 + 1);
  EXPECT_DOUBLE_EQ(vec::EuclideanDistance(a, b), std::sqrt(6.0));
}

TEST(VecTest, AxpyAddSubScale) {
  std::vector<double> a = {1, 1};
  std::vector<double> b = {2, 3};
  vec::Axpy(2.0, b, a);
  EXPECT_DOUBLE_EQ(a[0], 5.0);
  EXPECT_DOUBLE_EQ(a[1], 7.0);
  auto sum = vec::Add(a, b);
  EXPECT_DOUBLE_EQ(sum[1], 10.0);
  auto diff = vec::Sub(a, b);
  EXPECT_DOUBLE_EQ(diff[0], 3.0);
  auto scaled = vec::Scale(b, -1.0);
  EXPECT_DOUBLE_EQ(scaled[0], -2.0);
}

TEST(GaussianKernelTest, BasicProperties) {
  EXPECT_DOUBLE_EQ(GaussianKernel(0.0, 1.0), 1.0);
  EXPECT_NEAR(GaussianKernel(1.0, 1.0), std::exp(-0.5), 1e-12);
  // Monotonically decreasing in distance.
  EXPECT_GT(GaussianKernel(0.5, 1.0), GaussianKernel(1.0, 1.0));
  // Wider sigma decays slower.
  EXPECT_GT(GaussianKernel(1.0, 2.0), GaussianKernel(1.0, 1.0));
  // Degenerate sigma acts as an indicator.
  EXPECT_DOUBLE_EQ(GaussianKernel(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(GaussianKernel(0.1, 0.0), 0.0);
}

}  // namespace
}  // namespace freeway
