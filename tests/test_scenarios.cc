// Scenario engine: spec grammar, seeded determinism, drift/arrival/label
// semantics, and harness equivalence with the legacy prequential driver.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "baselines/factory.h"
#include "common/thread_pool.h"
#include "data/simulators.h"
#include "eval/prequential.h"
#include "ml/models.h"
#include "scenarios/harness.h"
#include "scenarios/scenario.h"
#include "scenarios/spec.h"

namespace freeway {
namespace {

ScenarioSpec SmallConceptSpec() {
  ScenarioSpec spec;
  spec.name = "unit";
  spec.seed = 5;
  spec.num_batches = 24;
  spec.batch_size = 64;
  spec.warmup_batches = 2;
  spec.dim = 6;
  spec.classes = 2;
  ScenarioDriftSegment seg;
  seg.kind = ScenarioDriftKind::kGradual;
  seg.num_batches = 24;
  spec.drift.push_back(seg);
  return spec;
}

bool BatchesEqual(const Batch& a, const Batch& b) {
  if (a.index != b.index || a.labels != b.labels) return false;
  if (a.features.rows() != b.features.rows() ||
      a.features.cols() != b.features.cols()) {
    return false;
  }
  for (size_t i = 0; i < a.features.size(); ++i) {
    if (a.features.data()[i] != b.features.data()[i]) return false;
  }
  return true;
}

const ScenarioEvent& FindEvent(const GeneratedScenario& scenario,
                               size_t base_index, bool training) {
  for (const ScenarioEvent& ev : scenario.events) {
    if (ev.base_index == base_index && ev.training == training) return ev;
  }
  ADD_FAILURE() << "missing event for base " << base_index;
  static ScenarioEvent none;
  return none;
}

TEST(ScenarioSpecTest, CannedScenariosCoverTheRequiredShapes) {
  const std::vector<std::string>& names = CannedScenarioNames();
  EXPECT_GE(names.size(), 6u);
  for (const char* required :
       {"abrupt", "gradual", "recurring", "cluster_localized", "flash_crowd",
        "adversarial_labels"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << required;
  }
  for (const std::string& name : names) {
    Result<ScenarioSpec> spec = ResolveScenarioSpec(name);
    ASSERT_TRUE(spec.ok()) << name << ": " << spec.status();
    EXPECT_EQ(spec->name, name);
    EXPECT_TRUE(!spec->drift.empty() || !spec->dataset.empty()) << name;
    EXPECT_LT(spec->warmup_batches, spec->num_batches) << name;
  }
}

TEST(ScenarioSpecTest, CommittedTwinFilesAreByteIdentical) {
  for (const std::string& name : CannedScenarioNames()) {
    Result<std::string> canned = CannedScenarioText(name);
    ASSERT_TRUE(canned.ok());
    const std::string path =
        std::string(FREEWAY_SCENARIO_DIR) + "/" + name + ".scn";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing committed twin " << path;
    std::ostringstream body;
    body << in.rdbuf();
    EXPECT_EQ(body.str(), *canned) << path << " drifted from the canned text";
  }
}

TEST(ScenarioSpecTest, ParserRejectsMalformedSpecs) {
  // A name is mandatory.
  EXPECT_FALSE(ParseScenarioSpec("seed: 3\ndrift: abrupt 10\n").ok());
  // Dataset and an inline drift schedule are mutually exclusive.
  EXPECT_FALSE(
      ParseScenarioSpec("name: x\ndataset: SEA\ndrift: abrupt 10\n").ok());
  // Cluster drift requires the affected classes...
  EXPECT_FALSE(ParseScenarioSpec("name: x\ndrift: cluster 10 mag=1\n").ok());
  // ...and classes= is cluster-only vocabulary.
  EXPECT_FALSE(
      ParseScenarioSpec("name: x\ndrift: abrupt 10 classes=0\n").ok());
  // Affected classes must exist.
  EXPECT_FALSE(
      ParseScenarioSpec("name: x\nclasses: 2\ndrift: cluster 10 classes=5\n")
          .ok());
  // Lagged label policies need a lag.
  EXPECT_FALSE(
      ParseScenarioSpec("name: x\ndrift: abrupt 10\nlabels: fixed-lag\n")
          .ok());
  // Unknown keys are errors, not warnings.
  EXPECT_FALSE(ParseScenarioSpec("name: x\ndrift: abrupt 10\nfrobnicate: 1\n")
                   .ok());
  EXPECT_FALSE(
      ParseScenarioSpec("name: x\ndrift: abrupt 10\narrival: sometimes\n")
          .ok());
  // Priors must match the class count.
  EXPECT_FALSE(
      ParseScenarioSpec("name: x\nclasses: 2\ndrift: abrupt 10 priors=1\n")
          .ok());
  // Warmup must leave scored batches.
  EXPECT_FALSE(
      ParseScenarioSpec("name: x\nbatches: 5\nwarmup: 5\ndrift: abrupt 5\n")
          .ok());
}

TEST(ScenarioGenerateTest, SameSeedIsBitIdenticalAcrossRunsAndThreadCounts) {
  Result<ScenarioSpec> spec = ResolveScenarioSpec("mixed");
  ASSERT_TRUE(spec.ok());

  ThreadPool::SetGlobalThreads(1);
  Result<GeneratedScenario> first = GenerateScenario(*spec);
  ThreadPool::SetGlobalThreads(8);
  Result<GeneratedScenario> second = GenerateScenario(*spec);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  ASSERT_EQ(first->batches.size(), second->batches.size());
  for (size_t b = 0; b < first->batches.size(); ++b) {
    EXPECT_TRUE(BatchesEqual(first->batches[b], second->batches[b]))
        << "batch " << b;
  }
  ASSERT_EQ(first->events.size(), second->events.size());
  for (size_t e = 0; e < first->events.size(); ++e) {
    EXPECT_EQ(first->events[e].arrival_micros,
              second->events[e].arrival_micros);
    EXPECT_EQ(first->events[e].base_index, second->events[e].base_index);
    EXPECT_EQ(first->events[e].training, second->events[e].training);
    EXPECT_EQ(first->events[e].stream_id, second->events[e].stream_id);
    EXPECT_EQ(first->events[e].tenant_id, second->events[e].tenant_id);
  }
  EXPECT_EQ(first->duration_micros, second->duration_micros);
}

TEST(ScenarioGenerateTest, DistinctSeedsProduceDifferentArrivalJitter) {
  ScenarioSpec spec = SmallConceptSpec();
  spec.arrival.jitter = 0.3;
  Result<GeneratedScenario> a = GenerateScenario(spec);
  spec.seed = 6;
  Result<GeneratedScenario> b = GenerateScenario(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  size_t differing = 0;
  for (size_t e = 0; e < a->events.size(); ++e) {
    if (a->events[e].arrival_micros != b->events[e].arrival_micros) {
      ++differing;
    }
  }
  // Jitter is drawn per gap, so essentially every arrival moves.
  EXPECT_GT(differing, a->events.size() / 2);
}

TEST(ScenarioGenerateTest, ArrivalProcessDoesNotPerturbTheDataStream) {
  ScenarioSpec spec = SmallConceptSpec();
  Result<GeneratedScenario> constant = GenerateScenario(spec);
  spec.arrival.kind = ArrivalKind::kBursty;
  spec.arrival.factor = 6.0;
  Result<GeneratedScenario> bursty = GenerateScenario(spec);
  ASSERT_TRUE(constant.ok());
  ASSERT_TRUE(bursty.ok());
  for (size_t b = 0; b < constant->batches.size(); ++b) {
    EXPECT_TRUE(BatchesEqual(constant->batches[b], bursty->batches[b]))
        << "batch " << b;
  }
}

TEST(ScenarioGenerateTest, ClusterDriftOnlyMovesTheListedClasses) {
  ScenarioSpec spec;
  spec.name = "cluster-unit";
  spec.seed = 9;
  spec.num_batches = 16;
  spec.batch_size = 512;
  spec.warmup_batches = 1;
  spec.dim = 8;
  spec.classes = 3;
  spec.class_separation = 3.0;
  ScenarioDriftSegment hold;
  hold.kind = ScenarioDriftKind::kStationary;
  hold.num_batches = 8;
  ScenarioDriftSegment cluster;
  cluster.kind = ScenarioDriftKind::kCluster;
  cluster.num_batches = 8;
  cluster.magnitude = 5.0;
  cluster.classes = {1};
  cluster.cluster_mode = ScenarioDriftKind::kAbrupt;
  spec.drift = {hold, cluster};

  Result<GeneratedScenario> scenario = GenerateScenario(spec);
  ASSERT_TRUE(scenario.ok());

  // Per-class feature means before (batches 4..7) and after (12..15) the
  // cluster jump.
  const auto class_mean = [&](size_t from, size_t to, int label) {
    std::vector<double> mean(spec.dim, 0.0);
    size_t rows = 0;
    for (size_t b = from; b < to; ++b) {
      const Batch& batch = scenario->batches[b];
      for (size_t r = 0; r < batch.size(); ++r) {
        if (batch.labels[r] != label) continue;
        for (size_t d = 0; d < spec.dim; ++d) {
          mean[d] += batch.features.At(r, d);
        }
        ++rows;
      }
    }
    for (double& v : mean) v /= static_cast<double>(std::max<size_t>(rows, 1));
    return mean;
  };
  const auto distance = [&](int label) {
    const std::vector<double> before = class_mean(4, 8, label);
    const std::vector<double> after = class_mean(12, 16, label);
    double sq = 0.0;
    for (size_t d = 0; d < spec.dim; ++d) {
      sq += (after[d] - before[d]) * (after[d] - before[d]);
    }
    return std::sqrt(sq);
  };
  EXPECT_GT(distance(1), 2.0);  // The listed cluster jumped.
  EXPECT_LT(distance(0), 0.6);  // The others only wobbled with noise.
  EXPECT_LT(distance(2), 0.6);
}

TEST(ScenarioGenerateTest, EventsAreSortedAndCompleteWithImmediateLabels) {
  ScenarioSpec spec = SmallConceptSpec();
  Result<GeneratedScenario> scenario = GenerateScenario(spec);
  ASSERT_TRUE(scenario.ok());
  ASSERT_EQ(scenario->events.size(), 2 * spec.num_batches);
  for (size_t e = 1; e < scenario->events.size(); ++e) {
    EXPECT_LE(scenario->events[e - 1].arrival_micros,
              scenario->events[e].arrival_micros);
  }
  // Immediate labels: the labeled copy directly follows its unlabeled twin.
  for (size_t e = 0; e < scenario->events.size(); e += 2) {
    EXPECT_FALSE(scenario->events[e].training);
    EXPECT_TRUE(scenario->events[e + 1].training);
    EXPECT_EQ(scenario->events[e].base_index,
              scenario->events[e + 1].base_index);
  }
}

TEST(ScenarioGenerateTest, FixedLagDelaysTrainingBehindLaterArrivals) {
  ScenarioSpec spec = SmallConceptSpec();
  spec.labels.kind = LabelDelayKind::kFixedLag;
  spec.labels.lag_batches = 3;
  Result<GeneratedScenario> scenario = GenerateScenario(spec);
  ASSERT_TRUE(scenario.ok());
  for (size_t i = 0; i + 3 < spec.num_batches; ++i) {
    const ScenarioEvent& train = FindEvent(*scenario, i, true);
    const ScenarioEvent& later_infer = FindEvent(*scenario, i + 3, false);
    EXPECT_GT(train.arrival_micros, later_infer.arrival_micros)
        << "labels of batch " << i << " must trail the inference of batch "
        << i + 3;
  }
}

TEST(ScenarioGenerateTest, AdversarialLagStretchesInsideShiftWindows) {
  ScenarioSpec spec = SmallConceptSpec();
  spec.num_batches = 40;
  ScenarioDriftSegment hold;
  hold.kind = ScenarioDriftKind::kStationary;
  hold.num_batches = 20;
  ScenarioDriftSegment jump;
  jump.kind = ScenarioDriftKind::kAbrupt;
  jump.num_batches = 20;
  spec.drift = {hold, jump};
  spec.labels.kind = LabelDelayKind::kAdversarial;
  spec.labels.lag_batches = 2;
  spec.labels.adversarial_factor = 3.0;

  Result<GeneratedScenario> scenario = GenerateScenario(spec);
  ASSERT_TRUE(scenario.ok());
  size_t checked_events = 0;
  for (size_t i = 0; i + 6 < spec.num_batches; ++i) {
    const ScenarioEvent& train = FindEvent(*scenario, i, true);
    const size_t lag = scenario->metas[i].shift_event ? 6 : 2;
    const ScenarioEvent& anchor = FindEvent(*scenario, i + lag, false);
    EXPECT_EQ(train.arrival_micros, anchor.arrival_micros + 1)
        << "batch " << i;
    if (scenario->metas[i].shift_event) ++checked_events;
  }
  EXPECT_GT(checked_events, 0u) << "drift script produced no shift events";
}

TEST(ScenarioGenerateTest, FlashCrowdCompressesGapsInsideTheWindow) {
  ScenarioSpec spec = SmallConceptSpec();
  spec.num_batches = 100;
  spec.drift[0].num_batches = 100;
  spec.arrival.kind = ArrivalKind::kFlashCrowd;
  spec.arrival.rate = 100.0;
  spec.arrival.jitter = 0.0;
  spec.arrival.factor = 10.0;
  spec.arrival.flash_at_seconds = 0.3;
  spec.arrival.flash_duration_seconds = 0.3;
  Result<GeneratedScenario> scenario = GenerateScenario(spec);
  ASSERT_TRUE(scenario.ok());

  std::vector<uint64_t> arrivals;
  for (const ScenarioEvent& ev : scenario->events) {
    if (!ev.training) arrivals.push_back(ev.arrival_micros);
  }
  std::sort(arrivals.begin(), arrivals.end());
  double in_flash = 0.0, outside = 0.0;
  size_t in_n = 0, out_n = 0;
  for (size_t i = 1; i < arrivals.size(); ++i) {
    const double gap = static_cast<double>(arrivals[i] - arrivals[i - 1]);
    if (arrivals[i] >= 300000 && arrivals[i] < 600000) {
      in_flash += gap;
      ++in_n;
    } else {
      outside += gap;
      ++out_n;
    }
  }
  ASSERT_GT(in_n, 5u);
  ASSERT_GT(out_n, 5u);
  // 10x the rate means ~1/10th the gap.
  EXPECT_LT(in_flash / in_n, 0.25 * (outside / out_n));
}

TEST(ScenarioHarnessTest, LearnerReplayMatchesRunPrequentialBitExactly) {
  ScenarioSpec spec;
  spec.name = "Hyperplane";
  spec.dataset = "Hyperplane";
  spec.seed = 77;
  spec.num_batches = 30;
  spec.batch_size = 128;
  spec.warmup_batches = 5;
  Result<GeneratedScenario> scenario = GenerateScenario(spec);
  ASSERT_TRUE(scenario.ok());

  auto legacy_source = MakeBenchmarkDataset("Hyperplane", spec.seed);
  ASSERT_TRUE(legacy_source.ok());
  auto legacy_learner =
      MakeSystem("Plain", ModelKind::kMlp, (*legacy_source)->input_dim(),
                 (*legacy_source)->num_classes());
  ASSERT_TRUE(legacy_learner.ok());
  PrequentialOptions popts;
  popts.num_batches = spec.num_batches;
  popts.batch_size = spec.batch_size;
  popts.warmup_batches = spec.warmup_batches;
  auto legacy =
      RunPrequential(legacy_learner->get(), legacy_source->get(), popts);
  ASSERT_TRUE(legacy.ok());

  auto scenario_learner =
      MakeSystem("Plain", ModelKind::kMlp, (*legacy_source)->input_dim(),
                 (*legacy_source)->num_classes());
  ASSERT_TRUE(scenario_learner.ok());
  auto report = RunScenarioOnLearner(scenario_learner->get(), *scenario);
  ASSERT_TRUE(report.ok());

  ASSERT_EQ(report->prequential.batch_accuracies.size(),
            legacy->batch_accuracies.size());
  for (size_t b = 0; b < legacy->batch_accuracies.size(); ++b) {
    EXPECT_EQ(report->prequential.batch_accuracies[b],
              legacy->batch_accuracies[b])
        << "batch " << b;
    EXPECT_EQ(report->prequential.batch_kinds[b], legacy->batch_kinds[b]);
    EXPECT_EQ(report->prequential.shift_events[b], legacy->shift_events[b]);
  }
  EXPECT_EQ(report->prequential.g_acc, legacy->g_acc);
  EXPECT_EQ(report->prequential.stability_index, legacy->stability_index);
}

TEST(ScenarioHarnessTest, RuntimeReplayReconcilesWithZeroLabeledLoss) {
  Result<ScenarioSpec> spec = ResolveScenarioSpec("mixed");
  ASSERT_TRUE(spec.ok());
  Result<GeneratedScenario> scenario = GenerateScenario(*spec);
  ASSERT_TRUE(scenario.ok());
  auto source = MakeScenarioSource(*spec);
  ASSERT_TRUE(source.ok());
  auto proto =
      MakeLogisticRegression((*source)->input_dim(), (*source)->num_classes());

  RuntimeHarnessOptions options;
  options.num_shards = 2;
  Result<ScenarioReport> report =
      RunScenarioOnRuntime(*proto, *scenario, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->reconciled);
  EXPECT_TRUE(report->zero_labeled_loss);
  EXPECT_EQ(report->enqueued, report->processed + report->shed +
                                  report->quarantined + report->undrained +
                                  report->in_flight);
  EXPECT_GT(report->scored_batches, 0u);
  EXPECT_EQ(report->labeled_dead_letters, 0u);
  const std::string json = RenderScenarioJson(*report);
  EXPECT_NE(json.find("\"reconciled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"zero_labeled_loss\": true"), std::string::npos);
}

}  // namespace
}  // namespace freeway
