#include "core/precompute.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/models.h"

namespace freeway {
namespace {

Batch RandomBatch(size_t n, size_t dim, size_t classes, uint64_t seed) {
  Rng rng(seed);
  Batch b;
  b.features = Matrix(n, dim);
  b.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    b.labels[i] = static_cast<int>(rng.NextBelow(classes));
    for (size_t j = 0; j < dim; ++j) {
      b.features.At(i, j) = rng.Gaussian(b.labels[i], 1.0);
    }
  }
  return b;
}

TEST(PrecomputeTest, RequiresLabeledSubsets) {
  auto model = MakeLogisticRegression(3, 2);
  PrecomputingWindow window(model.get());
  Batch unlabeled;
  unlabeled.features = Matrix(4, 3);
  EXPECT_FALSE(window.AccumulateSubset(unlabeled).ok());
}

TEST(PrecomputeTest, ApplyWithoutAccumulationFails) {
  auto model = MakeLogisticRegression(3, 2);
  PrecomputingWindow window(model.get());
  EXPECT_FALSE(window.ApplyUpdate(0.1).ok());
}

TEST(PrecomputeTest, SingleSubsetMatchesDirectSgdStep) {
  // With one subset, the aggregated step IS a plain SGD step.
  auto model_a = MakeLogisticRegression(3, 2, {.learning_rate = 0.1});
  auto model_b = model_a->Clone();
  Batch batch = RandomBatch(64, 3, 2, 5);

  ASSERT_TRUE(model_a->TrainBatch(batch.features, batch.labels).ok());

  PrecomputingWindow window(model_b.get());
  ASSERT_TRUE(window.AccumulateSubset(batch).ok());
  ASSERT_TRUE(window.ApplyUpdate(0.1).ok());

  const auto pa = model_a->GetParameters();
  const auto pb = model_b->GetParameters();
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_NEAR(pa[i], pb[i], 1e-12);
}

TEST(PrecomputeTest, MultipleSubsetsAverageGradients) {
  auto model = MakeLogisticRegression(2, 2, {.learning_rate = 0.1});
  auto reference = model->Clone();

  Batch b1 = RandomBatch(32, 2, 2, 7);
  Batch b2 = RandomBatch(32, 2, 2, 8);

  // Reference: average of the two gradients at the SAME parameters.
  std::vector<double> g1, g2;
  ASSERT_TRUE(reference->ComputeGradient(b1.features, b1.labels, &g1).ok());
  ASSERT_TRUE(reference->ComputeGradient(b2.features, b2.labels, &g2).ok());
  for (size_t i = 0; i < g1.size(); ++i) {
    g1[i] = -0.1 * 0.5 * (g1[i] + g2[i]);
  }
  ASSERT_TRUE(reference->ApplyStep(g1).ok());

  PrecomputingWindow window(model.get());
  ASSERT_TRUE(window.AccumulateSubset(b1).ok());
  ASSERT_TRUE(window.AccumulateSubset(b2).ok());
  EXPECT_EQ(window.pending_subsets(), 2u);
  ASSERT_TRUE(window.ApplyUpdate(0.1).ok());
  EXPECT_EQ(window.pending_subsets(), 0u);

  const auto pm = model->GetParameters();
  const auto pr = reference->GetParameters();
  for (size_t i = 0; i < pm.size(); ++i) EXPECT_NEAR(pm[i], pr[i], 1e-12);
}

TEST(PrecomputeTest, ResetDiscardsPending) {
  auto model = MakeLogisticRegression(2, 2);
  PrecomputingWindow window(model.get());
  ASSERT_TRUE(window.AccumulateSubset(RandomBatch(16, 2, 2, 9)).ok());
  window.Reset();
  EXPECT_EQ(window.pending_subsets(), 0u);
  EXPECT_FALSE(window.ApplyUpdate(0.1).ok());
}

TEST(PrecomputeTest, LossDecreasesOverPrecomputedUpdates) {
  auto model = MakeMlp(2, 2);
  PrecomputingWindow window(model.get());
  double first = 0.0, last = 0.0;
  for (int round = 0; round < 20; ++round) {
    double loss_sum = 0.0;
    for (int s = 0; s < 4; ++s) {
      auto loss = window.AccumulateSubset(
          RandomBatch(32, 2, 2, static_cast<uint64_t>(100 + s)));
      ASSERT_TRUE(loss.ok());
      loss_sum += loss.value();
    }
    ASSERT_TRUE(window.ApplyUpdate(0.1).ok());
    if (round == 0) first = loss_sum;
    last = loss_sum;
  }
  EXPECT_LT(last, first);
}

}  // namespace
}  // namespace freeway
