#include "core/adaptive_window.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace freeway {
namespace {

Batch BatchAt(double center, size_t n, size_t dim, uint64_t seed,
              int64_t index = 0) {
  Rng rng(seed);
  Batch b;
  b.index = index;
  b.features = Matrix(n, dim);
  b.labels.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      b.features.At(i, j) = center + rng.Gaussian(0.0, 0.1);
    }
  }
  return b;
}

AdaptiveWindowOptions SmallOptions() {
  AdaptiveWindowOptions opts;
  opts.max_batches = 4;
  return opts;
}

TEST(AdaptiveWindowTest, RejectsBadBatches) {
  AdaptiveStreamingWindow window(SmallOptions());
  Batch unlabeled;
  unlabeled.features = Matrix(4, 2);
  EXPECT_FALSE(window.Add(unlabeled).ok());
  Batch empty;
  empty.features = Matrix(0, 2);
  empty.labels = {};
  EXPECT_FALSE(window.Add(empty).ok());
}

TEST(AdaptiveWindowTest, FullAfterMaxBatches) {
  AdaptiveStreamingWindow window(SmallOptions());
  for (int i = 0; i < 3; ++i) {
    auto full = window.Add(BatchAt(0.0, 16, 3, i));
    ASSERT_TRUE(full.ok());
    EXPECT_FALSE(full.value());
  }
  auto full = window.Add(BatchAt(0.0, 16, 3, 99));
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full.value());
}

TEST(AdaptiveWindowTest, MaxItemsAlsoTriggers) {
  AdaptiveWindowOptions opts;
  opts.max_batches = 100;
  opts.max_items = 40;
  AdaptiveStreamingWindow window(opts);
  ASSERT_FALSE(window.Add(BatchAt(0, 16, 2, 1)).value());
  ASSERT_FALSE(window.Add(BatchAt(0, 16, 2, 2)).value());
  EXPECT_TRUE(window.Add(BatchAt(0, 16, 2, 3)).value());
}

TEST(AdaptiveWindowTest, WeightsDecayAndNearBatchesDecayLess) {
  AdaptiveWindowOptions opts;
  opts.max_batches = 10;
  AdaptiveStreamingWindow window(opts);
  // Two residents: one near the future newcomer, one far.
  ASSERT_TRUE(window.Add(BatchAt(5.0, 32, 3, 1)).ok());   // Far from 0.
  ASSERT_TRUE(window.Add(BatchAt(0.2, 32, 3, 2)).ok());   // Near 0.
  ASSERT_TRUE(window.Add(BatchAt(0.0, 32, 3, 3)).ok());   // Newcomer.

  const auto& entries = window.entries();
  ASSERT_EQ(entries.size(), 3u);
  // The far batch (rank 1) lost more weight than the near batch (rank 0).
  EXPECT_LT(entries[0].weight, entries[1].weight);
  EXPECT_DOUBLE_EQ(entries[2].weight, 1.0);  // Newcomer undecayed.
}

TEST(AdaptiveWindowTest, DirectionalStreamHasLowDisorder) {
  AdaptiveWindowOptions opts;
  opts.max_batches = 16;
  AdaptiveStreamingWindow window(opts);
  // Steadily moving concept: time order == distance order (reversed),
  // i.e. the most recent resident is closest to the newcomer.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(window.Add(BatchAt(static_cast<double>(i), 32, 3,
                                   static_cast<uint64_t>(i))).ok());
  }
  EXPECT_LT(window.disorder(), 0.2);
}

TEST(AdaptiveWindowTest, LocalizedStreamHasHigherDisorderThanDirectional) {
  AdaptiveWindowOptions opts;
  opts.max_batches = 16;
  opts.min_weight = 0.01;

  AdaptiveStreamingWindow directional(opts);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(directional
                    .Add(BatchAt(static_cast<double>(i), 32, 3,
                                 static_cast<uint64_t>(i)))
                    .ok());
  }

  AdaptiveStreamingWindow localized(opts);
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(localized
                    .Add(BatchAt(rng.Uniform(-0.5, 0.5), 32, 3,
                                 static_cast<uint64_t>(100 + i)))
                    .ok());
  }
  EXPECT_GT(localized.disorder(), directional.disorder());
}

TEST(AdaptiveWindowTest, TakeTrainingDataWeightsContributions) {
  AdaptiveWindowOptions opts;
  opts.max_batches = 3;
  AdaptiveStreamingWindow window(opts);
  ASSERT_TRUE(window.Add(BatchAt(0.0, 100, 2, 1)).ok());
  ASSERT_TRUE(window.Add(BatchAt(0.1, 100, 2, 2)).ok());
  ASSERT_TRUE(window.Add(BatchAt(0.2, 100, 2, 3)).value());

  auto data = window.TakeTrainingData();
  ASSERT_TRUE(data.ok());
  // Decayed older batches contribute fewer than their 100 rows; the newest
  // contributes all 100.
  EXPECT_LT(data->size(), 300u);
  EXPECT_GE(data->size(), 100u);
  EXPECT_TRUE(data->labeled());

  // Window resets to just the newest batch.
  EXPECT_EQ(window.num_batches(), 1u);
  EXPECT_DOUBLE_EQ(window.entries().front().weight, 1.0);
}

TEST(AdaptiveWindowTest, TakeFromEmptyFails) {
  AdaptiveStreamingWindow window(SmallOptions());
  EXPECT_FALSE(window.TakeTrainingData().ok());
}

TEST(AdaptiveWindowTest, CentroidIsWeightedMean) {
  AdaptiveWindowOptions opts;
  opts.max_batches = 10;
  AdaptiveStreamingWindow window(opts);
  EXPECT_TRUE(window.Centroid().empty());

  ASSERT_TRUE(window.Add(BatchAt(0.0, 200, 2, 1)).ok());
  ASSERT_TRUE(window.Add(BatchAt(10.0, 200, 2, 2)).ok());
  auto centroid = window.Centroid();
  ASSERT_EQ(centroid.size(), 2u);
  // Both weights near 1 -> centroid near 5, biased slightly toward the
  // undecayed newcomer.
  EXPECT_GT(centroid[0], 4.5);
  EXPECT_LT(centroid[0], 6.0);
}

TEST(AdaptiveWindowTest, FullyDecayedBatchesAreEvicted) {
  AdaptiveWindowOptions opts;
  opts.max_batches = 100;
  opts.base_decay = 0.5;  // Aggressive decay.
  opts.min_weight = 0.3;
  AdaptiveStreamingWindow window(opts);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(window.Add(BatchAt(static_cast<double>(i), 16, 2,
                                   static_cast<uint64_t>(i))).ok());
  }
  // With 50%+ decay per arrival and a 0.3 floor, only a couple of recent
  // batches survive.
  EXPECT_LE(window.num_batches(), 3u);
}

TEST(AdaptiveWindowTest, NumItemsTracksAddsEvictionsAndTake) {
  AdaptiveWindowOptions opts;
  opts.max_batches = 100;
  opts.base_decay = 0.5;  // Aggressive decay forces evictions.
  opts.min_weight = 0.3;
  AdaptiveStreamingWindow window(opts);
  EXPECT_EQ(window.num_items(), 0u);

  // The running count must equal the resident batches' total rows at every
  // step, including across evictions of fully-decayed batches.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(window.Add(BatchAt(static_cast<double>(i), 16, 2,
                                   static_cast<uint64_t>(i))).ok());
    size_t expected = 0;
    for (const auto& entry : window.entries()) expected += entry.batch.size();
    EXPECT_EQ(window.num_items(), expected) << "after add " << i;
  }

  ASSERT_TRUE(window.TakeTrainingData().ok());
  // Take keeps only the newest batch (16 rows).
  EXPECT_EQ(window.num_batches(), 1u);
  EXPECT_EQ(window.num_items(), 16u);
}

TEST(AdaptiveWindowTest, DecayBoostAcceleratesForgetting) {
  AdaptiveWindowOptions opts;
  opts.max_batches = 50;
  opts.min_weight = 1e-6;  // Disable eviction so front() stays comparable.
  AdaptiveStreamingWindow normal(opts), boosted(opts);
  boosted.SetDecayBoost(3.0);
  EXPECT_DOUBLE_EQ(boosted.decay_boost(), 3.0);
  boosted.SetDecayBoost(0.5);  // Clamped to >= 1.
  EXPECT_DOUBLE_EQ(boosted.decay_boost(), 1.0);
  boosted.SetDecayBoost(3.0);

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(normal.Add(BatchAt(static_cast<double>(i), 16, 2,
                                   static_cast<uint64_t>(i))).ok());
    ASSERT_TRUE(boosted.Add(BatchAt(static_cast<double>(i), 16, 2,
                                    static_cast<uint64_t>(i))).ok());
  }
  // The boosted window's oldest survivor carries less weight.
  EXPECT_LT(boosted.entries().front().weight,
            normal.entries().front().weight);
}

}  // namespace
}  // namespace freeway
