#include "data/concept.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/simulators.h"

namespace freeway {
namespace {

DriftScript SingleSegment(DriftKind kind, size_t batches, double magnitude) {
  DriftScript script;
  DriftSegment seg;
  seg.kind = kind;
  seg.num_batches = batches;
  seg.magnitude = magnitude;
  script.segments = {seg};
  return script;
}

ConceptSourceOptions SmallOptions() {
  ConceptSourceOptions opts;
  opts.dim = 4;
  opts.num_classes = 3;
  opts.seed = 11;
  return opts;
}

TEST(ConceptSourceTest, BatchShapeAndLabels) {
  GaussianConceptSource src("test", SmallOptions(),
                            SingleSegment(DriftKind::kStationary, 100, 0.0));
  auto batch = src.NextBatch(128);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 128u);
  EXPECT_EQ(batch->dim(), 4u);
  for (int label : batch->labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 3);
  }
}

TEST(ConceptSourceTest, Deterministic) {
  GaussianConceptSource a("a", SmallOptions(),
                          SingleSegment(DriftKind::kDirectional, 10, 0.1));
  GaussianConceptSource b("b", SmallOptions(),
                          SingleSegment(DriftKind::kDirectional, 10, 0.1));
  for (int i = 0; i < 5; ++i) {
    auto ba = a.NextBatch(32);
    auto bb = b.NextBatch(32);
    ASSERT_TRUE(ba.ok() && bb.ok());
    EXPECT_EQ(ba->labels, bb->labels);
    EXPECT_DOUBLE_EQ(ba->features.At(7, 2), bb->features.At(7, 2));
  }
}

TEST(ConceptSourceTest, StationaryCentroidsHoldStill) {
  GaussianConceptSource src("s", SmallOptions(),
                            SingleSegment(DriftKind::kStationary, 100, 0.0));
  ASSERT_TRUE(src.NextBatch(16).ok());
  const Matrix before = src.centroids();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(src.NextBatch(16).ok());
  for (size_t c = 0; c < 3; ++c) {
    for (size_t d = 0; d < 4; ++d) {
      EXPECT_DOUBLE_EQ(src.centroids().At(c, d), before.At(c, d));
    }
  }
}

TEST(ConceptSourceTest, DirectionalDriftMovesSteadily) {
  GaussianConceptSource src("d", SmallOptions(),
                            SingleSegment(DriftKind::kDirectional, 1000, 0.1));
  ASSERT_TRUE(src.NextBatch(16).ok());
  const auto c0 = src.centroids().RowVector(0);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(src.NextBatch(16).ok());
  const auto c1 = src.centroids().RowVector(0);
  // 20 steps of 0.1 along a unit direction = distance 2.0.
  EXPECT_NEAR(vec::EuclideanDistance(c0, c1), 2.0, 1e-9);
}

TEST(ConceptSourceTest, LocalizedDriftStaysBounded) {
  GaussianConceptSource src("l", SmallOptions(),
                            SingleSegment(DriftKind::kLocalized, 1000, 0.1));
  ASSERT_TRUE(src.NextBatch(16).ok());
  const auto base = src.centroids().RowVector(0);
  double max_dist = 0.0;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(src.NextBatch(16).ok());
    max_dist = std::max(
        max_dist, vec::EuclideanDistance(base, src.centroids().RowVector(0)));
  }
  // Jitter is capped at 3 * magnitude (plus the base offset at batch 1).
  EXPECT_LT(max_dist, 1.0);
}

TEST(ConceptSourceTest, SuddenJumpByMagnitude) {
  DriftScript script;
  DriftSegment calm;
  calm.kind = DriftKind::kStationary;
  calm.num_batches = 3;
  DriftSegment jump;
  jump.kind = DriftKind::kSudden;
  jump.num_batches = 3;
  jump.magnitude = 5.0;
  script.segments = {calm, jump};
  GaussianConceptSource src("j", SmallOptions(), script);

  for (int i = 0; i < 3; ++i) ASSERT_TRUE(src.NextBatch(16).ok());
  const auto before = src.centroids().RowVector(1);
  ASSERT_TRUE(src.NextBatch(16).ok());  // First batch of the sudden segment.
  EXPECT_TRUE(src.LastBatchMeta().shift_event);
  EXPECT_EQ(src.LastBatchMeta().segment_kind, DriftKind::kSudden);
  const auto after = src.centroids().RowVector(1);
  EXPECT_NEAR(vec::EuclideanDistance(before, after), 5.0, 1e-9);
}

TEST(ConceptSourceTest, ReoccurringRestoresCheckpoint) {
  DriftScript script;
  DriftSegment start;
  start.kind = DriftKind::kStationary;
  start.num_batches = 2;
  start.save_checkpoint = true;
  DriftSegment jump;
  jump.kind = DriftKind::kSudden;
  jump.num_batches = 2;
  jump.magnitude = 8.0;
  DriftSegment back;
  back.kind = DriftKind::kReoccurring;
  back.num_batches = 2;
  back.reoccur_checkpoint = 0;
  script.segments = {start, jump, back};

  GaussianConceptSource src("r", SmallOptions(), script);
  ASSERT_TRUE(src.NextBatch(16).ok());
  const auto original = src.centroids().RowVector(0);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(src.NextBatch(16).ok());
  // Now inside the sudden segment: centroids far away.
  EXPECT_GT(vec::EuclideanDistance(original, src.centroids().RowVector(0)),
            4.0);
  ASSERT_TRUE(src.NextBatch(16).ok());  // First reoccurring batch.
  EXPECT_EQ(src.LastBatchMeta().segment_kind, DriftKind::kReoccurring);
  EXPECT_TRUE(src.LastBatchMeta().shift_event);
  for (size_t d = 0; d < 4; ++d) {
    EXPECT_DOUBLE_EQ(src.centroids().At(0, d), original[d]);
  }
  EXPECT_EQ(src.num_checkpoints(), 1u);
}

TEST(ConceptSourceTest, ScriptLoops) {
  DriftScript script = SingleSegment(DriftKind::kStationary, 2, 0.0);
  script.segments.push_back(script.segments[0]);
  script.loop = true;
  GaussianConceptSource src("loop", SmallOptions(), script);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(src.NextBatch(8).ok());
}

TEST(ConceptSourceTest, NonLoopingScriptExhausts) {
  DriftScript script = SingleSegment(DriftKind::kStationary, 2, 0.0);
  script.loop = false;
  GaussianConceptSource src("finite", SmallOptions(), script);
  ASSERT_TRUE(src.NextBatch(8).ok());
  ASSERT_TRUE(src.NextBatch(8).ok());
  auto exhausted = src.NextBatch(8);
  ASSERT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), StatusCode::kOutOfRange);
}

TEST(ConceptSourceTest, PriorsControlClassBalance) {
  ConceptSourceOptions opts = SmallOptions();
  opts.num_classes = 2;
  opts.priors = {0.9, 0.1};
  GaussianConceptSource src("p", opts,
                            SingleSegment(DriftKind::kStationary, 100, 0.0));
  size_t zeros = 0, total = 0;
  for (int b = 0; b < 10; ++b) {
    auto batch = src.NextBatch(512);
    ASSERT_TRUE(batch.ok());
    for (int label : batch->labels) {
      zeros += label == 0 ? 1 : 0;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(total), 0.9,
              0.03);
}

TEST(SimulatorsTest, AllBenchmarkDatasetsConstructAndProduce) {
  for (const std::string& name : BenchmarkDatasetNames()) {
    auto src = MakeBenchmarkDataset(name);
    ASSERT_TRUE(src.ok()) << name;
    EXPECT_EQ((*src)->name(), name);
    auto batch = (*src)->NextBatch(64);
    ASSERT_TRUE(batch.ok()) << name;
    EXPECT_EQ(batch->dim(), (*src)->input_dim()) << name;
    for (int label : batch->labels) {
      EXPECT_GE(label, 0);
      EXPECT_LT(label, static_cast<int>((*src)->num_classes())) << name;
    }
  }
  EXPECT_FALSE(MakeBenchmarkDataset("NoSuchDataset").ok());
}

TEST(SimulatorsTest, DatasetDimensionsMatchTheOriginals) {
  EXPECT_EQ(MakeAirlinesSim()->input_dim(), 7u);
  EXPECT_EQ(MakeCovertypeSim()->input_dim(), 54u);
  EXPECT_EQ(MakeCovertypeSim()->num_classes(), 7u);
  EXPECT_EQ(MakeNslKddSim()->input_dim(), 41u);
  EXPECT_EQ(MakeNslKddSim()->num_classes(), 5u);
  EXPECT_EQ(MakeElectricitySim()->input_dim(), 8u);
  EXPECT_EQ(MakeElectricitySim()->num_classes(), 2u);
}

TEST(SimulatorsTest, NslKddIsImbalanced) {
  auto src = MakeNslKddSim();
  std::vector<size_t> counts(5, 0);
  for (int b = 0; b < 8; ++b) {
    auto batch = src->NextBatch(512);
    ASSERT_TRUE(batch.ok());
    for (int label : batch->labels) ++counts[static_cast<size_t>(label)];
  }
  // Class 0 (normal traffic) dominates the early baseline segment.
  EXPECT_GT(counts[0], counts[4] * 5);
}

TEST(SimulatorsTest, DriftEventsOccurInEverySimulator) {
  for (const std::string& name :
       {std::string("Airlines"), std::string("Covertype"),
        std::string("NSL-KDD"), std::string("Electricity")}) {
    auto src = MakeBenchmarkDataset(name);
    ASSERT_TRUE(src.ok());
    size_t events = 0;
    for (int b = 0; b < 120; ++b) {
      ASSERT_TRUE((*src)->NextBatch(8).ok());
      if ((*src)->LastBatchMeta().shift_event) ++events;
    }
    EXPECT_GT(events, 0u) << name;
  }
}

}  // namespace
}  // namespace freeway
// -- appended tests: transition spillover ------------------------------------

namespace freeway {
namespace {

TEST(ConceptSourceTest, TransitionSpilloverPrecedesSuddenShift) {
  ConceptSourceOptions opts = SmallOptions();
  opts.transition_fraction = 0.3;
  opts.noise_sigma = 0.1;

  DriftScript script;
  DriftSegment calm;
  calm.kind = DriftKind::kStationary;
  calm.num_batches = 3;
  DriftSegment jump;
  jump.kind = DriftKind::kSudden;
  jump.num_batches = 3;
  jump.magnitude = 20.0;
  script.segments = {calm, jump};

  GaussianConceptSource src("spill", opts, script);
  ASSERT_TRUE(src.NextBatch(200).ok());
  auto mid = src.NextBatch(200);       // Plain stationary batch.
  ASSERT_TRUE(mid.ok());
  auto boundary = src.NextBatch(200);  // Last batch before the jump.
  ASSERT_TRUE(boundary.ok());
  auto jumped = src.NextBatch(200);    // First batch of the new concept.
  ASSERT_TRUE(jumped.ok());

  // The boundary batch's tail rows must already be near the post-jump
  // concept: its distance to the jumped batch is far below a clean
  // pre-jump batch's distance.
  const double clean_to_new =
      vec::EuclideanDistance(mid->Mean(), jumped->Mean());
  const auto tail = SliceBatch(*boundary, 140, 200);
  ASSERT_TRUE(tail.ok());
  const double tail_to_new =
      vec::EuclideanDistance(tail->Mean(), jumped->Mean());
  EXPECT_LT(tail_to_new, clean_to_new * 0.3);

  // And the head of the boundary batch is still the old concept.
  const auto head = SliceBatch(*boundary, 0, 140);
  ASSERT_TRUE(head.ok());
  const double head_to_old = vec::EuclideanDistance(head->Mean(), mid->Mean());
  EXPECT_LT(head_to_old, clean_to_new * 0.2);
}

TEST(ConceptSourceTest, SpilloverMatchesCommittedConcept) {
  // The spilled samples and the actually-entered segment must come from the
  // SAME sampled concept (the prepared state is committed, not re-drawn).
  ConceptSourceOptions opts = SmallOptions();
  opts.transition_fraction = 0.25;
  opts.noise_sigma = 0.05;

  DriftScript script;
  DriftSegment calm;
  calm.kind = DriftKind::kStationary;
  calm.num_batches = 2;
  DriftSegment jump;
  jump.kind = DriftKind::kSudden;
  jump.num_batches = 2;
  jump.magnitude = 15.0;
  script.segments = {calm, jump};

  GaussianConceptSource src("consistent", opts, script);
  ASSERT_TRUE(src.NextBatch(200).ok());
  auto boundary = src.NextBatch(200);
  ASSERT_TRUE(boundary.ok());
  auto jumped = src.NextBatch(200);
  ASSERT_TRUE(jumped.ok());

  const auto tail = SliceBatch(*boundary, 160, 200);
  ASSERT_TRUE(tail.ok());
  EXPECT_LT(vec::EuclideanDistance(tail->Mean(), jumped->Mean()), 2.0);
}

TEST(ConceptSourceTest, ZeroTransitionFractionKeepsHardBoundaries) {
  ConceptSourceOptions opts = SmallOptions();
  opts.transition_fraction = 0.0;
  opts.noise_sigma = 0.1;

  DriftScript script;
  DriftSegment calm;
  calm.kind = DriftKind::kStationary;
  calm.num_batches = 2;
  DriftSegment jump;
  jump.kind = DriftKind::kSudden;
  jump.num_batches = 2;
  jump.magnitude = 15.0;
  script.segments = {calm, jump};

  GaussianConceptSource src("hard", opts, script);
  ASSERT_TRUE(src.NextBatch(100).ok());
  auto boundary = src.NextBatch(100);
  ASSERT_TRUE(boundary.ok());
  auto jumped = src.NextBatch(100);
  ASSERT_TRUE(jumped.ok());
  // Without spillover the whole boundary batch stays at the old concept.
  const auto tail = SliceBatch(*boundary, 80, 100);
  ASSERT_TRUE(tail.ok());
  EXPECT_GT(vec::EuclideanDistance(tail->Mean(), jumped->Mean()), 8.0);
}

}  // namespace
}  // namespace freeway
