#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "ml/models.h"
#include "net/client.h"
#include "net/socket_util.h"

namespace freeway {
namespace {

constexpr size_t kDim = 4;
constexpr size_t kBatchRows = 16;

RuntimeOptions FastRuntime() {
  RuntimeOptions opts;
  opts.num_shards = 2;
  opts.pipeline.learner.base_window_batches = 4;
  opts.pipeline.learner.detector.warmup_batches = 3;
  return opts;
}

/// A drifting labeled source for one client thread.
HyperplaneSource MakeSource(uint64_t seed) {
  HyperplaneOptions opts;
  opts.dim = kDim;
  opts.seed = seed;
  return HyperplaneSource(opts);
}

Batch NextBatch(HyperplaneSource& source, bool labeled) {
  Result<Batch> batch = source.NextBatch(kBatchRows);
  EXPECT_TRUE(batch.ok()) << batch.status();
  if (!labeled) batch->labels.clear();
  return *std::move(batch);
}

class NetServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options) {
    options.metrics = &registry_;
    auto proto = MakeLogisticRegression(kDim, 2);
    server_ = std::make_unique<StreamServer>(*proto, std::move(options));
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  ClientOptions ClientFor() {
    ClientOptions opts;
    opts.port = server_->port();
    return opts;
  }

  uint64_t CounterValue(const std::string& name) {
    return registry_.GetCounter(name)->Value();
  }

  MetricsRegistry registry_;
  std::unique_ptr<StreamServer> server_;
};

TEST_F(NetServerTest, StartStopSmoke) {
  ServerOptions opts;
  opts.runtime = FastRuntime();
  StartServer(opts);
  EXPECT_TRUE(server_->running());
  server_->Stop();
  EXPECT_FALSE(server_->running());
}

TEST_F(NetServerTest, SingleClientSubmitAndResults) {
  ServerOptions opts;
  opts.runtime = FastRuntime();
  StartServer(opts);

  StreamClient client(ClientFor());
  HyperplaneSource source = MakeSource(7);
  constexpr int kBatches = 12;
  size_t unlabeled = 0;
  for (int b = 0; b < kBatches; ++b) {
    const bool labeled = b % 3 != 2;
    if (!labeled) ++unlabeled;
    ASSERT_TRUE(client.Submit(5, NextBatch(source, labeled)).ok());
  }
  EXPECT_EQ(client.tallies().acked, static_cast<uint64_t>(kBatches));

  // Every unlabeled batch produces exactly one RESULT frame.
  std::vector<StreamResult> results = client.TakeResults();
  while (results.size() < unlabeled) {
    Result<std::vector<StreamResult>> more = client.PollResults(2000);
    ASSERT_TRUE(more.ok()) << more.status();
    ASSERT_FALSE(more->empty()) << "timed out with " << results.size()
                                << "/" << unlabeled << " results";
    results.insert(results.end(), more->begin(), more->end());
  }
  EXPECT_EQ(results.size(), unlabeled);
  for (const StreamResult& r : results) {
    EXPECT_EQ(r.stream_id, 5u);
    EXPECT_EQ(r.report.predictions.size(), kBatchRows);
  }

  client.Disconnect();
  server_->Stop();

  // Exact reconciliation: client tallies vs freeway_net_* vs the runtime.
  EXPECT_EQ(CounterValue("freeway_net_submits_total"),
            client.tallies().submits_sent);
  EXPECT_EQ(CounterValue("freeway_net_acks_total"), client.tallies().acked);
  EXPECT_EQ(CounterValue("freeway_net_results_total"),
            client.tallies().results);
  const RuntimeStatsSnapshot snapshot = server_->runtime()->Snapshot();
  EXPECT_EQ(snapshot.totals.enqueued, static_cast<uint64_t>(kBatches));
  EXPECT_EQ(snapshot.totals.processed, static_cast<uint64_t>(kBatches));
}

TEST_F(NetServerTest, InMemoryDedupReAcksWithoutIngestLog) {
  // The watermark table works with the durable log switched off: a
  // hand-rolled duplicate SUBMIT (same client, same sequence) is re-ACKed
  // without reaching the runtime.
  ServerOptions opts;
  opts.runtime = FastRuntime();
  StartServer(opts);
  ASSERT_EQ(server_->ingest_log(), nullptr);

  StreamClient client(ClientFor());
  HyperplaneSource source = MakeSource(9);
  ASSERT_TRUE(client.Submit(6, NextBatch(source, true)).ok());
  ASSERT_TRUE(client.Submit(6, NextBatch(source, true)).ok());
  EXPECT_EQ(server_->dedup_index()->Watermark(client.client_id()), 2u);

  // Forge the resend the client would produce after a lost ACK: a second
  // client with the same identity restarts at sequence 1.
  ClientOptions forged = ClientFor();
  forged.client_id = client.client_id();
  StreamClient resender(forged);
  HyperplaneSource replay_source = MakeSource(9);
  ASSERT_TRUE(resender.Submit(6, NextBatch(replay_source, true)).ok());
  EXPECT_EQ(resender.tallies().acked, 1u);

  client.Disconnect();
  resender.Disconnect();
  server_->Stop();
  EXPECT_EQ(CounterValue("freeway_net_duplicates_total"), 1u);
  const RuntimeStatsSnapshot snapshot = server_->runtime()->Snapshot();
  EXPECT_EQ(snapshot.totals.enqueued, 2u);
  EXPECT_EQ(snapshot.totals.processed, 2u);
}

TEST_F(NetServerTest, MultiClientThreadsReconcileExactly) {
  ServerOptions opts;
  opts.runtime = FastRuntime();
  opts.runtime.num_shards = 4;
  StartServer(opts);

  constexpr int kClients = 4;
  constexpr int kBatches = 10;
  std::vector<ClientTallies> tallies(kClients);
  std::vector<std::thread> producers;
  for (int c = 0; c < kClients; ++c) {
    producers.emplace_back([this, c, &tallies] {
      StreamClient client(ClientFor());
      HyperplaneSource source = MakeSource(100 + c);
      for (int b = 0; b < kBatches; ++b) {
        // Labeled traffic only: no RESULT frames, so every counter on both
        // sides has an exact expected value.
        ASSERT_TRUE(client.Submit(c, NextBatch(source, true)).ok());
      }
      tallies[c] = client.tallies();
    });
  }
  for (auto& t : producers) t.join();
  server_->Stop();

  uint64_t sent = 0, acked = 0, overloads = 0;
  for (const ClientTallies& t : tallies) {
    sent += t.submits_sent;
    acked += t.acked;
    overloads += t.overloads;
  }
  EXPECT_EQ(acked, static_cast<uint64_t>(kClients * kBatches));
  EXPECT_EQ(CounterValue("freeway_net_submits_total"), sent);
  EXPECT_EQ(CounterValue("freeway_net_acks_total"), acked);
  EXPECT_EQ(CounterValue("freeway_net_overloads_total"), overloads);
  EXPECT_EQ(CounterValue("freeway_runtime_batches_total{event=\"enqueued\"}"),
            acked);
  const RuntimeStatsSnapshot snapshot = server_->runtime()->Snapshot();
  EXPECT_EQ(snapshot.totals.enqueued, acked);
  EXPECT_EQ(snapshot.totals.processed, acked);
  EXPECT_EQ(snapshot.totals.shed, 0u);
}

TEST_F(NetServerTest, FullQueueRepliesOverloadNotBlock) {
  ServerOptions opts;
  opts.runtime = FastRuntime();
  opts.runtime.num_shards = 1;
  opts.runtime.queue_capacity = 1;
  // No drain tasks: the queue stays full, so overload replies are
  // deterministic rather than a race against the drain thread.
  opts.runtime.schedule_workers = false;
  opts.overload_retry_micros = 1000;
  StartServer(opts);

  ClientOptions copts = ClientFor();
  copts.max_submit_attempts = 3;
  copts.backoff_initial_micros = 100;
  copts.backoff_max_micros = 1000;
  StreamClient client(copts);
  HyperplaneSource source = MakeSource(9);

  ASSERT_TRUE(client.Submit(0, NextBatch(source, true)).ok());
  Status second = client.Submit(0, NextBatch(source, true));
  EXPECT_EQ(second.code(), StatusCode::kUnavailable) << second;
  EXPECT_EQ(client.tallies().overloads, 3u);
  EXPECT_EQ(client.tallies().acked, 1u);

  client.Disconnect();
  server_->Stop();
  EXPECT_EQ(CounterValue("freeway_net_overloads_total"), 3u);
  const RuntimeStatsSnapshot snapshot = server_->runtime()->Snapshot();
  EXPECT_EQ(snapshot.totals.rejected, 3u);
  EXPECT_EQ(snapshot.totals.enqueued, 1u);
}

TEST_F(NetServerTest, PerStreamFifoOverTheWire) {
  ServerOptions opts;
  opts.runtime = FastRuntime();
  StartServer(opts);

  StreamClient client(ClientFor());
  HyperplaneSource source = MakeSource(11);
  constexpr int kBatches = 8;
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(client.Submit(3, NextBatch(source, false)).ok());
  }
  std::vector<StreamResult> results = client.TakeResults();
  while (results.size() < kBatches) {
    Result<std::vector<StreamResult>> more = client.PollResults(2000);
    ASSERT_TRUE(more.ok()) << more.status();
    ASSERT_FALSE(more->empty());
    results.insert(results.end(), more->begin(), more->end());
  }
  ASSERT_EQ(results.size(), static_cast<size_t>(kBatches));
  for (int b = 0; b < kBatches; ++b) {
    EXPECT_EQ(results[b].batch_index, b) << "results out of order";
  }
  server_->Stop();
}

TEST_F(NetServerTest, MetricsEndpointServesPrometheusText) {
  ServerOptions opts;
  opts.runtime = FastRuntime();
  StartServer(opts);

  StreamClient client(ClientFor());
  HyperplaneSource source = MakeSource(13);
  ASSERT_TRUE(client.Submit(1, NextBatch(source, true)).ok());
  ASSERT_TRUE(client.Submit(2, NextBatch(source, true)).ok());

  Result<std::string> body = HttpGet("127.0.0.1", server_->port(), "/metrics");
  ASSERT_TRUE(body.ok()) << body.status();
  // One scrape covers the net layer and the embedded runtime.
  EXPECT_NE(body->find("freeway_net_submits_total 2"), std::string::npos)
      << *body;
  EXPECT_NE(body->find("freeway_net_acks_total 2"), std::string::npos);
  EXPECT_NE(body->find("freeway_runtime_batches_total"), std::string::npos);
  EXPECT_NE(body->find("freeway_net_active_connections"), std::string::npos);

  Result<std::string> missing =
      HttpGet("127.0.0.1", server_->port(), "/nope");
  EXPECT_FALSE(missing.ok());
  server_->Stop();
  EXPECT_GE(CounterValue("freeway_net_http_requests_total"), 2u);
}

TEST_F(NetServerTest, StatsRequestReturnsRuntimeJson) {
  ServerOptions opts;
  opts.runtime = FastRuntime();
  StartServer(opts);
  StreamClient client(ClientFor());
  HyperplaneSource source = MakeSource(17);
  ASSERT_TRUE(client.Submit(0, NextBatch(source, true)).ok());
  Result<std::string> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_NE(stats->find("\"shards\""), std::string::npos) << *stats;
  server_->Stop();
}

TEST_F(NetServerTest, ShutdownFrameStopsServerGracefully) {
  ServerOptions opts;
  opts.runtime = FastRuntime();
  StartServer(opts);
  StreamClient client(ClientFor());
  HyperplaneSource source = MakeSource(19);
  ASSERT_TRUE(client.Submit(0, NextBatch(source, true)).ok());
  ASSERT_TRUE(client.RequestShutdown().ok());
  server_->Wait();
  EXPECT_FALSE(server_->running());
  // Work admitted before the shutdown frame was still processed.
  EXPECT_EQ(server_->runtime()->Snapshot().totals.processed, 1u);
}

TEST_F(NetServerTest, MalformedSubmitGetsErrorReplyAndConnectionSurvives) {
  ServerOptions opts;
  opts.runtime = FastRuntime();
  StartServer(opts);

  // Hand-craft a SUBMIT frame whose payload passes CRC but is not a
  // SubmitMessage (it is an ACK payload): the server must reply ERROR and
  // keep the connection alive — a client bug is not line noise.
  const std::vector<char> ack_frame = EncodeAck({1, 2});
  const std::vector<char> payload(ack_frame.begin() + kFrameHeaderBytes,
                                  ack_frame.end());
  const std::vector<char> bogus = EncodeFrame(FrameType::kSubmit, payload);

  Result<int> fd = net::ConnectSocket("127.0.0.1", server_->port(), 2000);
  ASSERT_TRUE(fd.ok()) << fd.status();
  ASSERT_TRUE(net::SendAll(*fd, bogus.data(), bogus.size()).ok());

  FrameDecoder decoder;
  Frame reply;
  char chunk[4096];
  while (true) {
    Result<Frame> next = decoder.Next();
    if (next.ok()) {
      reply = *next;
      break;
    }
    ASSERT_TRUE(net::WaitReadable(*fd, 2000).ok());
    const ssize_t n = ::recv(*fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0) << "server closed the connection on a client bug";
    decoder.Feed(chunk, static_cast<size_t>(n));
  }
  EXPECT_EQ(reply.type, FrameType::kError);

  // The same connection still serves a well-formed submit.
  HyperplaneSource source = MakeSource(23);
  SubmitMessage good;
  good.stream_id = 0;
  good.batch = NextBatch(source, true);
  const std::vector<char> encoded = EncodeSubmit(good);
  ASSERT_TRUE(net::SendAll(*fd, encoded.data(), encoded.size()).ok());
  while (true) {
    Result<Frame> next = decoder.Next();
    if (next.ok()) {
      EXPECT_EQ(next->type, FrameType::kAck);
      break;
    }
    ASSERT_TRUE(net::WaitReadable(*fd, 2000).ok());
    const ssize_t n = ::recv(*fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0);
    decoder.Feed(chunk, static_cast<size_t>(n));
  }
  net::CloseFd(*fd);
  server_->Stop();
  EXPECT_EQ(CounterValue("freeway_net_errors_total"), 1u);
  EXPECT_GE(CounterValue("freeway_net_decode_errors_total"), 1u);
}

/// ---- Multi-reactor (num_workers > 1) coverage ----

class MultiWorkerServerTest : public NetServerTest {
 protected:
  uint64_t WorkerConnections(size_t worker) {
    return CounterValue("freeway_net_worker_connections_total{worker=\"" +
                        std::to_string(worker) + "\"}");
  }

  bool EveryWorkerAccepted(size_t num_workers) {
    for (size_t i = 0; i < num_workers; ++i) {
      if (WorkerConnections(i) == 0) return false;
    }
    return true;
  }
};

TEST_F(MultiWorkerServerTest, AcceptShardingReachesEveryWorker) {
  constexpr size_t kWorkers = 4;
  ServerOptions opts;
  opts.runtime = FastRuntime();
  opts.num_workers = kWorkers;
  opts.max_connections = 256;
  StartServer(opts);
  ASSERT_EQ(server_->num_workers(), kWorkers);

  // Keep opening connections (each proves itself with one labeled submit)
  // until every worker has accepted at least one. The kernel hashes the
  // 4-tuple across SO_REUSEPORT listeners, so with 128 distinct source
  // ports the chance of starving one of 4 workers is ~4*(3/4)^128 — zero
  // in practice. The dup-listener fallback makes no spread promise (any
  // worker's accept() may win every race), so there the test only demands
  // that the fallback path carries all traffic correctly.
  HyperplaneSource source = MakeSource(31);
  std::vector<std::unique_ptr<StreamClient>> clients;
  constexpr size_t kMaxConnections = 128;
  while (clients.size() < kMaxConnections &&
         !EveryWorkerAccepted(kWorkers)) {
    clients.push_back(std::make_unique<StreamClient>(ClientFor()));
    const uint64_t stream_id = clients.size();
    ASSERT_TRUE(
        clients.back()->Submit(stream_id, NextBatch(source, true)).ok());
  }
  if (server_->reuseport_sharding()) {
    EXPECT_TRUE(EveryWorkerAccepted(kWorkers))
        << "a worker accepted nothing after " << clients.size()
        << " connections";
  }

  // Per-worker accept counters partition the global accept counter.
  uint64_t across_workers = 0;
  for (size_t i = 0; i < kWorkers; ++i) across_workers += WorkerConnections(i);
  EXPECT_EQ(across_workers,
            CounterValue("freeway_net_connections_total{event=\"accepted\"}"));

  const uint64_t submitted = clients.size();
  for (auto& client : clients) client->Disconnect();
  server_->Stop();
  const RuntimeStatsSnapshot snapshot = server_->runtime()->Snapshot();
  EXPECT_EQ(snapshot.totals.enqueued, submitted);
  EXPECT_EQ(snapshot.totals.processed, submitted);
}

TEST_F(MultiWorkerServerTest, CrossWorkerExactReconciliation) {
  ServerOptions opts;
  opts.runtime = FastRuntime();
  opts.runtime.num_shards = 4;
  opts.num_workers = 3;
  StartServer(opts);

  // Mixed labeled/inference traffic from concurrent clients whose
  // connections land on different workers. Every RESULT must find its way
  // from a drain thread through the route table to the owning worker.
  constexpr int kClients = 6;
  constexpr int kBatches = 12;
  std::vector<ClientTallies> tallies(kClients);
  std::vector<std::thread> producers;
  for (int c = 0; c < kClients; ++c) {
    producers.emplace_back([this, c, &tallies] {
      StreamClient client(ClientFor());
      HyperplaneSource source = MakeSource(300 + c);
      size_t unlabeled = 0;
      for (int b = 0; b < kBatches; ++b) {
        const bool labeled = b % 4 != 3;
        if (!labeled) ++unlabeled;
        ASSERT_TRUE(client.Submit(c, NextBatch(source, labeled)).ok());
      }
      size_t results = client.TakeResults().size();
      while (results < unlabeled) {
        Result<std::vector<StreamResult>> more = client.PollResults(2000);
        ASSERT_TRUE(more.ok()) << more.status();
        ASSERT_FALSE(more->empty());
        results += more->size();
      }
      tallies[c] = client.tallies();
    });
  }
  for (auto& t : producers) t.join();
  server_->Stop();

  uint64_t sent = 0, acked = 0, results = 0;
  for (const ClientTallies& t : tallies) {
    sent += t.submits_sent;
    acked += t.acked;
    results += t.results;
  }
  EXPECT_EQ(acked, static_cast<uint64_t>(kClients * kBatches));
  EXPECT_EQ(CounterValue("freeway_net_submits_total"), sent);
  EXPECT_EQ(CounterValue("freeway_net_acks_total"), acked);
  EXPECT_EQ(CounterValue("freeway_net_results_total"), results);
  EXPECT_EQ(CounterValue("freeway_net_results_dropped_total"), 0u);

  // The exact ledger after a quiescent stop, summed over every worker's
  // traffic: enqueued = processed + shed + quarantined + undrained +
  // in_flight, with everything but processed pinned at zero.
  const RuntimeStatsSnapshot snapshot = server_->runtime()->Snapshot();
  EXPECT_EQ(snapshot.totals.enqueued, acked);
  EXPECT_EQ(snapshot.totals.enqueued,
            snapshot.totals.processed + snapshot.totals.shed +
                snapshot.totals.quarantined + snapshot.totals.undrained +
                snapshot.totals.in_flight);
  EXPECT_EQ(snapshot.totals.processed, acked);
  EXPECT_EQ(snapshot.totals.shed, 0u);
  EXPECT_EQ(snapshot.totals.quarantined, 0u);
  EXPECT_EQ(snapshot.totals.undrained, 0u);
  EXPECT_EQ(snapshot.totals.in_flight, 0u);
}

TEST_F(MultiWorkerServerTest, HttpServedRegardlessOfWorker) {
  ServerOptions opts;
  opts.runtime = FastRuntime();
  opts.num_workers = 4;
  StartServer(opts);
  StreamClient client(ClientFor());
  HyperplaneSource source = MakeSource(41);
  ASSERT_TRUE(client.Submit(0, NextBatch(source, true)).ok());

  // Each scrape is a fresh connection the kernel routes to some worker;
  // 16 in a row exercise several of them, and every one must serve both
  // endpoints.
  for (int i = 0; i < 16; ++i) {
    Result<std::string> metrics =
        HttpGet("127.0.0.1", server_->port(), "/metrics");
    ASSERT_TRUE(metrics.ok()) << metrics.status();
    EXPECT_NE(metrics->find("freeway_net_submits_total"), std::string::npos);
    Result<std::string> stats =
        HttpGet("127.0.0.1", server_->port(), "/stats");
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_NE(stats->find("\"shards\""), std::string::npos) << *stats;
  }
  server_->Stop();
}

TEST_F(MultiWorkerServerTest, ShutdownFrameDrainsAllWorkers) {
  ServerOptions opts;
  opts.runtime = FastRuntime();
  opts.num_workers = 3;
  StartServer(opts);

  // Admit work through several connections (spread across workers), then
  // let one of them pull the plug: the coordinated stop must still process
  // everything admitted on every worker.
  constexpr int kClients = 5;
  std::vector<std::unique_ptr<StreamClient>> clients;
  HyperplaneSource source = MakeSource(43);
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<StreamClient>(ClientFor()));
    ASSERT_TRUE(clients.back()->Submit(c, NextBatch(source, true)).ok());
    ASSERT_TRUE(clients.back()->Submit(c, NextBatch(source, true)).ok());
  }
  ASSERT_TRUE(clients.front()->RequestShutdown().ok());
  server_->Wait();
  EXPECT_FALSE(server_->running());
  const RuntimeStatsSnapshot snapshot = server_->runtime()->Snapshot();
  EXPECT_EQ(snapshot.totals.processed,
            static_cast<uint64_t>(kClients * 2));
  EXPECT_EQ(snapshot.totals.undrained, 0u);
}

TEST(ClientBackoffTest, ServerRetryAfterIsClampedToClientCeiling) {
  Result<int> listen_fd = net::CreateListenSocket("127.0.0.1", 0, 4);
  ASSERT_TRUE(listen_fd.ok()) << listen_fd.status();
  Result<uint16_t> port = net::LocalPort(*listen_fd);
  ASSERT_TRUE(port.ok()) << port.status();

  // A buggy (or hostile) server: answers every submit attempt with an
  // OVERLOAD advising an hour-long retry_after. Incoming request bytes are
  // drained so the final close is orderly — closing with unread data would
  // RST the connection and discard the queued replies.
  std::thread hostile([fd = *listen_fd] {
    if (!net::WaitReadable(fd, 5000).ok()) return;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) return;
    OverloadMessage overload;
    overload.stream_id = 9;
    overload.batch_index = 0;
    overload.retry_after_micros = 3'600'000'000;  // One hour.
    const std::vector<char> frame = EncodeOverload(overload);
    char sink[4096];
    while (net::WaitReadable(conn, 2000).ok()) {
      const ssize_t n = ::recv(conn, sink, sizeof(sink), 0);
      if (n <= 0) break;  // Client gave up and disconnected.
      if (!net::SendAll(conn, frame.data(), frame.size()).ok()) break;
    }
    net::CloseFd(conn);
  });

  ClientOptions opts;
  opts.port = *port;
  opts.max_submit_attempts = 3;
  opts.backoff_initial_micros = 100;
  opts.backoff_max_micros = 1000;
  opts.max_retry_after_micros = 20'000;  // 20 ms ceiling.
  StreamClient client(opts);

  HyperplaneSource source = MakeSource(11);
  const auto start = std::chrono::steady_clock::now();
  Status submitted = client.Submit(9, NextBatch(source, false));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  // The wire-supplied floor is clamped to the client's ceiling: three
  // attempts back off ~20 ms each instead of an hour each, and the submit
  // fails fast with Unavailable.
  EXPECT_EQ(submitted.code(), StatusCode::kUnavailable);
  EXPECT_EQ(client.tallies().overloads, 3u);
  EXPECT_LT(elapsed.count(), 2000);

  client.Disconnect();
  net::CloseFd(*listen_fd);
  hostile.join();
}

TEST(DecorrelatedJitterTest, StepsSpreadAcrossTheBackoffRange) {
  constexpr int64_t kBase = 500;
  constexpr int64_t kCap = 100000;
  constexpr int kSteps = 100;
  uint64_t rng = 42;
  int64_t prev = 0;
  std::set<int64_t> distinct;
  for (int i = 0; i < kSteps; ++i) {
    prev = DecorrelatedJitterStep(&rng, prev, kBase, kCap);
    EXPECT_GE(prev, kBase);
    EXPECT_LE(prev, kCap);
    distinct.insert(prev);
  }
  // The whole point of jitter is that waits do NOT collapse onto a few
  // deterministic doubling steps — a fleet sleeping in lockstep stampedes
  // back in lockstep. Expect genuine spread.
  EXPECT_GE(distinct.size(), 50u);
}

TEST(DecorrelatedJitterTest, DifferentSeedsProduceDifferentSequences) {
  constexpr int64_t kBase = 500;
  constexpr int64_t kCap = 100000;
  uint64_t rng_a = 1001;
  uint64_t rng_b = 1002;
  int64_t prev_a = 0;
  int64_t prev_b = 0;
  int diverged = 0;
  for (int i = 0; i < 32; ++i) {
    prev_a = DecorrelatedJitterStep(&rng_a, prev_a, kBase, kCap);
    prev_b = DecorrelatedJitterStep(&rng_b, prev_b, kBase, kCap);
    if (prev_a != prev_b) ++diverged;
  }
  // Two clients with adjacent ids must not march through identical waits.
  EXPECT_GE(diverged, 16);
}

TEST(DecorrelatedJitterTest, CapBoundsTheGrowth) {
  uint64_t rng = 7;
  int64_t prev = 0;
  for (int i = 0; i < 64; ++i) {
    prev = DecorrelatedJitterStep(&rng, prev, 500, 4000);
    EXPECT_LE(prev, 4000);
    EXPECT_GE(prev, 500);
  }
}

}  // namespace
}  // namespace freeway
