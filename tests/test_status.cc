#include "common/status.h"

#include <gtest/gtest.h>

namespace freeway {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusIsNormalizedToInternalError) {
  Result<int> r(Status::OK());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "hello");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  FREEWAY_RETURN_NOT_OK(FailIfNegative(x));
  return 2 * x;
}

Result<int> ChainedMacros(int x) {
  FREEWAY_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(ResultTest, MacrosPropagateErrors) {
  Result<int> ok = ChainedMacros(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 9);

  Result<int> err = ChainedMacros(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace freeway
