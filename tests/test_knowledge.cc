#include "core/knowledge.h"

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

namespace freeway {
namespace {

KnowledgeEntry MakeEntry(std::vector<double> rep, size_t param_count,
                         double param_fill, int64_t index = 0) {
  KnowledgeEntry e;
  e.representation = std::move(rep);
  e.parameters.assign(param_count, param_fill);
  e.batch_index = index;
  return e;
}

TEST(KnowledgeStoreTest, PreserveValidates) {
  KnowledgeStore store;
  KnowledgeEntry no_rep;
  no_rep.parameters = {1.0};
  EXPECT_FALSE(store.Preserve(no_rep).ok());
  KnowledgeEntry no_params;
  no_params.representation = {1.0};
  EXPECT_FALSE(store.Preserve(no_params).ok());
  EXPECT_TRUE(store.Preserve(MakeEntry({1.0, 2.0}, 4, 0.5)).ok());
  EXPECT_EQ(store.hot_count(), 1u);
}

TEST(KnowledgeStoreTest, NearestMatchFindsClosest) {
  KnowledgeStore store;
  ASSERT_TRUE(store.Preserve(MakeEntry({0.0, 0.0}, 2, 1.0)).ok());
  ASSERT_TRUE(store.Preserve(MakeEntry({10.0, 0.0}, 2, 2.0)).ok());
  ASSERT_TRUE(store.Preserve(MakeEntry({0.0, 10.0}, 2, 3.0)).ok());

  auto match = store.NearestMatch({9.0, 1.0});
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->entry_index, 1u);
  EXPECT_NEAR(match->distance, std::sqrt(1.0 + 1.0), 1e-12);
  EXPECT_DOUBLE_EQ(store.entry(match->entry_index).parameters[0], 2.0);
}

TEST(KnowledgeStoreTest, EmptyStoreHasNoMatch) {
  KnowledgeStore store;
  auto match = store.NearestMatch({1.0});
  ASSERT_FALSE(match.ok());
  EXPECT_EQ(match.status().code(), StatusCode::kNotFound);
}

TEST(KnowledgeStoreTest, DimensionMismatchIgnoredInMatch) {
  KnowledgeStore store;
  ASSERT_TRUE(store.Preserve(MakeEntry({1.0, 2.0, 3.0}, 2, 1.0)).ok());
  EXPECT_FALSE(store.NearestMatch({1.0}).ok());
}

TEST(KnowledgeStoreTest, OverflowSpillsOldestHalf) {
  KnowledgeStoreOptions opts;
  opts.capacity = 4;
  KnowledgeStore store(opts);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store
                    .Preserve(MakeEntry({static_cast<double>(i), 0.0}, 3,
                                        static_cast<double>(i), i))
                    .ok());
  }
  EXPECT_EQ(store.hot_count(), 4u);
  EXPECT_EQ(store.spilled_count(), 0u);

  // Fifth insert: the oldest 2 are spilled, then the new entry lands.
  ASSERT_TRUE(store.Preserve(MakeEntry({99.0, 0.0}, 3, 99.0, 4)).ok());
  EXPECT_EQ(store.hot_count(), 3u);
  EXPECT_EQ(store.spilled_count(), 2u);
  EXPECT_GT(store.spilled_bytes(), 0u);

  // Spilled entries no longer match: nearest to {0,0} is now entry index 0
  // of the surviving hot entries (original index 2).
  auto match = store.NearestMatch({0.0, 0.0});
  ASSERT_TRUE(match.ok());
  EXPECT_DOUBLE_EQ(store.entry(match->entry_index).parameters[0], 2.0);
}

TEST(KnowledgeStoreTest, SpillToFileWritesBytes) {
  const std::string path = "/tmp/freeway_knowledge_spill_test.bin";
  std::remove(path.c_str());

  KnowledgeStoreOptions opts;
  opts.capacity = 2;
  opts.spill_path = path;
  KnowledgeStore store(opts);
  ASSERT_TRUE(store.Preserve(MakeEntry({1.0}, 8, 1.0)).ok());
  ASSERT_TRUE(store.Preserve(MakeEntry({2.0}, 8, 2.0)).ok());
  ASSERT_TRUE(store.Preserve(MakeEntry({3.0}, 8, 3.0)).ok());
  EXPECT_EQ(store.spilled_count(), 1u);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  // Header (2 x uint64) + 1 rep double + 8 param doubles.
  EXPECT_EQ(size, 16 + 8 * 9);
  std::remove(path.c_str());
}

TEST(KnowledgeStoreTest, SpaceAccounting) {
  KnowledgeStore store;
  ASSERT_TRUE(store.Preserve(MakeEntry({1.0, 2.0}, 10, 0.0)).ok());
  // 16 header + 8 * (10 params + 2 rep) = 112.
  EXPECT_EQ(store.HotSpaceBytes(), 112u);
  ASSERT_TRUE(store.Preserve(MakeEntry({1.0, 2.0}, 10, 0.0)).ok());
  EXPECT_EQ(store.HotSpaceBytes(), 224u);
}

TEST(KnowledgeEntryTest, SourceTagsPreserved) {
  KnowledgeStore store;
  KnowledgeEntry e = MakeEntry({1.0}, 2, 0.0, 42);
  e.source = KnowledgeSource::kShortModel;
  ASSERT_TRUE(store.Preserve(e).ok());
  EXPECT_EQ(store.entry(0).source, KnowledgeSource::kShortModel);
  EXPECT_EQ(store.entry(0).batch_index, 42);
}

}  // namespace
}  // namespace freeway
// -- appended tests: PreserveOrRefresh ---------------------------------------

namespace freeway {
namespace {

TEST(KnowledgeStoreTest, RefreshOverwritesNearbyEntry) {
  KnowledgeStore store;
  ASSERT_TRUE(store.Preserve(MakeEntry({0.0, 0.0}, 2, 1.0, 1)).ok());
  ASSERT_TRUE(store.Preserve(MakeEntry({5.0, 0.0}, 2, 2.0, 2)).ok());

  // New entry near the first one: refreshed in place, not appended.
  KnowledgeEntry fresh = MakeEntry({0.1, 0.0}, 2, 9.0, 3);
  ASSERT_TRUE(store.PreserveOrRefresh(fresh, /*dedup_radius=*/0.5).ok());
  EXPECT_EQ(store.hot_count(), 2u);
  EXPECT_EQ(store.refresh_count(), 1u);
  auto match = store.NearestMatch({0.0, 0.0});
  ASSERT_TRUE(match.ok());
  EXPECT_DOUBLE_EQ(store.entry(match->entry_index).parameters[0], 9.0);
  EXPECT_EQ(store.entry(match->entry_index).batch_index, 3);
}

TEST(KnowledgeStoreTest, RefreshAppendsWhenDistant) {
  KnowledgeStore store;
  ASSERT_TRUE(store.Preserve(MakeEntry({0.0, 0.0}, 2, 1.0)).ok());
  ASSERT_TRUE(
      store.PreserveOrRefresh(MakeEntry({9.0, 0.0}, 2, 2.0), 0.5).ok());
  EXPECT_EQ(store.hot_count(), 2u);
  EXPECT_EQ(store.refresh_count(), 0u);
}

TEST(KnowledgeStoreTest, ZeroRadiusDisablesRefresh) {
  KnowledgeStore store;
  ASSERT_TRUE(store.Preserve(MakeEntry({0.0}, 2, 1.0)).ok());
  ASSERT_TRUE(store.PreserveOrRefresh(MakeEntry({0.0}, 2, 2.0), 0.0).ok());
  EXPECT_EQ(store.hot_count(), 2u);
}

}  // namespace
}  // namespace freeway
// -- appended tests: entry quality -------------------------------------------

namespace freeway {
namespace {

TEST(KnowledgeEntryTest, QualityDefaultsToUnknown) {
  KnowledgeEntry e = MakeEntry({1.0}, 2, 0.0);
  EXPECT_LT(e.quality, 0.0);
}

TEST(KnowledgeEntryTest, QualityStoredAndRetrieved) {
  KnowledgeStore store;
  KnowledgeEntry e = MakeEntry({1.0}, 2, 0.0);
  e.quality = 0.87;
  ASSERT_TRUE(store.Preserve(e).ok());
  EXPECT_DOUBLE_EQ(store.entry(0).quality, 0.87);
}

}  // namespace
}  // namespace freeway
