#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace freeway {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  size_t same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 4u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, NextBelowCoversRangeUniformly) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.NextBelow(10)];
  for (int c : counts) {
    EXPECT_GT(c, draws / 10 * 0.9);
    EXPECT_LT(c, draws / 10 * 1.1);
  }
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(5);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianShiftScale) {
  Rng rng(5);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(RngTest, BernoulliEdgesAndRate) {
  Rng rng(11);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(3);
  auto perm = rng.Permutation(50);
  std::sort(perm.begin(), perm.end());
  for (size_t i = 0; i < perm.size(); ++i) EXPECT_EQ(perm[i], i);
}

TEST(RngTest, PermutationOfZeroAndOne) {
  Rng rng(3);
  EXPECT_TRUE(rng.Permutation(0).empty());
  auto one = rng.Permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(RngTest, ForkedStreamsAreDecorrelatedButDeterministic) {
  Rng parent1(42), parent2(42);
  Rng child1 = parent1.Fork(0);
  Rng child2 = parent2.Fork(0);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(child1.NextUint64(), child2.NextUint64());
  }

  Rng parent3(42);
  Rng a = parent3.Fork(1);
  Rng b = parent3.Fork(2);
  size_t same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 4u);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(77);
  const uint64_t first = rng.NextUint64();
  rng.NextUint64();
  rng.Seed(77);
  EXPECT_EQ(rng.NextUint64(), first);
}

}  // namespace
}  // namespace freeway
