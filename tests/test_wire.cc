#include "net/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.h"

namespace freeway {
namespace {

Batch MakeBatch(bool labeled, uint64_t seed, int64_t index) {
  Rng rng(seed);
  Batch b;
  b.index = index;
  b.features = Matrix(8, 3);
  if (labeled) b.labels.resize(8);
  for (size_t i = 0; i < 8; ++i) {
    const int label = static_cast<int>(rng.NextBelow(2));
    if (labeled) b.labels[i] = label;
    for (size_t j = 0; j < 3; ++j) {
      b.features.At(i, j) = rng.Gaussian(label * 2.0, 0.5);
    }
  }
  return b;
}

Frame DecodeWhole(const std::vector<char>& encoded) {
  FrameDecoder decoder;
  decoder.Feed(encoded.data(), encoded.size());
  Result<Frame> frame = decoder.Next();
  EXPECT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(decoder.buffered(), 0u);
  return frame.ok() ? *frame : Frame{};
}

TEST(WireTest, SubmitRoundTripIsBitIdentical) {
  SubmitMessage message;
  message.stream_id = 77;
  message.client_id = 0xDEADBEEFCAFE0001ull;
  message.sequence = 0xFFFFFFFFFFFFFFFEull;
  message.tenant_id = 31337;
  message.priority = static_cast<uint8_t>(TenantPriority::kCritical);
  message.batch = MakeBatch(true, 1, 42);
  message.batch.features.At(0, 0) = std::nan("");
  message.batch.features.At(0, 1) = std::numeric_limits<double>::infinity();

  const Frame frame = DecodeWhole(EncodeSubmit(message));
  ASSERT_EQ(frame.type, FrameType::kSubmit);
  Result<SubmitMessage> decoded = DecodeSubmit(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->stream_id, 77u);
  EXPECT_EQ(decoded->client_id, 0xDEADBEEFCAFE0001ull);
  EXPECT_EQ(decoded->sequence, 0xFFFFFFFFFFFFFFFEull);
  EXPECT_EQ(decoded->tenant_id, 31337u);
  EXPECT_EQ(decoded->priority, static_cast<uint8_t>(TenantPriority::kCritical));
  EXPECT_EQ(decoded->batch.index, 42);
  EXPECT_EQ(decoded->batch.labels, message.batch.labels);
  ASSERT_EQ(decoded->batch.features.rows(), 8u);
  ASSERT_EQ(decoded->batch.features.cols(), 3u);
  // Bit-identical, not just value-equal: NaN survives.
  for (size_t i = 0; i < 8; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      const double a = message.batch.features.At(i, j);
      const double b = decoded->batch.features.At(i, j);
      EXPECT_EQ(std::memcmp(&a, &b, sizeof(a)), 0) << i << "," << j;
    }
  }
}

TEST(WireTest, SubmitDefaultsToSingleTenantStandard) {
  SubmitMessage message;
  message.stream_id = 5;
  message.batch = MakeBatch(false, 3, 1);
  Result<SubmitMessage> decoded = DecodeSubmit(DecodeWhole(EncodeSubmit(message)));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->tenant_id, 0u);
  EXPECT_EQ(decoded->priority, static_cast<uint8_t>(TenantPriority::kStandard));
  // (0, 0) is the untracked marker: legacy at-least-once semantics.
  EXPECT_EQ(decoded->client_id, 0u);
  EXPECT_EQ(decoded->sequence, 0u);
}

TEST(WireTest, SubmitWithInvalidPriorityRejected) {
  SubmitMessage message;
  message.stream_id = 5;
  message.priority = 7;  // Not a TenantPriority; must not decode.
  message.batch = MakeBatch(false, 3, 1);
  Result<SubmitMessage> decoded = DecodeSubmit(DecodeWhole(EncodeSubmit(message)));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, ControlFramesRoundTrip) {
  {
    const Frame frame = DecodeWhole(EncodeAck({9, 123}));
    ASSERT_EQ(frame.type, FrameType::kAck);
    Result<AckMessage> ack = DecodeAck(frame);
    ASSERT_TRUE(ack.ok());
    EXPECT_EQ(ack->stream_id, 9u);
    EXPECT_EQ(ack->batch_index, 123);
  }
  {
    OverloadMessage overload{3, 7, 2500};
    const Frame frame = DecodeWhole(EncodeOverload(overload));
    ASSERT_EQ(frame.type, FrameType::kOverload);
    Result<OverloadMessage> decoded = DecodeOverload(frame);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->retry_after_micros, 2500);
  }
  {
    ErrorMessage error;
    error.stream_id = 1;
    error.batch_index = 2;
    error.code = StatusCode::kInvalidArgument;
    error.message = "bad batch";
    const Frame frame = DecodeWhole(EncodeError(error));
    ASSERT_EQ(frame.type, FrameType::kError);
    Result<ErrorMessage> decoded = DecodeError(frame);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->ToStatus().code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(decoded->message, "bad batch");
  }
  {
    const Frame frame = DecodeWhole(EncodeStats("{\"shards\":[]}"));
    ASSERT_EQ(frame.type, FrameType::kStats);
    Result<std::string> json = DecodeStats(frame);
    ASSERT_TRUE(json.ok());
    EXPECT_EQ(*json, "{\"shards\":[]}");
  }
  {
    const Frame frame = DecodeWhole(EncodeFrame(FrameType::kShutdown));
    EXPECT_EQ(frame.type, FrameType::kShutdown);
    EXPECT_TRUE(frame.payload.empty());
  }
}

TEST(WireTest, ResultRoundTripPreservesReport) {
  StreamResult result;
  result.stream_id = 5;
  result.batch_index = 17;
  result.report.strategy = Strategy::kCec;
  result.report.predictions = {1, 0, 1};
  result.report.assessment.m_score = 0.75;
  result.report.assessment.warmup = true;

  const Frame frame = DecodeWhole(EncodeResult(result));
  ASSERT_EQ(frame.type, FrameType::kResult);
  Result<StreamResult> decoded = DecodeResult(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->stream_id, 5u);
  EXPECT_EQ(decoded->batch_index, 17);
  EXPECT_EQ(decoded->report.strategy, Strategy::kCec);
  EXPECT_EQ(decoded->report.predictions, result.report.predictions);
  EXPECT_DOUBLE_EQ(decoded->report.assessment.m_score, 0.75);
  EXPECT_TRUE(decoded->report.assessment.warmup);
}

TEST(WireTest, DecoderHandlesByteAtATimeDelivery) {
  SubmitMessage message;
  message.stream_id = 4;
  message.batch = MakeBatch(false, 2, 3);
  const std::vector<char> encoded = EncodeSubmit(message);

  FrameDecoder decoder;
  for (size_t i = 0; i < encoded.size(); ++i) {
    Result<Frame> premature = decoder.Next();
    EXPECT_FALSE(premature.ok());
    EXPECT_EQ(premature.status().code(), StatusCode::kNotFound);
    decoder.Feed(&encoded[i], 1);
  }
  Result<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->type, FrameType::kSubmit);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(WireTest, DecoderPopsBackToBackFrames) {
  std::vector<char> stream = EncodeAck({1, 1});
  const std::vector<char> second = EncodeAck({2, 2});
  stream.insert(stream.end(), second.begin(), second.end());

  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  Result<Frame> first = decoder.Next();
  ASSERT_TRUE(first.ok());
  Result<AckMessage> ack1 = DecodeAck(*first);
  ASSERT_TRUE(ack1.ok());
  EXPECT_EQ(ack1->stream_id, 1u);
  Result<Frame> next = decoder.Next();
  ASSERT_TRUE(next.ok());
  Result<AckMessage> ack2 = DecodeAck(*next);
  ASSERT_TRUE(ack2.ok());
  EXPECT_EQ(ack2->stream_id, 2u);
  EXPECT_FALSE(decoder.Next().ok());
}

TEST(WireTest, BadMagicPoisonsDecoderPermanently) {
  std::vector<char> encoded = EncodeAck({1, 1});
  encoded[0] = 'X';
  FrameDecoder decoder;
  decoder.Feed(encoded.data(), encoded.size());
  Result<Frame> frame = decoder.Next();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  // Feeding a pristine frame afterwards cannot resurrect the stream: the
  // framing is gone for good.
  const std::vector<char> good = EncodeAck({2, 2});
  decoder.Feed(good.data(), good.size());
  Result<Frame> later = decoder.Next();
  ASSERT_FALSE(later.ok());
  EXPECT_EQ(later.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, WrongVersionRejected) {
  std::vector<char> encoded = EncodeAck({1, 1});
  encoded[4] = static_cast<char>(kWireVersion + 1);
  FrameDecoder decoder;
  decoder.Feed(encoded.data(), encoded.size());
  Result<Frame> frame = decoder.Next();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, UnknownFrameTypeRejected) {
  std::vector<char> encoded = EncodeAck({1, 1});
  encoded[5] = 99;
  FrameDecoder decoder;
  decoder.Feed(encoded.data(), encoded.size());
  EXPECT_FALSE(decoder.Next().ok());
}

TEST(WireTest, OversizedPayloadLengthRejectedWithoutAllocation) {
  std::vector<char> encoded = EncodeAck({1, 1});
  const uint32_t absurd = kMaxFramePayload + 1;
  std::memcpy(encoded.data() + 8, &absurd, sizeof(absurd));
  FrameDecoder decoder;
  decoder.Feed(encoded.data(), encoded.size());
  Result<Frame> frame = decoder.Next();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, FlippedPayloadBitFailsCrc) {
  SubmitMessage message;
  message.stream_id = 6;
  message.batch = MakeBatch(true, 3, 9);
  std::vector<char> encoded = EncodeSubmit(message);
  encoded[kFrameHeaderBytes + 5] ^= 0x40;
  FrameDecoder decoder;
  decoder.Feed(encoded.data(), encoded.size());
  Result<Frame> frame = decoder.Next();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, TornFrameLeavesBufferedBytes) {
  SubmitMessage message;
  message.stream_id = 8;
  message.batch = MakeBatch(true, 4, 11);
  const std::vector<char> encoded = EncodeSubmit(message);

  FrameDecoder decoder;
  const size_t half = encoded.size() / 2;
  decoder.Feed(encoded.data(), half);
  Result<Frame> frame = decoder.Next();
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kNotFound);
  // This is how the server detects a torn frame at connection EOF.
  EXPECT_EQ(decoder.buffered(), half);
}

TEST(WireTest, TruncatedSubmitPayloadFailsCleanly) {
  SubmitMessage message;
  message.stream_id = 10;
  message.batch = MakeBatch(true, 5, 13);
  Frame frame = DecodeWhole(EncodeSubmit(message));
  // Drop trailing payload bytes: the typed decoder must fail, not crash or
  // fabricate a batch.
  for (size_t keep : {size_t{0}, size_t{4}, frame.payload.size() / 2,
                      frame.payload.size() - 1}) {
    Frame torn;
    torn.type = FrameType::kSubmit;
    torn.payload.assign(frame.payload.begin(),
                        frame.payload.begin() + static_cast<long>(keep));
    Result<SubmitMessage> decoded = DecodeSubmit(torn);
    EXPECT_FALSE(decoded.ok()) << "kept " << keep << " bytes";
  }
}

TEST(WireTest, TypePayloadMismatchRejected) {
  const Frame frame = DecodeWhole(EncodeAck({1, 2}));
  EXPECT_FALSE(DecodeSubmit(frame).ok());
  EXPECT_FALSE(DecodeOverload(frame).ok());
  EXPECT_FALSE(DecodeStats(frame).ok());
}

TEST(WireTest, RaftVoteRequestRoundTrip) {
  RaftMessage message;
  message.type = RaftMessageType::kVoteRequest;
  message.from = 2;
  message.to = 3;
  message.term = 9;
  message.last_log_index = 41;
  message.last_log_term = 8;
  const Frame frame = DecodeWhole(EncodeRaftMessage(message));
  EXPECT_EQ(frame.type, FrameType::kVoteRequest);
  Result<RaftMessage> decoded = DecodeRaftMessage(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->type, RaftMessageType::kVoteRequest);
  EXPECT_EQ(decoded->from, 2u);
  EXPECT_EQ(decoded->to, 3u);
  EXPECT_EQ(decoded->term, 9u);
  EXPECT_EQ(decoded->last_log_index, 41u);
  EXPECT_EQ(decoded->last_log_term, 8u);
}

TEST(WireTest, RaftAppendEntriesRoundTripCarriesEntries) {
  RaftMessage message;
  message.type = RaftMessageType::kAppendEntries;
  message.from = 1;
  message.to = 2;
  message.term = 4;
  message.prev_log_index = 10;
  message.prev_log_term = 3;
  message.leader_commit = 9;
  for (uint64_t i = 0; i < 3; ++i) {
    RaftEntry entry;
    entry.index = 11 + i;
    entry.term = 4;
    entry.command.assign(5 + i, static_cast<char>('a' + i));
    message.entries.push_back(std::move(entry));
  }
  message.entries[1].command.clear();  // no-op barrier entry ships empty
  const Frame frame = DecodeWhole(EncodeRaftMessage(message));
  EXPECT_EQ(frame.type, FrameType::kAppendEntries);
  Result<RaftMessage> decoded = DecodeRaftMessage(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->entries.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded->entries[i].index, message.entries[i].index);
    EXPECT_EQ(decoded->entries[i].term, message.entries[i].term);
    EXPECT_EQ(decoded->entries[i].command, message.entries[i].command);
  }
  EXPECT_EQ(decoded->prev_log_index, 10u);
  EXPECT_EQ(decoded->leader_commit, 9u);
}

TEST(WireTest, RaftResponsesRoundTrip) {
  RaftMessage vote;
  vote.type = RaftMessageType::kVoteResponse;
  vote.from = 3;
  vote.to = 1;
  vote.term = 9;
  vote.vote_granted = true;
  Result<RaftMessage> decoded =
      DecodeRaftMessage(DecodeWhole(EncodeRaftMessage(vote)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->vote_granted);

  RaftMessage append;
  append.type = RaftMessageType::kAppendResponse;
  append.from = 2;
  append.to = 1;
  append.term = 4;
  append.success = false;
  append.conflict_index = 7;
  decoded = DecodeRaftMessage(DecodeWhole(EncodeRaftMessage(append)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->success);
  EXPECT_EQ(decoded->conflict_index, 7u);
}

TEST(WireTest, NotLeaderRoundTripAndHintlessForm) {
  NotLeaderMessage message;
  message.stream_id = 12;
  message.batch_index = 34;
  message.leader_id = 2;
  message.leader_host = "127.0.0.1";
  message.leader_port = 9402;
  const Frame frame = DecodeWhole(EncodeNotLeader(message));
  EXPECT_EQ(frame.type, FrameType::kNotLeader);
  Result<NotLeaderMessage> decoded = DecodeNotLeader(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->leader_id, 2u);
  EXPECT_EQ(decoded->leader_host, "127.0.0.1");
  EXPECT_EQ(decoded->leader_port, 9402);

  // No-leader-yet form: id 0, empty hint.
  decoded = DecodeNotLeader(DecodeWhole(EncodeNotLeader({12, 34, 0, "", 0})));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->leader_id, 0u);
  EXPECT_TRUE(decoded->leader_host.empty());
}

TEST(WireTest, RaftEntryCountBoundRejectsCorruptHeader) {
  // A corrupt entry count far beyond what the payload could hold must be
  // rejected before any allocation is attempted.
  RaftMessage message;
  message.type = RaftMessageType::kAppendEntries;
  message.from = 1;
  message.to = 2;
  std::vector<char> encoded = EncodeRaftMessage(message);
  // The entry count is the last u64 of the payload (no entries follow).
  uint64_t huge = UINT64_MAX / 2;
  std::memcpy(encoded.data() + encoded.size() - 8, &huge, 8);
  // Re-stamp the CRC so only the count is corrupt.
  const uint32_t crc =
      Crc32(encoded.data() + kFrameHeaderBytes,
            encoded.size() - kFrameHeaderBytes);
  std::memcpy(encoded.data() + 12, &crc, 4);
  const Frame frame = DecodeWhole(encoded);
  EXPECT_FALSE(DecodeRaftMessage(frame).ok());
}

}  // namespace
}  // namespace freeway
