#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "data/concept.h"
#include "data/simulators.h"
#include "eval/prequential.h"

namespace freeway {
namespace {

PrequentialResult RunSystem(const std::string& system, StreamSource* source,
                      size_t num_batches, size_t batch_size = 256) {
  auto learner = MakeSystem(system, ModelKind::kMlp, source->input_dim(),
                            source->num_classes());
  EXPECT_TRUE(learner.ok());
  PrequentialOptions opts;
  opts.num_batches = num_batches;
  opts.batch_size = batch_size;
  opts.warmup_batches = 10;
  auto result = RunPrequential(learner->get(), source, opts);
  EXPECT_TRUE(result.ok());
  return std::move(result).ValueOrDie();
}

// The headline claim (Table I shape): on drifting streams FreewayML's global
// accuracy and stability beat the plain streaming model.
TEST(IntegrationTest, FreewayBeatsPlainOnSuddenShiftStream) {
  auto src_plain = MakeNslKddSim(31);
  auto src_freeway = MakeNslKddSim(31);
  PrequentialResult plain = RunSystem("Plain", src_plain.get(), 70);
  PrequentialResult freeway = RunSystem("FreewayML", src_freeway.get(), 70);
  // Overall accuracy stays at least competitive...
  EXPECT_GT(freeway.g_acc, plain.g_acc - 0.01);
  // ...while the sudden-shift batches — the mechanism's target — win big
  // (Table II shape).
  EXPECT_GT(freeway.per_pattern.sudden, plain.per_pattern.sudden + 0.02);
}

TEST(IntegrationTest, FreewayBeatsPlainOnReoccurringStream) {
  auto src_plain = MakeElectricitySim(33);
  auto src_freeway = MakeElectricitySim(33);
  PrequentialResult plain = RunSystem("Plain", src_plain.get(), 80);
  PrequentialResult freeway = RunSystem("FreewayML", src_freeway.get(), 80);
  EXPECT_GT(freeway.g_acc, plain.g_acc - 0.02);
  EXPECT_GT(freeway.per_pattern.reoccurring, plain.per_pattern.reoccurring);
}

TEST(IntegrationTest, FreewayIsMoreStableOnDriftingStream) {
  auto src_plain = MakeAirlinesSim(35);
  auto src_freeway = MakeAirlinesSim(35);
  PrequentialResult plain = RunSystem("Plain", src_plain.get(), 80);
  PrequentialResult freeway = RunSystem("FreewayML", src_freeway.get(), 80);
  EXPECT_GE(freeway.stability_index, plain.stability_index - 0.01);
}

TEST(IntegrationTest, AllSystemsCompleteNslKddRun) {
  for (const std::string& system :
       {std::string("Flink ML"), std::string("Spark MLlib"),
        std::string("Alink"), std::string("River"), std::string("Camel"),
        std::string("A-GEM"), std::string("FreewayML")}) {
    auto source = MakeNslKddSim(37);
    PrequentialResult result = RunSystem(system, source.get(), 30, 128);
    EXPECT_GT(result.g_acc, 0.2) << system;
    EXPECT_GT(result.stability_index, 0.0) << system;
  }
}

}  // namespace
}  // namespace freeway
