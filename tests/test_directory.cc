#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "directory/admission.h"
#include "directory/directory.h"
#include "directory/placement.h"
#include "directory/working_set.h"
#include "fault/failpoint.h"
#include "ml/models.h"

namespace freeway {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// ConsistentHashRing

TEST(ConsistentHashRingTest, PlacementIsDeterministic) {
  ConsistentHashRing a(8), b(8);
  for (uint64_t id = 0; id < 1000; ++id) {
    EXPECT_EQ(a.ShardOf(id), b.ShardOf(id));
  }
}

TEST(ConsistentHashRingTest, ZeroInputsClampToOne) {
  ConsistentHashRing ring(0, 0);
  EXPECT_EQ(ring.num_shards(), 1u);
  EXPECT_EQ(ring.vnodes_per_shard(), 1u);
  EXPECT_EQ(ring.ShardOf(12345), 0u);
}

TEST(ConsistentHashRingTest, SpreadsStreamsAcrossShards) {
  const size_t shards = 8;
  ConsistentHashRing ring(shards);
  std::vector<size_t> counts(shards, 0);
  const size_t streams = 100000;
  for (uint64_t id = 0; id < streams; ++id) ++counts[ring.ShardOf(id)];
  // With 64 vnodes/shard the split should be within ~2x of ideal — loose
  // enough to never flake, tight enough to catch a broken ring.
  const size_t ideal = streams / shards;
  for (size_t shard = 0; shard < shards; ++shard) {
    EXPECT_GT(counts[shard], ideal / 2) << "shard " << shard;
    EXPECT_LT(counts[shard], ideal * 2) << "shard " << shard;
  }
}

TEST(ConsistentHashRingTest, GrowingShardSetMovesFewStreams) {
  ConsistentHashRing before(8), after(9);
  const size_t streams = 50000;
  size_t moved = 0;
  for (uint64_t id = 0; id < streams; ++id) {
    if (before.ShardOf(id) != after.ShardOf(id)) ++moved;
  }
  // Ideal is 1/9 ≈ 11%; the modulo mapping would move ~8/9 ≈ 89%. Assert
  // the consistent-hash regime with a wide margin.
  EXPECT_LT(moved, streams / 3);
  EXPECT_GT(moved, 0u);
}

// ---------------------------------------------------------------------------
// ParseTenantWeights

TEST(ParseTenantWeightsTest, ParsesFullGrammar) {
  auto parsed = ParseTenantWeights("1:8:critical,2:4,7:0.5:best_effort");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[0].tenant_id, 1u);
  EXPECT_DOUBLE_EQ((*parsed)[0].weight, 8.0);
  EXPECT_EQ((*parsed)[0].priority, TenantPriority::kCritical);
  EXPECT_EQ((*parsed)[1].tenant_id, 2u);
  EXPECT_EQ((*parsed)[1].priority, TenantPriority::kStandard);
  EXPECT_EQ((*parsed)[2].tenant_id, 7u);
  EXPECT_DOUBLE_EQ((*parsed)[2].weight, 0.5);
  EXPECT_EQ((*parsed)[2].priority, TenantPriority::kBestEffort);
}

TEST(ParseTenantWeightsTest, RejectsMalformedEntries) {
  EXPECT_FALSE(ParseTenantWeights("1").ok());
  EXPECT_FALSE(ParseTenantWeights("1:abc").ok());
  EXPECT_FALSE(ParseTenantWeights("1:0").ok());
  EXPECT_FALSE(ParseTenantWeights("1:-2").ok());
  EXPECT_FALSE(ParseTenantWeights("1:2:vip").ok());
  EXPECT_FALSE(ParseTenantWeights("1:2:standard:extra").ok());
}

TEST(ParseTenantWeightsTest, EmptySpecYieldsNoTenants) {
  auto parsed = ParseTenantWeights("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

// ---------------------------------------------------------------------------
// TenantAdmission

AdmissionOptions TwoTenantOptions() {
  AdmissionOptions options;
  options.enabled = true;
  options.tenants.push_back({1, 8.0, TenantPriority::kStandard});
  options.tenants.push_back({2, 1.0, TenantPriority::kBestEffort});
  return options;
}

TEST(TenantAdmissionTest, SharesAreWeightProportionalWithFloorOfOne) {
  // total weight 8 + 1 + 1 (other) = 10; capacity 100.
  TenantAdmission admission(TwoTenantOptions(), 2, 100, nullptr);
  EXPECT_EQ(admission.share(admission.SlotOf(1)), 80u);
  EXPECT_EQ(admission.share(admission.SlotOf(2)), 10u);
  // A tiny weight still gets one slot — the starvation guarantee.
  AdmissionOptions tiny = TwoTenantOptions();
  tiny.tenants.push_back({3, 0.001, TenantPriority::kBestEffort});
  TenantAdmission floored(tiny, 2, 100, nullptr);
  EXPECT_EQ(floored.share(floored.SlotOf(3)), 1u);
}

TEST(TenantAdmissionTest, UnconfiguredTenantsShareTheOtherBucket) {
  TenantAdmission admission(TwoTenantOptions(), 2, 100, nullptr);
  EXPECT_EQ(admission.SlotOf(999), admission.SlotOf(12345));
  EXPECT_NE(admission.SlotOf(999), admission.SlotOf(1));
}

TEST(TenantAdmissionTest, UncontendedQueueAdmitsEveryone) {
  TenantAdmission admission(TwoTenantOptions(), 1, 100, nullptr);
  const size_t slot = admission.SlotOf(2);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(admission.Admit(0, slot, false, 0.3));
    admission.OnAdmitted(0, slot);
  }
}

TEST(TenantAdmissionTest, PressureEnforcesShares) {
  TenantAdmission admission(TwoTenantOptions(), 1, 100, nullptr);
  const size_t heavy = admission.SlotOf(1);
  const size_t light = admission.SlotOf(2);
  // Fill both tenants to their shares at fill 0.6 (pressure band).
  size_t heavy_admitted = 0, light_admitted = 0;
  for (int i = 0; i < 200; ++i) {
    if (admission.Admit(0, heavy, false, 0.6)) {
      admission.OnAdmitted(0, heavy);
      ++heavy_admitted;
    }
    if (admission.Admit(0, light, false, 0.6)) {
      admission.OnAdmitted(0, light);
      ++light_admitted;
    }
  }
  EXPECT_EQ(heavy_admitted, 80u);
  EXPECT_EQ(light_admitted, 10u);
  // Retiring frees share.
  admission.OnRetired(0, heavy);
  EXPECT_TRUE(admission.Admit(0, heavy, false, 0.6));
}

TEST(TenantAdmissionTest, LabeledBatchesAreNeverQuotaRejected) {
  TenantAdmission admission(TwoTenantOptions(), 1, 100, nullptr);
  const size_t light = admission.SlotOf(2);
  for (int i = 0; i < 50; ++i) admission.OnAdmitted(0, light);  // Over share.
  EXPECT_TRUE(admission.Admit(0, light, /*labeled=*/true, 0.99));
  EXPECT_FALSE(admission.Admit(0, light, /*labeled=*/false, 0.99));
}

TEST(TenantAdmissionTest, HardThresholdShedsBestEffortOutright) {
  TenantAdmission admission(TwoTenantOptions(), 1, 100, nullptr);
  const size_t best_effort = admission.SlotOf(2);
  const size_t standard = admission.SlotOf(1);
  // Best-effort is turned away at the hard threshold even with zero
  // in-flight; standard still gets its share.
  EXPECT_FALSE(admission.Admit(0, best_effort, false, 0.95));
  EXPECT_TRUE(admission.Admit(0, standard, false, 0.95));
}

TEST(TenantAdmissionTest, CriticalTenantsBypassQuotas) {
  AdmissionOptions options = TwoTenantOptions();
  options.tenants.push_back({3, 0.001, TenantPriority::kCritical});
  TenantAdmission admission(options, 1, 100, nullptr);
  const size_t critical = admission.SlotOf(3);
  for (int i = 0; i < 50; ++i) admission.OnAdmitted(0, critical);
  EXPECT_TRUE(admission.Admit(0, critical, false, 0.99));
}

TEST(TenantAdmissionTest, SnapshotReportsPerTenantAccounting) {
  TenantAdmission admission(TwoTenantOptions(), 1, 100, nullptr);
  const size_t heavy = admission.SlotOf(1);
  admission.OnAdmitted(0, heavy);
  admission.OnAdmitted(0, heavy);
  EXPECT_FALSE(admission.Admit(0, admission.SlotOf(2), false, 0.95));
  std::vector<TenantStatsSnapshot> rows = admission.Snapshot();
  ASSERT_EQ(rows.size(), 3u);  // Two configured + "other".
  EXPECT_EQ(rows[0].tenant_id, 1u);
  EXPECT_EQ(rows[0].in_flight, 2u);
  EXPECT_EQ(rows[1].rejected, 1u);
  EXPECT_TRUE(rows[2].is_other);
}

// ---------------------------------------------------------------------------
// DirectoryOptions env overrides

TEST(DirectoryOptionsTest, ApplyEnvReadsWorkingSetAndTenantWeights) {
  ::setenv("FREEWAY_DIRECTORY_WORKING_SET", "4096", 1);
  ::setenv("FREEWAY_TENANT_WEIGHTS", "1:8:critical,2:1", 1);
  DirectoryOptions options;
  options.ApplyEnv();
  ::unsetenv("FREEWAY_DIRECTORY_WORKING_SET");
  ::unsetenv("FREEWAY_TENANT_WEIGHTS");
  EXPECT_EQ(options.working_set_capacity, 4096u);
  ASSERT_TRUE(options.admission.enabled);
  ASSERT_EQ(options.admission.tenants.size(), 2u);
  EXPECT_EQ(options.admission.tenants[0].priority, TenantPriority::kCritical);
}

TEST(DirectoryOptionsTest, ApplyEnvIgnoresMalformedValues) {
  ::setenv("FREEWAY_DIRECTORY_WORKING_SET", "not-a-number", 1);
  ::setenv("FREEWAY_TENANT_WEIGHTS", "1:soup", 1);
  DirectoryOptions options;
  const size_t default_capacity = options.working_set_capacity;
  options.ApplyEnv();
  ::unsetenv("FREEWAY_DIRECTORY_WORKING_SET");
  ::unsetenv("FREEWAY_TENANT_WEIGHTS");
  EXPECT_EQ(options.working_set_capacity, default_capacity);
  EXPECT_FALSE(options.admission.enabled);
}

// ---------------------------------------------------------------------------
// PipelineWorkingSet

Batch MakeBatch(bool labeled, uint64_t seed, int64_t index) {
  Rng rng(seed);
  Batch b;
  b.index = index;
  b.features = Matrix(16, 4);
  if (labeled) b.labels.resize(16);
  for (size_t i = 0; i < 16; ++i) {
    const int label = static_cast<int>(rng.NextBelow(2));
    if (labeled) b.labels[i] = label;
    for (size_t j = 0; j < 4; ++j) {
      b.features.At(i, j) = rng.Gaussian(label * 2.0, 0.5);
    }
  }
  return b;
}

class WorkingSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("freeway_ws_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    fs::remove_all(dir_);
    failpoint::DisarmAll();
    prototype_ = MakeLogisticRegression(4, 2);
    CheckpointStoreOptions store_options;
    store_options.directory = dir_.string();
    store_options.keep_versions = 1;
    store_options.fsync = false;
    store_ = std::make_unique<CheckpointStore>(std::move(store_options));
  }
  void TearDown() override {
    failpoint::DisarmAll();
    store_.reset();
    fs::remove_all(dir_);
  }

  WorkingSetOptions Options(size_t capacity) {
    WorkingSetOptions ws;
    ws.capacity = capacity;
    ws.store = store_.get();
    ws.prototype = prototype_.get();
    ws.pipeline.learner.base_window_batches = 4;
    ws.pipeline.learner.detector.warmup_batches = 3;
    return ws;
  }

  void CheckInvariant(const PipelineWorkingSet& set) {
    const WorkingSetStats& s = set.stats();
    EXPECT_EQ(s.hydrations_fresh + s.hydrations_restored,
              s.evictions + s.discards + set.resident());
  }

  fs::path dir_;
  std::unique_ptr<Model> prototype_;
  std::unique_ptr<CheckpointStore> store_;
};

TEST_F(WorkingSetTest, AcquireHydratesFreshAndCachesResident) {
  PipelineWorkingSet set(Options(4));
  StreamPipeline* a = set.Acquire(1);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(set.Acquire(1), a);  // Second acquire hits the cache.
  EXPECT_EQ(set.stats().hydrations_fresh, 1u);
  EXPECT_EQ(set.resident(), 1u);
  CheckInvariant(set);
}

TEST_F(WorkingSetTest, EvictsLeastRecentlyUsedAtCapacity) {
  PipelineWorkingSet set(Options(2));
  set.Acquire(1);
  set.Acquire(2);
  set.Acquire(1);  // Touch 1: the LRU victim is now 2.
  set.Acquire(3);  // Evicts 2.
  EXPECT_EQ(set.resident(), 2u);
  EXPECT_NE(set.Resident(1), nullptr);
  EXPECT_EQ(set.Resident(2), nullptr);
  EXPECT_NE(set.Resident(3), nullptr);
  EXPECT_EQ(set.stats().evictions, 1u);
  // The evicted stream's state is parked in the store.
  EXPECT_TRUE(store_->ReadLatest(set.CheckpointName(2)).ok());
  CheckInvariant(set);
}

TEST_F(WorkingSetTest, EvictHydrateRoundTripIsBitIdentical) {
  PipelineWorkingSet set(Options(1));
  StreamPipeline* p = set.Acquire(7);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(p->Push(MakeBatch(true, 100 + i, i)).ok());
  }
  std::vector<char> before;
  ASSERT_TRUE(p->Snapshot(&before).ok());

  set.Acquire(8);  // Capacity 1: evicts 7 through the store.
  EXPECT_EQ(set.Resident(7), nullptr);
  StreamPipeline* back = set.Acquire(7);  // Evicts 8, restores 7.
  std::vector<char> after;
  ASSERT_TRUE(back->Snapshot(&after).ok());
  ASSERT_EQ(before.size(), after.size());
  EXPECT_EQ(std::memcmp(before.data(), after.data(), before.size()), 0);
  EXPECT_EQ(set.stats().hydrations_restored, 1u);
  EXPECT_EQ(back->batches_processed(), 6u);
  CheckInvariant(set);
}

TEST_F(WorkingSetTest, HydrateFailureFallsBackToFreshPipeline) {
  PipelineWorkingSet set(Options(1));
  StreamPipeline* p = set.Acquire(7);
  ASSERT_TRUE(p->Push(MakeBatch(true, 1, 0)).ok());
  set.Acquire(8);  // Park 7.

  failpoint::Arm("directory.hydrate",
                 {StatusCode::kIoError, "injected hydrate failure", 0, 1});
  StreamPipeline* back = set.Acquire(7);
  ASSERT_NE(back, nullptr);  // Infallible: fresh pipeline.
  EXPECT_EQ(back->batches_processed(), 0u);
  EXPECT_EQ(set.stats().hydrate_errors, 1u);
  CheckInvariant(set);
}

TEST_F(WorkingSetTest, EvictFailureKeepsVictimResidentAndOverflows) {
  PipelineWorkingSet set(Options(1));
  set.Acquire(1);
  failpoint::Arm("directory.evict",
                 {StatusCode::kIoError, "injected evict failure", 0, 1});
  StreamPipeline* second = set.Acquire(2);
  ASSERT_NE(second, nullptr);
  // The park failed, so stream 1 stayed resident (soft overflow) and its
  // state was not lost.
  EXPECT_EQ(set.resident(), 2u);
  EXPECT_NE(set.Resident(1), nullptr);
  EXPECT_EQ(set.stats().evict_errors, 1u);
  EXPECT_EQ(set.stats().evictions, 0u);
  CheckInvariant(set);
  // With the failpoint gone the next pressure evicts normally.
  set.Acquire(3);
  EXPECT_EQ(set.stats().evictions, 2u);
  EXPECT_EQ(set.resident(), 1u);
  CheckInvariant(set);
}

TEST_F(WorkingSetTest, ParkAllMakesEveryResidentRestorable) {
  PipelineWorkingSet set(Options(8));
  for (uint64_t id = 1; id <= 5; ++id) {
    StreamPipeline* p = set.Acquire(id);
    ASSERT_TRUE(p->Push(MakeBatch(true, id, 0)).ok());
  }
  ASSERT_TRUE(set.ParkAll().ok());
  for (uint64_t id = 1; id <= 5; ++id) {
    EXPECT_TRUE(store_->ReadLatest(set.CheckpointName(id)).ok()) << id;
  }
  EXPECT_EQ(set.stats().parks, 5u);
  EXPECT_EQ(set.resident(), 5u);  // ParkAll does not evict.
}

TEST_F(WorkingSetTest, DiscardRollsBackToLastPark) {
  PipelineWorkingSet set(Options(4));
  StreamPipeline* p = set.Acquire(7);
  ASSERT_TRUE(p->Push(MakeBatch(true, 1, 0)).ok());
  ASSERT_TRUE(set.Park(7).ok());
  ASSERT_TRUE(p->Push(MakeBatch(true, 2, 1)).ok());  // Past the park.

  set.Discard(7);
  StreamPipeline* back = set.Acquire(7);
  // The post-park push is gone: state rolled back to the checkpoint.
  EXPECT_EQ(back->batches_processed(), 1u);
  EXPECT_EQ(set.stats().discards, 1u);
  EXPECT_EQ(set.stats().hydrations_restored, 1u);
  CheckInvariant(set);
}

TEST_F(WorkingSetTest, NotePushParksAtInterval) {
  PipelineWorkingSet set(Options(4));
  StreamPipeline* p = set.Acquire(7);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(p->Push(MakeBatch(true, i, i)).ok());
    ASSERT_TRUE(set.NotePush(7, 3).ok());
  }
  EXPECT_EQ(set.stats().parks, 1u);  // Parked exactly at the third push.
  EXPECT_TRUE(store_->ReadLatest(set.CheckpointName(7)).ok());
}

}  // namespace
}  // namespace freeway
