#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "fault/failpoint.h"
#include "ml/models.h"
#include "net/client.h"
#include "net/server.h"

namespace freeway {
namespace {

constexpr size_t kDim = 4;
constexpr size_t kBatchRows = 16;

/// Network chaos: connections are severed mid-protocol by failpoints on
/// both sides of the wire, and the invariant under test is always the same
/// — at-least-once delivery with zero labeled-batch loss. Every batch the
/// client reports acked was admitted by the runtime, and every admitted
/// labeled batch is processed (never silently dropped), because the client
/// re-sends anything unacknowledged on its next connection.
///
/// The whole suite runs once single-reactor and once with two workers: a
/// severed connection's replacement may land on a different worker, so the
/// resend path also exercises cross-worker stream re-routing.
class NetChaosTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }

  void StartServer() {
    ServerOptions opts;
    opts.metrics = &registry_;
    opts.num_workers = GetParam();
    opts.runtime.num_shards = 2;
    opts.runtime.pipeline.learner.base_window_batches = 4;
    opts.runtime.pipeline.learner.detector.warmup_batches = 3;
    auto proto = MakeLogisticRegression(kDim, 2);
    server_ = std::make_unique<StreamServer>(*proto, std::move(opts));
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_EQ(server_->num_workers(), GetParam());
  }

  ClientOptions ClientFor() {
    ClientOptions opts;
    opts.port = server_->port();
    opts.backoff_initial_micros = 100;
    opts.backoff_max_micros = 2000;
    return opts;
  }

  Batch NextLabeled(HyperplaneSource& source) {
    Result<Batch> batch = source.NextBatch(kBatchRows);
    EXPECT_TRUE(batch.ok()) << batch.status();
    return *std::move(batch);
  }

  uint64_t CounterValue(const std::string& name) {
    return registry_.GetCounter(name)->Value();
  }

  /// The zero-loss reconciliation run after Stop(): every acked batch was
  /// admitted exactly once and processed, nothing quarantined or abandoned.
  void ExpectZeroLabeledLoss(uint64_t acked) {
    const RuntimeStatsSnapshot snapshot = server_->runtime()->Snapshot();
    EXPECT_EQ(snapshot.totals.enqueued, acked);
    EXPECT_EQ(snapshot.totals.processed, acked);
    EXPECT_EQ(snapshot.totals.shed, 0u);
    EXPECT_EQ(snapshot.totals.quarantined, 0u);
    EXPECT_EQ(snapshot.totals.undrained, 0u);
    EXPECT_TRUE(server_->runtime()->TakeDeadLetters().empty());
  }

  MetricsRegistry registry_;
  std::unique_ptr<StreamServer> server_;
};

TEST_P(NetChaosTest, TornClientFrameIsResentAfterReconnect) {
  StartServer();
  // The 3rd SUBMIT write tears: half the frame leaves, then the socket
  // dies. The server must count one torn frame and never see the batch;
  // the client reconnects and re-sends it.
  failpoint::FailPointSpec spec;
  spec.code = StatusCode::kIoError;
  spec.skip = 2;
  spec.count = 1;
  failpoint::Arm("net.client.send", spec);

  StreamClient client(ClientFor());
  HyperplaneOptions sopts;
  sopts.dim = kDim;
  sopts.seed = 31;
  HyperplaneSource source(sopts);
  constexpr int kBatches = 6;
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(client.Submit(1, NextLabeled(source)).ok()) << "batch " << b;
  }
  EXPECT_EQ(failpoint::Hits("net.client.send"), 1u);
  EXPECT_EQ(client.tallies().acked, static_cast<uint64_t>(kBatches));
  EXPECT_GE(client.tallies().reconnects, 1u);
  EXPECT_EQ(client.tallies().submits_sent, static_cast<uint64_t>(kBatches));

  client.Disconnect();
  server_->Stop();
  EXPECT_EQ(CounterValue("freeway_net_torn_frames_total"), 1u);
  ExpectZeroLabeledLoss(kBatches);
}

TEST_P(NetChaosTest, RepeatedSendFailuresBackOffInsteadOfSpinning) {
  StartServer();
  // Three consecutive sends of the same batch die. The regression under
  // test: the send-failure path used to `continue` straight into the next
  // reconnect + resend with no backoff, so a half-dead link was hammered
  // in a tight loop. Each failure must now pay the exponential backoff —
  // observable as wall-clock time, the one thing a spin cannot fake.
  failpoint::FailPointSpec spec;
  spec.code = StatusCode::kIoError;
  spec.count = 3;
  failpoint::Arm("net.client.send", spec);

  ClientOptions copts = ClientFor();
  copts.backoff_initial_micros = 20000;
  copts.backoff_max_micros = 200000;
  StreamClient client(copts);
  HyperplaneOptions sopts;
  sopts.dim = kDim;
  sopts.seed = 43;
  HyperplaneSource source(sopts);

  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(client.Submit(4, NextLabeled(source)).ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(failpoint::Hits("net.client.send"), 3u);
  // Each failure pays a decorrelated-jitter wait of at least the 20ms
  // base (the draw is uniform in [base, 3 x previous]), so three failures
  // cost >= 60ms of wall clock, minus scheduler slop. The old assertion
  // pinned the deterministic 20+40+80 doubling schedule; jitter trades
  // that fixed ladder for desynchronized fleets.
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            55);
  EXPECT_EQ(client.tallies().acked, 1u);
  EXPECT_GE(client.tallies().reconnects, 3u);

  client.Disconnect();
  server_->Stop();
  ExpectZeroLabeledLoss(1);
}

TEST_P(NetChaosTest, ServerSideReadDropForcesResendWithoutLoss) {
  StartServer();
  // The server kills the connection mid-stream (the net.read site fires
  // once per decoded frame, so skip=2 lands deterministically on the 3rd
  // submit). The in-flight submit was parsed but never dispatched, so the
  // client's resend is the only copy that reaches the runtime.
  failpoint::FailPointSpec spec;
  spec.code = StatusCode::kIoError;
  spec.skip = 2;
  spec.count = 1;
  failpoint::Arm("net.read", spec);

  StreamClient client(ClientFor());
  HyperplaneOptions sopts;
  sopts.dim = kDim;
  sopts.seed = 37;
  HyperplaneSource source(sopts);
  constexpr int kBatches = 8;
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(client.Submit(2, NextLabeled(source)).ok()) << "batch " << b;
  }
  EXPECT_EQ(failpoint::Hits("net.read"), 1u);
  EXPECT_EQ(client.tallies().acked, static_cast<uint64_t>(kBatches));
  EXPECT_GE(client.tallies().reconnects, 1u);

  client.Disconnect();
  server_->Stop();
  EXPECT_GE(CounterValue("freeway_net_connections_total{event=\"closed\"}"),
            2u);
  ExpectZeroLabeledLoss(kBatches);
}

TEST_P(NetChaosTest, DroppedAcceptIsRetriedTransparently) {
  StartServer();
  // The first accepted connection is closed before a byte is served.
  failpoint::FailPointSpec spec;
  spec.code = StatusCode::kIoError;
  spec.count = 1;
  failpoint::Arm("net.accept", spec);

  StreamClient client(ClientFor());
  HyperplaneOptions sopts;
  sopts.dim = kDim;
  sopts.seed = 41;
  HyperplaneSource source(sopts);
  constexpr int kBatches = 4;
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(client.Submit(3, NextLabeled(source)).ok()) << "batch " << b;
  }
  EXPECT_EQ(failpoint::Hits("net.accept"), 1u);
  EXPECT_EQ(client.tallies().acked, static_cast<uint64_t>(kBatches));

  client.Disconnect();
  server_->Stop();
  ExpectZeroLabeledLoss(kBatches);
}

TEST_P(NetChaosTest, ConcurrentClientsSurviveScatteredDrops) {
  StartServer();
  // Drops land mid-run across all connections (the loop shares the site);
  // each affected client reconnects and resends independently.
  failpoint::FailPointSpec spec;
  spec.code = StatusCode::kIoError;
  spec.skip = 5;
  spec.count = 3;
  failpoint::Arm("net.read", spec);

  constexpr int kClients = 3;
  constexpr int kBatches = 8;
  std::vector<ClientTallies> tallies(kClients);
  std::vector<std::thread> producers;
  for (int c = 0; c < kClients; ++c) {
    producers.emplace_back([this, c, &tallies] {
      StreamClient client(ClientFor());
      HyperplaneOptions sopts;
      sopts.dim = kDim;
      sopts.seed = 50 + c;
      HyperplaneSource source(sopts);
      for (int b = 0; b < kBatches; ++b) {
        ASSERT_TRUE(client.Submit(10 + c, NextLabeled(source)).ok())
            << "client " << c << " batch " << b;
      }
      tallies[c] = client.tallies();
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(failpoint::Hits("net.read"), 3u);

  uint64_t acked = 0;
  for (const ClientTallies& t : tallies) acked += t.acked;
  EXPECT_EQ(acked, static_cast<uint64_t>(kClients * kBatches));

  server_->Stop();
  ExpectZeroLabeledLoss(acked);
}

INSTANTIATE_TEST_SUITE_P(Workers, NetChaosTest, ::testing::Values(1, 2),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "workers" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace freeway
