#include "data/synthetic.h"

#include <gtest/gtest.h>

namespace freeway {
namespace {

TEST(HyperplaneTest, ShapesAndDeterminism) {
  HyperplaneOptions opts;
  opts.seed = 5;
  HyperplaneSource a(opts), b(opts);
  auto ba = a.NextBatch(64);
  auto bb = b.NextBatch(64);
  ASSERT_TRUE(ba.ok() && bb.ok());
  EXPECT_EQ(ba->size(), 64u);
  EXPECT_EQ(ba->dim(), 10u);
  EXPECT_EQ(ba->labels, bb->labels);
  for (size_t i = 0; i < 64; ++i) {
    for (size_t j = 0; j < 10; ++j) {
      EXPECT_DOUBLE_EQ(ba->features.At(i, j), bb->features.At(i, j));
    }
  }
}

TEST(HyperplaneTest, FeaturesInUnitCubeAndLabelsBalanced) {
  HyperplaneSource src;
  size_t ones = 0, total = 0;
  for (int b = 0; b < 20; ++b) {
    auto batch = src.NextBatch(256);
    ASSERT_TRUE(batch.ok());
    for (size_t i = 0; i < batch->size(); ++i) {
      for (size_t j = 0; j < batch->dim(); ++j) {
        EXPECT_GE(batch->features.At(i, j), 0.0);
        EXPECT_LT(batch->features.At(i, j), 1.0);
      }
      ones += batch->labels[i] == 1 ? 1 : 0;
      ++total;
    }
  }
  const double ratio = static_cast<double>(ones) / static_cast<double>(total);
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 0.7);
}

TEST(HyperplaneTest, WeightsDriftOverTime) {
  HyperplaneSource src;
  const auto w0 = src.weights();
  for (int b = 0; b < 50; ++b) ASSERT_TRUE(src.NextBatch(32).ok());
  const auto w1 = src.weights();
  EXPECT_NE(w0, w1);
  // Only the first `drift_features` weights move.
  for (size_t f = 2; f < w0.size(); ++f) EXPECT_DOUBLE_EQ(w0[f], w1[f]);
}

TEST(HyperplaneTest, SuddenEventsAnnotated) {
  HyperplaneOptions opts;
  opts.sudden_every = 10;
  HyperplaneSource src(opts);
  size_t events = 0;
  for (int b = 0; b < 35; ++b) {
    ASSERT_TRUE(src.NextBatch(16).ok());
    if (src.LastBatchMeta().shift_event) {
      ++events;
      EXPECT_EQ(src.LastBatchMeta().segment_kind, DriftKind::kSudden);
    }
  }
  EXPECT_EQ(events, 3u);  // Batches 10, 20, 30.
}

TEST(HyperplaneTest, RejectsZeroBatchSize) {
  HyperplaneSource src;
  EXPECT_FALSE(src.NextBatch(0).ok());
}

TEST(SeaTest, LabelsFollowCurrentTheta) {
  SeaOptions opts;
  opts.noise = 0.0;
  SeaSource src(opts);
  auto batch = src.NextBatch(512);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < batch->size(); ++i) {
    const double sum = batch->features.At(i, 0) + batch->features.At(i, 1);
    const int expected = sum <= src.current_theta() ? 1 : 0;
    EXPECT_EQ(batch->labels[i], expected);
  }
}

TEST(SeaTest, ConceptsCycleAndAnnotate) {
  SeaOptions opts;
  opts.concept_length = 5;
  SeaSource src(opts);
  std::vector<double> thetas;
  size_t sudden = 0, reoccurring = 0;
  for (int b = 0; b < 45; ++b) {
    ASSERT_TRUE(src.NextBatch(16).ok());
    if (b % 5 == 0) thetas.push_back(src.current_theta());
    const BatchMeta& meta = src.LastBatchMeta();
    if (meta.shift_event) {
      if (meta.segment_kind == DriftKind::kSudden) ++sudden;
      if (meta.segment_kind == DriftKind::kReoccurring) ++reoccurring;
    }
  }
  // Theta cycles 8, 9, 7, 9.5, 8, ...
  EXPECT_DOUBLE_EQ(thetas[0], 8.0);
  EXPECT_DOUBLE_EQ(thetas[1], 9.0);
  EXPECT_DOUBLE_EQ(thetas[2], 7.0);
  EXPECT_DOUBLE_EQ(thetas[3], 9.5);
  EXPECT_DOUBLE_EQ(thetas[4], 8.0);
  // First 3 switches are sudden (new thetas), later ones reoccurring.
  EXPECT_GT(sudden, 0u);
  EXPECT_GT(reoccurring, 0u);
}

TEST(SeaTest, NoiseFlipsLabels) {
  SeaOptions clean_opts;
  clean_opts.noise = 0.0;
  SeaOptions noisy_opts;
  noisy_opts.noise = 0.3;
  SeaSource clean(clean_opts), noisy(noisy_opts);
  auto cb = clean.NextBatch(2048);
  auto nb = noisy.NextBatch(2048);
  ASSERT_TRUE(cb.ok() && nb.ok());
  // With 30% flips, noisy labels disagree with the rule for ~30% of rows.
  size_t disagreements = 0;
  for (size_t i = 0; i < nb->size(); ++i) {
    const double sum = nb->features.At(i, 0) + nb->features.At(i, 1);
    const int rule = sum <= 8.0 ? 1 : 0;
    if (nb->labels[i] != rule) ++disagreements;
  }
  const double rate =
      static_cast<double>(disagreements) / static_cast<double>(nb->size());
  EXPECT_NEAR(rate, 0.3, 0.05);
}

}  // namespace
}  // namespace freeway
// -- appended tests: feature-visible concept switches ------------------------

namespace freeway {
namespace {

TEST(HyperplaneTest, ClassOffsetsSeparateClassesInFeatureSpace) {
  HyperplaneOptions opts;
  opts.sudden_class_offset = 2.0;
  opts.noise = 0.0;
  HyperplaneSource src(opts);
  auto batch = src.NextBatch(2048);
  ASSERT_TRUE(batch.ok());
  // Per-class feature means differ by roughly the configured offset norm
  // (uniform-cube base means cancel in expectation).
  std::vector<double> mean0(10, 0.0), mean1(10, 0.0);
  size_t n0 = 0, n1 = 0;
  for (size_t i = 0; i < batch->size(); ++i) {
    auto row = batch->features.Row(i);
    if (batch->labels[i] == 0) {
      ++n0;
      for (size_t d = 0; d < 10; ++d) mean0[d] += row[d];
    } else {
      ++n1;
      for (size_t d = 0; d < 10; ++d) mean1[d] += row[d];
    }
  }
  for (auto& v : mean0) v /= static_cast<double>(n0);
  for (auto& v : mean1) v /= static_cast<double>(n1);
  EXPECT_GT(vec::EuclideanDistance(mean0, mean1), 1.0);
}

TEST(HyperplaneTest, RerandomizationMovesFeatureDistribution) {
  HyperplaneOptions opts;
  opts.sudden_every = 3;
  opts.sudden_class_offset = 1.5;
  HyperplaneSource src(opts);
  auto before = src.NextBatch(1024);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(src.NextBatch(1024).ok());
  ASSERT_TRUE(src.NextBatch(1024).ok());
  auto after = src.NextBatch(1024);  // Batch index 3 re-randomizes.
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(src.LastBatchMeta().shift_event);
  EXPECT_GT(vec::EuclideanDistance(before->Mean(), after->Mean()), 0.3);
}

TEST(SeaTest, ConceptOffsetsReturnWithTheta) {
  SeaOptions opts;
  opts.concept_length = 2;
  opts.concept_offset_scale = 3.0;
  opts.noise = 0.0;
  SeaSource src(opts);
  // Concepts cycle with period 4*2 = 8 batches; concept 0's batches are
  // 0,1 and 8,9. Their means must agree (same offsets), while concept 1's
  // mean differs.
  std::vector<std::vector<double>> means;
  for (int b = 0; b < 10; ++b) {
    auto batch = src.NextBatch(2048);
    ASSERT_TRUE(batch.ok());
    means.push_back(batch->Mean());
  }
  EXPECT_LT(vec::EuclideanDistance(means[0], means[8]), 0.5);
  EXPECT_GT(vec::EuclideanDistance(means[0], means[2]), 0.5);
}

}  // namespace
}  // namespace freeway
