#include "linalg/eigen.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace freeway {
namespace {

TEST(EigenTest, DiagonalMatrix) {
  Matrix m = Matrix::FromData(3, 3, {3, 0, 0, 0, 1, 0, 0, 0, 2}).value();
  auto eig = SymmetricEigen(m);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->values[1], 2.0, 1e-10);
  EXPECT_NEAR(eig->values[2], 1.0, 1e-10);
}

TEST(EigenTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/(1,-1).
  Matrix m = Matrix::FromData(2, 2, {2, 1, 1, 2}).value();
  auto eig = SymmetricEigen(m);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-10);
  const double v0x = eig->vectors.At(0, 0);
  const double v0y = eig->vectors.At(1, 0);
  EXPECT_NEAR(std::fabs(v0x), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(v0x, v0y, 1e-8);
}

TEST(EigenTest, RejectsNonSquare) {
  Matrix m(2, 3);
  EXPECT_FALSE(SymmetricEigen(m).ok());
}

TEST(EigenTest, RejectsAsymmetric) {
  Matrix m = Matrix::FromData(2, 2, {1, 5, -5, 1}).value();
  auto eig = SymmetricEigen(m);
  ASSERT_FALSE(eig.ok());
  EXPECT_EQ(eig.status().code(), StatusCode::kInvalidArgument);
}

TEST(EigenTest, ReconstructsRandomSymmetricMatrix) {
  Rng rng(13);
  const size_t n = 8;
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = rng.Gaussian(0.0, 1.0);
      m.At(i, j) = v;
      m.At(j, i) = v;
    }
  }
  auto eig = SymmetricEigen(m);
  ASSERT_TRUE(eig.ok());

  // Eigenvalues descending.
  for (size_t i = 0; i + 1 < n; ++i) {
    EXPECT_GE(eig->values[i], eig->values[i + 1] - 1e-12);
  }

  // V D V^T reconstructs M.
  Matrix d(n, n);
  for (size_t i = 0; i < n; ++i) d.At(i, i) = eig->values[i];
  Matrix recon = eig->vectors.MatMul(d).MatMulTranspose(eig->vectors);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(recon.At(i, j), m.At(i, j), 1e-8);
    }
  }

  // Eigenvectors orthonormal: V^T V = I.
  Matrix vtv = eig->vectors.TransposeMatMul(eig->vectors);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(vtv.At(i, j), i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(EigenTest, EigenpairsSatisfyDefinition) {
  Rng rng(29);
  const size_t n = 6;
  // Positive semidefinite matrix A = B^T B.
  Matrix b(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) b.At(i, j) = rng.Gaussian(0.0, 1.0);
  }
  Matrix a = b.TransposeMatMul(b);
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  for (size_t k = 0; k < n; ++k) {
    EXPECT_GE(eig->values[k], -1e-9);  // PSD: all non-negative.
    // A v = lambda v.
    for (size_t i = 0; i < n; ++i) {
      double av = 0.0;
      for (size_t j = 0; j < n; ++j) av += a.At(i, j) * eig->vectors.At(j, k);
      EXPECT_NEAR(av, eig->values[k] * eig->vectors.At(i, k), 1e-8);
    }
  }
}

}  // namespace
}  // namespace freeway
