#include "ml/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace freeway {
namespace {

TEST(SgdOptimizerTest, PlainStep) {
  Matrix p = Matrix::FromData(1, 2, {1.0, -2.0}).value();
  Matrix g = Matrix::FromData(1, 2, {0.5, -1.0}).value();
  SgdOptimizer sgd(0.1);
  sgd.Step({&p}, {&g});
  EXPECT_NEAR(p.At(0, 0), 1.0 - 0.05, 1e-12);
  EXPECT_NEAR(p.At(0, 1), -2.0 + 0.1, 1e-12);
}

TEST(SgdOptimizerTest, MomentumAccumulates) {
  Matrix p(1, 1);
  Matrix g = Matrix::FromData(1, 1, {1.0}).value();
  SgdOptimizer sgd(0.1, /*momentum=*/0.9);
  sgd.Step({&p}, {&g});
  EXPECT_NEAR(p.At(0, 0), -0.1, 1e-12);  // v = 1, step = -0.1*1.
  sgd.Step({&p}, {&g});
  // v = 0.9*1 + 1 = 1.9, step = -0.19.
  EXPECT_NEAR(p.At(0, 0), -0.1 - 0.19, 1e-12);
}

TEST(SgdOptimizerTest, WeightDecayShrinksParameters) {
  Matrix p = Matrix::FromData(1, 1, {10.0}).value();
  Matrix g(1, 1);  // Zero gradient: only decay acts.
  SgdOptimizer sgd(0.1, 0.0, /*l2=*/0.5);
  sgd.Step({&p}, {&g});
  EXPECT_NEAR(p.At(0, 0), 10.0 * (1.0 - 0.1 * 0.5), 1e-12);
}

TEST(FobosOptimizerTest, SoftThresholdingSparsifies) {
  Matrix p = Matrix::FromData(1, 3, {0.005, -0.5, 0.2}).value();
  Matrix g(1, 3);  // Zero gradient isolates the proximal step.
  FobosOptimizer fobos(/*lr=*/1.0, /*l1=*/0.01);
  fobos.Step({&p}, {&g});
  EXPECT_DOUBLE_EQ(p.At(0, 0), 0.0);            // |0.005| < 0.01 -> zeroed.
  EXPECT_NEAR(p.At(0, 1), -0.49, 1e-12);        // Shrunk toward zero.
  EXPECT_NEAR(p.At(0, 2), 0.19, 1e-12);
}

TEST(FobosOptimizerTest, GradientThenShrink) {
  Matrix p = Matrix::FromData(1, 1, {1.0}).value();
  Matrix g = Matrix::FromData(1, 1, {2.0}).value();
  FobosOptimizer fobos(0.1, 0.05);
  fobos.Step({&p}, {&g});
  // Gradient step: 1 - 0.2 = 0.8; shrink by 0.1*0.05 = 0.005 -> 0.795.
  EXPECT_NEAR(p.At(0, 0), 0.795, 1e-12);
}

TEST(RdaOptimizerTest, ZeroMeanGradientKeepsParametersAtZero) {
  Matrix p = Matrix::FromData(1, 1, {5.0}).value();
  Matrix g_pos = Matrix::FromData(1, 1, {1.0}).value();
  Matrix g_neg = Matrix::FromData(1, 1, {-1.0}).value();
  RdaOptimizer rda(/*gamma=*/1.0, /*l1=*/0.0);
  rda.Step({&p}, {&g_pos});
  rda.Step({&p}, {&g_neg});
  // Mean gradient is 0 after two opposite steps: parameter derived to 0.
  EXPECT_NEAR(p.At(0, 0), 0.0, 1e-12);
}

TEST(RdaOptimizerTest, L1ZeroesSmallMeanGradients) {
  Matrix p(1, 2);
  Matrix g = Matrix::FromData(1, 2, {0.05, 2.0}).value();
  RdaOptimizer rda(1.0, /*l1=*/0.1);
  rda.Step({&p}, {&g});
  EXPECT_DOUBLE_EQ(p.At(0, 0), 0.0);  // |0.05| < l1.
  EXPECT_LT(p.At(0, 1), 0.0);         // Large gradient drives param negative.
}

TEST(RdaOptimizerTest, ConstantGradientGrowsWithSqrtT) {
  Matrix p(1, 1);
  Matrix g = Matrix::FromData(1, 1, {1.0}).value();
  RdaOptimizer rda(1.0, 0.0);
  rda.Step({&p}, {&g});
  const double after1 = p.At(0, 0);
  rda.Step({&p}, {&g});
  rda.Step({&p}, {&g});
  rda.Step({&p}, {&g});
  // After t steps with unit mean gradient: theta = -sqrt(t).
  EXPECT_NEAR(after1, -1.0, 1e-12);
  EXPECT_NEAR(p.At(0, 0), -2.0, 1e-12);
}

TEST(OptimizerCloneTest, CloneDoesNotShareState) {
  Matrix p(1, 1);
  Matrix g = Matrix::FromData(1, 1, {1.0}).value();
  SgdOptimizer sgd(0.1, 0.9);
  sgd.Step({&p}, {&g});
  auto clone = sgd.Clone();
  Matrix p2(1, 1);
  // The clone carries the velocity state at clone time; further steps on the
  // original must not leak into the clone.
  sgd.Step({&p}, {&g});
  clone->Step({&p2}, {&g});
  // Clone's velocity was 1.0 -> v=1.9 -> p2 = -0.19.
  EXPECT_NEAR(p2.At(0, 0), -0.19, 1e-12);
}

}  // namespace
}  // namespace freeway
