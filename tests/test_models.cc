#include "ml/models.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/feature_extractor.h"
#include "ml/optimizer.h"

namespace freeway {
namespace {

TEST(ModelsTest, LogisticRegressionShape) {
  auto m = MakeLogisticRegression(7, 3);
  EXPECT_EQ(m->input_dim(), 7u);
  EXPECT_EQ(m->num_classes(), 3u);
  EXPECT_EQ(m->ParameterCount(), 7u * 3u + 3u);
}

TEST(ModelsTest, MlpShape) {
  ModelConfig config;
  config.hidden_dim = 16;
  auto m = MakeMlp(5, 4, config);
  EXPECT_EQ(m->ParameterCount(), 5u * 16u + 16u + 16u * 4u + 4u);
}

TEST(ModelsTest, SameSeedSameInit) {
  auto a = MakeMlp(4, 2);
  auto b = MakeMlp(4, 2);
  EXPECT_EQ(a->GetParameters(), b->GetParameters());
  ModelConfig other;
  other.seed = 99;
  auto c = MakeMlp(4, 2, other);
  EXPECT_NE(a->GetParameters(), c->GetParameters());
}

TEST(ModelsTest, TabularCnnAcceptsFlatRows) {
  auto m = MakeTabularCnn(10, 3);
  EXPECT_EQ(m->input_dim(), 10u);
  Rng rng(1);
  Matrix x(4, 10);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 10; ++j) x.At(i, j) = rng.Gaussian(0, 1);
  }
  auto probs = m->PredictProba(x);
  ASSERT_TRUE(probs.ok());
  EXPECT_EQ(probs->cols(), 3u);
  ASSERT_TRUE(m->TrainBatch(x, {0, 1, 2, 0}).ok());
}

TEST(ModelsTest, ImageCnnShape) {
  auto m = MakeImageCnn({1, 16, 16}, 5);
  EXPECT_EQ(m->input_dim(), 256u);
  EXPECT_EQ(m->num_classes(), 5u);
  Rng rng(2);
  Matrix x(2, 256);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 256; ++j) x.At(i, j) = rng.NextDouble();
  }
  auto probs = m->PredictProba(x);
  ASSERT_TRUE(probs.ok());
  EXPECT_EQ(probs->rows(), 2u);
  ASSERT_TRUE(m->TrainBatch(x, {1, 3}).ok());
}

TEST(ModelsTest, CnnLearnsClassSignal) {
  // Class 0: rising values; class 1: falling values.
  auto m = MakeTabularCnn(8, 2, {.learning_rate = 0.05});
  Rng rng(3);
  Matrix x(128, 8);
  std::vector<int> y(128);
  for (size_t i = 0; i < 128; ++i) {
    const int label = static_cast<int>(rng.NextBelow(2));
    y[i] = label;
    for (size_t j = 0; j < 8; ++j) {
      const double trend = label == 0 ? static_cast<double>(j)
                                      : static_cast<double>(8 - j);
      x.At(i, j) = trend * 0.3 + rng.Gaussian(0, 0.2);
    }
  }
  for (int epoch = 0; epoch < 30; ++epoch) {
    ASSERT_TRUE(m->TrainBatch(x, y).ok());
  }
  auto acc = Accuracy(m.get(), x, y);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(acc.value(), 0.9);
}

TEST(ModelsTest, CustomOptimizerLr) {
  auto m = MakeLogisticRegressionWithOptimizer(
      4, 2, std::make_unique<FobosOptimizer>(0.05, 1e-4));
  EXPECT_EQ(m->input_dim(), 4u);
  Rng rng(5);
  Matrix x(16, 4);
  std::vector<int> y(16);
  for (size_t i = 0; i < 16; ++i) {
    y[i] = static_cast<int>(rng.NextBelow(2));
    for (size_t j = 0; j < 4; ++j) x.At(i, j) = rng.Gaussian(y[i], 1);
  }
  ASSERT_TRUE(m->TrainBatch(x, y).ok());
}

TEST(FeatureExtractorTest, ShapeAndDeterminism) {
  RandomProjectionExtractor ex(64, 16, 7);
  EXPECT_EQ(ex.input_dim(), 64u);
  EXPECT_EQ(ex.feature_dim(), 16u);

  Rng rng(4);
  Matrix x(3, 64);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 64; ++j) x.At(i, j) = rng.Gaussian(0, 1);
  }
  auto f1 = ex.Extract(x);
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(f1->rows(), 3u);
  EXPECT_EQ(f1->cols(), 16u);

  RandomProjectionExtractor same(64, 16, 7);
  auto f2 = same.Extract(x);
  ASSERT_TRUE(f2.ok());
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 16; ++j) {
      EXPECT_DOUBLE_EQ(f1->At(i, j), f2->At(i, j));
    }
  }

  // ReLU output is non-negative.
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 16; ++j) EXPECT_GE(f1->At(i, j), 0.0);
  }

  Matrix wrong(2, 32);
  EXPECT_FALSE(ex.Extract(wrong).ok());
}

}  // namespace
}  // namespace freeway
