/// Raft-replicated high availability, steady-state paths: leader election
/// across in-process clusters, client failover on NOT_LEADER redirects,
/// bit-identical per-node ingest logs, follower rejoin to the exact commit
/// index, and checkpoint-anchored steady-state truncation of the ingest
/// log (with watermark rebuild from the rotated-segment snapshots the
/// truncation leaves behind).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "fault/failpoint.h"
#include "ingest/ingest_log.h"
#include "ml/models.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket_util.h"

namespace freeway {
namespace {

namespace fs = std::filesystem;

constexpr size_t kDim = 4;
constexpr size_t kBatchRows = 16;

PipelineOptions DeterministicPipeline() {
  PipelineOptions opts;
  opts.learner.base_window_batches = 4;
  opts.learner.detector.warmup_batches = 3;
  opts.enable_rate_adjuster = false;
  return opts;
}

/// Reserves an ephemeral loopback port by binding and immediately
/// releasing it. Cluster members need each other's ports *before* any of
/// them starts, so port 0 auto-assignment cannot be used directly.
uint16_t ReservePort() {
  Result<int> fd = net::CreateListenSocket("127.0.0.1", 0, 4, false);
  EXPECT_TRUE(fd.ok()) << fd.status();
  Result<uint16_t> port = net::LocalPort(*fd);
  EXPECT_TRUE(port.ok()) << port.status();
  net::CloseFd(*fd);
  return *port;
}

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("freeway_replication_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    failpoint::DisarmAll();
  }

  void TearDown() override {
    failpoint::DisarmAll();
    nodes_.clear();
    registries_.clear();
    fs::remove_all(dir_);
  }

  ServerOptions NodeOptions(size_t i, size_t workers) {
    ServerOptions opts;
    opts.port = ports_[i];
    opts.num_workers = workers;
    opts.metrics = registries_[i].get();
    opts.runtime.num_shards = 2;
    opts.runtime.pipeline = DeterministicPipeline();
    opts.ingest.enabled = true;
    opts.ingest.log_dir = (dir_ / ("n" + std::to_string(i)) / "log").string();
    opts.maintenance_interval_millis = 50;
    opts.replication.enabled = true;
    opts.replication.node_id = i + 1;
    opts.replication.data_dir =
        (dir_ / ("n" + std::to_string(i)) / "raft").string();
    opts.replication.tick_millis = 5;
    opts.replication.heartbeat_ticks = 2;
    // Distinct per node: identical seeds make election timeouts collide,
    // producing repeated split votes.
    opts.replication.seed = 1234 + i;
    opts.replication.failpoint_scope = "n" + std::to_string(i + 1) + ".";
    for (size_t j = 0; j < ports_.size(); ++j) {
      if (j == i) continue;
      opts.replication.peers.push_back({j + 1, "127.0.0.1", ports_[j]});
    }
    return opts;
  }

  void StartNode(size_t i, size_t workers = 1) {
    auto proto = MakeLogisticRegression(kDim, 2);
    nodes_[i] =
        std::make_unique<StreamServer>(*proto, NodeOptions(i, workers));
    ASSERT_TRUE(nodes_[i]->Start().ok());
  }

  void StartCluster(size_t n, size_t workers = 1) {
    ports_.clear();
    for (size_t i = 0; i < n; ++i) ports_.push_back(ReservePort());
    nodes_.resize(n);
    registries_.clear();
    for (size_t i = 0; i < n; ++i) {
      registries_.push_back(std::make_unique<MetricsRegistry>());
    }
    for (size_t i = 0; i < n; ++i) StartNode(i, workers);
  }

  /// Index of the current leader among live nodes, or -1.
  int LeaderIndex() {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i] != nullptr && nodes_[i]->replicator() != nullptr &&
          nodes_[i]->replicator()->IsLeader()) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  int WaitForLeader(int64_t timeout_millis = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_millis);
    while (std::chrono::steady_clock::now() < deadline) {
      const int leader = LeaderIndex();
      if (leader >= 0) return leader;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return -1;
  }

  /// Polls until every live node has applied everything the leader
  /// committed (their ingest logs then agree byte for byte).
  void WaitForConvergence(int leader, int64_t timeout_millis = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_millis);
    while (std::chrono::steady_clock::now() < deadline) {
      const uint64_t commit =
          nodes_[leader]->replicator()->commit_index();
      bool converged = true;
      for (auto& node : nodes_) {
        if (node == nullptr) continue;
        if (node->replicator()->applied_index() < commit) converged = false;
      }
      if (converged) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    FAIL() << "cluster did not converge within the timeout";
  }

  ClientOptions ClusterClient(uint64_t client_id, int first = -1) {
    ClientOptions opts;
    opts.client_id = client_id;
    opts.max_submit_attempts = 64;
    opts.reply_timeout_millis = 500;
    opts.backoff_initial_micros = 200;
    opts.backoff_max_micros = 20000;
    if (first >= 0) {
      opts.endpoints.push_back({"127.0.0.1", ports_[first]});
    }
    for (size_t i = 0; i < ports_.size(); ++i) {
      if (static_cast<int>(i) == first) continue;
      opts.endpoints.push_back({"127.0.0.1", ports_[i]});
    }
    return opts;
  }

  Batch NextLabeled(HyperplaneSource& source) {
    Result<Batch> batch = source.NextBatch(kBatchRows);
    EXPECT_TRUE(batch.ok()) << batch.status();
    return *std::move(batch);
  }

  /// Every segment byte of node i's ingest log, in segment order —
  /// replicated nodes must agree on this exactly.
  std::string LogBytes(size_t i) {
    std::vector<fs::path> segments;
    for (const auto& entry :
         fs::directory_iterator(dir_ / ("n" + std::to_string(i)) / "log")) {
      segments.push_back(entry.path());
    }
    std::sort(segments.begin(), segments.end());
    std::string bytes;
    for (const fs::path& path : segments) {
      std::ifstream in(path, std::ios::binary);
      bytes.append(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    }
    return bytes;
  }

  fs::path dir_;
  std::vector<uint16_t> ports_;
  std::vector<std::unique_ptr<MetricsRegistry>> registries_;
  std::vector<std::unique_ptr<StreamServer>> nodes_;
};

TEST_F(ReplicationTest, SingleNodeClusterServesAndLogs) {
  StartCluster(1);
  ASSERT_GE(WaitForLeader(), 0);
  HyperplaneOptions sopts;
  sopts.dim = kDim;
  sopts.seed = 11;
  HyperplaneSource source(sopts);
  StreamClient client(ClusterClient(501));
  constexpr int kBatches = 6;
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(client.Submit(3, NextLabeled(source)).ok());
  }
  EXPECT_EQ(client.tallies().acked, static_cast<uint64_t>(kBatches));
  nodes_[0]->Stop();
  const RuntimeStatsSnapshot snapshot = nodes_[0]->runtime()->Snapshot();
  EXPECT_EQ(snapshot.totals.enqueued, static_cast<uint64_t>(kBatches));
  EXPECT_EQ(snapshot.totals.processed, static_cast<uint64_t>(kBatches));
  EXPECT_EQ(nodes_[0]->ingest_log()->last_lsn(),
            static_cast<uint64_t>(kBatches));
}

TEST_F(ReplicationTest, ThreeNodeLogsAreBitIdentical) {
  StartCluster(3);
  const int leader = WaitForLeader();
  ASSERT_GE(leader, 0);
  HyperplaneOptions sopts;
  sopts.dim = kDim;
  sopts.seed = 17;
  HyperplaneSource source(sopts);
  StreamClient client(ClusterClient(502, leader));
  constexpr int kBatches = 10;
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(client.Submit(9, NextLabeled(source)).ok());
  }
  WaitForConvergence(leader);
  for (auto& node : nodes_) node->Stop();
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(nodes_[i]->ingest_log()->last_lsn(),
              static_cast<uint64_t>(kBatches))
        << "node " << i;
  }
  const std::string reference = LogBytes(0);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(LogBytes(1), reference);
  EXPECT_EQ(LogBytes(2), reference);
  // An ACKed batch was applied locally on the leader by definition; the
  // convergence wait extends that to every follower's runtime.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(nodes_[i]->runtime()->Snapshot().totals.enqueued,
              static_cast<uint64_t>(kBatches))
        << "node " << i;
  }
}

TEST_F(ReplicationTest, FollowerRedirectsClientToLeader) {
  StartCluster(3);
  const int leader = WaitForLeader();
  ASSERT_GE(leader, 0);
  const int follower = (leader + 1) % 3;
  HyperplaneOptions sopts;
  sopts.dim = kDim;
  sopts.seed = 23;
  HyperplaneSource source(sopts);
  // The follower is the client's *first* endpoint, so the submit must be
  // redirected before it can succeed.
  StreamClient client(ClusterClient(503, follower));
  ASSERT_TRUE(client.Submit(5, NextLabeled(source)).ok());
  EXPECT_GE(client.tallies().not_leader, 1u);
  EXPECT_GE(client.tallies().failovers, 1u);
  EXPECT_EQ(client.current_endpoint().port, ports_[leader]);
  const uint64_t redirects =
      registries_[follower]->GetCounter("freeway_net_not_leader_total")
          ->Value();
  EXPECT_GE(redirects, 1u);
}

TEST_F(ReplicationTest, ResendAfterCommitIsReAckedNotReProposed) {
  StartCluster(3);
  const int leader = WaitForLeader();
  ASSERT_GE(leader, 0);
  HyperplaneOptions sopts;
  sopts.dim = kDim;
  sopts.seed = 29;
  HyperplaneSource source(sopts);
  StreamClient first(ClusterClient(504, leader));
  const Batch batch = NextLabeled(source);
  ASSERT_TRUE(first.Submit(4, batch).ok());
  // A second client with the same identity re-sends sequence 1 — the
  // replicated watermark answers it without a second proposal.
  StreamClient resender(ClusterClient(504, leader));
  ASSERT_TRUE(resender.Submit(4, batch).ok());
  WaitForConvergence(leader);
  for (auto& node : nodes_) node->Stop();
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(nodes_[i]->ingest_log()->last_lsn(), 1u) << "node " << i;
    EXPECT_EQ(nodes_[i]->runtime()->Snapshot().totals.enqueued, 1u)
        << "node " << i;
  }
  const uint64_t duplicates =
      registries_[leader]->GetCounter("freeway_net_duplicates_total")
          ->Value();
  EXPECT_GE(duplicates, 1u);
}

TEST_F(ReplicationTest, StoppedFollowerRejoinsAtExactCommitIndex) {
  StartCluster(3);
  const int leader = WaitForLeader();
  ASSERT_GE(leader, 0);
  const int follower = (leader + 1) % 3;
  HyperplaneOptions sopts;
  sopts.dim = kDim;
  sopts.seed = 31;
  HyperplaneSource source(sopts);
  StreamClient client(ClusterClient(505, leader));
  for (int b = 0; b < 5; ++b) {
    ASSERT_TRUE(client.Submit(6, NextLabeled(source)).ok());
  }
  WaitForConvergence(leader);

  // The follower dies (its durable raft state and ingest log survive) and
  // the cluster keeps committing on the remaining majority.
  nodes_[follower].reset();
  for (int b = 0; b < 5; ++b) {
    ASSERT_TRUE(client.Submit(6, NextLabeled(source)).ok());
  }

  // The restarted follower must catch up to the leader's exact commit
  // index and reconstruct the identical log.
  StartNode(follower);
  const uint64_t commit = nodes_[leader]->replicator()->commit_index();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (nodes_[follower]->replicator()->applied_index() < commit) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "follower never caught up: applied "
        << nodes_[follower]->replicator()->applied_index() << " of "
        << commit;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(nodes_[follower]->replicator()->applied_index(), commit);
  WaitForConvergence(leader);
  for (auto& node : nodes_) node->Stop();
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(nodes_[i]->ingest_log()->last_lsn(), 10u) << "node " << i;
  }
  const std::string reference = LogBytes(leader);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(LogBytes(follower), reference);
}

/// Satellite: steady-state checkpoint-anchored truncation in the
/// single-node (non-replicated) configuration.
class TruncationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("freeway_truncation_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    failpoint::DisarmAll();
  }
  void TearDown() override {
    failpoint::DisarmAll();
    server_.reset();
    fs::remove_all(dir_);
  }

  void StartServer(size_t retention_segments = 0) {
    ServerOptions opts;
    opts.metrics = &registry_;
    opts.num_workers = 1;
    opts.runtime.num_shards = 2;
    opts.runtime.pipeline = DeterministicPipeline();
    opts.runtime.fault.enabled = true;
    opts.runtime.fault.checkpoint_dir = (dir_ / "ckpt").string();
    opts.runtime.fault.checkpoint_interval_batches = 4;
    opts.ingest.enabled = true;
    opts.ingest.log_dir = (dir_ / "log").string();
    // Small segments + a fast sweep so pruning happens within the test.
    opts.ingest.segment_max_bytes = 4096;
    opts.ingest.retention_segments = retention_segments;
    opts.maintenance_interval_millis = 20;
    auto proto = MakeLogisticRegression(kDim, 2);
    server_ = std::make_unique<StreamServer>(*proto, std::move(opts));
    ASSERT_TRUE(server_->Start().ok());
  }

  Batch NextLabeled(HyperplaneSource& source) {
    Result<Batch> batch = source.NextBatch(kBatchRows);
    EXPECT_TRUE(batch.ok()) << batch.status();
    return *std::move(batch);
  }

  void WaitForPruning(int64_t timeout_millis = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_millis);
    while (server_->ingest_log()->stats().segments_pruned == 0) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "steady-state truncation never pruned a segment";
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  fs::path dir_;
  MetricsRegistry registry_;
  std::unique_ptr<StreamServer> server_;
};

TEST_F(TruncationTest, SteadyStateSweepPrunesCoveredSegments) {
  StartServer();
  HyperplaneOptions sopts;
  sopts.dim = kDim;
  sopts.seed = 41;
  HyperplaneSource source(sopts);
  ClientOptions copts;
  copts.port = server_->port();
  copts.client_id = 601;
  StreamClient client(copts);
  constexpr int kBatches = 48;
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(client.Submit(2, NextLabeled(source)).ok());
  }
  WaitForPruning();
  const IngestLogStats stats = server_->ingest_log()->stats();
  EXPECT_GT(stats.segments_pruned, 0u);
  EXPECT_GT(stats.rotations, 0u);
  // Pruning must never eat records the checkpoints don't cover: everything
  // still replays to an admitted suffix and the server stays exactly-once.
  server_->Stop();
  const RuntimeStatsSnapshot snapshot = server_->runtime()->Snapshot();
  EXPECT_EQ(snapshot.totals.enqueued, static_cast<uint64_t>(kBatches));
  EXPECT_EQ(snapshot.totals.processed, static_cast<uint64_t>(kBatches));
}

TEST_F(TruncationTest, RetentionKnobKeepsSealedSegments) {
  StartServer(/*retention_segments=*/2);
  HyperplaneOptions sopts;
  sopts.dim = kDim;
  sopts.seed = 43;
  HyperplaneSource source(sopts);
  ClientOptions copts;
  copts.port = server_->port();
  copts.client_id = 602;
  StreamClient client(copts);
  for (int b = 0; b < 48; ++b) {
    ASSERT_TRUE(client.Submit(2, NextLabeled(source)).ok());
  }
  WaitForPruning();
  server_->Stop();
  // The retention window survives every sweep: at least the configured
  // number of sealed segments plus the active one remain on disk.
  EXPECT_GE(server_->ingest_log()->stats().segments, 3u);
}

TEST_F(TruncationTest, WatermarksRebuildAfterTruncatedRestart) {
  StartServer();
  HyperplaneOptions sopts;
  sopts.dim = kDim;
  sopts.seed = 47;
  HyperplaneSource source(sopts);
  constexpr int kBatches = 48;
  std::vector<Batch> sent;
  {
    ClientOptions copts;
    copts.port = server_->port();
    copts.client_id = 603;
    StreamClient client(copts);
    for (int b = 0; b < kBatches; ++b) {
      sent.push_back(NextLabeled(source));
      ASSERT_TRUE(client.Submit(2, sent.back()).ok());
    }
    WaitForPruning();
  }
  server_->Stop();
  ASSERT_GT(server_->ingest_log()->stats().segments_pruned, 0u);

  // Restart over the truncated log: the early segments holding sequences
  // 1..k are gone, but every rotated segment starts with a watermark
  // snapshot, so recovery still knows client 603 is at sequence 48. A
  // fresh client with the same identity re-sending from sequence 1 must be
  // absorbed entirely by dedup — nothing re-enters the runtime.
  server_.reset();
  StartServer();
  ClientOptions copts;
  copts.port = server_->port();
  copts.client_id = 603;
  StreamClient resender(copts);
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(resender.Submit(2, sent[b]).ok());
  }
  server_->Stop();
  EXPECT_EQ(server_->runtime()->Snapshot().totals.enqueued, 0u);
  EXPECT_EQ(registry_.GetCounter("freeway_net_duplicates_total")->Value(),
            static_cast<uint64_t>(kBatches));
}

}  // namespace
}  // namespace freeway
