#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fault/failpoint.h"
#include "replication/raft.h"
#include "replication/raft_storage.h"

namespace freeway {
namespace {

namespace fs = std::filesystem;

std::vector<char> Cmd(const std::string& s) {
  return std::vector<char>(s.begin(), s.end());
}

std::string CmdStr(const RaftEntry& e) {
  return std::string(e.command.begin(), e.command.end());
}

/// In-memory N-node cluster: instant, lossless message delivery except for
/// explicitly partitioned nodes. Time is driven tick by tick, so every
/// schedule a test produces is deterministic and replayable.
class Cluster {
 public:
  explicit Cluster(size_t n, uint64_t seed = 7) {
    for (size_t i = 0; i < n; ++i) {
      storages_.push_back(std::make_unique<RaftStorage>());
    }
    for (size_t i = 0; i < n; ++i) {
      RaftConfig config;
      config.node_id = i + 1;
      for (size_t j = 0; j < n; ++j) {
        if (j != i) config.peer_ids.push_back(j + 1);
      }
      config.election_timeout_min_ticks = 10;
      config.election_timeout_max_ticks = 20;
      config.heartbeat_ticks = 2;
      config.seed = seed;
      nodes_.push_back(
          std::make_unique<RaftNode>(config, storages_[i].get()));
    }
  }

  RaftNode& node(size_t i) { return *nodes_[i]; }
  size_t size() const { return nodes_.size(); }

  void Partition(uint64_t id) { partitioned_.insert(id); }
  void Heal(uint64_t id) { partitioned_.erase(id); }

  /// Collects outboxes and delivers until no messages are in flight.
  void Deliver() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto& node : nodes_) {
        for (RaftMessage& msg : node->TakeMessages()) {
          if (partitioned_.count(msg.from) || partitioned_.count(msg.to)) {
            continue;
          }
          ASSERT_GE(msg.to, 1u);
          ASSERT_LE(msg.to, nodes_.size());
          ASSERT_TRUE(nodes_[msg.to - 1]->Step(msg).ok());
          progress = true;
        }
      }
    }
  }

  void TickAll() {
    for (auto& node : nodes_) ASSERT_TRUE(node->Tick().ok());
  }

  /// Ticks + delivers until exactly one un-partitioned leader exists.
  RaftNode* ElectLeader(int max_ticks = 400) {
    for (int t = 0; t < max_ticks; ++t) {
      TickAll();
      Deliver();
      RaftNode* leader = nullptr;
      size_t leaders = 0;
      uint64_t max_term = 0;
      for (auto& node : nodes_) {
        max_term = std::max(max_term, node->term());
      }
      for (auto& node : nodes_) {
        if (node->role() == RaftRole::kLeader &&
            node->term() == max_term &&
            !partitioned_.count(node->node_id())) {
          ++leaders;
          leader = node.get();
        }
      }
      if (leaders == 1) return leader;
    }
    ADD_FAILURE() << "no leader elected within " << max_ticks << " ticks";
    return nullptr;
  }

  /// Drains committed entries from every node into per-node histories.
  void DrainCommitted(std::vector<std::vector<RaftEntry>>* histories) {
    histories->resize(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
      for (RaftEntry& e : nodes_[i]->TakeCommitted()) {
        (*histories)[i].push_back(std::move(e));
      }
    }
  }

 private:
  std::vector<std::unique_ptr<RaftStorage>> storages_;
  std::vector<std::unique_ptr<RaftNode>> nodes_;
  std::set<uint64_t> partitioned_;
};

TEST(RaftSingleNode, ElectsItselfAndCommitsImmediately) {
  Cluster cluster(1);
  RaftNode* leader = cluster.ElectLeader();
  ASSERT_NE(leader, nullptr);
  EXPECT_EQ(leader->node_id(), 1u);
  EXPECT_EQ(leader->leader_id(), 1u);

  auto index = leader->Propose(Cmd("a"));
  ASSERT_TRUE(index.ok());
  // Entry 1 is the election no-op; the proposal is entry 2, committed at
  // append time in a single-node cluster.
  EXPECT_EQ(*index, 2u);
  EXPECT_EQ(leader->commit_index(), 2u);

  std::vector<std::vector<RaftEntry>> histories;
  cluster.DrainCommitted(&histories);
  ASSERT_EQ(histories[0].size(), 2u);
  EXPECT_TRUE(histories[0][0].command.empty());
  EXPECT_EQ(CmdStr(histories[0][1]), "a");
}

TEST(RaftElection, ThreeNodesConvergeOnOneLeader) {
  Cluster cluster(3);
  RaftNode* leader = cluster.ElectLeader();
  ASSERT_NE(leader, nullptr);
  size_t leaders = 0;
  for (size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.node(i).role() == RaftRole::kLeader) ++leaders;
    EXPECT_EQ(cluster.node(i).leader_id(), leader->node_id());
    EXPECT_EQ(cluster.node(i).term(), leader->term());
  }
  EXPECT_EQ(leaders, 1u);
}

TEST(RaftElection, FollowerRefusesVoteForStaleLog) {
  // A node whose log is behind must not win an election (§5.4.1).
  RaftStorage voter_storage;
  ASSERT_TRUE(voter_storage.SetHardState(2, 0).ok());
  ASSERT_TRUE(voter_storage
                  .Append({{1, 1, Cmd("x")}, {2, 2, Cmd("y")}})
                  .ok());
  RaftConfig config;
  config.node_id = 1;
  config.peer_ids = {2};
  RaftNode voter(config, &voter_storage);

  RaftMessage req;
  req.type = RaftMessageType::kVoteRequest;
  req.from = 2;
  req.to = 1;
  req.term = 3;
  req.last_log_index = 1;  // shorter log, older term
  req.last_log_term = 1;
  ASSERT_TRUE(voter.Step(req).ok());
  auto out = voter.TakeMessages();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, RaftMessageType::kVoteResponse);
  EXPECT_FALSE(out[0].vote_granted);

  // Same term, up-to-date log: granted — and the grant is sticky within
  // the term (no second vote for a different candidate).
  req.last_log_index = 2;
  req.last_log_term = 2;
  ASSERT_TRUE(voter.Step(req).ok());
  out = voter.TakeMessages();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].vote_granted);
  EXPECT_EQ(voter_storage.voted_for(), 2u);

  RaftMessage other = req;
  other.from = 3;
  ASSERT_TRUE(voter.Step(other).ok());
  out = voter.TakeMessages();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].vote_granted);
}

TEST(RaftReplication, CommitsInOrderOnAllNodes) {
  Cluster cluster(3);
  RaftNode* leader = cluster.ElectLeader();
  ASSERT_NE(leader, nullptr);
  for (const char* cmd : {"a", "b", "c", "d", "e"}) {
    ASSERT_TRUE(leader->Propose(Cmd(cmd)).ok());
  }
  cluster.Deliver();
  // The final commit index reaches followers on the next heartbeat round.
  for (int t = 0; t < 3; ++t) {
    cluster.TickAll();
    cluster.Deliver();
  }

  std::vector<std::vector<RaftEntry>> histories;
  cluster.DrainCommitted(&histories);
  // Every node applied: the election no-op + 5 proposals, same order.
  for (size_t i = 0; i < cluster.size(); ++i) {
    ASSERT_EQ(histories[i].size(), 6u) << "node " << i + 1;
    EXPECT_TRUE(histories[i][0].command.empty());
    const std::string expect[] = {"a", "b", "c", "d", "e"};
    for (size_t k = 0; k < 5; ++k) {
      EXPECT_EQ(CmdStr(histories[i][k + 1]), expect[k]) << "node " << i + 1;
      EXPECT_EQ(histories[i][k + 1].index, k + 2);
    }
    EXPECT_EQ(cluster.node(i).commit_index(), 6u);
  }
}

TEST(RaftReplication, NoCommitWithoutMajority) {
  Cluster cluster(3);
  RaftNode* leader = cluster.ElectLeader();
  ASSERT_NE(leader, nullptr);
  // Cut off both followers: proposals append locally but never commit.
  for (size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.node(i).node_id() != leader->node_id()) {
      cluster.Partition(cluster.node(i).node_id());
    }
  }
  uint64_t before = leader->commit_index();
  ASSERT_TRUE(leader->Propose(Cmd("isolated")).ok());
  for (int t = 0; t < 30; ++t) {
    cluster.TickAll();
    cluster.Deliver();
  }
  EXPECT_EQ(leader->commit_index(), before);
}

TEST(RaftReplication, LaggingFollowerCatchesUpToExactCommitIndex) {
  Cluster cluster(3);
  RaftNode* leader = cluster.ElectLeader();
  ASSERT_NE(leader, nullptr);
  uint64_t lagger = 0;
  for (size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.node(i).node_id() != leader->node_id()) {
      lagger = cluster.node(i).node_id();
      break;
    }
  }
  cluster.Partition(lagger);
  for (int k = 0; k < 100; ++k) {
    ASSERT_TRUE(leader->Propose(Cmd("c" + std::to_string(k))).ok());
  }
  cluster.Deliver();
  ASSERT_EQ(leader->commit_index(), 101u);  // no-op + 100

  cluster.Heal(lagger);
  for (int t = 0; t < 50 && cluster.node(lagger - 1).commit_index() !=
                                leader->commit_index();
       ++t) {
    cluster.TickAll();
    cluster.Deliver();
  }
  EXPECT_EQ(cluster.node(lagger - 1).commit_index(), leader->commit_index());
  EXPECT_EQ(cluster.node(lagger - 1).last_log_index(),
            leader->last_log_index());
}

TEST(RaftFailover, NewLeaderElectedAndDivergentTailDiscarded) {
  Cluster cluster(3);
  RaftNode* old_leader = cluster.ElectLeader();
  ASSERT_NE(old_leader, nullptr);
  ASSERT_TRUE(old_leader->Propose(Cmd("committed")).ok());
  cluster.Deliver();
  uint64_t committed_index = old_leader->commit_index();

  // Partition the leader; it keeps appending entries that can never commit.
  cluster.Partition(old_leader->node_id());
  ASSERT_TRUE(old_leader->Propose(Cmd("lost-1")).ok());
  ASSERT_TRUE(old_leader->Propose(Cmd("lost-2")).ok());

  RaftNode* new_leader = cluster.ElectLeader();
  ASSERT_NE(new_leader, nullptr);
  ASSERT_NE(new_leader->node_id(), old_leader->node_id());
  EXPECT_GT(new_leader->term(), old_leader->term());
  ASSERT_TRUE(new_leader->Propose(Cmd("after-failover")).ok());
  cluster.Deliver();
  EXPECT_GT(new_leader->commit_index(), committed_index);

  // Heal: the deposed leader steps down, truncates its divergent tail
  // (conflict backtracking), and converges on the new leader's log.
  cluster.Heal(old_leader->node_id());
  for (int t = 0; t < 60 && old_leader->commit_index() !=
                                new_leader->commit_index();
       ++t) {
    cluster.TickAll();
    cluster.Deliver();
  }
  EXPECT_EQ(old_leader->role(), RaftRole::kFollower);
  EXPECT_EQ(old_leader->commit_index(), new_leader->commit_index());
  EXPECT_EQ(old_leader->last_log_index(), new_leader->last_log_index());
  std::vector<std::vector<RaftEntry>> histories;
  cluster.DrainCommitted(&histories);
  // All nodes committed the same sequence; nobody ever committed "lost-*".
  for (const auto& history : histories) {
    for (const auto& e : history) {
      EXPECT_NE(CmdStr(e), "lost-1");
      EXPECT_NE(CmdStr(e), "lost-2");
    }
  }
}

TEST(RaftFailover, ConflictHintRewindsWholeTerm) {
  // Follower log: terms [1, 2, 2, 2]; leader probes at prev=4 with term 3.
  // The follower must hint conflict_index=2 (first index of term 2), so the
  // leader rewinds the whole term in one round trip.
  RaftStorage storage;
  ASSERT_TRUE(storage.SetHardState(3, 0).ok());
  ASSERT_TRUE(storage
                  .Append({{1, 1, Cmd("a")},
                           {2, 2, Cmd("b")},
                           {3, 2, Cmd("c")},
                           {4, 2, Cmd("d")}})
                  .ok());
  RaftConfig config;
  config.node_id = 2;
  config.peer_ids = {1};
  RaftNode follower(config, &storage);

  RaftMessage append;
  append.type = RaftMessageType::kAppendEntries;
  append.from = 1;
  append.to = 2;
  append.term = 3;
  append.prev_log_index = 4;
  append.prev_log_term = 3;
  ASSERT_TRUE(follower.Step(append).ok());
  auto out = follower.TakeMessages();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, RaftMessageType::kAppendResponse);
  EXPECT_FALSE(out[0].success);
  EXPECT_EQ(out[0].conflict_index, 2u);

  // Leader retries at the hint with its own tail; the conflicting suffix
  // is truncated and replaced.
  append.prev_log_index = 1;
  append.prev_log_term = 1;
  append.entries = {{2, 3, Cmd("B")}, {3, 3, Cmd("C")}};
  append.leader_commit = 3;
  ASSERT_TRUE(follower.Step(append).ok());
  out = follower.TakeMessages();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].success);
  EXPECT_EQ(out[0].match_index, 3u);
  EXPECT_EQ(storage.last_index(), 3u);
  EXPECT_EQ(storage.TermAt(2), 3u);
  EXPECT_EQ(follower.commit_index(), 3u);
}

TEST(RaftChaos, VoteFailpointMakesNodeDeafToElections) {
  failpoint::DisarmAll();
  RaftStorage storage;
  RaftConfig config;
  config.node_id = 1;
  config.peer_ids = {2, 3};
  config.failpoint_scope = "t1.";
  RaftNode voter(config, &storage);

  failpoint::Arm("t1.raft.vote",
                 {StatusCode::kUnavailable, "chaos", 0, SIZE_MAX});
  RaftMessage req;
  req.type = RaftMessageType::kVoteRequest;
  req.from = 2;
  req.to = 1;
  req.term = 5;
  req.last_log_index = 0;
  req.last_log_term = 0;
  ASSERT_TRUE(voter.Step(req).ok());
  EXPECT_TRUE(voter.TakeMessages().empty());  // no response at all
  failpoint::DisarmAll();
  ASSERT_TRUE(voter.Step(req).ok());
  auto out = voter.TakeMessages();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].vote_granted);
}

// ---------------------------------------------------------------------------
// DurableRaftStorage

class DurableRaftStorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("freeway_raft_" + std::string(::testing::UnitTest::GetInstance()
                                              ->current_test_info()
                                              ->name()));
    fs::remove_all(dir_);
    failpoint::DisarmAll();
  }
  void TearDown() override {
    failpoint::DisarmAll();
    fs::remove_all(dir_);
  }

  DurableRaftStorageOptions Options() {
    DurableRaftStorageOptions options;
    options.directory = dir_.string();
    return options;
  }

  fs::path dir_;
};

TEST_F(DurableRaftStorageTest, HardStateAndLogSurviveRestart) {
  {
    DurableRaftStorage storage(Options());
    ASSERT_TRUE(storage.Open().ok());
    EXPECT_EQ(storage.current_term(), 0u);
    ASSERT_TRUE(storage.SetHardState(7, 3).ok());
    ASSERT_TRUE(storage
                    .Append({{1, 6, Cmd("alpha")}, {2, 7, Cmd("beta")}})
                    .ok());
  }
  DurableRaftStorage storage(Options());
  ASSERT_TRUE(storage.Open().ok());
  EXPECT_EQ(storage.current_term(), 7u);
  EXPECT_EQ(storage.voted_for(), 3u);
  ASSERT_EQ(storage.last_index(), 2u);
  EXPECT_EQ(storage.TermAt(1), 6u);
  EXPECT_EQ(CmdStr(storage.At(2)), "beta");
}

TEST_F(DurableRaftStorageTest, TruncateSuffixSurvivesRestart) {
  {
    DurableRaftStorage storage(Options());
    ASSERT_TRUE(storage.Open().ok());
    ASSERT_TRUE(storage
                    .Append({{1, 1, Cmd("a")},
                             {2, 1, Cmd("b")},
                             {3, 2, Cmd("c")}})
                    .ok());
    ASSERT_TRUE(storage.TruncateSuffix(2).ok());
    ASSERT_EQ(storage.last_index(), 1u);
    // Appending after a truncate must land where the cut was made.
    ASSERT_TRUE(storage.Append({{2, 3, Cmd("B")}}).ok());
  }
  DurableRaftStorage storage(Options());
  ASSERT_TRUE(storage.Open().ok());
  ASSERT_EQ(storage.last_index(), 2u);
  EXPECT_EQ(CmdStr(storage.At(1)), "a");
  EXPECT_EQ(CmdStr(storage.At(2)), "B");
  EXPECT_EQ(storage.TermAt(2), 3u);
}

TEST_F(DurableRaftStorageTest, TornLogTailIsTruncatedOnOpen) {
  fs::path log_path;
  {
    DurableRaftStorage storage(Options());
    ASSERT_TRUE(storage.Open().ok());
    ASSERT_TRUE(
        storage.Append({{1, 1, Cmd("keep")}, {2, 1, Cmd("torn")}}).ok());
    log_path = dir_ / "raft-log.dat";
  }
  // Cut the last record mid-payload: a crash during append.
  const uint64_t full = fs::file_size(log_path);
  fs::resize_file(log_path, full - 5);

  DurableRaftStorage storage(Options());
  ASSERT_TRUE(storage.Open().ok());
  EXPECT_EQ(storage.last_index(), 1u);
  EXPECT_EQ(CmdStr(storage.At(1)), "keep");
  EXPECT_GT(storage.torn_bytes_truncated(), 0u);
  // The log is usable again at the cut point.
  ASSERT_TRUE(storage.Append({{2, 2, Cmd("fresh")}}).ok());
}

TEST_F(DurableRaftStorageTest, CorruptHardStateFailsOpen) {
  {
    DurableRaftStorage storage(Options());
    ASSERT_TRUE(storage.Open().ok());
    ASSERT_TRUE(storage.SetHardState(3, 1).ok());
  }
  // Flip a byte inside the CRC-covered region.
  fs::path state_path = dir_ / "raft-state.dat";
  {
    std::vector<char> bytes(28);
    FILE* f = fopen(state_path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    bytes[10] ^= 0x40;
    fseek(f, 0, SEEK_SET);
    ASSERT_EQ(fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    fclose(f);
  }
  DurableRaftStorage storage(Options());
  Status st = storage.Open();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST_F(DurableRaftStorageTest, PersistFailpointSurfacesAsError) {
  DurableRaftStorage storage(Options());
  ASSERT_TRUE(storage.Open().ok());
  failpoint::Arm("raft.persist", {StatusCode::kIoError, "disk gone", 0, 1});
  Status st = storage.SetHardState(1, 1);
  EXPECT_FALSE(st.ok());
  // One-shot failpoint: the next persist succeeds.
  EXPECT_TRUE(storage.SetHardState(1, 1).ok());
}

TEST_F(DurableRaftStorageTest, NodeRestartKeepsVoteAndLog) {
  // A restarted node must come back in the same term with the same vote —
  // forgetting either can double-vote and elect two leaders.
  {
    DurableRaftStorage storage(Options());
    ASSERT_TRUE(storage.Open().ok());
    RaftConfig config;
    config.node_id = 1;
    config.peer_ids = {};  // single node: elects itself
    RaftNode node(config, &storage);
    for (int t = 0; t < 30 && node.role() != RaftRole::kLeader; ++t) {
      ASSERT_TRUE(node.Tick().ok());
    }
    ASSERT_EQ(node.role(), RaftRole::kLeader);
    ASSERT_TRUE(node.Propose(Cmd("durable")).ok());
  }
  DurableRaftStorage storage(Options());
  ASSERT_TRUE(storage.Open().ok());
  EXPECT_GE(storage.current_term(), 1u);
  EXPECT_EQ(storage.voted_for(), 1u);
  RaftConfig config;
  config.node_id = 1;
  RaftNode node(config, &storage);
  EXPECT_EQ(node.last_log_index(), 2u);  // no-op + proposal
  // Re-elects in a higher term and the old entries commit under it.
  for (int t = 0; t < 30 && node.role() != RaftRole::kLeader; ++t) {
    ASSERT_TRUE(node.Tick().ok());
  }
  ASSERT_EQ(node.role(), RaftRole::kLeader);
  auto committed = node.TakeCommitted();
  ASSERT_EQ(committed.size(), 3u);  // old no-op, "durable", new no-op
  EXPECT_EQ(CmdStr(committed[1]), "durable");
}

}  // namespace
}  // namespace freeway
