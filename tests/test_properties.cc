// Parameterized property sweeps: invariants that must hold across grids of
// shapes, class counts, and seeds — not just the single configurations unit
// tests pin down.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "clustering/kmeans.h"
#include "common/rng.h"
#include "core/adaptive_window.h"
#include "core/disorder.h"
#include "linalg/pca.h"
#include "ml/models.h"

namespace freeway {
namespace {

// ---------------------------------------------------------------------------
// Model invariants over (input_dim, num_classes) grid.
// ---------------------------------------------------------------------------

class ModelShapeProperty
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

INSTANTIATE_TEST_SUITE_P(Grid, ModelShapeProperty,
                         ::testing::Combine(::testing::Values(2, 7, 23),
                                            ::testing::Values(2, 3, 6)));

TEST_P(ModelShapeProperty, ProbabilitiesAreDistributionsForAllArchitectures) {
  const auto [dim, classes] = GetParam();
  Rng rng(dim * 100 + classes);
  Matrix x(16, dim);
  for (size_t i = 0; i < 16; ++i) {
    for (size_t j = 0; j < dim; ++j) x.At(i, j) = rng.Gaussian(0, 3);
  }
  for (auto make : {MakeLogisticRegression, MakeMlp, MakeTabularCnn}) {
    auto model = make(dim, classes, ModelConfig{});
    auto probs = model->PredictProba(x);
    ASSERT_TRUE(probs.ok());
    ASSERT_EQ(probs->rows(), 16u);
    ASSERT_EQ(probs->cols(), classes);
    for (size_t i = 0; i < probs->rows(); ++i) {
      double sum = 0.0;
      for (size_t j = 0; j < probs->cols(); ++j) {
        EXPECT_GE(probs->At(i, j), 0.0);
        sum += probs->At(i, j);
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST_P(ModelShapeProperty, ParameterRoundTripIsExactForAllArchitectures) {
  const auto [dim, classes] = GetParam();
  for (auto make : {MakeLogisticRegression, MakeMlp, MakeTabularCnn}) {
    auto model = make(dim, classes, ModelConfig{});
    const auto params = model->GetParameters();
    EXPECT_EQ(params.size(), model->ParameterCount());
    auto clone = model->Clone();
    ASSERT_TRUE(clone->SetParameters(params).ok());
    EXPECT_EQ(clone->GetParameters(), params);
  }
}

TEST_P(ModelShapeProperty, GradientStepReducesLossOnFixedBatch) {
  const auto [dim, classes] = GetParam();
  Rng rng(dim * 31 + classes);
  Matrix x(64, dim);
  std::vector<int> y(64);
  for (size_t i = 0; i < 64; ++i) {
    y[i] = static_cast<int>(rng.NextBelow(classes));
    for (size_t j = 0; j < dim; ++j) {
      x.At(i, j) = rng.Gaussian(static_cast<double>(y[i]), 0.5);
    }
  }
  ModelConfig config;
  config.learning_rate = 0.05;
  auto model = MakeMlp(dim, classes, config);
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 25; ++step) {
    auto loss = model->TrainBatch(x, y);
    ASSERT_TRUE(loss.ok());
    if (step == 0) first = loss.value();
    last = loss.value();
  }
  EXPECT_LT(last, first);
}

// ---------------------------------------------------------------------------
// k-means invariants over (k, dim) grid.
// ---------------------------------------------------------------------------

class KMeansProperty
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

INSTANTIATE_TEST_SUITE_P(Grid, KMeansProperty,
                         ::testing::Combine(::testing::Values(2, 4, 9),
                                            ::testing::Values(1, 3, 12)));

TEST_P(KMeansProperty, AssignmentsValidAndInertiaNonIncreasingInK) {
  const auto [k, dim] = GetParam();
  Rng rng(k * 7 + dim);
  Matrix points(120, dim);
  for (size_t i = 0; i < 120; ++i) {
    for (size_t j = 0; j < dim; ++j) points.At(i, j) = rng.Gaussian(0, 2);
  }

  auto result = KMeans(points, k);
  ASSERT_TRUE(result.ok());
  for (int assignment : result->assignments) {
    ASSERT_GE(assignment, 0);
    ASSERT_LT(assignment, static_cast<int>(k));
  }
  EXPECT_GE(result->inertia, 0.0);

  // Every point's assigned centroid is (weakly) its nearest.
  for (size_t i = 0; i < points.rows(); ++i) {
    const double assigned = vec::SquaredDistance(
        points.Row(i),
        result->centroids.Row(static_cast<size_t>(result->assignments[i])));
    for (size_t c = 0; c < k; ++c) {
      EXPECT_LE(assigned,
                vec::SquaredDistance(points.Row(i),
                                     result->centroids.Row(c)) + 1e-9);
    }
  }

  if (k > 2) {
    auto fewer = KMeans(points, k - 1);
    ASSERT_TRUE(fewer.ok());
    // More clusters cannot fit worse than fewer (up to local-minimum
    // slack; k-means++ makes big regressions vanishingly unlikely here).
    EXPECT_LE(result->inertia, fewer->inertia * 1.05);
  }
}

// ---------------------------------------------------------------------------
// Disorder invariants.
// ---------------------------------------------------------------------------

class DisorderProperty : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, DisorderProperty,
                         ::testing::Values(2, 5, 17, 64, 257));

TEST_P(DisorderProperty, ReversalComplementsInversionCount) {
  const size_t n = GetParam();
  Rng rng(n);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.NextDouble();  // Distinct w.p. 1.
  std::vector<double> reversed(v.rbegin(), v.rend());
  const size_t total_pairs = n * (n - 1) / 2;
  EXPECT_EQ(InversionCount(v) + InversionCount(reversed), total_pairs);
}

TEST_P(DisorderProperty, SingleAdjacentSwapChangesCountByOne) {
  const size_t n = GetParam();
  Rng rng(n * 13);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.NextDouble();
  const size_t before = InversionCount(v);
  std::swap(v[n / 2], v[n / 2 - 1]);
  const size_t after = InversionCount(v);
  EXPECT_EQ(before > after ? before - after : after - before, 1u);
}

// ---------------------------------------------------------------------------
// PCA invariants over dimensionality.
// ---------------------------------------------------------------------------

class PcaProperty : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Dims, PcaProperty, ::testing::Values(2, 5, 16, 41));

TEST_P(PcaProperty, ComponentsAreOrthonormal) {
  const size_t dim = GetParam();
  Rng rng(dim);
  Matrix sample(200, dim);
  for (size_t i = 0; i < 200; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      sample.At(i, j) = rng.Gaussian(0, 1.0 + static_cast<double>(j));
    }
  }
  Pca pca;
  const size_t components = dim < 8 ? dim : 8;
  ASSERT_TRUE(pca.Fit(sample, components).ok());
  const Matrix& p = pca.components();
  Matrix gram = p.TransposeMatMul(p);
  for (size_t i = 0; i < components; ++i) {
    for (size_t j = 0; j < components; ++j) {
      EXPECT_NEAR(gram.At(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
  EXPECT_GT(pca.ExplainedVarianceRatio(), 0.0);
  EXPECT_LE(pca.ExplainedVarianceRatio(), 1.0 + 1e-12);
}

// ---------------------------------------------------------------------------
// ASW invariants over window capacity.
// ---------------------------------------------------------------------------

class AswProperty : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Caps, AswProperty, ::testing::Values(2, 4, 9, 16));

TEST_P(AswProperty, WeightsStayInUnitIntervalAndWindowBounded) {
  const size_t cap = GetParam();
  AdaptiveWindowOptions opts;
  opts.max_batches = cap;
  AdaptiveStreamingWindow window(opts);
  Rng rng(cap);
  for (int t = 0; t < 40; ++t) {
    Batch batch;
    batch.index = t;
    batch.features = Matrix(8, 3, rng.Gaussian(0, 2));
    batch.labels.assign(8, 0);
    auto full = window.Add(batch);
    ASSERT_TRUE(full.ok());
    EXPECT_LE(window.num_batches(), cap);
    for (const auto& entry : window.entries()) {
      EXPECT_GT(entry.weight, 0.0);
      EXPECT_LE(entry.weight, 1.0);
    }
    EXPECT_GE(window.disorder(), 0.0);
    EXPECT_LE(window.disorder(), 1.0);
    if (full.value()) {
      ASSERT_TRUE(window.TakeTrainingData().ok());
      EXPECT_EQ(window.num_batches(), 1u);
    }
  }
}

}  // namespace
}  // namespace freeway
