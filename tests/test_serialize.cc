#include "ml/serialize.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/knowledge.h"
#include "ml/models.h"

namespace freeway {
namespace {

TEST(SerializeTest, RoundTripInMemory) {
  auto model = MakeMlp(6, 3);
  std::vector<char> buffer;
  SerializeModel(*model, &buffer);
  auto snapshot = DeserializeModel(buffer);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->parameters, model->GetParameters());
}

TEST(SerializeTest, RejectsBadMagic) {
  auto model = MakeLogisticRegression(4, 2);
  std::vector<char> buffer;
  SerializeModel(*model, &buffer);
  buffer[0] = 'X';
  EXPECT_FALSE(DeserializeModel(buffer).ok());
}

TEST(SerializeTest, RejectsTruncation) {
  auto model = MakeLogisticRegression(4, 2);
  std::vector<char> buffer;
  SerializeModel(*model, &buffer);
  buffer.resize(buffer.size() - 8);
  EXPECT_FALSE(DeserializeModel(buffer).ok());
  std::vector<char> tiny(4, 0);
  EXPECT_FALSE(DeserializeModel(tiny).ok());
}

TEST(SerializeTest, FileRoundTripRestoresPredictions) {
  const std::string path = "/tmp/freeway_serialize_test.bin";
  std::remove(path.c_str());

  auto model = MakeMlp(4, 2);
  // Train a little so the parameters are non-trivial.
  Rng rng(3);
  Matrix x(64, 4);
  std::vector<int> y(64);
  for (size_t i = 0; i < 64; ++i) {
    y[i] = static_cast<int>(rng.NextBelow(2));
    for (size_t j = 0; j < 4; ++j) x.At(i, j) = rng.Gaussian(y[i], 1.0);
  }
  ASSERT_TRUE(model->TrainBatch(x, y).ok());
  ASSERT_TRUE(SaveModelToFile(*model, path).ok());

  auto restored = MakeMlp(4, 2, {.seed = 999});  // Different init.
  ASSERT_TRUE(LoadModelFromFile(path, restored.get()).ok());
  EXPECT_EQ(restored->GetParameters(), model->GetParameters());

  auto pa = model->PredictProba(x);
  auto pb = restored->PredictProba(x);
  ASSERT_TRUE(pa.ok() && pb.ok());
  for (size_t i = 0; i < pa->rows(); ++i) {
    for (size_t j = 0; j < pa->cols(); ++j) {
      EXPECT_DOUBLE_EQ(pa->At(i, j), pb->At(i, j));
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsArchitectureMismatch) {
  const std::string path = "/tmp/freeway_serialize_mismatch.bin";
  std::remove(path.c_str());
  auto small = MakeLogisticRegression(4, 2);
  ASSERT_TRUE(SaveModelToFile(*small, path).ok());
  auto big = MakeMlp(4, 2);
  EXPECT_FALSE(LoadModelFromFile(path, big.get()).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  auto model = MakeLogisticRegression(4, 2);
  auto status = LoadModelFromFile("/tmp/does_not_exist_freeway.bin",
                                  model.get());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(KnowledgeSpillReloadTest, RoundTripThroughSpillFile) {
  const std::string path = "/tmp/freeway_spill_reload_test.bin";
  std::remove(path.c_str());

  KnowledgeStoreOptions opts;
  opts.capacity = 2;
  opts.spill_path = path;
  KnowledgeStore store(opts);
  for (int i = 0; i < 5; ++i) {
    KnowledgeEntry e;
    e.representation = {static_cast<double>(i), 1.0};
    e.parameters.assign(6, static_cast<double>(i) * 0.5);
    ASSERT_TRUE(store.Preserve(std::move(e)).ok());
  }
  ASSERT_GT(store.spilled_count(), 0u);

  auto reloaded = KnowledgeStore::ReadSpillFile(path);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->size(), store.spilled_count());
  // Oldest-first: the first spilled entry was the i=0 entry.
  EXPECT_DOUBLE_EQ((*reloaded)[0].representation[0], 0.0);
  EXPECT_DOUBLE_EQ((*reloaded)[0].parameters[0], 0.0);
  EXPECT_EQ((*reloaded)[0].parameters.size(), 6u);
  std::remove(path.c_str());
}

TEST(KnowledgeSpillReloadTest, MissingFileFails) {
  EXPECT_FALSE(
      KnowledgeStore::ReadSpillFile("/tmp/no_such_spill_freeway.bin").ok());
}

/// Byte offsets of the snapshot header fields (see Header in serialize.cc):
/// magic u32 @ 0, version u32 @ 4, parameter_count u64 @ 8.
constexpr size_t kMagicOffset = 0;
constexpr size_t kVersionOffset = 4;
constexpr size_t kCountOffset = 8;
constexpr size_t kHeaderSize = 16;

std::vector<char> SerializedModel() {
  auto model = MakeLogisticRegression(4, 2);
  std::vector<char> buffer;
  SerializeModel(*model, &buffer);
  return buffer;
}

TEST(SerializeCorruptionTest, BitFlipInEveryHeaderFieldIsRejected) {
  const std::vector<char> clean = SerializedModel();
  ASSERT_TRUE(DeserializeModel(clean).ok());
  for (size_t offset : {kMagicOffset, kVersionOffset, kCountOffset}) {
    std::vector<char> corrupt = clean;
    corrupt[offset] ^= 0x01;
    EXPECT_FALSE(DeserializeModel(corrupt).ok())
        << "header byte " << offset << " accepted after a bit flip";
  }
}

TEST(SerializeCorruptionTest, ZeroParameterCountIsRejected) {
  std::vector<char> buffer = SerializedModel();
  // parameter_count := 0 with the payload still attached.
  std::fill(buffer.begin() + kCountOffset, buffer.begin() + kHeaderSize, 0);
  auto result = DeserializeModel(buffer);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializeCorruptionTest, AbsurdParameterCountCannotAllocate) {
  std::vector<char> buffer = SerializedModel();
  const uint64_t absurd = uint64_t{1} << 62;  // 32 EiB of doubles.
  std::memcpy(buffer.data() + kCountOffset, &absurd, sizeof(absurd));
  auto result = DeserializeModel(buffer);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializeCorruptionTest, OversizedBufferIsRejected) {
  std::vector<char> buffer = SerializedModel();
  buffer.resize(buffer.size() + 8, 0);  // Count and payload now disagree.
  EXPECT_FALSE(DeserializeModel(buffer).ok());
}

TEST(SerializeCorruptionTest, TruncationAtEveryHeaderPrefixIsRejected) {
  const std::vector<char> clean = SerializedModel();
  for (size_t len = 0; len <= kHeaderSize; ++len) {
    std::vector<char> truncated(clean.begin(), clean.begin() + len);
    EXPECT_FALSE(DeserializeModel(truncated).ok()) << "prefix " << len;
  }
}

TEST(SerializeCorruptionTest, NonFiniteParametersAreRejected) {
  for (double poison : {std::numeric_limits<double>::quiet_NaN(),
                        std::numeric_limits<double>::infinity(),
                        -std::numeric_limits<double>::infinity()}) {
    std::vector<char> buffer = SerializedModel();
    std::memcpy(buffer.data() + kHeaderSize, &poison, sizeof(poison));
    auto result = DeserializeModel(buffer);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SerializeCorruptionTest, ExponentBitFlipInPayloadIsCaught) {
  std::vector<char> buffer = SerializedModel();
  // Set a weight's exponent bits to all-ones: NaN/Inf territory. A store
  // that skipped the finiteness sweep would accept this silently.
  buffer[kHeaderSize + 6] = static_cast<char>(0xF0);
  buffer[kHeaderSize + 7] = static_cast<char>(0x7F);
  EXPECT_FALSE(DeserializeModel(buffer).ok());
}

TEST(FiniteGuardTest, ModelRejectsNonFiniteInput) {
  auto model = MakeMlp(3, 2);
  Matrix x(2, 3);
  x.At(1, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(model->PredictProba(x).ok());
  EXPECT_FALSE(model->TrainBatch(x, {0, 1}).ok());
  x.At(1, 1) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(model->PredictProba(x).ok());
}

TEST(FiniteGuardTest, MatrixAllFinite) {
  Matrix ok(2, 2, 1.0);
  EXPECT_TRUE(ok.AllFinite());
  ok.At(0, 1) = -std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ok.AllFinite());
}

}  // namespace
}  // namespace freeway
