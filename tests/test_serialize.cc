#include "ml/serialize.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/knowledge.h"
#include "ml/models.h"

namespace freeway {
namespace {

TEST(SerializeTest, RoundTripInMemory) {
  auto model = MakeMlp(6, 3);
  std::vector<char> buffer;
  SerializeModel(*model, &buffer);
  auto snapshot = DeserializeModel(buffer);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->parameters, model->GetParameters());
}

TEST(SerializeTest, RejectsBadMagic) {
  auto model = MakeLogisticRegression(4, 2);
  std::vector<char> buffer;
  SerializeModel(*model, &buffer);
  buffer[0] = 'X';
  EXPECT_FALSE(DeserializeModel(buffer).ok());
}

TEST(SerializeTest, RejectsTruncation) {
  auto model = MakeLogisticRegression(4, 2);
  std::vector<char> buffer;
  SerializeModel(*model, &buffer);
  buffer.resize(buffer.size() - 8);
  EXPECT_FALSE(DeserializeModel(buffer).ok());
  std::vector<char> tiny(4, 0);
  EXPECT_FALSE(DeserializeModel(tiny).ok());
}

TEST(SerializeTest, FileRoundTripRestoresPredictions) {
  const std::string path = "/tmp/freeway_serialize_test.bin";
  std::remove(path.c_str());

  auto model = MakeMlp(4, 2);
  // Train a little so the parameters are non-trivial.
  Rng rng(3);
  Matrix x(64, 4);
  std::vector<int> y(64);
  for (size_t i = 0; i < 64; ++i) {
    y[i] = static_cast<int>(rng.NextBelow(2));
    for (size_t j = 0; j < 4; ++j) x.At(i, j) = rng.Gaussian(y[i], 1.0);
  }
  ASSERT_TRUE(model->TrainBatch(x, y).ok());
  ASSERT_TRUE(SaveModelToFile(*model, path).ok());

  auto restored = MakeMlp(4, 2, {.seed = 999});  // Different init.
  ASSERT_TRUE(LoadModelFromFile(path, restored.get()).ok());
  EXPECT_EQ(restored->GetParameters(), model->GetParameters());

  auto pa = model->PredictProba(x);
  auto pb = restored->PredictProba(x);
  ASSERT_TRUE(pa.ok() && pb.ok());
  for (size_t i = 0; i < pa->rows(); ++i) {
    for (size_t j = 0; j < pa->cols(); ++j) {
      EXPECT_DOUBLE_EQ(pa->At(i, j), pb->At(i, j));
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsArchitectureMismatch) {
  const std::string path = "/tmp/freeway_serialize_mismatch.bin";
  std::remove(path.c_str());
  auto small = MakeLogisticRegression(4, 2);
  ASSERT_TRUE(SaveModelToFile(*small, path).ok());
  auto big = MakeMlp(4, 2);
  EXPECT_FALSE(LoadModelFromFile(path, big.get()).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  auto model = MakeLogisticRegression(4, 2);
  auto status = LoadModelFromFile("/tmp/does_not_exist_freeway.bin",
                                  model.get());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(KnowledgeSpillReloadTest, RoundTripThroughSpillFile) {
  const std::string path = "/tmp/freeway_spill_reload_test.bin";
  std::remove(path.c_str());

  KnowledgeStoreOptions opts;
  opts.capacity = 2;
  opts.spill_path = path;
  KnowledgeStore store(opts);
  for (int i = 0; i < 5; ++i) {
    KnowledgeEntry e;
    e.representation = {static_cast<double>(i), 1.0};
    e.parameters.assign(6, static_cast<double>(i) * 0.5);
    ASSERT_TRUE(store.Preserve(std::move(e)).ok());
  }
  ASSERT_GT(store.spilled_count(), 0u);

  auto reloaded = KnowledgeStore::ReadSpillFile(path);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->size(), store.spilled_count());
  // Oldest-first: the first spilled entry was the i=0 entry.
  EXPECT_DOUBLE_EQ((*reloaded)[0].representation[0], 0.0);
  EXPECT_DOUBLE_EQ((*reloaded)[0].parameters[0], 0.0);
  EXPECT_EQ((*reloaded)[0].parameters.size(), 6u);
  std::remove(path.c_str());
}

TEST(KnowledgeSpillReloadTest, MissingFileFails) {
  EXPECT_FALSE(
      KnowledgeStore::ReadSpillFile("/tmp/no_such_spill_freeway.bin").ok());
}

TEST(FiniteGuardTest, ModelRejectsNonFiniteInput) {
  auto model = MakeMlp(3, 2);
  Matrix x(2, 3);
  x.At(1, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(model->PredictProba(x).ok());
  EXPECT_FALSE(model->TrainBatch(x, {0, 1}).ok());
  x.At(1, 1) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(model->PredictProba(x).ok());
}

TEST(FiniteGuardTest, MatrixAllFinite) {
  Matrix ok(2, 2, 1.0);
  EXPECT_TRUE(ok.AllFinite());
  ok.At(0, 1) = -std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ok.AllFinite());
}

}  // namespace
}  // namespace freeway
