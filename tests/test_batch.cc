#include "stream/batch.h"

#include <gtest/gtest.h>

namespace freeway {
namespace {

Batch MakeBatch(std::vector<double> data, size_t dim, std::vector<int> labels,
                int64_t index = 0) {
  Batch b;
  const size_t rows = data.size() / dim;
  b.features = Matrix::FromData(rows, dim, std::move(data)).value();
  b.labels = std::move(labels);
  b.index = index;
  return b;
}

TEST(BatchTest, BasicAccessors) {
  Batch b = MakeBatch({1, 2, 3, 4}, 2, {0, 1}, 7);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.dim(), 2u);
  EXPECT_TRUE(b.labeled());
  EXPECT_EQ(b.index, 7);
  auto mean = b.Mean();
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 3.0);
}

TEST(BatchTest, UnlabeledBatch) {
  Batch b;
  b.features = Matrix(3, 2);
  EXPECT_FALSE(b.labeled());
}

TEST(ConcatBatchesTest, MergesRowsAndLabels) {
  Batch a = MakeBatch({1, 2, 3, 4}, 2, {0, 1}, 1);
  Batch b = MakeBatch({5, 6}, 2, {1}, 2);
  auto merged = ConcatBatches({&a, &b});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->size(), 3u);
  EXPECT_EQ(merged->index, 1);
  EXPECT_DOUBLE_EQ(merged->features.At(2, 0), 5.0);
  EXPECT_EQ(merged->labels, (std::vector<int>{0, 1, 1}));
}

TEST(ConcatBatchesTest, RejectsMismatches) {
  Batch a = MakeBatch({1, 2}, 2, {0});
  Batch b = MakeBatch({1, 2, 3}, 3, {0});
  EXPECT_FALSE(ConcatBatches({&a, &b}).ok());

  Batch unlabeled;
  unlabeled.features = Matrix(1, 2);
  EXPECT_FALSE(ConcatBatches({&a, &unlabeled}).ok());
  EXPECT_FALSE(ConcatBatches({}).ok());
}

TEST(SliceBatchTest, ExtractsRange) {
  Batch b = MakeBatch({1, 2, 3, 4, 5, 6}, 2, {0, 1, 2}, 9);
  auto slice = SliceBatch(b, 1, 3);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->size(), 2u);
  EXPECT_DOUBLE_EQ(slice->features.At(0, 0), 3.0);
  EXPECT_EQ(slice->labels, (std::vector<int>{1, 2}));
  EXPECT_EQ(slice->index, 9);
}

TEST(SliceBatchTest, EmptyAndInvalidRanges) {
  Batch b = MakeBatch({1, 2}, 2, {0});
  auto empty = SliceBatch(b, 1, 1);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->size(), 0u);
  EXPECT_FALSE(SliceBatch(b, 0, 2).ok());
  EXPECT_FALSE(SliceBatch(b, 1, 0).ok());
}

TEST(DriftKindTest, Names) {
  EXPECT_STREQ(DriftKindName(DriftKind::kStationary), "stationary");
  EXPECT_STREQ(DriftKindName(DriftKind::kDirectional), "directional");
  EXPECT_STREQ(DriftKindName(DriftKind::kLocalized), "localized");
  EXPECT_STREQ(DriftKindName(DriftKind::kSudden), "sudden");
  EXPECT_STREQ(DriftKindName(DriftKind::kReoccurring), "reoccurring");
}

}  // namespace
}  // namespace freeway
