#include "runtime/stream_runtime.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "directory/working_set.h"
#include "fault/failpoint.h"
#include "ml/models.h"

namespace freeway {
namespace {

namespace fs = std::filesystem;

Batch MakeBatch(bool labeled, uint64_t seed, int64_t index) {
  Rng rng(seed);
  Batch b;
  b.index = index;
  b.features = Matrix(16, 4);
  if (labeled) b.labels.resize(16);
  for (size_t i = 0; i < 16; ++i) {
    const int label = static_cast<int>(rng.NextBelow(2));
    if (labeled) b.labels[i] = label;
    for (size_t j = 0; j < 4; ++j) {
      b.features.At(i, j) = rng.Gaussian(label * 2.0, 0.5);
    }
  }
  return b;
}

class DirectoryRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ThreadPool::SetGlobalThreads(4);
    dir_ = fs::path(::testing::TempDir()) /
           ("freeway_dirrt_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()));
    fs::remove_all(dir_);
    failpoint::DisarmAll();
  }
  void TearDown() override {
    failpoint::DisarmAll();
    fs::remove_all(dir_);
  }

  RuntimeOptions Options(size_t num_shards, size_t working_set_capacity) {
    RuntimeOptions opts;
    opts.pipeline.learner.base_window_batches = 4;
    opts.pipeline.learner.detector.warmup_batches = 3;
    opts.num_shards = num_shards;
    opts.directory.enabled = true;
    opts.directory.park_dir = (dir_ / "park").string();
    opts.directory.working_set_capacity = working_set_capacity;
    return opts;
  }

  void CheckInvariant(const RuntimeStatsSnapshot& snapshot) {
    ASSERT_TRUE(snapshot.directory_enabled);
    const DirectoryStatsSnapshot& d = snapshot.directory;
    EXPECT_EQ(d.hydrations_fresh + d.hydrations_restored,
              d.evictions + d.discards + d.resident);
  }

  fs::path dir_;
};

TEST_F(DirectoryRuntimeTest, ManyStreamsShareBoundedWorkingSet) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamRuntime runtime(*proto, Options(2, 4));
  ASSERT_TRUE(runtime.directory_enabled());

  constexpr uint64_t kStreams = 24;
  constexpr int kBatches = 3;
  size_t unlabeled = 0;
  for (int b = 0; b < kBatches; ++b) {
    for (uint64_t id = 0; id < kStreams; ++id) {
      const bool labeled = b != 1;
      if (!labeled) ++unlabeled;
      ASSERT_TRUE(runtime.Submit(id, MakeBatch(labeled, id * 31 + b, b)).ok());
    }
  }
  runtime.Flush();

  EXPECT_EQ(runtime.Drain().size(), unlabeled);
  RuntimeStatsSnapshot snapshot = runtime.Snapshot();
  EXPECT_EQ(snapshot.totals.processed, kStreams * kBatches);
  CheckInvariant(snapshot);
  // 24 streams over a 4-pipeline working set: far more hydrations than
  // capacity, memory bounded by the cap.
  EXPECT_LE(snapshot.directory.resident, snapshot.directory.capacity);
  EXPECT_EQ(snapshot.directory.capacity, 4u);
  EXPECT_GT(snapshot.directory.evictions, 0u);
  EXPECT_GT(snapshot.directory.hydrations_restored, 0u);

  // Shutdown parks every resident stream: each of the 24 is restorable.
  runtime.Shutdown();
  ASSERT_NE(runtime.park_store(), nullptr);
  for (uint64_t id = 0; id < kStreams; ++id) {
    EXPECT_TRUE(
        runtime.park_store()->ReadLatest("stream-" + std::to_string(id)).ok())
        << "stream " << id;
  }
}

TEST_F(DirectoryRuntimeTest, PerStreamStateSurvivesEvictionWithZeroLoss) {
  auto proto = MakeLogisticRegression(4, 2);
  // One hydrated pipeline total: every interleaved submit below evicts the
  // previous stream through the park store.
  StreamRuntime runtime(*proto, Options(1, 1));

  constexpr uint64_t kStreams = 6;
  constexpr int kBatches = 4;
  for (int b = 0; b < kBatches; ++b) {
    for (uint64_t id = 0; id < kStreams; ++id) {
      ASSERT_TRUE(
          runtime.Submit(id, MakeBatch(true, id * 97 + b, b)).ok());
    }
  }
  runtime.Flush();

  // Every stream's pipeline remembers *all* of its batches despite having
  // been evicted and re-hydrated repeatedly.
  for (uint64_t id = 0; id < kStreams; ++id) {
    StreamPipeline* pipeline = runtime.resident_stream_pipeline(id);
    ASSERT_NE(pipeline, nullptr);
    EXPECT_EQ(pipeline->batches_processed(), static_cast<uint64_t>(kBatches))
        << "stream " << id;
  }
  RuntimeStatsSnapshot snapshot = runtime.Snapshot();
  EXPECT_EQ(snapshot.totals.processed, kStreams * kBatches);
  EXPECT_GT(snapshot.directory.hydrations_restored, 0u);
  CheckInvariant(snapshot);
  runtime.Shutdown();
}

TEST_F(DirectoryRuntimeTest, EvictHydrateReplayIsBitIdentical) {
  auto proto = MakeLogisticRegression(4, 2);
  constexpr uint64_t kStreams = 5;
  constexpr int kBatches = 5;

  auto run = [&](const std::string& park, size_t capacity) {
    RuntimeOptions opts = Options(1, capacity);
    opts.directory.park_dir = (dir_ / park).string();
    // Bit-identity across two *runs* requires state that is purely a
    // function of the batch sequence: the rate adjuster folds wall-clock
    // inter-arrival gaps into the snapshot, so it stays off here.
    opts.pipeline.enable_rate_adjuster = false;
    opts.forward_rate_signal = false;
    auto runtime = std::make_unique<StreamRuntime>(*proto, opts);
    for (int b = 0; b < kBatches; ++b) {
      for (uint64_t id = 0; id < kStreams; ++id) {
        const bool labeled = b % 2 == 0;
        EXPECT_TRUE(
            runtime->Submit(id, MakeBatch(labeled, id * 131 + b, b)).ok());
      }
    }
    runtime->Flush();
    return runtime;
  };

  // Same traffic twice: a thrashing one-slot working set vs. one large
  // enough to never evict. If eviction/hydration perturbed any state, the
  // final snapshots would diverge.
  auto thrashed = run("park_a", 1);
  auto resident = run("park_b", 64);
  EXPECT_GT(thrashed->Snapshot().directory.evictions, 0u);
  EXPECT_EQ(resident->Snapshot().directory.evictions, 0u);

  for (uint64_t id = 0; id < kStreams; ++id) {
    StreamPipeline* a = thrashed->resident_stream_pipeline(id);
    StreamPipeline* b = resident->resident_stream_pipeline(id);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    std::vector<char> bytes_a, bytes_b;
    ASSERT_TRUE(a->Snapshot(&bytes_a).ok());
    ASSERT_TRUE(b->Snapshot(&bytes_b).ok());
    ASSERT_EQ(bytes_a.size(), bytes_b.size()) << "stream " << id;
    EXPECT_EQ(std::memcmp(bytes_a.data(), bytes_b.data(), bytes_a.size()), 0)
        << "stream " << id;
  }
  thrashed->Shutdown();
  resident->Shutdown();
}

TEST_F(DirectoryRuntimeTest, WeightedAdmissionThrottlesWithoutStarving) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = Options(1, 8);
  opts.queue_capacity = 40;
  opts.schedule_workers = false;  // Deterministic queue fill.
  opts.directory.admission.enabled = true;
  opts.directory.admission.tenants.push_back(
      {1, 8.0, TenantPriority::kStandard});
  opts.directory.admission.tenants.push_back(
      {2, 1.0, TenantPriority::kBestEffort});
  StreamRuntime runtime(*proto, opts);

  SubmitContext heavy{1, TenantPriority::kStandard};
  SubmitContext light{2, TenantPriority::kBestEffort};

  // The heavy tenant floods: free admission below the pressure threshold,
  // then throttled at its share = floor(40 * 8 / 10) = 32.
  size_t heavy_admitted = 0;
  Status last = Status::OK();
  for (int i = 0; i < 40; ++i) {
    last = runtime.TrySubmit(100 + i, MakeBatch(false, i, i), heavy);
    if (!last.ok()) break;
    ++heavy_admitted;
  }
  EXPECT_EQ(heavy_admitted, 32u);
  EXPECT_EQ(last.code(), StatusCode::kUnavailable);
  EXPECT_NE(last.message().find("tenant 1"), std::string::npos);

  // The light tenant is NOT starved by the flood: its share (4 slots) is
  // still free, and it is admitted until the hard threshold engages.
  size_t light_admitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (runtime.TrySubmit(200 + i, MakeBatch(false, 50 + i, i), light).ok()) {
      ++light_admitted;
    }
  }
  EXPECT_EQ(light_admitted, 4u);

  // Labeled traffic (training data) is never quota-rejected, even for the
  // over-share best-effort tenant at the hard threshold.
  EXPECT_TRUE(
      runtime.TrySubmit(300, MakeBatch(true, 99, 0), light).ok());

  // Draining retires the in-flight bookings; the throttled tenants flow
  // again — throttled to a trickle under pressure, never to zero.
  EXPECT_GT(runtime.PumpShard(0), 0u);
  EXPECT_TRUE(
      runtime.TrySubmit(301, MakeBatch(false, 100, 1), light).ok());
  EXPECT_GT(runtime.PumpShard(0), 0u);

  RuntimeStatsSnapshot snapshot = runtime.Snapshot();
  ASSERT_EQ(snapshot.tenants.size(), 3u);
  EXPECT_EQ(snapshot.tenants[0].tenant_id, 1u);
  EXPECT_EQ(snapshot.tenants[0].admitted, 32u);
  EXPECT_GE(snapshot.tenants[0].rejected, 1u);
  EXPECT_EQ(snapshot.tenants[1].tenant_id, 2u);
  EXPECT_EQ(snapshot.tenants[1].admitted, 6u);  // 4 + labeled + post-drain.
  EXPECT_GE(snapshot.tenants[1].rejected, 6u);
  EXPECT_TRUE(snapshot.tenants[2].is_other);
  EXPECT_EQ(snapshot.tenants[0].in_flight, 0u);
  EXPECT_EQ(snapshot.tenants[1].in_flight, 0u);
  runtime.Shutdown();
}

TEST_F(DirectoryRuntimeTest, BlockingSubmitBypassesTenantQuotas) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = Options(1, 8);
  opts.queue_capacity = 40;
  opts.schedule_workers = false;
  opts.directory.admission.enabled = true;
  opts.directory.admission.tenants.push_back(
      {2, 1.0, TenantPriority::kBestEffort});
  StreamRuntime runtime(*proto, opts);

  // A producer accepting backpressure pays with its own blocked time;
  // quotas only guard the non-blocking serving path. 30 submits is far
  // over tenant 2's share but well under queue capacity — all accepted.
  SubmitContext light{2, TenantPriority::kBestEffort};
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(runtime.Submit(400 + i, MakeBatch(false, i, i), light).ok());
  }
  EXPECT_EQ(runtime.PumpShard(0), 30u);
  runtime.Shutdown();
}

TEST_F(DirectoryRuntimeTest, ShedVictimSelectionRespectsPriorityBands) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = Options(1, 8);
  opts.queue_capacity = 2;
  opts.schedule_workers = false;
  opts.overload_policy = OverloadPolicy::kShed;
  // Watermarks far below any realistic submit rate: overload is confirmed
  // from the second submit on.
  opts.overload_rate.low_rate = 0.0005;
  opts.overload_rate.high_rate = 0.001;
  StreamRuntime runtime(*proto, opts);

  SubmitContext standard{1, TenantPriority::kStandard};
  SubmitContext best_effort{2, TenantPriority::kBestEffort};

  // Fill the queue with standard-band unlabeled batches.
  ASSERT_TRUE(runtime.Submit(1, MakeBatch(false, 1, 0), standard).ok());
  ASSERT_TRUE(runtime.Submit(2, MakeBatch(false, 2, 0), standard).ok());

  // A best-effort arrival must not displace standard-band work: no eligible
  // victim, so the non-blocking submit is rejected.
  EXPECT_FALSE(
      runtime.TrySubmit(3, MakeBatch(false, 3, 0), best_effort).ok());
  EXPECT_EQ(runtime.Snapshot().totals.shed, 0u);
  EXPECT_EQ(runtime.Snapshot().totals.rejected, 1u);

  // An equal-band arrival sheds the oldest queued unlabeled batch.
  EXPECT_TRUE(runtime.TrySubmit(4, MakeBatch(false, 4, 0), standard).ok());
  EXPECT_EQ(runtime.Snapshot().totals.shed, 1u);

  runtime.PumpShard(0);
  runtime.Shutdown();
}

TEST_F(DirectoryRuntimeTest, HydrateEvictChaosLosesNoBatches) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = Options(1, 1);
  opts.fault.enabled = true;
  opts.fault.checkpoint_dir = (dir_ / "ckpt").string();
  StreamRuntime runtime(*proto, opts);

  failpoint::Arm("directory.evict",
                 {StatusCode::kIoError, "chaos: park failed", 1, 2});
  failpoint::Arm("directory.hydrate",
                 {StatusCode::kIoError, "chaos: hydrate failed", 1, 1});

  constexpr uint64_t kStreams = 4;
  constexpr int kBatches = 3;
  for (int b = 0; b < kBatches; ++b) {
    for (uint64_t id = 0; id < kStreams; ++id) {
      ASSERT_TRUE(
          runtime.Submit(id, MakeBatch(true, id * 7 + b, b)).ok());
    }
  }
  runtime.Flush();

  // Every batch was processed despite injected park/hydrate failures: a
  // failed evict overflows the soft cap, a failed hydrate falls back to a
  // fresh pipeline. Labeled data never reaches the dead-letter queue.
  RuntimeStatsSnapshot snapshot = runtime.Snapshot();
  EXPECT_EQ(snapshot.totals.processed, kStreams * kBatches);
  EXPECT_EQ(snapshot.totals.quarantined, 0u);
  EXPECT_TRUE(runtime.TakeDeadLetters().empty());
  EXPECT_GE(snapshot.directory.evict_errors, 1u);
  EXPECT_GE(snapshot.directory.hydrate_errors, 1u);
  CheckInvariant(snapshot);
  runtime.Shutdown();
}

TEST_F(DirectoryRuntimeTest, ConsistentHashPlacementIsStableAcrossRuntimes) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = Options(4, 16);
  StreamRuntime a(*proto, opts);
  StreamRuntime b(*proto, opts);
  for (uint64_t id = 0; id < 500; ++id) {
    EXPECT_EQ(a.ShardOf(id), b.ShardOf(id));
    EXPECT_LT(a.ShardOf(id), 4u);
  }
  a.Shutdown();
  b.Shutdown();
}

}  // namespace
}  // namespace freeway
