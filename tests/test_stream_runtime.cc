#include "runtime/stream_runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "ml/models.h"

namespace freeway {
namespace {

Batch MakeBatch(bool labeled, uint64_t seed, int64_t index) {
  Rng rng(seed);
  Batch b;
  b.index = index;
  b.features = Matrix(16, 4);
  if (labeled) b.labels.resize(16);
  for (size_t i = 0; i < 16; ++i) {
    const int label = static_cast<int>(rng.NextBelow(2));
    if (labeled) b.labels[i] = label;
    for (size_t j = 0; j < 4; ++j) {
      b.features.At(i, j) = rng.Gaussian(label * 2.0, 0.5);
    }
  }
  return b;
}

RuntimeOptions FastOptions() {
  RuntimeOptions opts;
  opts.pipeline.learner.base_window_batches = 4;
  opts.pipeline.learner.detector.warmup_batches = 3;
  return opts;
}

/// Overload adjuster tuned so any realistic submit rate reads as sustained
/// overload from the second submit on (watermarks far below 1 batch/sec).
RateAdjusterOptions AlwaysOverloaded() {
  RateAdjusterOptions rate;
  rate.low_rate = 0.0005;
  rate.high_rate = 0.001;
  return rate;
}

TEST(StreamRuntimeTest, MixedTrafficRoutesAndDeliversResults) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = FastOptions();
  opts.num_shards = 2;
  StreamRuntime runtime(*proto, opts);

  size_t unlabeled = 0;
  for (int b = 0; b < 12; ++b) {
    const bool labeled = b % 3 != 2;
    if (!labeled) ++unlabeled;
    ASSERT_TRUE(runtime.Submit(b % 2, MakeBatch(labeled, b, b)).ok());
  }
  runtime.Flush();

  std::vector<StreamResult> results = runtime.Drain();
  EXPECT_EQ(results.size(), unlabeled);
  for (const StreamResult& r : results) {
    EXPECT_EQ(r.report.predictions.size(), 16u);
  }
  EXPECT_EQ(runtime.shard_pipeline(0).batches_processed() +
                runtime.shard_pipeline(1).batches_processed(),
            12u);
  runtime.Shutdown();
}

TEST(StreamRuntimeTest, PerShardOrderingIsPreserved) {
  ThreadPool::SetGlobalThreads(4);
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = FastOptions();
  opts.num_shards = 4;

  std::mutex mutex;
  std::map<uint64_t, std::vector<int64_t>> seen;
  StreamRuntime runtime(*proto, opts, [&](const StreamResult& r) {
    std::lock_guard<std::mutex> lock(mutex);
    seen[r.stream_id].push_back(r.batch_index);
  });

  constexpr int kStreams = 4;
  constexpr int kBatches = 16;
  std::vector<std::thread> producers;
  for (int s = 0; s < kStreams; ++s) {
    producers.emplace_back([&runtime, s] {
      for (int b = 0; b < kBatches; ++b) {
        // Unlabeled traffic only, so every batch yields a result.
        ASSERT_TRUE(
            runtime.Submit(s, MakeBatch(false, s * 1000 + b, b)).ok());
      }
    });
  }
  for (auto& t : producers) t.join();
  runtime.Flush();
  runtime.Shutdown();

  ASSERT_EQ(seen.size(), static_cast<size_t>(kStreams));
  for (const auto& [stream_id, indices] : seen) {
    ASSERT_EQ(indices.size(), static_cast<size_t>(kBatches))
        << "stream " << stream_id;
    for (size_t i = 0; i < indices.size(); ++i) {
      EXPECT_EQ(indices[i], static_cast<int64_t>(i)) << "stream " << stream_id;
    }
  }
}

TEST(StreamRuntimeTest, StatsReconcileAfterFlush) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = FastOptions();
  opts.num_shards = 3;
  StreamRuntime runtime(*proto, opts);

  constexpr int kSubmitted = 21;
  for (int b = 0; b < kSubmitted; ++b) {
    ASSERT_TRUE(runtime.Submit(b % 5, MakeBatch(b % 2 == 0, b, b)).ok());
  }
  runtime.Flush();

  RuntimeStatsSnapshot snapshot = runtime.Snapshot();
  EXPECT_EQ(snapshot.totals.enqueued, static_cast<uint64_t>(kSubmitted));
  EXPECT_EQ(snapshot.totals.processed + snapshot.totals.shed,
            snapshot.totals.enqueued);
  EXPECT_EQ(snapshot.totals.shed, 0u);  // Block policy never drops.
  EXPECT_EQ(snapshot.totals.in_flight, 0u);
  EXPECT_EQ(snapshot.totals.errors, 0u);
  EXPECT_EQ(snapshot.totals.queue_depth, 0u);
  EXPECT_EQ(snapshot.shards.size(), 3u);
  runtime.Shutdown();
}

TEST(StreamRuntimeTest, BlockPolicyAppliesBackpressure) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = FastOptions();
  opts.num_shards = 1;
  opts.queue_capacity = 2;
  opts.schedule_workers = false;  // Nothing drains until we pump.
  StreamRuntime runtime(*proto, opts);

  ASSERT_TRUE(runtime.Submit(0, MakeBatch(true, 0, 0)).ok());
  ASSERT_TRUE(runtime.Submit(0, MakeBatch(true, 1, 1)).ok());

  std::atomic<bool> third_accepted{false};
  std::thread producer([&] {
    ASSERT_TRUE(runtime.Submit(0, MakeBatch(true, 2, 2)).ok());
    third_accepted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_accepted.load());  // Full queue blocked the producer.

  runtime.PumpShard(0);
  producer.join();
  EXPECT_TRUE(third_accepted.load());
  runtime.PumpShard(0);

  RuntimeStatsSnapshot snapshot = runtime.Snapshot();
  EXPECT_EQ(snapshot.totals.processed, 3u);
  EXPECT_GT(snapshot.totals.blocked_micros, 0);
  EXPECT_EQ(snapshot.totals.queue_high_water, 2u);
  runtime.Shutdown();
}

TEST(StreamRuntimeTest, ShedPolicyDropsOldestUnlabeledUnderOverload) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = FastOptions();
  opts.num_shards = 1;
  opts.queue_capacity = 2;
  opts.overload_policy = OverloadPolicy::kShed;
  opts.overload_rate = AlwaysOverloaded();
  opts.schedule_workers = false;
  StreamRuntime runtime(*proto, opts);

  for (int b = 0; b < 5; ++b) {
    ASSERT_TRUE(runtime.Submit(0, MakeBatch(false, b, b)).ok());
  }
  // Capacity 2: batches 0..2 were shed to admit 3 and 4.
  RuntimeStatsSnapshot snapshot = runtime.Snapshot();
  EXPECT_EQ(snapshot.totals.enqueued, 5u);
  EXPECT_EQ(snapshot.totals.shed, 3u);
  EXPECT_EQ(snapshot.totals.in_flight, 2u);

  runtime.Shutdown();  // Drains the two survivors.
  snapshot = runtime.Snapshot();
  EXPECT_EQ(snapshot.totals.processed, 2u);
  EXPECT_EQ(snapshot.totals.processed + snapshot.totals.shed,
            snapshot.totals.enqueued);

  std::vector<StreamResult> results = runtime.Drain();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].batch_index, 3);
  EXPECT_EQ(results[1].batch_index, 4);
}

TEST(StreamRuntimeTest, LabeledBatchesAreNeverShed) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = FastOptions();
  opts.num_shards = 1;
  opts.queue_capacity = 2;
  opts.overload_policy = OverloadPolicy::kShed;
  opts.overload_rate = AlwaysOverloaded();
  opts.schedule_workers = false;
  StreamRuntime runtime(*proto, opts);

  ASSERT_TRUE(runtime.Submit(0, MakeBatch(true, 0, 0)).ok());
  ASSERT_TRUE(runtime.Submit(0, MakeBatch(true, 1, 1)).ok());

  // The queue holds only labeled (training) batches, so the shed policy
  // degrades to backpressure for the third submit.
  std::atomic<bool> third_accepted{false};
  std::thread producer([&] {
    ASSERT_TRUE(runtime.Submit(0, MakeBatch(false, 2, 2)).ok());
    third_accepted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_accepted.load());
  EXPECT_EQ(runtime.Snapshot().totals.shed, 0u);

  runtime.PumpShard(0);
  producer.join();
  runtime.PumpShard(0);
  RuntimeStatsSnapshot snapshot = runtime.Snapshot();
  EXPECT_EQ(snapshot.totals.shed, 0u);
  EXPECT_EQ(snapshot.totals.processed, 3u);
  runtime.Shutdown();
}

TEST(StreamRuntimeTest, ShutdownWithPendingWorkDrainsCleanly) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = FastOptions();
  opts.num_shards = 2;
  opts.schedule_workers = false;
  StreamRuntime runtime(*proto, opts);

  for (int b = 0; b < 8; ++b) {
    ASSERT_TRUE(runtime.Submit(b % 2, MakeBatch(true, b, b)).ok());
  }
  runtime.Shutdown();

  RuntimeStatsSnapshot snapshot = runtime.Snapshot();
  EXPECT_EQ(snapshot.totals.processed, 8u);
  EXPECT_EQ(snapshot.totals.in_flight, 0u);

  // Post-shutdown submissions are rejected, and Shutdown is idempotent.
  Status rejected = runtime.Submit(0, MakeBatch(true, 9, 9));
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition);
  runtime.Shutdown();
}

TEST(StreamRuntimeTest, ForwardsArrivalRateIntoPipelines) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = FastOptions();
  opts.num_shards = 1;
  opts.schedule_workers = false;
  StreamRuntime runtime(*proto, opts);

  for (int b = 0; b < 4; ++b) {
    ASSERT_TRUE(runtime.Submit(0, MakeBatch(true, b, b)).ok());
  }
  runtime.PumpShard(0);
  // Submits arrived back-to-back, so the forwarded arrival rate is high
  // and the shard pipeline's adjuster has observed it.
  EXPECT_GT(runtime.shard_pipeline(0).observed_rate(), 0.0);
  runtime.Shutdown();
}

TEST(StreamRuntimeTest, ConcurrentProducersReconcileUnderLoad) {
  ThreadPool::SetGlobalThreads(4);
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = FastOptions();
  opts.num_shards = 8;
  opts.queue_capacity = 4;  // Small queues force real backpressure.
  StreamRuntime runtime(*proto, opts);

  constexpr int kStreams = 8;
  constexpr int kBatches = 24;
  std::atomic<size_t> unlabeled{0};
  std::vector<std::thread> producers;
  for (int s = 0; s < kStreams; ++s) {
    producers.emplace_back([&runtime, &unlabeled, s] {
      for (int b = 0; b < kBatches; ++b) {
        const bool labeled = b % 3 != 2;
        if (!labeled) unlabeled.fetch_add(1);
        ASSERT_TRUE(
            runtime.Submit(s, MakeBatch(labeled, s * 777 + b, b)).ok());
      }
    });
  }
  for (auto& t : producers) t.join();
  runtime.Flush();

  RuntimeStatsSnapshot snapshot = runtime.Snapshot();
  EXPECT_EQ(snapshot.totals.enqueued,
            static_cast<uint64_t>(kStreams * kBatches));
  EXPECT_EQ(snapshot.totals.processed, snapshot.totals.enqueued);
  EXPECT_EQ(snapshot.totals.shed, 0u);
  EXPECT_EQ(snapshot.totals.in_flight, 0u);
  EXPECT_EQ(snapshot.totals.errors, 0u);
  EXPECT_EQ(runtime.Drain().size(), unlabeled.load());
  runtime.Shutdown();
}

TEST(StreamRuntimeTest, RegistryReconcilesExactlyWithSnapshot) {
  ThreadPool::SetGlobalThreads(4);
  auto proto = MakeLogisticRegression(4, 2);
  MetricsRegistry registry;
  RuntimeOptions opts = FastOptions();
  opts.num_shards = 4;
  opts.queue_capacity = 4;
  opts.metrics = &registry;
  StreamRuntime runtime(*proto, opts);

  constexpr int kStreams = 4;
  constexpr int kBatches = 16;
  std::vector<std::thread> producers;
  for (int s = 0; s < kStreams; ++s) {
    producers.emplace_back([&runtime, s] {
      for (int b = 0; b < kBatches; ++b) {
        ASSERT_TRUE(
            runtime.Submit(s, MakeBatch(b % 3 != 2, s * 31 + b, b)).ok());
      }
    });
  }
  for (auto& t : producers) t.join();
  runtime.Flush();

  RuntimeStatsSnapshot snapshot = runtime.Snapshot();
  Counter* enqueued = registry.GetCounter(
      "freeway_runtime_batches_total{event=\"enqueued\"}");
  Counter* processed = registry.GetCounter(
      "freeway_runtime_batches_total{event=\"processed\"}");
  Counter* shed =
      registry.GetCounter("freeway_runtime_batches_total{event=\"shed\"}");
  Counter* errors =
      registry.GetCounter("freeway_runtime_batches_total{event=\"error\"}");
  ASSERT_NE(enqueued, nullptr);
  EXPECT_EQ(enqueued->Value(), snapshot.totals.enqueued);
  EXPECT_EQ(processed->Value(), snapshot.totals.processed);
  EXPECT_EQ(shed->Value(), snapshot.totals.shed);
  EXPECT_EQ(errors->Value(), snapshot.totals.errors);
  EXPECT_EQ(enqueued->Value(), processed->Value() + shed->Value());

  // Quiescent: every per-shard depth gauge is back to zero, and every
  // processed batch recorded a queue wait.
  for (size_t s = 0; s < runtime.num_shards(); ++s) {
    Gauge* depth = registry.GetGauge(
        "freeway_runtime_queue_depth{shard=\"" + std::to_string(s) + "\"}");
    ASSERT_NE(depth, nullptr);
    EXPECT_EQ(depth->Value(), 0) << "shard " << s;
  }
  Histogram* wait =
      registry.GetHistogram("freeway_runtime_queue_wait_seconds");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->TotalCount(), snapshot.totals.processed);

  // Shard pipelines aggregate into shared registry series: every processed
  // batch succeeded, so pipeline "ok" pushes match runtime "processed".
  Counter* pipeline_ok =
      registry.GetCounter("freeway_pipeline_batches_total{result=\"ok\"}");
  ASSERT_NE(pipeline_ok, nullptr);
  EXPECT_EQ(pipeline_ok->Value(), snapshot.totals.processed);
  runtime.Shutdown();
}

TEST(StreamRuntimeTest, RegistryCountsShedBatchesAndLiveDepth) {
  auto proto = MakeLogisticRegression(4, 2);
  MetricsRegistry registry;
  RuntimeOptions opts = FastOptions();
  opts.num_shards = 1;
  opts.queue_capacity = 2;
  opts.overload_policy = OverloadPolicy::kShed;
  opts.overload_rate = AlwaysOverloaded();
  opts.schedule_workers = false;
  opts.metrics = &registry;
  StreamRuntime runtime(*proto, opts);

  for (int b = 0; b < 5; ++b) {
    ASSERT_TRUE(runtime.Submit(0, MakeBatch(false, b, b)).ok());
  }
  // Capacity 2: three batches shed, two resident. A shed admit swaps one
  // queue item for another, so the live depth gauge reads the residents.
  Counter* shed =
      registry.GetCounter("freeway_runtime_batches_total{event=\"shed\"}");
  Gauge* depth =
      registry.GetGauge("freeway_runtime_queue_depth{shard=\"0\"}");
  EXPECT_EQ(shed->Value(), 3u);
  EXPECT_EQ(depth->Value(), 2);

  runtime.Shutdown();
  EXPECT_EQ(depth->Value(), 0);
  RuntimeStatsSnapshot snapshot = runtime.Snapshot();
  EXPECT_EQ(shed->Value(), snapshot.totals.shed);
  Counter* processed = registry.GetCounter(
      "freeway_runtime_batches_total{event=\"processed\"}");
  EXPECT_EQ(processed->Value(), snapshot.totals.processed);
}

TEST(StreamRuntimeTest, ErrorBatchCountsAsErrorNotSuccess) {
  auto proto = MakeLogisticRegression(4, 2);
  MetricsRegistry registry;
  RuntimeOptions opts = FastOptions();
  opts.num_shards = 1;
  opts.schedule_workers = false;
  opts.metrics = &registry;
  StreamRuntime runtime(*proto, opts);

  ASSERT_TRUE(runtime.Submit(0, MakeBatch(true, 1, 0)).ok());
  Batch bad;  // Zero-row unlabeled batch: the detector rejects it.
  bad.index = 1;
  bad.features = Matrix(0, 4);
  ASSERT_TRUE(runtime.Submit(0, std::move(bad)).ok());
  runtime.PumpShard(0);

  RuntimeStatsSnapshot snapshot = runtime.Snapshot();
  EXPECT_EQ(snapshot.totals.errors, 1u);
  EXPECT_EQ(snapshot.totals.processed, 2u);  // Error pushes still drain.
  EXPECT_EQ(
      registry.GetCounter("freeway_runtime_batches_total{event=\"error\"}")
          ->Value(),
      1u);
  // The shard pipeline books it as a failure, not a processed batch.
  EXPECT_EQ(runtime.shard_pipeline(0).batches_processed(), 1u);
  EXPECT_EQ(runtime.shard_pipeline(0).batches_failed(), 1u);
  EXPECT_EQ(
      registry.GetCounter("freeway_pipeline_batches_total{result=\"error\"}")
          ->Value(),
      1u);
  runtime.Shutdown();
}

TEST(StreamRuntimeTest, ZeroShardsIsClampedToOneInsteadOfDividingByZero) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = FastOptions();
  opts.num_shards = 0;  // Would make ShardOf divide by zero unclamped.
  StreamRuntime runtime(*proto, opts);
  EXPECT_EQ(runtime.num_shards(), 1u);
  EXPECT_EQ(runtime.ShardOf(12345), 0u);
  for (int b = 0; b < 3; ++b) {
    ASSERT_TRUE(runtime.Submit(b, MakeBatch(true, b, b)).ok());
  }
  runtime.Shutdown();
  EXPECT_EQ(runtime.Snapshot().totals.processed, 3u);
}

TEST(StreamRuntimeTest, ZeroQueueCapacityIsClampedToOneInsteadOfDeadlock) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = FastOptions();
  opts.num_shards = 1;
  opts.queue_capacity = 0;  // Every Submit would block forever unclamped.
  StreamRuntime runtime(*proto, opts);
  EXPECT_EQ(runtime.queue_capacity(), 1u);
  for (int b = 0; b < 3; ++b) {
    ASSERT_TRUE(runtime.Submit(0, MakeBatch(true, b, b)).ok());
  }
  runtime.Shutdown();
  EXPECT_EQ(runtime.Snapshot().totals.processed, 3u);
}

TEST(StreamRuntimeTest, TrySubmitRejectsInsteadOfBlockingWhenFull) {
  auto proto = MakeLogisticRegression(4, 2);
  MetricsRegistry registry;
  RuntimeOptions opts = FastOptions();
  opts.num_shards = 1;
  opts.queue_capacity = 2;
  opts.schedule_workers = false;  // Queue fills deterministically.
  opts.metrics = &registry;
  StreamRuntime runtime(*proto, opts);

  ASSERT_TRUE(runtime.TrySubmit(0, MakeBatch(true, 1, 0)).ok());
  ASSERT_TRUE(runtime.TrySubmit(0, MakeBatch(true, 2, 1)).ok());
  Status full = runtime.TrySubmit(0, MakeBatch(true, 3, 2));
  EXPECT_EQ(full.code(), StatusCode::kUnavailable) << full;

  RuntimeStatsSnapshot snapshot = runtime.Snapshot();
  EXPECT_EQ(snapshot.totals.rejected, 1u);
  // A rejection never enters the enqueued invariant.
  EXPECT_EQ(snapshot.totals.enqueued, 2u);
  EXPECT_EQ(
      registry.GetCounter("freeway_runtime_batches_total{event=\"rejected\"}")
          ->Value(),
      1u);

  // Draining frees space and TrySubmit admits again.
  EXPECT_EQ(runtime.PumpShard(0), 2u);
  EXPECT_TRUE(runtime.TrySubmit(0, MakeBatch(true, 4, 3)).ok());
  runtime.Shutdown();
  EXPECT_EQ(runtime.Snapshot().totals.processed, 3u);
}

TEST(StreamRuntimeTest, TrySubmitStillShedsUnderConfirmedOverload) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = FastOptions();
  opts.num_shards = 1;
  opts.queue_capacity = 2;
  opts.overload_policy = OverloadPolicy::kShed;
  opts.overload_rate = AlwaysOverloaded();
  opts.schedule_workers = false;
  StreamRuntime runtime(*proto, opts);

  // Unlabeled traffic under confirmed overload: the full queue sheds its
  // oldest unlabeled batch instead of rejecting the new one.
  for (int b = 0; b < 5; ++b) {
    ASSERT_TRUE(runtime.TrySubmit(0, MakeBatch(false, b, b)).ok());
  }
  RuntimeStatsSnapshot snapshot = runtime.Snapshot();
  EXPECT_EQ(snapshot.totals.shed, 3u);
  EXPECT_EQ(snapshot.totals.rejected, 0u);
  runtime.Shutdown();
}

}  // namespace
}  // namespace freeway
