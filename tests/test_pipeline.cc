#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/rng.h"
#include "ml/models.h"

namespace freeway {
namespace {

Batch MakeBatch(bool labeled, uint64_t seed, int64_t index) {
  Rng rng(seed);
  Batch b;
  b.index = index;
  b.features = Matrix(32, 4);
  if (labeled) b.labels.resize(32);
  for (size_t i = 0; i < 32; ++i) {
    const int label = static_cast<int>(rng.NextBelow(2));
    if (labeled) b.labels[i] = label;
    for (size_t j = 0; j < 4; ++j) {
      b.features.At(i, j) = rng.Gaussian(label * 2.0, 0.5);
    }
  }
  return b;
}

PipelineOptions FastOptions() {
  PipelineOptions opts;
  opts.learner.base_window_batches = 4;
  opts.learner.detector.warmup_batches = 3;
  return opts;
}

TEST(PipelineTest, RoutesLabeledToTraining) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline pipeline(*proto, FastOptions());
  auto result = pipeline.Push(MakeBatch(true, 1, 0));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->has_value());  // No inference report for training.
  EXPECT_EQ(pipeline.learner().stats().batches_trained, 1u);
  EXPECT_EQ(pipeline.batches_processed(), 1u);
}

TEST(PipelineTest, RoutesUnlabeledToInference) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline pipeline(*proto, FastOptions());
  for (int b = 0; b < 5; ++b) {
    ASSERT_TRUE(pipeline.Push(MakeBatch(true, b, b)).ok());
  }
  auto result = pipeline.Push(MakeBatch(false, 99, 5));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->has_value());
  EXPECT_EQ((*result)->predictions.size(), 32u);
  EXPECT_EQ(pipeline.learner().stats().batches_inferred, 1u);
}

TEST(PipelineTest, PrequentialPushInfersAndTrains) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline pipeline(*proto, FastOptions());
  auto report = pipeline.PushPrequential(MakeBatch(true, 7, 0));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->predictions.size(), 32u);
  EXPECT_EQ(pipeline.learner().stats().batches_trained, 1u);
  EXPECT_EQ(pipeline.learner().stats().batches_inferred, 1u);
}

TEST(PipelineTest, RateAdjusterObservesFlow) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline pipeline(*proto, FastOptions());
  for (int b = 0; b < 10; ++b) {
    ASSERT_TRUE(pipeline.Push(MakeBatch(true, b, b)).ok());
  }
  EXPECT_GT(pipeline.observed_rate(), 0.0);
  EXPECT_GE(pipeline.last_adjustment().decay_boost, 1.0);
}

TEST(PipelineTest, AdjusterCanBeDisabled) {
  auto proto = MakeLogisticRegression(4, 2);
  PipelineOptions opts = FastOptions();
  opts.enable_rate_adjuster = false;
  StreamPipeline pipeline(*proto, opts);
  for (int b = 0; b < 5; ++b) {
    ASSERT_TRUE(pipeline.Push(MakeBatch(true, b, b)).ok());
  }
  EXPECT_DOUBLE_EQ(pipeline.observed_rate(), 0.0);
}

TEST(PipelineTest, FirstTickDoesNotObserveStartupGap) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline pipeline(*proto, FastOptions());
  // Time passes between construction and the first push; that gap is not
  // an inter-batch interval and must not seed the adjuster's EMA (the
  // first adjustment would over-react to a near-zero or huge rate).
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(pipeline.Push(MakeBatch(true, 1, 0)).ok());
  EXPECT_DOUBLE_EQ(pipeline.observed_rate(), 0.0);  // No observation yet.
  EXPECT_DOUBLE_EQ(pipeline.last_adjustment().decay_boost, 1.0);
  ASSERT_TRUE(pipeline.Push(MakeBatch(true, 2, 1)).ok());
  EXPECT_GT(pipeline.observed_rate(), 0.0);  // Seeded by a real gap.
}

TEST(PipelineTest, ExternalRateOverridesStopwatch) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline pipeline(*proto, FastOptions());
  pipeline.SetExternalRate(42.0);
  ASSERT_TRUE(pipeline.Push(MakeBatch(true, 1, 0)).ok());
  // The supplied arrival rate seeds the EMA, even on the first tick.
  EXPECT_DOUBLE_EQ(pipeline.observed_rate(), 42.0);
  // Consumed: the next push falls back to the stopwatch.
  ASSERT_TRUE(pipeline.Push(MakeBatch(true, 2, 1)).ok());
  EXPECT_NE(pipeline.observed_rate(), 42.0);
}

TEST(PipelineTest, MixedTrafficKeepsDetectorCurrent) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline pipeline(*proto, FastOptions());
  for (int b = 0; b < 12; ++b) {
    ASSERT_TRUE(pipeline.Push(MakeBatch(b % 3 != 0, b, b)).ok());
  }
  // Detector advanced on every batch regardless of routing.
  EXPECT_TRUE(pipeline.learner().detector().warmed_up());
  EXPECT_EQ(pipeline.batches_processed(), 12u);
}

}  // namespace
}  // namespace freeway
