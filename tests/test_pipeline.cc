#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "common/rng.h"
#include "ml/models.h"

namespace freeway {
namespace {

Batch MakeBatch(bool labeled, uint64_t seed, int64_t index) {
  Rng rng(seed);
  Batch b;
  b.index = index;
  b.features = Matrix(32, 4);
  if (labeled) b.labels.resize(32);
  for (size_t i = 0; i < 32; ++i) {
    const int label = static_cast<int>(rng.NextBelow(2));
    if (labeled) b.labels[i] = label;
    for (size_t j = 0; j < 4; ++j) {
      b.features.At(i, j) = rng.Gaussian(label * 2.0, 0.5);
    }
  }
  return b;
}

PipelineOptions FastOptions() {
  PipelineOptions opts;
  opts.learner.base_window_batches = 4;
  opts.learner.detector.warmup_batches = 3;
  return opts;
}

TEST(PipelineTest, RoutesLabeledToTraining) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline pipeline(*proto, FastOptions());
  auto result = pipeline.Push(MakeBatch(true, 1, 0));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->has_value());  // No inference report for training.
  EXPECT_EQ(pipeline.learner().stats().batches_trained, 1u);
  EXPECT_EQ(pipeline.batches_processed(), 1u);
}

TEST(PipelineTest, RoutesUnlabeledToInference) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline pipeline(*proto, FastOptions());
  for (int b = 0; b < 5; ++b) {
    ASSERT_TRUE(pipeline.Push(MakeBatch(true, b, b)).ok());
  }
  auto result = pipeline.Push(MakeBatch(false, 99, 5));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->has_value());
  EXPECT_EQ((*result)->predictions.size(), 32u);
  EXPECT_EQ(pipeline.learner().stats().batches_inferred, 1u);
}

TEST(PipelineTest, PrequentialPushInfersAndTrains) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline pipeline(*proto, FastOptions());
  auto report = pipeline.PushPrequential(MakeBatch(true, 7, 0));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->predictions.size(), 32u);
  EXPECT_EQ(pipeline.learner().stats().batches_trained, 1u);
  EXPECT_EQ(pipeline.learner().stats().batches_inferred, 1u);
}

TEST(PipelineTest, RateAdjusterObservesFlow) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline pipeline(*proto, FastOptions());
  for (int b = 0; b < 10; ++b) {
    ASSERT_TRUE(pipeline.Push(MakeBatch(true, b, b)).ok());
  }
  EXPECT_GT(pipeline.observed_rate(), 0.0);
  EXPECT_GE(pipeline.last_adjustment().decay_boost, 1.0);
}

TEST(PipelineTest, AdjusterCanBeDisabled) {
  auto proto = MakeLogisticRegression(4, 2);
  PipelineOptions opts = FastOptions();
  opts.enable_rate_adjuster = false;
  StreamPipeline pipeline(*proto, opts);
  for (int b = 0; b < 5; ++b) {
    ASSERT_TRUE(pipeline.Push(MakeBatch(true, b, b)).ok());
  }
  EXPECT_DOUBLE_EQ(pipeline.observed_rate(), 0.0);
}

TEST(PipelineTest, FirstTickDoesNotObserveStartupGap) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline pipeline(*proto, FastOptions());
  // Time passes between construction and the first push; that gap is not
  // an inter-batch interval and must not seed the adjuster's EMA (the
  // first adjustment would over-react to a near-zero or huge rate).
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(pipeline.Push(MakeBatch(true, 1, 0)).ok());
  EXPECT_DOUBLE_EQ(pipeline.observed_rate(), 0.0);  // No observation yet.
  EXPECT_DOUBLE_EQ(pipeline.last_adjustment().decay_boost, 1.0);
  ASSERT_TRUE(pipeline.Push(MakeBatch(true, 2, 1)).ok());
  EXPECT_GT(pipeline.observed_rate(), 0.0);  // Seeded by a real gap.
}

TEST(PipelineTest, ExternalRateOverridesStopwatch) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline pipeline(*proto, FastOptions());
  pipeline.SetExternalRate(42.0);
  ASSERT_TRUE(pipeline.Push(MakeBatch(true, 1, 0)).ok());
  // The supplied arrival rate seeds the EMA, even on the first tick.
  EXPECT_DOUBLE_EQ(pipeline.observed_rate(), 42.0);
  // Consumed: the next push falls back to the stopwatch.
  ASSERT_TRUE(pipeline.Push(MakeBatch(true, 2, 1)).ok());
  EXPECT_NE(pipeline.observed_rate(), 42.0);
}

TEST(PipelineTest, MixedTrafficKeepsDetectorCurrent) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline pipeline(*proto, FastOptions());
  for (int b = 0; b < 12; ++b) {
    ASSERT_TRUE(pipeline.Push(MakeBatch(b % 3 != 0, b, b)).ok());
  }
  // Detector advanced on every batch regardless of routing.
  EXPECT_TRUE(pipeline.learner().detector().warmed_up());
  EXPECT_EQ(pipeline.batches_processed(), 12u);
  EXPECT_EQ(pipeline.batches_failed(), 0u);
}

/// An unlabeled batch with zero rows: the shift detector rejects it with a
/// Status (no abort), exercising the inference-path failure route.
Batch EmptyUnlabeledBatch(int64_t index) {
  Batch b;
  b.index = index;
  b.features = Matrix(0, 4);
  return b;
}

/// A labeled batch whose features contain a NaN: rejected by the detector's
/// finiteness check, exercising the training-path failure route.
Batch NanLabeledBatch(int64_t index) {
  Batch b = MakeBatch(true, 5, index);
  b.features.At(0, 0) = std::nan("");
  return b;
}

TEST(PipelineTest, FailedPushIsNotCountedAsProcessed) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline pipeline(*proto, FastOptions());
  ASSERT_TRUE(pipeline.Push(MakeBatch(true, 1, 0)).ok());

  EXPECT_FALSE(pipeline.Push(EmptyUnlabeledBatch(1)).ok());
  EXPECT_FALSE(pipeline.Push(NanLabeledBatch(2)).ok());
  EXPECT_FALSE(pipeline.PushPrequential(NanLabeledBatch(3)).ok());

  // Only the good batch is processed; the rejects are booked as failures.
  EXPECT_EQ(pipeline.batches_processed(), 1u);
  EXPECT_EQ(pipeline.batches_failed(), 3u);

  // The pipeline stays usable after failures.
  ASSERT_TRUE(pipeline.Push(MakeBatch(true, 2, 4)).ok());
  EXPECT_EQ(pipeline.batches_processed(), 2u);
}

TEST(PipelineTest, MetricsCountOutcomesAndStages) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline pipeline(*proto, FastOptions());
  MetricsRegistry registry;
  pipeline.AttachMetrics(&registry);

  for (int b = 0; b < 4; ++b) {
    ASSERT_TRUE(pipeline.Push(MakeBatch(true, b, b)).ok());  // Train path.
  }
  ASSERT_TRUE(pipeline.Push(MakeBatch(false, 50, 4)).ok());  // Infer path.
  ASSERT_TRUE(pipeline.PushPrequential(MakeBatch(true, 51, 5)).ok());
  EXPECT_FALSE(pipeline.Push(EmptyUnlabeledBatch(6)).ok());

  Counter* ok =
      registry.GetCounter("freeway_pipeline_batches_total{result=\"ok\"}");
  Counter* error =
      registry.GetCounter("freeway_pipeline_batches_total{result=\"error\"}");
  ASSERT_NE(ok, nullptr);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(ok->Value(), 6u);
  EXPECT_EQ(error->Value(), 1u);
  EXPECT_EQ(ok->Value(), pipeline.batches_processed());
  EXPECT_EQ(error->Value(), pipeline.batches_failed());

  // Every push (including the failed one) times an Assess; only unlabeled /
  // prequential pushes run the infer stage, only labeled ones train.
  Histogram* detect = registry.GetHistogram(
      "freeway_learner_stage_seconds{stage=\"detect\"}");
  Histogram* infer =
      registry.GetHistogram("freeway_learner_stage_seconds{stage=\"infer\"}");
  Histogram* train =
      registry.GetHistogram("freeway_learner_stage_seconds{stage=\"train\"}");
  ASSERT_NE(detect, nullptr);
  EXPECT_EQ(detect->TotalCount(), 7u);
  EXPECT_EQ(infer->TotalCount(), 2u);
  EXPECT_EQ(train->TotalCount(), 5u);

  Histogram* push = registry.GetHistogram("freeway_pipeline_push_seconds");
  EXPECT_EQ(push->TotalCount(), 7u);
  EXPECT_GT(push->Sum(), 0.0);
}

TEST(PipelineTest, DetachedPipelineRegistersNothing) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline pipeline(*proto, FastOptions());
  ASSERT_TRUE(pipeline.Push(MakeBatch(true, 1, 0)).ok());
  EXPECT_EQ(pipeline.batches_processed(), 1u);
}

}  // namespace
}  // namespace freeway
