#include "core/disorder.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace freeway {
namespace {

/// O(n^2) reference implementation of Eq. 11.
size_t NaiveInversions(const std::vector<double>& v) {
  size_t count = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    for (size_t j = i + 1; j < v.size(); ++j) {
      if (v[i] > v[j]) ++count;
    }
  }
  return count;
}

TEST(DisorderTest, SortedHasZeroInversions) {
  EXPECT_EQ(InversionCount({1, 2, 3, 4, 5}), 0u);
  EXPECT_DOUBLE_EQ(NormalizedDisorder({1, 2, 3, 4, 5}), 0.0);
}

TEST(DisorderTest, ReversedHasMaximumInversions) {
  EXPECT_EQ(InversionCount({5, 4, 3, 2, 1}), 10u);
  EXPECT_DOUBLE_EQ(NormalizedDisorder({5, 4, 3, 2, 1}), 1.0);
}

TEST(DisorderTest, KnownSmallCases) {
  EXPECT_EQ(InversionCount({2, 1}), 1u);
  EXPECT_EQ(InversionCount({2, 1, 3}), 1u);
  EXPECT_EQ(InversionCount({3, 1, 2}), 2u);
  EXPECT_EQ(InversionCount({1, 3, 2, 4}), 1u);
}

TEST(DisorderTest, TiesAreNotInversions) {
  EXPECT_EQ(InversionCount({1, 1, 1}), 0u);
  EXPECT_EQ(InversionCount({2, 2, 1}), 2u);
}

TEST(DisorderTest, DegenerateSizes) {
  EXPECT_EQ(InversionCount({}), 0u);
  EXPECT_EQ(InversionCount({7}), 0u);
  EXPECT_DOUBLE_EQ(NormalizedDisorder({}), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedDisorder({7}), 0.0);
}

TEST(DisorderTest, MatchesNaiveOnRandomInputs) {
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.NextBelow(60);
    std::vector<double> v(n);
    for (auto& x : v) x = rng.Gaussian(0, 1);
    EXPECT_EQ(InversionCount(v), NaiveInversions(v));
  }
}

TEST(DisorderTest, NormalizedIsInUnitInterval) {
  Rng rng(22);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v(30);
    for (auto& x : v) x = rng.NextDouble();
    const double d = NormalizedDisorder(v);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

}  // namespace
}  // namespace freeway
