#include "core/rate_adjuster.h"

#include <gtest/gtest.h>

namespace freeway {
namespace {

RateAdjusterOptions Opts() {
  RateAdjusterOptions o;
  o.low_rate = 10.0;
  o.high_rate = 100.0;
  o.smoothing = 1.0;  // No smoothing: deterministic single-shot tests.
  return o;
}

TEST(RateAdjusterTest, NormalRateIsNeutral) {
  RateAwareAdjuster adjuster(Opts());
  RateAdjustment adj = adjuster.Observe(50.0, 0.5);
  EXPECT_DOUBLE_EQ(adj.inference_frequency_factor, 1.0);
  EXPECT_DOUBLE_EQ(adj.decay_boost, 1.0);
  EXPECT_FALSE(adj.throttle_updates);
}

TEST(RateAdjusterTest, IdleStreamBoostsInference) {
  RateAwareAdjuster adjuster(Opts());
  RateAdjustment adj = adjuster.Observe(0.0, 0.0);
  EXPECT_GT(adj.inference_frequency_factor, 1.0);
  EXPECT_LE(adj.inference_frequency_factor, 4.0);
  EXPECT_DOUBLE_EQ(adj.decay_boost, 1.0);
}

TEST(RateAdjusterTest, IdleBoostShrinksWithWindowPressure) {
  RateAwareAdjuster a(Opts()), b(Opts());
  const double empty = a.Observe(2.0, 0.0).inference_frequency_factor;
  const double full = b.Observe(2.0, 1.0).inference_frequency_factor;
  EXPECT_GT(empty, full);
  EXPECT_DOUBLE_EQ(full, 1.0);
}

TEST(RateAdjusterTest, OverloadBoostsDecay) {
  RateAwareAdjuster adjuster(Opts());
  RateAdjustment adj = adjuster.Observe(200.0, 0.5);
  EXPECT_GT(adj.decay_boost, 1.0);
  EXPECT_LE(adj.decay_boost, 3.0);
  EXPECT_DOUBLE_EQ(adj.inference_frequency_factor, 1.0);
  EXPECT_FALSE(adj.throttle_updates);  // Pressure below threshold.
}

TEST(RateAdjusterTest, OverloadWithPressureThrottles) {
  RateAwareAdjuster adjuster(Opts());
  RateAdjustment adj = adjuster.Observe(500.0, 0.95);
  EXPECT_TRUE(adj.throttle_updates);
  EXPECT_GT(adj.decay_boost, 1.0);
}

TEST(RateAdjusterTest, SmoothingAveragesRates) {
  RateAdjusterOptions opts = Opts();
  opts.smoothing = 0.5;
  RateAwareAdjuster adjuster(opts);
  adjuster.Observe(100.0, 0.5);
  EXPECT_DOUBLE_EQ(adjuster.smoothed_rate(), 100.0);  // First obs seeds.
  adjuster.Observe(0.0, 0.5);
  EXPECT_DOUBLE_EQ(adjuster.smoothed_rate(), 50.0);
}

TEST(RateAdjusterTest, ClampsPathologicalInputs) {
  RateAwareAdjuster adjuster(Opts());
  RateAdjustment adj = adjuster.Observe(-5.0, 2.0);
  EXPECT_GE(adj.inference_frequency_factor, 1.0);
  EXPECT_GE(adj.decay_boost, 1.0);
}

}  // namespace
}  // namespace freeway
