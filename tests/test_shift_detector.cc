#include "core/shift_detector.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace freeway {
namespace {

/// Batch of n points around `center` with the given spread.
Matrix BatchAround(const std::vector<double>& center, size_t n, double sigma,
                   Rng* rng) {
  Matrix m(n, center.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < center.size(); ++j) {
      m.At(i, j) = center[j] + rng->Gaussian(0.0, sigma);
    }
  }
  return m;
}

ShiftDetectorOptions SmallOptions() {
  ShiftDetectorOptions opts;
  opts.warmup_batches = 3;
  opts.history_k = 10;
  return opts;
}

TEST(ShiftDetectorTest, WarmupPhase) {
  ShiftDetector detector(SmallOptions());
  Rng rng(1);
  for (int b = 0; b < 3; ++b) {
    auto a = detector.Assess(BatchAround({0, 0, 0, 0}, 64, 0.5, &rng));
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(a->warmup);
  }
  EXPECT_TRUE(detector.warmed_up());
  auto live = detector.Assess(BatchAround({0, 0, 0, 0}, 64, 0.5, &rng));
  ASSERT_TRUE(live.ok());
  EXPECT_FALSE(live->warmup);
  // pca_components (default 8) clamps to the 4-dim input.
  EXPECT_EQ(live->representation.size(), 4u);
}

TEST(ShiftDetectorTest, EmptyBatchRejected) {
  ShiftDetector detector(SmallOptions());
  EXPECT_FALSE(detector.Assess(Matrix(0, 4)).ok());
}

TEST(ShiftDetectorTest, StableStreamStaysSlight) {
  ShiftDetector detector(SmallOptions());
  Rng rng(2);
  for (int b = 0; b < 20; ++b) {
    auto a = detector.Assess(BatchAround({1, 2, 3, 4}, 128, 0.5, &rng));
    ASSERT_TRUE(a.ok());
    if (!a->warmup) {
      EXPECT_EQ(a->pattern, ShiftPattern::kSlight);
    }
  }
}

TEST(ShiftDetectorTest, SuddenJumpDetected) {
  ShiftDetector detector(SmallOptions());
  Rng rng(3);
  std::vector<double> center = {0, 0, 0, 0};
  for (int b = 0; b < 15; ++b) {
    // Slight directional motion establishes the distance statistics.
    center[0] += 0.02;
    ASSERT_TRUE(detector.Assess(BatchAround(center, 128, 0.3, &rng)).ok());
  }
  // A big jump to a brand-new region.
  auto sudden =
      detector.Assess(BatchAround({25, -25, 10, 5}, 128, 0.3, &rng));
  ASSERT_TRUE(sudden.ok());
  EXPECT_EQ(sudden->pattern, ShiftPattern::kSudden);
  EXPECT_GT(sudden->m_score, detector.options().alpha);
}

TEST(ShiftDetectorTest, ReturnToOldRegionIsReoccurring) {
  ShiftDetector detector(SmallOptions());
  Rng rng(4);
  // Phase 1: dwell at region A.
  for (int b = 0; b < 10; ++b) {
    ASSERT_TRUE(detector.Assess(BatchAround({0, 0, 0, 0}, 128, 0.3,
                                            &rng)).ok());
  }
  // Phase 2: dwell at region B far away (first batch there is sudden).
  for (int b = 0; b < 10; ++b) {
    ASSERT_TRUE(detector.Assess(BatchAround({20, 20, 0, 0}, 128, 0.3,
                                            &rng)).ok());
  }
  // Phase 3: jump back to region A: severe AND near history -> Pattern C.
  auto back = detector.Assess(BatchAround({0, 0, 0, 0}, 128, 0.3, &rng));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->pattern, ShiftPattern::kReoccurring);
  EXPECT_LT(back->d_h, back->distance);
}

TEST(ShiftDetectorTest, DistanceReflectsShiftMagnitude) {
  ShiftDetector detector(SmallOptions());
  Rng rng(5);
  for (int b = 0; b < 5; ++b) {
    ASSERT_TRUE(detector.Assess(BatchAround({0, 0, 0, 0}, 256, 0.2,
                                            &rng)).ok());
  }
  auto small = detector.Assess(BatchAround({0.5, 0, 0, 0}, 256, 0.2, &rng));
  auto large = detector.Assess(BatchAround({8, 0, 0, 0}, 256, 0.2, &rng));
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GT(large->distance, small->distance * 3);
}

TEST(ShiftDetectorTest, HistoryIsBounded) {
  ShiftDetectorOptions opts = SmallOptions();
  opts.max_history = 8;
  ShiftDetector detector(opts);
  Rng rng(6);
  for (int b = 0; b < 40; ++b) {
    ASSERT_TRUE(detector.Assess(BatchAround({0, 0, 0, 0}, 32, 0.3,
                                            &rng)).ok());
  }
  EXPECT_LE(detector.history().size(), 8u);
  EXPECT_LE(detector.recent_distances().size(), opts.history_k);
}

TEST(ShiftDetectorTest, ShiftGraphGrowsChronologically) {
  ShiftDetector detector(SmallOptions());
  Rng rng(7);
  for (int b = 0; b < 10; ++b) {
    ASSERT_TRUE(detector.Assess(BatchAround({0, 0, 0, 0}, 32, 0.3,
                                            &rng)).ok());
  }
  // Warm-up seeds one node; each live batch appends one.
  EXPECT_EQ(detector.history().size(), 8u);
}

TEST(ShiftPatternTest, Names) {
  EXPECT_STREQ(ShiftPatternName(ShiftPattern::kSlight), "slight");
  EXPECT_STREQ(ShiftPatternName(ShiftPattern::kSudden), "sudden");
  EXPECT_STREQ(ShiftPatternName(ShiftPattern::kReoccurring), "reoccurring");
}

}  // namespace
}  // namespace freeway
