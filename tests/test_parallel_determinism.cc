// Bit-identical results at every thread count is the substrate's core
// contract (DESIGN.md "Threading model"): chunk boundaries depend only on
// the range and grain, per-element accumulation order is fixed, and sharded
// reductions merge in ascending shard order. These tests run each
// parallelized kernel at 1 and 4 global threads and compare outputs with
// exact equality — any reordering of floating-point accumulation fails.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "clustering/kmeans.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/granularity.h"
#include "linalg/simd.h"
#include "ml/layers.h"
#include "ml/models.h"

namespace freeway {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m.At(i, j) = rng.Gaussian(0, 1);
  }
  return m;
}

void ExpectBitIdentical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      // EXPECT_EQ, not EXPECT_NEAR: the contract is exact.
      ASSERT_EQ(a.At(i, j), b.At(i, j)) << "at (" << i << ", " << j << ")";
    }
  }
}

/// Runs `compute` under 1 and then 4 global threads, restoring a serial
/// global pool afterwards, and returns both results.
template <typename T>
std::pair<T, T> AtOneAndFourThreads(const std::function<T()>& compute) {
  ThreadPool::SetGlobalThreads(1);
  T serial = compute();
  ThreadPool::SetGlobalThreads(4);
  T parallel = compute();
  ThreadPool::SetGlobalThreads(1);
  return {std::move(serial), std::move(parallel)};
}

TEST(ParallelDeterminismTest, MatMulVariants) {
  // Odd sizes exercise the unroll remainders and partial chunks.
  Matrix a = RandomMatrix(67, 45, 1);
  Matrix b = RandomMatrix(45, 33, 2);
  auto [s1, p1] = AtOneAndFourThreads<Matrix>([&] { return a.MatMul(b); });
  ExpectBitIdentical(s1, p1);

  Matrix c = RandomMatrix(67, 33, 3);
  auto [s2, p2] =
      AtOneAndFourThreads<Matrix>([&] { return a.TransposeMatMul(c); });
  ExpectBitIdentical(s2, p2);

  Matrix d = RandomMatrix(90, 45, 4);
  auto [s3, p3] =
      AtOneAndFourThreads<Matrix>([&] { return a.MatMulTranspose(d); });
  ExpectBitIdentical(s3, p3);
}

TEST(ParallelDeterminismTest, MatMulWithZerosMatchesSerial) {
  // The zero-skip fast path must not change results either.
  Matrix a = RandomMatrix(50, 40, 5);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); j += 3) a.At(i, j) = 0.0;
  }
  Matrix b = RandomMatrix(40, 21, 6);
  auto [s, p] = AtOneAndFourThreads<Matrix>([&] { return a.MatMul(b); });
  ExpectBitIdentical(s, p);
}

TEST(ParallelDeterminismTest, KMeans) {
  Matrix points = RandomMatrix(600, 8, 7);
  auto run = [&] {
    KMeansOptions opts;
    opts.max_iterations = 15;
    auto r = KMeans(points, 5, opts);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  };
  auto [s, p] = AtOneAndFourThreads<KMeansResult>(run);
  EXPECT_EQ(s.assignments, p.assignments);
  EXPECT_EQ(s.iterations, p.iterations);
  EXPECT_EQ(s.inertia, p.inertia);
  ExpectBitIdentical(s.centroids, p.centroids);

  auto [sa, pa] = AtOneAndFourThreads<std::vector<int>>(
      [&] { return AssignToCentroids(points, s.centroids); });
  EXPECT_EQ(sa, pa);
}

TEST(ParallelDeterminismTest, Conv2dForwardBackward) {
  TensorShape shape{2, 10, 10};
  auto run = [&] {
    Rng rng(8);
    Conv2dLayer conv(shape, 4, 3, 3, &rng);
    Matrix input = RandomMatrix(6, shape.FlatSize(), 9);
    Matrix out = conv.Forward(input);
    Matrix grad_out = RandomMatrix(out.rows(), out.cols(), 10);
    Matrix grad_in = conv.Backward(grad_out);
    std::vector<Matrix> all = {out, grad_in};
    for (Matrix* g : conv.Grads()) all.push_back(*g);
    return all;
  };
  auto [s, p] = AtOneAndFourThreads<std::vector<Matrix>>(run);
  ASSERT_EQ(s.size(), p.size());
  for (size_t i = 0; i < s.size(); ++i) ExpectBitIdentical(s[i], p[i]);
}

TEST(ParallelDeterminismTest, EnsemblePredictProba) {
  auto run = [&] {
    auto proto = MakeMlp(2, 2);
    MultiGranularityOptions opts;
    opts.long_window_batches = {2};
    MultiGranularityEnsemble ensemble(*proto, opts);
    Rng rng(11);
    for (int b = 0; b < 4; ++b) {  // Two rollovers: long member is active.
      Batch batch;
      batch.features = RandomMatrix(32, 2, 12 + b);
      batch.labels.resize(32);
      for (auto& y : batch.labels) y = static_cast<int>(rng.NextBelow(2));
      EXPECT_TRUE(ensemble.Train(batch).ok());
    }
    Matrix query = RandomMatrix(16, 2, 20);
    auto proba = ensemble.PredictProba(query);
    EXPECT_TRUE(proba.ok());
    return std::move(proba).value();
  };
  auto [s, p] = AtOneAndFourThreads<Matrix>(run);
  ExpectBitIdentical(s, p);
}

TEST(ParallelDeterminismTest, HoldsUnderEverySimdDispatchTarget) {
  // The contract is per dispatch target: scalar and AVX2 kernels each give
  // bit-identical results at any thread count (chunk layout depends only
  // on shape; per-element accumulation order is fixed inside each kernel).
  // Cross-target equality is NOT promised — that tolerance lives in
  // tests/test_simd.cc.
  Matrix a = RandomMatrix(61, 47, 31);
  Matrix b = RandomMatrix(47, 29, 32);
  Matrix points = RandomMatrix(300, 16, 33);
  const simd::DispatchTarget restore = simd::ActiveTarget();
  for (simd::DispatchTarget target :
       {simd::DispatchTarget::kScalar, simd::DispatchTarget::kAvx2}) {
    simd::ForceTarget(target);
    auto [s, p] = AtOneAndFourThreads<Matrix>([&] { return a.MatMul(b); });
    ExpectBitIdentical(s, p);
    auto [sk, pk] = AtOneAndFourThreads<KMeansResult>([&] {
      KMeansOptions opts;
      opts.max_iterations = 10;
      auto r = KMeans(points, 4, opts);
      EXPECT_TRUE(r.ok());
      return std::move(r).value();
    });
    EXPECT_EQ(sk.assignments, pk.assignments);
    ExpectBitIdentical(sk.centroids, pk.centroids);
  }
  simd::ForceTarget(restore);
}

}  // namespace
}  // namespace freeway
