#include "ingest/ingest_log.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fault/failpoint.h"
#include "ingest/dedup.h"

namespace freeway {
namespace {

namespace fs = std::filesystem;

Batch MakeBatch(uint64_t seed, int64_t index) {
  Rng rng(seed);
  Batch b;
  b.index = index;
  b.features = Matrix(4, 3);
  b.labels.resize(4);
  for (size_t i = 0; i < 4; ++i) {
    b.labels[i] = static_cast<int>(rng.NextBelow(2));
    for (size_t j = 0; j < 3; ++j) {
      b.features.At(i, j) = rng.Gaussian(b.labels[i] * 2.0, 0.5);
    }
  }
  return b;
}

IngestRecord MakeRecord(uint64_t client_id, uint64_t sequence,
                        uint64_t stream_id, int64_t batch_index) {
  IngestRecord record;
  record.client_id = client_id;
  record.sequence = sequence;
  record.stream_id = stream_id;
  record.tenant_id = 7;
  record.priority = 2;
  record.batch = MakeBatch(client_id * 1000 + sequence, batch_index);
  return record;
}

// ---------------------------------------------------------------------------
// DedupIndex

TEST(DedupIndexTest, WatermarkAdvanceAndDuplicate) {
  DedupIndex dedup;
  EXPECT_FALSE(dedup.IsDuplicate(1, 1));
  EXPECT_EQ(dedup.Watermark(1), 0u);
  dedup.Advance(1, 1);
  EXPECT_TRUE(dedup.IsDuplicate(1, 1));
  EXPECT_FALSE(dedup.IsDuplicate(1, 2));
  dedup.Advance(1, 5);
  EXPECT_TRUE(dedup.IsDuplicate(1, 3));
  EXPECT_EQ(dedup.Watermark(1), 5u);
  // Watermarks never retreat through Advance.
  dedup.Advance(1, 2);
  EXPECT_EQ(dedup.Watermark(1), 5u);
  // Different clients are independent.
  EXPECT_FALSE(dedup.IsDuplicate(2, 1));
  EXPECT_EQ(dedup.size(), 1u);
}

TEST(DedupIndexTest, UntrackedSubmitsBypass) {
  DedupIndex dedup;
  dedup.Advance(0, 9);
  dedup.Advance(9, 0);
  EXPECT_EQ(dedup.size(), 0u);
  EXPECT_FALSE(dedup.IsDuplicate(0, 1));
  EXPECT_FALSE(dedup.IsDuplicate(0, 0));
}

TEST(DedupIndexTest, RevertOnlyWhenCurrent) {
  DedupIndex dedup;
  dedup.Advance(3, 4);
  // Stale revert (watermark moved past it): no-op.
  EXPECT_FALSE(dedup.Revert(3, 3));
  EXPECT_EQ(dedup.Watermark(3), 4u);
  // Current revert retreats by one, so the client's retry is admitted.
  EXPECT_TRUE(dedup.Revert(3, 4));
  EXPECT_EQ(dedup.Watermark(3), 3u);
  EXPECT_FALSE(dedup.IsDuplicate(3, 4));
}

TEST(DedupIndexTest, SaveStateRoundTripsAndIsDeterministic) {
  DedupIndex dedup;
  for (uint64_t client = 1; client <= 40; ++client) {
    dedup.Advance(client, client * 13 + 1);
  }
  SnapshotWriter a;
  dedup.SaveState(&a);

  DedupIndex restored;
  restored.Advance(99, 7);  // LoadState must replace, not merge.
  SnapshotReader reader(a.buffer());
  ASSERT_TRUE(restored.LoadState(&reader).ok());
  EXPECT_EQ(restored.size(), 40u);
  EXPECT_EQ(restored.Watermark(99), 0u);
  for (uint64_t client = 1; client <= 40; ++client) {
    EXPECT_EQ(restored.Watermark(client), client * 13 + 1);
  }

  // Equal contents serialize to identical bytes (sorted entries), which is
  // what makes replayed-state comparisons in the chaos tests meaningful.
  SnapshotWriter b;
  restored.SaveState(&b);
  ASSERT_EQ(a.buffer().size(), b.buffer().size());
  EXPECT_EQ(std::memcmp(a.buffer().data(), b.buffer().data(),
                        a.buffer().size()),
            0);
}

// ---------------------------------------------------------------------------
// IngestLog

class IngestLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("freeway_ingest_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    failpoint::DisarmAll();
  }
  void TearDown() override {
    failpoint::DisarmAll();
    fs::remove_all(dir_);
  }

  IngestLogOptions Options(size_t segment_max_bytes = 4u << 20) {
    IngestLogOptions opts;
    opts.directory = dir_.string();
    opts.segment_max_bytes = segment_max_bytes;
    return opts;
  }

  std::vector<IngestRecord> ReplayAll(const IngestLog& log) {
    std::vector<IngestRecord> records;
    Status replayed = log.Replay([&records](const IngestRecord& record) {
      records.push_back(record);
      return Status::OK();
    });
    EXPECT_TRUE(replayed.ok()) << replayed;
    return records;
  }

  fs::path dir_;
};

TEST_F(IngestLogTest, AppendReplayRoundTripIsBitIdentical) {
  IngestLog log(Options());
  ASSERT_TRUE(log.Open(nullptr).ok());
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    Result<uint64_t> lsn = log.Append(MakeRecord(11, seq, 42, 100 + seq));
    ASSERT_TRUE(lsn.ok()) << lsn.status();
    EXPECT_EQ(*lsn, seq);  // LSNs are monotone from 1.
  }
  EXPECT_EQ(log.last_lsn(), 5u);

  const std::vector<IngestRecord> records = ReplayAll(log);
  ASSERT_EQ(records.size(), 5u);
  for (size_t i = 0; i < records.size(); ++i) {
    const IngestRecord& r = records[i];
    EXPECT_EQ(r.lsn, i + 1);
    EXPECT_EQ(r.client_id, 11u);
    EXPECT_EQ(r.sequence, i + 1);
    EXPECT_EQ(r.stream_id, 42u);
    EXPECT_EQ(r.tenant_id, 7u);
    EXPECT_EQ(r.priority, 2);
    const Batch expected = MakeBatch(11 * 1000 + (i + 1), 101 + i);
    EXPECT_EQ(r.batch.index, expected.index);
    EXPECT_EQ(r.batch.labels, expected.labels);
    ASSERT_EQ(r.batch.features.rows(), expected.features.rows());
    for (size_t row = 0; row < 4; ++row) {
      for (size_t col = 0; col < 3; ++col) {
        const double a = r.batch.features.At(row, col);
        const double b = expected.features.At(row, col);
        EXPECT_EQ(std::memcmp(&a, &b, sizeof(a)), 0);
      }
    }
  }
}

TEST_F(IngestLogTest, ReopenRebuildsWatermarksAndContinuesLsns) {
  {
    IngestLog log(Options());
    DedupIndex dedup;
    ASSERT_TRUE(log.Open(&dedup).ok());
    ASSERT_TRUE(log.Append(MakeRecord(1, 1, 5, 1)).ok());
    ASSERT_TRUE(log.Append(MakeRecord(1, 2, 5, 2)).ok());
    ASSERT_TRUE(log.Append(MakeRecord(2, 1, 6, 3)).ok());
  }
  IngestLog log(Options());
  DedupIndex dedup;
  ASSERT_TRUE(log.Open(&dedup).ok());
  EXPECT_EQ(dedup.Watermark(1), 2u);
  EXPECT_EQ(dedup.Watermark(2), 1u);
  EXPECT_EQ(log.last_lsn(), 3u);
  // 3 batch records + the watermark snapshot heading the segment.
  EXPECT_EQ(log.stats().recovered_records, 4u);
  // Appending resumes with fresh LSNs, and a duplicate check against the
  // rebuilt table sees the pre-restart watermarks.
  Result<uint64_t> lsn = log.Append(MakeRecord(1, 3, 5, 4));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 4u);
  EXPECT_TRUE(dedup.IsDuplicate(1, 2));
}

TEST_F(IngestLogTest, TornTailIsTruncatedAndAppendResumes) {
  fs::path segment;
  uintmax_t full_size = 0;
  {
    IngestLog log(Options());
    ASSERT_TRUE(log.Open(nullptr).ok());
    ASSERT_TRUE(log.Append(MakeRecord(1, 1, 5, 1)).ok());
    ASSERT_TRUE(log.Append(MakeRecord(1, 2, 5, 2)).ok());
    for (const auto& entry : fs::directory_iterator(dir_)) {
      segment = entry.path();
    }
    full_size = fs::file_size(segment);
  }
  // Tear the tail: the process "died" with the last record half-written.
  fs::resize_file(segment, full_size - 7);

  IngestLog log(Options());
  DedupIndex dedup;
  ASSERT_TRUE(log.Open(&dedup).ok());
  EXPECT_EQ(log.stats().recovered_records, 1u);
  EXPECT_GT(log.stats().torn_bytes_truncated, 0u);
  // The torn record is gone for good — its watermark never advanced...
  EXPECT_EQ(dedup.Watermark(1), 1u);
  ASSERT_EQ(ReplayAll(log).size(), 1u);
  // ...and its LSN is reused by the next append, keeping LSNs dense.
  Result<uint64_t> lsn = log.Append(MakeRecord(1, 2, 5, 2));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);
  EXPECT_EQ(ReplayAll(log).size(), 2u);
}

TEST_F(IngestLogTest, CorruptSealedSegmentFailsOpen) {
  {
    IngestLog log(Options());
    ASSERT_TRUE(log.Open(nullptr).ok());
    ASSERT_TRUE(log.Append(MakeRecord(1, 1, 5, 1)).ok());
    ASSERT_TRUE(log.Rotate().ok());
    ASSERT_TRUE(log.Append(MakeRecord(1, 2, 5, 2)).ok());
  }
  // Flip a payload bit in the *sealed* (first) segment: that is real
  // corruption, not a tear, and recovery must refuse to serve.
  fs::path sealed;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (sealed.empty() || entry.path() < sealed) sealed = entry.path();
  }
  {
    std::fstream file(sealed, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(-3, std::ios::end);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(-3, std::ios::end);
    byte = static_cast<char>(byte ^ 0x20);
    file.write(&byte, 1);
  }
  IngestLog log(Options());
  Status opened = log.Open(nullptr);
  ASSERT_FALSE(opened.ok());
}

TEST_F(IngestLogTest, RotationSnapshotsWatermarksForTruncation) {
  // Tiny segments force a rotation roughly every record.
  {
    IngestLog log(Options(/*segment_max_bytes=*/256));
    DedupIndex dedup;
    ASSERT_TRUE(log.Open(&dedup).ok());
    for (uint64_t seq = 1; seq <= 6; ++seq) {
      ASSERT_TRUE(log.Append(MakeRecord(3, seq, 9, 20 + seq)).ok());
    }
    EXPECT_GT(log.stats().rotations, 0u);
    EXPECT_GT(log.stats().segments, 1u);
    // Drop everything sealed before LSN 4. The survivors' head segments
    // carry watermark snapshots, so no history is lost.
    ASSERT_TRUE(log.TruncateBefore(4).ok());
    EXPECT_GT(log.stats().segments_pruned, 0u);
  }
  IngestLog log(Options(/*segment_max_bytes=*/256));
  DedupIndex dedup;
  ASSERT_TRUE(log.Open(&dedup).ok());
  // The full watermark survives even though early batch records are gone.
  EXPECT_EQ(dedup.Watermark(3), 6u);
  EXPECT_EQ(log.last_lsn(), 6u);
  const std::vector<IngestRecord> records = ReplayAll(log);
  ASSERT_FALSE(records.empty());
  EXPECT_LT(records.size(), 6u);  // Truncation really dropped segments.
  EXPECT_EQ(records.back().lsn, 6u);
}

TEST_F(IngestLogTest, RevertedRecordsAreSkippedOnReplayAndRecovery) {
  {
    IngestLog log(Options());
    DedupIndex dedup;
    ASSERT_TRUE(log.Open(&dedup).ok());
    ASSERT_TRUE(log.Append(MakeRecord(4, 1, 2, 1)).ok());
    dedup.Advance(4, 1);
    Result<uint64_t> lsn = log.Append(MakeRecord(4, 2, 2, 2));
    ASSERT_TRUE(lsn.ok());
    dedup.Advance(4, 2);
    // Admission rejected the second batch: watermark retreats and the log
    // records the cancellation.
    ASSERT_TRUE(dedup.Revert(4, 2));
    ASSERT_TRUE(log.AppendRevert(*lsn, 4, 2).ok());
    const std::vector<IngestRecord> records = ReplayAll(log);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].sequence, 1u);
  }
  IngestLog log(Options());
  DedupIndex dedup;
  ASSERT_TRUE(log.Open(&dedup).ok());
  // Recovery honours the revert: the client's retry of sequence 2 must not
  // be treated as a duplicate.
  EXPECT_EQ(dedup.Watermark(4), 1u);
  EXPECT_FALSE(dedup.IsDuplicate(4, 2));
  ASSERT_EQ(ReplayAll(log).size(), 1u);
}

TEST_F(IngestLogTest, ReadOnlyOpenReplaysButNeverWrites) {
  {
    IngestLog log(Options());
    ASSERT_TRUE(log.Open(nullptr).ok());
    ASSERT_TRUE(log.Append(MakeRecord(1, 1, 5, 1)).ok());
  }
  IngestLogOptions opts = Options();
  opts.read_only = true;
  IngestLog log(opts);
  ASSERT_TRUE(log.Open(nullptr).ok());
  ASSERT_EQ(ReplayAll(log).size(), 1u);
  EXPECT_FALSE(log.Append(MakeRecord(1, 2, 5, 2)).ok());
  EXPECT_FALSE(log.Rotate().ok());
}

TEST_F(IngestLogTest, ReadOnlyOpenOfMissingDirectoryIsEmpty) {
  IngestLogOptions opts = Options();
  opts.read_only = true;
  IngestLog log(opts);
  ASSERT_TRUE(log.Open(nullptr).ok());
  EXPECT_EQ(log.last_lsn(), 0u);
  EXPECT_TRUE(ReplayAll(log).empty());
}

TEST_F(IngestLogTest, AppendFailpointInjectsCleanly) {
  IngestLog log(Options());
  ASSERT_TRUE(log.Open(nullptr).ok());
  failpoint::Arm("ingest.append", {StatusCode::kIoError, "disk gone", 0, 1});
  Result<uint64_t> lsn = log.Append(MakeRecord(1, 1, 5, 1));
  ASSERT_FALSE(lsn.ok());
  EXPECT_EQ(lsn.status().code(), StatusCode::kIoError);
  // The failure consumed no LSN and left the log usable.
  Result<uint64_t> retry = log.Append(MakeRecord(1, 1, 5, 1));
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(*retry, 1u);
}

}  // namespace
}  // namespace freeway
