#include "core/exp_buffer.h"

#include <gtest/gtest.h>

#include "fault/snapshot.h"
#include "obs/metrics.h"

namespace freeway {
namespace {

Batch SimpleBatch(size_t n, size_t dim, double fill, int label,
                  int64_t index) {
  Batch b;
  b.index = index;
  b.features = Matrix(n, dim, fill);
  b.labels.assign(n, label);
  return b;
}

TEST(ExpBufferTest, StartsEmpty) {
  ExpBuffer buffer(16);
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_FALSE(buffer.Snapshot().ok());
}

TEST(ExpBufferTest, AddAndSnapshot) {
  ExpBuffer buffer(16);
  ASSERT_TRUE(buffer.Add(SimpleBatch(4, 3, 1.0, 2, 0)).ok());
  EXPECT_EQ(buffer.size(), 4u);
  auto snap = buffer.Snapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->size(), 4u);
  EXPECT_EQ(snap->dim(), 3u);
  EXPECT_EQ(snap->labels, (std::vector<int>{2, 2, 2, 2}));
}

TEST(ExpBufferTest, CapacityKeepsNewest) {
  ExpBuffer buffer(6);
  ASSERT_TRUE(buffer.Add(SimpleBatch(4, 2, 1.0, 0, 0)).ok());
  ASSERT_TRUE(buffer.Add(SimpleBatch(4, 2, 2.0, 1, 1)).ok());
  EXPECT_EQ(buffer.size(), 6u);
  auto snap = buffer.Snapshot();
  ASSERT_TRUE(snap.ok());
  // Oldest two samples (fill 1.0, label 0) displaced.
  EXPECT_EQ(snap->labels, (std::vector<int>{0, 0, 1, 1, 1, 1}));
  EXPECT_DOUBLE_EQ(snap->features.At(5, 0), 2.0);
}

TEST(ExpBufferTest, RejectsUnlabeledAndDimMismatch) {
  ExpBuffer buffer(16);
  Batch unlabeled;
  unlabeled.features = Matrix(2, 3);
  EXPECT_FALSE(buffer.Add(unlabeled).ok());

  ASSERT_TRUE(buffer.Add(SimpleBatch(2, 3, 0.0, 0, 0)).ok());
  EXPECT_FALSE(buffer.Add(SimpleBatch(2, 4, 0.0, 0, 1)).ok());
}

TEST(ExpBufferTest, ExpirationByAge) {
  ExpBuffer buffer(100, /*max_age_batches=*/3);
  ASSERT_TRUE(buffer.Add(SimpleBatch(2, 2, 1.0, 0, 0)).ok());
  ASSERT_TRUE(buffer.Add(SimpleBatch(2, 2, 2.0, 1, 1)).ok());
  EXPECT_EQ(buffer.size(), 4u);
  // Batch index 4: samples from batch 0 (age 4 > 3) expire; batch 1
  // (age 3) survives.
  ASSERT_TRUE(buffer.Add(SimpleBatch(2, 2, 3.0, 0, 4)).ok());
  auto snap = buffer.Snapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->size(), 4u);  // Batch-0 pair gone; batches 1 and 4 remain.
  EXPECT_EQ(snap->labels, (std::vector<int>{1, 1, 0, 0}));
}

TEST(ExpBufferTest, NoExpirationWhenDisabled) {
  ExpBuffer buffer(100, /*max_age_batches=*/0);
  ASSERT_TRUE(buffer.Add(SimpleBatch(2, 2, 1.0, 0, 0)).ok());
  ASSERT_TRUE(buffer.Add(SimpleBatch(2, 2, 2.0, 1, 1000)).ok());
  EXPECT_EQ(buffer.size(), 4u);
}

TEST(ExpBufferTest, CapacityInvariantHoldsAcrossManyAdds) {
  // EnforceCapacity's Status now propagates through Add; on the success
  // path the buffer must never exceed its capacity, whatever mix of batch
  // sizes arrives.
  ExpBuffer buffer(10);
  for (int i = 0; i < 20; ++i) {
    const size_t n = 1 + static_cast<size_t>(i % 7);
    ASSERT_TRUE(buffer.Add(SimpleBatch(n, 2, 1.0 * i, i % 2, i)).ok());
    EXPECT_LE(buffer.size(), 10u) << "after add " << i;
  }
  EXPECT_EQ(buffer.size(), 10u);
}

TEST(ExpBufferTest, TrimErrorCounterStaysZeroOnHealthyTraffic) {
  MetricsRegistry registry;
  Counter* trim_errors =
      registry.GetCounter("freeway_expbuffer_trim_errors_total");
  ExpBuffer buffer(6);
  buffer.set_trim_errors_counter(trim_errors);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(buffer.Add(SimpleBatch(4, 2, 1.0 * i, 0, i)).ok());
  }
  // Plenty of trims happened (capacity 6, 32 samples offered), all clean.
  EXPECT_EQ(buffer.size(), 6u);
  EXPECT_EQ(trim_errors->Value(), 0u);
}

TEST(ExpBufferTest, SaveLoadStateRoundTrips) {
  ExpBuffer original(16);
  ASSERT_TRUE(original.Add(SimpleBatch(4, 3, 1.0, 0, 0)).ok());
  ASSERT_TRUE(original.Add(SimpleBatch(4, 3, 2.0, 1, 1)).ok());
  SnapshotWriter writer;
  original.SaveState(&writer);

  ExpBuffer restored(16);
  SnapshotReader reader(writer.buffer());
  ASSERT_TRUE(restored.LoadState(&reader).ok());
  EXPECT_EQ(restored.size(), original.size());
  auto a = original.Snapshot();
  auto b = restored.Snapshot();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->labels, b->labels);
  for (size_t i = 0; i < a->features.rows(); ++i) {
    for (size_t j = 0; j < a->features.cols(); ++j) {
      EXPECT_EQ(a->features.At(i, j), b->features.At(i, j));
    }
  }
}

TEST(ExpBufferTest, RestoreIntoSmallerBufferEnforcesCapacity) {
  // Snapshot taken by a buffer holding 12 samples...
  ExpBuffer big(16);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(big.Add(SimpleBatch(4, 2, 1.0 * i, i % 2, i)).ok());
  }
  ASSERT_EQ(big.size(), 12u);
  SnapshotWriter writer;
  big.SaveState(&writer);

  // ...restored into a buffer configured for 6: the restore itself trims
  // down to capacity (keeping the newest experience) instead of leaving an
  // over-full buffer behind.
  ExpBuffer small(6);
  SnapshotReader reader(writer.buffer());
  ASSERT_TRUE(small.LoadState(&reader).ok());
  EXPECT_EQ(small.size(), 6u);
  auto snap = small.Snapshot();
  ASSERT_TRUE(snap.ok());
  // The oldest batch (fill 0.0) was dropped; the newest (fill 2.0) stayed.
  EXPECT_EQ(snap->features.At(snap->features.rows() - 1, 0), 2.0);
}

TEST(ExpBufferTest, LoadStateRejectsUnlabeledBatches) {
  SnapshotWriter writer;
  Batch unlabeled;
  unlabeled.index = 0;
  unlabeled.features = Matrix(4, 2, 1.0);
  writer.WriteSection(0x45585042);     // 'EXPB'
  writer.WriteU64(1);                  // One batch follows...
  writer.WriteBatch(unlabeled);        // ...but it carries no labels.
  ExpBuffer buffer(16);
  SnapshotReader reader(writer.buffer());
  EXPECT_FALSE(buffer.LoadState(&reader).ok());
}

}  // namespace
}  // namespace freeway
