#include "core/exp_buffer.h"

#include <gtest/gtest.h>

namespace freeway {
namespace {

Batch SimpleBatch(size_t n, size_t dim, double fill, int label,
                  int64_t index) {
  Batch b;
  b.index = index;
  b.features = Matrix(n, dim, fill);
  b.labels.assign(n, label);
  return b;
}

TEST(ExpBufferTest, StartsEmpty) {
  ExpBuffer buffer(16);
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_FALSE(buffer.Snapshot().ok());
}

TEST(ExpBufferTest, AddAndSnapshot) {
  ExpBuffer buffer(16);
  ASSERT_TRUE(buffer.Add(SimpleBatch(4, 3, 1.0, 2, 0)).ok());
  EXPECT_EQ(buffer.size(), 4u);
  auto snap = buffer.Snapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->size(), 4u);
  EXPECT_EQ(snap->dim(), 3u);
  EXPECT_EQ(snap->labels, (std::vector<int>{2, 2, 2, 2}));
}

TEST(ExpBufferTest, CapacityKeepsNewest) {
  ExpBuffer buffer(6);
  ASSERT_TRUE(buffer.Add(SimpleBatch(4, 2, 1.0, 0, 0)).ok());
  ASSERT_TRUE(buffer.Add(SimpleBatch(4, 2, 2.0, 1, 1)).ok());
  EXPECT_EQ(buffer.size(), 6u);
  auto snap = buffer.Snapshot();
  ASSERT_TRUE(snap.ok());
  // Oldest two samples (fill 1.0, label 0) displaced.
  EXPECT_EQ(snap->labels, (std::vector<int>{0, 0, 1, 1, 1, 1}));
  EXPECT_DOUBLE_EQ(snap->features.At(5, 0), 2.0);
}

TEST(ExpBufferTest, RejectsUnlabeledAndDimMismatch) {
  ExpBuffer buffer(16);
  Batch unlabeled;
  unlabeled.features = Matrix(2, 3);
  EXPECT_FALSE(buffer.Add(unlabeled).ok());

  ASSERT_TRUE(buffer.Add(SimpleBatch(2, 3, 0.0, 0, 0)).ok());
  EXPECT_FALSE(buffer.Add(SimpleBatch(2, 4, 0.0, 0, 1)).ok());
}

TEST(ExpBufferTest, ExpirationByAge) {
  ExpBuffer buffer(100, /*max_age_batches=*/3);
  ASSERT_TRUE(buffer.Add(SimpleBatch(2, 2, 1.0, 0, 0)).ok());
  ASSERT_TRUE(buffer.Add(SimpleBatch(2, 2, 2.0, 1, 1)).ok());
  EXPECT_EQ(buffer.size(), 4u);
  // Batch index 4: samples from batch 0 (age 4 > 3) expire; batch 1
  // (age 3) survives.
  ASSERT_TRUE(buffer.Add(SimpleBatch(2, 2, 3.0, 0, 4)).ok());
  auto snap = buffer.Snapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->size(), 4u);  // Batch-0 pair gone; batches 1 and 4 remain.
  EXPECT_EQ(snap->labels, (std::vector<int>{1, 1, 0, 0}));
}

TEST(ExpBufferTest, NoExpirationWhenDisabled) {
  ExpBuffer buffer(100, /*max_age_batches=*/0);
  ASSERT_TRUE(buffer.Add(SimpleBatch(2, 2, 1.0, 0, 0)).ok());
  ASSERT_TRUE(buffer.Add(SimpleBatch(2, 2, 2.0, 1, 1000)).ok());
  EXPECT_EQ(buffer.size(), 4u);
}

TEST(ExpBufferTest, CapacityInvariantHoldsAcrossManyAdds) {
  // EnforceCapacity's Status now propagates through Add; on the success
  // path the buffer must never exceed its capacity, whatever mix of batch
  // sizes arrives.
  ExpBuffer buffer(10);
  for (int i = 0; i < 20; ++i) {
    const size_t n = 1 + static_cast<size_t>(i % 7);
    ASSERT_TRUE(buffer.Add(SimpleBatch(n, 2, 1.0 * i, i % 2, i)).ok());
    EXPECT_LE(buffer.size(), 10u) << "after add " << i;
  }
  EXPECT_EQ(buffer.size(), 10u);
}

TEST(ExpBufferTest, TrimErrorCounterStaysZeroOnHealthyTraffic) {
  MetricsRegistry registry;
  Counter* trim_errors =
      registry.GetCounter("freeway_expbuffer_trim_errors_total");
  ExpBuffer buffer(6);
  buffer.set_trim_errors_counter(trim_errors);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(buffer.Add(SimpleBatch(4, 2, 1.0 * i, 0, i)).ok());
  }
  // Plenty of trims happened (capacity 6, 32 samples offered), all clean.
  EXPECT_EQ(buffer.size(), 6u);
  EXPECT_EQ(trim_errors->Value(), 0u);
}

}  // namespace
}  // namespace freeway
