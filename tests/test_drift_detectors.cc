#include "detectors/drift_detectors.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace freeway {
namespace {

/// Feeds a Bernoulli error stream at `rate` for `n` samples; returns the
/// number of drift signals raised.
size_t FeedErrors(DriftDetector* detector, double rate, size_t n, Rng* rng,
                  size_t* warnings = nullptr) {
  size_t drifts = 0;
  for (size_t i = 0; i < n; ++i) {
    const DriftState state =
        detector->Add(rng->Bernoulli(rate) ? 1.0 : 0.0);
    if (state == DriftState::kDrift) ++drifts;
    if (warnings != nullptr && state == DriftState::kWarning) ++*warnings;
  }
  return drifts;
}

class DetectorByName : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(All, DetectorByName,
                         ::testing::Values("DDM", "EDDM", "PageHinkley",
                                           "ADWIN"));

TEST_P(DetectorByName, FactoryBuildsAndNameMatches) {
  auto detector = MakeDriftDetector(GetParam());
  ASSERT_NE(detector, nullptr);
  EXPECT_EQ(detector->name(), GetParam());
}

TEST_P(DetectorByName, StableStreamRaisesNoOrFewDrifts) {
  auto detector = MakeDriftDetector(GetParam());
  Rng rng(7);
  const size_t drifts = FeedErrors(detector.get(), 0.10, 3000, &rng);
  // A constant error rate must not look like concept drift.
  EXPECT_LE(drifts, 1u) << GetParam();
}

TEST_P(DetectorByName, ErrorSurgeIsDetected) {
  auto detector = MakeDriftDetector(GetParam());
  Rng rng(9);
  // EDDM in particular is known to be trigger-happy at low error rates;
  // tolerate a stray pre-change signal, the claim under test is the surge.
  EXPECT_LE(FeedErrors(detector.get(), 0.05, 1500, &rng), 1u) << GetParam();
  // Error rate jumps 0.05 -> 0.6: every detector must fire within 1500
  // post-change samples.
  const size_t drifts = FeedErrors(detector.get(), 0.60, 1500, &rng);
  EXPECT_GE(drifts, 1u) << GetParam();
}

TEST_P(DetectorByName, ResetsAfterDriftAndKeepsWorking) {
  auto detector = MakeDriftDetector(GetParam());
  Rng rng(11);
  FeedErrors(detector.get(), 0.05, 1200, &rng);
  FeedErrors(detector.get(), 0.70, 1200, &rng);  // Triggers + self-resets.
  // A fresh stable regime must again be quiet...
  EXPECT_LE(FeedErrors(detector.get(), 0.05, 1500, &rng), 1u) << GetParam();
  // ...and a second surge must again be caught.
  EXPECT_GE(FeedErrors(detector.get(), 0.70, 1500, &rng), 1u) << GetParam();
}

TEST(DdmTest, WarningPrecedesOrAccompaniesDrift) {
  DdmDetector detector;
  Rng rng(13);
  size_t warnings = 0;
  FeedErrors(&detector, 0.05, 1000, &rng, &warnings);
  const size_t stable_warnings = warnings;
  FeedErrors(&detector, 0.40, 1000, &rng, &warnings);
  EXPECT_GE(warnings, stable_warnings);
}

TEST(PageHinkleyTest, GradualDriftDetected) {
  PageHinkleyDetector detector(0.005, 25.0);
  Rng rng(17);
  size_t drifts = 0;
  double rate = 0.05;
  for (int i = 0; i < 6000; ++i) {
    rate = std::min(0.6, rate + 0.0002);  // Slow ramp.
    if (detector.Add(rng.Bernoulli(rate) ? 1.0 : 0.0) ==
        DriftState::kDrift) {
      ++drifts;
    }
  }
  EXPECT_GE(drifts, 1u);
}

TEST(AdwinTest, WindowShrinksOnDrift) {
  AdwinDetector detector(0.002, 4096, 32);
  Rng rng(19);
  for (int i = 0; i < 2000; ++i) {
    detector.Add(rng.Bernoulli(0.05) ? 1.0 : 0.0);
  }
  const size_t before = detector.window_size();
  size_t drifts = 0;
  for (int i = 0; i < 2000; ++i) {
    if (detector.Add(rng.Bernoulli(0.7) ? 1.0 : 0.0) == DriftState::kDrift) {
      ++drifts;
    }
  }
  EXPECT_GE(drifts, 1u);
  // After the cut the window holds (mostly) post-change data.
  EXPECT_LT(detector.window_size(), before + 2000);
}

TEST(AdwinTest, WindowIsBounded) {
  AdwinDetector detector(0.002, /*max_window=*/256, 32);
  Rng rng(23);
  for (int i = 0; i < 5000; ++i) {
    detector.Add(rng.Bernoulli(0.1) ? 1.0 : 0.0);
  }
  EXPECT_LE(detector.window_size(), 256u);
}

TEST(DriftStateTest, Names) {
  EXPECT_STREQ(DriftStateName(DriftState::kStable), "stable");
  EXPECT_STREQ(DriftStateName(DriftState::kWarning), "warning");
  EXPECT_STREQ(DriftStateName(DriftState::kDrift), "drift");
}

TEST(FactoryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeDriftDetector("NoSuchDetector"), nullptr);
}

}  // namespace
}  // namespace freeway
