#include "stream/batch_codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

namespace freeway {
namespace {

Batch SpecialValueBatch() {
  Batch b;
  b.index = 31;
  b.features = Matrix(3, 4);
  b.labels = {0, 1, 2};
  const double specials[] = {std::nan(""),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             -0.0};
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      b.features.At(i, j) = specials[(i * 4 + j) % 4] * (i + 1.0);
    }
  }
  return b;
}

TEST(BatchCodecTest, Crc32MatchesKnownVector) {
  // The canonical IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  // Chaining over split ranges equals one pass.
  const uint32_t first = Crc32("12345", 5);
  EXPECT_EQ(Crc32("6789", 4, first), 0xCBF43926u);
}

TEST(BatchCodecTest, BatchRoundTripIsBitIdentical) {
  const Batch original = SpecialValueBatch();
  SnapshotWriter writer;
  writer.WriteBatch(original);

  SnapshotReader reader(writer.buffer());
  Batch decoded;
  ASSERT_TRUE(reader.ReadBatch(&decoded).ok());
  ASSERT_TRUE(reader.ExpectEnd().ok());
  EXPECT_EQ(decoded.index, original.index);
  EXPECT_EQ(decoded.labels, original.labels);
  ASSERT_EQ(decoded.features.rows(), original.features.rows());
  ASSERT_EQ(decoded.features.cols(), original.features.cols());
  for (size_t i = 0; i < original.features.rows(); ++i) {
    for (size_t j = 0; j < original.features.cols(); ++j) {
      const double a = original.features.At(i, j);
      const double b = decoded.features.At(i, j);
      // memcmp, not ==: NaN != NaN and -0.0 == +0.0 would both lie here.
      EXPECT_EQ(std::memcmp(&a, &b, sizeof(a)), 0) << i << "," << j;
    }
  }
}

TEST(BatchCodecTest, UnlabeledBatchRoundTrips) {
  Batch b;
  b.index = 7;
  b.features = Matrix(2, 2);
  SnapshotWriter writer;
  writer.WriteBatch(b);
  SnapshotReader reader(writer.buffer());
  Batch decoded;
  ASSERT_TRUE(reader.ReadBatch(&decoded).ok());
  EXPECT_FALSE(decoded.labeled());
  EXPECT_EQ(decoded.features.rows(), 2u);
}

TEST(BatchCodecTest, EveryTruncationFailsCleanly) {
  SnapshotWriter writer;
  writer.WriteBatch(SpecialValueBatch());
  const std::vector<char>& full = writer.buffer();
  // A decode of any strict prefix must fail with a clean error — no crash,
  // no partially-populated success.
  for (size_t keep = 0; keep < full.size(); ++keep) {
    SnapshotReader reader(std::span<const char>(full.data(), keep));
    Batch decoded;
    const Status status = reader.ReadBatch(&decoded);
    EXPECT_FALSE(status.ok()) << "prefix of " << keep << " bytes decoded";
  }
}

TEST(BatchCodecTest, CorruptLengthDoesNotOverAllocate) {
  SnapshotWriter writer;
  writer.WriteBatch(SpecialValueBatch());
  std::vector<char> bytes = writer.buffer();
  // Overwrite an embedded length with an absurd element count; the reader
  // must reject it against the bytes actually present instead of trying to
  // allocate.
  const uint64_t absurd = ~uint64_t{0} / 2;
  for (size_t at = 0; at + sizeof(absurd) <= bytes.size();
       at += sizeof(absurd)) {
    std::vector<char> corrupt = bytes;
    std::memcpy(corrupt.data() + at, &absurd, sizeof(absurd));
    SnapshotReader reader(corrupt);
    Batch decoded;
    // Either a clean failure or — when the stomped bytes were not a length
    // field — a successful decode of garbage values; never a crash.
    (void)reader.ReadBatch(&decoded);
  }
}

TEST(BatchCodecTest, SectionMismatchIsDetected) {
  SnapshotWriter writer;
  writer.WriteSection(0x1111);
  writer.WriteU32(5);
  SnapshotReader reader(writer.buffer());
  EXPECT_FALSE(reader.ExpectSection(0x2222).ok());
}

TEST(BatchCodecTest, TrailingGarbageIsDetected) {
  SnapshotWriter writer;
  writer.WriteU32(1);
  writer.WriteU32(2);
  SnapshotReader reader(writer.buffer());
  uint32_t value = 0;
  ASSERT_TRUE(reader.ReadU32(&value).ok());
  EXPECT_FALSE(reader.ExpectEnd().ok());
  EXPECT_EQ(reader.remaining(), 4u);
}

TEST(BatchCodecTest, ScalarAndVectorRoundTrips) {
  SnapshotWriter writer;
  writer.WriteString("drift");
  writer.WriteDoubleVec({1.5, std::nan(""), -2.5});
  writer.WriteIntVec({3, -4, 5});
  writer.WriteBool(true);
  writer.WriteI64(-9);

  SnapshotReader reader(writer.buffer());
  std::string s;
  std::vector<double> dv;
  std::vector<int> iv;
  bool flag = false;
  int64_t i64 = 0;
  ASSERT_TRUE(reader.ReadString(&s).ok());
  ASSERT_TRUE(reader.ReadDoubleVec(&dv).ok());
  ASSERT_TRUE(reader.ReadIntVec(&iv).ok());
  ASSERT_TRUE(reader.ReadBool(&flag).ok());
  ASSERT_TRUE(reader.ReadI64(&i64).ok());
  ASSERT_TRUE(reader.ExpectEnd().ok());
  EXPECT_EQ(s, "drift");
  ASSERT_EQ(dv.size(), 3u);
  EXPECT_DOUBLE_EQ(dv[0], 1.5);
  EXPECT_TRUE(std::isnan(dv[1]));
  EXPECT_EQ(iv, (std::vector<int>{3, -4, 5}));
  EXPECT_TRUE(flag);
  EXPECT_EQ(i64, -9);
}

}  // namespace
}  // namespace freeway
