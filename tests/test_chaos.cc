/// Deterministic chaos tests for the fault-tolerance layer: failpoint-driven
/// shard kills, poison-batch quarantine, checkpoint/restore equivalence, and
/// exact accounting reconciliation. On failure each test dumps its dead
/// letters under fault_artifacts/ (uploaded by CI) for post-mortem.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "fault/checkpoint.h"
#include "fault/failpoint.h"
#include "ml/models.h"
#include "runtime/stream_runtime.h"

namespace freeway {
namespace {

namespace fs = std::filesystem;

Batch MakeBatch(bool labeled, uint64_t seed, int64_t index) {
  Rng rng(seed);
  Batch b;
  b.index = index;
  b.features = Matrix(16, 4);
  if (labeled) b.labels.resize(16);
  for (size_t i = 0; i < 16; ++i) {
    const int label = static_cast<int>(rng.NextBelow(2));
    if (labeled) b.labels[i] = label;
    for (size_t j = 0; j < 4; ++j) {
      b.features.At(i, j) = rng.Gaussian(label * 2.0, 0.5);
    }
  }
  return b;
}

/// A labeled batch the learner rejects on every attempt (NaN feature): the
/// canonical poison batch.
Batch PoisonBatch(int64_t index) {
  Batch b = MakeBatch(true, 1234, index);
  b.features.At(0, 0) = std::nan("");
  return b;
}

/// Deterministic pipeline options: small windows, wall-clock-driven rate
/// adjuster off (its EMA depends on real elapsed time, which no two runs
/// share), synchronous long-model updates (the default).
PipelineOptions DeterministicPipeline() {
  PipelineOptions opts;
  opts.learner.base_window_batches = 4;
  opts.learner.detector.warmup_batches = 3;
  opts.enable_rate_adjuster = false;
  return opts;
}

void ExpectReportsBitIdentical(const InferenceReport& a,
                               const InferenceReport& b) {
  EXPECT_EQ(a.strategy, b.strategy);
  ASSERT_EQ(a.predictions.size(), b.predictions.size());
  EXPECT_EQ(a.predictions, b.predictions);
  ASSERT_EQ(a.proba.rows(), b.proba.rows());
  ASSERT_EQ(a.proba.cols(), b.proba.cols());
  for (size_t i = 0; i < a.proba.rows(); ++i) {
    for (size_t j = 0; j < a.proba.cols(); ++j) {
      // Exact double equality: the round trip must be bit-identical.
      EXPECT_EQ(a.proba.At(i, j), b.proba.At(i, j))
          << "proba(" << i << ", " << j << ")";
    }
  }
  EXPECT_EQ(a.assessment.distance, b.assessment.distance);
  EXPECT_EQ(a.assessment.m_score, b.assessment.m_score);
  EXPECT_EQ(a.assessment.pattern, b.assessment.pattern);
}

/// Per-test scratch directory + failpoint hygiene + dead-letter forensics.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string test_name = ::testing::UnitTest::GetInstance()
                                      ->current_test_info()
                                      ->name();
    dir_ = fs::path(::testing::TempDir()) / ("freeway_chaos_" + test_name);
    fs::remove_all(dir_);
    failpoint::DisarmAll();
  }

  void TearDown() override {
    failpoint::DisarmAll();
    if (HasFailure() && !dead_letters_.empty()) DumpArtifacts();
    fs::remove_all(dir_);
  }

  RuntimeOptions FaultyRuntimeOptions() {
    RuntimeOptions opts;
    opts.pipeline = DeterministicPipeline();
    opts.forward_rate_signal = false;
    opts.fault.enabled = true;
    opts.fault.checkpoint_dir = (dir_ / "ckpt").string();
    opts.fault.checkpoint_interval_batches = 4;
    opts.fault.max_batch_retries = 2;
    opts.fault.backoff_initial_micros = 10;  // Fast tests.
    opts.fault.backoff_max_micros = 100;
    return opts;
  }

  /// Records the runtime's dead letters for assertions and, on failure, for
  /// the artifact dump.
  std::vector<DeadLetter> CollectDeadLetters(StreamRuntime* runtime) {
    dead_letters_ = runtime->TakeDeadLetters();
    return dead_letters_;
  }

  /// Writes a forensic summary of the quarantined batches where CI picks
  /// artifacts up (fault_artifacts/ under the test's working directory).
  void DumpArtifacts() const {
    const std::string test_name = ::testing::UnitTest::GetInstance()
                                      ->current_test_info()
                                      ->name();
    fs::create_directories("fault_artifacts");
    std::ofstream out("fault_artifacts/" + test_name + ".dead_letters.txt");
    out << "test: " << test_name << "\n"
        << "dead_letters: " << dead_letters_.size() << "\n";
    for (const DeadLetter& letter : dead_letters_) {
      out << "- stream=" << letter.stream_id << " shard=" << letter.shard
          << " batch_index=" << letter.batch.index
          << " rows=" << letter.batch.features.rows()
          << " labeled=" << (letter.batch.labeled() ? 1 : 0)
          << " attempts=" << letter.attempts << " error=\""
          << letter.error.ToString() << "\"\n";
    }
  }

  fs::path dir_;
  std::vector<DeadLetter> dead_letters_;
};

// ---------------------------------------------------------------------------
// Checkpoint round-trip equivalence

TEST_F(ChaosTest, PipelineSnapshotRestoreIsBitIdentical) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline original(*proto, DeterministicPipeline());
  for (int b = 0; b < 10; ++b) {
    ASSERT_TRUE(original.Push(MakeBatch(b % 3 != 2, b, b)).ok());
  }

  std::vector<char> payload;
  ASSERT_TRUE(original.Snapshot(&payload).ok());
  ASSERT_FALSE(payload.empty());

  StreamPipeline restored(*proto, DeterministicPipeline());
  ASSERT_TRUE(restored.Restore(payload).ok());
  EXPECT_EQ(restored.batches_processed(), original.batches_processed());
  EXPECT_EQ(restored.learner().stats().batches_trained,
            original.learner().stats().batches_trained);

  // Replay an identical tail through both pipelines: every inference report
  // must match bit for bit (predictions AND probabilities).
  for (int b = 10; b < 18; ++b) {
    const bool labeled = b % 2 == 0;
    Batch tail = MakeBatch(labeled, 1000 + b, b);
    auto from_original = original.Push(tail);
    auto from_restored = restored.Push(tail);
    ASSERT_TRUE(from_original.ok());
    ASSERT_TRUE(from_restored.ok());
    ASSERT_EQ(from_original->has_value(), from_restored->has_value());
    if (from_original->has_value()) {
      ExpectReportsBitIdentical(**from_original, **from_restored);
    }
  }
  EXPECT_EQ(restored.batches_processed(), original.batches_processed());
}

TEST_F(ChaosTest, SnapshotSurvivesCheckpointStoreRoundTrip) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline original(*proto, DeterministicPipeline());
  for (int b = 0; b < 8; ++b) {
    ASSERT_TRUE(original.Push(MakeBatch(true, b, b)).ok());
  }
  std::vector<char> payload;
  ASSERT_TRUE(original.Snapshot(&payload).ok());

  CheckpointStoreOptions store_opts;
  store_opts.directory = (dir_ / "store").string();
  store_opts.fsync = false;
  CheckpointStore store(store_opts);
  ASSERT_TRUE(store.Write("pipeline", payload).ok());
  auto reloaded = store.ReadLatest("pipeline");
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(*reloaded, payload);  // Byte-for-byte through the disk format.

  StreamPipeline restored(*proto, DeterministicPipeline());
  ASSERT_TRUE(restored.Restore(*reloaded).ok());
  Batch probe = MakeBatch(false, 777, 8);
  auto from_original = original.Push(probe);
  auto from_restored = restored.Push(probe);
  ASSERT_TRUE(from_original.ok() && from_restored.ok());
  ASSERT_TRUE(from_original->has_value() && from_restored->has_value());
  ExpectReportsBitIdentical(**from_original, **from_restored);
}

TEST_F(ChaosTest, CorruptSnapshotsAreRejectedNotPartiallyApplied) {
  auto proto = MakeLogisticRegression(4, 2);
  StreamPipeline original(*proto, DeterministicPipeline());
  for (int b = 0; b < 6; ++b) {
    ASSERT_TRUE(original.Push(MakeBatch(true, b, b)).ok());
  }
  std::vector<char> payload;
  ASSERT_TRUE(original.Snapshot(&payload).ok());

  // Truncations at a spread of prefix lengths: every one must fail with a
  // clean Status (no crash, no silent success).
  for (size_t len = 0; len < payload.size();
       len += std::max<size_t>(1, payload.size() / 97)) {
    StreamPipeline victim(*proto, DeterministicPipeline());
    std::vector<char> truncated(payload.begin(), payload.begin() + len);
    EXPECT_FALSE(victim.Restore(truncated).ok()) << "prefix " << len;
  }
  // Trailing garbage is also rejected (ExpectEnd guard).
  std::vector<char> padded = payload;
  padded.push_back('x');
  StreamPipeline victim(*proto, DeterministicPipeline());
  EXPECT_FALSE(victim.Restore(padded).ok());

  // A rejected restore leaves the victim usable as a fresh pipeline.
  EXPECT_TRUE(victim.Push(MakeBatch(true, 50, 0)).ok());
}

// ---------------------------------------------------------------------------
// Supervised shard recovery

TEST_F(ChaosTest, ShardKilledTwiceMidRunRecoversWithZeroLoss) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = FaultyRuntimeOptions();
  opts.num_shards = 1;
  opts.schedule_workers = false;  // Deterministic: we pump manually.
  StreamRuntime runtime(*proto, opts);

  // Kill the drain twice in a row starting at the 6th attempt: the 6th
  // batch fails, its first retry fails, its second retry succeeds.
  failpoint::FailPointSpec kill;
  kill.skip = 5;
  kill.count = 2;
  failpoint::Arm("runtime.drain.shard0", kill);

  constexpr int kBatches = 12;
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(runtime.Submit(0, MakeBatch(true, b, b)).ok());
  }
  runtime.PumpShard(0);

  EXPECT_EQ(failpoint::Hits("runtime.drain.shard0"), 2u);
  RuntimeStatsSnapshot stats = runtime.Snapshot();
  EXPECT_EQ(stats.totals.enqueued, static_cast<uint64_t>(kBatches));
  EXPECT_EQ(stats.totals.processed, static_cast<uint64_t>(kBatches));
  EXPECT_EQ(stats.totals.quarantined, 0u);
  EXPECT_EQ(stats.totals.errors, 2u);
  EXPECT_EQ(stats.totals.retries, 2u);
  EXPECT_EQ(stats.totals.restores, 2u);
  EXPECT_EQ(stats.totals.in_flight, 0u);
  EXPECT_TRUE(CollectDeadLetters(&runtime).empty());  // Nothing lost.
  runtime.Shutdown();
}

TEST_F(ChaosTest, PoisonBatchIsQuarantinedNeverDropped) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = FaultyRuntimeOptions();
  opts.num_shards = 1;
  opts.schedule_workers = false;
  StreamRuntime runtime(*proto, opts);

  ASSERT_TRUE(runtime.Submit(0, MakeBatch(true, 0, 0)).ok());
  ASSERT_TRUE(runtime.Submit(0, PoisonBatch(1)).ok());
  ASSERT_TRUE(runtime.Submit(0, MakeBatch(true, 2, 2)).ok());
  runtime.PumpShard(0);

  RuntimeStatsSnapshot stats = runtime.Snapshot();
  EXPECT_EQ(stats.totals.enqueued, 3u);
  EXPECT_EQ(stats.totals.processed, 2u);  // The good neighbours survive.
  EXPECT_EQ(stats.totals.quarantined, 1u);
  EXPECT_EQ(stats.totals.in_flight, 0u);
  // Initial attempt + max_batch_retries, every one an error.
  EXPECT_EQ(stats.totals.errors, 3u);
  EXPECT_EQ(stats.totals.retries, 2u);

  std::vector<DeadLetter> letters = CollectDeadLetters(&runtime);
  ASSERT_EQ(letters.size(), 1u);
  EXPECT_EQ(letters[0].batch.index, 1);
  EXPECT_TRUE(letters[0].batch.labeled());  // Training data preserved.
  EXPECT_EQ(letters[0].attempts, 3u);
  EXPECT_FALSE(letters[0].error.ok());
  EXPECT_EQ(letters[0].shard, 0u);
  runtime.Shutdown();
}

TEST_F(ChaosTest, EveryShardKilledTwiceInvariantReconcilesExactly) {
  ThreadPool::SetGlobalThreads(4);
  auto proto = MakeLogisticRegression(4, 2);
  MetricsRegistry registry;
  RuntimeOptions opts = FaultyRuntimeOptions();
  opts.num_shards = 3;
  opts.metrics = &registry;
  StreamRuntime runtime(*proto, opts);

  // Two kills per shard, mid-run, plus one poison batch per shard.
  for (size_t s = 0; s < 3; ++s) {
    failpoint::FailPointSpec kill;
    kill.skip = 4;
    kill.count = 2;
    failpoint::Arm("runtime.drain.shard" + std::to_string(s), kill);
  }

  constexpr int kStreams = 6;
  constexpr int kBatches = 10;
  for (int s = 0; s < kStreams; ++s) {
    for (int b = 0; b < kBatches; ++b) {
      ASSERT_TRUE(
          runtime.Submit(s, MakeBatch(b % 3 != 2, s * 100 + b, b)).ok());
    }
  }
  for (size_t s = 0; s < 3; ++s) {  // One poison batch per shard.
    ASSERT_TRUE(runtime.Submit(s, PoisonBatch(kBatches)).ok());
  }
  runtime.Flush();

  for (size_t s = 0; s < 3; ++s) {
    EXPECT_GE(failpoint::Hits("runtime.drain.shard" + std::to_string(s)), 2u)
        << "shard " << s << " was not killed twice";
  }

  RuntimeStatsSnapshot stats = runtime.Snapshot();
  const uint64_t submitted = kStreams * kBatches + 3;
  EXPECT_EQ(stats.totals.enqueued, submitted);
  // The reconciliation invariant, exactly:
  //   enqueued = processed + shed + quarantined + undrained + in_flight.
  EXPECT_EQ(stats.totals.enqueued,
            stats.totals.processed + stats.totals.shed +
                stats.totals.quarantined + stats.totals.undrained +
                stats.totals.in_flight);
  EXPECT_EQ(stats.totals.shed, 0u);        // Block policy.
  EXPECT_EQ(stats.totals.undrained, 0u);   // Fully drained.
  EXPECT_EQ(stats.totals.in_flight, 0u);   // Quiescent.
  EXPECT_EQ(stats.totals.quarantined, 3u);  // Exactly the poison batches.
  EXPECT_EQ(stats.totals.processed, submitted - 3);
  EXPECT_GE(stats.totals.restores, 6u);  // >= 2 kills x 3 shards.

  // The registry tells the same story as the snapshot.
  EXPECT_EQ(registry.GetCounter("freeway_fault_quarantined_total")->Value(),
            stats.totals.quarantined);
  EXPECT_EQ(registry.GetCounter("freeway_fault_restores_total")->Value(),
            stats.totals.restores);
  EXPECT_EQ(registry.GetCounter("freeway_fault_retries_total")->Value(),
            stats.totals.retries);
  EXPECT_GT(
      registry.GetCounter("freeway_fault_checkpoints_total{result=\"ok\"}")
          ->Value(),
      0u);

  // Every quarantined batch is a labeled poison batch, preserved intact.
  std::vector<DeadLetter> letters = CollectDeadLetters(&runtime);
  ASSERT_EQ(letters.size(), 3u);
  for (const DeadLetter& letter : letters) {
    EXPECT_TRUE(letter.batch.labeled());
    EXPECT_EQ(letter.batch.index, kBatches);
    EXPECT_TRUE(std::isnan(letter.batch.features.At(0, 0)));
  }
  runtime.Shutdown();
}

TEST_F(ChaosTest, FaultDisabledKeepsLegacyErrorAccounting) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts;
  opts.pipeline = DeterministicPipeline();
  opts.num_shards = 1;
  opts.schedule_workers = false;
  StreamRuntime runtime(*proto, opts);  // fault.enabled = false.

  ASSERT_TRUE(runtime.Submit(0, PoisonBatch(0)).ok());
  runtime.PumpShard(0);

  RuntimeStatsSnapshot stats = runtime.Snapshot();
  EXPECT_EQ(stats.totals.errors, 1u);
  EXPECT_EQ(stats.totals.processed, 1u);  // Legacy: consumed either way.
  EXPECT_EQ(stats.totals.quarantined, 0u);
  EXPECT_EQ(stats.totals.retries, 0u);
  EXPECT_TRUE(runtime.TakeDeadLetters().empty());
  EXPECT_EQ(runtime.checkpoint_store(), nullptr);
  runtime.Shutdown();
}

// ---------------------------------------------------------------------------
// Shutdown semantics

TEST_F(ChaosTest, NoDrainShutdownReportsUndrainedAndPreservesLabeled) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = FaultyRuntimeOptions();
  opts.num_shards = 1;
  opts.schedule_workers = false;
  opts.drain_on_shutdown = false;
  StreamRuntime runtime(*proto, opts);

  ASSERT_TRUE(runtime.Submit(0, MakeBatch(true, 0, 0)).ok());
  ASSERT_TRUE(runtime.Submit(0, MakeBatch(false, 1, 1)).ok());
  ASSERT_TRUE(runtime.Submit(0, MakeBatch(true, 2, 2)).ok());
  runtime.Shutdown();  // Nothing was pumped: all three abandoned.

  RuntimeStatsSnapshot stats = runtime.Snapshot();
  EXPECT_EQ(stats.totals.enqueued, 3u);
  EXPECT_EQ(stats.totals.processed, 0u);
  EXPECT_EQ(stats.totals.undrained, 3u);
  EXPECT_EQ(stats.totals.in_flight, 0u);  // The invariant still closes.

  // Only the labeled (training) batches land on the dead-letter queue.
  std::vector<DeadLetter> letters = CollectDeadLetters(&runtime);
  ASSERT_EQ(letters.size(), 2u);
  EXPECT_EQ(letters[0].batch.index, 0);
  EXPECT_EQ(letters[1].batch.index, 2);
  for (const DeadLetter& letter : letters) {
    EXPECT_TRUE(letter.batch.labeled());
    EXPECT_EQ(letter.attempts, 0u);
    EXPECT_EQ(letter.error.code(), StatusCode::kFailedPrecondition);
  }
}

TEST_F(ChaosTest, ShutdownWritesFinalCheckpointRestorableIntoNewRuntime) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = FaultyRuntimeOptions();
  opts.num_shards = 1;
  opts.schedule_workers = false;
  // An interval the run never reaches: only the initial and the final
  // (shutdown) checkpoints exist, proving Shutdown flushed one.
  opts.fault.checkpoint_interval_batches = 10000;

  auto first = std::make_unique<StreamRuntime>(*proto, opts);
  for (int b = 0; b < 9; ++b) {
    ASSERT_TRUE(first->Submit(0, MakeBatch(true, b, b)).ok());
  }
  first->PumpShard(0);
  first->Shutdown();

  // Read the final checkpoint before any new runtime writes its own.
  CheckpointStoreOptions store_opts;
  store_opts.directory = opts.fault.checkpoint_dir;
  store_opts.fsync = false;
  CheckpointStore store(store_opts);
  auto final_payload = store.ReadLatest("shard0");
  ASSERT_TRUE(final_payload.ok()) << final_payload.status();

  StreamRuntime second(*proto, opts);
  ASSERT_TRUE(second.mutable_shard_pipeline(0)->Restore(*final_payload).ok());

  // Identical probes through the old (quiescent) and recovered pipelines
  // produce bit-identical inference.
  Batch probe = MakeBatch(false, 999, 9);
  auto before = first->mutable_shard_pipeline(0)->Push(probe);
  auto after = second.mutable_shard_pipeline(0)->Push(probe);
  ASSERT_TRUE(before.ok() && after.ok());
  ASSERT_TRUE(before->has_value() && after->has_value());
  ExpectReportsBitIdentical(**before, **after);
  second.Shutdown();
}

TEST_F(ChaosTest, ManualCheckpointIsAvailableToOperators) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = FaultyRuntimeOptions();
  opts.num_shards = 2;
  opts.schedule_workers = false;
  StreamRuntime runtime(*proto, opts);
  ASSERT_TRUE(runtime.Submit(0, MakeBatch(true, 1, 0)).ok());
  runtime.PumpShard(0);
  ASSERT_TRUE(runtime.CheckpointShard(0).ok());
  ASSERT_NE(runtime.checkpoint_store(), nullptr);
  auto list = runtime.checkpoint_store()->List("shard0");
  ASSERT_TRUE(list.ok());
  EXPECT_GE(list->size(), 2u);  // Initial + manual.
  runtime.Shutdown();
}

// ---------------------------------------------------------------------------
// Learner-internal failpoints

TEST_F(ChaosTest, LearnerTrainFailpointTriggersSupervisedRecovery) {
  auto proto = MakeLogisticRegression(4, 2);
  RuntimeOptions opts = FaultyRuntimeOptions();
  opts.num_shards = 1;
  opts.schedule_workers = false;
  StreamRuntime runtime(*proto, opts);

  failpoint::FailPointSpec kill;
  kill.skip = 2;
  kill.count = 1;
  failpoint::Arm("learner.train", kill);

  for (int b = 0; b < 5; ++b) {
    ASSERT_TRUE(runtime.Submit(0, MakeBatch(true, b, b)).ok());
  }
  runtime.PumpShard(0);

  RuntimeStatsSnapshot stats = runtime.Snapshot();
  EXPECT_EQ(stats.totals.processed, 5u);  // Recovered: nothing lost.
  EXPECT_EQ(stats.totals.quarantined, 0u);
  EXPECT_EQ(stats.totals.restores, 1u);
  EXPECT_EQ(failpoint::Hits("learner.train"), 1u);
  runtime.Shutdown();
}

}  // namespace
}  // namespace freeway
