#include "linalg/pca.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace freeway {
namespace {

/// Samples with strong variance along a known direction.
Matrix AnisotropicSample(size_t n, size_t dim, size_t strong_axis,
                         uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      const double scale = j == strong_axis ? 10.0 : 0.5;
      m.At(i, j) = rng.Gaussian(j == 0 ? 2.0 : 0.0, scale);
    }
  }
  return m;
}

TEST(PcaTest, FitValidatesInput) {
  Pca pca;
  EXPECT_FALSE(pca.Fit(Matrix(1, 3), 2).ok());   // Too few samples.
  EXPECT_FALSE(pca.Fit(Matrix(10, 3), 0).ok());  // Zero components.
  EXPECT_FALSE(pca.Fit(Matrix(10, 3), 4).ok());  // Too many components.
  EXPECT_FALSE(pca.fitted());
}

TEST(PcaTest, TransformBeforeFitFails) {
  Pca pca;
  std::vector<double> point = {1.0, 2.0};
  auto r = pca.Transform(point);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PcaTest, FirstComponentAlignsWithDominantVariance) {
  Matrix sample = AnisotropicSample(500, 5, /*strong_axis=*/3, 17);
  Pca pca;
  ASSERT_TRUE(pca.Fit(sample, 2).ok());
  // The first component should be (nearly) the strong axis.
  double max_loading = 0.0;
  size_t argmax = 0;
  for (size_t j = 0; j < 5; ++j) {
    const double loading = std::fabs(pca.components().At(j, 0));
    if (loading > max_loading) {
      max_loading = loading;
      argmax = j;
    }
  }
  EXPECT_EQ(argmax, 3u);
  EXPECT_GT(max_loading, 0.95);
  EXPECT_GT(pca.ExplainedVarianceRatio(), 0.9);
}

TEST(PcaTest, TransformCentersAtTrainingMean) {
  Matrix sample = AnisotropicSample(300, 4, 1, 5);
  Pca pca;
  ASSERT_TRUE(pca.Fit(sample, 2).ok());
  auto at_mean = pca.Transform(pca.mean());
  ASSERT_TRUE(at_mean.ok());
  for (double v : at_mean.value()) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(PcaTest, TransformDimensionMismatchFails) {
  Matrix sample = AnisotropicSample(100, 4, 0, 5);
  Pca pca;
  ASSERT_TRUE(pca.Fit(sample, 2).ok());
  std::vector<double> wrong = {1.0, 2.0};
  EXPECT_FALSE(pca.Transform(wrong).ok());
}

TEST(PcaTest, TransformBatchMatchesPerRowTransform) {
  Matrix sample = AnisotropicSample(200, 3, 2, 9);
  Pca pca;
  ASSERT_TRUE(pca.Fit(sample, 2).ok());
  Matrix query = AnisotropicSample(10, 3, 2, 10);
  auto batch = pca.TransformBatch(query);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < query.rows(); ++i) {
    auto row = pca.Transform(query.Row(i));
    ASSERT_TRUE(row.ok());
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(batch->At(i, j), row.value()[j], 1e-12);
    }
  }
}

TEST(PcaTest, BatchMeanTransformIsLinear) {
  // P^T(mu_batch - mu) must equal the mean of per-row projections.
  Matrix sample = AnisotropicSample(200, 3, 0, 21);
  Pca pca;
  ASSERT_TRUE(pca.Fit(sample, 3).ok());
  Matrix query = AnisotropicSample(32, 3, 0, 22);
  auto mean_proj = pca.TransformBatchMean(query);
  ASSERT_TRUE(mean_proj.ok());
  auto all = pca.TransformBatch(query);
  ASSERT_TRUE(all.ok());
  auto col_mean = all->ColumnMean();
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(mean_proj.value()[j], col_mean[j], 1e-10);
  }
}

TEST(PcaTest, ProjectionPreservesDistancesInFullRank) {
  // With num_components == dim, PCA is an isometry: pairwise distances in
  // the projected space equal those in the original space.
  Matrix sample = AnisotropicSample(100, 4, 1, 33);
  Pca pca;
  ASSERT_TRUE(pca.Fit(sample, 4).ok());
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a(4), b(4);
    for (size_t j = 0; j < 4; ++j) {
      a[j] = rng.Gaussian(0, 2);
      b[j] = rng.Gaussian(0, 2);
    }
    auto pa = pca.Transform(a);
    auto pb = pca.Transform(b);
    ASSERT_TRUE(pa.ok() && pb.ok());
    EXPECT_NEAR(vec::EuclideanDistance(pa.value(), pb.value()),
                vec::EuclideanDistance(a, b), 1e-9);
  }
}

}  // namespace
}  // namespace freeway
