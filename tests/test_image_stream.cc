#include "data/image_stream.h"

#include <gtest/gtest.h>

#include "ml/models.h"

namespace freeway {
namespace {

TEST(ImageStreamTest, ShapesAndLabels) {
  auto src = MakeAnimalsSim(3);
  EXPECT_EQ(src->input_dim(), 256u);
  EXPECT_EQ(src->num_classes(), 8u);
  EXPECT_EQ(src->shape().height, 16u);
  auto batch = src->NextBatch(32);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 32u);
  EXPECT_EQ(batch->dim(), 256u);
  for (int label : batch->labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 8);
  }
}

TEST(ImageStreamTest, Deterministic) {
  auto a = MakeFlowersSim(9);
  auto b = MakeFlowersSim(9);
  auto ba = a->NextBatch(16);
  auto bb = b->NextBatch(16);
  ASSERT_TRUE(ba.ok() && bb.ok());
  EXPECT_EQ(ba->labels, bb->labels);
  EXPECT_DOUBLE_EQ(ba->features.At(3, 100), bb->features.At(3, 100));
}

TEST(ImageStreamTest, ClassesAreLearnableByCnn) {
  // A CNN should separate the class-specific gratings well above chance.
  ImageStreamOptions opts;
  opts.num_classes = 3;
  opts.noise_sigma = 0.1;
  DriftScript script;
  DriftSegment seg;
  seg.kind = DriftKind::kStationary;
  seg.num_batches = 1000;
  script.segments = {seg};
  ImageStreamSource src("learnable", opts, script);

  ModelConfig config;
  config.learning_rate = 0.03;
  auto model = MakeImageCnn({1, 16, 16}, 3, config);
  for (int b = 0; b < 25; ++b) {
    auto batch = src.NextBatch(64);
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(model->TrainBatch(batch->features, batch->labels).ok());
  }
  auto test = src.NextBatch(256);
  ASSERT_TRUE(test.ok());
  auto acc = Accuracy(model.get(), test->features, test->labels);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(acc.value(), 0.7);
}

TEST(ImageStreamTest, SuddenEventChangesTextures) {
  ImageStreamOptions opts;
  opts.num_classes = 2;
  opts.noise_sigma = 0.0;
  DriftScript script;
  DriftSegment calm;
  calm.kind = DriftKind::kStationary;
  calm.num_batches = 2;
  DriftSegment jump;
  jump.kind = DriftKind::kSudden;
  jump.num_batches = 2;
  script.segments = {calm, jump};
  ImageStreamSource src("sudden", opts, script);

  auto before = src.NextBatch(128);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(src.NextBatch(128).ok());
  auto after = src.NextBatch(128);  // First sudden batch.
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(src.LastBatchMeta().shift_event);

  // Mean image (per class) changes substantially across the jump.
  const double d = vec::EuclideanDistance(before->Mean(), after->Mean());
  EXPECT_GT(d, 0.5);
}

TEST(ImageStreamTest, MetaAnnotationsFollowScript) {
  auto src = MakeAnimalsSim(5);
  size_t sudden = 0, reoccurring = 0;
  for (int b = 0; b < 80; ++b) {
    ASSERT_TRUE(src->NextBatch(8).ok());
    const BatchMeta& meta = src->LastBatchMeta();
    if (meta.shift_event && meta.segment_kind == DriftKind::kSudden) ++sudden;
    if (meta.shift_event && meta.segment_kind == DriftKind::kReoccurring) {
      ++reoccurring;
    }
  }
  EXPECT_GT(sudden, 0u);
  EXPECT_GT(reoccurring, 0u);
}

}  // namespace
}  // namespace freeway
