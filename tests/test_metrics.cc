#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace freeway {
namespace {

TEST(ConfusionMatrixTest, ValidatesInput) {
  ConfusionMatrix cm(3);
  EXPECT_FALSE(cm.Add(-1, 0).ok());
  EXPECT_FALSE(cm.Add(0, 3).ok());
  EXPECT_FALSE(cm.AddAll({0, 1}, {0}).ok());
  EXPECT_TRUE(cm.Add(2, 1).ok());
  EXPECT_EQ(cm.total(), 1u);
}

TEST(ConfusionMatrixTest, PerfectPredictions) {
  ConfusionMatrix cm(2);
  ASSERT_TRUE(cm.AddAll({0, 1, 0, 1}, {0, 1, 0, 1}).ok());
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.Precision(0), 1.0);
  EXPECT_DOUBLE_EQ(cm.Recall(1), 1.0);
  EXPECT_DOUBLE_EQ(cm.F1(0), 1.0);
  EXPECT_DOUBLE_EQ(cm.MacroF1(), 1.0);
  EXPECT_DOUBLE_EQ(cm.CohensKappa(), 1.0);
}

TEST(ConfusionMatrixTest, KnownMixedCase) {
  // truth:      0 0 0 1 1
  // prediction: 0 0 1 1 0
  ConfusionMatrix cm(2);
  ASSERT_TRUE(cm.AddAll({0, 0, 0, 1, 1}, {0, 0, 1, 1, 0}).ok());
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(cm.Precision(0), 2.0 / 3.0);  // 2 TP, 1 FP.
  EXPECT_DOUBLE_EQ(cm.Recall(0), 2.0 / 3.0);     // 2 TP, 1 FN.
  EXPECT_DOUBLE_EQ(cm.Precision(1), 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(cm.Recall(1), 1.0 / 2.0);
  EXPECT_EQ(cm.Support(0), 3u);
  EXPECT_EQ(cm.Support(1), 2u);
}

TEST(ConfusionMatrixTest, MajorityGuessingHasZeroKappa) {
  // Truth is 90/10 imbalanced; predictor always says class 0. Accuracy is
  // high (0.9) but kappa must be 0 — the minority class is never found.
  ConfusionMatrix cm(2);
  for (int i = 0; i < 90; ++i) ASSERT_TRUE(cm.Add(0, 0).ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(cm.Add(1, 0).ok());
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.9);
  EXPECT_NEAR(cm.CohensKappa(), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(cm.Recall(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.F1(1), 0.0);
  EXPECT_LT(cm.MacroF1(), 0.5);  // Macro-F1 exposes the failure.
}

TEST(ConfusionMatrixTest, NeverPredictedClassHasZeroPrecision) {
  ConfusionMatrix cm(3);
  ASSERT_TRUE(cm.AddAll({0, 1, 2}, {0, 1, 1}).ok());
  EXPECT_DOUBLE_EQ(cm.Precision(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.Recall(2), 0.0);
}

TEST(ConfusionMatrixTest, EmptyMatrixSafe) {
  ConfusionMatrix cm(4);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.MacroF1(), 0.0);
  EXPECT_DOUBLE_EQ(cm.CohensKappa(), 0.0);
}

TEST(ConfusionMatrixTest, ReportContainsSummary) {
  ConfusionMatrix cm(2);
  ASSERT_TRUE(cm.AddAll({0, 1}, {0, 1}).ok());
  const std::string report = cm.ToString();
  EXPECT_NE(report.find("macro-F1"), std::string::npos);
  EXPECT_NE(report.find("kappa"), std::string::npos);
  EXPECT_NE(report.find("support"), std::string::npos);
}

}  // namespace
}  // namespace freeway
