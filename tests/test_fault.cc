#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/checkpoint.h"
#include "fault/failpoint.h"
#include "fault/snapshot.h"

namespace freeway {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// CRC-32

TEST(Crc32Test, MatchesIeeeCheckVector) {
  // The canonical CRC-32/ISO-HDLC check value: crc32("123456789").
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, SeedChainsRanges) {
  const uint32_t whole = Crc32("123456789", 9);
  uint32_t chained = Crc32("12345", 5);
  chained = Crc32("6789", 4, chained);
  EXPECT_EQ(chained, whole);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<char> data(64, 'x');
  const uint32_t clean = Crc32(data.data(), data.size());
  data[13] ^= 0x10;
  EXPECT_NE(Crc32(data.data(), data.size()), clean);
}

// ---------------------------------------------------------------------------
// Snapshot codec

TEST(SnapshotCodecTest, RoundTripsEveryType) {
  SnapshotWriter writer;
  writer.WriteSection(0x54455354);  // 'TEST'
  writer.WriteU32(7u);
  writer.WriteU64(uint64_t{1} << 40);
  writer.WriteI64(-42);
  writer.WriteDouble(0.1);  // Not exactly representable: bit-exactness test.
  writer.WriteBool(true);
  writer.WriteString("hello");
  writer.WriteDoubleVec({1.5, -2.25, 3.125});
  writer.WriteIntVec({0, 1, 1, 0});
  writer.WriteBlob({'a', 'b', 'c'});
  Matrix m(2, 3);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) m.At(i, j) = i * 3.0 + j + 0.5;
  }
  writer.WriteMatrix(m);
  Batch batch;
  batch.index = 9;
  batch.features = m;
  batch.labels = {1, 0};
  writer.WriteBatch(batch);

  SnapshotReader reader(writer.buffer());
  ASSERT_TRUE(reader.ExpectSection(0x54455354).ok());
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0;
  bool b = false;
  std::string s;
  std::vector<double> dv;
  std::vector<int> iv;
  std::vector<char> blob;
  Matrix m2;
  Batch batch2;
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  ASSERT_TRUE(reader.ReadI64(&i64).ok());
  ASSERT_TRUE(reader.ReadDouble(&d).ok());
  ASSERT_TRUE(reader.ReadBool(&b).ok());
  ASSERT_TRUE(reader.ReadString(&s).ok());
  ASSERT_TRUE(reader.ReadDoubleVec(&dv).ok());
  ASSERT_TRUE(reader.ReadIntVec(&iv).ok());
  ASSERT_TRUE(reader.ReadBlob(&blob).ok());
  ASSERT_TRUE(reader.ReadMatrix(&m2).ok());
  ASSERT_TRUE(reader.ReadBatch(&batch2).ok());
  ASSERT_TRUE(reader.ExpectEnd().ok());

  EXPECT_EQ(u32, 7u);
  EXPECT_EQ(u64, uint64_t{1} << 40);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(d, 0.1);  // Bit-identical, not approximately equal.
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(dv, (std::vector<double>{1.5, -2.25, 3.125}));
  EXPECT_EQ(iv, (std::vector<int>{0, 1, 1, 0}));
  EXPECT_EQ(blob, (std::vector<char>{'a', 'b', 'c'}));
  ASSERT_EQ(m2.rows(), 2u);
  ASSERT_EQ(m2.cols(), 3u);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) EXPECT_EQ(m2.At(i, j), m.At(i, j));
  }
  EXPECT_EQ(batch2.index, 9);
  EXPECT_EQ(batch2.labels, batch.labels);
}

TEST(SnapshotCodecTest, TruncationFailsCleanlyAtEveryPrefix) {
  SnapshotWriter writer;
  writer.WriteSection(0x41414141);
  writer.WriteDoubleVec({1.0, 2.0, 3.0});
  writer.WriteString("tail");
  const std::vector<char>& full = writer.buffer();

  for (size_t len = 0; len < full.size(); ++len) {
    SnapshotReader reader(std::span<const char>(full.data(), len));
    std::vector<double> dv;
    std::string s;
    Status status = reader.ExpectSection(0x41414141);
    if (status.ok()) status = reader.ReadDoubleVec(&dv);
    if (status.ok()) status = reader.ReadString(&s);
    if (status.ok()) status = reader.ExpectEnd();
    EXPECT_FALSE(status.ok()) << "prefix length " << len;
  }
}

TEST(SnapshotCodecTest, CorruptLengthCannotOverAllocate) {
  SnapshotWriter writer;
  writer.WriteU64(uint64_t{1} << 60);  // Absurd element count...
  writer.WriteDouble(1.0);             // ...backed by 8 bytes.
  SnapshotReader reader(writer.buffer());
  std::vector<double> dv;
  Status status = reader.ReadDoubleVec(&dv);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotCodecTest, SectionTagMismatchIsRejected) {
  SnapshotWriter writer;
  writer.WriteSection(0x41414141);
  SnapshotReader reader(writer.buffer());
  Status status = reader.ExpectSection(0x42424242);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotCodecTest, UnsupportedSectionVersionIsRejected) {
  SnapshotWriter writer;
  writer.WriteSection(0x41414141, /*version=*/2);
  {
    SnapshotReader reader(writer.buffer());
    EXPECT_FALSE(reader.ExpectSection(0x41414141).ok());
  }
  {
    // A caller that accepts other versions reads it through version_out.
    SnapshotReader reader(writer.buffer());
    uint32_t version = 0;
    ASSERT_TRUE(reader.ExpectSection(0x41414141, &version).ok());
    EXPECT_EQ(version, 2u);
  }
}

TEST(SnapshotCodecTest, TrailingGarbageIsRejected) {
  SnapshotWriter writer;
  writer.WriteU32(1);
  writer.WriteU32(2);
  SnapshotReader reader(writer.buffer());
  uint32_t v = 0;
  ASSERT_TRUE(reader.ReadU32(&v).ok());
  EXPECT_FALSE(reader.ExpectEnd().ok());
  ASSERT_TRUE(reader.ReadU32(&v).ok());
  EXPECT_TRUE(reader.ExpectEnd().ok());
}

// ---------------------------------------------------------------------------
// CheckpointStore

class CheckpointStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("freeway_ckpt_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    failpoint::DisarmAll();
  }
  void TearDown() override {
    failpoint::DisarmAll();
    fs::remove_all(dir_);
  }

  CheckpointStoreOptions Options(size_t keep = 2) {
    CheckpointStoreOptions opts;
    opts.directory = dir_.string();
    opts.keep_versions = keep;
    opts.fsync = false;  // Tests favour speed; the fsync path is tiny.
    return opts;
  }

  static std::vector<char> Payload(const std::string& text) {
    return std::vector<char>(text.begin(), text.end());
  }

  fs::path dir_;
};

TEST_F(CheckpointStoreTest, WriteThenReadLatestRoundTrips) {
  CheckpointStore store(Options());
  ASSERT_TRUE(store.Write("shard0", Payload("state-v1")).ok());
  auto read = store.ReadLatest("shard0");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, Payload("state-v1"));
}

TEST_F(CheckpointStoreTest, ReadLatestReturnsNewestVersion) {
  CheckpointStore store(Options());
  ASSERT_TRUE(store.Write("shard0", Payload("old")).ok());
  ASSERT_TRUE(store.Write("shard0", Payload("new")).ok());
  auto read = store.ReadLatest("shard0");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, Payload("new"));
}

TEST_F(CheckpointStoreTest, PrunesBeyondKeepVersions) {
  CheckpointStore store(Options(/*keep=*/2));
  for (int v = 0; v < 5; ++v) {
    ASSERT_TRUE(store.Write("shard0", Payload("v" + std::to_string(v))).ok());
  }
  auto list = store.List("shard0");
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 2u);
  EXPECT_LT((*list)[0].sequence, (*list)[1].sequence);
  auto read = store.ReadLatest("shard0");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, Payload("v4"));
}

TEST_F(CheckpointStoreTest, NamesAreIndependent) {
  CheckpointStore store(Options());
  ASSERT_TRUE(store.Write("shard0", Payload("zero")).ok());
  ASSERT_TRUE(store.Write("shard1", Payload("one")).ok());
  auto read0 = store.ReadLatest("shard0");
  auto read1 = store.ReadLatest("shard1");
  ASSERT_TRUE(read0.ok());
  ASSERT_TRUE(read1.ok());
  EXPECT_EQ(*read0, Payload("zero"));
  EXPECT_EQ(*read1, Payload("one"));
}

TEST_F(CheckpointStoreTest, SequencesResumeAcrossStoreInstances) {
  {
    CheckpointStore store(Options());
    ASSERT_TRUE(store.Write("shard0", Payload("first")).ok());
  }
  CheckpointStore reopened(Options());
  ASSERT_TRUE(reopened.Write("shard0", Payload("second")).ok());
  auto list = reopened.List("shard0");
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 2u);
  EXPECT_GT((*list)[1].sequence, (*list)[0].sequence);
  auto read = reopened.ReadLatest("shard0");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, Payload("second"));
}

TEST_F(CheckpointStoreTest, RejectsInvalidNames) {
  CheckpointStore store(Options());
  EXPECT_FALSE(store.Write("", Payload("x")).ok());
  EXPECT_FALSE(store.Write("a/b", Payload("x")).ok());
}

TEST_F(CheckpointStoreTest, NoTmpFilesSurviveWrites) {
  CheckpointStore store(Options());
  ASSERT_TRUE(store.Write("shard0", Payload("data")).ok());
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().extension(), ".ckpt") << entry.path();
  }
}

TEST_F(CheckpointStoreTest, BitFlipInPayloadIsRejected) {
  CheckpointStore store(Options(/*keep=*/1));
  ASSERT_TRUE(store.Write("shard0", Payload("sensitive-state")).ok());
  auto list = store.List("shard0");
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 1u);
  const std::string path = (*list)[0].path;

  // Flip one bit in the payload region (past the 20-byte header).
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(24);
  char byte = 0;
  file.seekg(24);
  file.read(&byte, 1);
  byte ^= 0x01;
  file.seekp(24);
  file.write(&byte, 1);
  file.close();

  auto read = CheckpointStore::ReadFile(path);
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(store.ReadLatest("shard0").ok());
}

TEST_F(CheckpointStoreTest, TruncatedFileIsRejected) {
  CheckpointStore store(Options(/*keep=*/1));
  ASSERT_TRUE(store.Write("shard0", Payload("will-be-truncated")).ok());
  auto list = store.List("shard0");
  ASSERT_TRUE(list.ok());
  const std::string path = (*list)[0].path;
  fs::resize_file(path, fs::file_size(path) - 4);
  EXPECT_FALSE(CheckpointStore::ReadFile(path).ok());
}

TEST_F(CheckpointStoreTest, ReadLatestFallsBackPastCorruptNewest) {
  CheckpointStore store(Options(/*keep=*/2));
  ASSERT_TRUE(store.Write("shard0", Payload("good-old")).ok());
  ASSERT_TRUE(store.Write("shard0", Payload("bad-new")).ok());
  auto list = store.List("shard0");
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 2u);
  // Corrupt the newest version's payload.
  fs::resize_file((*list)[1].path, fs::file_size((*list)[1].path) - 2);

  auto read = store.ReadLatest("shard0");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, Payload("good-old"));
}

TEST_F(CheckpointStoreTest, ReadLatestRescansWhenIndexedFileWasDeleted) {
  CheckpointStore store(Options(/*keep=*/2));
  ASSERT_TRUE(store.Write("shard0", Payload("old")).ok());
  ASSERT_TRUE(store.Write("shard0", Payload("new")).ok());
  auto list = store.List("shard0");
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 2u);
  // An operator (or an overlapping store instance) prunes the newest file
  // behind the live store's back: the in-memory index is now stale. The
  // regression under test: ReadLatest used to keep serving the dead index
  // and fail forever even though a perfectly good version sat on disk.
  fs::remove((*list)[1].path);

  auto read = store.ReadLatest("shard0");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, Payload("old"));

  // The rescan repaired the index for later calls too.
  auto relisted = store.List("shard0");
  ASSERT_TRUE(relisted.ok());
  EXPECT_EQ(relisted->size(), 1u);
}

TEST_F(CheckpointStoreTest, ReadLatestFailsWhenEveryVersionWasDeleted) {
  CheckpointStore store(Options(/*keep=*/2));
  ASSERT_TRUE(store.Write("shard0", Payload("doomed")).ok());
  auto list = store.List("shard0");
  ASSERT_TRUE(list.ok());
  for (const CheckpointInfo& info : *list) fs::remove(info.path);

  auto read = store.ReadLatest("shard0");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointStoreTest, MissingNameFailsCleanly) {
  CheckpointStore store(Options());
  auto read = store.ReadLatest("never-written");
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointStoreTest, WriteFailpointInjectsCleanly) {
  CheckpointStore store(Options());
  failpoint::Arm("checkpoint.write",
                 {StatusCode::kInternal, "injected disk failure"});
  Status status = store.Write("shard0", Payload("doomed"));
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  // Auto-disarmed after one hit: the next write succeeds and nothing of the
  // failed attempt is left behind.
  ASSERT_TRUE(store.Write("shard0", Payload("survivor")).ok());
  auto read = store.ReadLatest("shard0");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, Payload("survivor"));
}

TEST_F(CheckpointStoreTest, ReadFailpointInjectsCleanly) {
  CheckpointStore store(Options());
  ASSERT_TRUE(store.Write("shard0", Payload("data")).ok());
  failpoint::Arm("checkpoint.read", {StatusCode::kIoError, "", 0, 1});
  EXPECT_FALSE(store.ReadLatest("shard0").ok());
  auto read = store.ReadLatest("shard0");  // Disarmed: reads fine again.
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, Payload("data"));
}

TEST_F(CheckpointStoreTest, ConcurrentWritersReadersAndListersAreSafe) {
  // One store shared by many threads — the directory-mode shape, where
  // every shard's drain thread parks and hydrates streams through the same
  // park store. keep_versions=1 maximizes prune churn under the writers.
  CheckpointStore store(Options(/*keep=*/1));
  constexpr int kNames = 2;
  constexpr int kOpsPerThread = 40;
  ASSERT_TRUE(store.Write("shared-0", Payload("seed")).ok());
  ASSERT_TRUE(store.Write("shared-1", Payload("seed")).ok());

  std::atomic<int> write_errors{0};
  std::atomic<int> read_errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      const std::string name = "shared-" + std::to_string(t % kNames);
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (!store.Write(name, Payload("v" + std::to_string(i))).ok()) {
          write_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      const std::string name = "shared-" + std::to_string(t % kNames);
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Readers race the writers' pruning: every read must either
        // validate cleanly or fail cleanly — never tear.
        auto read = store.ReadLatest(name);
        if (!read.ok()) read_errors.fetch_add(1, std::memory_order_relaxed);
        auto list = store.List(name);
        if (!list.ok()) read_errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(write_errors.load(), 0);
  EXPECT_EQ(read_errors.load(), 0);
  for (int n = 0; n < kNames; ++n) {
    auto read = store.ReadLatest("shared-" + std::to_string(n));
    ASSERT_TRUE(read.ok()) << read.status();
    EXPECT_EQ(*read,
              Payload("v" + std::to_string(kOpsPerThread - 1)));
  }
}

// ---------------------------------------------------------------------------
// FailPoint registry

class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(FailPointTest, UnarmedSiteIsOk) {
  EXPECT_TRUE(failpoint::Check("nothing.armed").ok());
  EXPECT_EQ(failpoint::Hits("nothing.armed"), 0u);
}

TEST_F(FailPointTest, FiresConfiguredCodeAndMessage) {
  failpoint::Arm("site.a", {StatusCode::kIoError, "boom"});
  Status status = failpoint::Check("site.a");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(status.message(), "boom");
  EXPECT_EQ(failpoint::Hits("site.a"), 1u);
}

TEST_F(FailPointTest, SkipLetsEarlyTriggersPass) {
  failpoint::FailPointSpec spec;
  spec.skip = 2;
  spec.count = 1;
  failpoint::Arm("site.skip", spec);
  EXPECT_TRUE(failpoint::Check("site.skip").ok());
  EXPECT_TRUE(failpoint::Check("site.skip").ok());
  EXPECT_FALSE(failpoint::Check("site.skip").ok());
  EXPECT_TRUE(failpoint::Check("site.skip").ok());  // Auto-disarmed.
  EXPECT_EQ(failpoint::Hits("site.skip"), 1u);
}

TEST_F(FailPointTest, CountFiresExactlyNTimes) {
  failpoint::FailPointSpec spec;
  spec.count = 3;
  failpoint::Arm("site.count", spec);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(failpoint::Check("site.count").ok()) << i;
  }
  EXPECT_TRUE(failpoint::Check("site.count").ok());
  EXPECT_EQ(failpoint::Hits("site.count"), 3u);
}

TEST_F(FailPointTest, DisarmStopsInjectionButKeepsHistory) {
  failpoint::FailPointSpec spec;
  spec.count = SIZE_MAX;
  failpoint::Arm("site.forever", spec);
  EXPECT_FALSE(failpoint::Check("site.forever").ok());
  failpoint::Disarm("site.forever");
  EXPECT_TRUE(failpoint::Check("site.forever").ok());
  EXPECT_EQ(failpoint::Hits("site.forever"), 1u);
}

TEST_F(FailPointTest, RearmResetsSchedule) {
  failpoint::FailPointSpec spec;
  spec.skip = 1;
  failpoint::Arm("site.rearm", spec);
  EXPECT_TRUE(failpoint::Check("site.rearm").ok());
  failpoint::Arm("site.rearm", spec);  // Re-arm: the skip starts over.
  EXPECT_TRUE(failpoint::Check("site.rearm").ok());
  EXPECT_FALSE(failpoint::Check("site.rearm").ok());
}

TEST_F(FailPointTest, FastPathReportsArmedState) {
  EXPECT_FALSE(failpoint::internal::AnyArmed());
  failpoint::Arm("site.fast");
  EXPECT_TRUE(failpoint::internal::AnyArmed());
  EXPECT_FALSE(failpoint::Check("site.fast").ok());  // count=1: auto-disarm.
  EXPECT_FALSE(failpoint::internal::AnyArmed());
}

}  // namespace
}  // namespace freeway
