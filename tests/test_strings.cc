#include "common/strings.h"

#include <gtest/gtest.h>

namespace freeway {
namespace {

TEST(StringsTest, SplitBasic) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, SplitEmptyString) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
  EXPECT_EQ(Join({"solo"}, "-"), "solo");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(StringsTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.8123), "81.23%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("abcdef", 4), "abcdef");
  EXPECT_EQ(PadRight("abcdef", 4), "abcdef");
}

}  // namespace
}  // namespace freeway
