#include <gtest/gtest.h>

#include "baselines/agem.h"
#include "baselines/camel.h"
#include "baselines/engine_learners.h"
#include "baselines/factory.h"
#include "baselines/freeway_adapter.h"
#include "baselines/river.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "ml/models.h"

namespace freeway {
namespace {

Batch BlobsBatch(double center, size_t n, uint64_t seed, int64_t index = 0) {
  Rng rng(seed);
  Batch b;
  b.index = index;
  b.features = Matrix(n, 4);
  b.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(rng.NextBelow(2));
    b.labels[i] = label;
    for (size_t j = 0; j < 4; ++j) {
      b.features.At(i, j) =
          center + rng.Gaussian(label == 0 ? -1.5 : 1.5, 0.6);
    }
  }
  return b;
}

double BatchAccuracy(StreamingLearner* learner, const Batch& batch) {
  auto pred = learner->Predict(batch.features);
  EXPECT_TRUE(pred.ok());
  size_t hits = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    if ((*pred)[i] == batch.labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(batch.size());
}

class AllSystemsTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Systems, AllSystemsTest,
                         ::testing::Values("Plain", "Flink ML", "Spark MLlib",
                                           "Alink", "River", "Camel", "A-GEM",
                                           "FreewayML"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == ' ' || c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(AllSystemsTest, ConstructsViaFactory) {
  auto learner = MakeSystem(GetParam(), ModelKind::kMlp, 4, 2);
  ASSERT_TRUE(learner.ok()) << GetParam();
  if (GetParam() != "Plain") {
    EXPECT_EQ((*learner)->name(), GetParam());
  }
}

TEST_P(AllSystemsTest, LearnsSeparableStream) {
  auto learner = MakeSystem(GetParam(), ModelKind::kMlp, 4, 2);
  ASSERT_TRUE(learner.ok());
  for (int b = 0; b < 25; ++b) {
    auto pred = (*learner)->PrequentialStep(BlobsBatch(0.0, 128, b, b));
    ASSERT_TRUE(pred.ok()) << GetParam() << " batch " << b;
  }
  const double acc = BatchAccuracy(learner->get(), BlobsBatch(0.0, 256, 99));
  EXPECT_GT(acc, 0.85) << GetParam();
}

TEST_P(AllSystemsTest, WorksWithLogisticRegression) {
  auto learner = MakeSystem(GetParam(), ModelKind::kLogisticRegression, 4, 2);
  ASSERT_TRUE(learner.ok());
  for (int b = 0; b < 20; ++b) {
    ASSERT_TRUE(
        (*learner)->PrequentialStep(BlobsBatch(0.0, 128, b, b)).ok());
  }
  EXPECT_GT(BatchAccuracy(learner->get(), BlobsBatch(0.0, 256, 77)), 0.85);
}

TEST(FactoryTest, UnknownSystemRejected) {
  auto r = MakeSystem("NoSuchSystem", ModelKind::kMlp, 4, 2);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(FactoryTest, SystemLineupsMatchPaper) {
  EXPECT_EQ(LrSystemNames().size(), 4u);
  EXPECT_EQ(LrSystemNames().back(), "FreewayML");
  EXPECT_EQ(MlpSystemNames().size(), 4u);
  EXPECT_EQ(MlpSystemNames()[0], "River");
}

TEST(FlinkMlTest, WatermarkDelaysUpdateByOneBatch) {
  auto model = MakeLogisticRegression(4, 2);
  const auto initial = model->GetParameters();
  FlinkMlLearner flink(std::move(model));
  // First Train call buffers; the model must be unchanged until the second.
  ASSERT_TRUE(flink.Train(BlobsBatch(0.0, 64, 1, 0)).ok());
  auto p1 = flink.PredictProba(BlobsBatch(0.0, 8, 2).features);
  ASSERT_TRUE(p1.ok());
  // Prediction after one Train equals prediction of an untrained model.
  auto fresh = MakeLogisticRegression(4, 2);
  auto p_fresh = fresh->PredictProba(BlobsBatch(0.0, 8, 2).features);
  ASSERT_TRUE(p_fresh.ok());
  for (size_t i = 0; i < p1->rows(); ++i) {
    for (size_t j = 0; j < p1->cols(); ++j) {
      EXPECT_NEAR(p1->At(i, j), p_fresh->At(i, j), 1e-12);
    }
  }
  (void)initial;
}

TEST(RiverTest, DriftResetFiresOnAccuracyCollapse) {
  RiverOptions opts;
  opts.detector_window = 10;
  auto learner = std::make_unique<RiverLearner>(MakeMlp(4, 2), opts);
  // Stable phase.
  for (int b = 0; b < 20; ++b) {
    ASSERT_TRUE(learner->Train(BlobsBatch(0.0, 128, b, b)).ok());
  }
  EXPECT_EQ(learner->drift_count(), 0u);
  // Label-inverting shift: accuracy collapses, detector must fire within a
  // few batches.
  for (int b = 0; b < 10; ++b) {
    Batch flipped = BlobsBatch(0.0, 128, 100 + b, 20 + b);
    for (auto& label : flipped.labels) label = 1 - label;
    ASSERT_TRUE(learner->Train(flipped).ok());
  }
  EXPECT_GE(learner->drift_count(), 1u);
}

TEST(CamelTest, SelectsSubsetAndBuffers) {
  CamelOptions opts;
  opts.keep_ratio = 0.5;
  opts.buffer_capacity = 100;
  auto learner = std::make_unique<CamelLearner>(MakeMlp(4, 2), opts);
  ASSERT_TRUE(learner->Train(BlobsBatch(0.0, 64, 1, 0)).ok());
  EXPECT_EQ(learner->buffer_size(), 32u);  // keep_ratio * 64.
  for (int b = 0; b < 10; ++b) {
    ASSERT_TRUE(learner->Train(BlobsBatch(0.0, 64, 2 + b, 1 + b)).ok());
  }
  EXPECT_EQ(learner->buffer_size(), 100u);  // Capacity bound.
}

TEST(AGemTest, ProjectionFiresOnConflictingTasks) {
  AGemOptions opts;
  opts.samples_per_batch = 64;
  auto learner = std::make_unique<AGemLearner>(MakeMlp(4, 2), opts);
  // Task 1.
  for (int b = 0; b < 10; ++b) {
    ASSERT_TRUE(learner->Train(BlobsBatch(0.0, 128, b, b)).ok());
  }
  EXPECT_GT(learner->memory_size(), 0u);
  const size_t before = learner->projections();
  // Task 2 with inverted labels: gradients conflict with memory.
  for (int b = 0; b < 10; ++b) {
    Batch flipped = BlobsBatch(0.0, 128, 50 + b, 10 + b);
    for (auto& label : flipped.labels) label = 1 - label;
    ASSERT_TRUE(learner->Train(flipped).ok());
  }
  EXPECT_GT(learner->projections(), before);
}

TEST(FreewayAdapterTest, ExposesReports) {
  auto model = MakeMlp(10, 2);
  FreewayAdapter adapter(*model);
  HyperplaneSource source;
  for (int b = 0; b < 12; ++b) {
    auto batch = source.NextBatch(128);
    ASSERT_TRUE(batch.ok());
    auto pred = adapter.PrequentialStep(*batch);
    ASSERT_TRUE(pred.ok());
  }
  EXPECT_EQ(adapter.learner().stats().batches_inferred, 12u);
  EXPECT_EQ(adapter.last_report().predictions.size(), 128u);
}

TEST(SerializationRoundTripTest, WireSizedForVarintGroups) {
  Matrix m(16, 8, 1.5);
  std::vector<char> wire;
  internal::SerializationRoundTrip(m, &wire);
  // LEB128 encoding uses at most 10 byte-groups per 64-bit value.
  EXPECT_EQ(wire.size(), 16u * 8u * 10u);
}

}  // namespace
}  // namespace freeway
// -- appended tests: River with classical drift detectors --------------------

namespace freeway {
namespace {

class RiverDetectorTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Detectors, RiverDetectorTest,
                         ::testing::Values("DDM", "EDDM", "PageHinkley",
                                           "ADWIN"));

TEST_P(RiverDetectorTest, LearnsWithClassicalDetector) {
  RiverOptions opts;
  opts.classical_detector = GetParam();
  auto learner = std::make_unique<RiverLearner>(MakeMlp(4, 2), opts);
  for (int b = 0; b < 25; ++b) {
    ASSERT_TRUE(learner->Train(BlobsBatch(0.0, 128, b, b)).ok()) << GetParam();
  }
  EXPECT_GT(BatchAccuracy(learner.get(), BlobsBatch(0.0, 256, 99)), 0.85)
      << GetParam();
}

TEST(RiverDetectorTest, DdmResetFiresOnLabelInversion) {
  RiverOptions opts;
  opts.classical_detector = "DDM";
  auto learner = std::make_unique<RiverLearner>(MakeMlp(4, 2), opts);
  // DDM observes per-batch error rates here; give it enough stable batches
  // to arm, then a sustained inversion.
  for (int b = 0; b < 40; ++b) {
    ASSERT_TRUE(learner->Train(BlobsBatch(0.0, 128, b, b)).ok());
  }
  EXPECT_EQ(learner->drift_count(), 0u);
  for (int b = 0; b < 25; ++b) {
    Batch flipped = BlobsBatch(0.0, 128, 200 + b, 40 + b);
    for (auto& label : flipped.labels) label = 1 - label;
    ASSERT_TRUE(learner->Train(flipped).ok());
  }
  EXPECT_GE(learner->drift_count(), 1u);
}

}  // namespace
}  // namespace freeway
