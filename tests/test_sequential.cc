#include "ml/sequential.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/models.h"

namespace freeway {
namespace {

/// Two linearly separable Gaussian blobs.
void MakeBlobs(size_t n, Matrix* x, std::vector<int>* y, uint64_t seed) {
  Rng rng(seed);
  *x = Matrix(n, 2);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(rng.NextBelow(2));
    (*y)[i] = label;
    const double cx = label == 0 ? -2.0 : 2.0;
    x->At(i, 0) = rng.Gaussian(cx, 0.7);
    x->At(i, 1) = rng.Gaussian(label == 0 ? 1.0 : -1.0, 0.7);
  }
}

TEST(SequentialModelTest, MetadataAndValidation) {
  auto model = MakeMlp(4, 3);
  EXPECT_EQ(model->name(), "StreamingMLP");
  EXPECT_EQ(model->input_dim(), 4u);
  EXPECT_EQ(model->num_classes(), 3u);

  Matrix wrong_dim(2, 5);
  EXPECT_FALSE(model->PredictProba(wrong_dim).ok());
  Matrix empty(0, 4);
  EXPECT_FALSE(model->PredictProba(empty).ok());
  Matrix ok_x(2, 4);
  EXPECT_FALSE(model->TrainBatch(ok_x, {0}).ok());      // Label count.
  EXPECT_FALSE(model->TrainBatch(ok_x, {0, 3}).ok());   // Label range.
  EXPECT_FALSE(model->TrainBatch(ok_x, {0, -1}).ok());  // Negative label.
}

TEST(SequentialModelTest, PredictProbaRowsSumToOne) {
  auto model = MakeMlp(3, 4);
  Rng rng(2);
  Matrix x(8, 3);
  for (size_t i = 0; i < 8; ++i) {
    for (size_t j = 0; j < 3; ++j) x.At(i, j) = rng.Gaussian(0, 1);
  }
  auto probs = model->PredictProba(x);
  ASSERT_TRUE(probs.ok());
  for (size_t i = 0; i < 8; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < 4; ++j) sum += probs->At(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(SequentialModelTest, LearnsSeparableBlobs) {
  Matrix x;
  std::vector<int> y;
  MakeBlobs(512, &x, &y, 7);

  ModelConfig config;
  config.learning_rate = 0.2;
  auto model = MakeLogisticRegression(2, 2, config);

  auto initial = Accuracy(model.get(), x, y);
  ASSERT_TRUE(initial.ok());

  for (int epoch = 0; epoch < 30; ++epoch) {
    ASSERT_TRUE(model->TrainBatch(x, y).ok());
  }
  auto trained = Accuracy(model.get(), x, y);
  ASSERT_TRUE(trained.ok());
  EXPECT_GT(trained.value(), 0.97);
  EXPECT_GE(trained.value(), initial.value());
}

TEST(SequentialModelTest, TrainingReducesLoss) {
  Matrix x;
  std::vector<int> y;
  MakeBlobs(256, &x, &y, 9);
  auto model = MakeMlp(2, 2);
  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 40; ++step) {
    auto loss = model->TrainBatch(x, y);
    ASSERT_TRUE(loss.ok());
    if (step == 0) first_loss = loss.value();
    last_loss = loss.value();
  }
  EXPECT_LT(last_loss, first_loss * 0.5);
}

TEST(SequentialModelTest, ParameterRoundTrip) {
  auto model = MakeMlp(5, 3);
  const std::vector<double> params = model->GetParameters();
  EXPECT_EQ(params.size(), model->ParameterCount());

  // Train to change the parameters.
  Matrix x;
  std::vector<int> y;
  MakeBlobs(64, &x, &y, 3);
  Matrix x5(64, 5);
  for (size_t i = 0; i < 64; ++i) {
    for (size_t j = 0; j < 5; ++j) x5.At(i, j) = x.At(i, j % 2);
  }
  std::vector<int> y3(y.begin(), y.end());
  ASSERT_TRUE(model->TrainBatch(x5, y3).ok());
  EXPECT_NE(model->GetParameters(), params);

  // Restore and verify identical predictions.
  ASSERT_TRUE(model->SetParameters(params).ok());
  EXPECT_EQ(model->GetParameters(), params);

  EXPECT_FALSE(model->SetParameters(std::vector<double>(3, 0.0)).ok());
}

TEST(SequentialModelTest, ComputeGradientMatchesTrainBatchStep) {
  // ApplyStep(-lr * grad) must reproduce TrainBatch exactly for plain SGD.
  ModelConfig config;
  config.learning_rate = 0.1;
  auto model_a = MakeLogisticRegression(2, 2, config);
  auto model_b = model_a->Clone();

  Matrix x;
  std::vector<int> y;
  MakeBlobs(128, &x, &y, 11);

  ASSERT_TRUE(model_a->TrainBatch(x, y).ok());

  std::vector<double> grad;
  ASSERT_TRUE(model_b->ComputeGradient(x, y, &grad).ok());
  for (auto& g : grad) g *= -config.learning_rate;
  ASSERT_TRUE(model_b->ApplyStep(grad).ok());

  const auto pa = model_a->GetParameters();
  const auto pb = model_b->GetParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_NEAR(pa[i], pb[i], 1e-12);
}

TEST(SequentialModelTest, CloneIsIndependent) {
  auto model = MakeMlp(2, 2);
  auto clone = model->Clone();
  EXPECT_EQ(model->GetParameters(), clone->GetParameters());

  Matrix x;
  std::vector<int> y;
  MakeBlobs(64, &x, &y, 13);
  ASSERT_TRUE(clone->TrainBatch(x, y).ok());
  EXPECT_NE(model->GetParameters(), clone->GetParameters());
}

TEST(SequentialModelTest, ApplyStepValidatesSize) {
  auto model = MakeLogisticRegression(2, 2);
  EXPECT_FALSE(model->ApplyStep(std::vector<double>(1, 0.0)).ok());
  std::vector<double> zero(model->ParameterCount(), 0.0);
  const auto before = model->GetParameters();
  ASSERT_TRUE(model->ApplyStep(zero).ok());
  EXPECT_EQ(model->GetParameters(), before);
}

TEST(SequentialModelTest, SerializedBytesTracksParameterCount) {
  auto lr = MakeLogisticRegression(10, 2);
  // 10*2 weights + 2 biases = 22 params.
  EXPECT_EQ(lr->ParameterCount(), 22u);
  EXPECT_EQ(lr->SerializedBytes(), 16u + 8u * 22u);
}

}  // namespace
}  // namespace freeway
