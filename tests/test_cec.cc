#include "core/cec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace freeway {
namespace {

/// Gaussian blobs at given centers; labels = blob ids.
Batch BlobBatch(const std::vector<std::vector<double>>& centers, size_t per,
                double sigma, uint64_t seed) {
  Rng rng(seed);
  Batch b;
  const size_t dim = centers[0].size();
  b.features = Matrix(per * centers.size(), dim);
  b.labels.resize(per * centers.size());
  for (size_t c = 0; c < centers.size(); ++c) {
    for (size_t i = 0; i < per; ++i) {
      const size_t row = c * per + i;
      b.labels[row] = static_cast<int>(c);
      for (size_t d = 0; d < dim; ++d) {
        b.features.At(row, d) = centers[c][d] + rng.Gaussian(0.0, sigma);
      }
    }
  }
  return b;
}

TEST(CecTest, ValidatesInputs) {
  CoherentExperienceClustering cec;
  Batch experience = BlobBatch({{0, 0}, {5, 5}}, 10, 0.2, 1);
  Matrix query(8, 2);

  EXPECT_FALSE(cec.Predict(Matrix(0, 2), experience, 2).ok());
  Batch unlabeled;
  unlabeled.features = Matrix(4, 2);
  EXPECT_FALSE(cec.Predict(query, unlabeled, 2).ok());
  Batch wrong_dim = BlobBatch({{0, 0, 0}}, 4, 0.1, 2);
  EXPECT_FALSE(cec.Predict(query, wrong_dim, 2).ok());
  EXPECT_FALSE(cec.Predict(query, experience, 1).ok());
}

TEST(CecTest, MapsClustersToLabelsViaExperience) {
  CoherentExperienceClustering cec;
  // Experience: labeled blobs at (0,0)->0 and (8,8)->1.
  Batch experience = BlobBatch({{0, 0}, {8, 8}}, 20, 0.3, 3);
  // Query from the same two blobs.
  Batch query = BlobBatch({{0, 0}, {8, 8}}, 30, 0.3, 4);

  auto pred = cec.Predict(query.features, experience, 2);
  ASSERT_TRUE(pred.ok());
  size_t hits = 0;
  for (size_t i = 0; i < query.size(); ++i) {
    if (pred->labels[i] == query.labels[i]) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(query.size()),
            0.95);
}

TEST(CecTest, ProbaRowsAreDistributions) {
  CoherentExperienceClustering cec;
  Batch experience = BlobBatch({{0, 0}, {6, 6}, {-6, 6}}, 15, 0.4, 5);
  Batch query = BlobBatch({{0, 0}, {6, 6}, {-6, 6}}, 10, 0.4, 6);
  auto pred = cec.Predict(query.features, experience, 3);
  ASSERT_TRUE(pred.ok());
  ASSERT_EQ(pred->proba.rows(), query.size());
  ASSERT_EQ(pred->proba.cols(), 3u);
  for (size_t i = 0; i < pred->proba.rows(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_GT(pred->proba.At(i, j), 0.0);  // Smoothed: strictly positive.
      sum += pred->proba.At(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(CecTest, UnlabeledClusterInheritsNearestLabel) {
  CoherentExperienceClustering cec;
  // Experience only covers blob 0 and blob 1; the query adds a third blob
  // near blob 1, whose cluster has no labeled members.
  Batch experience = BlobBatch({{0, 0}, {10, 10}}, 15, 0.2, 7);
  Batch query = BlobBatch({{0, 0}, {10, 10}, {12, 12}}, 12, 0.2, 8);

  auto pred = cec.Predict(query.features, experience, 3);
  ASSERT_TRUE(pred.ok());
  EXPECT_GE(pred->unlabeled_clusters, 1u);
  // The third blob's rows (indices 24..35) inherit label 1 (nearest blob).
  size_t label1 = 0;
  for (size_t i = 24; i < 36; ++i) {
    if (pred->labels[i] == 1) ++label1;
  }
  EXPECT_GE(label1, 10u);
}

TEST(CecTest, FewerPointsThanClustersFails) {
  CoherentExperienceClustering cec;
  Batch experience = BlobBatch({{0, 0}}, 1, 0.1, 9);
  Matrix query(1, 2);
  EXPECT_FALSE(cec.Predict(query, experience, 5).ok());
}

TEST(CecTest, CoherentExperienceBeatsNoGuidanceAfterShift) {
  // The core hypothesis (Section IV-C): after a sudden shift, labeled data
  // from the tail of the previous batch guides cluster-label mapping well
  // enough to recover accuracy with no pre-trained model.
  CoherentExperienceClustering cec;
  // Post-shift distribution: blobs at new locations.
  Batch tail = BlobBatch({{20, -20}, {-20, 20}}, 8, 0.4, 10);
  Batch current = BlobBatch({{20, -20}, {-20, 20}}, 64, 0.4, 11);
  auto pred = cec.Predict(current.features, tail, 2);
  ASSERT_TRUE(pred.ok());
  size_t hits = 0;
  for (size_t i = 0; i < current.size(); ++i) {
    if (pred->labels[i] == current.labels[i]) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(current.size()),
            0.9);
}

}  // namespace
}  // namespace freeway
// -- appended tests: purity gate & over-clustering ---------------------------

namespace freeway {
namespace {

TEST(CecTest, PurityHighWhenClustersAlignWithClasses) {
  CoherentExperienceClustering cec;
  Batch experience = BlobBatch({{0, 0}, {9, 9}}, 25, 0.3, 21);
  Batch query = BlobBatch({{0, 0}, {9, 9}}, 25, 0.3, 22);
  auto pred = cec.Predict(query.features, experience, 2);
  ASSERT_TRUE(pred.ok());
  EXPECT_GT(pred->experience_purity, 0.95);
}

TEST(CecTest, PurityLowWhenLabelsIgnoreClusterStructure) {
  CoherentExperienceClustering cec;
  // Two blobs, but labels assigned at random — clusters carry no class
  // structure, which the purity signal must expose.
  Batch experience = BlobBatch({{0, 0}, {9, 9}}, 30, 0.3, 23);
  Rng rng(24);
  for (auto& label : experience.labels) {
    label = static_cast<int>(rng.NextBelow(2));
  }
  Batch query = BlobBatch({{0, 0}, {9, 9}}, 30, 0.3, 25);
  auto pred = cec.Predict(query.features, experience, 2);
  ASSERT_TRUE(pred.ok());
  EXPECT_LT(pred->experience_purity, 0.75);
}

TEST(CecTest, OverClusteringImprovesOverlappingClasses) {
  // Overlapping blobs: a single cluster per class mixes them; finer
  // clusters majority-mapped should recover at least as much purity.
  CecOptions one_per_class;
  one_per_class.clusters_per_class = 1;
  CecOptions two_per_class;
  two_per_class.clusters_per_class = 2;
  CoherentExperienceClustering coarse(one_per_class), fine(two_per_class);

  Batch experience = BlobBatch({{0, 0}, {2.2, 0}}, 60, 1.0, 26);
  Batch query = BlobBatch({{0, 0}, {2.2, 0}}, 60, 1.0, 27);
  auto coarse_pred = coarse.Predict(query.features, experience, 2);
  auto fine_pred = fine.Predict(query.features, experience, 2);
  ASSERT_TRUE(coarse_pred.ok());
  ASSERT_TRUE(fine_pred.ok());
  EXPECT_GE(fine_pred->experience_purity,
            coarse_pred->experience_purity - 0.05);
}

TEST(CecTest, TinyBatchesFallBackToOneClusterPerClass) {
  CoherentExperienceClustering cec;  // clusters_per_class = 2 by default.
  // 3 experience + 3 query points with 3 classes: k must clamp back to 3.
  Batch experience = BlobBatch({{0, 0}, {8, 0}, {0, 8}}, 1, 0.1, 28);
  Batch query = BlobBatch({{0, 0}, {8, 0}, {0, 8}}, 1, 0.1, 29);
  auto pred = cec.Predict(query.features, experience, 3);
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->labels.size(), 3u);
}

}  // namespace
}  // namespace freeway
// -- appended tests: query coverage ------------------------------------------

namespace freeway {
namespace {

TEST(CecTest, CoverageHighWhenQueryOverlapsExperience) {
  CoherentExperienceClustering cec;
  Batch experience = BlobBatch({{0, 0}, {9, 9}}, 20, 0.3, 31);
  Batch query = BlobBatch({{0, 0}, {9, 9}}, 20, 0.3, 32);
  auto pred = cec.Predict(query.features, experience, 2);
  ASSERT_TRUE(pred.ok());
  EXPECT_GT(pred->query_coverage, 0.9);
}

TEST(CecTest, CoverageLowWhenQueryIsDisjoint) {
  CoherentExperienceClustering cec;
  // Experience at two near blobs; query entirely in a far-away region:
  // its clusters contain no labeled members.
  Batch experience = BlobBatch({{0, 0}, {3, 3}}, 20, 0.3, 33);
  Batch query = BlobBatch({{40, 40}, {44, 44}}, 20, 0.3, 34);
  auto pred = cec.Predict(query.features, experience, 2);
  ASSERT_TRUE(pred.ok());
  EXPECT_LT(pred->query_coverage, 0.3);
}

}  // namespace
}  // namespace freeway
