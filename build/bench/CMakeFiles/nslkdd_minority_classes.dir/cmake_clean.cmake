file(REMOVE_RECURSE
  "CMakeFiles/nslkdd_minority_classes.dir/nslkdd_minority_classes.cpp.o"
  "CMakeFiles/nslkdd_minority_classes.dir/nslkdd_minority_classes.cpp.o.d"
  "nslkdd_minority_classes"
  "nslkdd_minority_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nslkdd_minority_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
