# Empty dependencies file for nslkdd_minority_classes.
# This may be replaced when dependencies are built.
