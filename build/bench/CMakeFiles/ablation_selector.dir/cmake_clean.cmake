file(REMOVE_RECURSE
  "CMakeFiles/ablation_selector.dir/ablation_selector.cpp.o"
  "CMakeFiles/ablation_selector.dir/ablation_selector.cpp.o.d"
  "ablation_selector"
  "ablation_selector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
