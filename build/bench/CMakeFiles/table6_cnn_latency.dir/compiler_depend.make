# Empty compiler generated dependencies file for table6_cnn_latency.
# This may be replaced when dependencies are built.
