# Empty dependencies file for ablation_update_modes.
# This may be replaced when dependencies are built.
