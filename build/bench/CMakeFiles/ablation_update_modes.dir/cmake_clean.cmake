file(REMOVE_RECURSE
  "CMakeFiles/ablation_update_modes.dir/ablation_update_modes.cpp.o"
  "CMakeFiles/ablation_update_modes.dir/ablation_update_modes.cpp.o.d"
  "ablation_update_modes"
  "ablation_update_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_update_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
