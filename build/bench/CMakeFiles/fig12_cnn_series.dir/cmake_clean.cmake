file(REMOVE_RECURSE
  "CMakeFiles/fig12_cnn_series.dir/fig12_cnn_series.cpp.o"
  "CMakeFiles/fig12_cnn_series.dir/fig12_cnn_series.cpp.o.d"
  "fig12_cnn_series"
  "fig12_cnn_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cnn_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
