# Empty compiler generated dependencies file for fig12_cnn_series.
# This may be replaced when dependencies are built.
