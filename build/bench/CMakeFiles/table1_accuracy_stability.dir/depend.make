# Empty dependencies file for table1_accuracy_stability.
# This may be replaced when dependencies are built.
