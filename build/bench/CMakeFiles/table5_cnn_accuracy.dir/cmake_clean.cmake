file(REMOVE_RECURSE
  "CMakeFiles/table5_cnn_accuracy.dir/table5_cnn_accuracy.cpp.o"
  "CMakeFiles/table5_cnn_accuracy.dir/table5_cnn_accuracy.cpp.o.d"
  "table5_cnn_accuracy"
  "table5_cnn_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_cnn_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
