# Empty compiler generated dependencies file for table5_cnn_accuracy.
# This may be replaced when dependencies are built.
