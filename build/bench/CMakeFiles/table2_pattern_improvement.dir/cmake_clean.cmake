file(REMOVE_RECURSE
  "CMakeFiles/table2_pattern_improvement.dir/table2_pattern_improvement.cpp.o"
  "CMakeFiles/table2_pattern_improvement.dir/table2_pattern_improvement.cpp.o.d"
  "table2_pattern_improvement"
  "table2_pattern_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_pattern_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
