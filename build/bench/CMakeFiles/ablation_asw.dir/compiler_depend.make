# Empty compiler generated dependencies file for ablation_asw.
# This may be replaced when dependencies are built.
