file(REMOVE_RECURSE
  "CMakeFiles/ablation_asw.dir/ablation_asw.cpp.o"
  "CMakeFiles/ablation_asw.dir/ablation_asw.cpp.o.d"
  "ablation_asw"
  "ablation_asw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_asw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
