file(REMOVE_RECURSE
  "CMakeFiles/fig9_mechanism_series.dir/fig9_mechanism_series.cpp.o"
  "CMakeFiles/fig9_mechanism_series.dir/fig9_mechanism_series.cpp.o.d"
  "fig9_mechanism_series"
  "fig9_mechanism_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_mechanism_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
