# Empty dependencies file for fig9_mechanism_series.
# This may be replaced when dependencies are built.
