file(REMOVE_RECURSE
  "CMakeFiles/fig2_shift_graph.dir/fig2_shift_graph.cpp.o"
  "CMakeFiles/fig2_shift_graph.dir/fig2_shift_graph.cpp.o.d"
  "fig2_shift_graph"
  "fig2_shift_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_shift_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
