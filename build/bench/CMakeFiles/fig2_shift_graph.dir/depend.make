# Empty dependencies file for fig2_shift_graph.
# This may be replaced when dependencies are built.
