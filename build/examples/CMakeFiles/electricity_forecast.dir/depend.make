# Empty dependencies file for electricity_forecast.
# This may be replaced when dependencies are built.
