file(REMOVE_RECURSE
  "CMakeFiles/drift_explorer.dir/drift_explorer.cpp.o"
  "CMakeFiles/drift_explorer.dir/drift_explorer.cpp.o.d"
  "drift_explorer"
  "drift_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
