file(REMOVE_RECURSE
  "CMakeFiles/network_security.dir/network_security.cpp.o"
  "CMakeFiles/network_security.dir/network_security.cpp.o.d"
  "network_security"
  "network_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
