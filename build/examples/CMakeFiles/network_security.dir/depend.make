# Empty dependencies file for network_security.
# This may be replaced when dependencies are built.
