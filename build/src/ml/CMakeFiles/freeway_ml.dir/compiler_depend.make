# Empty compiler generated dependencies file for freeway_ml.
# This may be replaced when dependencies are built.
