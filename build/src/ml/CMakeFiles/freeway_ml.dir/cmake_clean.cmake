file(REMOVE_RECURSE
  "CMakeFiles/freeway_ml.dir/feature_extractor.cc.o"
  "CMakeFiles/freeway_ml.dir/feature_extractor.cc.o.d"
  "CMakeFiles/freeway_ml.dir/layers.cc.o"
  "CMakeFiles/freeway_ml.dir/layers.cc.o.d"
  "CMakeFiles/freeway_ml.dir/losses.cc.o"
  "CMakeFiles/freeway_ml.dir/losses.cc.o.d"
  "CMakeFiles/freeway_ml.dir/models.cc.o"
  "CMakeFiles/freeway_ml.dir/models.cc.o.d"
  "CMakeFiles/freeway_ml.dir/optimizer.cc.o"
  "CMakeFiles/freeway_ml.dir/optimizer.cc.o.d"
  "CMakeFiles/freeway_ml.dir/sequential.cc.o"
  "CMakeFiles/freeway_ml.dir/sequential.cc.o.d"
  "CMakeFiles/freeway_ml.dir/serialize.cc.o"
  "CMakeFiles/freeway_ml.dir/serialize.cc.o.d"
  "libfreeway_ml.a"
  "libfreeway_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freeway_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
