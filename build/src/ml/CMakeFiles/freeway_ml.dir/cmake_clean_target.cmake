file(REMOVE_RECURSE
  "libfreeway_ml.a"
)
