
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/feature_extractor.cc" "src/ml/CMakeFiles/freeway_ml.dir/feature_extractor.cc.o" "gcc" "src/ml/CMakeFiles/freeway_ml.dir/feature_extractor.cc.o.d"
  "/root/repo/src/ml/layers.cc" "src/ml/CMakeFiles/freeway_ml.dir/layers.cc.o" "gcc" "src/ml/CMakeFiles/freeway_ml.dir/layers.cc.o.d"
  "/root/repo/src/ml/losses.cc" "src/ml/CMakeFiles/freeway_ml.dir/losses.cc.o" "gcc" "src/ml/CMakeFiles/freeway_ml.dir/losses.cc.o.d"
  "/root/repo/src/ml/models.cc" "src/ml/CMakeFiles/freeway_ml.dir/models.cc.o" "gcc" "src/ml/CMakeFiles/freeway_ml.dir/models.cc.o.d"
  "/root/repo/src/ml/optimizer.cc" "src/ml/CMakeFiles/freeway_ml.dir/optimizer.cc.o" "gcc" "src/ml/CMakeFiles/freeway_ml.dir/optimizer.cc.o.d"
  "/root/repo/src/ml/sequential.cc" "src/ml/CMakeFiles/freeway_ml.dir/sequential.cc.o" "gcc" "src/ml/CMakeFiles/freeway_ml.dir/sequential.cc.o.d"
  "/root/repo/src/ml/serialize.cc" "src/ml/CMakeFiles/freeway_ml.dir/serialize.cc.o" "gcc" "src/ml/CMakeFiles/freeway_ml.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/freeway_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/freeway_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
