file(REMOVE_RECURSE
  "libfreeway_data.a"
)
