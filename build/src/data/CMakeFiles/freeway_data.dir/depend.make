# Empty dependencies file for freeway_data.
# This may be replaced when dependencies are built.
