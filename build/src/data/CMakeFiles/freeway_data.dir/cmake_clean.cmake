file(REMOVE_RECURSE
  "CMakeFiles/freeway_data.dir/concept.cc.o"
  "CMakeFiles/freeway_data.dir/concept.cc.o.d"
  "CMakeFiles/freeway_data.dir/image_stream.cc.o"
  "CMakeFiles/freeway_data.dir/image_stream.cc.o.d"
  "CMakeFiles/freeway_data.dir/simulators.cc.o"
  "CMakeFiles/freeway_data.dir/simulators.cc.o.d"
  "CMakeFiles/freeway_data.dir/synthetic.cc.o"
  "CMakeFiles/freeway_data.dir/synthetic.cc.o.d"
  "libfreeway_data.a"
  "libfreeway_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freeway_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
