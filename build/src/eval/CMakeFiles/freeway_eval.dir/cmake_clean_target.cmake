file(REMOVE_RECURSE
  "libfreeway_eval.a"
)
