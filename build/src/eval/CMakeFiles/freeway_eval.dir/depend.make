# Empty dependencies file for freeway_eval.
# This may be replaced when dependencies are built.
