file(REMOVE_RECURSE
  "CMakeFiles/freeway_eval.dir/metrics.cc.o"
  "CMakeFiles/freeway_eval.dir/metrics.cc.o.d"
  "CMakeFiles/freeway_eval.dir/perf.cc.o"
  "CMakeFiles/freeway_eval.dir/perf.cc.o.d"
  "CMakeFiles/freeway_eval.dir/prequential.cc.o"
  "CMakeFiles/freeway_eval.dir/prequential.cc.o.d"
  "CMakeFiles/freeway_eval.dir/report.cc.o"
  "CMakeFiles/freeway_eval.dir/report.cc.o.d"
  "libfreeway_eval.a"
  "libfreeway_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freeway_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
