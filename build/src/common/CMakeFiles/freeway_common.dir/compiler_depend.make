# Empty compiler generated dependencies file for freeway_common.
# This may be replaced when dependencies are built.
