file(REMOVE_RECURSE
  "CMakeFiles/freeway_common.dir/logging.cc.o"
  "CMakeFiles/freeway_common.dir/logging.cc.o.d"
  "CMakeFiles/freeway_common.dir/rng.cc.o"
  "CMakeFiles/freeway_common.dir/rng.cc.o.d"
  "CMakeFiles/freeway_common.dir/status.cc.o"
  "CMakeFiles/freeway_common.dir/status.cc.o.d"
  "CMakeFiles/freeway_common.dir/strings.cc.o"
  "CMakeFiles/freeway_common.dir/strings.cc.o.d"
  "CMakeFiles/freeway_common.dir/thread_pool.cc.o"
  "CMakeFiles/freeway_common.dir/thread_pool.cc.o.d"
  "libfreeway_common.a"
  "libfreeway_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freeway_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
