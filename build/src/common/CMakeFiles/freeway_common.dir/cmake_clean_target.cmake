file(REMOVE_RECURSE
  "libfreeway_common.a"
)
