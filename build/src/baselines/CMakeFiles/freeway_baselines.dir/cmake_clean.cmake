file(REMOVE_RECURSE
  "CMakeFiles/freeway_baselines.dir/agem.cc.o"
  "CMakeFiles/freeway_baselines.dir/agem.cc.o.d"
  "CMakeFiles/freeway_baselines.dir/camel.cc.o"
  "CMakeFiles/freeway_baselines.dir/camel.cc.o.d"
  "CMakeFiles/freeway_baselines.dir/engine_learners.cc.o"
  "CMakeFiles/freeway_baselines.dir/engine_learners.cc.o.d"
  "CMakeFiles/freeway_baselines.dir/factory.cc.o"
  "CMakeFiles/freeway_baselines.dir/factory.cc.o.d"
  "CMakeFiles/freeway_baselines.dir/freeway_adapter.cc.o"
  "CMakeFiles/freeway_baselines.dir/freeway_adapter.cc.o.d"
  "CMakeFiles/freeway_baselines.dir/river.cc.o"
  "CMakeFiles/freeway_baselines.dir/river.cc.o.d"
  "CMakeFiles/freeway_baselines.dir/streaming_learner.cc.o"
  "CMakeFiles/freeway_baselines.dir/streaming_learner.cc.o.d"
  "libfreeway_baselines.a"
  "libfreeway_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freeway_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
