
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/agem.cc" "src/baselines/CMakeFiles/freeway_baselines.dir/agem.cc.o" "gcc" "src/baselines/CMakeFiles/freeway_baselines.dir/agem.cc.o.d"
  "/root/repo/src/baselines/camel.cc" "src/baselines/CMakeFiles/freeway_baselines.dir/camel.cc.o" "gcc" "src/baselines/CMakeFiles/freeway_baselines.dir/camel.cc.o.d"
  "/root/repo/src/baselines/engine_learners.cc" "src/baselines/CMakeFiles/freeway_baselines.dir/engine_learners.cc.o" "gcc" "src/baselines/CMakeFiles/freeway_baselines.dir/engine_learners.cc.o.d"
  "/root/repo/src/baselines/factory.cc" "src/baselines/CMakeFiles/freeway_baselines.dir/factory.cc.o" "gcc" "src/baselines/CMakeFiles/freeway_baselines.dir/factory.cc.o.d"
  "/root/repo/src/baselines/freeway_adapter.cc" "src/baselines/CMakeFiles/freeway_baselines.dir/freeway_adapter.cc.o" "gcc" "src/baselines/CMakeFiles/freeway_baselines.dir/freeway_adapter.cc.o.d"
  "/root/repo/src/baselines/river.cc" "src/baselines/CMakeFiles/freeway_baselines.dir/river.cc.o" "gcc" "src/baselines/CMakeFiles/freeway_baselines.dir/river.cc.o.d"
  "/root/repo/src/baselines/streaming_learner.cc" "src/baselines/CMakeFiles/freeway_baselines.dir/streaming_learner.cc.o" "gcc" "src/baselines/CMakeFiles/freeway_baselines.dir/streaming_learner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/freeway_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detectors/CMakeFiles/freeway_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/freeway_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/freeway_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/freeway_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/freeway_common.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/freeway_clustering.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
