file(REMOVE_RECURSE
  "libfreeway_baselines.a"
)
