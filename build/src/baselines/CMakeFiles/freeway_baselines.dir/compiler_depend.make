# Empty compiler generated dependencies file for freeway_baselines.
# This may be replaced when dependencies are built.
