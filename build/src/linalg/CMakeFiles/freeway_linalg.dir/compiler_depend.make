# Empty compiler generated dependencies file for freeway_linalg.
# This may be replaced when dependencies are built.
