file(REMOVE_RECURSE
  "CMakeFiles/freeway_linalg.dir/eigen.cc.o"
  "CMakeFiles/freeway_linalg.dir/eigen.cc.o.d"
  "CMakeFiles/freeway_linalg.dir/matrix.cc.o"
  "CMakeFiles/freeway_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/freeway_linalg.dir/pca.cc.o"
  "CMakeFiles/freeway_linalg.dir/pca.cc.o.d"
  "libfreeway_linalg.a"
  "libfreeway_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freeway_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
