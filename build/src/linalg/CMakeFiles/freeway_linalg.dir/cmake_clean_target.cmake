file(REMOVE_RECURSE
  "libfreeway_linalg.a"
)
