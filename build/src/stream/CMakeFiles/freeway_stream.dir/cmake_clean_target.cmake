file(REMOVE_RECURSE
  "libfreeway_stream.a"
)
