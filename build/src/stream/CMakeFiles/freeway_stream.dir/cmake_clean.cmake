file(REMOVE_RECURSE
  "CMakeFiles/freeway_stream.dir/batch.cc.o"
  "CMakeFiles/freeway_stream.dir/batch.cc.o.d"
  "libfreeway_stream.a"
  "libfreeway_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freeway_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
