# Empty compiler generated dependencies file for freeway_stream.
# This may be replaced when dependencies are built.
