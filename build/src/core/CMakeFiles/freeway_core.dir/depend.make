# Empty dependencies file for freeway_core.
# This may be replaced when dependencies are built.
