
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_window.cc" "src/core/CMakeFiles/freeway_core.dir/adaptive_window.cc.o" "gcc" "src/core/CMakeFiles/freeway_core.dir/adaptive_window.cc.o.d"
  "/root/repo/src/core/cec.cc" "src/core/CMakeFiles/freeway_core.dir/cec.cc.o" "gcc" "src/core/CMakeFiles/freeway_core.dir/cec.cc.o.d"
  "/root/repo/src/core/disorder.cc" "src/core/CMakeFiles/freeway_core.dir/disorder.cc.o" "gcc" "src/core/CMakeFiles/freeway_core.dir/disorder.cc.o.d"
  "/root/repo/src/core/exp_buffer.cc" "src/core/CMakeFiles/freeway_core.dir/exp_buffer.cc.o" "gcc" "src/core/CMakeFiles/freeway_core.dir/exp_buffer.cc.o.d"
  "/root/repo/src/core/granularity.cc" "src/core/CMakeFiles/freeway_core.dir/granularity.cc.o" "gcc" "src/core/CMakeFiles/freeway_core.dir/granularity.cc.o.d"
  "/root/repo/src/core/knowledge.cc" "src/core/CMakeFiles/freeway_core.dir/knowledge.cc.o" "gcc" "src/core/CMakeFiles/freeway_core.dir/knowledge.cc.o.d"
  "/root/repo/src/core/learner.cc" "src/core/CMakeFiles/freeway_core.dir/learner.cc.o" "gcc" "src/core/CMakeFiles/freeway_core.dir/learner.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/freeway_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/freeway_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/precompute.cc" "src/core/CMakeFiles/freeway_core.dir/precompute.cc.o" "gcc" "src/core/CMakeFiles/freeway_core.dir/precompute.cc.o.d"
  "/root/repo/src/core/rate_adjuster.cc" "src/core/CMakeFiles/freeway_core.dir/rate_adjuster.cc.o" "gcc" "src/core/CMakeFiles/freeway_core.dir/rate_adjuster.cc.o.d"
  "/root/repo/src/core/shift_detector.cc" "src/core/CMakeFiles/freeway_core.dir/shift_detector.cc.o" "gcc" "src/core/CMakeFiles/freeway_core.dir/shift_detector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/freeway_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/freeway_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/freeway_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/freeway_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/freeway_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
