file(REMOVE_RECURSE
  "libfreeway_core.a"
)
