file(REMOVE_RECURSE
  "CMakeFiles/freeway_core.dir/adaptive_window.cc.o"
  "CMakeFiles/freeway_core.dir/adaptive_window.cc.o.d"
  "CMakeFiles/freeway_core.dir/cec.cc.o"
  "CMakeFiles/freeway_core.dir/cec.cc.o.d"
  "CMakeFiles/freeway_core.dir/disorder.cc.o"
  "CMakeFiles/freeway_core.dir/disorder.cc.o.d"
  "CMakeFiles/freeway_core.dir/exp_buffer.cc.o"
  "CMakeFiles/freeway_core.dir/exp_buffer.cc.o.d"
  "CMakeFiles/freeway_core.dir/granularity.cc.o"
  "CMakeFiles/freeway_core.dir/granularity.cc.o.d"
  "CMakeFiles/freeway_core.dir/knowledge.cc.o"
  "CMakeFiles/freeway_core.dir/knowledge.cc.o.d"
  "CMakeFiles/freeway_core.dir/learner.cc.o"
  "CMakeFiles/freeway_core.dir/learner.cc.o.d"
  "CMakeFiles/freeway_core.dir/pipeline.cc.o"
  "CMakeFiles/freeway_core.dir/pipeline.cc.o.d"
  "CMakeFiles/freeway_core.dir/precompute.cc.o"
  "CMakeFiles/freeway_core.dir/precompute.cc.o.d"
  "CMakeFiles/freeway_core.dir/rate_adjuster.cc.o"
  "CMakeFiles/freeway_core.dir/rate_adjuster.cc.o.d"
  "CMakeFiles/freeway_core.dir/shift_detector.cc.o"
  "CMakeFiles/freeway_core.dir/shift_detector.cc.o.d"
  "libfreeway_core.a"
  "libfreeway_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freeway_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
