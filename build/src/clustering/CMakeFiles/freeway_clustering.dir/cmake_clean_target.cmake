file(REMOVE_RECURSE
  "libfreeway_clustering.a"
)
