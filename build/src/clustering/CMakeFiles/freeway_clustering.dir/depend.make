# Empty dependencies file for freeway_clustering.
# This may be replaced when dependencies are built.
