file(REMOVE_RECURSE
  "CMakeFiles/freeway_clustering.dir/kmeans.cc.o"
  "CMakeFiles/freeway_clustering.dir/kmeans.cc.o.d"
  "libfreeway_clustering.a"
  "libfreeway_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freeway_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
