file(REMOVE_RECURSE
  "CMakeFiles/freeway_detectors.dir/drift_detectors.cc.o"
  "CMakeFiles/freeway_detectors.dir/drift_detectors.cc.o.d"
  "libfreeway_detectors.a"
  "libfreeway_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freeway_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
