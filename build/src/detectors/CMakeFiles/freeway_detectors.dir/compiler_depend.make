# Empty compiler generated dependencies file for freeway_detectors.
# This may be replaced when dependencies are built.
