file(REMOVE_RECURSE
  "libfreeway_detectors.a"
)
