# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_common[1]_include.cmake")
include("/root/repo/build/tests/tests_linalg[1]_include.cmake")
include("/root/repo/build/tests/tests_ml[1]_include.cmake")
include("/root/repo/build/tests/tests_clustering[1]_include.cmake")
include("/root/repo/build/tests/tests_stream_data[1]_include.cmake")
include("/root/repo/build/tests/tests_core[1]_include.cmake")
include("/root/repo/build/tests/tests_baselines[1]_include.cmake")
include("/root/repo/build/tests/tests_eval[1]_include.cmake")
include("/root/repo/build/tests/tests_properties[1]_include.cmake")
include("/root/repo/build/tests/tests_detectors[1]_include.cmake")
include("/root/repo/build/tests/tests_metrics[1]_include.cmake")
include("/root/repo/build/tests/tests_parallel[1]_include.cmake")
