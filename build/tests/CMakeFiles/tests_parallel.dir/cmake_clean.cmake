file(REMOVE_RECURSE
  "CMakeFiles/tests_parallel.dir/test_parallel_determinism.cc.o"
  "CMakeFiles/tests_parallel.dir/test_parallel_determinism.cc.o.d"
  "tests_parallel"
  "tests_parallel.pdb"
  "tests_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
