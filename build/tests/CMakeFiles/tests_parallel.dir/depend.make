# Empty dependencies file for tests_parallel.
# This may be replaced when dependencies are built.
