file(REMOVE_RECURSE
  "CMakeFiles/tests_stream_data.dir/test_batch.cc.o"
  "CMakeFiles/tests_stream_data.dir/test_batch.cc.o.d"
  "CMakeFiles/tests_stream_data.dir/test_concept.cc.o"
  "CMakeFiles/tests_stream_data.dir/test_concept.cc.o.d"
  "CMakeFiles/tests_stream_data.dir/test_image_stream.cc.o"
  "CMakeFiles/tests_stream_data.dir/test_image_stream.cc.o.d"
  "CMakeFiles/tests_stream_data.dir/test_synthetic.cc.o"
  "CMakeFiles/tests_stream_data.dir/test_synthetic.cc.o.d"
  "tests_stream_data"
  "tests_stream_data.pdb"
  "tests_stream_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_stream_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
