# Empty dependencies file for tests_stream_data.
# This may be replaced when dependencies are built.
