file(REMOVE_RECURSE
  "CMakeFiles/tests_ml.dir/test_layers.cc.o"
  "CMakeFiles/tests_ml.dir/test_layers.cc.o.d"
  "CMakeFiles/tests_ml.dir/test_losses.cc.o"
  "CMakeFiles/tests_ml.dir/test_losses.cc.o.d"
  "CMakeFiles/tests_ml.dir/test_models.cc.o"
  "CMakeFiles/tests_ml.dir/test_models.cc.o.d"
  "CMakeFiles/tests_ml.dir/test_optimizer.cc.o"
  "CMakeFiles/tests_ml.dir/test_optimizer.cc.o.d"
  "CMakeFiles/tests_ml.dir/test_sequential.cc.o"
  "CMakeFiles/tests_ml.dir/test_sequential.cc.o.d"
  "CMakeFiles/tests_ml.dir/test_serialize.cc.o"
  "CMakeFiles/tests_ml.dir/test_serialize.cc.o.d"
  "tests_ml"
  "tests_ml.pdb"
  "tests_ml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
