file(REMOVE_RECURSE
  "CMakeFiles/tests_clustering.dir/test_kmeans.cc.o"
  "CMakeFiles/tests_clustering.dir/test_kmeans.cc.o.d"
  "tests_clustering"
  "tests_clustering.pdb"
  "tests_clustering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
