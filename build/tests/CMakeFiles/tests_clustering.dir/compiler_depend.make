# Empty compiler generated dependencies file for tests_clustering.
# This may be replaced when dependencies are built.
