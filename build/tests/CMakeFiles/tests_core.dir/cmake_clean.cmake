file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/test_adaptive_window.cc.o"
  "CMakeFiles/tests_core.dir/test_adaptive_window.cc.o.d"
  "CMakeFiles/tests_core.dir/test_cec.cc.o"
  "CMakeFiles/tests_core.dir/test_cec.cc.o.d"
  "CMakeFiles/tests_core.dir/test_disorder.cc.o"
  "CMakeFiles/tests_core.dir/test_disorder.cc.o.d"
  "CMakeFiles/tests_core.dir/test_exp_buffer.cc.o"
  "CMakeFiles/tests_core.dir/test_exp_buffer.cc.o.d"
  "CMakeFiles/tests_core.dir/test_granularity.cc.o"
  "CMakeFiles/tests_core.dir/test_granularity.cc.o.d"
  "CMakeFiles/tests_core.dir/test_knowledge.cc.o"
  "CMakeFiles/tests_core.dir/test_knowledge.cc.o.d"
  "CMakeFiles/tests_core.dir/test_learner.cc.o"
  "CMakeFiles/tests_core.dir/test_learner.cc.o.d"
  "CMakeFiles/tests_core.dir/test_pipeline.cc.o"
  "CMakeFiles/tests_core.dir/test_pipeline.cc.o.d"
  "CMakeFiles/tests_core.dir/test_precompute.cc.o"
  "CMakeFiles/tests_core.dir/test_precompute.cc.o.d"
  "CMakeFiles/tests_core.dir/test_rate_adjuster.cc.o"
  "CMakeFiles/tests_core.dir/test_rate_adjuster.cc.o.d"
  "CMakeFiles/tests_core.dir/test_shift_detector.cc.o"
  "CMakeFiles/tests_core.dir/test_shift_detector.cc.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
