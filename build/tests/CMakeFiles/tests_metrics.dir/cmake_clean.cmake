file(REMOVE_RECURSE
  "CMakeFiles/tests_metrics.dir/test_metrics.cc.o"
  "CMakeFiles/tests_metrics.dir/test_metrics.cc.o.d"
  "tests_metrics"
  "tests_metrics.pdb"
  "tests_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
