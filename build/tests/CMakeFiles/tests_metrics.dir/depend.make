# Empty dependencies file for tests_metrics.
# This may be replaced when dependencies are built.
