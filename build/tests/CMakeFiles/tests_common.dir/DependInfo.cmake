
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/tests_common.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/tests_common.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_status.cc" "tests/CMakeFiles/tests_common.dir/test_status.cc.o" "gcc" "tests/CMakeFiles/tests_common.dir/test_status.cc.o.d"
  "/root/repo/tests/test_strings.cc" "tests/CMakeFiles/tests_common.dir/test_strings.cc.o" "gcc" "tests/CMakeFiles/tests_common.dir/test_strings.cc.o.d"
  "/root/repo/tests/test_thread_pool.cc" "tests/CMakeFiles/tests_common.dir/test_thread_pool.cc.o" "gcc" "tests/CMakeFiles/tests_common.dir/test_thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/freeway_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/freeway_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/freeway_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/freeway_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/freeway_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/detectors/CMakeFiles/freeway_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/freeway_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/freeway_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/freeway_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/freeway_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
