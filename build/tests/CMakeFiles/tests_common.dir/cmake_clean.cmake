file(REMOVE_RECURSE
  "CMakeFiles/tests_common.dir/test_rng.cc.o"
  "CMakeFiles/tests_common.dir/test_rng.cc.o.d"
  "CMakeFiles/tests_common.dir/test_status.cc.o"
  "CMakeFiles/tests_common.dir/test_status.cc.o.d"
  "CMakeFiles/tests_common.dir/test_strings.cc.o"
  "CMakeFiles/tests_common.dir/test_strings.cc.o.d"
  "CMakeFiles/tests_common.dir/test_thread_pool.cc.o"
  "CMakeFiles/tests_common.dir/test_thread_pool.cc.o.d"
  "tests_common"
  "tests_common.pdb"
  "tests_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
