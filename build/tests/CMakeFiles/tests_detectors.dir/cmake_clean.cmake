file(REMOVE_RECURSE
  "CMakeFiles/tests_detectors.dir/test_drift_detectors.cc.o"
  "CMakeFiles/tests_detectors.dir/test_drift_detectors.cc.o.d"
  "tests_detectors"
  "tests_detectors.pdb"
  "tests_detectors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
