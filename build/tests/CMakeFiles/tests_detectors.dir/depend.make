# Empty dependencies file for tests_detectors.
# This may be replaced when dependencies are built.
