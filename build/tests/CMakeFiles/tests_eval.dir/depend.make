# Empty dependencies file for tests_eval.
# This may be replaced when dependencies are built.
