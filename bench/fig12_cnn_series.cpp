// Reproduces Figure 12 (appendix): per-batch real-time accuracy of
// FreewayML-with-CNN versus the plain StreamingCNN on the four real-dataset
// simulators and the two image streams, with the chosen strategy annotated
// (0 = ensemble, 1 = CEC, 2 = knowledge reuse).

#include <memory>

#include "baselines/factory.h"
#include "baselines/freeway_adapter.h"
#include "baselines/streaming_learner.h"
#include "bench/bench_util.h"
#include "data/image_stream.h"
#include "eval/report.h"
#include "ml/models.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

void Trace(const std::string& label, StreamSource* src_plain,
           StreamSource* src_freeway, StreamingLearner* plain,
           FreewayAdapter* freeway, size_t batches, size_t batch_size,
           size_t warmup) {
  std::printf("--- %s ---\n", label.c_str());
  std::vector<double> plain_acc, freeway_acc, strategy;
  for (size_t b = 0; b < batches; ++b) {
    auto ba = src_plain->NextBatch(batch_size);
    auto bb = src_freeway->NextBatch(batch_size);
    ba.status().CheckOk();
    bb.status().CheckOk();
    auto pa = plain->PrequentialStep(*ba);
    auto pb = freeway->PrequentialStep(*bb);
    pa.status().CheckOk();
    pb.status().CheckOk();
    if (b < warmup) continue;
    size_t ha = 0, hb = 0;
    for (size_t i = 0; i < ba->size(); ++i) {
      if ((*pa)[i] == ba->labels[i]) ++ha;
      if ((*pb)[i] == bb->labels[i]) ++hb;
    }
    plain_acc.push_back(static_cast<double>(ha) / ba->size());
    freeway_acc.push_back(static_cast<double>(hb) / bb->size());
    strategy.push_back(static_cast<double>(freeway->last_report().strategy));
  }
  SeriesPrinter series("batch");
  series.AddSeries("streaming_cnn", plain_acc);
  series.AddSeries("freewayml_cnn", freeway_acc);
  series.AddSeries("strategy", strategy);
  series.Print(3);
  std::printf("\n");
}

}  // namespace

int main() {
  Banner("fig12_cnn_series", "Figure 12 (appendix)",
         "Real-time accuracy of FreewayML-CNN mechanisms vs plain "
         "StreamingCNN (strategy: 0=ensemble, 1=CEC, 2=knowledge).");

  // Tabular streams through the 3-layer CNN.
  for (const char* dataset :
       {"Airlines", "Covertype", "NSL-KDD", "Electricity"}) {
    auto src_plain = MakeBenchmarkDataset(dataset, 55);
    auto src_freeway = MakeBenchmarkDataset(dataset, 55);
    src_plain.status().CheckOk();
    src_freeway.status().CheckOk();
    auto plain = MakeSystem("Plain", ModelKind::kTabularCnn,
                            (*src_plain)->input_dim(),
                            (*src_plain)->num_classes());
    plain.status().CheckOk();
    std::unique_ptr<Model> proto =
        MakeTabularCnn((*src_freeway)->input_dim(),
                       (*src_freeway)->num_classes());
    FreewayAdapter freeway(*proto);
    Trace(dataset, src_plain->get(), src_freeway->get(), plain->get(),
          &freeway, /*batches=*/60, /*batch_size=*/256, /*warmup=*/8);
  }

  // Image streams through the 5-layer CNN with the frozen extractor
  // feeding CEC.
  ModelConfig config;
  config.learning_rate = 0.05;
  for (const char* which : {"Animals", "Flowers"}) {
    auto src_plain = std::string(which) == "Animals" ? MakeAnimalsSim(9)
                                                     : MakeFlowersSim(9);
    auto src_freeway = std::string(which) == "Animals" ? MakeAnimalsSim(9)
                                                       : MakeFlowersSim(9);
    PlainStreamingLearner plain(
        "StreamingCNN",
        MakeImageCnn(src_plain->shape(), src_plain->num_classes(), config));
    std::unique_ptr<Model> proto =
        MakeImageCnn(src_freeway->shape(), src_freeway->num_classes(),
                     config);
    LearnerOptions options;
    options.cec.extractor = std::make_shared<RandomProjectionExtractor>(
        src_freeway->input_dim(), 32);
    FreewayAdapter freeway(*proto, options);
    Trace(which, src_plain.get(), src_freeway.get(), &plain, &freeway,
          /*batches=*/36, /*batch_size=*/96, /*warmup=*/6);
  }
  return 0;
}
