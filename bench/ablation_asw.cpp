// Ablation: what the Adaptive Streaming Window's decay policy buys.
// Compares three long-window configurations inside FreewayML:
//   (a) fixed window     — no decay at all (plain sliding window),
//   (b) uniform decay    — time-based decay only, rank/disorder ignored,
//   (c) full ASW         — rank- and disorder-aware decay (the paper's
//                          Algorithm 1).
// Reported: G_acc / SI on two drifting simulators.

#include <memory>

#include "baselines/freeway_adapter.h"
#include "bench/bench_util.h"
#include "eval/report.h"
#include "ml/models.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

PrequentialResult RunVariant(const std::string& dataset,
                             const AdaptiveWindowOptions& window) {
  auto source = MakeBenchmarkDataset(dataset, 404);
  source.status().CheckOk();
  std::unique_ptr<Model> proto =
      MakeMlp((*source)->input_dim(), (*source)->num_classes());
  LearnerOptions options;
  options.granularity.window = window;
  FreewayAdapter freeway(*proto, options);
  PrequentialOptions opts;
  opts.num_batches = 90;
  opts.batch_size = 512;
  opts.warmup_batches = 10;
  auto result = RunPrequential(&freeway, source->get(), opts);
  result.status().CheckOk();
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  Banner("ablation_asw", "DESIGN.md ablation",
         "ASW decay policy ablation: fixed window vs uniform decay vs full "
         "rank+disorder-aware ASW.");

  AdaptiveWindowOptions fixed;
  fixed.base_decay = 0.0;
  fixed.rank_decay = 0.0;
  fixed.disorder_decay = 0.0;

  AdaptiveWindowOptions uniform;
  uniform.base_decay = 0.12;  // Matches the full policy's average decay.
  uniform.rank_decay = 0.0;
  uniform.disorder_decay = 0.0;

  AdaptiveWindowOptions full;  // Library defaults = the paper's policy.

  TablePrinter table({"Dataset", "Variant", "G_acc", "SI"});
  for (const char* dataset : {"Airlines", "NSL-KDD"}) {
    struct Variant {
      const char* name;
      const AdaptiveWindowOptions* window;
    };
    for (const Variant& v :
         {Variant{"fixed window", &fixed}, Variant{"uniform decay", &uniform},
          Variant{"full ASW", &full}}) {
      PrequentialResult r = RunVariant(dataset, *v.window);
      table.AddRow({dataset, v.name, FormatPercent(r.g_acc),
                    FormatDouble(r.stability_index, 3)});
    }
  }
  table.Print();
  return 0;
}
