// Reproduces the paper's NSL-KDD analysis (Section VI-C): "the data
// distribution shifts with the types of current network attacks, often
// leading to significant class imbalances. Our method significantly
// enhances the classification performance of the minority classes."
//
// This bench accumulates full confusion matrices for the plain StreamingMLP
// and FreewayML over the NSL-KDD simulator (classes: normal, dos, probe,
// r2l, u2r with priors down to 2%) and reports per-class recall/F1 plus the
// imbalance-robust aggregates (macro-F1, Cohen's kappa).

#include <memory>

#include "baselines/factory.h"
#include "bench/bench_util.h"
#include "eval/metrics.h"
#include "eval/report.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

const char* kClassNames[] = {"normal", "dos", "probe", "r2l", "u2r"};

ConfusionMatrix RunSystem(const std::string& system) {
  auto source = MakeBenchmarkDataset("NSL-KDD", 2024);
  source.status().CheckOk();
  auto learner = MakeSystem(system, ModelKind::kMlp, (*source)->input_dim(),
                            (*source)->num_classes());
  learner.status().CheckOk();

  ConfusionMatrix cm((*source)->num_classes());
  for (int b = 0; b < 180; ++b) {
    auto batch = (*source)->NextBatch(512);
    batch.status().CheckOk();
    auto pred = (*learner)->PrequentialStep(*batch);
    pred.status().CheckOk();
    if (b < 10) continue;
    cm.AddAll(batch->labels, *pred).CheckOk();
  }
  return cm;
}

}  // namespace

int main() {
  Banner("nslkdd_minority_classes", "Section VI-C analysis",
         "Per-class recall/F1 on the NSL-KDD simulator: FreewayML vs plain "
         "StreamingMLP under attack-wave class imbalance.");

  ConfusionMatrix plain = RunSystem("Plain");
  ConfusionMatrix freeway = RunSystem("FreewayML");

  TablePrinter table({"Class", "Support", "Plain recall", "Freeway recall",
                      "Plain F1", "Freeway F1"});
  for (size_t c = 0; c < plain.num_classes(); ++c) {
    table.AddRow({kClassNames[c], std::to_string(plain.Support(c)),
                  FormatPercent(plain.Recall(c)),
                  FormatPercent(freeway.Recall(c)),
                  FormatDouble(plain.F1(c), 3),
                  FormatDouble(freeway.F1(c), 3)});
  }
  table.Print();

  std::printf("\naggregates:\n");
  std::printf("  accuracy : plain %s, freeway %s\n",
              FormatPercent(plain.Accuracy()).c_str(),
              FormatPercent(freeway.Accuracy()).c_str());
  std::printf("  macro-F1 : plain %s, freeway %s\n",
              FormatDouble(plain.MacroF1(), 4).c_str(),
              FormatDouble(freeway.MacroF1(), 4).c_str());
  std::printf("  kappa    : plain %s, freeway %s\n",
              FormatDouble(plain.CohensKappa(), 4).c_str(),
              FormatDouble(freeway.CohensKappa(), 4).c_str());
  return 0;
}
