// Ablation: what the distance-weighted multi-granularity ensemble buys.
// Compares:
//   (a) short only        — model_num = 2 but the kernel forced so wide the
//                           blend is ~uniform is NOT comparable, so we use a
//                           plain single streaming model as the true
//                           short-only arm,
//   (b) equal-weight blend — kernel_sigma huge: members always blended
//                           50/50 regardless of distance,
//   (c) distance-weighted  — the paper's Gaussian-kernel blend (Eq. 14),
//   (d) three granularities — model_num = 3 (windows 8 and 16).
// Reported: G_acc / SI on two drifting simulators.

#include <memory>

#include "baselines/freeway_adapter.h"
#include "bench/bench_util.h"
#include "eval/report.h"
#include "ml/models.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

PrequentialResult RunFreewayVariant(const std::string& dataset,
                                    const LearnerOptions& options) {
  auto source = MakeBenchmarkDataset(dataset, 505);
  source.status().CheckOk();
  std::unique_ptr<Model> proto =
      MakeMlp((*source)->input_dim(), (*source)->num_classes());
  FreewayAdapter freeway(*proto, options);
  PrequentialOptions opts;
  opts.num_batches = 90;
  opts.batch_size = 512;
  opts.warmup_batches = 10;
  auto result = RunPrequential(&freeway, source->get(), opts);
  result.status().CheckOk();
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  Banner("ablation_ensemble", "DESIGN.md ablation",
         "Ensemble ablation: plain single model vs equal-weight blend vs "
         "distance-weighted kernel blend vs three granularities.");

  TablePrinter table({"Dataset", "Variant", "G_acc", "SI"});
  for (const char* dataset : {"Airlines", "Electricity"}) {
    {
      BenchScale scale;
      scale.seed = 505;
      PrequentialResult r =
          RunSystemOnDataset("Plain", ModelKind::kMlp, dataset, scale);
      table.AddRow({dataset, "short only (plain)", FormatPercent(r.g_acc),
                    FormatDouble(r.stability_index, 3)});
    }
    {
      LearnerOptions equal;
      equal.granularity.kernel_sigma = 1e9;  // Kernel ~= 1 for any distance.
      PrequentialResult r = RunFreewayVariant(dataset, equal);
      table.AddRow({dataset, "equal-weight blend", FormatPercent(r.g_acc),
                    FormatDouble(r.stability_index, 3)});
    }
    {
      LearnerOptions weighted;  // Defaults: adaptive Gaussian kernel.
      PrequentialResult r = RunFreewayVariant(dataset, weighted);
      table.AddRow({dataset, "distance-weighted", FormatPercent(r.g_acc),
                    FormatDouble(r.stability_index, 3)});
    }
    {
      LearnerOptions three;
      three.model_num = 3;
      PrequentialResult r = RunFreewayVariant(dataset, three);
      table.AddRow({dataset, "three granularities", FormatPercent(r.g_acc),
                    FormatDouble(r.stability_index, 3)});
    }
  }
  table.Print();
  return 0;
}
