#ifndef FREEWAYML_BENCH_BENCH_UTIL_H_
#define FREEWAYML_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "baselines/factory.h"
#include "common/strings.h"
#include "data/simulators.h"
#include "eval/prequential.h"

namespace freeway {
namespace bench {

/// Host context stamped into every BENCH_*.json. Numbers measured on a
/// loaded or frequency-scaled machine are not comparable to quiet ones, and
/// a single-core host cannot exhibit parallel speedups at all — the
/// fingerprint says which regime a given JSON was recorded in.
struct HostFingerprint {
  unsigned cores = 0;
  /// 1-minute load average at emit time; -1 when unreadable.
  double load_avg_1m = -1.0;
  /// cpu0's cpufreq scaling governor (e.g. "performance", "powersave");
  /// empty when sysfs does not expose one (VMs, containers).
  std::string governor;
  bool single_core = false;
};

inline HostFingerprint FingerprintHost() {
  HostFingerprint fp;
  fp.cores = std::thread::hardware_concurrency();
  fp.single_core = fp.cores <= 1;
  double load[1] = {0.0};
  if (::getloadavg(load, 1) == 1) fp.load_avg_1m = load[0];
  std::ifstream gov("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  if (gov) std::getline(gov, fp.governor);
  return fp;
}

/// The fingerprint as a JSON object, ready to embed under a "host" key.
inline std::string HostJson() {
  const HostFingerprint fp = FingerprintHost();
  return "{\"cores\": " + std::to_string(fp.cores) +
         ", \"single_core\": " + (fp.single_core ? "true" : "false") +
         ", \"load_avg_1m\": " + FormatDouble(fp.load_avg_1m, 2) +
         ", \"governor\": \"" + fp.governor + "\"}";
}

/// Standard accuracy-experiment scale. The paper streams full datasets with
/// batch 1024; these defaults keep every bench binary in the tens of
/// seconds while preserving the drift structure (180 batches cover at
/// least one full cycle of every simulator's drift script, so all three
/// shift patterns are sampled).
struct BenchScale {
  size_t num_batches = 180;
  size_t batch_size = 512;
  size_t warmup_batches = 10;
  uint64_t seed = 1234;
};

/// Runs `system` (by table name) with `kind` over a fresh instance of the
/// named benchmark dataset; aborts on configuration errors (bench binaries
/// treat misconfiguration as fatal).
inline PrequentialResult RunSystemOnDataset(const std::string& system,
                                            ModelKind kind,
                                            const std::string& dataset,
                                            const BenchScale& scale = {}) {
  auto source = MakeBenchmarkDataset(dataset, scale.seed);
  source.status().CheckOk();
  auto learner = MakeSystem(system, kind, (*source)->input_dim(),
                            (*source)->num_classes());
  learner.status().CheckOk();
  PrequentialOptions opts;
  opts.num_batches = scale.num_batches;
  opts.batch_size = scale.batch_size;
  opts.warmup_batches = scale.warmup_batches;
  auto result = RunPrequential(learner->get(), source->get(), opts);
  result.status().CheckOk();
  return std::move(result).ValueOrDie();
}

/// Prints the standard bench banner so tee'd logs are self-describing.
inline void Banner(const char* experiment, const char* paper_ref,
                   const char* description) {
  std::printf("================================================================\n");
  std::printf("%s  (%s)\n%s\n", experiment, paper_ref, description);
  std::printf("================================================================\n\n");
}

}  // namespace bench
}  // namespace freeway

#endif  // FREEWAYML_BENCH_BENCH_UTIL_H_
