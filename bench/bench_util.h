#ifndef FREEWAYML_BENCH_BENCH_UTIL_H_
#define FREEWAYML_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "baselines/factory.h"
#include "common/strings.h"
#include "data/simulators.h"
#include "eval/prequential.h"

namespace freeway {
namespace bench {

/// Standard accuracy-experiment scale. The paper streams full datasets with
/// batch 1024; these defaults keep every bench binary in the tens of
/// seconds while preserving the drift structure (180 batches cover at
/// least one full cycle of every simulator's drift script, so all three
/// shift patterns are sampled).
struct BenchScale {
  size_t num_batches = 180;
  size_t batch_size = 512;
  size_t warmup_batches = 10;
  uint64_t seed = 1234;
};

/// Runs `system` (by table name) with `kind` over a fresh instance of the
/// named benchmark dataset; aborts on configuration errors (bench binaries
/// treat misconfiguration as fatal).
inline PrequentialResult RunSystemOnDataset(const std::string& system,
                                            ModelKind kind,
                                            const std::string& dataset,
                                            const BenchScale& scale = {}) {
  auto source = MakeBenchmarkDataset(dataset, scale.seed);
  source.status().CheckOk();
  auto learner = MakeSystem(system, kind, (*source)->input_dim(),
                            (*source)->num_classes());
  learner.status().CheckOk();
  PrequentialOptions opts;
  opts.num_batches = scale.num_batches;
  opts.batch_size = scale.batch_size;
  opts.warmup_batches = scale.warmup_batches;
  auto result = RunPrequential(learner->get(), source->get(), opts);
  result.status().CheckOk();
  return std::move(result).ValueOrDie();
}

/// Prints the standard bench banner so tee'd logs are self-describing.
inline void Banner(const char* experiment, const char* paper_ref,
                   const char* description) {
  std::printf("================================================================\n");
  std::printf("%s  (%s)\n%s\n", experiment, paper_ref, description);
  std::printf("================================================================\n\n");
}

}  // namespace bench
}  // namespace freeway

#endif  // FREEWAYML_BENCH_BENCH_UTIL_H_
