// Reproduces Figure 10: end-to-end throughput (records/second over
// infer-then-train cycles) versus batch size on the Hyperplane stream, for
// the StreamingLR system lineup (Fig 10a) and the StreamingMLP lineup
// (Fig 10b).
//
// Expected shape: FreewayML leads the LR lineup (the JVM-engine baselines
// pay serialization and, for Spark, partition aggregation); in the MLP
// lineup FreewayML is comparable to River and clearly ahead of Camel
// (selection cost) and A-GEM (double gradient + projection).

#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "eval/perf.h"
#include "eval/report.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

void RunFamily(const char* family, ModelKind kind,
               const std::vector<std::string>& systems) {
  std::printf("--- %s (records/sec) ---\n", family);
  const std::vector<size_t> batch_sizes = {256, 512, 1024, 2048};

  std::vector<std::string> headers = {"System"};
  for (size_t bs : batch_sizes) headers.push_back(std::to_string(bs));
  TablePrinter table(headers);

  for (const auto& system : systems) {
    std::vector<std::string> row = {system};
    for (size_t bs : batch_sizes) {
      HyperplaneSource source;
      auto learner = MakeSystem(system, kind, source.input_dim(),
                                source.num_classes());
      learner.status().CheckOk();
      PerfOptions opts;
      opts.batch_size = bs;
      opts.warmup_batches = 3;
      opts.measure_batches = 15;
      auto tput = MeasureThroughput(learner->get(), &source, opts);
      tput.status().CheckOk();
      row.push_back(FormatDouble(tput.value() / 1000.0, 1) + "k");
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  Banner("fig10_throughput", "Figure 10",
         "Throughput vs batch size on Hyperplane (prequential "
         "infer-then-train cycles).");
  RunFamily("StreamingLR (Fig 10a)", ModelKind::kLogisticRegression,
            LrSystemNames());
  RunFamily("StreamingMLP (Fig 10b)", ModelKind::kMlp, MlpSystemNames());
  return 0;
}
