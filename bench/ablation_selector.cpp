// Ablation: what the strategy selector buys. Compares FreewayML with:
//   (a) selector off        — alpha so high that every batch is "slight"
//                             (ensemble only; CEC / knowledge never fire),
//   (b) no knowledge reuse  — Pattern C matches rejected, severe shifts all
//                             route to CEC,
//   (c) no warm start       — knowledge serves inference only; the short
//                             model relearns reoccurring concepts,
//   (d) full selector       — library defaults.
// Reported: G_acc / SI plus the per-pattern accuracies where the mechanisms
// differ.

#include <memory>

#include "baselines/freeway_adapter.h"
#include "bench/bench_util.h"
#include "eval/report.h"
#include "ml/models.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

PrequentialResult RunVariant(const std::string& dataset,
                             const LearnerOptions& options) {
  auto source = MakeBenchmarkDataset(dataset, 606);
  source.status().CheckOk();
  std::unique_ptr<Model> proto =
      MakeMlp((*source)->input_dim(), (*source)->num_classes());
  FreewayAdapter freeway(*proto, options);
  PrequentialOptions opts;
  opts.num_batches = 90;
  opts.batch_size = 512;
  opts.warmup_batches = 10;
  auto result = RunPrequential(&freeway, source->get(), opts);
  result.status().CheckOk();
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  Banner("ablation_selector", "DESIGN.md ablation",
         "Strategy-selector ablation on NSL-KDD and Electricity.");

  TablePrinter table({"Dataset", "Variant", "G_acc", "SI", "Sudden",
                      "Reoccurring"});
  for (const char* dataset : {"NSL-KDD", "Electricity"}) {
    struct Variant {
      const char* name;
      LearnerOptions options;
    };
    std::vector<Variant> variants(4);
    variants[0].name = "selector off (ensemble only)";
    variants[0].options.alpha = 1e9;
    variants[1].name = "no knowledge reuse (CEC only)";
    variants[1].options.knowledge_match_factor = 0.0;
    variants[2].name = "no warm start";
    variants[2].options.warm_start_on_reuse = false;
    variants[3].name = "full selector";

    for (const Variant& v : variants) {
      PrequentialResult r = RunVariant(dataset, v.options);
      table.AddRow({dataset, v.name, FormatPercent(r.g_acc),
                    FormatDouble(r.stability_index, 3),
                    FormatPercent(r.per_pattern.sudden),
                    FormatPercent(r.per_pattern.reoccurring)});
    }
  }
  table.Print();
  return 0;
}
