// Reproduces Table VI (appendix): per-batch inference and update latency of
// the plain StreamingCNN versus FreewayML with the same CNN, on the
// Hyperplane stream, batch sizes 512-4096.
//
// Expected shape: FreewayML's adaptive machinery adds only a small relative
// overhead (the paper reports < 5%).

#include <memory>

#include "baselines/freeway_adapter.h"
#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "eval/perf.h"
#include "eval/report.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

int main() {
  Banner("table6_cnn_latency", "Table VI (appendix)",
         "CNN inference/update latency (us per batch) on Hyperplane: plain "
         "StreamingCNN vs FreewayML with the same CNN.");

  const std::vector<size_t> batch_sizes = {512, 1024, 2048, 4096};
  std::vector<std::string> headers = {"Metric", "System"};
  for (size_t bs : batch_sizes) headers.push_back(std::to_string(bs));
  TablePrinter table(headers);

  struct Row {
    std::string metric, system;
    std::vector<double> values;
  };
  std::vector<Row> rows = {{"CNN_infer", "StreamingCNN", {}},
                           {"CNN_infer", "FreewayML", {}},
                           {"CNN_update", "StreamingCNN", {}},
                           {"CNN_update", "FreewayML", {}}};

  for (size_t bs : batch_sizes) {
    for (const char* system : {"Plain", "FreewayML"}) {
      HyperplaneSource source;
      std::unique_ptr<StreamingLearner> learner;
      if (std::string(system) == "Plain") {
        auto made = MakeSystem(system, ModelKind::kTabularCnn,
                               source.input_dim(), source.num_classes());
        made.status().CheckOk();
        learner = std::move(made).ValueOrDie();
      } else {
        // The deployed FreewayML system runs its long-model updates
        // asynchronously (Section V-A1), which is what its latency numbers
        // measure in the paper.
        std::unique_ptr<Model> proto =
            MakeTabularCnn(source.input_dim(), source.num_classes());
        LearnerOptions options;
        options.granularity.async_long_updates = true;
        learner = std::make_unique<FreewayAdapter>(*proto, options);
      }
      PerfOptions opts;
      opts.batch_size = bs;
      opts.warmup_batches = 3;
      opts.measure_batches = 12;
      auto lat = MeasureLatency(learner.get(), &source, opts);
      lat.status().CheckOk();
      const size_t offset = std::string(system) == "Plain" ? 0 : 1;
      rows[offset].values.push_back(lat->infer_micros);
      rows[2 + offset].values.push_back(lat->update_micros);
    }
  }

  for (const Row& row : rows) {
    std::vector<std::string> cells = {row.metric, row.system};
    for (double v : row.values) cells.push_back(FormatDouble(v, 0));
    table.AddRow(std::move(cells));
  }
  table.Print();

  // Relative overhead summary (the paper's < 5% claim).
  std::printf("\nFreewayML overhead vs plain CNN per batch size:\n");
  for (size_t i = 0; i < batch_sizes.size(); ++i) {
    const double infer_over =
        (rows[1].values[i] - rows[0].values[i]) / rows[0].values[i];
    const double update_over =
        (rows[3].values[i] - rows[2].values[i]) / rows[2].values[i];
    std::printf("  batch %zu: infer %+.1f%%, update %+.1f%%\n",
                batch_sizes[i], infer_over * 100.0, update_over * 100.0);
  }
  return 0;
}
