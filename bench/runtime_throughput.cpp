// Multi-stream runtime benchmark: aggregate batch throughput of an N-shard
// StreamRuntime fed by N producer threads versus N sequential
// StreamPipeline::Push loops over the same pre-generated batch schedules
// (mixed labeled/unlabeled Hyperplane traffic). Emits BENCH_runtime.json
// for the report layer.
//
// Expected shape: near-linear speedup up to the host's core count (shards
// are independent pipelines), saturating at min(num_streams, cores). On a
// single-core host the runtime leg only adds queue overhead, so speedup
// hovers around 1.0 — the recorded hardware context says which regime a
// given JSON was measured in.

#include <cstdio>
#include <fstream>
#include <thread>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "eval/perf.h"
#include "eval/report.h"
#include "ml/models.h"
#include "obs/metrics.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

MultiStreamThroughput RunOnce(const Model& prototype, size_t num_streams,
                              size_t batches_per_stream, size_t batch_size,
                              MetricsRegistry* metrics = nullptr) {
  MultiStreamPerfOptions opts;
  opts.num_streams = num_streams;
  opts.batches_per_stream = batches_per_stream;
  opts.batch_size = batch_size;
  opts.runtime.queue_capacity = 32;
  opts.metrics = metrics;
  auto result = MeasureMultiStreamThroughput(prototype, opts);
  result.status().CheckOk();
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  Banner("runtime_throughput", "Streaming runtime",
         "Aggregate throughput: 8 sequential pipelines vs the sharded "
         "StreamRuntime under mixed multi-stream traffic.");

  const unsigned cores = std::thread::hardware_concurrency();
  // Size the pool to the shard count so every shard can drain concurrently
  // when the host has the cores for it.
  ThreadPool::SetGlobalThreads(8);

  auto proto = MakeLogisticRegression(10, 2);

  TablePrinter table({"Streams", "Batches/stream", "Seq batches/s",
                      "Runtime batches/s", "Speedup"});
  const size_t kBatchSize = 256;

  // Warm-up pass (model break-in, pool spin-up) — not recorded.
  RunOnce(*proto, 8, 8, kBatchSize);

  MultiStreamThroughput headline;
  std::string sweep_json = "[";
  const std::vector<size_t> stream_counts = {1, 2, 4, 8};
  for (size_t i = 0; i < stream_counts.size(); ++i) {
    const size_t streams = stream_counts[i];
    const MultiStreamThroughput r = RunOnce(*proto, streams, 24, kBatchSize);
    table.AddRow({std::to_string(streams), "24",
                  FormatDouble(r.sequential_batches_per_sec, 1),
                  FormatDouble(r.runtime_batches_per_sec, 1),
                  FormatDouble(r.speedup, 2) + "x"});
    if (i > 0) sweep_json += ", ";
    sweep_json += "{\"streams\": " + std::to_string(streams) +
                  ", \"sequential_batches_per_sec\": " +
                  FormatDouble(r.sequential_batches_per_sec, 1) +
                  ", \"runtime_batches_per_sec\": " +
                  FormatDouble(r.runtime_batches_per_sec, 1) +
                  ", \"speedup\": " + FormatDouble(r.speedup, 3) + "}";
    if (streams == 8) headline = r;
  }
  sweep_json += "]";
  table.Print();
  std::printf("\nhardware_concurrency = %u, pool threads = 8\n", cores);

  // Instrumented rerun of the headline config: same schedule with a
  // MetricsRegistry attached to both legs. The acceptance bar for the
  // observability layer is < 5% throughput regression here; the Prometheus
  // snapshot goes to BENCH_runtime_metrics.txt so CI can archive what the
  // exposition looks like under real traffic. Best-of-3 on both sides:
  // single runs of this workload swing by far more than the overhead being
  // measured (see the non-monotonic sweep on loaded hosts).
  MetricsRegistry registry;
  double detached_best = headline.runtime_batches_per_sec;
  double instrumented_best = 0.0;
  MultiStreamThroughput instrumented;
  for (int rep = 0; rep < 3; ++rep) {
    const MultiStreamThroughput detached_run = RunOnce(*proto, 8, 24, kBatchSize);
    if (detached_run.runtime_batches_per_sec > detached_best) {
      detached_best = detached_run.runtime_batches_per_sec;
    }
    const MultiStreamThroughput run =
        RunOnce(*proto, 8, 24, kBatchSize, &registry);
    if (run.runtime_batches_per_sec > instrumented_best) {
      instrumented_best = run.runtime_batches_per_sec;
      instrumented = run;
    }
  }
  instrumented.runtime_batches_per_sec = instrumented_best;
  const double overhead_pct =
      detached_best > 0.0
          ? 100.0 * (1.0 - instrumented_best / detached_best)
          : 0.0;
  std::printf("metrics attached: %s batches/s (detached %s, overhead "
              "%s%%, best of 3)\n",
              FormatDouble(instrumented_best, 1).c_str(),
              FormatDouble(detached_best, 1).c_str(),
              FormatDouble(overhead_pct, 2).c_str());
  {
    std::ofstream snapshot("BENCH_runtime_metrics.txt");
    snapshot << registry.ToPrometheusText();
  }
  std::printf("Wrote BENCH_runtime_metrics.txt\n");

  std::ofstream out("BENCH_runtime.json");
  out << "{\n"
      << "  \"description\": \"8-shard StreamRuntime (one producer thread "
         "per stream, bounded queues, block policy) vs 8 sequential "
         "StreamPipeline::Push loops over identical pre-generated "
         "Hyperplane schedules (24 batches x 256 records per stream, every "
         "3rd batch unlabeled). From bench/runtime_throughput.\",\n"
      << "  \"hardware\": {\"hardware_concurrency\": " << cores
      << ", \"pool_threads\": 8},\n"
      << "  \"host\": " << HostJson() << ",\n"
      << "  \"hardware_note\": \""
      << (cores >= 4
              ? "Multi-core host: the speedup column reflects real "
                "parallel shard drains."
              : "Single-core host: shard drains serialize on one core, so "
                "wall-clock speedup cannot manifest (expect ~1.0x, minus "
                "queue overhead). Re-record on a >= 4-core machine; the "
                "acceptance target (>= 3x at 8 shards) applies there.")
      << "\",\n"
      << "  \"batch_size\": " << kBatchSize << ",\n"
      << "  \"sweep\": " << sweep_json << ",\n"
      << "  \"headline_8_streams\": {\"sequential_batches_per_sec\": "
      << FormatDouble(headline.sequential_batches_per_sec, 1)
      << ", \"runtime_batches_per_sec\": "
      << FormatDouble(headline.runtime_batches_per_sec, 1)
      << ", \"speedup\": " << FormatDouble(headline.speedup, 3)
      << ", \"total_batches\": " << headline.total_batches
      << ", \"total_records\": " << headline.total_records << "},\n"
      << "  \"metrics_overhead\": {\"detached_batches_per_sec\": "
      << FormatDouble(detached_best, 1)
      << ", \"instrumented_batches_per_sec\": "
      << FormatDouble(instrumented_best, 1)
      << ", \"overhead_pct\": " << FormatDouble(overhead_pct, 2)
      << ", \"target_pct\": 5.0, \"protocol\": \"best of 3 runs each\"},\n"
      << "  \"runtime_stats_8_streams\": "
      << headline.runtime_stats.ToJson() << "\n"
      << "}\n";
  std::printf("Wrote BENCH_runtime.json\n");
  return 0;
}
