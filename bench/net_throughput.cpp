// Network serving benchmark: submit→ACK round-trip latency and frame
// throughput of the loopback TCP path versus the same batches submitted
// in-process through StreamRuntime::Submit. The gap is the cost of the
// serving layer itself — frame encode + CRC, two socket hops, the poll
// loop, and the decode on the far side — measured on the identical batch
// schedule. Emits BENCH_net.json for the report layer.
//
// Expected shape: in-process Submit is an enqueue (microseconds); the wire
// RTT adds two loopback traversals and one event-loop dispatch, so p50
// lands in the tens-to-hundreds of microseconds. Aggregate frames/sec is
// reported from the server's own freeway_net_frames_total counters over
// the measured wall time.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "eval/report.h"
#include "ml/models.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

constexpr size_t kDim = 10;
constexpr size_t kBatchSize = 128;
constexpr size_t kWarmup = 16;
constexpr size_t kMeasured = 160;
/// Per-client measured batches in the multi-reactor worker sweep.
constexpr size_t kSweepMeasured = 48;

using Clock = std::chrono::steady_clock;

double Micros(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t at = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[at];
}

std::vector<Batch> MakeSchedule(size_t count) {
  HyperplaneOptions options;
  options.dim = kDim;
  options.seed = 42;
  HyperplaneSource source(options);
  std::vector<Batch> batches;
  batches.reserve(count);
  for (size_t b = 0; b < count; ++b) {
    auto batch = source.NextBatch(kBatchSize);
    batch.status().CheckOk();
    batches.push_back(*std::move(batch));
  }
  return batches;
}

RuntimeOptions BenchRuntime() {
  RuntimeOptions options;
  options.num_shards = 2;
  options.queue_capacity = 256;  // RTT, not admission control, is measured.
  return options;
}

struct LegResult {
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  double batches_per_sec = 0.0;
  double wall_seconds = 0.0;
};

/// In-process leg: Submit() latency is the enqueue cost (the shard drains
/// concurrently, exactly as it does behind the server).
LegResult RunInProcess(const Model& proto, const std::vector<Batch>& batches) {
  StreamRuntime runtime(proto, BenchRuntime());
  std::vector<double> lat;
  lat.reserve(kMeasured);
  for (size_t b = 0; b < kWarmup; ++b) {
    runtime.Submit(0, batches[b]).CheckOk();
  }
  const auto start = Clock::now();
  for (size_t b = kWarmup; b < batches.size(); ++b) {
    const auto t0 = Clock::now();
    runtime.Submit(0, batches[b]).CheckOk();
    lat.push_back(Micros(t0, Clock::now()));
  }
  const auto end = Clock::now();
  runtime.Shutdown();
  LegResult result;
  result.p50_micros = Percentile(lat, 0.50);
  result.p99_micros = Percentile(lat, 0.99);
  result.wall_seconds = Micros(start, end) / 1e6;
  result.batches_per_sec = lat.size() / result.wall_seconds;
  return result;
}

/// Wire leg: Submit() latency is the full round trip — encode, two
/// loopback hops, server decode + TrySubmit, ACK back.
LegResult RunOverWire(const Model& proto, const std::vector<Batch>& batches,
                      uint64_t* frames, double* frames_per_sec) {
  MetricsRegistry registry;
  ServerOptions options;
  options.metrics = &registry;
  options.runtime = BenchRuntime();
  StreamServer server(proto, options);
  server.Start().CheckOk();

  ClientOptions client_options;
  client_options.port = server.port();
  StreamClient client(client_options);
  std::vector<double> lat;
  lat.reserve(kMeasured);
  for (size_t b = 0; b < kWarmup; ++b) {
    client.Submit(0, batches[b]).CheckOk();
  }
  const auto start = Clock::now();
  for (size_t b = kWarmup; b < batches.size(); ++b) {
    const auto t0 = Clock::now();
    client.Submit(0, batches[b]).CheckOk();
    lat.push_back(Micros(t0, Clock::now()));
  }
  const auto end = Clock::now();
  client.Disconnect();

  const double wall = Micros(start, end) / 1e6;
  Counter* in = registry.GetCounter("freeway_net_frames_total{dir=\"in\"}");
  Counter* out = registry.GetCounter("freeway_net_frames_total{dir=\"out\"}");
  *frames = in->Value() + out->Value();
  *frames_per_sec = *frames / (wall > 0.0 ? wall : 1.0);
  server.Stop();

  LegResult result;
  result.p50_micros = Percentile(lat, 0.50);
  result.p99_micros = Percentile(lat, 0.99);
  result.wall_seconds = wall;
  result.batches_per_sec = lat.size() / wall;
  return result;
}

/// One cell of the multi-reactor sweep: a server with `workers` reactor
/// threads, `clients` concurrent loadgen connections, each submitting the
/// same labeled schedule on its own stream. RTTs are merged across
/// clients; frames/s comes from the server's own counters over the
/// measured wall time.
LegResult RunWorkerSweepCell(const Model& proto,
                             const std::vector<Batch>& batches,
                             size_t workers, size_t clients,
                             double* frames_per_sec) {
  MetricsRegistry registry;
  ServerOptions options;
  options.metrics = &registry;
  options.runtime = BenchRuntime();
  options.runtime.num_shards = 4;
  options.num_workers = workers;
  options.max_connections = clients + 8;
  StreamServer server(proto, options);
  server.Start().CheckOk();

  constexpr size_t kSweepWarmup = 4;
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::thread> threads;
  std::atomic<size_t> ready{0};
  std::atomic<bool> go{false};
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientOptions client_options;
      client_options.port = server.port();
      StreamClient client(client_options);
      for (size_t b = 0; b < kSweepWarmup; ++b) {
        client.Submit(c, batches[b]).CheckOk();
      }
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      lat[c].reserve(batches.size() - kSweepWarmup);
      for (size_t b = kSweepWarmup; b < batches.size(); ++b) {
        const auto t0 = Clock::now();
        client.Submit(c, batches[b]).CheckOk();
        lat[c].push_back(Micros(t0, Clock::now()));
      }
      client.Disconnect();
    });
  }
  while (ready.load() < clients) std::this_thread::yield();
  Counter* in = registry.GetCounter("freeway_net_frames_total{dir=\"in\"}");
  Counter* out = registry.GetCounter("freeway_net_frames_total{dir=\"out\"}");
  const uint64_t frames_before = in->Value() + out->Value();
  const auto start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const auto end = Clock::now();
  const uint64_t frames = in->Value() + out->Value() - frames_before;
  server.Stop();

  std::vector<double> merged;
  for (const auto& per_client : lat) {
    merged.insert(merged.end(), per_client.begin(), per_client.end());
  }
  const double wall = Micros(start, end) / 1e6;
  *frames_per_sec = frames / (wall > 0.0 ? wall : 1.0);
  LegResult result;
  result.p50_micros = Percentile(merged, 0.50);
  result.p99_micros = Percentile(merged, 0.99);
  result.wall_seconds = wall;
  result.batches_per_sec = merged.size() / (wall > 0.0 ? wall : 1.0);
  return result;
}

}  // namespace

int main() {
  Banner("net_throughput", "Network serving",
         "Submit->ACK round trip and frame throughput of the loopback TCP "
         "serving path vs in-process StreamRuntime::Submit.");

  const unsigned cores = std::thread::hardware_concurrency();
  ThreadPool::SetGlobalThreads(4);
  auto proto = MakeLogisticRegression(kDim, 2);
  const std::vector<Batch> batches = MakeSchedule(kWarmup + kMeasured);

  const LegResult local = RunInProcess(*proto, batches);
  uint64_t frames = 0;
  double frames_per_sec = 0.0;
  const LegResult wire =
      RunOverWire(*proto, batches, &frames, &frames_per_sec);

  TablePrinter table(
      {"Leg", "p50 us", "p99 us", "Batches/s"});
  table.AddRow({"in-process Submit", FormatDouble(local.p50_micros, 1),
                FormatDouble(local.p99_micros, 1),
                FormatDouble(local.batches_per_sec, 1)});
  table.AddRow({"loopback TCP", FormatDouble(wire.p50_micros, 1),
                FormatDouble(wire.p99_micros, 1),
                FormatDouble(wire.batches_per_sec, 1)});
  table.Print();
  std::printf("\nwire frames: %llu total, %s frames/s "
              "(SUBMIT+ACK+RESULT, both directions)\n",
              static_cast<unsigned long long>(frames),
              FormatDouble(frames_per_sec, 1).c_str());
  std::printf("hardware_concurrency = %u\n", cores);

  // Multi-reactor sweep: workers x concurrent clients. Each client
  // submits its own labeled stream; frames/s aggregates both directions.
  // On a single-core host the sweep measures dispatch overhead, not
  // scaling — read it alongside the recorded hardware_concurrency.
  std::printf("\nMulti-reactor sweep (%zu measured batches per client):\n",
              kSweepMeasured);
  const std::vector<Batch> sweep_batches = MakeSchedule(4 + kSweepMeasured);
  TablePrinter sweep_table(
      {"Workers", "Clients", "p50 us", "p99 us", "Frames/s"});
  std::string sweep_json;
  for (size_t workers : {1, 2, 4}) {
    for (size_t clients : {1, 4, 16}) {
      double cell_fps = 0.0;
      const LegResult cell = RunWorkerSweepCell(*proto, sweep_batches,
                                                workers, clients, &cell_fps);
      sweep_table.AddRow({std::to_string(workers), std::to_string(clients),
                          FormatDouble(cell.p50_micros, 1),
                          FormatDouble(cell.p99_micros, 1),
                          FormatDouble(cell_fps, 1)});
      if (!sweep_json.empty()) sweep_json += ",\n";
      sweep_json += "    {\"workers\": " + std::to_string(workers) +
                    ", \"clients\": " + std::to_string(clients) +
                    ", \"p50_micros\": " + FormatDouble(cell.p50_micros, 1) +
                    ", \"p99_micros\": " + FormatDouble(cell.p99_micros, 1) +
                    ", \"frames_per_sec\": " + FormatDouble(cell_fps, 1) +
                    "}";
    }
  }
  sweep_table.Print();

  std::ofstream out("BENCH_net.json");
  out << "{\n"
      << "  \"description\": \"Submit->ACK RTT and frame throughput of the "
         "loopback StreamServer (2 shards, capacity 256) vs in-process "
         "StreamRuntime::Submit over the identical labeled Hyperplane "
         "schedule (" << kMeasured << " batches x " << kBatchSize
      << " records, single producer). From bench/net_throughput.\",\n"
      << "  \"hardware\": {\"hardware_concurrency\": " << cores << "},\n"
      << "  \"host\": " << HostJson() << ",\n"
      << "  \"batch_size\": " << kBatchSize << ",\n"
      << "  \"measured_batches\": " << kMeasured << ",\n"
      << "  \"in_process\": {\"p50_micros\": "
      << FormatDouble(local.p50_micros, 1)
      << ", \"p99_micros\": " << FormatDouble(local.p99_micros, 1)
      << ", \"batches_per_sec\": " << FormatDouble(local.batches_per_sec, 1)
      << "},\n"
      << "  \"loopback_tcp\": {\"p50_micros\": "
      << FormatDouble(wire.p50_micros, 1)
      << ", \"p99_micros\": " << FormatDouble(wire.p99_micros, 1)
      << ", \"batches_per_sec\": " << FormatDouble(wire.batches_per_sec, 1)
      << ", \"frames_total\": " << frames
      << ", \"frames_per_sec\": " << FormatDouble(frames_per_sec, 1)
      << "},\n"
      << "  \"rtt_overhead_p50_micros\": "
      << FormatDouble(wire.p50_micros - local.p50_micros, 1) << ",\n"
      << "  \"worker_sweep_measured_batches_per_client\": " << kSweepMeasured
      << ",\n"
      << "  \"worker_sweep\": [\n" << sweep_json << "\n  ]\n"
      << "}\n";
  std::printf("Wrote BENCH_net.json\n");
  return 0;
}
