// Durable-ingest cost benchmark: (a) microlatency of IngestLog::Append
// with fsync off (the default posture — crash-safe, not power-safe) and
// fsync on; (b) recovery-scan time of IngestLog::Open as the log grows,
// the price a restarting server pays to rebuild its dedup watermarks; and
// (c) the steady-state cost of the full exactly-once admission path —
// dedup check + durable append + watermark advance in front of every
// Submit — against the same runtime fed directly. Emits BENCH_ingest.json.
//
// Acceptance bar: < 5% throughput overhead for exactly-once admission with
// fsync off. The append serializes and writes the batch but the learner's
// own per-batch update dominates, same argument as bench/fault_checkpoint.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "eval/report.h"
#include "ingest/dedup.h"
#include "ingest/ingest_log.h"
#include "ml/models.h"
#include "runtime/stream_runtime.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

namespace fs = std::filesystem;

constexpr size_t kBatchSize = 256;
constexpr size_t kDim = 10;

Batch MakeBatch(uint64_t seed, int64_t index) {
  Rng rng(seed);
  Batch b;
  b.index = index;
  b.features = Matrix(kBatchSize, kDim);
  b.labels.resize(kBatchSize);
  for (size_t i = 0; i < kBatchSize; ++i) {
    const int label = static_cast<int>(rng.NextBelow(2));
    b.labels[i] = label;
    for (size_t j = 0; j < kDim; ++j) {
      b.features.At(i, j) = rng.Gaussian(label * 2.0, 0.75);
    }
  }
  return b;
}

IngestRecord MakeRecord(const Batch& batch, uint64_t sequence) {
  IngestRecord record;
  record.client_id = 1;
  record.sequence = sequence;
  record.stream_id = sequence % 4;
  record.batch = batch;
  return record;
}

struct LatencyStats {
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  double mean_micros = 0.0;
};

LatencyStats Summarize(std::vector<double> micros) {
  LatencyStats stats;
  if (micros.empty()) return stats;
  std::sort(micros.begin(), micros.end());
  stats.p50_micros = micros[micros.size() / 2];
  stats.p99_micros = micros[std::min(micros.size() - 1,
                                     (micros.size() * 99) / 100)];
  double sum = 0.0;
  for (double m : micros) sum += m;
  stats.mean_micros = sum / static_cast<double>(micros.size());
  return stats;
}

std::string StatsJson(const LatencyStats& s) {
  return "{\"p50_micros\": " + FormatDouble(s.p50_micros, 1) +
         ", \"p99_micros\": " + FormatDouble(s.p99_micros, 1) +
         ", \"mean_micros\": " + FormatDouble(s.mean_micros, 1) + "}";
}

/// Appends `reps` records to a fresh log and returns per-append latencies.
LatencyStats MeasureAppend(const std::string& dir, bool fsync, int reps,
                           const Batch& batch) {
  fs::remove_all(dir);
  IngestLogOptions opts;
  opts.directory = dir;
  opts.fsync = fsync;
  IngestLog log(opts);
  log.Open(nullptr).CheckOk();
  std::vector<double> micros;
  micros.reserve(reps);
  for (int rep = 0; rep < reps; ++rep) {
    const IngestRecord record = MakeRecord(batch, rep + 1);
    Stopwatch w;
    log.Append(record).status().CheckOk();
    micros.push_back(static_cast<double>(w.ElapsedMicros()));
  }
  return Summarize(std::move(micros));
}

/// Builds an n-record log, then times a cold Open (recovery scan + dedup
/// watermark rebuild) against it.
double MeasureRecoveryMillis(const std::string& dir, size_t records,
                             const Batch& batch) {
  fs::remove_all(dir);
  {
    IngestLogOptions opts;
    opts.directory = dir;
    DedupIndex dedup;
    IngestLog log(opts);
    log.Open(&dedup).CheckOk();
    for (size_t i = 0; i < records; ++i) {
      log.Append(MakeRecord(batch, i + 1)).status().CheckOk();
    }
  }
  IngestLogOptions ropts;
  ropts.directory = dir;
  ropts.read_only = true;
  DedupIndex dedup;
  IngestLog log(ropts);
  Stopwatch w;
  log.Open(&dedup).CheckOk();
  return static_cast<double>(w.ElapsedMicros()) / 1000.0;
}

/// One throughput leg over the pre-generated schedule. With `exactly_once`
/// every batch pays the server's full admission path: duplicate check,
/// durable append, watermark advance, then Submit.
double MeasureIngestThroughput(const Model& prototype,
                               const std::vector<Batch>& schedule,
                               bool exactly_once, const std::string& dir) {
  RuntimeOptions opts;
  opts.num_shards = 4;
  opts.queue_capacity = 32;
  opts.pipeline.enable_rate_adjuster = false;
  StreamRuntime runtime(prototype, opts);
  DedupIndex dedup;
  std::unique_ptr<IngestLog> log;
  if (exactly_once) {
    fs::remove_all(dir);
    IngestLogOptions lopts;
    lopts.directory = dir;
    log = std::make_unique<IngestLog>(lopts);
    log->Open(&dedup).CheckOk();
  }
  // Local mutable copy so the log leg can move each batch through the
  // record and back, exactly like the server's zero-copy HandleSubmit.
  std::vector<Batch> feed = schedule;
  Stopwatch watch;
  for (size_t i = 0; i < feed.size(); ++i) {
    const uint64_t sequence = i + 1;
    if (exactly_once) {
      if (dedup.IsDuplicate(1, sequence)) continue;
      IngestRecord record;
      record.client_id = 1;
      record.sequence = sequence;
      record.stream_id = i % opts.num_shards;
      record.batch = std::move(feed[i]);
      log->Append(record).status().CheckOk();
      feed[i] = std::move(record.batch);
      dedup.Advance(1, sequence);
    }
    runtime.Submit(i % opts.num_shards, std::move(feed[i])).CheckOk();
  }
  runtime.Shutdown();
  const double secs = watch.ElapsedSeconds();
  return secs > 0.0 ? static_cast<double>(schedule.size()) / secs : 0.0;
}

}  // namespace

int main() {
  Banner("ingest_log", "Durable ingest layer",
         "IngestLog append latency (fsync off/on), cold recovery-scan time "
         "vs log size, and the steady-state throughput cost of exactly-once "
         "admission (dedup + durable append) in front of a StreamRuntime.");

  ThreadPool::SetGlobalThreads(4);
  const std::string scratch = "bench_ingest_log";
  std::error_code ec;
  fs::remove_all(scratch, ec);
  const Batch batch = MakeBatch(/*seed=*/99, /*index=*/0);

  // ---- Append latency -------------------------------------------------
  const LatencyStats nosync =
      MeasureAppend(scratch + "/append_nosync", false, 400, batch);
  // fsync pays a device flush per record; fewer reps keep the bench quick.
  const LatencyStats synced =
      MeasureAppend(scratch + "/append_fsync", true, 60, batch);
  TablePrinter append({"Append mode", "p50 (us)", "p99 (us)", "mean (us)"});
  append.AddRow({"fsync off (default)", FormatDouble(nosync.p50_micros, 1),
                 FormatDouble(nosync.p99_micros, 1),
                 FormatDouble(nosync.mean_micros, 1)});
  append.AddRow({"fsync on", FormatDouble(synced.p50_micros, 1),
                 FormatDouble(synced.p99_micros, 1),
                 FormatDouble(synced.mean_micros, 1)});
  append.Print();
  std::printf("record payload: %zux%zu labeled batch per append\n\n",
              kBatchSize, kDim);

  // ---- Recovery scan vs size ------------------------------------------
  const std::vector<size_t> sizes = {100, 1000, 5000};
  std::vector<double> recovery_ms;
  TablePrinter recovery({"Log records", "Cold Open (ms)"});
  for (size_t n : sizes) {
    recovery_ms.push_back(
        MeasureRecoveryMillis(scratch + "/recovery", n, batch));
    recovery.AddRow({std::to_string(n), FormatDouble(recovery_ms.back(), 2)});
  }
  recovery.Print();
  std::printf("cold Open scans every record CRC and rebuilds the dedup "
              "watermark table\n\n");

  // ---- Exactly-once steady-state overhead -----------------------------
  // Best-of-5 per leg: single runs swing by more than the overhead being
  // measured (same protocol as bench/fault_checkpoint).
  auto proto = MakeMlp(kDim, 2);
  std::vector<Batch> schedule;
  schedule.reserve(1024);
  for (size_t i = 0; i < 1024; ++i) {
    schedule.push_back(MakeBatch(4242 + i, static_cast<int64_t>(i)));
  }
  MeasureIngestThroughput(*proto, schedule, false, "");  // Warm-up pass.
  double baseline_best = 0.0;
  double exactly_once_best = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    baseline_best = std::max(
        baseline_best, MeasureIngestThroughput(*proto, schedule, false, ""));
    exactly_once_best = std::max(
        exactly_once_best,
        MeasureIngestThroughput(*proto, schedule, true,
                                scratch + "/run" + std::to_string(rep)));
  }
  const double overhead_pct =
      baseline_best > 0.0 ? 100.0 * (1.0 - exactly_once_best / baseline_best)
                          : 0.0;
  TablePrinter table({"Leg", "Batches/s", "Overhead"});
  table.AddRow({"direct Submit", FormatDouble(baseline_best, 1), "-"});
  table.AddRow({"exactly-once (dedup+log)", FormatDouble(exactly_once_best, 1),
                FormatDouble(overhead_pct, 2) + "%"});
  table.Print();
  std::printf("target: < 5%% overhead with fsync off (best of 5 runs "
              "each)\n");

  std::ofstream out("BENCH_ingest.json");
  out << "{\n"
      << "  \"description\": \"IngestLog append latency (400 reps fsync "
         "off, 60 reps fsync on, 256x10 labeled batches), cold recovery "
         "scan vs log size, and steady-state throughput of a 4-shard "
         "StreamRuntime over 1024 batches fed directly vs through the "
         "exactly-once admission path (dedup check + durable append + "
         "watermark advance, fsync off). From bench/ingest_log.\",\n"
      << "  \"host\": " << HostJson() << ",\n"
      << "  \"append_latency\": {\n"
      << "    \"fsync_off\": " << StatsJson(nosync) << ",\n"
      << "    \"fsync_on\": " << StatsJson(synced) << "\n  },\n"
      << "  \"recovery_scan\": [";
  for (size_t i = 0; i < sizes.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "{\"records\": " << sizes[i]
        << ", \"open_millis\": " << FormatDouble(recovery_ms[i], 2) << "}";
  }
  out << "],\n"
      << "  \"steady_state\": {\"baseline_batches_per_sec\": "
      << FormatDouble(baseline_best, 1)
      << ", \"exactly_once_batches_per_sec\": "
      << FormatDouble(exactly_once_best, 1)
      << ", \"overhead_pct\": " << FormatDouble(overhead_pct, 2)
      << ", \"target_pct\": 5.0, \"protocol\": \"best of 5 runs each\"}\n"
      << "}\n";
  std::printf("Wrote BENCH_ingest.json\n");

  fs::remove_all(scratch, ec);
  return 0;
}
