// Reproduces Figure 11: mean real-time accuracy of FreewayML and every
// baseline under each of the three shift patterns (ground-truth labels from
// the stream scripts), aggregated over the four real-dataset simulators.
//
// Streams come from dataset-backed ScenarioSpecs replayed through the
// scenario engine's learner harness (bit-identical to the old RunPrequential
// path under immediate labels), so the table reflects exactly what
// `run_scenario --mode=learner` measures.
//
// Expected shape: FreewayML leads in all three columns, with the largest
// margins under sudden and reoccurring shifts.

#include "bench/bench_util.h"
#include "eval/report.h"
#include "scenarios/harness.h"
#include "scenarios/scenario.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

PrequentialResult RunOnScenario(const std::string& system,
                                const std::string& dataset) {
  const BenchScale scale;
  ScenarioSpec spec;
  spec.name = dataset;
  spec.dataset = dataset;
  spec.seed = scale.seed;
  spec.num_batches = scale.num_batches;
  spec.batch_size = scale.batch_size;
  spec.warmup_batches = scale.warmup_batches;
  auto scenario = GenerateScenario(spec);
  scenario.status().CheckOk();
  auto shape = MakeScenarioSource(spec);
  shape.status().CheckOk();
  auto learner = MakeSystem(system, ModelKind::kMlp, (*shape)->input_dim(),
                            (*shape)->num_classes());
  learner.status().CheckOk();
  auto report = RunScenarioOnLearner(learner->get(), *scenario);
  report.status().CheckOk();
  return report->prequential;
}

}  // namespace

int main() {
  Banner("fig11_pattern_accuracy", "Figure 11",
         "Per-pattern accuracy of FreewayML vs all baselines (StreamingMLP "
         "family), aggregated over the four real-dataset simulators.");

  const std::vector<std::string> systems = {"Plain", "River",  "Camel",
                                            "A-GEM", "FreewayML"};
  const std::vector<std::string> datasets = {"Airlines", "Covertype",
                                             "NSL-KDD", "Electricity"};

  TablePrinter table(
      {"System", "Slight Shifts", "Sudden Shifts", "Reoccurring Shifts"});
  for (const auto& system : systems) {
    double slight = 0, sudden = 0, reoccur = 0;
    size_t slight_n = 0, sudden_n = 0, reoccur_n = 0;
    for (const auto& dataset : datasets) {
      PrequentialResult r = RunOnScenario(system, dataset);
      slight += r.per_pattern.slight * r.per_pattern.slight_batches;
      sudden += r.per_pattern.sudden * r.per_pattern.sudden_batches;
      reoccur +=
          r.per_pattern.reoccurring * r.per_pattern.reoccurring_batches;
      slight_n += r.per_pattern.slight_batches;
      sudden_n += r.per_pattern.sudden_batches;
      reoccur_n += r.per_pattern.reoccurring_batches;
    }
    table.AddRow({system,
                  FormatPercent(slight / static_cast<double>(slight_n)),
                  FormatPercent(sudden / static_cast<double>(sudden_n)),
                  FormatPercent(reoccur / static_cast<double>(reoccur_n))});
  }
  table.Print();
  return 0;
}
