// Reproduces Table IV: in-memory space occupied by historical knowledge for
// k = 1, 5, 10, 40, 100 preserved models, for the StreamingLR and
// StreamingMLP architectures on the Hyperplane feature space (10 features,
// 2 classes — the paper's performance testbed).
//
// Expected shape: linear in k; the MLP rows are ~7x the LR rows (parameter
// counts 22 vs 833 with hidden width 64 — ratios depend on the hidden
// width); totals stay in the tens-of-KB to low-MB range even at k = 100.

#include "bench/bench_util.h"
#include "core/knowledge.h"
#include "eval/report.h"
#include "ml/models.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

/// Fills a store with k entries snapshotting `model` and returns the hot
/// bytes.
size_t SpaceForK(const Model& model, size_t k) {
  KnowledgeStoreOptions opts;
  opts.capacity = k + 1;  // No spilling: we want the full hot footprint.
  KnowledgeStore store(opts);
  for (size_t i = 0; i < k; ++i) {
    KnowledgeEntry entry;
    // 8-D PCA representation key, as the Learner stores by default.
    entry.representation.assign(8, static_cast<double>(i));
    entry.parameters = model.GetParameters();
    entry.batch_index = static_cast<int64_t>(i);
    store.Preserve(std::move(entry)).CheckOk();
  }
  return store.HotSpaceBytes();
}

}  // namespace

int main() {
  Banner("table4_knowledge_space", "Table IV",
         "Space overhead of historical knowledge for k preserved models "
         "(Hyperplane feature space: 10 features, 2 classes).");

  auto lr = MakeLogisticRegression(10, 2);
  auto mlp = MakeMlp(10, 2);
  std::printf("model parameter counts: LR=%zu, MLP=%zu\n\n",
              lr->ParameterCount(), mlp->ParameterCount());

  TablePrinter table({"k", "LR (KB)", "MLP (KB)"});
  for (size_t k : {1u, 5u, 10u, 40u, 100u}) {
    table.AddRow({std::to_string(k),
                  FormatDouble(SpaceForK(*lr, k) / 1024.0, 1),
                  FormatDouble(SpaceForK(*mlp, k) / 1024.0, 1)});
  }
  table.Print();
  return 0;
}
