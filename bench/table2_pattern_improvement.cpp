// Reproduces Table II: FreewayML's accuracy improvement over the original
// (plain) Streaming MLP under each of the three shift patterns, per dataset.
// Improvements are relative, as in the paper: (freeway - plain) / plain.
//
// Expected shape: improvements are largest under sudden and reoccurring
// shifts (where CEC / knowledge reuse fire) and small-but-nonnegative under
// slight shifts.

#include "bench/bench_util.h"
#include "eval/report.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

std::string Improvement(double freeway, double plain) {
  if (plain <= 0.0) return "n/a";
  return FormatPercent((freeway - plain) / plain, 1);
}

}  // namespace

int main() {
  Banner("table2_pattern_improvement", "Table II",
         "Relative accuracy improvement of FreewayML over plain StreamingMLP "
         "under the three ground-truth shift patterns (mean of 3 stream "
         "seeds).");

  const std::vector<uint64_t> seeds = {1234, 777, 2025};
  TablePrinter table({"Dataset", "Slight Shifts", "Sudden Shifts",
                      "Reoccurring Shifts"});
  for (const auto& dataset : BenchmarkDatasetNames()) {
    // Event batches are rare, so accuracies are pooled sample-weighted
    // across seeds before the improvement ratio is formed.
    PatternAccuracy plain{}, freeway{};
    for (uint64_t seed : seeds) {
      BenchScale scale;
      scale.seed = seed;
      PrequentialResult p =
          RunSystemOnDataset("Plain", ModelKind::kMlp, dataset, scale);
      PrequentialResult f =
          RunSystemOnDataset("FreewayML", ModelKind::kMlp, dataset, scale);
      plain.slight += p.per_pattern.slight * p.per_pattern.slight_batches;
      plain.sudden += p.per_pattern.sudden * p.per_pattern.sudden_batches;
      plain.reoccurring +=
          p.per_pattern.reoccurring * p.per_pattern.reoccurring_batches;
      plain.slight_batches += p.per_pattern.slight_batches;
      plain.sudden_batches += p.per_pattern.sudden_batches;
      plain.reoccurring_batches += p.per_pattern.reoccurring_batches;
      freeway.slight += f.per_pattern.slight * f.per_pattern.slight_batches;
      freeway.sudden += f.per_pattern.sudden * f.per_pattern.sudden_batches;
      freeway.reoccurring +=
          f.per_pattern.reoccurring * f.per_pattern.reoccurring_batches;
      freeway.slight_batches += f.per_pattern.slight_batches;
      freeway.sudden_batches += f.per_pattern.sudden_batches;
      freeway.reoccurring_batches += f.per_pattern.reoccurring_batches;
    }
    auto cell = [](double f_sum, size_t f_n, double p_sum, size_t p_n) {
      if (f_n == 0 || p_n == 0) return std::string("-");
      return Improvement(f_sum / static_cast<double>(f_n),
                         p_sum / static_cast<double>(p_n));
    };
    table.AddRow({dataset,
                  cell(freeway.slight, freeway.slight_batches, plain.slight,
                       plain.slight_batches),
                  cell(freeway.sudden, freeway.sudden_batches, plain.sudden,
                       plain.sudden_batches),
                  cell(freeway.reoccurring, freeway.reoccurring_batches,
                       plain.reoccurring, plain.reoccurring_batches)});
  }
  table.Print();
  return 0;
}
