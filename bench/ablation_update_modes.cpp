// Ablation: the two Section-V optimizations of long-model updates.
//   replay      — rollover replays the decayed window (the default),
//   precompute  — gradients pre-accumulated per batch; rollover applies one
//                 aggregated step (Section V-B pre-computing window),
//   async       — rollover trains a clone off-thread and atomically swaps
//                 (Section V-A1 non-blocking updates).
// Reports G_acc / SI plus the worst per-batch train latency (the rollover
// spike the optimizations exist to flatten).

#include <algorithm>
#include <memory>

#include "baselines/freeway_adapter.h"
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "eval/report.h"
#include "ml/models.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

struct VariantResult {
  double g_acc = 0.0;
  double si = 0.0;
  double worst_train_micros = 0.0;
};

VariantResult RunVariant(const LearnerOptions& options) {
  auto source = MakeBenchmarkDataset("Electricity", 808);
  source.status().CheckOk();
  std::unique_ptr<Model> proto =
      MakeMlp((*source)->input_dim(), (*source)->num_classes());
  FreewayAdapter freeway(*proto, options);

  VariantResult out;
  PrequentialResult preq;
  Stopwatch watch;
  for (int b = 0; b < 120; ++b) {
    auto batch = (*source)->NextBatch(1024);
    batch.status().CheckOk();
    const BatchMeta meta = (*source)->LastBatchMeta();

    auto pred = freeway.Predict(batch->features);
    pred.status().CheckOk();
    watch.Restart();
    freeway.Train(*batch).CheckOk();
    const double train_micros = static_cast<double>(watch.ElapsedMicros());

    if (b < 10) continue;
    out.worst_train_micros = std::max(out.worst_train_micros, train_micros);
    size_t hits = 0;
    for (size_t i = 0; i < batch->size(); ++i) {
      if ((*pred)[i] == batch->labels[i]) ++hits;
    }
    preq.batch_accuracies.push_back(static_cast<double>(hits) /
                                    static_cast<double>(batch->size()));
    preq.batch_kinds.push_back(meta.segment_kind);
    preq.shift_events.push_back(meta.shift_event);
  }
  FinalizePrequentialMetrics(&preq);
  out.g_acc = preq.g_acc;
  out.si = preq.stability_index;
  return out;
}

}  // namespace

int main() {
  Banner("ablation_update_modes", "DESIGN.md ablation / Section V",
         "Long-model update modes on Electricity (batch 1024): window "
         "replay vs pre-computing window vs async clone-and-swap.");

  LearnerOptions replay;
  LearnerOptions precompute;
  precompute.granularity.use_precompute = true;
  LearnerOptions async_updates;
  async_updates.granularity.async_long_updates = true;

  TablePrinter table({"Variant", "G_acc", "SI", "Worst train (us)"});
  struct Variant {
    const char* name;
    const LearnerOptions* options;
  };
  for (const Variant& v :
       {Variant{"replay (default)", &replay},
        Variant{"pre-computing window", &precompute},
        Variant{"async clone-and-swap", &async_updates}}) {
    VariantResult r = RunVariant(*v.options);
    table.AddRow({v.name, FormatPercent(r.g_acc), FormatDouble(r.si, 3),
                  FormatDouble(r.worst_train_micros, 0)});
  }
  table.Print();
  std::printf(
      "\nThe worst per-batch train latency is the rollover spike; both\n"
      "optimizations flatten it relative to the synchronous replay.\n");
  return 0;
}
