// Reproduces Table V (appendix): G_acc and SI of the plain StreamingCNN
// versus FreewayML-with-CNN on the six benchmark datasets (tabular streams
// through the 3-layer 1-D-kernel CNN) plus the two image streams, Animals
// and Flowers, through the 5-layer CNN. For the image streams FreewayML's
// CEC clusters in the feature space of a fixed random-projection extractor
// (the VGG-16 stand-in; see DESIGN.md).
//
// Expected shape: FreewayML improves G_acc and SI on every row.

#include <memory>

#include "baselines/freeway_adapter.h"
#include "baselines/streaming_learner.h"
#include "bench/bench_util.h"
#include "data/image_stream.h"
#include "eval/report.h"
#include "ml/models.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

struct RowResult {
  PrequentialResult plain;
  PrequentialResult freeway;
};

PrequentialResult RunImage(StreamingLearner* learner, ImageStreamSource* src,
                           size_t num_batches, size_t batch_size) {
  PrequentialOptions opts;
  opts.num_batches = num_batches;
  opts.batch_size = batch_size;
  opts.warmup_batches = 6;
  auto result = RunPrequential(learner, src, opts);
  result.status().CheckOk();
  return std::move(result).ValueOrDie();
}

RowResult RunImagePair(std::unique_ptr<ImageStreamSource> src_plain,
                       std::unique_ptr<ImageStreamSource> src_freeway) {
  const size_t batches = 40, batch_size = 96;
  ModelConfig config;
  config.learning_rate = 0.05;  // CNNs want a gentler step.

  RowResult out;
  {
    PlainStreamingLearner plain(
        "StreamingCNN",
        MakeImageCnn(src_plain->shape(), src_plain->num_classes(), config));
    out.plain = RunImage(&plain, src_plain.get(), batches, batch_size);
  }
  {
    std::unique_ptr<Model> proto =
        MakeImageCnn(src_freeway->shape(), src_freeway->num_classes(),
                     config);
    LearnerOptions options;
    // Frozen feature extractor ahead of CEC for image data (appendix).
    options.cec.extractor = std::make_shared<RandomProjectionExtractor>(
        src_freeway->input_dim(), 32);
    FreewayAdapter freeway(*proto, options);
    out.freeway = RunImage(&freeway, src_freeway.get(), batches, batch_size);
  }
  return out;
}

void AddRow(TablePrinter* table, const std::string& name,
            const RowResult& r) {
  table->AddRow({name, FormatPercent(r.plain.g_acc),
                 FormatDouble(r.plain.stability_index, 3),
                 FormatPercent(r.freeway.g_acc),
                 FormatDouble(r.freeway.stability_index, 3)});
}

}  // namespace

int main() {
  Banner("table5_cnn_accuracy", "Table V (appendix)",
         "StreamingCNN vs FreewayML-CNN: G_acc / SI on the six benchmark "
         "datasets plus the Animals / Flowers image streams.");

  TablePrinter table({"Dataset", "CNN G_acc", "CNN SI", "FreewayML G_acc",
                      "FreewayML SI"});

  // Tabular streams through the 3-layer CNN.
  BenchScale scale;
  scale.num_batches = 60;
  scale.batch_size = 256;
  for (const auto& dataset : BenchmarkDatasetNames()) {
    RowResult r;
    r.plain = RunSystemOnDataset("Plain", ModelKind::kTabularCnn, dataset,
                                 scale);
    r.freeway = RunSystemOnDataset("FreewayML", ModelKind::kTabularCnn,
                                   dataset, scale);
    AddRow(&table, dataset, r);
  }

  // Image streams through the 5-layer CNN.
  AddRow(&table, "Animals", RunImagePair(MakeAnimalsSim(7), MakeAnimalsSim(7)));
  AddRow(&table, "Flowers", RunImagePair(MakeFlowersSim(8), MakeFlowersSim(8)));

  table.Print();
  return 0;
}
