// Reproduces Figure 2: the empirical study of Section III. For the three
// real-world streams (electricity load, stock price trend, solar
// irradiance) this bench (a) traces the 2-D PCA shift graph — node
// coordinates plus per-step shift distances (Fig 2a-c) — and (b) records the
// real-time accuracy of a plain Streaming MLP alongside the shift distance
// of each batch (Fig 2d), demonstrating the correlation between shift
// magnitude and accuracy drop that motivates the paper.

#include <cmath>
#include <memory>

#include "baselines/factory.h"
#include "bench/bench_util.h"
#include "core/shift_detector.h"
#include "eval/report.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

/// Pearson correlation between two equally-sized series.
double Correlation(const std::vector<double>& a,
                   const std::vector<double>& b) {
  const size_t n = a.size();
  double ma = 0, mb = 0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0, va = 0, vb = 0;
  for (size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  return cov / std::sqrt(va * vb + 1e-300);
}

void TraceStream(const char* label,
                 std::unique_ptr<GaussianConceptSource> source) {
  std::printf("--- %s ---\n", label);

  ShiftDetectorOptions dopts;
  dopts.pca_components = 2;  // The paper's visual shift graph is 2-D.
  ShiftDetector detector(dopts);

  auto learner = MakeSystem("Plain", ModelKind::kMlp, source->input_dim(),
                            source->num_classes());
  learner.status().CheckOk();

  SeriesPrinter series("batch");
  std::vector<double> xs, ys, dists, accs, acc_drops;
  double prev_acc = -1.0;
  for (int b = 0; b < 80; ++b) {
    auto batch = source->NextBatch(512);
    batch.status().CheckOk();
    auto shift = detector.Assess(batch->features);
    shift.status().CheckOk();

    auto pred = (*learner)->PrequentialStep(*batch);
    pred.status().CheckOk();
    size_t hits = 0;
    for (size_t i = 0; i < batch->size(); ++i) {
      if ((*pred)[i] == batch->labels[i]) ++hits;
    }
    const double acc =
        static_cast<double>(hits) / static_cast<double>(batch->size());

    if (shift->warmup) continue;
    xs.push_back(shift->representation[0]);
    ys.push_back(shift->representation[1]);
    dists.push_back(shift->distance);
    accs.push_back(acc);
    if (prev_acc >= 0.0) acc_drops.push_back(prev_acc - acc);
    prev_acc = acc;
  }

  series.AddSeries("pca_x", xs);
  series.AddSeries("pca_y", ys);
  series.AddSeries("shift_distance", dists);
  series.AddSeries("mlp_accuracy", accs);
  series.Print();

  // Fig 2d's message, quantified: bigger shifts line up with bigger
  // accuracy drops on the next batch.
  std::vector<double> dist_tail(dists.begin() + 1, dists.end());
  std::printf("correlation(shift distance, accuracy drop) = %.3f\n\n",
              Correlation(dist_tail, acc_drops));
}

}  // namespace

int main() {
  Banner("fig2_shift_graph", "Figure 2",
         "Shift graphs (2-D PCA trajectories) of three real-world stream "
         "simulators, plus plain-MLP accuracy under the observed shifts.");
  TraceStream("electricity load (Fig 2a)", MakeElectricityLoadSim(5));
  TraceStream("stock price trend (Fig 2b)", MakeStockTrendSim(6));
  TraceStream("solar irradiance (Fig 2c)", MakeSolarSim(7));
  return 0;
}
