// Fault-tolerance cost benchmark: (a) microlatency of the checkpoint
// primitives — pipeline Snapshot, CheckpointStore::Write, ReadLatest +
// Restore — after the pipeline has absorbed enough traffic to carry real
// state (populated ASW windows, experience buffer, knowledge store); and
// (b) the steady-state throughput cost of running the StreamRuntime with
// supervision + periodic checkpointing enabled at the default interval
// versus the same runtime with fault tolerance off. Emits BENCH_fault.json.
//
// Acceptance bar: < 5% throughput overhead at the default checkpoint
// interval (64 batches — one store write per 64 pushes amortizes to noise
// against the learner's own per-batch cost).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "eval/report.h"
#include "fault/checkpoint.h"
#include "ml/models.h"
#include "runtime/stream_runtime.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

namespace fs = std::filesystem;

constexpr size_t kBatchSize = 256;
constexpr size_t kDim = 10;

Batch MakeBatch(bool labeled, uint64_t seed, int64_t index) {
  Rng rng(seed);
  Batch b;
  b.index = index;
  b.features = Matrix(kBatchSize, kDim);
  if (labeled) b.labels.resize(kBatchSize);
  for (size_t i = 0; i < kBatchSize; ++i) {
    const int label = static_cast<int>(rng.NextBelow(2));
    if (labeled) b.labels[i] = label;
    for (size_t j = 0; j < kDim; ++j) {
      b.features.At(i, j) = rng.Gaussian(label * 2.0, 0.75);
    }
  }
  return b;
}

/// Mixed traffic: every 3rd batch unlabeled, the rest labeled.
std::vector<Batch> MakeSchedule(size_t num_batches, uint64_t seed_base) {
  std::vector<Batch> schedule;
  schedule.reserve(num_batches);
  for (size_t i = 0; i < num_batches; ++i) {
    schedule.push_back(
        MakeBatch(/*labeled=*/i % 3 != 2, seed_base + i, static_cast<int64_t>(i)));
  }
  return schedule;
}

struct LatencyStats {
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  double mean_micros = 0.0;
};

LatencyStats Summarize(std::vector<double> micros) {
  LatencyStats stats;
  if (micros.empty()) return stats;
  std::sort(micros.begin(), micros.end());
  stats.p50_micros = micros[micros.size() / 2];
  stats.p99_micros = micros[std::min(micros.size() - 1,
                                     (micros.size() * 99) / 100)];
  double sum = 0.0;
  for (double m : micros) sum += m;
  stats.mean_micros = sum / static_cast<double>(micros.size());
  return stats;
}

std::string StatsJson(const LatencyStats& s) {
  return "{\"p50_micros\": " + FormatDouble(s.p50_micros, 1) +
         ", \"p99_micros\": " + FormatDouble(s.p99_micros, 1) +
         ", \"mean_micros\": " + FormatDouble(s.mean_micros, 1) + "}";
}

/// Drives one runtime over the pre-generated schedule in manual-pump mode
/// off (scheduled workers on, single producer) and returns batches/sec.
double MeasureRuntimeThroughput(const Model& prototype,
                                const std::vector<Batch>& schedule,
                                bool fault_enabled,
                                const std::string& checkpoint_dir) {
  RuntimeOptions opts;
  opts.num_shards = 4;
  opts.queue_capacity = 32;
  opts.pipeline.enable_rate_adjuster = false;
  if (fault_enabled) {
    opts.fault.enabled = true;
    opts.fault.checkpoint_dir = checkpoint_dir;
    // Defaults: interval 64, 2 kept versions, no fsync.
  }
  // Construction is outside the timed region: seeding the per-shard
  // initial checkpoints is a fixed startup cost, not steady-state work.
  // Shutdown stays inside — its drain is part of processing the schedule —
  // but the schedule is long enough that the per-shard final checkpoint
  // amortizes away with the rest of the fixed costs.
  StreamRuntime runtime(prototype, opts);
  Stopwatch watch;
  for (size_t i = 0; i < schedule.size(); ++i) {
    runtime.Submit(i % opts.num_shards, schedule[i]).CheckOk();
  }
  runtime.Shutdown();
  const double secs = watch.ElapsedSeconds();
  return secs > 0.0 ? static_cast<double>(schedule.size()) / secs : 0.0;
}

}  // namespace

int main() {
  Banner("fault_checkpoint", "Fault-tolerance layer",
         "Checkpoint primitive latency (snapshot/write/restore) and the "
         "steady-state throughput cost of supervision + periodic "
         "checkpointing at the default interval.");

  ThreadPool::SetGlobalThreads(4);
  // MLP learner: the paper's deployment workloads are dominated by the
  // model update, which is what periodic checkpointing must amortize
  // against (a linear model this small under-weights the numerator of the
  // overhead ratio by an order of magnitude).
  auto proto = MakeMlp(kDim, 2);

  const std::string scratch = "bench_fault_ckpt";
  std::error_code ec;
  fs::remove_all(scratch, ec);

  // ---- Primitive latencies -------------------------------------------
  // Warm a pipeline with enough mixed traffic that its snapshot carries
  // real state (filled windows, experience, knowledge entries).
  PipelineOptions popts;
  popts.enable_rate_adjuster = false;
  StreamPipeline pipeline(*proto, popts);
  const std::vector<Batch> warm = MakeSchedule(96, /*seed_base=*/777);
  for (const Batch& b : warm) pipeline.Push(b).status().CheckOk();

  constexpr int kReps = 50;
  std::vector<double> snapshot_us, write_us, restore_us;
  std::vector<char> blob;
  CheckpointStore store({.directory = scratch + "/primitives",
                         .keep_versions = 2,
                         .fsync = false});
  for (int rep = 0; rep < kReps; ++rep) {
    Stopwatch w;
    pipeline.Snapshot(&blob).CheckOk();
    snapshot_us.push_back(static_cast<double>(w.ElapsedMicros()));

    w.Restart();
    store.Write("bench", blob).CheckOk();
    write_us.push_back(static_cast<double>(w.ElapsedMicros()));

    w.Restart();
    auto payload = store.ReadLatest("bench");
    payload.status().CheckOk();
    StreamPipeline target(*proto, popts);
    target.Restore(*payload).CheckOk();
    restore_us.push_back(static_cast<double>(w.ElapsedMicros()));
  }
  const LatencyStats snap_stats = Summarize(snapshot_us);
  const LatencyStats write_stats = Summarize(write_us);
  const LatencyStats restore_stats = Summarize(restore_us);

  TablePrinter prim({"Primitive", "p50 (us)", "p99 (us)", "mean (us)"});
  prim.AddRow({"pipeline Snapshot", FormatDouble(snap_stats.p50_micros, 1),
               FormatDouble(snap_stats.p99_micros, 1),
               FormatDouble(snap_stats.mean_micros, 1)});
  prim.AddRow({"store Write", FormatDouble(write_stats.p50_micros, 1),
               FormatDouble(write_stats.p99_micros, 1),
               FormatDouble(write_stats.mean_micros, 1)});
  prim.AddRow({"ReadLatest+Restore", FormatDouble(restore_stats.p50_micros, 1),
               FormatDouble(restore_stats.p99_micros, 1),
               FormatDouble(restore_stats.mean_micros, 1)});
  prim.Print();
  std::printf("snapshot payload: %zu bytes after %zu warm-up batches\n\n",
              blob.size(), warm.size());

  // ---- Steady-state overhead -----------------------------------------
  // Best-of-5 per leg: single runs of this workload swing by more than the
  // overhead being measured (same protocol as bench/runtime_throughput).
  const std::vector<Batch> schedule = MakeSchedule(1536, /*seed_base=*/4242);
  MeasureRuntimeThroughput(*proto, schedule, false, "");  // Warm-up pass.
  double baseline_best = 0.0;
  double fault_best = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    baseline_best = std::max(
        baseline_best, MeasureRuntimeThroughput(*proto, schedule, false, ""));
    fault_best = std::max(
        fault_best,
        MeasureRuntimeThroughput(*proto, schedule, true,
                                 scratch + "/run" + std::to_string(rep)));
  }
  const double overhead_pct =
      baseline_best > 0.0 ? 100.0 * (1.0 - fault_best / baseline_best) : 0.0;

  TablePrinter table({"Leg", "Batches/s", "Overhead"});
  table.AddRow({"fault off", FormatDouble(baseline_best, 1), "-"});
  table.AddRow({"fault on (interval 64)", FormatDouble(fault_best, 1),
                FormatDouble(overhead_pct, 2) + "%"});
  table.Print();
  std::printf("target: < 5%% overhead at the default checkpoint interval "
              "(best of 5 runs each)\n");

  std::ofstream out("BENCH_fault.json");
  out << "{\n"
      << "  \"description\": \"Checkpoint primitive latency (50 reps over a "
         "pipeline warmed with 96 mixed batches of 256x10 records) and "
         "steady-state throughput of a 4-shard StreamRuntime over 1536 "
         "batches with fault tolerance off vs on at the default "
         "checkpoint interval (64). From bench/fault_checkpoint.\",\n"
      << "  \"host\": " << HostJson() << ",\n"
      << "  \"snapshot_bytes\": " << blob.size() << ",\n"
      << "  \"latency\": {\n"
      << "    \"pipeline_snapshot\": " << StatsJson(snap_stats) << ",\n"
      << "    \"store_write\": " << StatsJson(write_stats) << ",\n"
      << "    \"read_latest_plus_restore\": " << StatsJson(restore_stats)
      << "\n  },\n"
      << "  \"steady_state\": {\"baseline_batches_per_sec\": "
      << FormatDouble(baseline_best, 1)
      << ", \"fault_enabled_batches_per_sec\": "
      << FormatDouble(fault_best, 1)
      << ", \"overhead_pct\": " << FormatDouble(overhead_pct, 2)
      << ", \"checkpoint_interval_batches\": 64"
      << ", \"target_pct\": 5.0, \"protocol\": \"best of 5 runs each\"}\n"
      << "}\n";
  std::printf("Wrote BENCH_fault.json\n");

  fs::remove_all(scratch, ec);
  return 0;
}
