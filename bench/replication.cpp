// Replication cost benchmark: what quorum durability charges per batch,
// and what failover costs a stream. Three legs, all in-process clusters
// on loopback:
//   (a) submit→ACK latency against a 1-node replicated cluster (same
//       code path as production replication — raft log append + apply —
//       but no network quorum round);
//   (b) the same against a 3-node cluster, where the ACK additionally
//       waits for majority replication, so (b) − (a) is the quorum tax;
//   (c) failover-to-first-ACK: the leader is partitioned away (FailPoint,
//       full send+recv drop) and the clock runs from the partition to the
//       next successful ACK on the new leader — election, client
//       rotation, and redirect chasing included.
// Emits BENCH_replication.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "data/synthetic.h"
#include "eval/report.h"
#include "fault/failpoint.h"
#include "ml/models.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket_util.h"
#include "obs/metrics.h"

using namespace freeway;         // NOLINT — bench driver.
using namespace freeway::bench;  // NOLINT

namespace {

namespace fs = std::filesystem;

constexpr size_t kDim = 10;
constexpr size_t kBatchRows = 128;
constexpr int kWarmupBatches = 10;
constexpr int kMeasuredBatches = 120;

struct LatencyStats {
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  double mean_micros = 0.0;
};

LatencyStats Summarize(std::vector<double> micros) {
  LatencyStats stats;
  if (micros.empty()) return stats;
  std::sort(micros.begin(), micros.end());
  stats.p50_micros = micros[micros.size() / 2];
  stats.p99_micros =
      micros[std::min(micros.size() - 1, (micros.size() * 99) / 100)];
  double sum = 0.0;
  for (double m : micros) sum += m;
  stats.mean_micros = sum / static_cast<double>(micros.size());
  return stats;
}

std::string StatsJson(const LatencyStats& stats) {
  return "{\"p50_micros\": " + FormatDouble(stats.p50_micros, 1) +
         ", \"p99_micros\": " + FormatDouble(stats.p99_micros, 1) +
         ", \"mean_micros\": " + FormatDouble(stats.mean_micros, 1) + "}";
}

uint16_t ReservePort() {
  auto fd = net::CreateListenSocket("127.0.0.1", 0, 4, false);
  fd.status().CheckOk();
  auto port = net::LocalPort(*fd);
  port.status().CheckOk();
  net::CloseFd(*fd);
  return *port;
}

/// An in-process replicated cluster of `n` nodes.
class Cluster {
 public:
  Cluster(const fs::path& root, size_t n) : root_(root) {
    for (size_t i = 0; i < n; ++i) ports_.push_back(ReservePort());
    nodes_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      registries_.push_back(std::make_unique<MetricsRegistry>());
    }
    auto proto = MakeLogisticRegression(kDim, 2);
    for (size_t i = 0; i < n; ++i) {
      ServerOptions options;
      options.metrics = registries_[i].get();
      options.port = ports_[i];
      options.num_workers = 1;
      options.runtime.num_shards = 2;
      options.ingest.enabled = true;
      options.ingest.log_dir =
          (root_ / ("n" + std::to_string(i)) / "log").string();
      options.replication.enabled = true;
      options.replication.node_id = i + 1;
      options.replication.data_dir =
          (root_ / ("n" + std::to_string(i)) / "raft").string();
      options.replication.tick_millis = 5;
      options.replication.heartbeat_ticks = 2;
      options.replication.failpoint_scope = "n" + std::to_string(i + 1) + ".";
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        options.replication.peers.push_back(
            {static_cast<uint64_t>(j + 1), "127.0.0.1", ports_[j]});
      }
      nodes_[i] = std::make_unique<StreamServer>(*proto, std::move(options));
      nodes_[i]->Start().CheckOk();
    }
  }

  ~Cluster() {
    for (auto& node : nodes_) node->Stop();
  }

  int WaitForLeader() {
    for (int spin = 0; spin < 2000; ++spin) {
      for (size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i]->replicator()->IsLeader()) return static_cast<int>(i);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return -1;
  }

  const std::vector<uint16_t>& ports() const { return ports_; }

 private:
  fs::path root_;
  std::vector<uint16_t> ports_;
  std::vector<std::unique_ptr<MetricsRegistry>> registries_;
  std::vector<std::unique_ptr<StreamServer>> nodes_;
};

Batch MakeBatch(uint64_t seed, int64_t index) {
  Rng rng(seed);
  Batch b;
  b.index = index;
  b.features = Matrix(kBatchRows, kDim);
  b.labels.resize(kBatchRows);
  for (size_t i = 0; i < kBatchRows; ++i) {
    const int label = static_cast<int>(rng.NextBelow(2));
    b.labels[i] = label;
    for (size_t j = 0; j < kDim; ++j) {
      b.features.At(i, j) = rng.Gaussian(label * 2.0, 0.75);
    }
  }
  return b;
}

ClientOptions ClusterClientOptions(const std::vector<uint16_t>& ports,
                                   int leader) {
  ClientOptions copts;
  copts.client_id = 9001;
  copts.max_submit_attempts = 64;
  copts.reply_timeout_millis = 500;
  copts.backoff_initial_micros = 200;
  copts.backoff_max_micros = 20000;
  copts.endpoints.push_back({"127.0.0.1", ports[leader]});
  for (size_t i = 0; i < ports.size(); ++i) {
    if (static_cast<int>(i) == leader) continue;
    copts.endpoints.push_back({"127.0.0.1", ports[i]});
  }
  return copts;
}

/// Submit→ACK latency distribution against an n-node cluster.
LatencyStats MeasureSubmitLatency(const fs::path& root, size_t n) {
  Cluster cluster(root, n);
  const int leader = cluster.WaitForLeader();
  if (leader < 0) {
    std::fprintf(stderr, "no leader in %zu-node cluster\n", n);
    return {};
  }
  StreamClient client(ClusterClientOptions(cluster.ports(), leader));
  std::vector<double> micros;
  micros.reserve(kMeasuredBatches);
  for (int b = 0; b < kWarmupBatches + kMeasuredBatches; ++b) {
    Batch batch = MakeBatch(1000 + b, b);
    Stopwatch watch;
    client.Submit(3, std::move(batch)).CheckOk();
    if (b >= kWarmupBatches) micros.push_back(watch.ElapsedSeconds() * 1e6);
  }
  return micros.empty() ? LatencyStats{} : Summarize(std::move(micros));
}

/// Partition the leader of a 3-node cluster mid-stream; time to the next
/// successful ACK (election + client failover + redirect chasing).
double MeasureFailoverMillis(const fs::path& root) {
  Cluster cluster(root, 3);
  const int leader = cluster.WaitForLeader();
  if (leader < 0) return -1.0;
  StreamClient client(ClusterClientOptions(cluster.ports(), leader));
  for (int b = 0; b < 10; ++b) {
    client.Submit(3, MakeBatch(2000 + b, b)).CheckOk();
  }
  const std::string scope = "n" + std::to_string(leader + 1) + ".";
  failpoint::FailPointSpec forever;
  forever.count = SIZE_MAX;
  failpoint::Arm(scope + "repl.send", forever);
  failpoint::Arm(scope + "repl.recv", forever);
  Stopwatch watch;
  client.Submit(3, MakeBatch(3000, 10)).CheckOk();
  const double millis = watch.ElapsedSeconds() * 1e3;
  failpoint::DisarmAll();
  return millis;
}

}  // namespace

int main() {
  std::printf("== Replication cost: quorum tax and failover ==\n\n");
  const fs::path scratch =
      fs::temp_directory_path() / "freeway_bench_replication";
  std::error_code ec;
  fs::remove_all(scratch, ec);

  const LatencyStats one = MeasureSubmitLatency(scratch / "one", 1);
  const LatencyStats three = MeasureSubmitLatency(scratch / "three", 3);
  const double failover_ms = MeasureFailoverMillis(scratch / "failover");

  TablePrinter table({"Leg", "p50 us", "p99 us", "mean us"});
  table.AddRow({"1-node submit->ACK", FormatDouble(one.p50_micros, 1),
                FormatDouble(one.p99_micros, 1),
                FormatDouble(one.mean_micros, 1)});
  table.AddRow({"3-node submit->ACK", FormatDouble(three.p50_micros, 1),
                FormatDouble(three.p99_micros, 1),
                FormatDouble(three.mean_micros, 1)});
  table.Print();
  std::printf("quorum tax (p50): %.1f us\n",
              three.p50_micros - one.p50_micros);
  std::printf("failover to first ACK: %.1f ms\n", failover_ms);

  std::ofstream out("BENCH_replication.json");
  out << "{\n"
      << "  \"description\": \"Submit->ACK latency through the replicated "
         "path (deferred ACK after majority commit + local apply) on "
         "1-node vs 3-node loopback clusters, "
      << kMeasuredBatches << " measured batches of " << kBatchRows << "x"
      << kDim
      << " after warm-up; and failover-to-first-ACK wall time when the "
         "3-node leader is fully partitioned (FailPoint send+recv drop) "
         "mid-stream. From bench/replication.\",\n"
      << "  \"host\": " << HostJson() << ",\n"
      << "  \"submit_ack_latency\": {\n"
      << "    \"one_node\": " << StatsJson(one) << ",\n"
      << "    \"three_node\": " << StatsJson(three) << "\n  },\n"
      << "  \"quorum_tax_p50_micros\": "
      << FormatDouble(three.p50_micros - one.p50_micros, 1) << ",\n"
      << "  \"failover_to_first_ack_millis\": "
      << FormatDouble(failover_ms, 1) << "\n"
      << "}\n";
  std::printf("Wrote BENCH_replication.json\n");

  fs::remove_all(scratch, ec);
  return 0;
}
