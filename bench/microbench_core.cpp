// google-benchmark microbenchmarks of FreewayML's core primitives: the
// per-batch costs the framework adds on top of the base model (PCA
// projection, shift assessment, ASW maintenance, disorder, k-means for CEC,
// ensemble blending). Useful as a perf-regression harness; the paper-shaped
// numbers live in the table/fig benches.

#include <benchmark/benchmark.h>

#include <thread>

#include "clustering/kmeans.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/adaptive_window.h"
#include "core/disorder.h"
#include "core/shift_detector.h"
#include "linalg/pca.h"
#include "ml/layers.h"
#include "ml/models.h"

namespace freeway {
namespace {

Matrix RandomBatch(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) m.At(i, j) = rng.Gaussian(0, 1);
  }
  return m;
}

Batch LabeledRandomBatch(size_t n, size_t dim, size_t classes,
                         uint64_t seed) {
  Rng rng(seed);
  Batch b;
  b.features = RandomBatch(n, dim, seed);
  b.labels.resize(n);
  for (auto& y : b.labels) y = static_cast<int>(rng.NextBelow(classes));
  return b;
}

void BM_PcaTransformBatchMean(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Pca pca;
  pca.Fit(RandomBatch(256, dim, 1), dim < 8 ? dim : 8).CheckOk();
  Matrix batch = RandomBatch(1024, dim, 2);
  for (auto _ : state) {
    auto r = pca.TransformBatchMean(batch);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_PcaTransformBatchMean)->Arg(10)->Arg(41)->Arg(54);

void BM_ShiftAssess(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  ShiftDetector detector;
  Rng rng(3);
  for (int b = 0; b < 8; ++b) {
    detector.Assess(RandomBatch(512, dim, rng.NextUint64())).status().CheckOk();
  }
  Matrix batch = RandomBatch(1024, dim, 99);
  for (auto _ : state) {
    auto r = detector.Assess(batch);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ShiftAssess)->Arg(10)->Arg(41);

void BM_AswAdd(benchmark::State& state) {
  AdaptiveWindowOptions opts;
  opts.max_batches = static_cast<size_t>(state.range(0));
  AdaptiveStreamingWindow window(opts);
  Rng rng(4);
  Batch batch = LabeledRandomBatch(1024, 20, 2, 5);
  for (auto _ : state) {
    auto full = window.Add(batch);
    benchmark::DoNotOptimize(full);
    if (full.ok() && full.value()) {
      auto taken = window.TakeTrainingData();
      benchmark::DoNotOptimize(taken);
    }
  }
}
BENCHMARK(BM_AswAdd)->Arg(8)->Arg(32);

void BM_Disorder(benchmark::State& state) {
  Rng rng(6);
  std::vector<double> values(static_cast<size_t>(state.range(0)));
  for (auto& v : values) v = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(NormalizedDisorder(values));
  }
}
BENCHMARK(BM_Disorder)->Arg(8)->Arg(64)->Arg(1024);

void BM_KMeansCec(benchmark::State& state) {
  // CEC-sized problem: current batch + experience, c = classes.
  const size_t classes = static_cast<size_t>(state.range(0));
  Matrix points = RandomBatch(1024 + 256, 16, 7);
  KMeansOptions opts;
  opts.max_iterations = 20;
  for (auto _ : state) {
    auto r = KMeans(points, classes, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * points.rows());
}
BENCHMARK(BM_KMeansCec)->Arg(2)->Arg(5)->Arg(7);

void BM_ModelTrainBatch(benchmark::State& state) {
  auto model = MakeMlp(41, 5);
  Batch batch = LabeledRandomBatch(static_cast<size_t>(state.range(0)), 41,
                                   5, 8);
  for (auto _ : state) {
    auto r = model->TrainBatch(batch.features, batch.labels);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * batch.size());
}
BENCHMARK(BM_ModelTrainBatch)->Arg(256)->Arg(1024);

void BM_ModelPredict(benchmark::State& state) {
  auto model = MakeMlp(41, 5);
  Matrix batch = RandomBatch(static_cast<size_t>(state.range(0)), 41, 9);
  for (auto _ : state) {
    auto r = model->PredictProba(batch);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * batch.rows());
}
BENCHMARK(BM_ModelPredict)->Arg(256)->Arg(1024);

// Thread sweep for the parallel kernels: benchmark argument = pool size,
// applied via ThreadPool::SetGlobalThreads. Results must be bit-identical
// across the sweep (static chunking); only the time may change.
void ThreadSweep(benchmark::internal::Benchmark* b) {
  const int n = static_cast<int>(std::thread::hardware_concurrency());
  b->Arg(1)->Arg(2)->Arg(4);
  if (n > 4) b->Arg(n);
}

void BM_MatMul(benchmark::State& state) {
  ThreadPool::SetGlobalThreads(static_cast<size_t>(state.range(0)));
  Matrix a = RandomBatch(512, 512, 11);
  Matrix b = RandomBatch(512, 512, 12);
  for (auto _ : state) {
    Matrix c = a.MatMul(b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * 512 * 512 * 512 * 2);
}
BENCHMARK(BM_MatMul)->Apply(ThreadSweep)->Unit(benchmark::kMillisecond);

void BM_Conv2dForward(benchmark::State& state) {
  ThreadPool::SetGlobalThreads(static_cast<size_t>(state.range(0)));
  Rng rng(13);
  TensorShape shape{3, 32, 32};
  Conv2dLayer conv(shape, 16, 5, 5, &rng);
  Matrix batch = RandomBatch(64, shape.FlatSize(), 14);
  for (auto _ : state) {
    Matrix out = conv.Forward(batch);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * batch.rows());
}
BENCHMARK(BM_Conv2dForward)->Apply(ThreadSweep)->Unit(benchmark::kMillisecond);

void BM_KMeansAssign(benchmark::State& state) {
  ThreadPool::SetGlobalThreads(static_cast<size_t>(state.range(0)));
  Matrix points = RandomBatch(4096, 32, 15);
  Matrix centroids = RandomBatch(16, 32, 16);
  for (auto _ : state) {
    auto assignments = AssignToCentroids(points, centroids);
    benchmark::DoNotOptimize(assignments);
  }
  state.SetItemsProcessed(state.iterations() * points.rows());
}
BENCHMARK(BM_KMeansAssign)->Apply(ThreadSweep)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace freeway

BENCHMARK_MAIN();
