// google-benchmark microbenchmarks of FreewayML's core primitives: the
// per-batch costs the framework adds on top of the base model (PCA
// projection, shift assessment, ASW maintenance, disorder, k-means for CEC,
// ensemble blending). Useful as a perf-regression harness; the paper-shaped
// numbers live in the table/fig benches.

#include <benchmark/benchmark.h>

#include "clustering/kmeans.h"
#include "common/rng.h"
#include "core/adaptive_window.h"
#include "core/disorder.h"
#include "core/shift_detector.h"
#include "linalg/pca.h"
#include "ml/models.h"

namespace freeway {
namespace {

Matrix RandomBatch(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) m.At(i, j) = rng.Gaussian(0, 1);
  }
  return m;
}

Batch LabeledRandomBatch(size_t n, size_t dim, size_t classes,
                         uint64_t seed) {
  Rng rng(seed);
  Batch b;
  b.features = RandomBatch(n, dim, seed);
  b.labels.resize(n);
  for (auto& y : b.labels) y = static_cast<int>(rng.NextBelow(classes));
  return b;
}

void BM_PcaTransformBatchMean(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Pca pca;
  pca.Fit(RandomBatch(256, dim, 1), dim < 8 ? dim : 8).CheckOk();
  Matrix batch = RandomBatch(1024, dim, 2);
  for (auto _ : state) {
    auto r = pca.TransformBatchMean(batch);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_PcaTransformBatchMean)->Arg(10)->Arg(41)->Arg(54);

void BM_ShiftAssess(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  ShiftDetector detector;
  Rng rng(3);
  for (int b = 0; b < 8; ++b) {
    detector.Assess(RandomBatch(512, dim, rng.NextUint64())).status().CheckOk();
  }
  Matrix batch = RandomBatch(1024, dim, 99);
  for (auto _ : state) {
    auto r = detector.Assess(batch);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ShiftAssess)->Arg(10)->Arg(41);

void BM_AswAdd(benchmark::State& state) {
  AdaptiveWindowOptions opts;
  opts.max_batches = static_cast<size_t>(state.range(0));
  AdaptiveStreamingWindow window(opts);
  Rng rng(4);
  Batch batch = LabeledRandomBatch(1024, 20, 2, 5);
  for (auto _ : state) {
    auto full = window.Add(batch);
    benchmark::DoNotOptimize(full);
    if (full.ok() && full.value()) {
      auto taken = window.TakeTrainingData();
      benchmark::DoNotOptimize(taken);
    }
  }
}
BENCHMARK(BM_AswAdd)->Arg(8)->Arg(32);

void BM_Disorder(benchmark::State& state) {
  Rng rng(6);
  std::vector<double> values(static_cast<size_t>(state.range(0)));
  for (auto& v : values) v = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(NormalizedDisorder(values));
  }
}
BENCHMARK(BM_Disorder)->Arg(8)->Arg(64)->Arg(1024);

void BM_KMeansCec(benchmark::State& state) {
  // CEC-sized problem: current batch + experience, c = classes.
  const size_t classes = static_cast<size_t>(state.range(0));
  Matrix points = RandomBatch(1024 + 256, 16, 7);
  KMeansOptions opts;
  opts.max_iterations = 20;
  for (auto _ : state) {
    auto r = KMeans(points, classes, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * points.rows());
}
BENCHMARK(BM_KMeansCec)->Arg(2)->Arg(5)->Arg(7);

void BM_ModelTrainBatch(benchmark::State& state) {
  auto model = MakeMlp(41, 5);
  Batch batch = LabeledRandomBatch(static_cast<size_t>(state.range(0)), 41,
                                   5, 8);
  for (auto _ : state) {
    auto r = model->TrainBatch(batch.features, batch.labels);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * batch.size());
}
BENCHMARK(BM_ModelTrainBatch)->Arg(256)->Arg(1024);

void BM_ModelPredict(benchmark::State& state) {
  auto model = MakeMlp(41, 5);
  Matrix batch = RandomBatch(static_cast<size_t>(state.range(0)), 41, 9);
  for (auto _ : state) {
    auto r = model->PredictProba(batch);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * batch.rows());
}
BENCHMARK(BM_ModelPredict)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace freeway

BENCHMARK_MAIN();
