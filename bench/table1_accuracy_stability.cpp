// Reproduces Table I: global average accuracy (G_acc) and Stability Index
// (SI) of StreamingLR systems {Flink ML, Spark MLlib, Alink, FreewayML} and
// StreamingMLP systems {River, Camel, A-GEM, FreewayML} across the six
// benchmark datasets.
//
// Expected shape (not absolute numbers): FreewayML posts the best G_acc and
// SI in each column for both model families.

#include "bench/bench_util.h"
#include "eval/report.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

void RunFamily(const char* family, ModelKind kind,
               const std::vector<std::string>& systems) {
  std::printf("--- %s ---\n", family);
  std::vector<std::string> headers = {"Framework"};
  for (const auto& dataset : BenchmarkDatasetNames()) {
    headers.push_back(dataset + " G_acc");
    headers.push_back("SI");
  }
  TablePrinter table(headers);
  for (const auto& system : systems) {
    std::vector<std::string> row = {system};
    for (const auto& dataset : BenchmarkDatasetNames()) {
      PrequentialResult r = RunSystemOnDataset(system, kind, dataset);
      row.push_back(FormatPercent(r.g_acc));
      row.push_back(FormatDouble(r.stability_index, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  Banner("table1_accuracy_stability", "Table I",
         "G_acc / SI of streaming systems on the six benchmark datasets "
         "(prequential, batch 512).");
  RunFamily("StreamingLR", ModelKind::kLogisticRegression, LrSystemNames());
  RunFamily("StreamingMLP", ModelKind::kMlp, MlpSystemNames());
  return 0;
}
