// Reproduces Figure 9: per-batch real-time accuracy of FreewayML versus the
// plain Streaming MLP on the four real-world dataset simulators, with the
// strategy FreewayML chose per batch. In the paper the three mechanisms are
// drawn as three colored lines; here the strategy column annotates which
// mechanism produced each FreewayML point (0 = multi-granularity ensemble,
// 1 = CEC, 2 = knowledge reuse).

#include <memory>

#include "baselines/factory.h"
#include "baselines/freeway_adapter.h"
#include "bench/bench_util.h"
#include "eval/report.h"
#include "ml/models.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

void TraceDataset(const std::string& dataset) {
  std::printf("--- %s ---\n", dataset.c_str());
  const uint64_t seed = 99;
  auto src_plain = MakeBenchmarkDataset(dataset, seed);
  auto src_freeway = MakeBenchmarkDataset(dataset, seed);
  src_plain.status().CheckOk();
  src_freeway.status().CheckOk();

  auto plain = MakeSystem("Plain", ModelKind::kMlp,
                          (*src_plain)->input_dim(),
                          (*src_plain)->num_classes());
  plain.status().CheckOk();
  std::unique_ptr<Model> proto = MakeMlp((*src_freeway)->input_dim(),
                                         (*src_freeway)->num_classes());
  FreewayAdapter freeway(*proto);

  std::vector<double> plain_acc, freeway_acc, strategy;
  for (int b = 0; b < 90; ++b) {
    auto ba = (*src_plain)->NextBatch(512);
    auto bb = (*src_freeway)->NextBatch(512);
    ba.status().CheckOk();
    bb.status().CheckOk();
    auto pa = (*plain)->PrequentialStep(*ba);
    auto pb = freeway.PrequentialStep(*bb);
    pa.status().CheckOk();
    pb.status().CheckOk();
    if (b < 10) continue;  // Cold start excluded, as in the figures.
    size_t ha = 0, hb = 0;
    for (size_t i = 0; i < ba->size(); ++i) {
      if ((*pa)[i] == ba->labels[i]) ++ha;
      if ((*pb)[i] == bb->labels[i]) ++hb;
    }
    plain_acc.push_back(static_cast<double>(ha) / ba->size());
    freeway_acc.push_back(static_cast<double>(hb) / bb->size());
    strategy.push_back(static_cast<double>(freeway.last_report().strategy));
  }

  SeriesPrinter series("batch");
  series.AddSeries("plain_mlp", plain_acc);
  series.AddSeries("freewayml", freeway_acc);
  series.AddSeries("strategy", strategy);
  series.Print(3);

  double pa = 0, fa = 0;
  for (double v : plain_acc) pa += v;
  for (double v : freeway_acc) fa += v;
  std::printf("mean: plain=%s freeway=%s\n\n",
              FormatPercent(pa / plain_acc.size()).c_str(),
              FormatPercent(fa / freeway_acc.size()).c_str());
}

}  // namespace

int main() {
  Banner("fig9_mechanism_series", "Figure 9",
         "Real-time accuracy of FreewayML's mechanisms vs plain StreamingMLP "
         "on the four real-dataset simulators (strategy: 0=ensemble, 1=CEC, "
         "2=knowledge).");
  for (const char* dataset :
       {"Airlines", "Covertype", "NSL-KDD", "Electricity"}) {
    TraceDataset(dataset);
  }
  return 0;
}
