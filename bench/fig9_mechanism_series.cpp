// Reproduces Figure 9: per-batch real-time accuracy of FreewayML versus the
// plain Streaming MLP on the four real-world dataset simulators, with the
// strategy FreewayML chose per batch. In the paper the three mechanisms are
// drawn as three colored lines; here the strategy column annotates which
// mechanism produced each FreewayML point (0 = multi-granularity ensemble,
// 1 = CEC, 2 = knowledge reuse).
//
// The stream itself is a ScenarioSpec replayed by the scenario engine's
// learner harness: with immediate labels the event tape degenerates to the
// classic test-then-train loop, so the series are bit-identical to the
// hand-rolled loop this bench used to carry.

#include "baselines/factory.h"
#include "baselines/freeway_adapter.h"
#include "bench/bench_util.h"
#include "eval/report.h"
#include "scenarios/harness.h"
#include "scenarios/scenario.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

void TraceDataset(const std::string& dataset) {
  std::printf("--- %s ---\n", dataset.c_str());
  ScenarioSpec spec;
  spec.name = dataset;
  spec.dataset = dataset;
  spec.seed = 99;
  spec.num_batches = 90;
  spec.batch_size = 512;
  spec.warmup_batches = 10;  // Cold start excluded, as in the figures.
  auto scenario = GenerateScenario(spec);
  scenario.status().CheckOk();
  auto shape = MakeScenarioSource(spec);
  shape.status().CheckOk();

  auto plain = MakeSystem("Plain", ModelKind::kMlp, (*shape)->input_dim(),
                          (*shape)->num_classes());
  auto freeway = MakeSystem("FreewayML", ModelKind::kMlp,
                            (*shape)->input_dim(), (*shape)->num_classes());
  plain.status().CheckOk();
  freeway.status().CheckOk();

  auto plain_report = RunScenarioOnLearner(plain->get(), *scenario);
  LearnerHarnessOptions probe_opts;
  auto* adapter = dynamic_cast<FreewayAdapter*>(freeway->get());
  if (adapter != nullptr) {
    probe_opts.mechanism_probe = [adapter] {
      return static_cast<int>(adapter->last_report().strategy);
    };
  }
  auto freeway_report =
      RunScenarioOnLearner(freeway->get(), *scenario, probe_opts);
  plain_report.status().CheckOk();
  freeway_report.status().CheckOk();

  const std::vector<double>& plain_acc =
      plain_report->prequential.batch_accuracies;
  const std::vector<double>& freeway_acc =
      freeway_report->prequential.batch_accuracies;
  std::vector<double> strategy;
  for (int m : freeway_report->batch_mechanisms) {
    strategy.push_back(static_cast<double>(m));
  }

  SeriesPrinter series("batch");
  series.AddSeries("plain_mlp", plain_acc);
  series.AddSeries("freewayml", freeway_acc);
  series.AddSeries("strategy", strategy);
  series.Print(3);

  double pa = 0, fa = 0;
  for (double v : plain_acc) pa += v;
  for (double v : freeway_acc) fa += v;
  std::printf("mean: plain=%s freeway=%s\n\n",
              FormatPercent(pa / plain_acc.size()).c_str(),
              FormatPercent(fa / freeway_acc.size()).c_str());
}

}  // namespace

int main() {
  Banner("fig9_mechanism_series", "Figure 9",
         "Real-time accuracy of FreewayML's mechanisms vs plain StreamingMLP "
         "on the four real-dataset simulators (strategy: 0=ensemble, 1=CEC, "
         "2=knowledge).");
  for (const char* dataset :
       {"Airlines", "Covertype", "NSL-KDD", "Electricity"}) {
    TraceDataset(dataset);
  }
  return 0;
}
