// Reproduces Table III: per-batch update and inference latency (µs) of every
// system on the Hyperplane stream, for batch sizes 512 to 4096, split into
// the LR and MLP lineups.
//
// Expected shape: latency scales ~linearly with batch size; Spark MLlib is
// the slowest updater in the LR lineup (partition aggregation + double
// shuffle), A-GEM the slowest in the MLP lineup (extra gradient pass);
// FreewayML's inference stays comparable to River's.

#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "eval/perf.h"
#include "eval/report.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

struct FamilyRows {
  std::vector<std::vector<std::string>> update;
  std::vector<std::vector<std::string>> infer;
};

FamilyRows MeasureFamily(ModelKind kind,
                         const std::vector<std::string>& systems,
                         const std::vector<size_t>& batch_sizes) {
  FamilyRows rows;
  for (const auto& system : systems) {
    std::vector<std::string> update_row = {system};
    std::vector<std::string> infer_row = {system};
    for (size_t bs : batch_sizes) {
      HyperplaneSource source;
      auto learner = MakeSystem(system, kind, source.input_dim(),
                                source.num_classes());
      learner.status().CheckOk();
      PerfOptions opts;
      opts.batch_size = bs;
      opts.warmup_batches = 3;
      opts.measure_batches = 30;
      auto lat = MeasureLatency(learner->get(), &source, opts);
      lat.status().CheckOk();
      update_row.push_back(FormatDouble(lat->update_micros, 0));
      infer_row.push_back(FormatDouble(lat->infer_micros, 0));
    }
    rows.update.push_back(std::move(update_row));
    rows.infer.push_back(std::move(infer_row));
  }
  return rows;
}

void PrintSection(const char* label,
                  const std::vector<std::vector<std::string>>& rows,
                  const std::vector<size_t>& batch_sizes) {
  std::printf("--- %s (us per batch) ---\n", label);
  std::vector<std::string> headers = {"System"};
  for (size_t bs : batch_sizes) headers.push_back(std::to_string(bs));
  TablePrinter table(headers);
  for (const auto& row : rows) table.AddRow(row);
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  Banner("table3_latency", "Table III",
         "Update / inference latency (us) per batch on Hyperplane, batch "
         "sizes 512-4096.");
  const std::vector<size_t> batch_sizes = {512, 1024, 2048, 4096};

  FamilyRows lr = MeasureFamily(ModelKind::kLogisticRegression,
                                LrSystemNames(), batch_sizes);
  FamilyRows mlp = MeasureFamily(ModelKind::kMlp, MlpSystemNames(),
                                 batch_sizes);

  PrintSection("LR_update", lr.update, batch_sizes);
  PrintSection("MLP_update", mlp.update, batch_sizes);
  PrintSection("LR_infer", lr.infer, batch_sizes);
  PrintSection("MLP_infer", mlp.infer, batch_sizes);
  return 0;
}
