// Stream-directory scale benchmark: (a) drives >= 100k logical streams
// (default 120k, FREEWAY_BENCH_DIR_STREAMS to rescale) through a 4-shard
// directory-mode StreamRuntime whose hydrated working set is bounded far
// below the stream count, reporting sustained submit throughput and exact
// activation (hydrate) latency percentiles; and (b) floods one pressured
// shard from a heavy (weight 8, standard) and a light (weight 1,
// best-effort) tenant through the non-blocking TrySubmit path, reporting
// per-tenant admitted/rejected so the weighted-fairness contract — heavy
// throttled proportionally more slowly, light throttled but never starved —
// is visible in numbers. Emits BENCH_directory.json.
//
// Acceptance bar: the working set stays at/below its configured cap while
// every logical stream is activated at least once (the whole point of the
// directory: stream count no longer bounds memory), the quiescent
// hydration invariant holds, and the light tenant's admitted count is > 0.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "directory/working_set.h"
#include "eval/report.h"
#include "ml/models.h"
#include "runtime/stream_runtime.h"

using namespace freeway;        // NOLINT — bench driver.
using namespace freeway::bench; // NOLINT

namespace {

namespace fs = std::filesystem;

constexpr size_t kDim = 8;
constexpr size_t kBatchSize = 8;
constexpr size_t kNumShards = 4;

size_t EnvSize(const char* name, size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || value == 0) {
    std::fprintf(stderr, "ignoring %s=%s (want a positive integer)\n", name,
                 raw);
    return fallback;
  }
  return static_cast<size_t>(value);
}

Batch MakeBatch(bool labeled, uint64_t seed, int64_t index) {
  Rng rng(seed);
  Batch b;
  b.index = index;
  b.features = Matrix(kBatchSize, kDim);
  if (labeled) b.labels.resize(kBatchSize);
  for (size_t i = 0; i < kBatchSize; ++i) {
    const int label = static_cast<int>(rng.NextBelow(2));
    if (labeled) b.labels[i] = label;
    for (size_t j = 0; j < kDim; ++j) {
      b.features.At(i, j) = rng.Gaussian(label * 2.0, 0.5);
    }
  }
  return b;
}

struct Percentiles {
  size_t count = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

Percentiles Summarize(std::vector<double> micros) {
  Percentiles p;
  p.count = micros.size();
  if (micros.empty()) return p;
  std::sort(micros.begin(), micros.end());
  p.p50 = micros[micros.size() / 2];
  p.p99 = micros[std::min(micros.size() - 1, (micros.size() * 99) / 100)];
  p.max = micros.back();
  return p;
}

RuntimeOptions BaseOptions() {
  RuntimeOptions opts;
  opts.num_shards = kNumShards;
  opts.queue_capacity = 256;
  // The learner is deliberately tiny: the quantity under test is directory
  // overhead (placement, hydrate, evict-to-park), not model math.
  opts.pipeline.learner.base_window_batches = 4;
  opts.pipeline.learner.detector.warmup_batches = 3;
  opts.pipeline.enable_rate_adjuster = false;
  opts.forward_rate_signal = false;
  opts.directory.enabled = true;
  return opts;
}

}  // namespace

int main() {
  Banner("directory_scale", "Stream directory",
         "Activation latency and sustained throughput of >= 100k logical "
         "streams over a bounded hydrated working set, plus per-tenant "
         "weighted-admission fairness under a pressured shard.");

  ThreadPool::SetGlobalThreads(4);
  const size_t kStreams = EnvSize("FREEWAY_BENCH_DIR_STREAMS", 120000);
  auto proto = MakeLogisticRegression(kDim, 2);

  const std::string scratch = "bench_directory_park";
  std::error_code ec;
  fs::remove_all(scratch, ec);

  // ---- Phase A: activation at scale ----------------------------------
  RuntimeOptions opts = BaseOptions();
  opts.directory.park_dir = scratch + "/scale";
  opts.directory.working_set_capacity = 2048;
  opts.directory.record_activation_latency = true;
  opts.directory.ApplyEnv();  // FREEWAY_DIRECTORY_WORKING_SET overrides.
  const size_t kWorkingSet = opts.directory.working_set_capacity;

  std::atomic<uint64_t> results{0};
  StreamRuntime runtime(*proto, opts,
                        [&results](const StreamResult&) { ++results; });

  // One cold touch per logical stream, every 2nd labeled, plus a retouch
  // of a recently-activated stream every 8th submit so the LRU hit path is
  // exercised alongside the miss path. Recent means "within the last ~512
  // activations", which is inside the working set at every capacity the
  // bench supports.
  Stopwatch watch;
  uint64_t submits = 0;
  for (size_t i = 0; i < kStreams; ++i) {
    runtime
        .Submit(i, MakeBatch(/*labeled=*/i % 2 == 0, /*seed=*/1000 + i,
                             /*index=*/0))
        .CheckOk();
    ++submits;
    if (i % 8 == 7 && i > 512) {
      const uint64_t recent = i - 1 - (i % 512);
      runtime
          .Submit(recent, MakeBatch(/*labeled=*/false, /*seed=*/9000 + i,
                                    /*index=*/1))
          .CheckOk();
      ++submits;
    }
    // A long-range retouch every 32nd submit reaches a long-evicted stream,
    // so the activation percentiles include real park-restore hydrations,
    // not just fresh ones.
    if (i % 32 == 31 && i > 4096) {
      runtime
          .Submit(i / 2, MakeBatch(/*labeled=*/false, /*seed=*/5000 + i,
                                   /*index=*/1))
          .CheckOk();
      ++submits;
    }
  }
  runtime.Flush();
  const double scale_secs = watch.ElapsedSeconds();

  // The runtime is quiescent after Flush, so working-set inspection and the
  // hydration invariant are exact.
  std::vector<double> activation;
  for (size_t s = 0; s < runtime.num_shards(); ++s) {
    const WorkingSetStats& stats = runtime.shard_working_set(s)->stats();
    activation.insert(activation.end(), stats.activation_micros.begin(),
                      stats.activation_micros.end());
  }
  const Percentiles act = Summarize(activation);
  RuntimeStatsSnapshot snapshot = runtime.Snapshot();
  const DirectoryStatsSnapshot& dir = snapshot.directory;

  bool ok = true;
  if (dir.hydrations_fresh + dir.hydrations_restored !=
      dir.evictions + dir.discards + dir.resident) {
    std::fprintf(stderr, "FAIL: hydration invariant violated\n");
    ok = false;
  }
  if (dir.resident > dir.capacity) {
    std::fprintf(stderr, "FAIL: working set exceeded its cap (%llu > %llu)\n",
                 static_cast<unsigned long long>(dir.resident),
                 static_cast<unsigned long long>(dir.capacity));
    ok = false;
  }
  if (act.count < kStreams) {
    std::fprintf(stderr,
                 "FAIL: only %zu activations recorded for %zu streams\n",
                 act.count, kStreams);
    ok = false;
  }
  runtime.Shutdown();

  const double submits_per_sec =
      scale_secs > 0.0 ? static_cast<double>(submits) / scale_secs : 0.0;
  TablePrinter scale_table({"Metric", "Value"});
  scale_table.AddRow({"logical streams", std::to_string(kStreams)});
  scale_table.AddRow({"working-set cap", std::to_string(kWorkingSet)});
  scale_table.AddRow({"submits/sec", FormatDouble(submits_per_sec, 1)});
  scale_table.AddRow({"activation p50 (us)", FormatDouble(act.p50, 1)});
  scale_table.AddRow({"activation p99 (us)", FormatDouble(act.p99, 1)});
  scale_table.AddRow(
      {"evictions", std::to_string(static_cast<unsigned long long>(
                        dir.evictions))});
  scale_table.Print();
  std::printf("\n");

  // ---- Phase B: weighted-admission fairness --------------------------
  // Manual-pump rounds keep the single shard *continuously* pressured:
  // each round floods far more attempts than the queue holds, then drains
  // it once. Free-running producers against a scheduled drain on a small
  // host let the queue oscillate through the uncontended band (fill < 0.5,
  // where by design nobody is throttled), which measures the scheduler,
  // not the admission contract.
  RuntimeOptions fopts = BaseOptions();
  fopts.num_shards = 1;  // Single contended shard: the fairness crucible.
  fopts.queue_capacity = 40;
  fopts.schedule_workers = false;
  fopts.directory.park_dir = scratch + "/fairness";
  fopts.directory.working_set_capacity = 64;
  fopts.directory.admission.enabled = true;
  fopts.directory.admission.tenants = {
      {/*tenant_id=*/1, /*weight=*/8.0, TenantPriority::kStandard},
      {/*tenant_id=*/2, /*weight=*/1.0, TenantPriority::kBestEffort},
  };
  // Shares with the implicit weight-1 "other" bucket: heavy 40*8/10 = 32,
  // light 40*1/10 = 4 — so every pressured round admits exactly 32 + 4.

  const size_t kRounds = EnvSize("FREEWAY_BENCH_DIR_ROUNDS", 50);
  const size_t kAttemptsPerRound = EnvSize("FREEWAY_BENCH_DIR_ATTEMPTS", 500);
  StreamRuntime fair(*proto, fopts);
  auto flood = [&fair, kAttemptsPerRound](uint32_t tenant,
                                          TenantPriority priority,
                                          uint64_t stream_base) {
    SubmitContext ctx;
    ctx.tenant_id = tenant;
    ctx.priority = priority;
    for (size_t i = 0; i < kAttemptsPerRound; ++i) {
      // Unlabeled on purpose: labeled batches bypass tenant quotas.
      Batch b = MakeBatch(/*labeled=*/false, /*seed=*/stream_base + i,
                          static_cast<int64_t>(i));
      (void)fair.TrySubmit(stream_base + (i % 8), std::move(b), ctx);
    }
  };
  for (size_t round = 0; round < kRounds; ++round) {
    flood(1, TenantPriority::kStandard, 100);
    flood(2, TenantPriority::kBestEffort, 200);
    fair.PumpShard(0);
  }
  RuntimeStatsSnapshot fair_snapshot = fair.Snapshot();
  fair.Shutdown();

  TenantStatsSnapshot heavy_row, light_row;
  for (const TenantStatsSnapshot& row : fair_snapshot.tenants) {
    if (row.tenant_id == 1 && !row.is_other) heavy_row = row;
    if (row.tenant_id == 2 && !row.is_other) light_row = row;
  }
  if (light_row.admitted == 0) {
    std::fprintf(stderr, "FAIL: light tenant starved (0 admitted)\n");
    ok = false;
  }
  const double admit_ratio =
      light_row.admitted > 0
          ? static_cast<double>(heavy_row.admitted) /
                static_cast<double>(light_row.admitted)
          : 0.0;

  TablePrinter fair_table(
      {"Tenant", "Weight", "Priority", "Admitted", "Rejected"});
  fair_table.AddRow({"1 (heavy)", "8", "standard",
                     std::to_string(heavy_row.admitted),
                     std::to_string(heavy_row.rejected)});
  fair_table.AddRow({"2 (light)", "1", "best_effort",
                     std::to_string(light_row.admitted),
                     std::to_string(light_row.rejected)});
  fair_table.Print();
  std::printf("admitted ratio heavy/light = %s (configured shares admit "
              "exactly 32 heavy + 4 light per pressured round: throttled "
              "8:1, never to zero)\n\n",
              FormatDouble(admit_ratio, 2).c_str());

  std::ofstream out("BENCH_directory.json");
  out << "{\n"
      << "  \"description\": \"Directory-mode StreamRuntime: "
      << kStreams << " logical streams (one cold touch each + recent-window "
         "retouches) over a " << kWorkingSet << "-pipeline hydrated working "
         "set on " << kNumShards << " shards, exact activation-latency "
         "percentiles; then " << kRounds << " continuously-pressured "
         "heavy(w=8)/light(w=1) TrySubmit flood rounds against one 40-slot "
         "shard with weighted admission. From bench/directory_scale.\",\n"
      << "  \"host\": " << HostJson() << ",\n"
      << "  \"config\": {\"streams\": " << kStreams
      << ", \"working_set_capacity\": " << kWorkingSet
      << ", \"num_shards\": " << kNumShards
      << ", \"batch_size\": " << kBatchSize << ", \"dim\": " << kDim
      << "},\n"
      << "  \"scale\": {\"wall_seconds\": " << FormatDouble(scale_secs, 2)
      << ", \"total_submits\": " << submits
      << ", \"submits_per_sec\": " << FormatDouble(submits_per_sec, 1)
      << ", \"results_delivered\": " << results.load()
      << ", \"activation\": {\"count\": " << act.count
      << ", \"p50_micros\": " << FormatDouble(act.p50, 1)
      << ", \"p99_micros\": " << FormatDouble(act.p99, 1)
      << ", \"max_micros\": " << FormatDouble(act.max, 1) << "}},\n"
      << "  \"fairness\": {\"queue_capacity\": 40, \"rounds\": " << kRounds
      << ", \"attempts_per_tenant_per_round\": " << kAttemptsPerRound
      << ",\n"
      << "    \"heavy\": {\"tenant_id\": 1, \"weight\": 8, \"priority\": "
         "\"standard\", \"admitted\": " << heavy_row.admitted
      << ", \"rejected\": " << heavy_row.rejected << "},\n"
      << "    \"light\": {\"tenant_id\": 2, \"weight\": 1, \"priority\": "
         "\"best_effort\", \"admitted\": " << light_row.admitted
      << ", \"rejected\": " << light_row.rejected << "},\n"
      << "    \"admitted_ratio\": " << FormatDouble(admit_ratio, 2)
      << ", \"never_starved\": " << (light_row.admitted > 0 ? "true" : "false")
      << "},\n"
      << "  \"invariants_ok\": " << (ok ? "true" : "false") << ",\n"
      << "  \"runtime_stats_scale\": " << snapshot.ToJson() << "\n"
      << "}\n";
  std::printf("Wrote BENCH_directory.json\n");

  fs::remove_all(scratch, ec);
  return ok ? 0 : 1;
}
