#include "replication/replicator.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>

#include "common/logging.h"
#include "common/rng.h"
#include "fault/failpoint.h"
#include "net/socket_util.h"
#include "net/wire.h"

// This translation unit is the only part of src/replication/ that touches
// sockets and the wire codec; it compiles into freeway_net (see
// src/net/CMakeLists.txt) so freeway_replication itself stays free of the
// transport dependency and the library graph stays acyclic.

namespace freeway {

namespace {

using Clock = std::chrono::steady_clock;

/// How long the applier naps while the `<scope>raft.apply` failpoint holds
/// it. Short enough that chaos tests measuring failover don't see the nap
/// as extra latency once the site disarms.
constexpr auto kApplyStallNap = std::chrono::microseconds(200);

}  // namespace

Replicator::Replicator(ReplicationOptions options, ApplyFn apply, AckFn ack)
    : options_(std::move(options)),
      apply_(std::move(apply)),
      ack_(std::move(ack)) {
  if (options_.metrics != nullptr) {
    MetricsRegistry& m = *options_.metrics;
    metric_term_ = m.GetGauge("freeway_raft_term");
    metric_role_ = m.GetGauge("freeway_raft_role");
    metric_commit_ = m.GetGauge("freeway_raft_commit_index");
    metric_applied_ = m.GetGauge("freeway_raft_applied_index");
    metric_apply_lag_ = m.GetGauge("freeway_raft_apply_lag");
    metric_elections_ = m.GetCounter("freeway_raft_elections_total");
    metric_proposals_ = m.GetCounter("freeway_raft_proposals_total");
    metric_applied_entries_ = m.GetCounter("freeway_raft_entries_applied_total");
    metric_messages_out_ =
        m.GetCounter("freeway_raft_messages_total{dir=\"out\"}");
    metric_messages_in_ =
        m.GetCounter("freeway_raft_messages_total{dir=\"in\"}");
    metric_messages_dropped_ = m.GetCounter("freeway_raft_messages_dropped_total");
    metric_commit_seconds_ = m.GetHistogram("freeway_raft_commit_seconds");
    metric_propose_seconds_ = m.GetHistogram("freeway_raft_append_seconds");
  }
}

Replicator::~Replicator() { Stop(); }

Status Replicator::Start(uint64_t initial_applied_batches) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (started_) return Status::FailedPrecondition("replicator already started");
  if (options_.node_id == 0) {
    return Status::InvalidArgument("replication.node_id must be nonzero");
  }
  if (options_.data_dir.empty()) {
    return Status::InvalidArgument("replication.data_dir is required");
  }
  for (const ReplicationPeer& peer : options_.peers) {
    if (peer.node_id == 0 || peer.node_id == options_.node_id) {
      return Status::InvalidArgument("replication peer ids must be nonzero and "
                                     "distinct from this node's");
    }
  }

  DurableRaftStorageOptions storage_options;
  storage_options.directory = options_.data_dir;
  storage_options.fsync = options_.fsync;
  storage_options.failpoint_scope = options_.failpoint_scope;
  storage_ = std::make_unique<DurableRaftStorage>(storage_options);
  RETURN_IF_ERROR(storage_->Open());

  RaftConfig config;
  config.node_id = options_.node_id;
  for (const ReplicationPeer& peer : options_.peers) {
    config.peer_ids.push_back(peer.node_id);
  }
  config.election_timeout_min_ticks = options_.election_timeout_min_ticks;
  config.election_timeout_max_ticks = options_.election_timeout_max_ticks;
  config.heartbeat_ticks = options_.heartbeat_ticks;
  config.max_entries_per_append = options_.max_entries_per_append;
  // Pass the base seed through unmixed — RaftNode already folds node_id
  // into its RNG. Mixing here too would cancel that fold (x ^ k ^ k == x)
  // and hand every node the identical election-timeout sequence, which is
  // a recipe for persistent split votes.
  config.seed = options_.seed;
  config.failpoint_scope = options_.failpoint_scope;
  node_ = std::make_unique<RaftNode>(config, storage_.get());

  links_.clear();
  links_.reserve(options_.peers.size());
  for (const ReplicationPeer& peer : options_.peers) {
    PeerLink link;
    link.peer = peer;
    link.backoff_millis = options_.reconnect_min_millis;
    links_.push_back(std::move(link));
  }

  initial_applied_batches_ = initial_applied_batches;
  batches_seen_ = 0;
  applied_index_.store(0, std::memory_order_release);
  stop_.store(false, std::memory_order_release);
  driver_ = std::thread([this] { DriverLoop(); });
  applier_ = std::thread([this] { ApplierLoop(); });
  started_ = true;
  FREEWAY_LOG(kInfo) << "replicator node " << options_.node_id << " started ("
                     << options_.peers.size() + 1 << "-node cluster, term "
                     << storage_->current_term() << ", log "
                     << storage_->last_index() << " entries, skipping "
                     << initial_applied_batches
                     << " already-applied batch commands)";
  return Status::OK();
}

void Replicator::Stop() {
  // Both the owner's Stop() and worker 0's graceful stop call this;
  // the lifecycle mutex makes the second caller a clean no-op.
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (!started_) return;
  {
    std::scoped_lock lock(mutex_, apply_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  apply_cv_.notify_all();
  if (driver_.joinable()) driver_.join();
  if (applier_.joinable()) applier_.join();
  for (PeerLink& link : links_) {
    if (link.fd >= 0) net::CloseFd(link.fd);
    link.fd = -1;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DropAllPendingLocked();
    inbox_.clear();
  }
  started_ = false;
}

Result<ReplicationPeer> Replicator::PeerOf(uint64_t node_id) const {
  for (const ReplicationPeer& peer : options_.peers) {
    if (peer.node_id == node_id) return peer;
  }
  return Status::NotFound("no peer with node id " + std::to_string(node_id));
}

uint64_t Replicator::PendingLoad() const {
  const uint64_t queued = queued_proposals_.load(std::memory_order_acquire);
  const uint64_t commit = commit_cache_.load(std::memory_order_acquire);
  const uint64_t applied = applied_index_.load(std::memory_order_acquire);
  const uint64_t unapplied = commit > applied ? commit - applied : 0;
  std::lock_guard<std::mutex> lock(mutex_);
  return queued + proposed_.size() + unapplied;
}

Status Replicator::ProposeBatch(const IngestRecord& record,
                                const AckToken& token) {
  if (!IsLeader()) return Status::FailedPrecondition("not the leader");
  ReplicatedCommand command;
  command.kind = CommandKind::kBatch;
  command.record = record;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (record.client_id != 0) {
      auto it = in_flight_.find({record.client_id, record.sequence});
      if (it != in_flight_.end()) {
        // A resend raced the original between propose and apply: one log
        // entry, two ACKs. This coalescing (not the dedup index, which only
        // learns about the batch at apply time) is what keeps the resend
        // from doubling the entry.
        it->second->tokens.push_back(token);
        return Status::OK();
      }
    }
    auto pending = std::make_shared<Pending>();
    pending->command = EncodeCommand(command);
    pending->tokens.push_back(token);
    pending->client_id = record.client_id;
    pending->sequence = record.sequence;
    pending->proposed_at = Clock::now();
    if (record.client_id != 0) {
      in_flight_.emplace(std::make_pair(record.client_id, record.sequence),
                         pending);
    }
    propose_queue_.push_back(std::move(pending));
    queued_proposals_.fetch_add(1, std::memory_order_acq_rel);
  }
  if (metric_proposals_ != nullptr) metric_proposals_->Inc();
  cv_.notify_all();
  return Status::OK();
}

Status Replicator::ProposeCommand(const ReplicatedCommand& command) {
  if (!IsLeader()) return Status::FailedPrecondition("not the leader");
  auto pending = std::make_shared<Pending>();
  pending->command = EncodeCommand(command);
  pending->proposed_at = Clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    propose_queue_.push_back(std::move(pending));
    queued_proposals_.fetch_add(1, std::memory_order_acq_rel);
  }
  if (metric_proposals_ != nullptr) metric_proposals_->Inc();
  cv_.notify_all();
  return Status::OK();
}

void Replicator::Deliver(const RaftMessage& message) {
  if (!failpoint::Check(options_.failpoint_scope + "repl.recv").ok()) {
    if (metric_messages_dropped_ != nullptr) {
      metric_messages_dropped_->Inc();
    }
    return;
  }
  if (metric_messages_in_ != nullptr) metric_messages_in_->Inc();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inbox_.push_back(message);
  }
  cv_.notify_all();
}

std::vector<DeadLetter> Replicator::ReplicatedDeadLetters() const {
  std::lock_guard<std::mutex> lock(dlq_mutex_);
  return replicated_dead_letters_;
}

void Replicator::DriverLoop() {
  const auto tick = std::chrono::milliseconds(options_.tick_millis);
  auto tick_deadline = Clock::now() + tick;
  RaftRole previous_role = node_->role();
  while (true) {
    std::vector<RaftMessage> inbox;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_until(lock, tick_deadline, [this] {
        return stop_.load(std::memory_order_acquire) || !inbox_.empty() ||
               !propose_queue_.empty();
      });
      if (stop_.load(std::memory_order_acquire)) return;
      inbox.swap(inbox_);
    }
    for (const RaftMessage& message : inbox) {
      Status status = node_->Step(message);
      if (!status.ok()) {
        FREEWAY_LOG(kWarning) << "raft step failed on node "
                              << options_.node_id << ": " << status.message();
      }
    }
    const auto now = Clock::now();
    if (now >= tick_deadline) {
      Status status = node_->Tick();
      if (!status.ok()) {
        FREEWAY_LOG(kWarning) << "raft tick failed on node "
                              << options_.node_id << ": " << status.message();
      }
      tick_deadline += tick;
      if (tick_deadline < now) tick_deadline = now + tick;
    }
    const RaftRole current_role = node_->role();
    if (previous_role == RaftRole::kLeader &&
        current_role != RaftRole::kLeader) {
      // Step-down: every un-ACKed proposal is now in doubt (a successor may
      // or may not commit it). Drop the tokens — the clients time out,
      // resend, and either the dedup index re-ACKs (it did commit) or the
      // new leader appends it fresh.
      std::lock_guard<std::mutex> lock(mutex_);
      DropAllPendingLocked();
    }
    previous_role = current_role;
    DrainProposals();
    std::vector<RaftEntry> committed = node_->TakeCommitted();
    if (!committed.empty()) {
      {
        std::lock_guard<std::mutex> lock(apply_mutex_);
        for (RaftEntry& entry : committed) {
          apply_queue_.push_back(std::move(entry));
        }
      }
      apply_cv_.notify_all();
    }
    ShipMessages();
    FlushLinks();
    PublishCaches();
  }
}

void Replicator::DrainProposals() {
  std::deque<std::shared_ptr<Pending>> queue;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue.swap(propose_queue_);
    queued_proposals_.store(0, std::memory_order_release);
  }
  if (queue.empty()) return;
  const bool leader = node_->role() == RaftRole::kLeader;
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::shared_ptr<Pending>& pending : queue) {
    if (!leader) {
      if (pending->client_id != 0) {
        in_flight_.erase({pending->client_id, pending->sequence});
      }
      continue;
    }
    Result<uint64_t> index = node_->Propose(pending->command);
    if (!index.ok()) {
      if (pending->client_id != 0) {
        in_flight_.erase({pending->client_id, pending->sequence});
      }
      continue;
    }
    proposed_.emplace(index.value(), std::move(pending));
  }
}

void Replicator::ShipMessages() {
  for (RaftMessage& message : node_->TakeMessages()) {
    if (!failpoint::Check(options_.failpoint_scope + "repl.send").ok()) {
      if (metric_messages_dropped_ != nullptr) {
        metric_messages_dropped_->Inc();
      }
      continue;
    }
    PeerLink* link = nullptr;
    for (PeerLink& candidate : links_) {
      if (candidate.peer.node_id == message.to) {
        link = &candidate;
        break;
      }
    }
    if (link == nullptr) continue;
    const std::vector<char> frame = EncodeRaftMessage(message);
    const size_t buffered = link->outbuf.size() - link->out_pos;
    if (buffered + frame.size() > options_.peer_outbuf_max_bytes) {
      // The peer is dead or drowning; raft retransmits on its own timers,
      // so dropping whole messages here costs latency, never correctness.
      if (metric_messages_dropped_ != nullptr) {
        metric_messages_dropped_->Inc();
      }
      continue;
    }
    link->outbuf.insert(link->outbuf.end(), frame.begin(), frame.end());
    if (metric_messages_out_ != nullptr) metric_messages_out_->Inc();
  }
}

void Replicator::FlushLinks() {
  const auto now = Clock::now();
  for (PeerLink& link : links_) {
    if (link.fd < 0) {
      if (now < link.next_attempt) continue;
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) {
        CloseLink(link, "socket");
        continue;
      }
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(link.peer.port);
      if (::inet_pton(AF_INET, link.peer.host.c_str(), &addr.sin_addr) != 1) {
        net::CloseFd(fd);
        CloseLink(link, "bad peer address");
        continue;
      }
      if (!net::SetNonBlocking(fd, true).ok()) {
        net::CloseFd(fd);
        CloseLink(link, "nonblocking");
        continue;
      }
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        link.fd = fd;
        link.connecting = false;
      } else if (errno == EINPROGRESS) {
        link.fd = fd;
        link.connecting = true;
      } else {
        net::CloseFd(fd);
        CloseLink(link, "connect");
        continue;
      }
    }
    if (link.connecting) {
      pollfd pfd{link.fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, 0);
      if (ready == 0) continue;  // still connecting
      int error = 0;
      socklen_t len = sizeof(error);
      if (ready < 0 ||
          ::getsockopt(link.fd, SOL_SOCKET, SO_ERROR, &error, &len) != 0 ||
          error != 0) {
        CloseLink(link, "connect");
        continue;
      }
      link.connecting = false;
      const int one = 1;
      ::setsockopt(link.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      // A fresh link means the peer may have missed everything buffered for
      // the old one; raft's timers re-drive whatever mattered.
      link.backoff_millis = options_.reconnect_min_millis;
    }
    while (link.out_pos < link.outbuf.size()) {
      const ssize_t n =
          ::send(link.fd, link.outbuf.data() + link.out_pos,
                 link.outbuf.size() - link.out_pos, MSG_NOSIGNAL);
      if (n > 0) {
        link.out_pos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      CloseLink(link, "send");
      break;
    }
    if (link.out_pos == link.outbuf.size() && link.out_pos > 0) {
      link.outbuf.clear();
      link.out_pos = 0;
    } else if (link.out_pos > (1u << 20)) {
      link.outbuf.erase(link.outbuf.begin(),
                        link.outbuf.begin() +
                            static_cast<std::ptrdiff_t>(link.out_pos));
      link.out_pos = 0;
    }
  }
}

void Replicator::CloseLink(PeerLink& link, const char* why) {
  if (link.fd >= 0) {
    FREEWAY_LOG(kDebug) << "peer link " << options_.node_id << "→"
                        << link.peer.node_id << " closed (" << why << ")";
    net::CloseFd(link.fd);
  }
  link.fd = -1;
  link.connecting = false;
  // Unflushed bytes are stale the moment the connection dies; the peer will
  // be re-driven by raft timers once the link returns.
  link.outbuf.clear();
  link.out_pos = 0;
  link.next_attempt =
      Clock::now() + std::chrono::milliseconds(link.backoff_millis);
  link.backoff_millis =
      std::min(options_.reconnect_max_millis, link.backoff_millis * 2);
  if (link.backoff_millis <= 0) {
    link.backoff_millis = options_.reconnect_min_millis;
  }
}

void Replicator::PublishCaches() {
  const RaftRole role = node_->role();
  role_cache_.store(static_cast<int>(role), std::memory_order_release);
  term_cache_.store(node_->term(), std::memory_order_release);
  leader_cache_.store(node_->leader_id(), std::memory_order_release);
  commit_cache_.store(node_->commit_index(), std::memory_order_release);
  elections_cache_.store(node_->elections_started(),
                         std::memory_order_release);
  if (metric_term_ != nullptr) {
    metric_term_->Set(static_cast<double>(node_->term()));
    metric_role_->Set(static_cast<double>(role));
    metric_commit_->Set(static_cast<double>(node_->commit_index()));
    const uint64_t applied = applied_index_.load(std::memory_order_acquire);
    metric_applied_->Set(static_cast<double>(applied));
    const uint64_t commit = node_->commit_index();
    metric_apply_lag_->Set(
        static_cast<double>(commit > applied ? commit - applied : 0));
    // Counters only move forward; re-sync from the node's own tally.
    const uint64_t elections = node_->elections_started();
    while (metric_elections_->Value() < static_cast<int64_t>(elections)) {
      metric_elections_->Inc();
    }
  }
}

void Replicator::DropAllPendingLocked() {
  propose_queue_.clear();
  proposed_.clear();
  in_flight_.clear();
  queued_proposals_.store(0, std::memory_order_release);
}

void Replicator::ApplierLoop() {
  const std::string apply_site = options_.failpoint_scope + "raft.apply";
  while (true) {
    RaftEntry entry;
    {
      std::unique_lock<std::mutex> lock(apply_mutex_);
      apply_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) || !apply_queue_.empty();
      });
      if (stop_.load(std::memory_order_acquire)) return;
      entry = std::move(apply_queue_.front());
      apply_queue_.pop_front();
    }
    // Chaos hook: an armed raft.apply stalls the applier (one nap per armed
    // hit), widening the window where an entry is committed cluster-wide
    // but not yet ACKed — the window failover tests need to hit.
    while (!failpoint::Check(apply_site).ok()) {
      if (stop_.load(std::memory_order_acquire)) return;
      std::this_thread::sleep_for(kApplyStallNap);
    }
    ReplicatedCommand command;
    Status decoded = DecodeCommand(entry.command, &command);
    if (!decoded.ok()) {
      // Unreachable for entries this cluster encoded; a failure here means
      // the log is corrupt beyond what CRCs caught. Loudly skip — stopping
      // the applier would wedge the whole node.
      FREEWAY_LOG(kError) << "undecodable committed entry " << entry.index
                          << ": " << decoded.message();
    } else {
      bool skip = false;
      if (command.kind == CommandKind::kBatch) {
        ++batches_seen_;
        // Crash-recovery replay: the first `initial_applied_batches_` batch
        // commands already reached this node's IngestLog before the
        // restart (last_lsn() counted them), so re-applying would double
        // every batch. Skipping by ordinal is exact because apply order is
        // the log order and replicated mode never writes reverts.
        skip = batches_seen_ <= initial_applied_batches_;
      }
      if (!skip && command.kind != CommandKind::kNoop) {
        if (command.kind == CommandKind::kDeadLetter) {
          std::lock_guard<std::mutex> lock(dlq_mutex_);
          replicated_dead_letters_.push_back(command.dead_letter);
        }
        apply_(command);
      }
    }
    applied_index_.store(entry.index, std::memory_order_release);
    if (metric_applied_entries_ != nullptr) {
      metric_applied_entries_->Inc();
    }
    std::vector<AckToken> tokens;
    Clock::time_point proposed_at{};
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = proposed_.find(entry.index);
      if (it != proposed_.end()) {
        tokens = std::move(it->second->tokens);
        proposed_at = it->second->proposed_at;
        if (it->second->client_id != 0) {
          in_flight_.erase({it->second->client_id, it->second->sequence});
        }
        proposed_.erase(it);
      }
    }
    if (!tokens.empty() && metric_commit_seconds_ != nullptr) {
      metric_commit_seconds_->Observe(
          std::chrono::duration<double>(Clock::now() - proposed_at).count());
    }
    for (const AckToken& token : tokens) {
      ack_(token);
    }
  }
}

}  // namespace freeway
