#ifndef FREEWAYML_REPLICATION_RAFT_H_
#define FREEWAYML_REPLICATION_RAFT_H_

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace freeway {

/// One replicated log entry. `index` is 1-based and dense; `term` is the
/// leader term that created the entry. `command` is opaque to the consensus
/// core (the replicator encodes ingest batches, dead letters, and truncate
/// marks into it); an empty command is the no-op barrier a fresh leader
/// appends to commit entries from prior terms.
struct RaftEntry {
  uint64_t index = 0;
  uint64_t term = 0;
  std::vector<char> command;
};

enum class RaftMessageType : uint8_t {
  kVoteRequest = 0,
  kVoteResponse = 1,
  kAppendEntries = 2,
  kAppendResponse = 3,
};

/// A consensus message between two nodes. One struct covers all four types
/// (unused fields stay zero) so the transport and the wire codec stay
/// simple; `type` says which fields are meaningful.
struct RaftMessage {
  RaftMessageType type = RaftMessageType::kVoteRequest;
  uint64_t from = 0;
  uint64_t to = 0;
  uint64_t term = 0;

  /// kVoteRequest: candidate's log position (the up-to-date check).
  uint64_t last_log_index = 0;
  uint64_t last_log_term = 0;

  /// kVoteResponse.
  bool vote_granted = false;

  /// kAppendEntries: log-matching anchor, piggybacked commit index, and the
  /// entries themselves (empty for a pure heartbeat).
  uint64_t prev_log_index = 0;
  uint64_t prev_log_term = 0;
  uint64_t leader_commit = 0;
  std::vector<RaftEntry> entries;

  /// kAppendResponse: on success `match_index` is the follower's highest
  /// index known to match the leader; on failure `conflict_index` is the
  /// follower's hint of where to rewind next_index (first index of the
  /// conflicting term, or last_index+1 when the follower's log is short),
  /// which backtracks a whole term per round trip instead of one entry.
  bool success = false;
  uint64_t match_index = 0;
  uint64_t conflict_index = 0;
};

const char* RaftMessageTypeName(RaftMessageType type);

enum class RaftRole : uint8_t { kFollower = 0, kCandidate = 1, kLeader = 2 };

const char* RaftRoleName(RaftRole role);

/// Persistent raft state: current term, the vote cast in it, and the log.
///
/// This base class keeps everything in memory (tests use it directly as a
/// volatile store); `DurableRaftStorage` overrides the Persist* hooks to
/// write through to disk. The in-memory copy is always the source of truth
/// for reads — the hooks only have to make the same data survive a restart.
/// RaftNode calls SetHardState *before* handing out any message that the
/// new term/vote made possible, preserving the raft durability contract.
///
/// Node ids are nonzero; voted_for == 0 means "no vote cast this term".
class RaftStorage {
 public:
  virtual ~RaftStorage() = default;

  uint64_t current_term() const { return term_; }
  uint64_t voted_for() const { return voted_for_; }

  /// Updates term/vote and persists them (hook). Failpoint (durable
  /// subclass): "<scope>raft.persist".
  Status SetHardState(uint64_t term, uint64_t voted_for);

  /// Index of the last entry; 0 when the log is empty.
  uint64_t last_index() const {
    return entries_.empty() ? 0 : entries_.back().index;
  }
  /// Term of the entry at `index`; 0 for index 0 (the sentinel before the
  /// log) and for indexes past the end.
  uint64_t TermAt(uint64_t index) const;
  /// Entry at `index` (1-based; must be in [1, last_index()]).
  const RaftEntry& At(uint64_t index) const;
  /// Copies entries [from, from+max_count) clamped to the log's end.
  std::vector<RaftEntry> EntriesFrom(uint64_t from, size_t max_count) const;

  /// Appends entries (must continue the log densely) and persists them.
  Status Append(const std::vector<RaftEntry>& entries);
  /// Drops every entry with index >= from_index and persists the cut.
  Status TruncateSuffix(uint64_t from_index);

 protected:
  virtual Status PersistHardState() { return Status::OK(); }
  virtual Status PersistAppend(const RaftEntry& entry) {
    (void)entry;
    return Status::OK();
  }
  virtual Status PersistTruncateSuffix(uint64_t from_index) {
    (void)from_index;
    return Status::OK();
  }

  uint64_t term_ = 0;
  uint64_t voted_for_ = 0;
  /// entries_[i] holds index i+1; the vector is always dense from index 1.
  std::vector<RaftEntry> entries_;
};

/// Configuration of one consensus node.
struct RaftConfig {
  /// This node's id (nonzero).
  uint64_t node_id = 0;
  /// The other members' ids (excluding node_id). Empty means a single-node
  /// cluster, which elects itself and commits immediately.
  std::vector<uint64_t> peer_ids;
  /// Election timeout, in ticks, randomized uniformly per timeout reset in
  /// [min, max] — randomization is what breaks split-vote livelock.
  int election_timeout_min_ticks = 10;
  int election_timeout_max_ticks = 20;
  /// Leader heartbeat cadence in ticks; must be well under the election
  /// minimum or healthy followers start spurious elections.
  int heartbeat_ticks = 3;
  /// Max entries shipped per AppendEntries, bounding frame sizes while a
  /// lagging follower catches up.
  size_t max_entries_per_append = 64;
  /// Seed for the election-timeout randomization (deterministic tests).
  uint64_t seed = 0;
  /// Prefix for FailPoint site names ("n0." makes sites "n0.raft.append"
  /// etc.), letting in-process multi-node tests target one node even though
  /// the FailPoint registry is process-global.
  std::string failpoint_scope;
};

/// Deterministic single-threaded raft consensus core (etcd-raft shape):
/// the owner drives logical time with Tick(), feeds inbound messages to
/// Step(), proposes commands with Propose(), and after each of those drains
/// TakeMessages() (to send) and TakeCommitted() (to apply). The core does
/// no I/O of its own beyond the storage persistence hooks, so it is
/// unit-testable as a pure state machine and transport-agnostic.
///
/// Correctness notes (the parts of raft that are easy to get wrong):
///  - term/vote are persisted via storage *before* the message they enable
///    leaves the outbox;
///  - a new leader appends a no-op entry for its term so prior-term entries
///    commit through the current-term-majority rule (§5.4.2);
///  - commit index only advances over entries of the current term;
///  - AppendEntries conflicts return a first-index-of-conflicting-term hint
///    so the leader rewinds a term at a time.
///
/// FailPoint sites (all prefixed with config.failpoint_scope):
///   raft.append — erroring drops an outbound AppendEntries on the floor;
///   raft.vote   — erroring drops an inbound VoteRequest (the node goes
///                 deaf to elections, simulating a partitioned voter).
class RaftNode {
 public:
  /// `storage` must outlive the node and already be loaded (for the durable
  /// subclass: Open() called). The node adopts its term/vote/log as the
  /// restart state.
  RaftNode(RaftConfig config, RaftStorage* storage);

  /// Advances logical time by one tick: followers/candidates count toward
  /// an election timeout, the leader toward its next heartbeat round.
  Status Tick();

  /// Processes one inbound message.
  Status Step(const RaftMessage& msg);

  /// Appends `command` to the replicated log (leader only) and returns its
  /// index. FailedPrecondition when this node is not the leader.
  Result<uint64_t> Propose(std::vector<char> command);

  /// Drains the outbox of messages to transmit.
  std::vector<RaftMessage> TakeMessages();

  /// Drains newly committed entries, in index order, each exactly once.
  std::vector<RaftEntry> TakeCommitted();

  RaftRole role() const { return role_; }
  uint64_t term() const { return storage_->current_term(); }
  uint64_t node_id() const { return config_.node_id; }
  uint64_t commit_index() const { return commit_index_; }
  /// The current leader as far as this node knows; 0 when unknown (e.g.
  /// mid-election). A leader reports itself.
  uint64_t leader_id() const { return leader_id_; }
  uint64_t last_log_index() const { return storage_->last_index(); }

  /// Number of elections this node has started (observability).
  uint64_t elections_started() const { return elections_started_; }

 private:
  size_t ClusterSize() const { return config_.peer_ids.size() + 1; }
  size_t Majority() const { return ClusterSize() / 2 + 1; }

  void ResetElectionTimer();
  Status BecomeFollower(uint64_t term, uint64_t leader);
  Status StartElection();
  Status BecomeLeader();
  void BroadcastAppends();
  void SendAppend(uint64_t peer);
  void MaybeAdvanceCommit();
  void DeliverCommitted();
  Status HandleVoteRequest(const RaftMessage& msg);
  Status HandleVoteResponse(const RaftMessage& msg);
  Status HandleAppendEntries(const RaftMessage& msg);
  Status HandleAppendResponse(const RaftMessage& msg);
  void Emit(RaftMessage msg);

  RaftConfig config_;
  RaftStorage* storage_;
  Rng rng_;

  RaftRole role_ = RaftRole::kFollower;
  uint64_t leader_id_ = 0;
  uint64_t commit_index_ = 0;
  /// Last commit handed out through TakeCommitted().
  uint64_t delivered_index_ = 0;

  int election_elapsed_ = 0;
  int election_timeout_ = 0;
  int heartbeat_elapsed_ = 0;

  std::set<uint64_t> votes_granted_;
  /// Leader bookkeeping, keyed by peer id.
  std::unordered_map<uint64_t, uint64_t> next_index_;
  std::unordered_map<uint64_t, uint64_t> match_index_;

  std::vector<RaftMessage> outbox_;
  std::vector<RaftEntry> committed_out_;
  uint64_t elections_started_ = 0;
};

}  // namespace freeway

#endif  // FREEWAYML_REPLICATION_RAFT_H_
