#include "replication/raft.h"

#include <algorithm>

#include "common/logging.h"
#include "fault/failpoint.h"

namespace freeway {

const char* RaftMessageTypeName(RaftMessageType type) {
  switch (type) {
    case RaftMessageType::kVoteRequest:
      return "VOTE_REQUEST";
    case RaftMessageType::kVoteResponse:
      return "VOTE_RESPONSE";
    case RaftMessageType::kAppendEntries:
      return "APPEND_ENTRIES";
    case RaftMessageType::kAppendResponse:
      return "APPEND_RESPONSE";
  }
  return "UNKNOWN";
}

const char* RaftRoleName(RaftRole role) {
  switch (role) {
    case RaftRole::kFollower:
      return "follower";
    case RaftRole::kCandidate:
      return "candidate";
    case RaftRole::kLeader:
      return "leader";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// RaftStorage (in-memory base)

Status RaftStorage::SetHardState(uint64_t term, uint64_t voted_for) {
  term_ = term;
  voted_for_ = voted_for;
  return PersistHardState();
}

uint64_t RaftStorage::TermAt(uint64_t index) const {
  if (index == 0 || index > entries_.size()) return 0;
  return entries_[index - 1].term;
}

const RaftEntry& RaftStorage::At(uint64_t index) const {
  FREEWAY_DCHECK(index >= 1 && index <= entries_.size())
      << "raft log index " << index << " out of range (last "
      << entries_.size() << ")";
  return entries_[index - 1];
}

std::vector<RaftEntry> RaftStorage::EntriesFrom(uint64_t from,
                                                size_t max_count) const {
  std::vector<RaftEntry> out;
  if (from == 0) from = 1;
  for (uint64_t i = from; i <= last_index() && out.size() < max_count; ++i) {
    out.push_back(entries_[i - 1]);
  }
  return out;
}

Status RaftStorage::Append(const std::vector<RaftEntry>& entries) {
  for (const RaftEntry& e : entries) {
    if (e.index != last_index() + 1) {
      return Status::InvalidArgument("raft log append not dense: index " +
                                     std::to_string(e.index) + " after " +
                                     std::to_string(last_index()));
    }
    entries_.push_back(e);
    Status st = PersistAppend(e);
    if (!st.ok()) {
      entries_.pop_back();
      return st;
    }
  }
  return Status::OK();
}

Status RaftStorage::TruncateSuffix(uint64_t from_index) {
  if (from_index > last_index()) return Status::OK();
  if (from_index == 0) from_index = 1;
  RETURN_IF_ERROR(PersistTruncateSuffix(from_index));
  entries_.resize(from_index - 1);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// RaftNode

RaftNode::RaftNode(RaftConfig config, RaftStorage* storage)
    : config_(std::move(config)),
      storage_(storage),
      rng_(config_.seed ^ (config_.node_id * 0x9E3779B97F4A7C15ull)) {
  FREEWAY_DCHECK(config_.node_id != 0) << "raft node id must be nonzero";
  FREEWAY_DCHECK(config_.election_timeout_min_ticks >= 2)
      << "election timeout too short";
  FREEWAY_DCHECK(config_.election_timeout_max_ticks >=
                 config_.election_timeout_min_ticks)
      << "election timeout range inverted";
  ResetElectionTimer();
}

void RaftNode::ResetElectionTimer() {
  election_elapsed_ = 0;
  int span = config_.election_timeout_max_ticks -
             config_.election_timeout_min_ticks + 1;
  election_timeout_ = config_.election_timeout_min_ticks +
                      static_cast<int>(rng_.NextBelow(
                          static_cast<uint64_t>(span)));
}

void RaftNode::Emit(RaftMessage msg) {
  msg.from = config_.node_id;
  msg.term = storage_->current_term();
  if (msg.type == RaftMessageType::kAppendEntries) {
    Status fp = failpoint::Check(config_.failpoint_scope + "raft.append");
    if (!fp.ok()) return;  // chaos: the append vanishes in the network
  }
  outbox_.push_back(std::move(msg));
}

Status RaftNode::Tick() {
  if (role_ == RaftRole::kLeader) {
    if (++heartbeat_elapsed_ >= config_.heartbeat_ticks) {
      heartbeat_elapsed_ = 0;
      BroadcastAppends();
    }
    return Status::OK();
  }
  if (++election_elapsed_ >= election_timeout_) {
    return StartElection();
  }
  return Status::OK();
}

Status RaftNode::BecomeFollower(uint64_t term, uint64_t leader) {
  if (term > storage_->current_term()) {
    RETURN_IF_ERROR(storage_->SetHardState(term, 0));
  }
  role_ = RaftRole::kFollower;
  leader_id_ = leader;
  votes_granted_.clear();
  ResetElectionTimer();
  return Status::OK();
}

Status RaftNode::StartElection() {
  // New term, vote for self — persisted before any VoteRequest leaves.
  RETURN_IF_ERROR(
      storage_->SetHardState(storage_->current_term() + 1, config_.node_id));
  role_ = RaftRole::kCandidate;
  leader_id_ = 0;
  ++elections_started_;
  votes_granted_.clear();
  votes_granted_.insert(config_.node_id);
  ResetElectionTimer();
  if (votes_granted_.size() >= Majority()) {
    return BecomeLeader();  // single-node cluster
  }
  for (uint64_t peer : config_.peer_ids) {
    RaftMessage msg;
    msg.type = RaftMessageType::kVoteRequest;
    msg.to = peer;
    msg.last_log_index = storage_->last_index();
    msg.last_log_term = storage_->TermAt(storage_->last_index());
    Emit(std::move(msg));
  }
  return Status::OK();
}

Status RaftNode::BecomeLeader() {
  role_ = RaftRole::kLeader;
  leader_id_ = config_.node_id;
  heartbeat_elapsed_ = 0;
  next_index_.clear();
  match_index_.clear();
  for (uint64_t peer : config_.peer_ids) {
    next_index_[peer] = storage_->last_index() + 1;
    match_index_[peer] = 0;
  }
  FREEWAY_LOG(kInfo) << "raft node " << config_.node_id
                     << " elected leader for term "
                     << storage_->current_term();
  // No-op barrier entry: committing it (current term, majority) commits
  // everything before it, including entries from prior terms that the
  // commit rule alone could never advance over.
  RaftEntry noop;
  noop.index = storage_->last_index() + 1;
  noop.term = storage_->current_term();
  RETURN_IF_ERROR(storage_->Append({noop}));
  MaybeAdvanceCommit();  // single-node: commit immediately
  BroadcastAppends();
  return Status::OK();
}

void RaftNode::BroadcastAppends() {
  for (uint64_t peer : config_.peer_ids) SendAppend(peer);
}

void RaftNode::SendAppend(uint64_t peer) {
  uint64_t next = next_index_.count(peer) ? next_index_[peer] : 1;
  if (next == 0) next = 1;
  RaftMessage msg;
  msg.type = RaftMessageType::kAppendEntries;
  msg.to = peer;
  msg.prev_log_index = next - 1;
  msg.prev_log_term = storage_->TermAt(next - 1);
  msg.leader_commit = commit_index_;
  msg.entries = storage_->EntriesFrom(next, config_.max_entries_per_append);
  Emit(std::move(msg));
}

Result<uint64_t> RaftNode::Propose(std::vector<char> command) {
  if (role_ != RaftRole::kLeader) {
    return Status::FailedPrecondition("not the raft leader");
  }
  RaftEntry entry;
  entry.index = storage_->last_index() + 1;
  entry.term = storage_->current_term();
  entry.command = std::move(command);
  uint64_t index = entry.index;
  RETURN_IF_ERROR(storage_->Append({std::move(entry)}));
  MaybeAdvanceCommit();  // single-node cluster commits on append
  BroadcastAppends();
  heartbeat_elapsed_ = 0;  // the broadcast doubles as a heartbeat
  return index;
}

Status RaftNode::Step(const RaftMessage& msg) {
  // A higher term always demotes; the message is then handled in it.
  if (msg.term > storage_->current_term()) {
    uint64_t leader =
        msg.type == RaftMessageType::kAppendEntries ? msg.from : 0;
    RETURN_IF_ERROR(BecomeFollower(msg.term, leader));
  }
  switch (msg.type) {
    case RaftMessageType::kVoteRequest:
      return HandleVoteRequest(msg);
    case RaftMessageType::kVoteResponse:
      return HandleVoteResponse(msg);
    case RaftMessageType::kAppendEntries:
      return HandleAppendEntries(msg);
    case RaftMessageType::kAppendResponse:
      return HandleAppendResponse(msg);
  }
  return Status::InvalidArgument("unknown raft message type");
}

Status RaftNode::HandleVoteRequest(const RaftMessage& msg) {
  Status fp = failpoint::Check(config_.failpoint_scope + "raft.vote");
  if (!fp.ok()) return Status::OK();  // chaos: deaf to this election

  RaftMessage reply;
  reply.type = RaftMessageType::kVoteResponse;
  reply.to = msg.from;
  reply.vote_granted = false;

  if (msg.term < storage_->current_term()) {
    Emit(std::move(reply));
    return Status::OK();
  }
  // Election restriction (§5.4.1): only grant to candidates whose log is at
  // least as up to date as ours.
  uint64_t our_last = storage_->last_index();
  uint64_t our_last_term = storage_->TermAt(our_last);
  bool up_to_date =
      msg.last_log_term > our_last_term ||
      (msg.last_log_term == our_last_term && msg.last_log_index >= our_last);
  bool can_vote =
      storage_->voted_for() == 0 || storage_->voted_for() == msg.from;
  if (up_to_date && can_vote) {
    // Persist the vote before the response can leave this node.
    RETURN_IF_ERROR(
        storage_->SetHardState(storage_->current_term(), msg.from));
    reply.vote_granted = true;
    ResetElectionTimer();
  }
  Emit(std::move(reply));
  return Status::OK();
}

Status RaftNode::HandleVoteResponse(const RaftMessage& msg) {
  if (role_ != RaftRole::kCandidate || msg.term < storage_->current_term()) {
    return Status::OK();
  }
  if (msg.vote_granted) {
    votes_granted_.insert(msg.from);
    if (votes_granted_.size() >= Majority()) {
      return BecomeLeader();
    }
  }
  return Status::OK();
}

Status RaftNode::HandleAppendEntries(const RaftMessage& msg) {
  RaftMessage reply;
  reply.type = RaftMessageType::kAppendResponse;
  reply.to = msg.from;
  reply.success = false;

  if (msg.term < storage_->current_term()) {
    reply.conflict_index = 0;  // stale leader: term alone explains it
    Emit(std::move(reply));
    return Status::OK();
  }
  // Equal term: the sender is the legitimate leader. A candidate in the
  // same term steps down.
  RETURN_IF_ERROR(BecomeFollower(storage_->current_term(), msg.from));

  if (msg.prev_log_index > storage_->last_index()) {
    // Log too short: ask the leader to rewind to just past our end.
    reply.conflict_index = storage_->last_index() + 1;
    Emit(std::move(reply));
    return Status::OK();
  }
  if (msg.prev_log_index > 0 &&
      storage_->TermAt(msg.prev_log_index) != msg.prev_log_term) {
    // Conflicting term at the anchor: hint its first index so the leader
    // skips the whole term in one step.
    uint64_t conflict_term = storage_->TermAt(msg.prev_log_index);
    uint64_t first = msg.prev_log_index;
    while (first > 1 && storage_->TermAt(first - 1) == conflict_term) {
      --first;
    }
    reply.conflict_index = first;
    Emit(std::move(reply));
    return Status::OK();
  }

  // Anchor matches. Append entries, truncating on the first divergence.
  // Entries we already hold with the same term are skipped (duplicate or
  // reordered AppendEntries must be idempotent).
  uint64_t last_new = msg.prev_log_index;
  for (const RaftEntry& e : msg.entries) {
    if (e.index <= storage_->last_index()) {
      if (storage_->TermAt(e.index) == e.term) {
        last_new = e.index;
        continue;
      }
      // Divergence: a committed entry can never diverge (Log Matching +
      // Leader Completeness), so the cut is always above commit_index_.
      RETURN_IF_ERROR(storage_->TruncateSuffix(e.index));
    }
    RETURN_IF_ERROR(storage_->Append({e}));
    last_new = e.index;
  }
  if (msg.leader_commit > commit_index_) {
    commit_index_ = std::min(msg.leader_commit, last_new);
    DeliverCommitted();
  }
  reply.success = true;
  reply.match_index = last_new;
  Emit(std::move(reply));
  return Status::OK();
}

Status RaftNode::HandleAppendResponse(const RaftMessage& msg) {
  if (role_ != RaftRole::kLeader || msg.term < storage_->current_term()) {
    return Status::OK();
  }
  if (msg.success) {
    uint64_t& match = match_index_[msg.from];
    if (msg.match_index > match) match = msg.match_index;
    next_index_[msg.from] = match + 1;
    MaybeAdvanceCommit();
    // Keep shipping if the follower is still behind.
    if (next_index_[msg.from] <= storage_->last_index()) {
      SendAppend(msg.from);
    }
    return Status::OK();
  }
  // Rejected: rewind using the follower's hint and retry immediately.
  uint64_t next = next_index_.count(msg.from) ? next_index_[msg.from] : 1;
  uint64_t rewound = next > 1 ? next - 1 : 1;
  if (msg.conflict_index > 0) {
    rewound = std::min(rewound, msg.conflict_index);
  }
  next_index_[msg.from] = std::max<uint64_t>(1, rewound);
  SendAppend(msg.from);
  return Status::OK();
}

void RaftNode::MaybeAdvanceCommit() {
  if (role_ != RaftRole::kLeader) return;
  for (uint64_t n = storage_->last_index(); n > commit_index_; --n) {
    // Only entries of the current term commit by counting (§5.4.2).
    if (storage_->TermAt(n) != storage_->current_term()) break;
    size_t count = 1;  // self
    for (const auto& [peer, match] : match_index_) {
      if (match >= n) ++count;
    }
    if (count >= Majority()) {
      commit_index_ = n;
      DeliverCommitted();
      break;
    }
  }
}

void RaftNode::DeliverCommitted() {
  while (delivered_index_ < commit_index_) {
    ++delivered_index_;
    committed_out_.push_back(storage_->At(delivered_index_));
  }
}

std::vector<RaftMessage> RaftNode::TakeMessages() {
  std::vector<RaftMessage> out;
  out.swap(outbox_);
  return out;
}

std::vector<RaftEntry> RaftNode::TakeCommitted() {
  std::vector<RaftEntry> out;
  out.swap(committed_out_);
  return out;
}

}  // namespace freeway
