#include "replication/raft_storage.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/logging.h"
#include "fault/failpoint.h"
#include "stream/batch_codec.h"

namespace freeway {

namespace fs = std::filesystem;

namespace {

constexpr uint32_t kStateMagic = 0x53525746;  // 'FWRS'
constexpr uint32_t kLogMagic = 0x4C525746;    // 'FWRL'
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kLogHeaderBytes = 8;
constexpr size_t kRecordHeaderBytes = 8;
/// An entry payload above this is corruption, not data — matches the wire
/// protocol's frame bound, since every command arrived in one frame.
constexpr uint32_t kMaxEntryPayload = 64u << 20;

/// Entry payload section tag.
constexpr uint32_t kTagEntry = 0x544E4552;  // 'RENT'

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

class ScopedFd {
 public:
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() {
    if (fd_ >= 0) ::close(fd_);
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_;
};

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("raft: write failed for", path));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FsyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    return Status::IoError(ErrnoMessage("raft: fsync failed for", path));
  }
  return Status::OK();
}

Status FsyncPath(const std::string& path) {
  ScopedFd fd(::open(path.c_str(), O_RDONLY));
  if (fd.get() < 0) {
    return Status::IoError(ErrnoMessage("raft: open for fsync", path));
  }
  return FsyncFd(fd.get(), path);
}

void AppendU32(std::vector<char>* out, uint32_t v) {
  out->insert(out->end(), reinterpret_cast<const char*>(&v),
              reinterpret_cast<const char*>(&v) + sizeof(v));
}

void AppendU64(std::vector<char>* out, uint64_t v) {
  out->insert(out->end(), reinterpret_cast<const char*>(&v),
              reinterpret_cast<const char*>(&v) + sizeof(v));
}

std::vector<char> EncodeEntryPayload(const RaftEntry& entry) {
  SnapshotWriter writer;
  writer.WriteSection(kTagEntry);
  writer.WriteU64(entry.index);
  writer.WriteU64(entry.term);
  writer.WriteBlob(entry.command);
  return writer.Take();
}

Status DecodeEntryPayload(const char* data, size_t size, RaftEntry* entry) {
  SnapshotReader reader(std::span<const char>(data, size));
  RETURN_IF_ERROR(reader.ExpectSection(kTagEntry));
  RETURN_IF_ERROR(reader.ReadU64(&entry->index));
  RETURN_IF_ERROR(reader.ReadU64(&entry->term));
  RETURN_IF_ERROR(reader.ReadBlob(&entry->command));
  return reader.ExpectEnd();
}

}  // namespace

DurableRaftStorage::DurableRaftStorage(DurableRaftStorageOptions options)
    : options_(std::move(options)) {}

DurableRaftStorage::~DurableRaftStorage() {
  if (log_fd_ >= 0) ::close(log_fd_);
}

Status DurableRaftStorage::Open() {
  if (opened_) {
    return Status::FailedPrecondition("raft storage already opened");
  }
  if (options_.directory.empty()) {
    return Status::InvalidArgument("raft storage directory not set");
  }
  std::error_code ec;
  fs::create_directories(options_.directory, ec);
  if (ec) {
    return Status::IoError("raft: cannot create directory " +
                           options_.directory + ": " + ec.message());
  }
  RETURN_IF_ERROR(LoadHardState());
  RETURN_IF_ERROR(LoadLog());
  opened_ = true;
  return Status::OK();
}

Status DurableRaftStorage::LoadHardState() {
  const std::string path =
      (fs::path(options_.directory) / "raft-state.dat").string();
  ScopedFd fd(::open(path.c_str(), O_RDONLY));
  if (fd.get() < 0) {
    if (errno == ENOENT) {
      term_ = 0;
      voted_for_ = 0;
      return Status::OK();  // fresh node
    }
    return Status::IoError(ErrnoMessage("raft: open state", path));
  }
  char buf[28];
  ssize_t n = ::read(fd.get(), buf, sizeof(buf));
  if (n != static_cast<ssize_t>(sizeof(buf))) {
    return Status::IoError("raft: state file " + path + " truncated (" +
                           std::to_string(n) + " bytes)");
  }
  uint32_t magic, version, crc;
  uint64_t term, voted_for;
  std::memcpy(&magic, buf, 4);
  std::memcpy(&version, buf + 4, 4);
  std::memcpy(&term, buf + 8, 8);
  std::memcpy(&voted_for, buf + 16, 8);
  std::memcpy(&crc, buf + 24, 4);
  if (magic != kStateMagic) {
    return Status::IoError("raft: state file " + path + " bad magic");
  }
  if (version != kFormatVersion) {
    return Status::IoError("raft: state file " + path +
                           " unsupported version " + std::to_string(version));
  }
  if (crc != Crc32(buf + 8, 16)) {
    return Status::IoError("raft: state file " + path + " CRC mismatch");
  }
  term_ = term;
  voted_for_ = voted_for;
  return Status::OK();
}

Status DurableRaftStorage::PersistHardState() {
  RETURN_IF_ERROR(
      failpoint::Check(options_.failpoint_scope + "raft.persist"));
  const fs::path final_path = fs::path(options_.directory) / "raft-state.dat";
  const fs::path tmp_path = fs::path(options_.directory) / "raft-state.tmp";
  std::vector<char> buf;
  buf.reserve(28);
  AppendU32(&buf, kStateMagic);
  AppendU32(&buf, kFormatVersion);
  AppendU64(&buf, term_);
  AppendU64(&buf, voted_for_);
  AppendU32(&buf, Crc32(buf.data() + 8, 16));
  {
    ScopedFd fd(::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644));
    if (fd.get() < 0) {
      return Status::IoError(
          ErrnoMessage("raft: create state tmp", tmp_path.string()));
    }
    RETURN_IF_ERROR(
        WriteAll(fd.get(), buf.data(), buf.size(), tmp_path.string()));
    if (options_.fsync) {
      RETURN_IF_ERROR(FsyncFd(fd.get(), tmp_path.string()));
    }
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::IoError("raft: rename state to " + final_path.string() +
                           ": " + ec.message());
  }
  if (options_.fsync) {
    RETURN_IF_ERROR(FsyncPath(options_.directory));
  }
  return Status::OK();
}

Status DurableRaftStorage::LoadLog() {
  const std::string path =
      (fs::path(options_.directory) / "raft-log.dat").string();
  ScopedFd fd(::open(path.c_str(), O_RDWR | O_CREAT, 0644));
  if (fd.get() < 0) {
    return Status::IoError(ErrnoMessage("raft: open log", path));
  }
  std::error_code ec;
  const uint64_t file_size = fs::file_size(path, ec);
  if (ec) {
    return Status::IoError("raft: stat log " + path + ": " + ec.message());
  }
  entries_.clear();
  entry_offsets_.clear();

  if (file_size == 0) {
    // Fresh log: write the header.
    std::vector<char> header;
    AppendU32(&header, kLogMagic);
    AppendU32(&header, kFormatVersion);
    RETURN_IF_ERROR(WriteAll(fd.get(), header.data(), header.size(), path));
    if (options_.fsync) RETURN_IF_ERROR(FsyncFd(fd.get(), path));
    entry_offsets_.push_back(kLogHeaderBytes);
    log_fd_ = fd.Release();
    return Status::OK();
  }
  if (file_size < kLogHeaderBytes) {
    return Status::IoError("raft: log " + path + " shorter than its header");
  }
  std::vector<char> bytes(file_size);
  size_t got = 0;
  while (got < bytes.size()) {
    ssize_t n = ::read(fd.get(), bytes.data() + got, bytes.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("raft: read log", path));
    }
    if (n == 0) break;
    got += static_cast<size_t>(n);
  }
  if (got != bytes.size()) {
    return Status::IoError("raft: short read of log " + path);
  }
  uint32_t magic, version;
  std::memcpy(&magic, bytes.data(), 4);
  std::memcpy(&version, bytes.data() + 4, 4);
  if (magic != kLogMagic) {
    return Status::IoError("raft: log " + path + " bad magic");
  }
  if (version != kFormatVersion) {
    return Status::IoError("raft: log " + path + " unsupported version " +
                           std::to_string(version));
  }
  // Scan records; the first invalid one is a torn tail — truncate there.
  size_t offset = kLogHeaderBytes;
  entry_offsets_.push_back(offset);
  while (offset + kRecordHeaderBytes <= bytes.size()) {
    uint32_t payload_size, crc;
    std::memcpy(&payload_size, bytes.data() + offset, 4);
    std::memcpy(&crc, bytes.data() + offset + 4, 4);
    if (payload_size == 0 || payload_size > kMaxEntryPayload ||
        offset + kRecordHeaderBytes + payload_size > bytes.size()) {
      break;  // torn
    }
    const char* payload = bytes.data() + offset + kRecordHeaderBytes;
    if (Crc32(payload, payload_size) != crc) break;  // torn
    RaftEntry entry;
    Status parsed = DecodeEntryPayload(payload, payload_size, &entry);
    if (!parsed.ok()) break;  // torn
    if (entry.index != entries_.size() + 1) {
      return Status::IoError("raft: log " + path + " entry index " +
                             std::to_string(entry.index) +
                             " breaks density at position " +
                             std::to_string(entries_.size() + 1));
    }
    entries_.push_back(std::move(entry));
    offset += kRecordHeaderBytes + payload_size;
    entry_offsets_.push_back(offset);
  }
  if (offset < file_size) {
    torn_bytes_truncated_ = file_size - offset;
    FREEWAY_LOG(kWarning) << "raft: truncating torn log tail of "
                          << torn_bytes_truncated_ << " bytes in " << path;
    if (::ftruncate(fd.get(), static_cast<off_t>(offset)) != 0) {
      return Status::IoError(ErrnoMessage("raft: truncate torn tail", path));
    }
  }
  if (::lseek(fd.get(), static_cast<off_t>(offset), SEEK_SET) < 0) {
    return Status::IoError(ErrnoMessage("raft: seek log", path));
  }
  log_fd_ = fd.Release();
  return Status::OK();
}

Status DurableRaftStorage::PersistAppend(const RaftEntry& entry) {
  RETURN_IF_ERROR(
      failpoint::Check(options_.failpoint_scope + "raft.persist"));
  const std::string path =
      (fs::path(options_.directory) / "raft-log.dat").string();
  std::vector<char> payload = EncodeEntryPayload(entry);
  std::vector<char> record;
  record.reserve(kRecordHeaderBytes + payload.size());
  AppendU32(&record, static_cast<uint32_t>(payload.size()));
  AppendU32(&record, Crc32(payload.data(), payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());
  RETURN_IF_ERROR(WriteAll(log_fd_, record.data(), record.size(), path));
  if (options_.fsync) RETURN_IF_ERROR(FsyncFd(log_fd_, path));
  entry_offsets_.push_back(entry_offsets_.back() + record.size());
  return Status::OK();
}

Status DurableRaftStorage::PersistTruncateSuffix(uint64_t from_index) {
  RETURN_IF_ERROR(
      failpoint::Check(options_.failpoint_scope + "raft.persist"));
  const std::string path =
      (fs::path(options_.directory) / "raft-log.dat").string();
  FREEWAY_DCHECK(from_index >= 1 && from_index <= entry_offsets_.size())
      << "raft truncate index " << from_index << " out of range";
  const uint64_t offset = entry_offsets_[from_index - 1];
  if (::ftruncate(log_fd_, static_cast<off_t>(offset)) != 0) {
    return Status::IoError(ErrnoMessage("raft: truncate log", path));
  }
  if (::lseek(log_fd_, static_cast<off_t>(offset), SEEK_SET) < 0) {
    return Status::IoError(ErrnoMessage("raft: seek log", path));
  }
  if (options_.fsync) RETURN_IF_ERROR(FsyncFd(log_fd_, path));
  entry_offsets_.resize(from_index);
  return Status::OK();
}

}  // namespace freeway
