#ifndef FREEWAYML_REPLICATION_REPLICATOR_H_
#define FREEWAYML_REPLICATION_REPLICATOR_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "replication/command.h"
#include "replication/raft.h"
#include "replication/raft_storage.h"

namespace freeway {

/// One cluster member's client/peer-facing endpoint. Peers talk raft to
/// each other on the same port clients submit on (the StreamServer
/// transport multiplexes by frame type).
struct ReplicationPeer {
  uint64_t node_id = 0;
  std::string host;
  uint16_t port = 0;
};

/// Configuration of a replicated server node.
struct ReplicationOptions {
  /// Master switch. Off: the server is the single-node PR-8 configuration.
  bool enabled = false;
  /// This node's id (nonzero, unique in the cluster).
  uint64_t node_id = 0;
  /// The *other* members. Empty is a single-node replicated cluster
  /// (useful for benchmarks: same code path, no quorum latency).
  std::vector<ReplicationPeer> peers;
  /// Directory for raft-state.dat / raft-log.dat. Required.
  std::string data_dir;
  /// Logical tick width of the consensus driver thread.
  int tick_millis = 15;
  /// Election timeout in ticks, randomized per reset in [min, max]; with
  /// 15 ms ticks the default is 150–300 ms — an eternity next to loopback
  /// heartbeats, tight enough that failover lands well under a second.
  int election_timeout_min_ticks = 10;
  int election_timeout_max_ticks = 20;
  int heartbeat_ticks = 3;
  size_t max_entries_per_append = 64;
  /// fsync raft hard state + log appends (see DurableRaftStorageOptions).
  bool fsync = false;
  /// Admission gate: a SUBMIT is answered OVERLOAD when the propose→apply
  /// backlog (uncommitted proposals + committed-but-unapplied entries)
  /// exceeds this, so a slow disk or follower turns into backpressure at
  /// the edge instead of an unbounded queue.
  uint64_t max_apply_lag = 256;
  /// Cap on bytes buffered toward one peer; whole messages are dropped
  /// beyond it (raft retransmits by design, so drops cost latency, never
  /// correctness).
  size_t peer_outbuf_max_bytes = 8u << 20;
  /// Reconnect backoff to a dead peer.
  int reconnect_min_millis = 20;
  int reconnect_max_millis = 500;
  /// Seed for election-timeout randomization.
  uint64_t seed = 0;
  /// FailPoint site prefix, e.g. "n1." (the registry is process-global and
  /// chaos tests run whole clusters in one process). Sites:
  ///   <scope>raft.append   drop outbound AppendEntries (partition out)
  ///   <scope>raft.vote     ignore inbound VoteRequests (deaf voter)
  ///   <scope>raft.persist  fail hard-state/log persistence
  ///   <scope>raft.apply    stall the applier (one sleep per armed hit)
  ///   <scope>repl.send     drop any outbound peer message
  ///   <scope>repl.recv     drop any inbound peer message
  /// Arming repl.send + repl.recv together is a full partition of the node.
  std::string failpoint_scope;
  /// Observability sink for the `freeway_raft_*` family. Null disables.
  MetricsRegistry* metrics = nullptr;
};

/// Bridges the pure RaftNode to the serving stack: a driver thread owns
/// consensus (ticks, inbound steps, proposals, peer sockets) and an applier
/// thread feeds committed entries to the server's state machine. The
/// server interacts through thread-safe edges only:
///
///   Deliver()       reactor workers hand in decoded raft frames;
///   ProposeBatch()  workers submit admitted batches for replication,
///                   carrying an AckToken so the deferred ACK can find its
///                   connection after the entry commits AND applies;
///   apply callback  runs on the applier thread for every committed entry,
///                   in commit order, identically on leader and followers —
///                   determinism here is what makes the per-node ingest
///                   logs bit-identical;
///   ack callback    runs on the applier thread after apply, once per
///                   token registered for the entry (leader only).
///
/// ACK ordering contract: ProposeBatch never ACKs; the ack callback fires
/// only after the entry is (a) majority-replicated and (b) applied locally
/// (ingest-logged + watermark-advanced + runtime-enqueued). A client that
/// saw an ACK can therefore survive the death of any minority of nodes
/// without the batch existing anywhere less durable than a quorum of logs.
///
/// Outgoing messages to each peer ride one persistent connection this node
/// dials (responses included — the response to a message received on an
/// inbound connection goes out over this node's own outbound link, so
/// inbound frames never need reply routing). Links reconnect with backoff
/// and drop whole messages when their buffer caps out; raft's retry
/// machinery absorbs both.
///
/// Restart exactly-once: commands are re-applied from the raft log after a
/// crash, so the applier skips the first `initial_applied_batches` kBatch
/// commands (the server passes its recovered IngestLog `last_lsn()`, which
/// in replicated operation counts exactly the batch applies that already
/// reached the log). Dead-letter and truncate commands re-apply; both are
/// harmless to repeat.
class Replicator {
 public:
  /// Everything the applier needs to route a deferred ACK back out through
  /// the owning reactor worker once the batch's entry applies.
  struct AckToken {
    size_t worker_index = 0;
    uint64_t conn_id = 0;
    uint64_t stream_id = 0;
    int64_t batch_index = 0;
    uint64_t client_id = 0;
    uint64_t sequence = 0;
  };

  using ApplyFn = std::function<void(const ReplicatedCommand& command)>;
  using AckFn = std::function<void(const AckToken& token)>;

  Replicator(ReplicationOptions options, ApplyFn apply, AckFn ack);
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Opens durable state and starts the driver + applier threads.
  /// `initial_applied_batches`: kBatch commands already applied before this
  /// process started (the recovered IngestLog last_lsn()); that many are
  /// skipped during raft-log re-apply.
  Status Start(uint64_t initial_applied_batches);

  /// Stops both threads and closes peer links. Pending (unapplied) tokens
  /// are dropped — their clients resend and the dedup layer absorbs it.
  void Stop();

  /// Thread-safe view of consensus state (updated by the driver loop).
  bool IsLeader() const {
    return role_cache_.load(std::memory_order_acquire) ==
           static_cast<int>(RaftRole::kLeader);
  }
  RaftRole role() const {
    return static_cast<RaftRole>(role_cache_.load(std::memory_order_acquire));
  }
  uint64_t term() const { return term_cache_.load(std::memory_order_acquire); }
  uint64_t leader_id() const {
    return leader_cache_.load(std::memory_order_acquire);
  }
  uint64_t commit_index() const {
    return commit_cache_.load(std::memory_order_acquire);
  }
  uint64_t applied_index() const {
    return applied_index_.load(std::memory_order_acquire);
  }

  /// The endpoint of `node_id` from the peer table (NotFound when absent —
  /// e.g. the id is this node or the leader is unknown).
  Result<ReplicationPeer> PeerOf(uint64_t node_id) const;

  /// Propose→apply backlog, for the admission gate.
  uint64_t PendingLoad() const;

  /// Queues one admitted batch for replication (workers, any thread).
  /// Returns FailedPrecondition when this node is not the leader. A batch
  /// whose (client_id, sequence) is already in flight is NOT proposed
  /// again — the token joins the existing proposal's ack list, which is
  /// what keeps a resend that lands between propose and commit from
  /// entering the log twice.
  Status ProposeBatch(const IngestRecord& record, const AckToken& token);

  /// Queues a non-batch command (dead letters, truncate marks). Leader
  /// only; no ack token.
  Status ProposeCommand(const ReplicatedCommand& command);

  /// Hands in one decoded inbound raft frame (reactor workers).
  void Deliver(const RaftMessage& message);

  /// Cluster-wide dead letters applied so far (kDeadLetter commands), on
  /// leader and followers alike.
  std::vector<DeadLetter> ReplicatedDeadLetters() const;

  uint64_t elections_started() const {
    return elections_cache_.load(std::memory_order_acquire);
  }

 private:
  /// One proposal waiting to be handed to RaftNode (queued) or waiting for
  /// commit+apply (indexed).
  struct Pending {
    std::vector<char> command;
    std::vector<AckToken> tokens;
    uint64_t client_id = 0;
    uint64_t sequence = 0;
    std::chrono::steady_clock::time_point proposed_at;
  };

  /// Outgoing link to one peer (driver thread only).
  struct PeerLink {
    ReplicationPeer peer;
    int fd = -1;
    bool connecting = false;
    std::vector<char> outbuf;
    size_t out_pos = 0;
    std::chrono::steady_clock::time_point next_attempt{};
    int backoff_millis = 0;
  };

  void DriverLoop();
  void ApplierLoop();
  /// Moves queued proposals into RaftNode (leader) or drops them (not).
  void DrainProposals();
  /// Encodes node outbox messages onto peer links.
  void ShipMessages();
  /// Non-blocking connect/write maintenance of every link.
  void FlushLinks();
  void CloseLink(PeerLink& link, const char* why);
  void PublishCaches();
  void DropAllPendingLocked();

  ReplicationOptions options_;
  ApplyFn apply_;
  AckFn ack_;

  std::unique_ptr<DurableRaftStorage> storage_;
  std::unique_ptr<RaftNode> node_;  // driver thread only (after Start)
  std::vector<PeerLink> links_;     // driver thread only

  /// Shared edge: inbox, propose queue, pending tables.
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<RaftMessage> inbox_;
  std::deque<std::shared_ptr<Pending>> propose_queue_;
  /// raft index → proposal awaiting apply (leader bookkeeping).
  std::unordered_map<uint64_t, std::shared_ptr<Pending>> proposed_;
  /// (client_id, sequence) → in-flight proposal, for resend coalescing.
  std::map<std::pair<uint64_t, uint64_t>, std::shared_ptr<Pending>>
      in_flight_;

  /// Applier edge.
  std::mutex apply_mutex_;
  std::condition_variable apply_cv_;
  std::deque<RaftEntry> apply_queue_;

  /// Cluster-wide dead-letter view (kDeadLetter applies).
  mutable std::mutex dlq_mutex_;
  std::vector<DeadLetter> replicated_dead_letters_;

  std::thread driver_;
  std::thread applier_;
  std::atomic<bool> stop_{false};
  std::mutex lifecycle_mutex_;  ///< Serializes Start/Stop (Stop races Stop).
  bool started_ = false;

  /// Lock-free state mirrors for the serving hot path.
  std::atomic<int> role_cache_{static_cast<int>(RaftRole::kFollower)};
  std::atomic<uint64_t> term_cache_{0};
  std::atomic<uint64_t> leader_cache_{0};
  std::atomic<uint64_t> commit_cache_{0};
  std::atomic<uint64_t> elections_cache_{0};
  std::atomic<uint64_t> applied_index_{0};
  std::atomic<uint64_t> queued_proposals_{0};
  uint64_t initial_applied_batches_ = 0;
  uint64_t batches_seen_ = 0;  // applier thread only

  /// freeway_raft_* handles; null while options_.metrics is null.
  Gauge* metric_term_ = nullptr;
  Gauge* metric_role_ = nullptr;
  Gauge* metric_commit_ = nullptr;
  Gauge* metric_applied_ = nullptr;
  Gauge* metric_apply_lag_ = nullptr;
  Counter* metric_elections_ = nullptr;
  Counter* metric_proposals_ = nullptr;
  Counter* metric_applied_entries_ = nullptr;
  Counter* metric_messages_out_ = nullptr;
  Counter* metric_messages_in_ = nullptr;
  Counter* metric_messages_dropped_ = nullptr;
  Histogram* metric_commit_seconds_ = nullptr;
  Histogram* metric_propose_seconds_ = nullptr;
};

}  // namespace freeway

#endif  // FREEWAYML_REPLICATION_REPLICATOR_H_
