#ifndef FREEWAYML_REPLICATION_COMMAND_H_
#define FREEWAYML_REPLICATION_COMMAND_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ingest/ingest_log.h"
#include "runtime/stream_runtime.h"

namespace freeway {

/// What one replicated log entry means to the state machine.
enum class CommandKind : uint8_t {
  /// Leader barrier entry (empty command bytes decode to this); applies as
  /// a no-op.
  kNoop = 0,
  /// One admitted SUBMIT: the applier appends it to the local IngestLog,
  /// advances the DedupIndex, and enqueues it into the runtime — on every
  /// node, in commit order, so the per-node ingest logs are bit-identical
  /// by construction.
  kBatch = 1,
  /// A quarantined batch harvested from the leader's runtime, so the
  /// dead-letter queue survives the leader. Applies into the replicator's
  /// cluster-wide DLQ view.
  kDeadLetter = 2,
  /// Checkpoint-coverage announcement: every node may rotate + truncate its
  /// IngestLog up to min(lsn, its own locally covered LSN).
  kTruncateMark = 3,
};

const char* CommandKindName(CommandKind kind);

/// Decoded replicated command (tagged union; only the fields of `kind` are
/// meaningful).
struct ReplicatedCommand {
  CommandKind kind = CommandKind::kNoop;
  /// kBatch. `record.lsn` is ignored — each node's IngestLog stamps its
  /// own LSN at apply, and commit order makes them identical everywhere.
  IngestRecord record;
  /// kDeadLetter.
  DeadLetter dead_letter;
  /// kTruncateMark.
  uint64_t truncate_lsn = 0;
};

/// Encodes a command into raft entry bytes. kNoop encodes to empty.
std::vector<char> EncodeCommand(const ReplicatedCommand& command);

/// Decodes raft entry bytes (empty -> kNoop).
Status DecodeCommand(const std::vector<char>& bytes,
                     ReplicatedCommand* command);

}  // namespace freeway

#endif  // FREEWAYML_REPLICATION_COMMAND_H_
