#ifndef FREEWAYML_REPLICATION_RAFT_STORAGE_H_
#define FREEWAYML_REPLICATION_RAFT_STORAGE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "replication/raft.h"

namespace freeway {

/// Configuration of the on-disk raft state.
struct DurableRaftStorageOptions {
  /// Directory holding `raft-state.dat` and `raft-log.dat` (created on
  /// first use). Each cluster node needs its own directory.
  std::string directory;
  /// fsync hard-state and log writes. Off matches the ingest-log default
  /// posture (survives process crashes, not power loss).
  bool fsync = false;
  /// FailPoint site prefix; the persistence site is "<scope>raft.persist".
  std::string failpoint_scope;
};

/// RaftStorage that writes through to disk.
///
/// Hard state (`raft-state.dat`) uses the checkpoint-store tmp+rename
/// idiom: the 28-byte CRC-checked file is rewritten atomically on every
/// term/vote change, so a crash mid-write leaves the previous state intact
/// and the node can never come back having forgotten a vote it handed out.
///
/// The log (`raft-log.dat`) is append-only with CRC-checked records:
///
///   u32 magic 'FWRL' | u32 format version                (header)
///   u32 payload size | u32 payload CRC-32 | payload      (per entry)
///
/// Open() validates records in order; the first bad record is treated as a
/// torn tail (the process died mid-append) and the file is truncated back
/// to the last good entry — exactly the ingest-log recovery contract.
/// TruncateSuffix ftruncates at the entry's recorded byte offset, which is
/// how a follower discards uncommitted entries that conflict with a new
/// leader. The log keeps its full prefix (no compaction): a rejoining
/// follower can always be caught up from index 1, at the cost of disk
/// proportional to total committed traffic. Compaction via learner
/// snapshots is an explicit non-goal of this revision (see DESIGN.md).
///
/// Not internally synchronized: RaftNode drives it from one thread (the
/// replicator's driver thread).
class DurableRaftStorage : public RaftStorage {
 public:
  explicit DurableRaftStorage(DurableRaftStorageOptions options);
  ~DurableRaftStorage() override;

  DurableRaftStorage(const DurableRaftStorage&) = delete;
  DurableRaftStorage& operator=(const DurableRaftStorage&) = delete;

  /// Recovers hard state and log from `directory`, truncating a torn log
  /// tail. Must be called once before the storage is handed to a RaftNode.
  Status Open();

  /// Bytes cut from a torn tail by Open() (observability/tests).
  uint64_t torn_bytes_truncated() const { return torn_bytes_truncated_; }

 protected:
  Status PersistHardState() override;
  Status PersistAppend(const RaftEntry& entry) override;
  Status PersistTruncateSuffix(uint64_t from_index) override;

 private:
  Status LoadHardState();
  Status LoadLog();

  DurableRaftStorageOptions options_;
  bool opened_ = false;
  int log_fd_ = -1;
  /// Byte offset where entry `i+1` starts in raft-log.dat; the next append
  /// goes at entry_offsets_.back() (always size()+1 elements once open).
  std::vector<uint64_t> entry_offsets_;
  uint64_t torn_bytes_truncated_ = 0;
};

}  // namespace freeway

#endif  // FREEWAYML_REPLICATION_RAFT_STORAGE_H_
