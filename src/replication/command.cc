#include "replication/command.h"

#include "stream/batch_codec.h"

namespace freeway {

namespace {

/// Section tags per command kind.
constexpr uint32_t kTagBatchCommand = 0x54414252;     // 'RBAT'
constexpr uint32_t kTagDeadLetterCommand = 0x514C4452;  // 'RDLQ'
constexpr uint32_t kTagTruncateCommand = 0x43525452;  // 'RTRC'

}  // namespace

const char* CommandKindName(CommandKind kind) {
  switch (kind) {
    case CommandKind::kNoop:
      return "NOOP";
    case CommandKind::kBatch:
      return "BATCH";
    case CommandKind::kDeadLetter:
      return "DEAD_LETTER";
    case CommandKind::kTruncateMark:
      return "TRUNCATE_MARK";
  }
  return "UNKNOWN";
}

std::vector<char> EncodeCommand(const ReplicatedCommand& command) {
  SnapshotWriter writer;
  switch (command.kind) {
    case CommandKind::kNoop:
      return {};
    case CommandKind::kBatch: {
      writer.WriteSection(kTagBatchCommand);
      writer.WriteU64(command.record.client_id);
      writer.WriteU64(command.record.sequence);
      writer.WriteU64(command.record.stream_id);
      writer.WriteU32(command.record.tenant_id);
      writer.WriteU32(command.record.priority);
      writer.WriteBatch(command.record.batch);
      break;
    }
    case CommandKind::kDeadLetter: {
      writer.WriteSection(kTagDeadLetterCommand);
      writer.WriteU64(command.dead_letter.stream_id);
      writer.WriteU64(command.dead_letter.shard);
      writer.WriteU64(command.dead_letter.attempts);
      writer.WriteU32(static_cast<uint32_t>(command.dead_letter.error.code()));
      writer.WriteString(command.dead_letter.error.message());
      writer.WriteBatch(command.dead_letter.batch);
      break;
    }
    case CommandKind::kTruncateMark: {
      writer.WriteSection(kTagTruncateCommand);
      writer.WriteU64(command.truncate_lsn);
      break;
    }
  }
  return writer.Take();
}

Status DecodeCommand(const std::vector<char>& bytes,
                     ReplicatedCommand* command) {
  *command = ReplicatedCommand{};
  if (bytes.empty()) {
    command->kind = CommandKind::kNoop;
    return Status::OK();
  }
  SnapshotReader reader(std::span<const char>(bytes.data(), bytes.size()));
  uint32_t tag = 0;
  RETURN_IF_ERROR(reader.ReadU32(&tag));
  uint32_t version = 0;
  RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != 1) {
    return Status::InvalidArgument("replicated command: unsupported version " +
                                   std::to_string(version));
  }
  switch (tag) {
    case kTagBatchCommand: {
      command->kind = CommandKind::kBatch;
      RETURN_IF_ERROR(reader.ReadU64(&command->record.client_id));
      RETURN_IF_ERROR(reader.ReadU64(&command->record.sequence));
      RETURN_IF_ERROR(reader.ReadU64(&command->record.stream_id));
      RETURN_IF_ERROR(reader.ReadU32(&command->record.tenant_id));
      uint32_t priority = 0;
      RETURN_IF_ERROR(reader.ReadU32(&priority));
      command->record.priority = static_cast<uint8_t>(priority);
      RETURN_IF_ERROR(reader.ReadBatch(&command->record.batch));
      break;
    }
    case kTagDeadLetterCommand: {
      command->kind = CommandKind::kDeadLetter;
      RETURN_IF_ERROR(reader.ReadU64(&command->dead_letter.stream_id));
      uint64_t shard = 0, attempts = 0;
      RETURN_IF_ERROR(reader.ReadU64(&shard));
      RETURN_IF_ERROR(reader.ReadU64(&attempts));
      command->dead_letter.shard = static_cast<size_t>(shard);
      command->dead_letter.attempts = static_cast<size_t>(attempts);
      uint32_t code = 0;
      std::string message;
      RETURN_IF_ERROR(reader.ReadU32(&code));
      RETURN_IF_ERROR(reader.ReadString(&message));
      if (code != 0) {
        command->dead_letter.error =
            Status(static_cast<StatusCode>(code), std::move(message));
      }
      RETURN_IF_ERROR(reader.ReadBatch(&command->dead_letter.batch));
      break;
    }
    case kTagTruncateCommand: {
      command->kind = CommandKind::kTruncateMark;
      RETURN_IF_ERROR(reader.ReadU64(&command->truncate_lsn));
      break;
    }
    default:
      return Status::InvalidArgument("replicated command: unknown tag");
  }
  return reader.ExpectEnd();
}

}  // namespace freeway
