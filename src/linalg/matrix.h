#ifndef FREEWAYML_LINALG_MATRIX_H_
#define FREEWAYML_LINALG_MATRIX_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace freeway {

/// Dense row-major matrix of doubles. This is the numeric workhorse for the
/// ML substrate: small models (LR / MLP / CNN) trained with mini-batch SGD,
/// PCA projections, and k-means all run on it. The API intentionally stays
/// minimal — contiguous storage, explicit shapes, and a handful of BLAS-like
/// kernels — rather than an expression-template library.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Zero-initialized matrix of the given shape.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Adopts `data` (row-major, size must equal rows*cols).
  static Result<Matrix> FromData(size_t rows, size_t cols,
                                 std::vector<double> data);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Mutable / const view of row `r` (length cols()).
  std::span<double> Row(size_t r) {
    return std::span<double>(data_.data() + r * cols_, cols_);
  }
  std::span<const double> Row(size_t r) const {
    return std::span<const double>(data_.data() + r * cols_, cols_);
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Copies row `r` into a fresh vector.
  std::vector<double> RowVector(size_t r) const;

  /// Sets row `r` from `values` (length must equal cols()).
  void SetRow(size_t r, std::span<const double> values);

  /// Elementwise in-place operations.
  void Fill(double value);
  void AddInPlace(const Matrix& other);
  void SubInPlace(const Matrix& other);
  void ScaleInPlace(double factor);
  /// this += factor * other (axpy).
  void Axpy(double factor, const Matrix& other);

  /// Returns this * other. Shapes must agree (cols() == other.rows()).
  Matrix MatMul(const Matrix& other) const;

  /// Returns transpose(this) * other — avoids materializing the transpose.
  Matrix TransposeMatMul(const Matrix& other) const;

  /// Returns this * transpose(other).
  Matrix MatMulTranspose(const Matrix& other) const;

  Matrix Transposed() const;

  /// Column-wise mean (length cols()).
  std::vector<double> ColumnMean() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Sum of all entries.
  double Sum() const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// "RxC" shape rendering for assertion/error messages.
  std::string ShapeString() const {
    return std::to_string(rows_) + "x" + std::to_string(cols_);
  }

  /// True when every entry is finite (no NaN / infinity). Input validation
  /// for streaming data of unknown quality.
  bool AllFinite() const;

  /// Compact debug rendering (rows truncated for large matrices).
  std::string ToString(size_t max_rows = 6) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Vector helpers used across the library; a "vector" is std::vector<double>.
namespace vec {

double Dot(std::span<const double> a, std::span<const double> b);
double Norm(std::span<const double> a);
/// Euclidean distance between two equal-length vectors.
double EuclideanDistance(std::span<const double> a, std::span<const double> b);
/// Squared Euclidean distance (no sqrt).
double SquaredDistance(std::span<const double> a, std::span<const double> b);
/// a += factor * b.
void Axpy(double factor, std::span<const double> b, std::span<double> a);
std::vector<double> Add(std::span<const double> a, std::span<const double> b);
std::vector<double> Sub(std::span<const double> a, std::span<const double> b);
std::vector<double> Scale(std::span<const double> a, double factor);

}  // namespace vec

/// Gaussian (RBF) kernel K(d, sigma) = exp(-d^2 / (2 sigma^2)); used by the
/// multi-granularity ensemble (Eq. 14 in the paper). sigma <= 0 degenerates
/// to an indicator on d == 0.
double GaussianKernel(double distance, double sigma);

}  // namespace freeway

#endif  // FREEWAYML_LINALG_MATRIX_H_
