#ifndef FREEWAYML_LINALG_EIGEN_H_
#define FREEWAYML_LINALG_EIGEN_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace freeway {

/// Eigendecomposition of a real symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues sorted in descending order.
  std::vector<double> values;
  /// Column j of `vectors` is the unit eigenvector for values[j].
  Matrix vectors;
};

/// Computes the full eigendecomposition of a symmetric matrix with the cyclic
/// Jacobi rotation method. Jacobi is exact (to round-off), unconditionally
/// stable on symmetric input, and entirely adequate for the small covariance
/// matrices PCA sees here (feature dimensions of tens).
///
/// Fails with InvalidArgument if `symmetric` is not square or deviates from
/// symmetry by more than a small tolerance.
Result<EigenDecomposition> SymmetricEigen(const Matrix& symmetric,
                                          int max_sweeps = 64,
                                          double tolerance = 1e-12);

}  // namespace freeway

#endif  // FREEWAYML_LINALG_EIGEN_H_
