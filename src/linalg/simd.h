#ifndef FREEWAYML_LINALG_SIMD_H_
#define FREEWAYML_LINALG_SIMD_H_

#include <cstddef>
#include <string>

namespace freeway {
namespace simd {

/// Runtime-dispatched SIMD microkernels behind the dense hot paths (MatMul
/// panel accumulation, dot products, k-means squared distance). One
/// dispatch target is selected at first use and cached for the process:
///
///  - kAvx2: AVX2 + FMA vector kernels (8 doubles in flight per loop
///    iteration, fused multiply-add accumulators).
///  - kScalar: portable kernels whose floating-point operation order is
///    exactly the pre-SIMD code's, so `FREEWAY_SIMD=off` reproduces the
///    historical bit patterns.
///
/// Selection: the FREEWAY_SIMD environment variable ("off"/"scalar" forces
/// kScalar, "avx2"/"on" requests AVX2, unset auto-detects) intersected with
/// what the CPU actually supports — requesting AVX2 on a machine without it
/// logs a warning and falls back to scalar.
///
/// Determinism contract: every kernel here is branch-deterministic and
/// threading-free, so for a *fixed* dispatch target results are bit-exact
/// regardless of caller thread count (the PR-1 contract). Across targets
/// results differ within a small tolerance: the AVX2 kernels fuse
/// multiply-adds (no intermediate rounding of the product) and the
/// reduction kernels (Dot / SquaredDistance) split the accumulation across
/// vector lanes, which reassociates the sum. tests/test_simd.cc pins the
/// scalar↔AVX2 tolerance; DESIGN.md "SIMD dispatch" documents the policy.
enum class DispatchTarget {
  kScalar,
  kAvx2,
};

/// The target all kernels currently dispatch to (resolving it on first
/// call). Thread-safe.
DispatchTarget ActiveTarget();

/// "scalar" / "avx2".
const char* TargetName(DispatchTarget target);

/// True when this CPU can run the AVX2+FMA kernels.
bool Avx2Supported();

/// Test hook: force a specific target (kAvx2 silently degrades to kScalar
/// when unsupported; returns the target actually installed). Not for
/// production use — callers must ensure no kernel is concurrently in
/// flight, and the choice is process-global.
DispatchTarget ForceTarget(DispatchTarget target);

/// out[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j] for j in [0, n).
/// The 4-row GEMM panel accumulator behind MatMul / TransposeMatMul. Per
/// output element the four adds stay in ascending row order; the AVX2
/// version vectorizes across j and fuses each multiply-add.
void AccumPanel4(double* out, const double* b0, const double* b1,
                 const double* b2, const double* b3, double a0, double a1,
                 double a2, double a3, size_t n);

/// out[j] += a * b[j] for j in [0, n). Panel-tail / zero-skip companion of
/// AccumPanel4; callers keep the a == 0 skip so 0 * inf never contributes.
void AxpyRow(double* out, const double* b, double a, size_t n);

/// Ascending-index dot product (single accumulator in scalar mode, 4
/// vector accumulators in AVX2 mode).
double Dot(const double* a, const double* b, size_t n);

/// Squared Euclidean distance between two length-n vectors.
double SquaredDistance(const double* a, const double* b, size_t n);

/// Index of the row of `centroids` (k rows of length dim, row-major)
/// nearest to `point` in squared Euclidean distance; ties break to the
/// lowest index in both targets. The k-means assignment kernel. When
/// `best_d2` is non-null it receives the winning squared distance.
int NearestCentroid(const double* point, const double* centroids, size_t k,
                    size_t dim, double* best_d2 = nullptr);

/// Batch form of NearestCentroid: out[i] = index of the centroid nearest to
/// row i of `points` (n rows of length dim, row-major), for i in [0, n).
/// Dispatch is resolved once per call and the per-point scan is inlined
/// inside the kernel, so per-point overhead is zero — this is the kernel
/// the parallel assignment passes call per chunk. `points`, `centroids`
/// and `out` must not overlap.
void NearestCentroids(const double* points, size_t n, const double* centroids,
                      size_t k, size_t dim, int* out);

}  // namespace simd
}  // namespace freeway

#endif  // FREEWAYML_LINALG_SIMD_H_
