#include "linalg/pca.h"

#include <cmath>

#include "linalg/eigen.h"

namespace freeway {

Status Pca::Fit(const Matrix& samples, size_t num_components) {
  const size_t n = samples.rows();
  const size_t dim = samples.cols();
  if (n < 2) {
    return Status::InvalidArgument("Pca::Fit requires at least 2 samples");
  }
  if (num_components == 0 || num_components > dim) {
    return Status::InvalidArgument("Pca::Fit: invalid num_components");
  }

  mean_ = samples.ColumnMean();

  // Covariance Sigma = (1/n) sum (x - mu)(x - mu)^T  (Eq. 3).
  Matrix centered(n, dim);
  for (size_t i = 0; i < n; ++i) {
    auto row = samples.Row(i);
    auto out = centered.Row(i);
    for (size_t j = 0; j < dim; ++j) out[j] = row[j] - mean_[j];
  }
  Matrix cov = centered.TransposeMatMul(centered);
  cov.ScaleInPlace(1.0 / static_cast<double>(n));

  ASSIGN_OR_RETURN(EigenDecomposition eig, SymmetricEigen(cov));

  components_ = Matrix(dim, num_components);
  for (size_t j = 0; j < num_components; ++j) {
    for (size_t i = 0; i < dim; ++i) {
      components_.At(i, j) = eig.vectors.At(i, j);
    }
  }

  double total = 0.0;
  double kept = 0.0;
  for (size_t j = 0; j < eig.values.size(); ++j) {
    const double v = eig.values[j] > 0.0 ? eig.values[j] : 0.0;
    total += v;
    if (j < num_components) kept += v;
  }
  explained_ratio_ = total > 0.0 ? kept / total : 0.0;

  fitted_ = true;
  return Status::OK();
}

Status Pca::SetState(std::vector<double> mean, Matrix components,
                     double explained_ratio, bool fitted) {
  if (fitted) {
    if (mean.empty() || components.rows() != mean.size() ||
        components.cols() == 0 || components.cols() > mean.size()) {
      return Status::InvalidArgument(
          "Pca::SetState: component shape inconsistent with mean");
    }
  }
  mean_ = std::move(mean);
  components_ = std::move(components);
  explained_ratio_ = explained_ratio;
  fitted_ = fitted;
  return Status::OK();
}

Result<std::vector<double>> Pca::Transform(
    std::span<const double> point) const {
  if (!fitted_) return Status::FailedPrecondition("Pca not fitted");
  if (point.size() != mean_.size()) {
    return Status::InvalidArgument("Pca::Transform: dimension mismatch");
  }
  const size_t d = components_.cols();
  std::vector<double> out(d, 0.0);
  for (size_t i = 0; i < mean_.size(); ++i) {
    const double centered = point[i] - mean_[i];
    if (centered == 0.0) continue;
    for (size_t j = 0; j < d; ++j) {
      out[j] += centered * components_.At(i, j);
    }
  }
  return out;
}

Result<Matrix> Pca::TransformBatch(const Matrix& batch) const {
  if (!fitted_) return Status::FailedPrecondition("Pca not fitted");
  if (batch.cols() != mean_.size()) {
    return Status::InvalidArgument("Pca::TransformBatch: dimension mismatch");
  }
  Matrix out(batch.rows(), components_.cols());
  for (size_t r = 0; r < batch.rows(); ++r) {
    ASSIGN_OR_RETURN(std::vector<double> proj,
                             Transform(batch.Row(r)));
    out.SetRow(r, proj);
  }
  return out;
}

Result<std::vector<double>> Pca::TransformBatchMean(
    const Matrix& batch) const {
  if (batch.rows() == 0) {
    return Status::InvalidArgument("TransformBatchMean: empty batch");
  }
  return Transform(batch.ColumnMean());
}

}  // namespace freeway
