#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace freeway {

Result<EigenDecomposition> SymmetricEigen(const Matrix& symmetric,
                                          int max_sweeps, double tolerance) {
  const size_t n = symmetric.rows();
  if (n != symmetric.cols()) {
    return Status::InvalidArgument("SymmetricEigen: matrix is not square");
  }
  // Verify symmetry relative to the matrix scale.
  double scale = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      scale = std::max(scale, std::fabs(symmetric.At(i, j)));
    }
  }
  const double sym_tol = 1e-8 * std::max(scale, 1.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (std::fabs(symmetric.At(i, j) - symmetric.At(j, i)) > sym_tol) {
        return Status::InvalidArgument("SymmetricEigen: matrix not symmetric");
      }
    }
  }

  Matrix a = symmetric;  // Working copy; off-diagonals are annihilated.
  Matrix v = Matrix::Identity(n);

  auto off_diagonal_norm = [&a, n]() {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) acc += a.At(i, j) * a.At(i, j);
    }
    return std::sqrt(acc);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tolerance * std::max(scale, 1e-300)) break;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a.At(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a.At(p, p);
        const double aqq = a.At(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Smaller-magnitude root of t^2 + 2*theta*t - 1 = 0 for stability.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the rotation J(p,q,theta) from both sides: A <- J^T A J.
        for (size_t k = 0; k < n; ++k) {
          const double akp = a.At(k, p);
          const double akq = a.At(k, q);
          a.At(k, p) = c * akp - s * akq;
          a.At(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a.At(p, k);
          const double aqk = a.At(q, k);
          a.At(p, k) = c * apk - s * aqk;
          a.At(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors: V <- V J.
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v.At(k, p);
          const double vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Collect and sort by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = a.At(i, i);
  std::sort(order.begin(), order.end(),
            [&diag](size_t x, size_t y) { return diag[x] > diag[y]; });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    out.values[j] = diag[order[j]];
    for (size_t i = 0; i < n; ++i) out.vectors.At(i, j) = v.At(i, order[j]);
  }
  return out;
}

}  // namespace freeway
