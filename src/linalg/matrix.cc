#include "linalg/matrix.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "common/strings.h"

namespace freeway {

Result<Matrix> Matrix::FromData(size_t rows, size_t cols,
                                std::vector<double> data) {
  if (data.size() != rows * cols) {
    return Status::InvalidArgument(
        "Matrix::FromData: data size " + std::to_string(data.size()) +
        " does not match shape " + std::to_string(rows) + "x" +
        std::to_string(cols));
  }
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(data);
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::RowVector(size_t r) const {
  auto row = Row(r);
  return std::vector<double>(row.begin(), row.end());
}

void Matrix::SetRow(size_t r, std::span<const double> values) {
  FREEWAY_DCHECK(values.size() == cols_);
  auto row = Row(r);
  for (size_t c = 0; c < cols_; ++c) row[c] = values[c];
}

void Matrix::Fill(double value) {
  for (auto& v : data_) v = value;
}

void Matrix::AddInPlace(const Matrix& other) {
  FREEWAY_DCHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::SubInPlace(const Matrix& other) {
  FREEWAY_DCHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::ScaleInPlace(double factor) {
  for (auto& v : data_) v *= factor;
}

void Matrix::Axpy(double factor, const Matrix& other) {
  FREEWAY_DCHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += factor * other.data_[i];
}

Matrix Matrix::MatMul(const Matrix& other) const {
  FREEWAY_DCHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  // i-k-j loop order: streams through `other` rows for cache friendliness.
  for (size_t i = 0; i < rows_; ++i) {
    const double* a_row = data_.data() + i * cols_;
    double* out_row = out.data() + i * other.cols_;
    for (size_t k = 0; k < cols_; ++k) {
      const double a = a_row[k];
      if (a == 0.0) continue;
      const double* b_row = other.data() + k * other.cols_;
      for (size_t j = 0; j < other.cols_; ++j) out_row[j] += a * b_row[j];
    }
  }
  return out;
}

Matrix Matrix::TransposeMatMul(const Matrix& other) const {
  FREEWAY_DCHECK(rows_ == other.rows_);
  Matrix out(cols_, other.cols_);
  for (size_t k = 0; k < rows_; ++k) {
    const double* a_row = data_.data() + k * cols_;
    const double* b_row = other.data() + k * other.cols_;
    for (size_t i = 0; i < cols_; ++i) {
      const double a = a_row[i];
      if (a == 0.0) continue;
      double* out_row = out.data() + i * other.cols_;
      for (size_t j = 0; j < other.cols_; ++j) out_row[j] += a * b_row[j];
    }
  }
  return out;
}

Matrix Matrix::MatMulTranspose(const Matrix& other) const {
  FREEWAY_DCHECK(cols_ == other.cols_);
  Matrix out(rows_, other.rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a_row = data_.data() + i * cols_;
    for (size_t j = 0; j < other.rows_; ++j) {
      const double* b_row = other.data() + j * other.cols_;
      double acc = 0.0;
      for (size_t k = 0; k < cols_; ++k) acc += a_row[k] * b_row[k];
      out.At(i, j) = acc;
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out.At(j, i) = At(i, j);
  }
  return out;
}

std::vector<double> Matrix::ColumnMean() const {
  std::vector<double> mean(cols_, 0.0);
  if (rows_ == 0) return mean;
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = data_.data() + i * cols_;
    for (size_t j = 0; j < cols_; ++j) mean[j] += row[j];
  }
  const double inv = 1.0 / static_cast<double>(rows_);
  for (auto& v : mean) v *= inv;
  return mean;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

bool Matrix::AllFinite() const {
  for (double v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

double Matrix::Sum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

std::string Matrix::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")";
  const size_t show = rows_ < max_rows ? rows_ : max_rows;
  for (size_t i = 0; i < show; ++i) {
    os << "\n  [";
    for (size_t j = 0; j < cols_; ++j) {
      if (j > 0) os << ", ";
      os << FormatDouble(At(i, j), 4);
    }
    os << "]";
  }
  if (show < rows_) os << "\n  ... (" << rows_ - show << " more rows)";
  return os.str();
}

namespace vec {

double Dot(std::span<const double> a, std::span<const double> b) {
  FREEWAY_DCHECK(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm(std::span<const double> a) { return std::sqrt(Dot(a, a)); }

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  FREEWAY_DCHECK(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double EuclideanDistance(std::span<const double> a,
                         std::span<const double> b) {
  return std::sqrt(SquaredDistance(a, b));
}

void Axpy(double factor, std::span<const double> b, std::span<double> a) {
  FREEWAY_DCHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) a[i] += factor * b[i];
}

std::vector<double> Add(std::span<const double> a, std::span<const double> b) {
  FREEWAY_DCHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> Sub(std::span<const double> a, std::span<const double> b) {
  FREEWAY_DCHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> Scale(std::span<const double> a, double factor) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * factor;
  return out;
}

}  // namespace vec

double GaussianKernel(double distance, double sigma) {
  if (sigma <= 0.0) return distance == 0.0 ? 1.0 : 0.0;
  const double z = distance / sigma;
  return std::exp(-0.5 * z * z);
}

}  // namespace freeway
