#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "linalg/simd.h"

namespace freeway {
namespace {

/// Panel height for k-tiling inside a row block; 64 rows of a 512-wide B
/// panel is 256 KiB. Tiles iterate in ascending k, so per-element
/// accumulation order is the plain ascending-k order.
constexpr size_t kPanelRows = 64;

/// Output rows per parallel chunk for a matmul-shaped kernel whose per-row
/// cost is `inner_ops` scalar multiply-adds. Two forces: chunks need
/// >= ~128K ops so scheduling cost stays invisible, and wide outputs want
/// >= kPanelRows rows per chunk so the k-panel of B is reused across the
/// block. Depends only on the shapes involved, so chunk boundaries (and
/// results) are independent of the pool size.
size_t MatMulGrain(size_t inner_ops, size_t out_width, size_t rows) {
  size_t grain =
      std::max<size_t>(1, (size_t{1} << 17) / std::max<size_t>(1, inner_ops));
  if (out_width >= kPanelRows) {
    grain = std::max(grain, std::min(kPanelRows, rows));
  }
  return grain;
}

}  // namespace

Result<Matrix> Matrix::FromData(size_t rows, size_t cols,
                                std::vector<double> data) {
  if (data.size() != rows * cols) {
    return Status::InvalidArgument(
        "Matrix::FromData: data size " + std::to_string(data.size()) +
        " does not match shape " + std::to_string(rows) + "x" +
        std::to_string(cols));
  }
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(data);
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::RowVector(size_t r) const {
  auto row = Row(r);
  return std::vector<double>(row.begin(), row.end());
}

void Matrix::SetRow(size_t r, std::span<const double> values) {
  FREEWAY_DCHECK(values.size() == cols_);
  auto row = Row(r);
  for (size_t c = 0; c < cols_; ++c) row[c] = values[c];
}

void Matrix::Fill(double value) {
  for (auto& v : data_) v = value;
}

void Matrix::AddInPlace(const Matrix& other) {
  FREEWAY_DCHECK(SameShape(other))
      << "Matrix::AddInPlace: shape mismatch " << ShapeString() << " vs "
      << other.ShapeString();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::SubInPlace(const Matrix& other) {
  FREEWAY_DCHECK(SameShape(other))
      << "Matrix::SubInPlace: shape mismatch " << ShapeString() << " vs "
      << other.ShapeString();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::ScaleInPlace(double factor) {
  for (auto& v : data_) v *= factor;
}

void Matrix::Axpy(double factor, const Matrix& other) {
  FREEWAY_DCHECK(SameShape(other))
      << "Matrix::Axpy: shape mismatch " << ShapeString() << " vs "
      << other.ShapeString();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += factor * other.data_[i];
}

Matrix Matrix::MatMul(const Matrix& other) const {
  FREEWAY_DCHECK(cols_ == other.rows_)
      << "Matrix::MatMul: shape mismatch " << ShapeString() << " * "
      << other.ShapeString();
  Matrix out(rows_, other.cols_);
  const size_t n = other.cols_;
  // Row blocks run in parallel; within a block, B is consumed in k-panels so
  // one ~256 KiB panel serves every row of the block. Each output row
  // accumulates in plain ascending-k order regardless of blocking or thread
  // count, so results are bit-identical to the serial kernel.
  ParallelFor(0, rows_, MatMulGrain(cols_ * n, n, rows_),
              [&](size_t r0, size_t r1) {
    for (size_t kk = 0; kk < cols_; kk += kPanelRows) {
      const size_t k_end = std::min(kk + kPanelRows, cols_);
      for (size_t i = r0; i < r1; ++i) {
        const double* a_row = data_.data() + i * cols_;
        double* out_row = out.data() + i * n;
        size_t k = kk;
        // 4-way k-unroll through the dispatched panel microkernel (FMA
        // vectors under AVX2, the historical scalar loop otherwise). The
        // adds stay sequential in ascending k, so each element's value is
        // reproducible per dispatch target at any thread count. Groups
        // with a zero fall back to the zero-skip path (post-ReLU
        // activations are full of zeros, and 0 * inf must keep
        // contributing nothing).
        for (; k + 4 <= k_end; k += 4) {
          const double a0 = a_row[k];
          const double a1 = a_row[k + 1];
          const double a2 = a_row[k + 2];
          const double a3 = a_row[k + 3];
          if (a0 == 0.0 || a1 == 0.0 || a2 == 0.0 || a3 == 0.0) {
            for (size_t kq = k; kq < k + 4; ++kq) {
              const double a = a_row[kq];
              if (a == 0.0) continue;
              simd::AxpyRow(out_row, other.data() + kq * n, a, n);
            }
            continue;
          }
          const double* b0 = other.data() + k * n;
          simd::AccumPanel4(out_row, b0, b0 + n, b0 + 2 * n, b0 + 3 * n, a0,
                            a1, a2, a3, n);
        }
        for (; k < k_end; ++k) {
          const double a = a_row[k];
          if (a == 0.0) continue;
          simd::AxpyRow(out_row, other.data() + k * n, a, n);
        }
      }
    }
  });
  return out;
}

Matrix Matrix::TransposeMatMul(const Matrix& other) const {
  FREEWAY_DCHECK(rows_ == other.rows_)
      << "Matrix::TransposeMatMul: shape mismatch " << ShapeString() << "^T * "
      << other.ShapeString();
  Matrix out(cols_, other.cols_);
  const size_t n = other.cols_;
  // Parallel over blocks of output rows (= columns of A); k stays the outer
  // sequential loop inside each block, so every output element accumulates
  // in ascending-k order — deterministic at any thread count.
  ParallelFor(0, cols_, MatMulGrain(rows_ * n, n, cols_),
              [&](size_t i0, size_t i1) {
    size_t k = 0;
    // Same 4-way k-unroll as MatMul, through the dispatched panel
    // microkernel: sequential adds in ascending k keep each element
    // reproducible per dispatch target, groups containing a zero fall back
    // to the zero-skip path.
    for (; k + 4 <= rows_; k += 4) {
      const double* a0_row = data_.data() + k * cols_;
      const double* a1_row = a0_row + cols_;
      const double* a2_row = a1_row + cols_;
      const double* a3_row = a2_row + cols_;
      const double* b0 = other.data() + k * n;
      for (size_t i = i0; i < i1; ++i) {
        const double a0 = a0_row[i];
        const double a1 = a1_row[i];
        const double a2 = a2_row[i];
        const double a3 = a3_row[i];
        double* out_row = out.data() + i * n;
        if (a0 == 0.0 || a1 == 0.0 || a2 == 0.0 || a3 == 0.0) {
          for (size_t kq = 0; kq < 4; ++kq) {
            const double a = (data_.data() + (k + kq) * cols_)[i];
            if (a == 0.0) continue;
            simd::AxpyRow(out_row, other.data() + (k + kq) * n, a, n);
          }
          continue;
        }
        simd::AccumPanel4(out_row, b0, b0 + n, b0 + 2 * n, b0 + 3 * n, a0,
                          a1, a2, a3, n);
      }
    }
    for (; k < rows_; ++k) {
      const double* a_row = data_.data() + k * cols_;
      const double* b_row = other.data() + k * n;
      for (size_t i = i0; i < i1; ++i) {
        const double a = a_row[i];
        if (a == 0.0) continue;
        simd::AxpyRow(out.data() + i * n, b_row, a, n);
      }
    }
  });
  return out;
}

Matrix Matrix::MatMulTranspose(const Matrix& other) const {
  FREEWAY_DCHECK(cols_ == other.cols_)
      << "Matrix::MatMulTranspose: shape mismatch " << ShapeString() << " * "
      << other.ShapeString() << "^T";
  Matrix out(rows_, other.rows_);
  // Independent dot products; row blocks of the output run in parallel and
  // each dot accumulates in ascending-k order.
  ParallelFor(0, rows_, MatMulGrain(other.rows_ * cols_, other.rows_, rows_),
              [&](size_t r0, size_t r1) {
    for (size_t i = r0; i < r1; ++i) {
      const double* a_row = data_.data() + i * cols_;
      for (size_t j = 0; j < other.rows_; ++j) {
        out.At(i, j) = simd::Dot(a_row, other.data() + j * other.cols_, cols_);
      }
    }
  });
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out.At(j, i) = At(i, j);
  }
  return out;
}

std::vector<double> Matrix::ColumnMean() const {
  std::vector<double> mean(cols_, 0.0);
  if (rows_ == 0) return mean;
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = data_.data() + i * cols_;
    for (size_t j = 0; j < cols_; ++j) mean[j] += row[j];
  }
  const double inv = 1.0 / static_cast<double>(rows_);
  for (auto& v : mean) v *= inv;
  return mean;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

bool Matrix::AllFinite() const {
  for (double v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

double Matrix::Sum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

std::string Matrix::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")";
  const size_t show = rows_ < max_rows ? rows_ : max_rows;
  for (size_t i = 0; i < show; ++i) {
    os << "\n  [";
    for (size_t j = 0; j < cols_; ++j) {
      if (j > 0) os << ", ";
      os << FormatDouble(At(i, j), 4);
    }
    os << "]";
  }
  if (show < rows_) os << "\n  ... (" << rows_ - show << " more rows)";
  return os.str();
}

namespace vec {

double Dot(std::span<const double> a, std::span<const double> b) {
  FREEWAY_DCHECK(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm(std::span<const double> a) { return std::sqrt(Dot(a, a)); }

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  FREEWAY_DCHECK(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double EuclideanDistance(std::span<const double> a,
                         std::span<const double> b) {
  return std::sqrt(SquaredDistance(a, b));
}

void Axpy(double factor, std::span<const double> b, std::span<double> a) {
  FREEWAY_DCHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) a[i] += factor * b[i];
}

std::vector<double> Add(std::span<const double> a, std::span<const double> b) {
  FREEWAY_DCHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> Sub(std::span<const double> a, std::span<const double> b) {
  FREEWAY_DCHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> Scale(std::span<const double> a, double factor) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * factor;
  return out;
}

}  // namespace vec

double GaussianKernel(double distance, double sigma) {
  if (sigma <= 0.0) return distance == 0.0 ? 1.0 : 0.0;
  const double z = distance / sigma;
  return std::exp(-0.5 * z * z);
}

}  // namespace freeway
