#ifndef FREEWAYML_LINALG_PCA_H_
#define FREEWAYML_LINALG_PCA_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace freeway {

/// Principal Component Analysis fitted once on a warm-up sample, then used to
/// project streaming batches (Eqs. 2–6 of the paper). The fitted state is the
/// training mean `mu` and the component matrix `P_d` whose columns are the
/// top-d eigenvectors of the warm-up covariance.
class Pca {
 public:
  Pca() = default;

  /// Fits mean/covariance/eigenvectors from `samples` (rows = points) and
  /// keeps the top `num_components` directions. Requires at least 2 rows and
  /// 1 <= num_components <= cols.
  Status Fit(const Matrix& samples, size_t num_components);

  bool fitted() const { return fitted_; }
  size_t input_dim() const { return mean_.size(); }
  size_t num_components() const { return components_.cols(); }

  /// Projects a single point: P_d^T (x - mu).
  Result<std::vector<double>> Transform(std::span<const double> point) const;

  /// Projects every row of `batch`; returns an n x d matrix.
  Result<Matrix> TransformBatch(const Matrix& batch) const;

  /// Projects the *mean* of a batch — the paper's batch representation
  /// y_bar_t = P_d^T (mu_t - mu) (Eq. 6).
  Result<std::vector<double>> TransformBatchMean(const Matrix& batch) const;

  /// Fraction of total warm-up variance captured by the kept components.
  double ExplainedVarianceRatio() const { return explained_ratio_; }

  const std::vector<double>& mean() const { return mean_; }
  /// Component matrix P_d (input_dim x num_components).
  const Matrix& components() const { return components_; }

  /// Installs previously fitted state, e.g. from a checkpoint. `components`
  /// must have one row per mean entry when `fitted` is set.
  Status SetState(std::vector<double> mean, Matrix components,
                  double explained_ratio, bool fitted);

 private:
  bool fitted_ = false;
  std::vector<double> mean_;
  Matrix components_;
  double explained_ratio_ = 0.0;
};

}  // namespace freeway

#endif  // FREEWAYML_LINALG_PCA_H_
