#include "linalg/simd.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/logging.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define FREEWAY_SIMD_X86 1
#include <immintrin.h>
#else
#define FREEWAY_SIMD_X86 0
#endif

namespace freeway {
namespace simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar kernels. Operation order is exactly the pre-SIMD inner loops of
// matrix.cc / kmeans.cc, so the scalar target is bit-compatible with the
// historical (FREEWAY_SIMD=off) behaviour.
// ---------------------------------------------------------------------------

// The scalar kernels take __restrict pointers: call sites never alias the
// output with an input row, and the qualifier is worth ~5% on the k-means
// scan (the compiler can keep accumulators in registers across the inner
// loop without re-checking memory). It does not license reassociation, so
// the historical operation order — and therefore the bit patterns — hold.

void AccumPanel4Scalar(double* __restrict out, const double* __restrict b0,
                       const double* __restrict b1,
                       const double* __restrict b2,
                       const double* __restrict b3, double a0, double a1,
                       double a2, double a3, size_t n) {
  for (size_t j = 0; j < n; ++j) {
    double t = out[j];
    t += a0 * b0[j];
    t += a1 * b1[j];
    t += a2 * b2[j];
    t += a3 * b3[j];
    out[j] = t;
  }
}

void AxpyRowScalar(double* __restrict out, const double* __restrict b,
                   double a, size_t n) {
  for (size_t j = 0; j < n; ++j) out[j] += a * b[j];
}

double DotScalar(const double* __restrict a, const double* __restrict b,
                 size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double SquaredDistanceScalar(const double* __restrict a,
                             const double* __restrict b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

/// Straight-line distance scan. Early-abandonment variants (bailing when a
/// prefix sum exceeds the incumbent) were measured ~1.6x *slower* here —
/// the per-stride branch defeats pipelining at these shapes — so the
/// kernel stays branch-free per centroid, preserving the historical
/// accumulation order exactly.
int NearestCentroidScalar(const double* __restrict point,
                          const double* __restrict centroids, size_t k,
                          size_t dim, double* best_d2_out) {
  double best = std::numeric_limits<double>::infinity();
  int best_c = 0;
  for (size_t c = 0; c < k; ++c) {
    const double* row = centroids + c * dim;
    double acc = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      const double d = point[i] - row[i];
      acc += d * d;
    }
    if (acc < best) {
      best = acc;
      best_c = static_cast<int>(c);
    }
  }
  if (best_d2_out != nullptr) *best_d2_out = best;
  return best_c;
}

void NearestCentroidsScalar(const double* __restrict points, size_t n,
                            const double* __restrict centroids, size_t k,
                            size_t dim, int* __restrict out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = NearestCentroidScalar(points + i * dim, centroids, k, dim,
                                   nullptr);
  }
}

// ---------------------------------------------------------------------------
// AVX2 + FMA kernels. Per-function target attributes keep the rest of the
// tree buildable with the portable baseline flags; these bodies are only
// ever reached after the cpuid check below.
// ---------------------------------------------------------------------------

#if FREEWAY_SIMD_X86

__attribute__((target("avx2,fma"))) void AccumPanel4Avx2(
    double* out, const double* b0, const double* b1, const double* b2,
    const double* b3, double a0, double a1, double a2, double a3, size_t n) {
  const __m256d va0 = _mm256_set1_pd(a0);
  const __m256d va1 = _mm256_set1_pd(a1);
  const __m256d va2 = _mm256_set1_pd(a2);
  const __m256d va3 = _mm256_set1_pd(a3);
  size_t j = 0;
  // 8 output elements in flight: two independent 4-lane accumulators hide
  // the FMA latency chain. Element-wise the four adds stay in ascending
  // row order, so only FMA fusion separates this from the scalar kernel.
  for (; j + 8 <= n; j += 8) {
    __m256d t0 = _mm256_loadu_pd(out + j);
    __m256d t1 = _mm256_loadu_pd(out + j + 4);
    t0 = _mm256_fmadd_pd(va0, _mm256_loadu_pd(b0 + j), t0);
    t1 = _mm256_fmadd_pd(va0, _mm256_loadu_pd(b0 + j + 4), t1);
    t0 = _mm256_fmadd_pd(va1, _mm256_loadu_pd(b1 + j), t0);
    t1 = _mm256_fmadd_pd(va1, _mm256_loadu_pd(b1 + j + 4), t1);
    t0 = _mm256_fmadd_pd(va2, _mm256_loadu_pd(b2 + j), t0);
    t1 = _mm256_fmadd_pd(va2, _mm256_loadu_pd(b2 + j + 4), t1);
    t0 = _mm256_fmadd_pd(va3, _mm256_loadu_pd(b3 + j), t0);
    t1 = _mm256_fmadd_pd(va3, _mm256_loadu_pd(b3 + j + 4), t1);
    _mm256_storeu_pd(out + j, t0);
    _mm256_storeu_pd(out + j + 4, t1);
  }
  for (; j + 4 <= n; j += 4) {
    __m256d t = _mm256_loadu_pd(out + j);
    t = _mm256_fmadd_pd(va0, _mm256_loadu_pd(b0 + j), t);
    t = _mm256_fmadd_pd(va1, _mm256_loadu_pd(b1 + j), t);
    t = _mm256_fmadd_pd(va2, _mm256_loadu_pd(b2 + j), t);
    t = _mm256_fmadd_pd(va3, _mm256_loadu_pd(b3 + j), t);
    _mm256_storeu_pd(out + j, t);
  }
  for (; j < n; ++j) {
    double t = out[j];
    t = __builtin_fma(a0, b0[j], t);
    t = __builtin_fma(a1, b1[j], t);
    t = __builtin_fma(a2, b2[j], t);
    t = __builtin_fma(a3, b3[j], t);
    out[j] = t;
  }
}

__attribute__((target("avx2,fma"))) void AxpyRowAvx2(double* out,
                                                     const double* b,
                                                     double a, size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256d t0 = _mm256_loadu_pd(out + j);
    __m256d t1 = _mm256_loadu_pd(out + j + 4);
    t0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b + j), t0);
    t1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b + j + 4), t1);
    _mm256_storeu_pd(out + j, t0);
    _mm256_storeu_pd(out + j + 4, t1);
  }
  for (; j + 4 <= n; j += 4) {
    __m256d t = _mm256_loadu_pd(out + j);
    t = _mm256_fmadd_pd(va, _mm256_loadu_pd(b + j), t);
    _mm256_storeu_pd(out + j, t);
  }
  for (; j < n; ++j) out[j] = __builtin_fma(a, b[j], out[j]);
}

/// Lane-order reduction of 4 vector accumulators: pairwise adds, then the
/// fixed low→high horizontal sum. Deterministic, but a different
/// association than the scalar ascending sum — the documented tolerance.
__attribute__((target("avx2,fma"))) double Reduce4(__m256d acc0, __m256d acc1,
                                                   __m256d acc2,
                                                   __m256d acc3) {
  const __m256d s01 = _mm256_add_pd(acc0, acc1);
  const __m256d s23 = _mm256_add_pd(acc2, acc3);
  const __m256d s = _mm256_add_pd(s01, s23);
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, s);
  return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
}

__attribute__((target("avx2,fma"))) double DotAvx2(const double* a,
                                                   const double* b,
                                                   size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  }
  double acc = Reduce4(acc0, acc1, acc2, acc3);
  for (; i < n; ++i) acc = __builtin_fma(a[i], b[i], acc);
  return acc;
}

__attribute__((target("avx2,fma"))) double SquaredDistanceAvx2(
    const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc0 = _mm256_fmadd_pd(d, d, acc0);
  }
  double acc = Reduce4(acc0, acc1, _mm256_setzero_pd(), _mm256_setzero_pd());
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    acc = __builtin_fma(d, d, acc);
  }
  return acc;
}

__attribute__((target("avx2,fma"))) int NearestCentroidAvx2(
    const double* point, const double* centroids, size_t k, size_t dim,
    double* best_d2_out) {
  double best = std::numeric_limits<double>::infinity();
  int best_c = 0;
  for (size_t c = 0; c < k; ++c) {
    const double d2 = SquaredDistanceAvx2(point, centroids + c * dim, dim);
    if (d2 < best) {
      best = d2;
      best_c = static_cast<int>(c);
    }
  }
  if (best_d2_out != nullptr) *best_d2_out = best;
  return best_c;
}

__attribute__((target("avx2,fma"))) void NearestCentroidsAvx2(
    const double* __restrict points, size_t n,
    const double* __restrict centroids, size_t k, size_t dim,
    int* __restrict out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = NearestCentroidAvx2(points + i * dim, centroids, k, dim, nullptr);
  }
}

#endif  // FREEWAY_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

constexpr int kUnresolved = -1;
std::atomic<int> g_target{kUnresolved};

bool DetectAvx2() {
#if FREEWAY_SIMD_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

/// First-use resolution: FREEWAY_SIMD intersected with cpuid. Races are
/// benign — every thread resolves to the same value.
DispatchTarget Resolve() {
  int current = g_target.load(std::memory_order_acquire);
  if (current != kUnresolved) return static_cast<DispatchTarget>(current);
  DispatchTarget target =
      DetectAvx2() ? DispatchTarget::kAvx2 : DispatchTarget::kScalar;
  const char* env = std::getenv("FREEWAY_SIMD");
  if (env != nullptr) {
    std::string value(env);
    for (char& ch : value) {
      ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    }
    if (value == "off" || value == "scalar" || value == "0") {
      target = DispatchTarget::kScalar;
    } else if (value == "avx2" || value == "on" || value == "1" ||
               value == "auto" || value.empty()) {
      if (target != DispatchTarget::kAvx2 &&
          (value == "avx2" || value == "on" || value == "1")) {
        FREEWAY_LOG(kWarning) << "FREEWAY_SIMD=" << env
                              << " requested but this CPU lacks AVX2/FMA; "
                                 "using scalar kernels";
      }
    } else {
      FREEWAY_LOG(kWarning) << "unknown FREEWAY_SIMD value '" << env
                            << "' (want off|scalar|avx2|auto); auto-detecting";
    }
  }
  g_target.store(static_cast<int>(target), std::memory_order_release);
  return target;
}

}  // namespace

DispatchTarget ActiveTarget() { return Resolve(); }

const char* TargetName(DispatchTarget target) {
  return target == DispatchTarget::kAvx2 ? "avx2" : "scalar";
}

bool Avx2Supported() { return DetectAvx2(); }

DispatchTarget ForceTarget(DispatchTarget target) {
  if (target == DispatchTarget::kAvx2 && !DetectAvx2()) {
    target = DispatchTarget::kScalar;
  }
  g_target.store(static_cast<int>(target), std::memory_order_release);
  return target;
}

void AccumPanel4(double* out, const double* b0, const double* b1,
                 const double* b2, const double* b3, double a0, double a1,
                 double a2, double a3, size_t n) {
#if FREEWAY_SIMD_X86
  if (Resolve() == DispatchTarget::kAvx2) {
    AccumPanel4Avx2(out, b0, b1, b2, b3, a0, a1, a2, a3, n);
    return;
  }
#endif
  AccumPanel4Scalar(out, b0, b1, b2, b3, a0, a1, a2, a3, n);
}

void AxpyRow(double* out, const double* b, double a, size_t n) {
#if FREEWAY_SIMD_X86
  if (Resolve() == DispatchTarget::kAvx2) {
    AxpyRowAvx2(out, b, a, n);
    return;
  }
#endif
  AxpyRowScalar(out, b, a, n);
}

double Dot(const double* a, const double* b, size_t n) {
#if FREEWAY_SIMD_X86
  if (Resolve() == DispatchTarget::kAvx2) return DotAvx2(a, b, n);
#endif
  return DotScalar(a, b, n);
}

double SquaredDistance(const double* a, const double* b, size_t n) {
#if FREEWAY_SIMD_X86
  if (Resolve() == DispatchTarget::kAvx2) {
    return SquaredDistanceAvx2(a, b, n);
  }
#endif
  return SquaredDistanceScalar(a, b, n);
}

int NearestCentroid(const double* point, const double* centroids, size_t k,
                    size_t dim, double* best_d2) {
#if FREEWAY_SIMD_X86
  if (Resolve() == DispatchTarget::kAvx2) {
    return NearestCentroidAvx2(point, centroids, k, dim, best_d2);
  }
#endif
  return NearestCentroidScalar(point, centroids, k, dim, best_d2);
}

void NearestCentroids(const double* points, size_t n, const double* centroids,
                      size_t k, size_t dim, int* out) {
#if FREEWAY_SIMD_X86
  if (Resolve() == DispatchTarget::kAvx2) {
    NearestCentroidsAvx2(points, n, centroids, k, dim, out);
    return;
  }
#endif
  NearestCentroidsScalar(points, n, centroids, k, dim, out);
}

}  // namespace simd
}  // namespace freeway
