#ifndef FREEWAYML_RUNTIME_RUNTIME_STATS_H_
#define FREEWAYML_RUNTIME_RUNTIME_STATS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "directory/admission.h"

namespace freeway {

/// Live per-shard counters, written by producers and the shard's drain
/// task with relaxed atomics. Reads race benignly with writes: a snapshot
/// taken mid-flight is approximate; after Flush()/Shutdown() (quiescent)
/// it is exact.
struct ShardCounters {
  /// Batches accepted into the shard queue (Submit calls that enqueued).
  std::atomic<uint64_t> enqueued{0};
  /// Batches popped and pushed through the shard pipeline (errors
  /// included; see `errors`).
  std::atomic<uint64_t> processed{0};
  /// Batches dropped by the load-shedding policy before processing.
  std::atomic<uint64_t> shed{0};
  /// TrySubmit calls turned away because the shard queue was full — the
  /// admission-control signal a serving frontend converts into OVERLOAD
  /// replies. Rejected batches were never accepted, so they are *not* part
  /// of `enqueued` (the reconciliation invariant is unchanged).
  std::atomic<uint64_t> rejected{0};
  /// Push attempts (including retries) that returned a non-OK status.
  std::atomic<uint64_t> errors{0};
  /// Batches moved to the dead-letter queue after exhausting their retry
  /// budget (fault-tolerant mode only; never counted as processed).
  std::atomic<uint64_t> quarantined{0};
  /// Batches abandoned in the queue by a no-drain shutdown (labeled ones
  /// are preserved on the dead-letter queue).
  std::atomic<uint64_t> undrained{0};
  /// Retry attempts made by the shard supervisor.
  std::atomic<uint64_t> retries{0};
  /// Pipeline restores performed by the shard supervisor (from checkpoint
  /// or fresh rebuild).
  std::atomic<uint64_t> restores{0};
  /// Total wall time producers spent blocked on a full queue.
  std::atomic<int64_t> blocked_micros{0};
};

/// Point-in-time view of one shard.
struct ShardStatsSnapshot {
  size_t shard = 0;
  uint64_t enqueued = 0;
  uint64_t processed = 0;
  uint64_t shed = 0;
  uint64_t rejected = 0;
  uint64_t errors = 0;
  uint64_t quarantined = 0;
  uint64_t undrained = 0;
  uint64_t retries = 0;
  uint64_t restores = 0;
  int64_t blocked_micros = 0;
  /// Batches accepted but not yet processed, shed, quarantined, or
  /// abandoned (queue + executing).
  uint64_t in_flight = 0;
  size_t queue_depth = 0;
  size_t queue_high_water = 0;
  /// Smoothed producer-side arrival rate (batches/sec) seen by the shard's
  /// overload adjuster; 0 until two submits have arrived.
  double arrival_rate = 0.0;

  /// Builds a snapshot from live counters + queue observations, deriving
  /// in_flight = enqueued - processed - shed - quarantined - undrained
  /// (clamped at 0 for mid-flight reads).
  static ShardStatsSnapshot From(size_t shard, const ShardCounters& counters,
                                 size_t queue_depth, size_t queue_high_water,
                                 double arrival_rate);
};

/// Directory working-set accounting summed across shards (directory mode
/// only). Unlike the shard counters these are plain integers maintained by
/// the drain threads, so they are exact — and safe to read — only while
/// the runtime is quiescent (after Flush/Shutdown).
///
/// Invariant when quiescent:
///   hydrations_fresh + hydrations_restored == evictions + discards +
///   resident
struct DirectoryStatsSnapshot {
  uint64_t hydrations_fresh = 0;
  uint64_t hydrations_restored = 0;
  uint64_t evictions = 0;
  uint64_t discards = 0;
  uint64_t parks = 0;
  uint64_t hydrate_errors = 0;
  uint64_t evict_errors = 0;
  /// Currently hydrated pipelines across all shards.
  uint64_t resident = 0;
  /// Sum of the per-shard working-set caps (>= the configured total
  /// because each shard gets at least one slot).
  uint64_t capacity = 0;
};

/// Point-in-time view of the whole runtime: per-shard rows plus totals.
struct RuntimeStatsSnapshot {
  std::vector<ShardStatsSnapshot> shards;
  /// Sums over shards (queue_high_water is the max, arrival_rate the sum).
  ShardStatsSnapshot totals;
  /// Directory-mode extras; `directory` is meaningful (and rendered by
  /// ToJson) only when directory_enabled, `tenants` only when weighted
  /// admission is on.
  bool directory_enabled = false;
  DirectoryStatsSnapshot directory;
  std::vector<TenantStatsSnapshot> tenants;

  /// Recomputes `totals` from `shards`.
  void Aggregate();

  /// Renders the snapshot as a JSON object (stable key order) for the
  /// bench/report layer. The legacy {"totals", "shards"} shape is extended
  /// with "directory" / "tenants" keys only in directory mode, so existing
  /// consumers are unaffected.
  std::string ToJson() const;
};

}  // namespace freeway

#endif  // FREEWAYML_RUNTIME_RUNTIME_STATS_H_
