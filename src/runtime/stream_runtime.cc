#include "runtime/stream_runtime.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "directory/working_set.h"
#include "fault/failpoint.h"
#include "runtime/bounded_queue.h"

namespace freeway {

/// One queued unit of work.
struct StreamRuntime::ShardItem {
  uint64_t stream_id = 0;
  Batch batch;
  /// Stamped at Submit when metrics are attached; feeds the queue-wait
  /// histogram at dequeue.
  std::chrono::steady_clock::time_point enqueued_at;
  /// Tenant admission slot (resolved once at submit) and priority band,
  /// meaningful only while weighted admission is enabled. The slot lets
  /// every retire point (processed, shed victim, quarantined, undrained)
  /// release the booking without re-hashing; the band gates shed-victim
  /// selection.
  size_t tenant_slot = 0;
  uint8_t priority = 1;
};

/// Per-shard state. The queue carries its own lock; `submit_mutex` guards
/// only the producer-side arrival-rate measurement (multiple producers may
/// hit one shard); the pipeline is touched exclusively by the shard's
/// single active drain task (which is also why the supervisor can swap it
/// wholesale during recovery).
struct StreamRuntime::Shard {
  Shard(size_t index, const Model& prototype, const RuntimeOptions& options)
      : index(index),
        queue(options.queue_capacity),
        // Directory mode has no per-shard pipeline: streams hydrate their
        // own into the working set on demand.
        pipeline(options.directory.enabled
                     ? nullptr
                     : std::make_unique<StreamPipeline>(prototype,
                                                        options.pipeline)),
        overload_adjuster(options.overload_rate),
        drain_site("runtime.drain.shard" + std::to_string(index)),
        checkpoint_name("shard" + std::to_string(index)) {}

  const size_t index;
  BoundedQueue<ShardItem> queue;
  std::unique_ptr<StreamPipeline> pipeline;
  /// Directory mode only: the shard's LRU set of hydrated per-stream
  /// pipelines. Touched exclusively by the shard's single active drain
  /// task, like `pipeline`.
  std::unique_ptr<PipelineWorkingSet> working_set;
  ShardCounters counters;

  std::mutex submit_mutex;
  RateAwareAdjuster overload_adjuster;
  Stopwatch since_last_submit;
  bool saw_submit = false;
  RateAdjustment last_overload;
  /// Smoothed arrival rate published for the drain task (which forwards it
  /// into the pipeline) and for Snapshot().
  std::atomic<double> arrival_rate{0.0};
  /// Live queue depth for this shard; null while metrics are detached.
  Gauge* queue_depth = nullptr;

  /// Fault-injection site of this shard's drain path
  /// ("runtime.drain.shard<i>"), precomputed so the hot path never
  /// concatenates strings.
  const std::string drain_site;
  /// Checkpoint name of this shard in the store ("shard<i>").
  const std::string checkpoint_name;
  /// Successful pushes since the last checkpoint; drain-task-only.
  size_t batches_since_checkpoint = 0;
};

StreamRuntime::StreamRuntime(const Model& prototype,
                             const RuntimeOptions& options,
                             ResultCallback on_result)
    : options_(options),
      on_result_(std::move(on_result)),
      prototype_(prototype.Clone()) {
  // RuntimeOptions validation policy (see the header): zero shards would
  // divide by zero in ShardOf and zero capacity would deadlock every
  // Submit, so both clamp to 1 — a misconfigured runtime degrades to a
  // serial one instead of crashing or hanging.
  if (options_.num_shards == 0) {
    FREEWAY_LOG(kWarning) << "RuntimeOptions.num_shards = 0 clamped to 1";
    options_.num_shards = 1;
  }
  if (options_.queue_capacity == 0) {
    FREEWAY_LOG(kWarning) << "RuntimeOptions.queue_capacity = 0 clamped to 1";
    options_.queue_capacity = 1;
  }
  if (options_.directory.enabled) {
    // Directory validation follows the same clamp-and-warn policy.
    if (options_.directory.park_dir.empty()) {
      FREEWAY_LOG(kWarning) << "DirectoryOptions.park_dir is empty; using "
                        << "\"freeway_directory_park\"";
      options_.directory.park_dir = "freeway_directory_park";
    }
    if (options_.directory.working_set_capacity == 0) {
      FREEWAY_LOG(kWarning)
          << "DirectoryOptions.working_set_capacity = 0 clamped to "
          << options_.num_shards << " (one resident stream per shard)";
      options_.directory.working_set_capacity = options_.num_shards;
    }
    CheckpointStoreOptions park_options;
    park_options.directory = options_.directory.park_dir;
    park_options.keep_versions =
        std::max<size_t>(1, options_.directory.keep_versions);
    park_options.fsync = options_.directory.fsync;
    park_store_ = std::make_unique<CheckpointStore>(std::move(park_options));
    ring_ = std::make_unique<ConsistentHashRing>(
        options_.num_shards, options_.directory.vnodes_per_shard);
    if (options_.directory.admission.enabled) {
      admission_ = std::make_unique<TenantAdmission>(
          options_.directory.admission, options_.num_shards,
          options_.queue_capacity, options_.metrics);
    }
  }
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, prototype, options_));
    if (options_.directory.enabled) {
      WorkingSetOptions ws;
      ws.capacity = std::max<size_t>(
          1, options_.directory.working_set_capacity / options_.num_shards);
      ws.store = park_store_.get();
      ws.prototype = prototype_.get();
      ws.pipeline = options_.pipeline;
      ws.metrics = options_.metrics;
      ws.record_activation_latency =
          options_.directory.record_activation_latency;
      shards_.back()->working_set =
          std::make_unique<PipelineWorkingSet>(std::move(ws));
    }
  }
  if (options_.metrics != nullptr) {
    MetricsRegistry* registry = options_.metrics;
    metrics_.enqueued = registry->GetCounter(
        "freeway_runtime_batches_total{event=\"enqueued\"}");
    metrics_.processed = registry->GetCounter(
        "freeway_runtime_batches_total{event=\"processed\"}");
    metrics_.shed =
        registry->GetCounter("freeway_runtime_batches_total{event=\"shed\"}");
    metrics_.rejected = registry->GetCounter(
        "freeway_runtime_batches_total{event=\"rejected\"}");
    metrics_.errors =
        registry->GetCounter("freeway_runtime_batches_total{event=\"error\"}");
    metrics_.queue_wait_seconds =
        registry->GetHistogram("freeway_runtime_queue_wait_seconds");
    for (auto& shard : shards_) {
      shard->queue_depth = registry->GetGauge(
          "freeway_runtime_queue_depth{shard=\"" +
          std::to_string(shard->index) + "\"}");
      // Shards share the registry: pipeline/learner series aggregate
      // across shards under the same names. (Directory mode attaches at
      // hydration instead — there is no shard pipeline.)
      if (shard->pipeline != nullptr) shard->pipeline->AttachMetrics(registry);
    }
    if (options_.fault.enabled) {
      metrics_.fault_retries =
          registry->GetCounter("freeway_fault_retries_total");
      metrics_.fault_quarantined =
          registry->GetCounter("freeway_fault_quarantined_total");
      metrics_.fault_restores =
          registry->GetCounter("freeway_fault_restores_total");
      metrics_.fault_checkpoints_ok = registry->GetCounter(
          "freeway_fault_checkpoints_total{result=\"ok\"}");
      metrics_.fault_checkpoints_error = registry->GetCounter(
          "freeway_fault_checkpoints_total{result=\"error\"}");
      metrics_.fault_checkpoint_bytes = registry->GetHistogram(
          "freeway_fault_checkpoint_bytes", Histogram::DefaultSizeBounds());
      metrics_.fault_checkpoint_write_seconds =
          registry->GetHistogram("freeway_fault_checkpoint_write_seconds");
    }
  }
  if (options_.fault.enabled) {
    CheckpointStoreOptions store_options;
    store_options.directory = options_.fault.checkpoint_dir;
    store_options.keep_versions = options_.fault.keep_checkpoints;
    store_options.fsync = options_.fault.fsync_checkpoints;
    store_ = std::make_unique<CheckpointStore>(std::move(store_options));
    // Seed one checkpoint per shard: a failure on the very first batch
    // must have a restore point, and it exercises the store (a bad
    // checkpoint_dir surfaces here, not mid-recovery). Directory mode
    // skips this — recovery rolls individual streams back through the
    // park store, and a fresh stream's rollback target *is* a fresh
    // pipeline, so there is nothing to seed (and seeding millions of
    // streams up front would defeat hydrate-on-demand).
    if (!options_.directory.enabled) {
      for (auto& shard : shards_) {
        Status seeded = WriteShardCheckpoint(shard.get());
        if (!seeded.ok()) {
          FREEWAY_LOG(kWarning) << "shard " << shard->index
                            << ": initial checkpoint failed: " << seeded;
        }
      }
    }
  }
}

StreamRuntime::~StreamRuntime() { Shutdown(); }

Status StreamRuntime::Submit(uint64_t stream_id, Batch batch,
                             SubmitContext context) {
  return SubmitInternal(stream_id, std::move(batch), context,
                        /*allow_block=*/true);
}

Status StreamRuntime::TrySubmit(uint64_t stream_id, Batch batch,
                                SubmitContext context) {
  return SubmitInternal(stream_id, std::move(batch), context,
                        /*allow_block=*/false);
}

Status StreamRuntime::SubmitInternal(uint64_t stream_id, Batch batch,
                                     SubmitContext context,
                                     bool allow_block) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("StreamRuntime is shut down");
  }
  Shard& shard = *shards_[ShardOf(stream_id)];

  // Producer-side rate measurement. The first submit has no inter-arrival
  // gap to observe (the stopwatch would span construction → first batch),
  // so it only arms the stopwatch; the adjuster's EMA seeds with the first
  // real gap.
  bool overloaded = false;
  {
    std::lock_guard<std::mutex> lock(shard.submit_mutex);
    if (!shard.saw_submit) {
      shard.saw_submit = true;
      shard.since_last_submit.Restart();
    } else {
      const double gap = shard.since_last_submit.ElapsedSeconds();
      shard.since_last_submit.Restart();
      const double rate = gap > 1e-9 ? 1.0 / gap : 1e9;
      shard.last_overload =
          shard.overload_adjuster.Observe(rate, shard.queue.fill());
      shard.arrival_rate.store(shard.overload_adjuster.smoothed_rate(),
                               std::memory_order_relaxed);
    }
    // The adjuster reports overload through its decay/throttle knobs: both
    // activate only once the smoothed rate reaches the high watermark.
    overloaded = shard.last_overload.decay_boost > 1.0 ||
                 shard.last_overload.throttle_updates;
  }

  ShardItem item;
  item.stream_id = stream_id;
  item.batch = std::move(batch);
  item.priority = static_cast<uint8_t>(context.priority);
  if (metrics_.queue_wait_seconds != nullptr) {
    item.enqueued_at = std::chrono::steady_clock::now();
  }
  if (admission_ != nullptr) {
    item.tenant_slot = admission_->SlotOf(context.tenant_id);
    // Weighted admission applies only to the non-blocking path: a caller
    // accepting backpressure already pays with its own blocked time, and a
    // serving frontend (TrySubmit) is exactly where Envoy-style tenant
    // shedding belongs. A rejection here counts like a queue-full
    // rejection — the batch was never accepted, `enqueued` is untouched.
    if (!allow_block &&
        !admission_->Admit(shard.index, item.tenant_slot,
                           item.batch.labeled(), shard.queue.fill())) {
      shard.counters.rejected.fetch_add(1, std::memory_order_relaxed);
      if (metrics_.rejected != nullptr) metrics_.rejected->Inc();
      return Status::Unavailable(
          "tenant " + std::to_string(context.tenant_id) +
          " over its admission share on shard " +
          std::to_string(shard.index));
    }
  }

  // Read out what the accounting below needs before the item is moved into
  // the queue.
  const size_t tenant_slot = item.tenant_slot;
  const uint8_t incoming_priority = item.priority;

  BoundedQueue<ShardItem>::PushResult push;
  if (options_.overload_policy == OverloadPolicy::kShed && overloaded) {
    // Shed the lowest band first: a queued unlabeled batch is a victim
    // only for an incoming batch of an equal or higher priority band, so
    // best-effort work never displaces standard or critical work. When
    // nothing qualifies (only must-keep work is queued), the blocking path
    // degrades to backpressure while the non-blocking path rejects — a
    // TrySubmit caller must never stall.
    const auto victim = [incoming_priority](const ShardItem& queued) {
      return !queued.batch.labeled() && queued.priority <= incoming_priority;
    };
    push = allow_block ? shard.queue.PushShedding(std::move(item), victim)
                       : shard.queue.TryPushShedding(std::move(item), victim);
  } else if (allow_block) {
    push = shard.queue.PushBlocking(std::move(item));
  } else {
    push = shard.queue.TryPush(std::move(item));
  }
  if (push.rejected_full) {
    // TrySubmit admission control: the queue is full and the caller opted
    // out of backpressure. The batch was not accepted, so only the
    // rejection counters move — `enqueued` and the reconciliation
    // invariant are untouched.
    shard.counters.rejected.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.rejected != nullptr) metrics_.rejected->Inc();
    return Status::Unavailable("shard " + std::to_string(shard.index) +
                               " queue full (" +
                               std::to_string(options_.queue_capacity) +
                               " batches)");
  }
  if (!push.accepted) {
    return Status::FailedPrecondition("StreamRuntime is shut down");
  }

  shard.counters.enqueued.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.enqueued != nullptr) metrics_.enqueued->Inc();
  if (admission_ != nullptr) {
    // Book every accepted batch (blocking path included) so per-tenant
    // in-flight reflects total queue holdings; retired on process, shed,
    // quarantine, or shutdown abandonment.
    admission_->OnAdmitted(shard.index, tenant_slot);
  }
  if (push.shed) {
    shard.counters.shed.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.shed != nullptr) metrics_.shed->Inc();
    if (admission_ != nullptr && push.victim.has_value()) {
      admission_->OnRetired(shard.index, push.victim->tenant_slot);
    }
  } else if (shard.queue_depth != nullptr) {
    // A shed push replaces a resident item, so depth only grows when
    // nothing was dropped.
    shard.queue_depth->Inc();
  }
  if (push.blocked_micros > 0) {
    shard.counters.blocked_micros.fetch_add(push.blocked_micros,
                                            std::memory_order_relaxed);
  }
  if (push.activate_consumer && options_.schedule_workers) {
    Shard* target = &shard;
    ThreadPool::Global()->Submit([this, target] { DrainShard(target); });
  }
  return Status::OK();
}

Status StreamRuntime::PushOnce(Shard* shard, const ShardItem& item) {
  Status injected = failpoint::Check(shard->drain_site);
  if (!injected.ok()) return injected;
  // Directory mode: the stream's own pipeline, hydrated into the working
  // set on demand (evicting an LRU resident if the shard is at its cap).
  StreamPipeline* pipeline = shard->working_set != nullptr
                                 ? shard->working_set->Acquire(item.stream_id)
                                 : shard->pipeline.get();
  if (options_.forward_rate_signal) {
    const double rate = shard->arrival_rate.load(std::memory_order_relaxed);
    if (rate > 0.0) pipeline->SetExternalRate(rate);
  }
  Result<std::optional<InferenceReport>> result = pipeline->Push(item.batch);
  RETURN_IF_ERROR(result.status());
  if (result->has_value()) {
    StreamResult delivered;
    delivered.stream_id = item.stream_id;
    delivered.batch_index = item.batch.index;
    delivered.report = std::move(**result);
    Deliver(std::move(delivered));
  }
  return Status::OK();
}

void StreamRuntime::RestoreShardPipeline(Shard* shard, uint64_t stream_id) {
  shard->counters.restores.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.fault_restores != nullptr) metrics_.fault_restores->Inc();
  if (shard->working_set != nullptr) {
    // Directory mode: roll only the failing stream back. Discarding drops
    // its (possibly half-updated) resident pipeline; the retry's Acquire
    // re-hydrates from the last park, or fresh when it was never parked.
    shard->working_set->Discard(stream_id);
    return;
  }
  if (store_ != nullptr) {
    Result<std::vector<char>> payload =
        store_->ReadLatest(shard->checkpoint_name);
    if (payload.ok()) {
      // Restore into a *fresh* pipeline and swap only on success: a
      // payload that fails validation partway must not leave the live
      // pipeline half-restored.
      auto fresh = std::make_unique<StreamPipeline>(*prototype_,
                                                    options_.pipeline);
      Status restored = fresh->Restore(*payload);
      if (restored.ok()) {
        if (options_.metrics != nullptr) {
          fresh->AttachMetrics(options_.metrics);
        }
        shard->pipeline = std::move(fresh);
        return;
      }
      FREEWAY_LOG(kWarning) << "shard " << shard->index
                        << ": checkpoint restore failed (" << restored
                        << "); rebuilding fresh";
    } else {
      FREEWAY_LOG(kWarning) << "shard " << shard->index
                        << ": no restorable checkpoint ("
                        << payload.status() << "); rebuilding fresh";
    }
  }
  shard->pipeline =
      std::make_unique<StreamPipeline>(*prototype_, options_.pipeline);
  if (options_.metrics != nullptr) {
    shard->pipeline->AttachMetrics(options_.metrics);
  }
}

Status StreamRuntime::WriteShardCheckpoint(Shard* shard) {
  if (shard->working_set != nullptr) {
    // Directory mode: "checkpoint the shard" means park every resident
    // stream — there is no shard pipeline to snapshot.
    Status parked = shard->working_set->ParkAll();
    if (parked.ok() && options_.fault.on_checkpoint) {
      options_.fault.on_checkpoint(
          shard->index,
          shard->counters.processed.load(std::memory_order_relaxed) +
              shard->counters.shed.load(std::memory_order_relaxed) +
              shard->counters.quarantined.load(std::memory_order_relaxed));
    }
    return parked;
  }
  if (store_ == nullptr) {
    return Status::FailedPrecondition("fault tolerance is not enabled");
  }
  Stopwatch watch;
  std::vector<char> payload;
  Status status = shard->pipeline->Snapshot(&payload);
  if (status.ok()) {
    status = store_->Write(shard->checkpoint_name, payload);
  }
  shard->batches_since_checkpoint = 0;
  if (status.ok()) {
    if (metrics_.fault_checkpoints_ok != nullptr) {
      metrics_.fault_checkpoints_ok->Inc();
      metrics_.fault_checkpoint_bytes->Observe(
          static_cast<double>(payload.size()));
      metrics_.fault_checkpoint_write_seconds->Observe(
          watch.ElapsedSeconds());
    }
    if (options_.fault.on_checkpoint) {
      options_.fault.on_checkpoint(
          shard->index,
          shard->counters.processed.load(std::memory_order_relaxed) +
              shard->counters.shed.load(std::memory_order_relaxed) +
              shard->counters.quarantined.load(std::memory_order_relaxed));
    }
  } else if (metrics_.fault_checkpoints_error != nullptr) {
    metrics_.fault_checkpoints_error->Inc();
  }
  return status;
}

void StreamRuntime::Quarantine(Shard* shard, ShardItem item, Status error,
                               size_t attempts) {
  shard->counters.quarantined.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.fault_quarantined != nullptr) metrics_.fault_quarantined->Inc();
  if (admission_ != nullptr) {
    admission_->OnRetired(shard->index, item.tenant_slot);
  }
  DeadLetter letter;
  letter.stream_id = item.stream_id;
  letter.shard = shard->index;
  letter.batch = std::move(item.batch);
  letter.error = std::move(error);
  letter.attempts = attempts;
  std::lock_guard<std::mutex> lock(dead_letters_mutex_);
  dead_letters_.push_back(std::move(letter));
}

void StreamRuntime::ProcessWithRecovery(Shard* shard, ShardItem item) {
  Status status = PushOnce(shard, item);
  size_t attempts = 1;
  if (!status.ok()) {
    shard->counters.errors.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.errors != nullptr) metrics_.errors->Inc();
  }
  if (!status.ok() && options_.fault.enabled) {
    // Supervised recovery: the failed push may have left the pipeline in a
    // partially-updated state (e.g. ensemble trained, experience append
    // failed), so every retry first rolls the pipeline back to its last
    // checkpoint, then backs off and re-attempts the batch.
    int64_t backoff = std::max<int64_t>(options_.fault.backoff_initial_micros,
                                        0);
    for (size_t retry = 0; retry < options_.fault.max_batch_retries;
         ++retry) {
      RestoreShardPipeline(shard, item.stream_id);
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff));
        backoff = std::min(backoff * 2, options_.fault.backoff_max_micros);
      }
      shard->counters.retries.fetch_add(1, std::memory_order_relaxed);
      if (metrics_.fault_retries != nullptr) metrics_.fault_retries->Inc();
      status = PushOnce(shard, item);
      ++attempts;
      if (status.ok()) break;
      shard->counters.errors.fetch_add(1, std::memory_order_relaxed);
      if (metrics_.errors != nullptr) metrics_.errors->Inc();
    }
    if (!status.ok()) {
      // Retry budget exhausted: a poison batch. Quarantine it — counted
      // `quarantined`, never `processed`, and the batch itself survives on
      // the dead-letter queue (labeled training data is never dropped).
      Quarantine(shard, std::move(item), status, attempts);
      return;
    }
  }
  // Legacy mode counts failed pushes as processed errors (the batch is
  // consumed either way); fault-tolerant mode only reaches here with OK.
  shard->counters.processed.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.processed != nullptr) metrics_.processed->Inc();
  if (admission_ != nullptr) {
    admission_->OnRetired(shard->index, item.tenant_slot);
  }
  if (status.ok() && shard->working_set != nullptr) {
    // Directory mode intervals are per stream: the stream parks itself
    // (snapshot to the store, staying resident) every N of *its own*
    // pushes, so recovery rollback distance is bounded per stream.
    if (options_.fault.enabled) {
      Status parked = shard->working_set->NotePush(
          item.stream_id, options_.fault.checkpoint_interval_batches);
      if (!parked.ok()) {
        FREEWAY_LOG(kWarning) << "stream " << item.stream_id
                          << ": interval park failed: " << parked;
      }
    }
  } else if (status.ok() && store_ != nullptr) {
    if (++shard->batches_since_checkpoint >=
        options_.fault.checkpoint_interval_batches) {
      Status written = WriteShardCheckpoint(shard);
      if (!written.ok()) {
        FREEWAY_LOG(kWarning) << "shard " << shard->index
                          << ": periodic checkpoint failed: " << written;
      }
    }
  }
}

size_t StreamRuntime::DrainShard(Shard* shard) {
  size_t drained = 0;
  ShardItem item;
  while (shard->queue.Pop(&item)) {
    if (shard->queue_depth != nullptr) shard->queue_depth->Dec();
    if (metrics_.queue_wait_seconds != nullptr) {
      const std::chrono::duration<double> waited =
          std::chrono::steady_clock::now() - item.enqueued_at;
      metrics_.queue_wait_seconds->Observe(waited.count());
    }
    ProcessWithRecovery(shard, std::move(item));
    ++drained;
  }
  return drained;
}

void StreamRuntime::Deliver(StreamResult result) {
  if (on_result_) {
    on_result_(result);
    return;
  }
  std::lock_guard<std::mutex> lock(results_mutex_);
  results_.push_back(std::move(result));
}

void StreamRuntime::Flush() {
  for (auto& shard : shards_) shard->queue.WaitIdle();
}

void StreamRuntime::Shutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) {
    // A previous Shutdown already closed the queues; still wait for drains
    // so concurrent callers also see a quiescent runtime on return.
    for (auto& shard : shards_) shard->queue.WaitIdle();
    return;
  }
  for (auto& shard : shards_) shard->queue.Close();
  for (auto& shard : shards_) {
    if (options_.drain_on_shutdown) {
      // Manual mode has no scheduled drain tasks; consume pending work
      // here so shutdown-with-pending-work still drains.
      if (!options_.schedule_workers) DrainShard(shard.get());
    } else {
      // Abandon queued work, but account for every batch: `undrained` in
      // the stats (the invariant stays reconcilable) and labeled batches
      // — training data — onto the dead-letter queue instead of the
      // floor.
      std::deque<ShardItem> abandoned = shard->queue.TakeAll();
      for (ShardItem& item : abandoned) {
        shard->counters.undrained.fetch_add(1, std::memory_order_relaxed);
        if (shard->queue_depth != nullptr) shard->queue_depth->Dec();
        if (admission_ != nullptr) {
          admission_->OnRetired(shard->index, item.tenant_slot);
        }
        if (item.batch.labeled()) {
          DeadLetter letter;
          letter.stream_id = item.stream_id;
          letter.shard = shard->index;
          letter.batch = std::move(item.batch);
          letter.error = Status::FailedPrecondition(
              "abandoned by no-drain shutdown");
          letter.attempts = 0;
          std::lock_guard<std::mutex> lock(dead_letters_mutex_);
          dead_letters_.push_back(std::move(letter));
        }
      }
      // Manual mode: Submit marked the consumer active but no drain task
      // exists to observe the now-empty queue and deactivate it, which
      // would hang WaitIdle. One pop of the emptied queue clears the flag.
      if (!options_.schedule_workers) DrainShard(shard.get());
    }
    shard->queue.WaitIdle();
    if (store_ != nullptr || shard->working_set != nullptr) {
      // Final checkpoint: the shard is quiescent, so this snapshot is the
      // one a successor runtime restores from. Directory mode parks every
      // resident stream (evicted streams are already parked), fault
      // tolerance or not — a bounded cache must not be the only copy of
      // trained state at exit.
      Status written = WriteShardCheckpoint(shard.get());
      if (!written.ok()) {
        FREEWAY_LOG(kWarning) << "shard " << shard->index
                          << ": final checkpoint failed: " << written;
      }
    }
  }
}

std::vector<StreamResult> StreamRuntime::Drain() {
  std::lock_guard<std::mutex> lock(results_mutex_);
  return std::exchange(results_, {});
}

std::vector<DeadLetter> StreamRuntime::TakeDeadLetters() {
  std::lock_guard<std::mutex> lock(dead_letters_mutex_);
  return std::exchange(dead_letters_, {});
}

RuntimeStatsSnapshot StreamRuntime::Snapshot() const {
  RuntimeStatsSnapshot snapshot;
  snapshot.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    snapshot.shards.push_back(ShardStatsSnapshot::From(
        shard->index, shard->counters, shard->queue.size(),
        shard->queue.high_water(),
        shard->arrival_rate.load(std::memory_order_relaxed)));
  }
  snapshot.Aggregate();
  if (ring_ != nullptr) {
    // Working-set stats are plain integers owned by the drain threads, so
    // this section is exact only when the runtime is quiescent (the same
    // caveat the snapshot already carries, just without atomics softening
    // mid-flight reads).
    snapshot.directory_enabled = true;
    for (const auto& shard : shards_) {
      const WorkingSetStats& ws = shard->working_set->stats();
      snapshot.directory.hydrations_fresh += ws.hydrations_fresh;
      snapshot.directory.hydrations_restored += ws.hydrations_restored;
      snapshot.directory.evictions += ws.evictions;
      snapshot.directory.discards += ws.discards;
      snapshot.directory.parks += ws.parks;
      snapshot.directory.hydrate_errors += ws.hydrate_errors;
      snapshot.directory.evict_errors += ws.evict_errors;
      snapshot.directory.resident += shard->working_set->resident();
      snapshot.directory.capacity += shard->working_set->capacity();
    }
  }
  if (admission_ != nullptr) snapshot.tenants = admission_->Snapshot();
  return snapshot;
}

size_t StreamRuntime::PumpShard(size_t shard) {
  FREEWAY_DCHECK(shard < shards_.size());
  return DrainShard(shards_[shard].get());
}

const StreamPipeline& StreamRuntime::shard_pipeline(size_t shard) const {
  FREEWAY_DCHECK(shard < shards_.size());
  FREEWAY_DCHECK(shards_[shard]->pipeline != nullptr);
  return *shards_[shard]->pipeline;
}

StreamPipeline* StreamRuntime::mutable_shard_pipeline(size_t shard) {
  FREEWAY_DCHECK(shard < shards_.size());
  return shards_[shard]->pipeline.get();
}

StreamPipeline* StreamRuntime::resident_stream_pipeline(uint64_t stream_id) {
  Shard& shard = *shards_[ShardOf(stream_id)];
  if (shard.working_set == nullptr) return shard.pipeline.get();
  return shard.working_set->Acquire(stream_id);
}

const PipelineWorkingSet* StreamRuntime::shard_working_set(
    size_t shard) const {
  FREEWAY_DCHECK(shard < shards_.size());
  return shards_[shard]->working_set.get();
}

Status StreamRuntime::CheckpointShard(size_t shard) {
  FREEWAY_DCHECK(shard < shards_.size());
  return WriteShardCheckpoint(shards_[shard].get());
}

}  // namespace freeway
