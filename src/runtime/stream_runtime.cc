#include "runtime/stream_runtime.h"

#include <chrono>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "runtime/bounded_queue.h"

namespace freeway {

/// Per-shard state. The queue carries its own lock; `submit_mutex` guards
/// only the producer-side arrival-rate measurement (multiple producers may
/// hit one shard); the pipeline is touched exclusively by the shard's
/// single active drain task.
struct StreamRuntime::Shard {
  struct Item {
    uint64_t stream_id = 0;
    Batch batch;
    /// Stamped at Submit when metrics are attached; feeds the queue-wait
    /// histogram at dequeue.
    std::chrono::steady_clock::time_point enqueued_at;
  };

  Shard(size_t index, const Model& prototype, const RuntimeOptions& options)
      : index(index),
        queue(options.queue_capacity),
        pipeline(prototype, options.pipeline),
        overload_adjuster(options.overload_rate) {}

  const size_t index;
  BoundedQueue<Item> queue;
  StreamPipeline pipeline;
  ShardCounters counters;

  std::mutex submit_mutex;
  RateAwareAdjuster overload_adjuster;
  Stopwatch since_last_submit;
  bool saw_submit = false;
  RateAdjustment last_overload;
  /// Smoothed arrival rate published for the drain task (which forwards it
  /// into the pipeline) and for Snapshot().
  std::atomic<double> arrival_rate{0.0};
  /// Live queue depth for this shard; null while metrics are detached.
  Gauge* queue_depth = nullptr;
};

StreamRuntime::StreamRuntime(const Model& prototype,
                             const RuntimeOptions& options,
                             ResultCallback on_result)
    : options_(options), on_result_(std::move(on_result)) {
  const size_t num_shards = options.num_shards > 0 ? options.num_shards : 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, prototype, options_));
  }
  if (options_.metrics != nullptr) {
    MetricsRegistry* registry = options_.metrics;
    metrics_.enqueued = registry->GetCounter(
        "freeway_runtime_batches_total{event=\"enqueued\"}");
    metrics_.processed = registry->GetCounter(
        "freeway_runtime_batches_total{event=\"processed\"}");
    metrics_.shed =
        registry->GetCounter("freeway_runtime_batches_total{event=\"shed\"}");
    metrics_.errors =
        registry->GetCounter("freeway_runtime_batches_total{event=\"error\"}");
    metrics_.queue_wait_seconds =
        registry->GetHistogram("freeway_runtime_queue_wait_seconds");
    for (auto& shard : shards_) {
      shard->queue_depth = registry->GetGauge(
          "freeway_runtime_queue_depth{shard=\"" +
          std::to_string(shard->index) + "\"}");
      // Shards share the registry: pipeline/learner series aggregate
      // across shards under the same names.
      shard->pipeline.AttachMetrics(registry);
    }
  }
}

StreamRuntime::~StreamRuntime() { Shutdown(); }

Status StreamRuntime::Submit(uint64_t stream_id, Batch batch) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("StreamRuntime is shut down");
  }
  Shard& shard = *shards_[ShardOf(stream_id)];

  // Producer-side rate measurement. The first submit has no inter-arrival
  // gap to observe (the stopwatch would span construction → first batch),
  // so it only arms the stopwatch; the adjuster's EMA seeds with the first
  // real gap.
  bool overloaded = false;
  {
    std::lock_guard<std::mutex> lock(shard.submit_mutex);
    if (!shard.saw_submit) {
      shard.saw_submit = true;
      shard.since_last_submit.Restart();
    } else {
      const double gap = shard.since_last_submit.ElapsedSeconds();
      shard.since_last_submit.Restart();
      const double rate = gap > 1e-9 ? 1.0 / gap : 1e9;
      shard.last_overload =
          shard.overload_adjuster.Observe(rate, shard.queue.fill());
      shard.arrival_rate.store(shard.overload_adjuster.smoothed_rate(),
                               std::memory_order_relaxed);
    }
    // The adjuster reports overload through its decay/throttle knobs: both
    // activate only once the smoothed rate reaches the high watermark.
    overloaded = shard.last_overload.decay_boost > 1.0 ||
                 shard.last_overload.throttle_updates;
  }

  Shard::Item item;
  item.stream_id = stream_id;
  item.batch = std::move(batch);
  if (metrics_.queue_wait_seconds != nullptr) {
    item.enqueued_at = std::chrono::steady_clock::now();
  }

  BoundedQueue<Shard::Item>::PushResult push;
  if (options_.overload_policy == OverloadPolicy::kShed && overloaded) {
    push = shard.queue.PushShedding(
        std::move(item),
        [](const Shard::Item& queued) { return !queued.batch.labeled(); });
  } else {
    push = shard.queue.PushBlocking(std::move(item));
  }
  if (!push.accepted) {
    return Status::FailedPrecondition("StreamRuntime is shut down");
  }

  shard.counters.enqueued.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.enqueued != nullptr) metrics_.enqueued->Inc();
  if (push.shed) {
    shard.counters.shed.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.shed != nullptr) metrics_.shed->Inc();
  } else if (shard.queue_depth != nullptr) {
    // A shed push replaces a resident item, so depth only grows when
    // nothing was dropped.
    shard.queue_depth->Inc();
  }
  if (push.blocked_micros > 0) {
    shard.counters.blocked_micros.fetch_add(push.blocked_micros,
                                            std::memory_order_relaxed);
  }
  if (push.activate_consumer && options_.schedule_workers) {
    Shard* target = &shard;
    ThreadPool::Global()->Submit([this, target] { DrainShard(target); });
  }
  return Status::OK();
}

size_t StreamRuntime::DrainShard(Shard* shard) {
  size_t processed = 0;
  Shard::Item item;
  while (shard->queue.Pop(&item)) {
    if (shard->queue_depth != nullptr) shard->queue_depth->Dec();
    if (metrics_.queue_wait_seconds != nullptr) {
      const std::chrono::duration<double> waited =
          std::chrono::steady_clock::now() - item.enqueued_at;
      metrics_.queue_wait_seconds->Observe(waited.count());
    }
    if (options_.forward_rate_signal) {
      const double rate = shard->arrival_rate.load(std::memory_order_relaxed);
      if (rate > 0.0) shard->pipeline.SetExternalRate(rate);
    }
    Result<std::optional<InferenceReport>> result =
        shard->pipeline.Push(item.batch);
    if (!result.ok()) {
      shard->counters.errors.fetch_add(1, std::memory_order_relaxed);
      if (metrics_.errors != nullptr) metrics_.errors->Inc();
    } else if (result->has_value()) {
      StreamResult delivered;
      delivered.stream_id = item.stream_id;
      delivered.batch_index = item.batch.index;
      delivered.report = std::move(**result);
      Deliver(std::move(delivered));
    }
    shard->counters.processed.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.processed != nullptr) metrics_.processed->Inc();
    ++processed;
  }
  return processed;
}

void StreamRuntime::Deliver(StreamResult result) {
  if (on_result_) {
    on_result_(result);
    return;
  }
  std::lock_guard<std::mutex> lock(results_mutex_);
  results_.push_back(std::move(result));
}

void StreamRuntime::Flush() {
  for (auto& shard : shards_) shard->queue.WaitIdle();
}

void StreamRuntime::Shutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) {
    // A previous Shutdown already closed the queues; still wait for drains
    // so concurrent callers also see a quiescent runtime on return.
    for (auto& shard : shards_) shard->queue.WaitIdle();
    return;
  }
  for (auto& shard : shards_) shard->queue.Close();
  for (auto& shard : shards_) {
    // Manual mode has no scheduled drain tasks; consume pending work here
    // so shutdown-with-pending-work still drains.
    if (!options_.schedule_workers) DrainShard(shard.get());
    shard->queue.WaitIdle();
  }
}

std::vector<StreamResult> StreamRuntime::Drain() {
  std::lock_guard<std::mutex> lock(results_mutex_);
  return std::exchange(results_, {});
}

RuntimeStatsSnapshot StreamRuntime::Snapshot() const {
  RuntimeStatsSnapshot snapshot;
  snapshot.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    snapshot.shards.push_back(ShardStatsSnapshot::From(
        shard->index, shard->counters, shard->queue.size(),
        shard->queue.high_water(),
        shard->arrival_rate.load(std::memory_order_relaxed)));
  }
  snapshot.Aggregate();
  return snapshot;
}

size_t StreamRuntime::PumpShard(size_t shard) {
  FREEWAY_DCHECK(shard < shards_.size());
  return DrainShard(shards_[shard].get());
}

const StreamPipeline& StreamRuntime::shard_pipeline(size_t shard) const {
  FREEWAY_DCHECK(shard < shards_.size());
  return shards_[shard]->pipeline;
}

}  // namespace freeway
