#include "runtime/runtime_stats.h"

#include <sstream>

#include "common/strings.h"

namespace freeway {

ShardStatsSnapshot ShardStatsSnapshot::From(size_t shard,
                                            const ShardCounters& counters,
                                            size_t queue_depth,
                                            size_t queue_high_water,
                                            double arrival_rate) {
  ShardStatsSnapshot s;
  s.shard = shard;
  s.enqueued = counters.enqueued.load(std::memory_order_relaxed);
  s.processed = counters.processed.load(std::memory_order_relaxed);
  s.shed = counters.shed.load(std::memory_order_relaxed);
  s.rejected = counters.rejected.load(std::memory_order_relaxed);
  s.errors = counters.errors.load(std::memory_order_relaxed);
  s.quarantined = counters.quarantined.load(std::memory_order_relaxed);
  s.undrained = counters.undrained.load(std::memory_order_relaxed);
  s.retries = counters.retries.load(std::memory_order_relaxed);
  s.restores = counters.restores.load(std::memory_order_relaxed);
  s.blocked_micros = counters.blocked_micros.load(std::memory_order_relaxed);
  const int64_t in_flight = static_cast<int64_t>(s.enqueued) -
                            static_cast<int64_t>(s.processed) -
                            static_cast<int64_t>(s.shed) -
                            static_cast<int64_t>(s.quarantined) -
                            static_cast<int64_t>(s.undrained);
  s.in_flight = in_flight > 0 ? static_cast<uint64_t>(in_flight) : 0;
  s.queue_depth = queue_depth;
  s.queue_high_water = queue_high_water;
  s.arrival_rate = arrival_rate;
  return s;
}

void RuntimeStatsSnapshot::Aggregate() {
  totals = ShardStatsSnapshot();
  for (const ShardStatsSnapshot& s : shards) {
    totals.enqueued += s.enqueued;
    totals.processed += s.processed;
    totals.shed += s.shed;
    totals.rejected += s.rejected;
    totals.errors += s.errors;
    totals.quarantined += s.quarantined;
    totals.undrained += s.undrained;
    totals.retries += s.retries;
    totals.restores += s.restores;
    totals.blocked_micros += s.blocked_micros;
    totals.in_flight += s.in_flight;
    totals.queue_depth += s.queue_depth;
    if (s.queue_high_water > totals.queue_high_water) {
      totals.queue_high_water = s.queue_high_water;
    }
    totals.arrival_rate += s.arrival_rate;
  }
}

namespace {

void AppendShard(std::ostringstream* out, const ShardStatsSnapshot& s,
                 bool with_shard_index) {
  *out << "{";
  if (with_shard_index) *out << "\"shard\": " << s.shard << ", ";
  *out << "\"enqueued\": " << s.enqueued
       << ", \"processed\": " << s.processed << ", \"shed\": " << s.shed
       << ", \"rejected\": " << s.rejected
       << ", \"errors\": " << s.errors
       << ", \"quarantined\": " << s.quarantined
       << ", \"undrained\": " << s.undrained
       << ", \"retries\": " << s.retries
       << ", \"restores\": " << s.restores
       << ", \"in_flight\": " << s.in_flight
       << ", \"queue_depth\": " << s.queue_depth
       << ", \"queue_high_water\": " << s.queue_high_water
       << ", \"blocked_micros\": " << s.blocked_micros
       << ", \"arrival_rate\": " << FormatDouble(s.arrival_rate, 2) << "}";
}

}  // namespace

std::string RuntimeStatsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"totals\": ";
  AppendShard(&out, totals, /*with_shard_index=*/false);
  out << ", \"shards\": [";
  for (size_t i = 0; i < shards.size(); ++i) {
    if (i > 0) out << ", ";
    AppendShard(&out, shards[i], /*with_shard_index=*/true);
  }
  out << "]";
  if (directory_enabled) {
    out << ", \"directory\": {"
        << "\"hydrations_fresh\": " << directory.hydrations_fresh
        << ", \"hydrations_restored\": " << directory.hydrations_restored
        << ", \"evictions\": " << directory.evictions
        << ", \"discards\": " << directory.discards
        << ", \"parks\": " << directory.parks
        << ", \"hydrate_errors\": " << directory.hydrate_errors
        << ", \"evict_errors\": " << directory.evict_errors
        << ", \"resident\": " << directory.resident
        << ", \"capacity\": " << directory.capacity << "}";
  }
  if (!tenants.empty()) {
    out << ", \"tenants\": [";
    for (size_t i = 0; i < tenants.size(); ++i) {
      if (i > 0) out << ", ";
      const TenantStatsSnapshot& t = tenants[i];
      out << "{\"tenant\": "
          << (t.is_other ? std::string("\"other\"")
                         : std::to_string(t.tenant_id))
          << ", \"weight\": " << FormatDouble(t.weight, 3)
          << ", \"priority\": \""
          << TenantPriorityName(static_cast<TenantPriority>(t.priority))
          << "\""
          << ", \"admitted\": " << t.admitted
          << ", \"rejected\": " << t.rejected
          << ", \"in_flight\": " << t.in_flight << "}";
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

}  // namespace freeway
