#ifndef FREEWAYML_RUNTIME_BOUNDED_QUEUE_H_
#define FREEWAYML_RUNTIME_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/stopwatch.h"

namespace freeway {

/// Bounded multi-producer / single-consumer mailbox with on-demand consumer
/// scheduling — the per-shard batch queue behind StreamRuntime.
///
/// The consumer is not a dedicated thread: it is *activated* on demand.
/// A push into an idle queue returns `activate_consumer = true`, telling
/// the caller to schedule exactly one drain task; that task calls Pop in a
/// loop and, when Pop finds the queue empty, the consumer is atomically
/// deactivated (so the next push re-activates). This keeps ordering
/// trivially FIFO per queue, never parks a pool worker on an empty queue,
/// and makes the "is a worker running?" question race-free because
/// activation and queue state change under one lock.
///
/// Overload behaviour is chosen per push: PushBlocking applies
/// backpressure (the producer waits for space), PushShedding makes room by
/// removing the oldest item matching a victim predicate and falls back to
/// blocking when nothing qualifies. Close() rejects subsequent pushes and
/// wakes blocked producers; items already accepted remain poppable so a
/// shutdown can drain cleanly.
template <typename T>
class BoundedQueue {
 public:
  /// Outcome of one push.
  struct PushResult {
    /// False only when the queue was closed (item not enqueued).
    bool accepted = false;
    /// True when the caller must schedule a consumer drain task.
    bool activate_consumer = false;
    /// True when an existing item was shed to make room.
    bool shed = false;
    /// TryPush only: the queue was full (and open), so the item was
    /// rejected without waiting. Distinguishes overload from closure.
    bool rejected_full = false;
    /// Wall time this producer spent blocked waiting for space.
    int64_t blocked_micros = 0;
    /// The item removed by a shedding push (set exactly when `shed`), so
    /// the caller can release any accounting booked against it.
    std::optional<T> victim;
  };

  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity > 0 ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Backpressure push: blocks while the queue is full (until space frees
  /// or the queue closes).
  PushResult PushBlocking(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    return PushLocked(std::move(lock), std::move(item));
  }

  /// Admission-control push: never waits. When the queue is full the item
  /// is rejected with `rejected_full = true` so the caller can propagate
  /// backpressure out-of-band (e.g. an OVERLOAD reply on a network
  /// connection) instead of stalling its thread. Closed queues reject with
  /// `rejected_full = false`, matching the other push flavours.
  PushResult TryPush(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!closed_ && items_.size() >= capacity_) {
      PushResult result;
      result.rejected_full = true;
      return result;
    }
    return PushLocked(std::move(lock), std::move(item));
  }

  /// Load-shedding push: when full, removes the oldest item for which
  /// `victim(item)` is true and enqueues in its place. When no item
  /// qualifies (e.g. the queue holds only must-keep work), degrades to the
  /// blocking behaviour.
  template <typename Pred>
  PushResult PushShedding(T item, Pred&& victim) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!closed_ && items_.size() >= capacity_) {
      for (auto it = items_.begin(); it != items_.end(); ++it) {
        if (victim(*it)) {
          T dropped = std::move(*it);
          items_.erase(it);
          PushResult result = PushLocked(std::move(lock), std::move(item));
          result.shed = true;
          result.victim = std::move(dropped);
          return result;
        }
      }
    }
    return PushLocked(std::move(lock), std::move(item));
  }

  /// Non-blocking load-shedding push: like PushShedding, but when the
  /// queue is full and no item qualifies as a victim (only must-keep work
  /// is queued) the item is rejected with `rejected_full = true` instead of
  /// degrading to backpressure — the TrySubmit flavour, for callers that
  /// must never stall.
  template <typename Pred>
  PushResult TryPushShedding(T item, Pred&& victim) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!closed_ && items_.size() >= capacity_) {
      for (auto it = items_.begin(); it != items_.end(); ++it) {
        if (victim(*it)) {
          T dropped = std::move(*it);
          items_.erase(it);
          PushResult result = PushLocked(std::move(lock), std::move(item));
          result.shed = true;
          result.victim = std::move(dropped);
          return result;
        }
      }
      PushResult result;
      result.rejected_full = true;
      return result;
    }
    return PushLocked(std::move(lock), std::move(item));
  }

  /// Consumer side: moves the oldest item into `*out` and returns true, or
  /// — when the queue is empty — deactivates the consumer and returns
  /// false. Only the currently activated consumer may call this.
  bool Pop(T* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) {
      consumer_active_ = false;
      idle_.notify_all();
      return false;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    space_available_.notify_one();
    return true;
  }

  /// Rejects all subsequent pushes and wakes blocked producers. Already
  /// accepted items stay poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    space_available_.notify_all();
  }

  /// Removes and returns every queued item without consuming them — the
  /// no-drain shutdown path, where the caller accounts for the abandoned
  /// items instead of processing them. Wakes blocked producers (space
  /// freed) and idle waiters (queue now empty).
  std::deque<T> TakeAll() {
    std::deque<T> taken;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      taken.swap(items_);
      if (!consumer_active_) idle_.notify_all();
    }
    space_available_.notify_all();
    return taken;
  }

  /// Blocks until the queue is empty and the consumer has deactivated —
  /// i.e. all items accepted before the call are fully consumed.
  void WaitIdle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return items_.empty() && !consumer_active_; });
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// Current fill fraction in [0, 1] — the queue-side pressure signal.
  double fill() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<double>(items_.size()) / static_cast<double>(capacity_);
  }

  /// Deepest the queue has ever been.
  size_t high_water() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  /// Completes a push that already holds the lock: waits for space, then
  /// enqueues and decides consumer activation.
  PushResult PushLocked(std::unique_lock<std::mutex> lock, T item) {
    PushResult result;
    if (items_.size() >= capacity_ && !closed_) {
      Stopwatch blocked;
      space_available_.wait(
          lock, [this] { return items_.size() < capacity_ || closed_; });
      result.blocked_micros = blocked.ElapsedMicros();
    }
    if (closed_) return result;
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    result.accepted = true;
    if (!consumer_active_) {
      consumer_active_ = true;
      result.activate_consumer = true;
    }
    return result;
  }

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable space_available_;
  std::condition_variable idle_;
  std::deque<T> items_;
  size_t high_water_ = 0;
  bool consumer_active_ = false;
  bool closed_ = false;
};

}  // namespace freeway

#endif  // FREEWAYML_RUNTIME_BOUNDED_QUEUE_H_
