#ifndef FREEWAYML_RUNTIME_STREAM_RUNTIME_H_
#define FREEWAYML_RUNTIME_STREAM_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/pipeline.h"
#include "runtime/runtime_stats.h"

namespace freeway {

/// What Submit does when a shard queue is full.
enum class OverloadPolicy {
  /// Backpressure: the producer blocks until the drain task frees space.
  kBlock,
  /// Load shedding: under *sustained* overload (the shard's arrival-rate
  /// adjuster reports a rate at or above its high watermark) the oldest
  /// unlabeled batch in the queue is dropped to make room. Labeled batches
  /// are never shed — they are training data — and transient bursts that
  /// the adjuster has not confirmed as overload still get backpressure, so
  /// shedding only engages when the paper's rate-adaptation signal says
  /// the stream genuinely outruns the pipeline.
  kShed,
};

/// Configuration of the multi-stream runtime.
struct RuntimeOptions {
  /// Number of independent pipeline shards. Streams are mapped to shards
  /// by `stream_id % num_shards`.
  size_t num_shards = 8;
  /// Capacity of each shard's bounded batch queue.
  size_t queue_capacity = 64;
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
  /// Arrival-rate adjuster driving shed decisions; `high_rate` is the
  /// sustained-overload watermark in batches/sec, and queue fill serves as
  /// the pressure input.
  RateAdjusterOptions overload_rate;
  /// Options for every shard's StreamPipeline.
  PipelineOptions pipeline;
  /// Forward the measured producer-side arrival rate into each shard
  /// pipeline (StreamPipeline::SetExternalRate) so the paper's rate-aware
  /// adjuster reacts to the offered load, not the drain rate.
  bool forward_rate_signal = true;
  /// When false, no drain tasks are scheduled on the thread pool; work
  /// accumulates until PumpShard() is called. For deterministic tests of
  /// the queue policies; production callers leave this true.
  bool schedule_workers = true;
  /// Observability sink. When non-null the runtime registers
  /// `freeway_runtime_batches_total{event="enqueued"|"processed"|"shed"|
  /// "error"}` counters, a `freeway_runtime_queue_wait_seconds` histogram,
  /// and one `freeway_runtime_queue_depth{shard="N"}` gauge per shard, and
  /// attaches every shard pipeline (stage histograms and push counters
  /// aggregate across shards under shared names). The registry must outlive
  /// the runtime. Null (the default) disables all instrumentation.
  MetricsRegistry* metrics = nullptr;
};

/// One inference outcome delivered by the runtime.
struct StreamResult {
  uint64_t stream_id = 0;
  /// `Batch::index` of the unlabeled batch that produced this report.
  int64_t batch_index = 0;
  InferenceReport report;
};

/// Sharded executor serving many concurrent streams on the process thread
/// pool. Each shard owns a StreamPipeline and a bounded MPSC queue;
/// producers call Submit from any thread, and drain tasks — scheduled on
/// demand, one active per shard — pop batches and push them through the
/// shard's pipeline. Because a shard never has more than one active drain
/// task and its queue is FIFO, batches of a stream are processed in
/// submission order.
///
/// Results for unlabeled batches are delivered through the constructor
/// callback when one is given (invoked on drain-task threads — the
/// callback must be thread-safe and must not call Shutdown/Flush), or
/// accumulated internally and collected with Drain().
class StreamRuntime {
 public:
  using ResultCallback = std::function<void(const StreamResult&)>;

  StreamRuntime(const Model& prototype, const RuntimeOptions& options = {},
                ResultCallback on_result = nullptr);

  /// Calls Shutdown().
  ~StreamRuntime();

  StreamRuntime(const StreamRuntime&) = delete;
  StreamRuntime& operator=(const StreamRuntime&) = delete;

  /// Routes one batch to its stream's shard: enqueues, blocks for space,
  /// or sheds per the overload policy. Thread-safe. Returns
  /// FailedPrecondition after Shutdown().
  Status Submit(uint64_t stream_id, Batch batch);

  /// Blocks until every batch accepted before the call has been processed.
  /// Concurrent Submits may keep individual shards busy past the return.
  void Flush();

  /// Stops accepting new work, processes everything already accepted, and
  /// returns once all shards are idle. Idempotent.
  void Shutdown();

  /// Takes the results accumulated since the last Drain (callback-less
  /// mode; empty when a callback was installed).
  std::vector<StreamResult> Drain();

  /// Point-in-time stats: per-shard counters + totals. Exact when the
  /// runtime is quiescent (after Flush/Shutdown), approximate mid-flight.
  RuntimeStatsSnapshot Snapshot() const;

  /// Drains one shard inline on the calling thread; returns the number of
  /// batches processed. The manual-mode pump (schedule_workers = false);
  /// must not race with a scheduled drain task for the same shard.
  size_t PumpShard(size_t shard);

  size_t num_shards() const { return shards_.size(); }
  size_t ShardOf(uint64_t stream_id) const {
    return static_cast<size_t>(stream_id % shards_.size());
  }
  /// The shard's pipeline. Safe to inspect only while the shard is idle.
  const StreamPipeline& shard_pipeline(size_t shard) const;

 private:
  struct Shard;

  /// Runtime-level handles, null while options_.metrics is null. The
  /// counters mirror ShardCounters one-for-one so the exposition obeys the
  /// same invariant: enqueued = processed + shed + in_flight.
  struct RuntimeMetrics {
    Counter* enqueued = nullptr;
    Counter* processed = nullptr;
    Counter* shed = nullptr;
    Counter* errors = nullptr;
    Histogram* queue_wait_seconds = nullptr;
  };

  /// Body of a drain task: pops until the shard queue is empty.
  size_t DrainShard(Shard* shard);
  void Deliver(StreamResult result);

  RuntimeOptions options_;
  RuntimeMetrics metrics_;
  ResultCallback on_result_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::mutex results_mutex_;
  std::vector<StreamResult> results_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace freeway

#endif  // FREEWAYML_RUNTIME_STREAM_RUNTIME_H_
