#ifndef FREEWAYML_RUNTIME_STREAM_RUNTIME_H_
#define FREEWAYML_RUNTIME_STREAM_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/pipeline.h"
#include "directory/directory.h"
#include "directory/placement.h"
#include "fault/checkpoint.h"
#include "runtime/runtime_stats.h"

namespace freeway {

class PipelineWorkingSet;

/// What Submit does when a shard queue is full.
enum class OverloadPolicy {
  /// Backpressure: the producer blocks until the drain task frees space.
  kBlock,
  /// Load shedding: under *sustained* overload (the shard's arrival-rate
  /// adjuster reports a rate at or above its high watermark) the oldest
  /// unlabeled batch in the queue is dropped to make room. Labeled batches
  /// are never shed — they are training data — and transient bursts that
  /// the adjuster has not confirmed as overload still get backpressure, so
  /// shedding only engages when the paper's rate-adaptation signal says
  /// the stream genuinely outruns the pipeline.
  kShed,
};

/// Supervision + checkpointing knobs of the fault-tolerant runtime.
struct FaultToleranceOptions {
  /// Master switch. Off (the default) preserves the legacy behaviour:
  /// a failed push is counted as a processed error and the batch is gone.
  bool enabled = false;
  /// Directory of the per-shard checkpoint store. Required when enabled.
  std::string checkpoint_dir;
  /// A shard writes a checkpoint after this many successful pushes (and
  /// once at construction, so the very first failure has a restore point).
  size_t checkpoint_interval_batches = 64;
  /// Push attempts per batch after the first failure. Each retry restores
  /// the shard pipeline from its last checkpoint first; a batch that fails
  /// every attempt is quarantined to the dead-letter queue.
  size_t max_batch_retries = 2;
  /// Exponential backoff between retries: initial delay, doubling up to
  /// the cap.
  int64_t backoff_initial_micros = 100;
  int64_t backoff_max_micros = 100000;
  /// Checkpoint versions kept per shard.
  size_t keep_checkpoints = 2;
  /// fsync checkpoint files (CheckpointStoreOptions::fsync). Defaults off:
  /// the runtime checkpoints frequently and a torn write is already
  /// survived via the previous version; durability-critical deployments
  /// turn it on.
  bool fsync_checkpoints = false;
  /// Invoked (on the shard's drain thread) after every successful shard
  /// checkpoint with the shard index and the number of batches that shard
  /// has consumed so far (processed + shed + quarantined — every retire
  /// path whose effect the checkpoint now covers). The serving layer
  /// anchors ingest-log truncation on it: once a batch is both consumed
  /// and checkpointed, its write-ahead record is only history. Must be
  /// thread-safe and must not call back into the runtime.
  std::function<void(size_t shard, uint64_t consumed)> on_checkpoint;
};

/// Configuration of the multi-stream runtime.
///
/// Validation policy: zero is never a usable value for `num_shards` (it
/// would make the stream→shard mapping divide by zero) or `queue_capacity`
/// (every Submit would deadlock against a queue that can hold nothing), so
/// the constructor clamps both to 1 and logs a warning — a misconfigured
/// runtime degrades to a serial one instead of crashing or hanging. The
/// clamped values are visible through num_shards() / queue_capacity().
struct RuntimeOptions {
  /// Number of independent pipeline shards. Streams are mapped to shards
  /// by `stream_id % num_shards`. 0 is clamped to 1.
  size_t num_shards = 8;
  /// Capacity of each shard's bounded batch queue. 0 is clamped to 1.
  size_t queue_capacity = 64;
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
  /// Arrival-rate adjuster driving shed decisions; `high_rate` is the
  /// sustained-overload watermark in batches/sec, and queue fill serves as
  /// the pressure input.
  RateAdjusterOptions overload_rate;
  /// Options for every shard's StreamPipeline.
  PipelineOptions pipeline;
  /// Forward the measured producer-side arrival rate into each shard
  /// pipeline (StreamPipeline::SetExternalRate) so the paper's rate-aware
  /// adjuster reacts to the offered load, not the drain rate.
  bool forward_rate_signal = true;
  /// When false, no drain tasks are scheduled on the thread pool; work
  /// accumulates until PumpShard() is called. For deterministic tests of
  /// the queue policies; production callers leave this true.
  bool schedule_workers = true;
  /// Observability sink. When non-null the runtime registers
  /// `freeway_runtime_batches_total{event="enqueued"|"processed"|"shed"|
  /// "error"}` counters, a `freeway_runtime_queue_wait_seconds` histogram,
  /// and one `freeway_runtime_queue_depth{shard="N"}` gauge per shard, and
  /// attaches every shard pipeline (stage histograms and push counters
  /// aggregate across shards under shared names). The registry must outlive
  /// the runtime. Null (the default) disables all instrumentation.
  /// With fault tolerance enabled it additionally registers the
  /// `freeway_fault_*` family: retries/quarantined/restores totals,
  /// `freeway_fault_checkpoints_total{result="ok"|"error"}`, checkpoint
  /// size and write-latency histograms.
  MetricsRegistry* metrics = nullptr;
  /// Shard supervision + checkpointing (see FaultToleranceOptions).
  FaultToleranceOptions fault;
  /// Stream directory (see DirectoryOptions). Enabled, the runtime serves
  /// millions of logical streams: consistent-hash placement, one pipeline
  /// per *stream* (not per shard) hydrated on demand into a bounded LRU
  /// working set and evicted to its parked checkpoint, plus optional
  /// per-tenant weighted admission on the TrySubmit path. With fault
  /// tolerance also on, interval checkpointing and supervised recovery
  /// operate per stream through the park store instead of per shard.
  DirectoryOptions directory;
  /// When false, Shutdown() abandons still-queued batches instead of
  /// processing them: each is counted `undrained` in the stats snapshot,
  /// and labeled ones (training data) are preserved on the dead-letter
  /// queue rather than discarded.
  bool drain_on_shutdown = true;
};

/// Producer-supplied context of one submit: which tenant the batch belongs
/// to and the priority band it rides in. The default (tenant 0, standard)
/// reproduces pre-directory behaviour, so two-argument Submit calls are
/// unaffected. `priority` drives shed-victim selection (a queued unlabeled
/// batch is only shed for an incoming batch of an equal or higher band);
/// admission *quotas* use the tenant's configured priority, so a client
/// cannot self-promote past its contract.
struct SubmitContext {
  uint32_t tenant_id = 0;
  TenantPriority priority = TenantPriority::kStandard;
};

/// One inference outcome delivered by the runtime.
struct StreamResult {
  uint64_t stream_id = 0;
  /// `Batch::index` of the unlabeled batch that produced this report.
  int64_t batch_index = 0;
  InferenceReport report;
};

/// One batch on the dead-letter queue: quarantined after exhausting its
/// retry budget, or abandoned (labeled only) by a no-drain shutdown. The
/// batch itself is preserved so an operator can inspect, repair, and
/// resubmit it — labeled training data is never silently dropped.
struct DeadLetter {
  uint64_t stream_id = 0;
  size_t shard = 0;
  Batch batch;
  /// Status of the final failed attempt (or the shutdown reason).
  Status error;
  /// Push attempts made before quarantine (0 for shutdown abandonment).
  size_t attempts = 0;
};

/// Sharded executor serving many concurrent streams on the process thread
/// pool. Each shard owns a StreamPipeline and a bounded MPSC queue;
/// producers call Submit from any thread, and drain tasks — scheduled on
/// demand, one active per shard — pop batches and push them through the
/// shard's pipeline. Because a shard never has more than one active drain
/// task and its queue is FIFO, batches of a stream are processed in
/// submission order.
///
/// Results for unlabeled batches are delivered through the constructor
/// callback when one is given (invoked on drain-task threads — the
/// callback must be thread-safe and must not call Shutdown/Flush), or
/// accumulated internally and collected with Drain().
class StreamRuntime {
 public:
  using ResultCallback = std::function<void(const StreamResult&)>;

  StreamRuntime(const Model& prototype, const RuntimeOptions& options = {},
                ResultCallback on_result = nullptr);

  /// Calls Shutdown().
  ~StreamRuntime();

  StreamRuntime(const StreamRuntime&) = delete;
  StreamRuntime& operator=(const StreamRuntime&) = delete;

  /// Routes one batch to its stream's shard: enqueues, blocks for space,
  /// or sheds per the overload policy. Thread-safe. Returns
  /// FailedPrecondition after Shutdown().
  Status Submit(uint64_t stream_id, Batch batch, SubmitContext context = {});

  /// Non-blocking admission-control variant for serving frontends that must
  /// never stall (e.g. a network event loop): identical to Submit except
  /// that a full shard queue under kBlock returns Unavailable immediately —
  /// counted `rejected` in the shard stats — instead of applying
  /// backpressure to the calling thread. Under kShed with confirmed
  /// overload it sheds exactly like Submit; an unconfirmed burst against a
  /// full queue is also rejected rather than blocked. The caller owns
  /// retry/backoff (StreamServer turns the rejection into an
  /// OVERLOAD(retry_after) reply so backpressure propagates to the remote
  /// producer). With weighted admission enabled, a tenant over its share of
  /// a pressured queue is also rejected Unavailable — unless the batch is
  /// labeled (training data is never quota-rejected).
  Status TrySubmit(uint64_t stream_id, Batch batch, SubmitContext context = {});

  /// Blocks until every batch accepted before the call has been processed.
  /// Concurrent Submits may keep individual shards busy past the return.
  void Flush();

  /// Stops accepting new work, processes everything already accepted, and
  /// returns once all shards are idle. Idempotent.
  void Shutdown();

  /// Takes the results accumulated since the last Drain (callback-less
  /// mode; empty when a callback was installed).
  std::vector<StreamResult> Drain();

  /// Takes the accumulated dead letters (quarantined + abandoned batches).
  /// Thread-safe; each letter is delivered exactly once.
  std::vector<DeadLetter> TakeDeadLetters();

  /// Point-in-time stats: per-shard counters + totals. Exact when the
  /// runtime is quiescent (after Flush/Shutdown), approximate mid-flight.
  RuntimeStatsSnapshot Snapshot() const;

  /// Drains one shard inline on the calling thread; returns the number of
  /// batches processed. The manual-mode pump (schedule_workers = false);
  /// must not race with a scheduled drain task for the same shard.
  size_t PumpShard(size_t shard);

  size_t num_shards() const { return shards_.size(); }
  /// Post-validation queue capacity (RuntimeOptions clamp policy).
  size_t queue_capacity() const { return options_.queue_capacity; }
  /// The shard serving `stream_id`: modulo placement in legacy mode, the
  /// consistent-hash ring in directory mode.
  size_t ShardOf(uint64_t stream_id) const {
    return ring_ != nullptr ? ring_->ShardOf(stream_id)
                            : static_cast<size_t>(stream_id % shards_.size());
  }
  bool directory_enabled() const { return ring_ != nullptr; }
  /// The shard's pipeline. Safe to inspect only while the shard is idle.
  /// Legacy mode only: in directory mode shards own a working set of
  /// per-stream pipelines instead (see resident_stream_pipeline).
  const StreamPipeline& shard_pipeline(size_t shard) const;
  /// Mutable access for recovery tooling (e.g. restoring a checkpoint into
  /// a fresh runtime). Same idle-only contract as shard_pipeline.
  StreamPipeline* mutable_shard_pipeline(size_t shard);
  /// Directory mode: the stream's pipeline, hydrating it into the working
  /// set if parked (so inspection is always possible, at the usual
  /// hydration cost). Idle-only contract — this drives the shard's working
  /// set from the calling thread. Legacy mode falls back to the shard
  /// pipeline.
  StreamPipeline* resident_stream_pipeline(uint64_t stream_id);
  /// The shard's working set; null in legacy mode. Idle-only contract.
  const PipelineWorkingSet* shard_working_set(size_t shard) const;

  /// The runtime's checkpoint store; null while fault tolerance is off.
  CheckpointStore* checkpoint_store() { return store_.get(); }
  /// The directory's parked-stream store; null while the directory is off.
  CheckpointStore* park_store() { return park_store_.get(); }

  /// Writes a checkpoint of shard `shard` now (also done automatically at
  /// the configured interval and at shutdown). Idle-only contract.
  Status CheckpointShard(size_t shard);

 private:
  struct Shard;
  /// One queued unit of work (stream id + batch + enqueue timestamp);
  /// defined in the .cc alongside Shard.
  struct ShardItem;

  /// Runtime-level handles, null while options_.metrics is null. The
  /// counters mirror ShardCounters one-for-one so the exposition obeys the
  /// same invariant: enqueued = processed + shed + quarantined + undrained
  /// + in_flight.
  struct RuntimeMetrics {
    Counter* enqueued = nullptr;
    Counter* processed = nullptr;
    Counter* shed = nullptr;
    Counter* rejected = nullptr;
    Counter* errors = nullptr;
    Histogram* queue_wait_seconds = nullptr;
    /// freeway_fault_* family, registered only in fault-tolerant mode.
    Counter* fault_retries = nullptr;
    Counter* fault_quarantined = nullptr;
    Counter* fault_restores = nullptr;
    Counter* fault_checkpoints_ok = nullptr;
    Counter* fault_checkpoints_error = nullptr;
    Histogram* fault_checkpoint_bytes = nullptr;
    Histogram* fault_checkpoint_write_seconds = nullptr;
  };

  /// Shared body of Submit / TrySubmit: rate measurement, tenant
  /// admission, policy-selected push, counter/metric accounting, and
  /// drain-task activation.
  Status SubmitInternal(uint64_t stream_id, Batch batch, SubmitContext context,
                        bool allow_block);
  /// Body of a drain task: pops until the shard queue is empty.
  size_t DrainShard(Shard* shard);
  void Deliver(StreamResult result);

  /// One push attempt: drain failpoint -> rate signal -> pipeline push ->
  /// result delivery on success.
  Status PushOnce(Shard* shard, const ShardItem& item);
  /// Supervised processing of one popped item: push, and on failure
  /// restore-retry with exponential backoff, quarantining to the
  /// dead-letter queue when the retry budget is exhausted. Also books the
  /// processed/quarantined counters and the periodic checkpoint.
  void ProcessWithRecovery(Shard* shard, ShardItem item);
  /// Swaps in a pipeline restored from the latest valid checkpoint (fresh
  /// rebuild from the prototype when no checkpoint validates). Legacy mode
  /// restores the shard pipeline; directory mode discards the stream's
  /// resident pipeline so the retry re-hydrates it from its last park.
  void RestoreShardPipeline(Shard* shard, uint64_t stream_id);
  /// Snapshot + store write for one shard, with fault metrics.
  Status WriteShardCheckpoint(Shard* shard);
  void Quarantine(Shard* shard, ShardItem item, Status error,
                  size_t attempts);

  RuntimeOptions options_;
  RuntimeMetrics metrics_;
  ResultCallback on_result_;
  /// Clone of the construction prototype, kept for pipeline rebuilds when
  /// a shard has no restorable checkpoint.
  std::unique_ptr<Model> prototype_;
  std::unique_ptr<CheckpointStore> store_;
  /// Directory-mode state: placement ring, parked-stream store, and the
  /// optional tenant admission controller. All null in legacy mode.
  std::unique_ptr<ConsistentHashRing> ring_;
  std::unique_ptr<CheckpointStore> park_store_;
  std::unique_ptr<TenantAdmission> admission_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::mutex results_mutex_;
  std::vector<StreamResult> results_;
  std::mutex dead_letters_mutex_;
  std::vector<DeadLetter> dead_letters_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace freeway

#endif  // FREEWAYML_RUNTIME_STREAM_RUNTIME_H_
