#ifndef FREEWAYML_FAULT_SNAPSHOT_H_
#define FREEWAYML_FAULT_SNAPSHOT_H_

/// Historical home of SnapshotWriter / SnapshotReader / Crc32. The codec
/// moved to stream/batch_codec.h so the network wire protocol and the
/// checkpoint store share one audited implementation; this header remains
/// so existing fault-layer call sites keep compiling unchanged.

#include "stream/batch_codec.h"

#endif  // FREEWAYML_FAULT_SNAPSHOT_H_
