#ifndef FREEWAYML_FAULT_CHECKPOINT_H_
#define FREEWAYML_FAULT_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace freeway {

/// Options for the on-disk checkpoint store.
struct CheckpointStoreOptions {
  /// Directory all checkpoint files live in (created on first use).
  std::string directory;
  /// Validated versions kept per name; older ones are pruned after each
  /// successful write. >= 1. Keeping two means a crash *during* a write can
  /// never leave a name without a restorable version.
  size_t keep_versions = 2;
  /// fsync file contents before the atomic rename (and the directory after
  /// it), so a renamed checkpoint is durable, not just visible.
  bool fsync = true;
};

/// One stored checkpoint version.
struct CheckpointInfo {
  uint64_t sequence = 0;
  std::string path;
};

/// Versioned, checksummed, atomic on-disk checkpoint store.
///
/// Disk format per file (`<name>-<seq>.ckpt`):
///   u32 magic 'FWCP'  |  u32 format version  |  u64 payload size
///   u32 CRC-32 of the payload  |  payload bytes
///
/// Writes go to `<file>.tmp` first and are renamed into place only after a
/// complete (optionally fsynced) write, so a reader never observes a
/// partial checkpoint: a file either has its final name and validates, or
/// it does not exist. Reads re-verify magic, version, size, and CRC, so
/// truncation and bit flips are rejected with a clean Status — corruption
/// can never produce a silent partial restore.
///
/// Thread-safe: concurrent Write/ReadLatest calls (e.g. different runtime
/// shards sharing one store) serialize on an internal mutex.
///
/// The store keeps an in-memory index of every stored version, built from
/// one directory scan at first use and maintained by Write from then on.
/// The directory-mode runtime parks hundreds of thousands of streams
/// through a single store; re-listing the directory per operation would
/// make parking stream k cost O(k) — O(N^2) across a working-set sweep.
/// Consequence of the index: the store assumes it owns its directory.
/// Checkpoint files added behind a live store's back are not observed
/// until a new store instance scans the directory (mutating file
/// *contents* is still seen immediately — reads validate from disk).
/// Files *removed* behind its back self-heal on read: when ReadLatest
/// finds an indexed file missing from disk it drops the index and rescans
/// once, so external pruning degrades to one extra directory listing
/// instead of a permanent failure.
class CheckpointStore {
 public:
  explicit CheckpointStore(CheckpointStoreOptions options);

  /// Writes `payload` as the next version of `name` and prunes versions
  /// beyond `keep_versions`. Failpoint site: "checkpoint.write".
  Status Write(const std::string& name, const std::vector<char>& payload);

  /// Returns the payload of the newest version of `name` that validates.
  /// A corrupt newest version is skipped (each rejection is clean) and the
  /// next-older one is tried; fails only when no version validates.
  Result<std::vector<char>> ReadLatest(const std::string& name) const;

  /// Reads and validates one checkpoint file. Failpoint site:
  /// "checkpoint.read".
  static Result<std::vector<char>> ReadFile(const std::string& path);

  /// Stored versions of `name`, ascending by sequence.
  Result<std::vector<CheckpointInfo>> List(const std::string& name) const;

  const CheckpointStoreOptions& options() const { return options_; }

 private:
  Status EnsureDirectory() const;
  /// Builds versions_ from one full directory scan. No-op once scanned; a
  /// not-yet-existing directory yields an empty index without latching, so
  /// a directory created by a later Write is still scanned.
  Status EnsureScannedLocked() const;
  Result<std::vector<CheckpointInfo>> ListLocked(
      const std::string& name) const;

  CheckpointStoreOptions options_;
  mutable std::mutex mutex_;
  mutable bool scanned_ = false;
  /// Stored versions per name, ascending by sequence (the newest version is
  /// .back(), and the next write sequence is .back().sequence + 1).
  mutable std::map<std::string, std::vector<CheckpointInfo>> versions_;
};

}  // namespace freeway

#endif  // FREEWAYML_FAULT_CHECKPOINT_H_
