#include "fault/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "fault/failpoint.h"
#include "fault/snapshot.h"

namespace freeway {

namespace fs = std::filesystem;

namespace {

constexpr uint32_t kCheckpointMagic = 0x46574350;  // 'FWCP'
constexpr uint32_t kCheckpointFormatVersion = 1;

struct CheckpointHeader {
  uint32_t magic = kCheckpointMagic;
  uint32_t version = kCheckpointFormatVersion;
  uint64_t payload_size = 0;
  uint32_t crc32 = 0;
};

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

/// RAII fd so every error path below can early-return without leaking.
class ScopedFd {
 public:
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() {
    if (fd_ >= 0) ::close(fd_);
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_;
};

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("checkpoint: write failed for", path));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadAll(int fd, char* data, size_t size, const std::string& path) {
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("checkpoint: read failed for", path));
    }
    if (n == 0) {
      return Status::InvalidArgument("checkpoint: truncated file " + path);
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FsyncPath(const std::string& path) {
  ScopedFd fd(::open(path.c_str(), O_RDONLY));
  if (fd.get() < 0) {
    return Status::IoError(ErrnoMessage("checkpoint: open for fsync", path));
  }
  if (::fsync(fd.get()) != 0) {
    return Status::IoError(ErrnoMessage("checkpoint: fsync failed for", path));
  }
  return Status::OK();
}

/// Parses "<name>-<seq>.ckpt" into its name and sequence. The split point
/// is the *last* '-' whose remainder is all digits, which inverts the
/// writer exactly even for names that themselves contain dashes and digits
/// ("stream-42-7.ckpt" is name "stream-42", sequence 7 — never name
/// "stream" with non-digit sequence "42-7").
bool ParseCheckpointFilename(const std::string& filename, std::string* name,
                             uint64_t* sequence) {
  const std::string suffix = ".ckpt";
  if (filename.size() <= suffix.size()) return false;
  if (filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return false;
  }
  const std::string stem =
      filename.substr(0, filename.size() - suffix.size());
  const size_t dash = stem.rfind('-');
  if (dash == std::string::npos || dash == 0 || dash + 1 >= stem.size()) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = dash + 1; i < stem.size(); ++i) {
    const char c = stem[i];
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - (c - '0')) / 10) return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *name = stem.substr(0, dash);
  *sequence = value;
  return true;
}

}  // namespace

CheckpointStore::CheckpointStore(CheckpointStoreOptions options)
    : options_(std::move(options)) {
  if (options_.keep_versions == 0) options_.keep_versions = 1;
}

Status CheckpointStore::EnsureDirectory() const {
  if (options_.directory.empty()) {
    return Status::InvalidArgument("checkpoint: store directory is empty");
  }
  std::error_code ec;
  fs::create_directories(options_.directory, ec);
  if (ec) {
    return Status::IoError("checkpoint: cannot create directory " +
                           options_.directory + ": " + ec.message());
  }
  return Status::OK();
}

Status CheckpointStore::EnsureScannedLocked() const {
  if (scanned_) return Status::OK();
  std::error_code ec;
  fs::directory_iterator it(options_.directory, ec);
  if (ec) {
    // A store directory nothing was written to yet simply holds no
    // versions (and stays unlatched so a later Write's mkdir is scanned);
    // only an existing-but-unlistable directory is an I/O error.
    if (!fs::exists(options_.directory)) return Status::OK();
    return Status::IoError("checkpoint: cannot list directory " +
                           options_.directory + ": " + ec.message());
  }
  versions_.clear();
  for (const auto& entry : it) {
    std::string name;
    uint64_t sequence = 0;
    if (!ParseCheckpointFilename(entry.path().filename().string(), &name,
                                 &sequence)) {
      continue;
    }
    versions_[name].push_back({sequence, entry.path().string()});
  }
  for (auto& [name, versions] : versions_) {
    std::sort(versions.begin(), versions.end(),
              [](const CheckpointInfo& a, const CheckpointInfo& b) {
                return a.sequence < b.sequence;
              });
  }
  scanned_ = true;
  return Status::OK();
}

Result<std::vector<CheckpointInfo>> CheckpointStore::ListLocked(
    const std::string& name) const {
  RETURN_IF_ERROR(EnsureScannedLocked());
  auto it = versions_.find(name);
  if (it == versions_.end()) return std::vector<CheckpointInfo>{};
  return it->second;
}

Status CheckpointStore::Write(const std::string& name,
                              const std::vector<char>& payload) {
  FREEWAY_FAILPOINT("checkpoint.write");
  if (name.empty() || name.find('/') != std::string::npos) {
    return Status::InvalidArgument("checkpoint: invalid name \"" + name + "\"");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  RETURN_IF_ERROR(EnsureDirectory());
  // The index resumes after whatever the directory already held at scan
  // time, so restarts never reuse a sequence number.
  RETURN_IF_ERROR(EnsureScannedLocked());
  std::vector<CheckpointInfo>& versions = versions_[name];
  const uint64_t sequence = versions.empty() ? 1 : versions.back().sequence + 1;

  CheckpointHeader header;
  header.payload_size = payload.size();
  header.crc32 = Crc32(payload.data(), payload.size());

  const fs::path final_path =
      fs::path(options_.directory) /
      (name + "-" + std::to_string(sequence) + ".ckpt");
  const fs::path tmp_path = final_path.string() + ".tmp";

  {
    ScopedFd fd(::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644));
    if (fd.get() < 0) {
      return Status::IoError(
          ErrnoMessage("checkpoint: cannot create", tmp_path.string()));
    }
    RETURN_IF_ERROR(WriteAll(fd.get(),
                             reinterpret_cast<const char*>(&header),
                             sizeof(header), tmp_path.string()));
    RETURN_IF_ERROR(
        WriteAll(fd.get(), payload.data(), payload.size(), tmp_path.string()));
    if (options_.fsync && ::fsync(fd.get()) != 0) {
      return Status::IoError(
          ErrnoMessage("checkpoint: fsync failed for", tmp_path.string()));
    }
  }

  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return Status::IoError("checkpoint: rename to " + final_path.string() +
                           " failed: " + ec.message());
  }
  if (options_.fsync) {
    RETURN_IF_ERROR(FsyncPath(options_.directory));
  }
  versions.push_back({sequence, final_path.string()});

  // Prune only after the new version is durably in place.
  while (versions.size() > options_.keep_versions) {
    fs::remove(versions.front().path, ec);
    versions.erase(versions.begin());
  }
  return Status::OK();
}

Result<std::vector<char>> CheckpointStore::ReadFile(const std::string& path) {
  FREEWAY_FAILPOINT("checkpoint.read");
  ScopedFd fd(::open(path.c_str(), O_RDONLY));
  if (fd.get() < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("checkpoint: no such file " + path);
    }
    return Status::IoError(ErrnoMessage("checkpoint: cannot open", path));
  }

  CheckpointHeader header;
  RETURN_IF_ERROR(
      ReadAll(fd.get(), reinterpret_cast<char*>(&header), sizeof(header), path));
  if (header.magic != kCheckpointMagic) {
    return Status::InvalidArgument("checkpoint: bad magic in " + path);
  }
  if (header.version != kCheckpointFormatVersion) {
    return Status::InvalidArgument(
        "checkpoint: unsupported format version " +
        std::to_string(header.version) + " in " + path);
  }

  std::error_code ec;
  const uintmax_t file_size = fs::file_size(path, ec);
  if (ec) {
    return Status::IoError("checkpoint: cannot stat " + path + ": " +
                           ec.message());
  }
  if (file_size != sizeof(header) + header.payload_size) {
    return Status::InvalidArgument(
        "checkpoint: payload size mismatch in " + path + " (header says " +
        std::to_string(header.payload_size) + ", file holds " +
        std::to_string(file_size - sizeof(header)) + ")");
  }

  std::vector<char> payload(header.payload_size);
  if (!payload.empty()) {
    RETURN_IF_ERROR(ReadAll(fd.get(), payload.data(), payload.size(), path));
  }
  const uint32_t crc = Crc32(payload.data(), payload.size());
  if (crc != header.crc32) {
    return Status::InvalidArgument("checkpoint: CRC mismatch in " + path);
  }
  return payload;
}

Result<std::vector<char>> CheckpointStore::ReadLatest(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Two passes: the in-memory index can name a file that no longer exists
  // when something pruned the directory behind the store's back (operator
  // clean-up, an overlapping store instance). A kNotFound from an *indexed*
  // path therefore invalidates the index and retries once against a fresh
  // scan. Only that exact signal rescans — a name absent from the index
  // stays a plain miss, so the directory-mode hot path (millions of
  // first-hydration misses) never pays O(directory) per lookup.
  for (int pass = 0; pass < 2; ++pass) {
    ASSIGN_OR_RETURN(std::vector<CheckpointInfo> versions, ListLocked(name));
    if (versions.empty()) {
      return Status::NotFound("checkpoint: no versions of \"" + name +
                              "\" in " + options_.directory);
    }
    Status last_error = Status::OK();
    bool index_stale = false;
    for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
      Result<std::vector<char>> payload = ReadFile(it->path);
      if (payload.ok()) return payload;
      last_error = payload.status();
      if (pass == 0 && last_error.code() == StatusCode::kNotFound) {
        index_stale = true;
        break;
      }
    }
    if (index_stale) {
      scanned_ = false;
      continue;
    }
    return Status(last_error.code(),
                  "checkpoint: no valid version of \"" + name +
                      "\"; newest rejection: " + last_error.message());
  }
  return Status::NotFound("checkpoint: no versions of \"" + name + "\" in " +
                          options_.directory + " (index was stale)");
}

Result<std::vector<CheckpointInfo>> CheckpointStore::List(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ListLocked(name);
}

}  // namespace freeway
