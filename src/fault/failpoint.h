#ifndef FREEWAYML_FAULT_FAILPOINT_H_
#define FREEWAYML_FAULT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace freeway {
namespace failpoint {

/// What an armed failpoint injects and when. A spec fires `count` failures
/// after letting `skip` triggers pass through, then disarms itself — so a
/// chaos test can say "kill the 6th and 7th drain of shard 0" and the
/// stream recovers on its own schedule.
struct FailPointSpec {
  StatusCode code = StatusCode::kInternal;
  /// Injected error message; empty uses "failpoint <site> fired".
  std::string message;
  /// Triggers that pass through before the first injected failure.
  size_t skip = 0;
  /// Injected failures before the point auto-disarms. SIZE_MAX = forever.
  size_t count = 1;
};

namespace internal {
/// Process-wide count of currently armed failpoints. Exposed so the
/// instrumentation fast path is a single relaxed load when nothing is
/// armed (the same compile-always / attach-to-enable discipline as the
/// observability layer).
extern std::atomic<int> g_armed_count;
inline bool AnyArmed() {
  return g_armed_count.load(std::memory_order_relaxed) != 0;
}
}  // namespace internal

/// Arms (or re-arms, resetting trigger/hit counts) the named site.
void Arm(const std::string& site, FailPointSpec spec = {});

/// Disarms the named site; trigger/hit history stays queryable.
void Disarm(const std::string& site);

/// Disarms everything and clears all history. Tests call this in
/// SetUp/TearDown so armed points never leak across test cases.
void DisarmAll();

/// The instrumentation hook: returns the injected error while the site is
/// armed and due, OK otherwise. One relaxed atomic load when no failpoint
/// is armed anywhere in the process.
Status Check(std::string_view site);

/// Injected failures delivered by the named site so far (across re-arms
/// since the last DisarmAll).
uint64_t Hits(const std::string& site);

}  // namespace failpoint
}  // namespace freeway

/// Propagates an injected failure out of a Status/Result-returning
/// function: `FREEWAY_FAILPOINT("learner.train");`
#define FREEWAY_FAILPOINT(site)                                   \
  do {                                                            \
    if (::freeway::failpoint::internal::AnyArmed()) {             \
      ::freeway::Status _fp = ::freeway::failpoint::Check(site);  \
      if (!_fp.ok()) return _fp;                                  \
    }                                                             \
  } while (false)

#endif  // FREEWAYML_FAULT_FAILPOINT_H_
