#include "fault/failpoint.h"

#include <map>
#include <mutex>

namespace freeway {
namespace failpoint {

namespace internal {
std::atomic<int> g_armed_count{0};
}  // namespace internal

namespace {

struct Point {
  FailPointSpec spec;
  bool armed = false;
  /// Check calls seen while armed (drives the skip window).
  uint64_t triggers = 0;
  /// Failures injected, cumulative across re-arms.
  uint64_t hits = 0;
};

std::mutex& Mutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

std::map<std::string, Point, std::less<>>& Points() {
  static auto* points = new std::map<std::string, Point, std::less<>>;
  return *points;
}

}  // namespace

void Arm(const std::string& site, FailPointSpec spec) {
  std::lock_guard<std::mutex> lock(Mutex());
  Point& point = Points()[site];
  if (!point.armed) {
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  point.spec = std::move(spec);
  point.armed = true;
  point.triggers = 0;
}

void Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Points().find(site);
  if (it == Points().end() || !it->second.armed) return;
  it->second.armed = false;
  internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(Mutex());
  for (auto& [site, point] : Points()) {
    if (point.armed) {
      internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  Points().clear();
}

Status Check(std::string_view site) {
  if (!internal::AnyArmed()) return Status::OK();
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Points().find(site);
  if (it == Points().end() || !it->second.armed) return Status::OK();
  Point& point = it->second;
  ++point.triggers;
  if (point.triggers <= point.spec.skip) return Status::OK();
  const uint64_t fired = point.triggers - point.spec.skip;
  if (fired >= point.spec.count) {
    // Final injected failure: auto-disarm so recovery paths run clean.
    point.armed = false;
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  ++point.hits;
  const std::string message =
      point.spec.message.empty()
          ? "failpoint " + std::string(site) + " fired"
          : point.spec.message;
  return Status(point.spec.code, message);
}

uint64_t Hits(const std::string& site) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Points().find(site);
  return it == Points().end() ? 0 : it->second.hits;
}

}  // namespace failpoint
}  // namespace freeway
