#include "baselines/river.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace freeway {

RiverLearner::RiverLearner(std::unique_ptr<Model> model,
                           const RiverOptions& options)
    : prototype_(model->Clone()),
      model_(std::move(model)),
      options_(options) {
  if (!options_.classical_detector.empty()) {
    classical_ = MakeDriftDetector(options_.classical_detector);
  }
}

std::unique_ptr<Model> RiverLearner::FreshModel() const {
  // Clone the untouched prototype and decorrelate it from previous resets
  // with a small random perturbation.
  std::unique_ptr<Model> fresh = prototype_->Clone();
  Rng rng(0x5eedULL + reinit_counter_);
  std::vector<double> nudge(fresh->ParameterCount());
  for (auto& v : nudge) v = rng.Gaussian(0.0, 0.01);
  fresh->ApplyStep(nudge).CheckOk();
  return fresh;
}

Result<Matrix> RiverLearner::PredictProba(const Matrix& x) {
  return model_->PredictProba(x);
}

Status RiverLearner::Train(const Batch& batch) {
  // Prequential accuracy of the deployed model on this batch feeds the
  // detector *before* the update.
  FREEWAY_ASSIGN_OR_RETURN(double acc,
                           Accuracy(model_.get(), batch.features,
                                    batch.labels));

  if (classical_ != nullptr) {
    // Classical detectors consume per-sample error indicators (their
    // statistics assume Bernoulli inputs); the batch's verdict is the most
    // severe state any sample produced.
    FREEWAY_ASSIGN_OR_RETURN(std::vector<int> predictions,
                             model_->Predict(batch.features));
    DriftState state = DriftState::kStable;
    for (size_t i = 0; i < batch.size(); ++i) {
      const DriftState s = classical_->Add(
          predictions[i] == batch.labels[i] ? 0.0 : 1.0);
      if (s == DriftState::kDrift) {
        state = DriftState::kDrift;
      } else if (s == DriftState::kWarning &&
                 state == DriftState::kStable) {
        state = DriftState::kWarning;
      }
    }
    if (state == DriftState::kDrift) {
      ++drift_count_;
      ++reinit_counter_;
      model_ = background_ != nullptr ? std::move(background_) : FreshModel();
      background_.reset();
    } else if (state == DriftState::kWarning) {
      if (background_ == nullptr) {
        ++reinit_counter_;
        background_ = FreshModel();
      }
    } else {
      background_.reset();
    }
    Result<double> loss = model_->TrainBatch(batch.features, batch.labels);
    if (!loss.ok()) return loss.status();
    if (background_ != nullptr) {
      Result<double> bg =
          background_->TrainBatch(batch.features, batch.labels);
      if (!bg.ok()) return bg.status();
    }
    return Status::OK();
  }

  double mean = 0.0, sd = 0.0;
  if (accuracy_history_.size() >= 5) {
    for (double a : accuracy_history_) mean += a;
    mean /= static_cast<double>(accuracy_history_.size());
    for (double a : accuracy_history_) sd += (a - mean) * (a - mean);
    sd = std::sqrt(sd / static_cast<double>(accuracy_history_.size()));

    const double warning_level =
        mean - std::max(options_.warning_sigmas * sd,
                        options_.warning_min_drop);
    const double drift_level =
        mean - std::max(options_.drift_sigmas * sd, options_.drift_min_drop);
    if (acc < drift_level) {
      // Confirmed drift: promote the background model (or start fresh).
      ++drift_count_;
      ++reinit_counter_;
      model_ = background_ != nullptr ? std::move(background_) : FreshModel();
      background_.reset();
      accuracy_history_.clear();
    } else if (acc < warning_level) {
      if (background_ == nullptr) {
        ++reinit_counter_;
        background_ = FreshModel();
      }
    } else {
      background_.reset();  // Warning cleared.
    }
  }

  accuracy_history_.push_back(acc);
  while (accuracy_history_.size() > options_.detector_window) {
    accuracy_history_.pop_front();
  }

  Result<double> loss = model_->TrainBatch(batch.features, batch.labels);
  if (!loss.ok()) return loss.status();
  if (background_ != nullptr) {
    Result<double> bg = background_->TrainBatch(batch.features, batch.labels);
    if (!bg.ok()) return bg.status();
  }
  return Status::OK();
}

}  // namespace freeway
