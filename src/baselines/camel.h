#ifndef FREEWAYML_BASELINES_CAMEL_H_
#define FREEWAYML_BASELINES_CAMEL_H_

#include <deque>
#include <memory>
#include <vector>

#include "baselines/streaming_learner.h"
#include "common/rng.h"
#include "ml/model.h"

namespace freeway {

/// Options for the Camel baseline's data selection.
struct CamelOptions {
  /// Fraction of each incoming batch kept for training (the "high-quality"
  /// subset nearest its class centroid).
  double keep_ratio = 0.75;
  /// Replay-buffer capacity (samples) used for augmentation.
  size_t buffer_capacity = 2048;
  /// Buffered samples most similar to the current batch appended to each
  /// update, as a fraction of the kept subset.
  double replay_ratio = 0.25;
  uint64_t seed = 17;
};

/// Camel baseline (SIGMOD'22): manages training data for efficient stream
/// learning by (a) *filtering outliers* — samples far from their running
/// class centroid, (b) *selecting* the most valuable remainder by model
/// uncertainty (an extra scoring forward pass over every batch, the cost
/// that makes Camel slower than plain streaming in the paper's performance
/// experiments), and (c) *augmenting* updates with the buffered past
/// samples most similar to the current distribution.
class CamelLearner : public StreamingLearner {
 public:
  CamelLearner(std::unique_ptr<Model> model, const CamelOptions& options = {});

  std::string name() const override { return "Camel"; }
  Result<Matrix> PredictProba(const Matrix& x) override;
  Status Train(const Batch& batch) override;

  size_t buffer_size() const { return buffer_features_.size(); }

 private:
  void UpdateCentroid(int label, std::span<const double> row);

  std::unique_ptr<Model> model_;
  CamelOptions options_;
  Rng rng_;

  /// Running per-class centroids (lazily sized).
  std::vector<std::vector<double>> centroids_;
  std::vector<size_t> centroid_counts_;

  /// Replay buffer.
  std::deque<std::vector<double>> buffer_features_;
  std::deque<int> buffer_labels_;
};

}  // namespace freeway

#endif  // FREEWAYML_BASELINES_CAMEL_H_
