#include "baselines/freeway_adapter.h"

namespace freeway {

FreewayAdapter::FreewayAdapter(const Model& prototype,
                               const LearnerOptions& options)
    : learner_(prototype, options) {}

Result<Matrix> FreewayAdapter::PredictProba(const Matrix& x) {
  FREEWAY_ASSIGN_OR_RETURN(last_report_, learner_.Infer(x));
  return last_report_.proba;
}

Status FreewayAdapter::Train(const Batch& batch) {
  return learner_.Train(batch);
}

Result<std::vector<int>> FreewayAdapter::PrequentialStep(const Batch& batch) {
  FREEWAY_ASSIGN_OR_RETURN(last_report_, learner_.InferThenTrain(batch));
  return last_report_.predictions;
}

}  // namespace freeway
