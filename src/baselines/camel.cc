#include "baselines/camel.h"

#include <algorithm>
#include <numeric>

#include "linalg/matrix.h"

namespace freeway {

CamelLearner::CamelLearner(std::unique_ptr<Model> model,
                           const CamelOptions& options)
    : model_(std::move(model)), options_(options), rng_(options.seed) {
  centroids_.resize(model_->num_classes());
  centroid_counts_.assign(model_->num_classes(), 0);
}

void CamelLearner::UpdateCentroid(int label, std::span<const double> row) {
  auto& centroid = centroids_[static_cast<size_t>(label)];
  auto& count = centroid_counts_[static_cast<size_t>(label)];
  if (centroid.empty()) centroid.assign(row.size(), 0.0);
  ++count;
  const double inv = 1.0 / static_cast<double>(count);
  for (size_t d = 0; d < row.size(); ++d) {
    centroid[d] += (row[d] - centroid[d]) * inv;
  }
}

Result<Matrix> CamelLearner::PredictProba(const Matrix& x) {
  return model_->PredictProba(x);
}

Status CamelLearner::Train(const Batch& batch) {
  const size_t n = batch.size();

  // Outlier score: distance of each sample to its running class centroid
  // (unseen classes score 0 so they are never treated as outliers).
  std::vector<double> outlier(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const auto& centroid =
        centroids_[static_cast<size_t>(batch.labels[i])];
    if (!centroid.empty()) {
      outlier[i] = vec::SquaredDistance(batch.features.Row(i), centroid);
    }
  }
  // The farthest ~20% are treated as noise and excluded from selection.
  std::vector<size_t> candidates(n);
  std::iota(candidates.begin(), candidates.end(), 0);
  const size_t inliers = n - n / 5;
  std::nth_element(candidates.begin(),
                   candidates.begin() + static_cast<ptrdiff_t>(inliers),
                   candidates.end(), [&outlier](size_t a, size_t b) {
                     return outlier[a] < outlier[b];
                   });
  candidates.resize(inliers);

  // Value score: model uncertainty on the true class (1 - p[y]). This
  // scoring pass over the whole batch is Camel's per-batch selection cost.
  Result<Matrix> proba = model_->PredictProba(batch.features);
  if (!proba.ok()) return proba.status();
  std::vector<double> value(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    value[i] =
        1.0 - proba->At(i, static_cast<size_t>(batch.labels[i]));
  }

  // Keep the `keep_ratio` most valuable inliers.
  size_t keep = static_cast<size_t>(options_.keep_ratio *
                                    static_cast<double>(n));
  if (keep == 0) keep = 1;
  if (keep > candidates.size()) keep = candidates.size();
  std::vector<size_t> order = std::move(candidates);
  std::nth_element(order.begin(), order.begin() + static_cast<ptrdiff_t>(keep),
                   order.end(), [&value](size_t a, size_t b) {
                     return value[a] > value[b];
                   });
  order.resize(keep);

  // Replay augmentation: buffered samples nearest the current batch mean.
  const std::vector<double> batch_mean = batch.Mean();
  size_t replay = static_cast<size_t>(options_.replay_ratio *
                                      static_cast<double>(keep));
  std::vector<size_t> replay_idx;
  if (replay > 0 && !buffer_features_.empty()) {
    std::vector<std::pair<double, size_t>> ranked;
    ranked.reserve(buffer_features_.size());
    for (size_t i = 0; i < buffer_features_.size(); ++i) {
      ranked.emplace_back(
          vec::SquaredDistance(buffer_features_[i], batch_mean), i);
    }
    if (replay > ranked.size()) replay = ranked.size();
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<ptrdiff_t>(replay),
                      ranked.end());
    for (size_t i = 0; i < replay; ++i) replay_idx.push_back(ranked[i].second);
  }

  // Assemble the selected + replayed training matrix.
  Matrix train_x(keep + replay_idx.size(), batch.dim());
  std::vector<int> train_y;
  train_y.reserve(keep + replay_idx.size());
  size_t row = 0;
  for (size_t idx : order) {
    train_x.SetRow(row++, batch.features.Row(idx));
    train_y.push_back(batch.labels[idx]);
  }
  for (size_t idx : replay_idx) {
    train_x.SetRow(row++, buffer_features_[idx]);
    train_y.push_back(buffer_labels_[idx]);
  }

  Result<double> loss = model_->TrainBatch(train_x, train_y);
  if (!loss.ok()) return loss.status();

  // Maintain centroids and the replay buffer from the *selected* subset
  // (selected data is what Camel trusts).
  for (size_t idx : order) {
    UpdateCentroid(batch.labels[idx], batch.features.Row(idx));
    buffer_features_.push_back(batch.features.RowVector(idx));
    buffer_labels_.push_back(batch.labels[idx]);
    if (buffer_features_.size() > options_.buffer_capacity) {
      buffer_features_.pop_front();
      buffer_labels_.pop_front();
    }
  }
  return Status::OK();
}

}  // namespace freeway
