#include "baselines/agem.h"

#include "linalg/matrix.h"

namespace freeway {

AGemLearner::AGemLearner(std::unique_ptr<Model> model,
                         const AGemOptions& options)
    : model_(std::move(model)), options_(options), rng_(options.seed) {}

Result<Matrix> AGemLearner::PredictProba(const Matrix& x) {
  return model_->PredictProba(x);
}

Status AGemLearner::Train(const Batch& batch) {
  // Gradient on the incoming batch.
  Result<double> loss =
      model_->ComputeGradient(batch.features, batch.labels, &grad_);
  if (!loss.ok()) return loss.status();

  // Reference gradient on an episodic-memory sample; project if the new
  // gradient conflicts with it.
  if (memory_features_.size() >= 16) {
    size_t ref_n = options_.reference_size < memory_features_.size()
                       ? options_.reference_size
                       : memory_features_.size();
    Matrix ref_x(ref_n, batch.dim());
    std::vector<int> ref_y(ref_n);
    for (size_t i = 0; i < ref_n; ++i) {
      const size_t idx =
          static_cast<size_t>(rng_.NextBelow(memory_features_.size()));
      ref_x.SetRow(i, memory_features_[idx]);
      ref_y[i] = memory_labels_[idx];
    }
    Result<double> ref_loss = model_->ComputeGradient(ref_x, ref_y, &ref_grad_);
    if (!ref_loss.ok()) return ref_loss.status();

    const double dot = vec::Dot(grad_, ref_grad_);
    if (dot < 0.0) {
      const double ref_norm2 = vec::Dot(ref_grad_, ref_grad_);
      if (ref_norm2 > 1e-12) {
        const double scale = dot / ref_norm2;
        for (size_t i = 0; i < grad_.size(); ++i) {
          grad_[i] -= scale * ref_grad_[i];
        }
        ++projections_;
      }
    }
  }

  // SGD step with the (possibly projected) gradient.
  for (auto& g : grad_) g *= -options_.learning_rate;
  FREEWAY_RETURN_NOT_OK(model_->ApplyStep(grad_));

  // Reservoir-style memory maintenance: keep a random subset of this batch.
  size_t take = options_.samples_per_batch < batch.size()
                    ? options_.samples_per_batch
                    : batch.size();
  for (size_t i = 0; i < take; ++i) {
    const size_t idx = static_cast<size_t>(rng_.NextBelow(batch.size()));
    memory_features_.push_back(batch.features.RowVector(idx));
    memory_labels_.push_back(batch.labels[idx]);
    if (memory_features_.size() > options_.memory_capacity) {
      memory_features_.pop_front();
      memory_labels_.pop_front();
    }
  }
  return Status::OK();
}

}  // namespace freeway
