#include "baselines/factory.h"

#include "baselines/agem.h"
#include "baselines/camel.h"
#include "baselines/engine_learners.h"
#include "baselines/freeway_adapter.h"
#include "baselines/river.h"
#include "ml/optimizer.h"

namespace freeway {

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLogisticRegression:
      return "StreamingLR";
    case ModelKind::kMlp:
      return "StreamingMLP";
    case ModelKind::kTabularCnn:
      return "StreamingCNN";
  }
  return "?";
}

std::unique_ptr<Model> MakeModel(ModelKind kind, size_t input_dim,
                                 size_t num_classes,
                                 const ModelConfig& config) {
  switch (kind) {
    case ModelKind::kLogisticRegression:
      return MakeLogisticRegression(input_dim, num_classes, config);
    case ModelKind::kMlp:
      return MakeMlp(input_dim, num_classes, config);
    case ModelKind::kTabularCnn:
      return MakeTabularCnn(input_dim, num_classes, config);
  }
  return nullptr;
}

Result<std::unique_ptr<StreamingLearner>> MakeSystem(
    const std::string& system, ModelKind kind, size_t input_dim,
    size_t num_classes, const ModelConfig& config) {
  std::unique_ptr<Model> model = MakeModel(kind, input_dim, num_classes,
                                           config);
  if (model == nullptr) {
    return Status::InvalidArgument("MakeSystem: unknown model kind");
  }

  if (system == "Plain") {
    return std::unique_ptr<StreamingLearner>(
        std::make_unique<PlainStreamingLearner>(
            std::string("Plain ") + ModelKindName(kind), std::move(model)));
  }
  if (system == "Flink ML") {
    return std::unique_ptr<StreamingLearner>(
        std::make_unique<FlinkMlLearner>(std::move(model)));
  }
  if (system == "Spark MLlib") {
    return std::unique_ptr<StreamingLearner>(
        std::make_unique<SparkMLlibLearner>(std::move(model),
                                            /*num_partitions=*/4,
                                            config.learning_rate));
  }
  if (system == "Alink") {
    // Alink pairs LR with a FOBOS proximal update; for other model kinds it
    // keeps the plain optimizer, matching the paper's LR-only Alink rows.
    if (kind == ModelKind::kLogisticRegression) {
      model = MakeLogisticRegressionWithOptimizer(
          input_dim, num_classes,
          std::make_unique<FobosOptimizer>(config.learning_rate, 1e-5),
          config.seed);
    }
    return std::unique_ptr<StreamingLearner>(
        std::make_unique<AlinkLearner>(std::move(model)));
  }
  if (system == "River") {
    return std::unique_ptr<StreamingLearner>(
        std::make_unique<RiverLearner>(std::move(model)));
  }
  if (system == "Camel") {
    return std::unique_ptr<StreamingLearner>(
        std::make_unique<CamelLearner>(std::move(model)));
  }
  if (system == "A-GEM") {
    AGemOptions opts;
    opts.learning_rate = config.learning_rate;
    return std::unique_ptr<StreamingLearner>(
        std::make_unique<AGemLearner>(std::move(model), opts));
  }
  if (system == "FreewayML") {
    return std::unique_ptr<StreamingLearner>(
        std::make_unique<FreewayAdapter>(*model));
  }
  return Status::NotFound("MakeSystem: unknown system: " + system);
}

const std::vector<std::string>& LrSystemNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "Flink ML", "Spark MLlib", "Alink", "FreewayML"};
  return *names;
}

const std::vector<std::string>& MlpSystemNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "River", "Camel", "A-GEM", "FreewayML"};
  return *names;
}

}  // namespace freeway
