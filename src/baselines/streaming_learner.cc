#include "baselines/streaming_learner.h"

#include <cstring>

namespace freeway {

Result<std::vector<int>> StreamingLearner::Predict(const Matrix& x) {
  FREEWAY_ASSIGN_OR_RETURN(Matrix proba, PredictProba(x));
  std::vector<int> out(proba.rows());
  for (size_t i = 0; i < proba.rows(); ++i) {
    auto row = proba.Row(i);
    size_t best = 0;
    for (size_t j = 1; j < row.size(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = static_cast<int>(best);
  }
  return out;
}

Result<std::vector<int>> StreamingLearner::PrequentialStep(
    const Batch& batch) {
  FREEWAY_ASSIGN_OR_RETURN(std::vector<int> predictions,
                           Predict(batch.features));
  FREEWAY_RETURN_NOT_OK(Train(batch));
  return predictions;
}

PlainStreamingLearner::PlainStreamingLearner(std::string name,
                                             std::unique_ptr<Model> model)
    : name_(std::move(name)), model_(std::move(model)) {}

Result<Matrix> PlainStreamingLearner::PredictProba(const Matrix& x) {
  return model_->PredictProba(x);
}

Status PlainStreamingLearner::Train(const Batch& batch) {
  Result<double> loss = model_->TrainBatch(batch.features, batch.labels);
  return loss.ok() ? Status::OK() : loss.status();
}

namespace internal {
namespace {

uint64_t ByteSwap(uint64_t v) {
  v = ((v & 0x00000000ffffffffULL) << 32) | (v >> 32);
  v = ((v & 0x0000ffff0000ffffULL) << 16) | ((v >> 16) & 0x0000ffff0000ffffULL);
  v = ((v & 0x00ff00ff00ff00ffULL) << 8) | ((v >> 8) & 0x00ff00ff00ff00ffULL);
  return v;
}

}  // namespace

void SerializationRoundTrip(const Matrix& features, std::vector<char>* wire) {
  // JVM stream engines encode every value field-by-field at each operator
  // boundary and decode it on the other side; row-oriented serializers
  // (Kryo, Flink's Row SerDe) emit variable-length byte groups per field.
  // We reproduce that per-byte encode + decode (LEB128-style 7-bit groups
  // over the big-endian value) — a faithful, work-based stand-in for SerDe
  // cost rather than a sleep.
  const size_t n = features.size();
  wire->resize(n * 10);  // <= 10 groups per 64-bit value.
  unsigned char* out = reinterpret_cast<unsigned char*>(wire->data());
  const double* values = features.data();
  size_t pos = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t bits;
    std::memcpy(&bits, &values[i], sizeof(bits));
    bits = ByteSwap(bits);
    // LEB128 encode.
    do {
      unsigned char byte = bits & 0x7f;
      bits >>= 7;
      if (bits != 0) byte |= 0x80;
      out[pos++] = byte;
    } while (bits != 0);
  }
  // LEB128 decode of the whole wire image.
  double decoded_sum = 0.0;
  size_t read = 0;
  while (read < pos) {
    uint64_t bits = 0;
    int shift = 0;
    unsigned char byte;
    do {
      byte = out[read++];
      bits |= static_cast<uint64_t>(byte & 0x7f) << shift;
      shift += 7;
    } while ((byte & 0x80) != 0 && shift < 64);
    bits = ByteSwap(bits);
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    decoded_sum += value;
  }
  volatile double sink = decoded_sum;
  (void)sink;
}

}  // namespace internal
}  // namespace freeway
