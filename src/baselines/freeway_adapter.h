#ifndef FREEWAYML_BASELINES_FREEWAY_ADAPTER_H_
#define FREEWAYML_BASELINES_FREEWAY_ADAPTER_H_

#include <memory>

#include "baselines/streaming_learner.h"
#include "core/learner.h"

namespace freeway {

/// Adapts the FreewayML Learner to the StreamingLearner facade so the
/// prequential evaluator and performance harness can drive it alongside the
/// baselines. Inference and training share one shift assessment per batch,
/// so PrequentialStep maps to Learner::InferThenTrain.
class FreewayAdapter : public StreamingLearner {
 public:
  FreewayAdapter(const Model& prototype, const LearnerOptions& options = {});

  std::string name() const override { return "FreewayML"; }
  Result<Matrix> PredictProba(const Matrix& x) override;
  Status Train(const Batch& batch) override;
  Result<std::vector<int>> PrequentialStep(const Batch& batch) override;

  Learner* mutable_learner() { return &learner_; }
  const Learner& learner() const { return learner_; }
  /// Report of the last PrequentialStep / PredictProba call.
  const InferenceReport& last_report() const { return last_report_; }

 private:
  Learner learner_;
  InferenceReport last_report_;
};

}  // namespace freeway

#endif  // FREEWAYML_BASELINES_FREEWAY_ADAPTER_H_
