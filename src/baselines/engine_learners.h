#ifndef FREEWAYML_BASELINES_ENGINE_LEARNERS_H_
#define FREEWAYML_BASELINES_ENGINE_LEARNERS_H_

#include <deque>
#include <memory>
#include <vector>

#include "baselines/streaming_learner.h"
#include "ml/model.h"

namespace freeway {

/// Flink ML baseline: continuous per-batch SGD behind a watermark. Flink's
/// event-time watermarks delay processing until a batch is known complete,
/// so model updates land one batch late relative to arrival; every operator
/// boundary (de)serializes the batch. We reproduce both behaviours: the
/// update for batch t is applied when batch t+1 arrives, and every train /
/// inference call pays one serialization round-trip.
class FlinkMlLearner : public StreamingLearner {
 public:
  explicit FlinkMlLearner(std::unique_ptr<Model> model);

  std::string name() const override { return "Flink ML"; }
  Result<Matrix> PredictProba(const Matrix& x) override;
  Status Train(const Batch& batch) override;

 private:
  std::unique_ptr<Model> model_;
  std::deque<Batch> pending_;  ///< Batches behind the watermark.
  std::vector<char> wire_;
};

/// Spark MLlib baseline (StreamingLogisticRegressionWithSGD style): each
/// micro-batch is split into partitions, per-partition gradients are
/// computed and *averaged* into a single step per micro-batch. One step per
/// batch (instead of per chunk) adapts more slowly; shuffling partitions
/// costs two serialization round-trips.
class SparkMLlibLearner : public StreamingLearner {
 public:
  SparkMLlibLearner(std::unique_ptr<Model> model, size_t num_partitions = 4,
                    double learning_rate = 0.05);

  std::string name() const override { return "Spark MLlib"; }
  Result<Matrix> PredictProba(const Matrix& x) override;
  Status Train(const Batch& batch) override;

 private:
  std::unique_ptr<Model> model_;
  size_t num_partitions_;
  double learning_rate_;
  std::vector<char> wire_;
  std::vector<double> grad_accum_;
  std::vector<double> grad_scratch_;
};

/// Alink baseline: streaming logistic regression with FOBOS / RDA proximal
/// updates for stability on real-time streams (per the paper's appendix).
/// Construct it with MakeLogisticRegressionWithOptimizer(...,
/// FobosOptimizer / RdaOptimizer).
class AlinkLearner : public StreamingLearner {
 public:
  explicit AlinkLearner(std::unique_ptr<Model> model);

  std::string name() const override { return "Alink"; }
  Result<Matrix> PredictProba(const Matrix& x) override;
  Status Train(const Batch& batch) override;

 private:
  std::unique_ptr<Model> model_;
  std::vector<char> wire_;
};

}  // namespace freeway

#endif  // FREEWAYML_BASELINES_ENGINE_LEARNERS_H_
