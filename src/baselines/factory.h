#ifndef FREEWAYML_BASELINES_FACTORY_H_
#define FREEWAYML_BASELINES_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/streaming_learner.h"
#include "ml/models.h"

namespace freeway {

/// Model family used by a system under test.
enum class ModelKind {
  kLogisticRegression,
  kMlp,
  kTabularCnn,
};

const char* ModelKindName(ModelKind kind);

/// Builds the base model for a given kind.
std::unique_ptr<Model> MakeModel(ModelKind kind, size_t input_dim,
                                 size_t num_classes,
                                 const ModelConfig& config = {});

/// Builds a complete system under test by the name used in the paper's
/// tables: "Plain", "Flink ML", "Spark MLlib", "Alink", "River", "Camel",
/// "A-GEM", or "FreewayML". Returns NotFound for unknown names.
Result<std::unique_ptr<StreamingLearner>> MakeSystem(
    const std::string& system, ModelKind kind, size_t input_dim,
    size_t num_classes, const ModelConfig& config = {});

/// The paper's baseline lineup for StreamingLR (Table I, upper half).
const std::vector<std::string>& LrSystemNames();
/// The paper's baseline lineup for StreamingMLP (Table I, lower half).
const std::vector<std::string>& MlpSystemNames();

}  // namespace freeway

#endif  // FREEWAYML_BASELINES_FACTORY_H_
