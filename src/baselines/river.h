#ifndef FREEWAYML_BASELINES_RIVER_H_
#define FREEWAYML_BASELINES_RIVER_H_

#include <deque>
#include <memory>
#include <string>

#include "baselines/streaming_learner.h"
#include "detectors/drift_detectors.h"
#include "ml/model.h"

namespace freeway {

/// Options for the River baseline's drift handling.
struct RiverOptions {
  /// Batch-accuracy history length for the drift detector.
  size_t detector_window = 30;
  /// Standard deviations below the mean accuracy that raise a warning /
  /// trigger drift handling (DDM-style thresholds).
  double warning_sigmas = 2.0;
  double drift_sigmas = 3.0;
  /// Minimum absolute accuracy drops required alongside the sigma tests —
  /// guards against false positives when the history variance is tiny.
  double warning_min_drop = 0.03;
  double drift_min_drop = 0.08;
  /// Fresh-model warm-up weight ramp (batches) after a drift reset.
  size_t rampup_batches = 3;
  /// Optional classical detector ("DDM", "EDDM", "PageHinkley", "ADWIN")
  /// fed the per-batch error rate instead of the built-in sigma rule —
  /// River exposes exactly these detectors.
  std::string classical_detector;
};

/// River baseline: a lightweight streaming model paired with an
/// accuracy-based concept-drift detector and a model integrator. On a
/// warning a background model starts training alongside the deployed one;
/// on confirmed drift the background model replaces it (River's
/// detector+ensemble idiom, e.g. DDM/ADWIN with model replacement). No
/// serialization overhead: River is the lean single-process baseline.
class RiverLearner : public StreamingLearner {
 public:
  RiverLearner(std::unique_ptr<Model> model, const RiverOptions& options = {});

  std::string name() const override { return "River"; }
  Result<Matrix> PredictProba(const Matrix& x) override;
  Status Train(const Batch& batch) override;

  /// Drift resets performed so far (for tests / diagnostics).
  size_t drift_count() const { return drift_count_; }
  bool in_warning() const { return background_ != nullptr; }

 private:
  /// Reinitializes a model with fresh weights but identical architecture.
  std::unique_ptr<Model> FreshModel() const;

  std::unique_ptr<Model> prototype_;  ///< Never trained; clone source.
  std::unique_ptr<Model> model_;
  std::unique_ptr<Model> background_;
  std::unique_ptr<DriftDetector> classical_;
  RiverOptions options_;
  std::deque<double> accuracy_history_;
  size_t drift_count_ = 0;
  uint64_t reinit_counter_ = 0;
};

}  // namespace freeway

#endif  // FREEWAYML_BASELINES_RIVER_H_
