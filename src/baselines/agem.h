#ifndef FREEWAYML_BASELINES_AGEM_H_
#define FREEWAYML_BASELINES_AGEM_H_

#include <deque>
#include <memory>
#include <vector>

#include "baselines/streaming_learner.h"
#include "common/rng.h"
#include "ml/model.h"

namespace freeway {

/// Options for the A-GEM baseline.
struct AGemOptions {
  /// Episodic memory capacity (samples).
  size_t memory_capacity = 2048;
  /// Samples randomly reservoir-kept from each incoming batch.
  size_t samples_per_batch = 64;
  /// Reference-gradient sample size drawn from memory each step.
  size_t reference_size = 512;
  double learning_rate = 0.05;
  uint64_t seed = 23;
};

/// A-GEM baseline (Chaudhry et al.): constrained streaming updates. Each
/// step computes the gradient g on the new batch and a reference gradient
/// g_ref on a sample of episodic memory; when g would increase the loss on
/// memory (g . g_ref < 0), g is projected onto the half-space
/// g' = g - (g.g_ref / ||g_ref||^2) g_ref before the SGD step. The extra
/// gradient pass and projection are what make A-GEM the slowest MLP baseline
/// in the paper's performance experiments.
class AGemLearner : public StreamingLearner {
 public:
  AGemLearner(std::unique_ptr<Model> model, const AGemOptions& options = {});

  std::string name() const override { return "A-GEM"; }
  Result<Matrix> PredictProba(const Matrix& x) override;
  Status Train(const Batch& batch) override;

  size_t memory_size() const { return memory_features_.size(); }
  /// Steps on which the projection actually fired.
  size_t projections() const { return projections_; }

 private:
  std::unique_ptr<Model> model_;
  AGemOptions options_;
  Rng rng_;

  std::deque<std::vector<double>> memory_features_;
  std::deque<int> memory_labels_;

  std::vector<double> grad_;
  std::vector<double> ref_grad_;
  size_t projections_ = 0;
};

}  // namespace freeway

#endif  // FREEWAYML_BASELINES_AGEM_H_
