#ifndef FREEWAYML_BASELINES_STREAMING_LEARNER_H_
#define FREEWAYML_BASELINES_STREAMING_LEARNER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ml/model.h"
#include "stream/batch.h"

namespace freeway {

/// Uniform facade over every streaming-learning system in the evaluation —
/// the six baselines and FreewayML itself — so the prequential evaluator and
/// the performance harness can drive them identically.
class StreamingLearner {
 public:
  virtual ~StreamingLearner() = default;

  /// System name as it appears in the paper's tables ("Flink ML", ...).
  virtual std::string name() const = 0;

  /// Class probabilities for a batch of unlabeled rows.
  virtual Result<Matrix> PredictProba(const Matrix& x) = 0;

  /// Incremental update on a labeled batch.
  virtual Status Train(const Batch& batch) = 0;

  /// Argmax predictions derived from PredictProba.
  Result<std::vector<int>> Predict(const Matrix& x);

  /// One prequential (test-then-train) step: predictions made before the
  /// batch updates the system. Systems whose inference and training are
  /// coupled (FreewayML) override this.
  virtual Result<std::vector<int>> PrequentialStep(const Batch& batch);
};

/// The unmodified streaming model ("original Streaming MLP/LR" in Table II):
/// plain mini-batch SGD on every batch, no adaptation machinery.
class PlainStreamingLearner : public StreamingLearner {
 public:
  PlainStreamingLearner(std::string name, std::unique_ptr<Model> model);

  std::string name() const override { return name_; }
  Result<Matrix> PredictProba(const Matrix& x) override;
  Status Train(const Batch& batch) override;

  Model* model() { return model_.get(); }

 private:
  std::string name_;
  std::unique_ptr<Model> model_;
};

namespace internal {

/// Round-trips `features` through a contiguous byte buffer. This is the
/// honest stand-in for the (de)serialization every JVM-based stream engine
/// performs at operator boundaries; the performance baselines call it so
/// their relative overheads in the throughput/latency experiments come from
/// real work rather than sleeps.
void SerializationRoundTrip(const Matrix& features, std::vector<char>* wire);

}  // namespace internal
}  // namespace freeway

#endif  // FREEWAYML_BASELINES_STREAMING_LEARNER_H_
