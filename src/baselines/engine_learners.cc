#include "baselines/engine_learners.h"

namespace freeway {

// ---------------------------------------------------------------------------
// FlinkMlLearner
// ---------------------------------------------------------------------------

FlinkMlLearner::FlinkMlLearner(std::unique_ptr<Model> model)
    : model_(std::move(model)) {}

Result<Matrix> FlinkMlLearner::PredictProba(const Matrix& x) {
  // Two operator boundaries on the inference path (ingress + egress).
  internal::SerializationRoundTrip(x, &wire_);
  internal::SerializationRoundTrip(x, &wire_);
  return model_->PredictProba(x);
}

Status FlinkMlLearner::Train(const Batch& batch) {
  // Three operator boundaries on the training path (source -> keyed update
  // -> state backend).
  internal::SerializationRoundTrip(batch.features, &wire_);
  internal::SerializationRoundTrip(batch.features, &wire_);
  internal::SerializationRoundTrip(batch.features, &wire_);
  pending_.push_back(batch);
  // The watermark admits the previous batch once the next one arrives.
  while (pending_.size() > 1) {
    const Batch& ready = pending_.front();
    Result<double> loss = model_->TrainBatch(ready.features, ready.labels);
    if (!loss.ok()) return loss.status();
    pending_.pop_front();
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SparkMLlibLearner
// ---------------------------------------------------------------------------

SparkMLlibLearner::SparkMLlibLearner(std::unique_ptr<Model> model,
                                     size_t num_partitions,
                                     double learning_rate)
    : model_(std::move(model)),
      num_partitions_(num_partitions > 0 ? num_partitions : 1),
      learning_rate_(learning_rate) {}

Result<Matrix> SparkMLlibLearner::PredictProba(const Matrix& x) {
  // RDD ingress + result collection.
  internal::SerializationRoundTrip(x, &wire_);
  internal::SerializationRoundTrip(x, &wire_);
  return model_->PredictProba(x);
}

Status SparkMLlibLearner::Train(const Batch& batch) {
  // Micro-batch ingress, partition shuffle (both sides), and gradient
  // collection back to the driver.
  internal::SerializationRoundTrip(batch.features, &wire_);
  internal::SerializationRoundTrip(batch.features, &wire_);
  internal::SerializationRoundTrip(batch.features, &wire_);
  internal::SerializationRoundTrip(batch.features, &wire_);

  const size_t n = batch.size();
  const size_t partitions = num_partitions_ < n ? num_partitions_ : 1;
  const size_t per = (n + partitions - 1) / partitions;

  grad_accum_.assign(model_->ParameterCount(), 0.0);
  size_t used = 0;
  for (size_t p = 0; p < partitions; ++p) {
    const size_t begin = p * per;
    if (begin >= n) break;
    const size_t end = begin + per < n ? begin + per : n;
    FREEWAY_ASSIGN_OR_RETURN(Batch part, SliceBatch(batch, begin, end));
    Result<double> loss =
        model_->ComputeGradient(part.features, part.labels, &grad_scratch_);
    if (!loss.ok()) return loss.status();
    for (size_t i = 0; i < grad_accum_.size(); ++i) {
      grad_accum_[i] += grad_scratch_[i];
    }
    ++used;
  }
  if (used == 0) return Status::InvalidArgument("Spark: empty batch");

  // Single averaged-gradient SGD step per micro-batch (driver-side update).
  const double scale = -learning_rate_ / static_cast<double>(used);
  for (auto& g : grad_accum_) g *= scale;
  return model_->ApplyStep(grad_accum_);
}

// ---------------------------------------------------------------------------
// AlinkLearner
// ---------------------------------------------------------------------------

AlinkLearner::AlinkLearner(std::unique_ptr<Model> model)
    : model_(std::move(model)) {}

Result<Matrix> AlinkLearner::PredictProba(const Matrix& x) {
  internal::SerializationRoundTrip(x, &wire_);
  internal::SerializationRoundTrip(x, &wire_);
  return model_->PredictProba(x);
}

Status AlinkLearner::Train(const Batch& batch) {
  // Alink rides Flink's runtime: same three training-path boundaries.
  internal::SerializationRoundTrip(batch.features, &wire_);
  internal::SerializationRoundTrip(batch.features, &wire_);
  internal::SerializationRoundTrip(batch.features, &wire_);
  Result<double> loss = model_->TrainBatch(batch.features, batch.labels);
  return loss.ok() ? Status::OK() : loss.status();
}

}  // namespace freeway
