#include "ingest/dedup.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace freeway {

namespace {
/// 'DDUP' — section tag of a serialized watermark table.
constexpr uint32_t kTagDedup = 0x50554444;
}  // namespace

bool DedupIndex::IsDuplicate(uint64_t client_id, uint64_t sequence) const {
  if (client_id == 0 || sequence == 0) return false;
  Shard& shard = ShardOf(client_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.watermark.find(client_id);
  return it != shard.watermark.end() && sequence <= it->second;
}

void DedupIndex::Advance(uint64_t client_id, uint64_t sequence) {
  if (client_id == 0 || sequence == 0) return;
  Shard& shard = ShardOf(client_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  uint64_t& watermark = shard.watermark[client_id];
  watermark = std::max(watermark, sequence);
}

bool DedupIndex::Revert(uint64_t client_id, uint64_t sequence) {
  if (client_id == 0 || sequence == 0) return false;
  Shard& shard = ShardOf(client_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.watermark.find(client_id);
  if (it == shard.watermark.end() || it->second != sequence) return false;
  it->second = sequence - 1;
  return true;
}

uint64_t DedupIndex::Watermark(uint64_t client_id) const {
  Shard& shard = ShardOf(client_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.watermark.find(client_id);
  return it == shard.watermark.end() ? 0 : it->second;
}

size_t DedupIndex::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.watermark.size();
  }
  return total;
}

void DedupIndex::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.watermark.clear();
  }
}

void DedupIndex::SaveState(SnapshotWriter* writer) const {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    entries.insert(entries.end(), shard.watermark.begin(),
                   shard.watermark.end());
  }
  std::sort(entries.begin(), entries.end());
  writer->WriteSection(kTagDedup);
  writer->WriteU64(entries.size());
  for (const auto& [client_id, watermark] : entries) {
    writer->WriteU64(client_id);
    writer->WriteU64(watermark);
  }
}

Status DedupIndex::LoadState(SnapshotReader* reader) {
  RETURN_IF_ERROR(reader->ExpectSection(kTagDedup));
  uint64_t count = 0;
  RETURN_IF_ERROR(reader->ReadU64(&count));
  if (count * 16 > reader->remaining()) {
    return Status::InvalidArgument(
        "dedup: snapshot claims " + std::to_string(count) +
        " entries but only " + std::to_string(reader->remaining()) +
        " bytes remain");
  }
  Clear();
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t client_id = 0;
    uint64_t watermark = 0;
    RETURN_IF_ERROR(reader->ReadU64(&client_id));
    RETURN_IF_ERROR(reader->ReadU64(&watermark));
    if (client_id == 0) {
      return Status::InvalidArgument("dedup: snapshot entry for client 0");
    }
    Shard& shard = ShardOf(client_id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.watermark[client_id] = watermark;
  }
  return Status::OK();
}

}  // namespace freeway
