#ifndef FREEWAYML_INGEST_INGEST_LOG_H_
#define FREEWAYML_INGEST_INGEST_LOG_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "ingest/dedup.h"
#include "obs/metrics.h"
#include "stream/batch.h"
#include "stream/batch_codec.h"

namespace freeway {

/// Configuration of the durable ingest log.
struct IngestLogOptions {
  /// Directory all segment files live in (created on first use).
  std::string directory;
  /// A segment at or above this size is sealed and a fresh one started on
  /// the next append. Small segments make checkpoint-anchored truncation
  /// fine-grained; the 4 MiB default seals every few hundred batches.
  size_t segment_max_bytes = 4u << 20;
  /// fsync every appended record (and segment files through rotation).
  /// Off by default — the log then survives process crashes (the kernel
  /// still has the bytes) but not power loss, matching the checkpoint
  /// store's default posture.
  bool fsync = false;
  /// Open for replay only: Open() validates and indexes the existing
  /// segments but never creates, truncates, or appends — safe to point at
  /// a live server's log directory from another process.
  bool read_only = false;
  /// Observability sink for the `freeway_ingest_*` family. Null disables.
  MetricsRegistry* metrics = nullptr;
};

/// One logged submit: everything the server needs to re-run admission for
/// this batch offline (replay) or after a restart.
struct IngestRecord {
  /// Log sequence number, assigned by Append (monotone from 1).
  uint64_t lsn = 0;
  /// Exactly-once identity; both 0 for untracked (legacy) submits.
  uint64_t client_id = 0;
  uint64_t sequence = 0;
  /// SUBMIT routing fields (wire SubmitMessage).
  uint64_t stream_id = 0;
  uint32_t tenant_id = 0;
  uint8_t priority = 1;
  Batch batch;
};

/// Counters describing the log's life so far (recovery results included).
struct IngestLogStats {
  uint64_t appends = 0;
  uint64_t reverts = 0;
  uint64_t rotations = 0;
  uint64_t segments_pruned = 0;
  /// Records read back successfully by Open().
  uint64_t recovered_records = 0;
  /// Bytes cut from a torn tail by Open().
  uint64_t torn_bytes_truncated = 0;
  /// Segment files currently on disk.
  size_t segments = 0;
};

/// Durable append-only write-ahead log of admitted SUBMITs.
///
/// The log is a directory of segment files (`ingest-<base_lsn>.seg`), each
/// opened with the CheckpointStore idiom: written to a `.tmp` first and
/// renamed into place, so a reader never observes a segment without its
/// header. Segment layout:
///
///   u32 magic 'FWIG' | u32 format version | u64 base_lsn    (header)
///   u32 payload size | u32 payload CRC-32 | payload bytes   (per record)
///
/// Record payloads are batch_codec sections: a batch record ('IBAT', the
/// logged SubmitMessage plus its LSN), a revert record ('IRVT', a batch
/// whose admission was rejected *after* logging — overload — so its
/// client watermark must retreat), and a watermark snapshot ('IWMK', the
/// full DedupIndex table, written at the head of every rotated segment).
/// Because every segment starts with a watermark snapshot, recovery never
/// needs segments older than the oldest retained one: snapshot + replay
/// of the remaining records rebuilds the exact dedup state, which is what
/// makes checkpoint-anchored truncation (TruncateBefore) safe.
///
/// Open() validates every record CRC in order. A bad record in the *last*
/// segment is a torn tail (the process died mid-append): the file is
/// truncated back to the last good record and appending resumes there. A
/// bad record in any earlier segment is real corruption and fails Open —
/// sealed segments are never written again, so a tear cannot explain it.
///
/// Thread-safe: Append/AppendRevert/Rotate/TruncateBefore serialize on an
/// internal mutex (reactor workers on different connections append
/// concurrently). Replay() re-reads from disk and may run on a live log.
class IngestLog {
 public:
  explicit IngestLog(IngestLogOptions options);
  ~IngestLog();

  IngestLog(const IngestLog&) = delete;
  IngestLog& operator=(const IngestLog&) = delete;

  /// Recovers the directory: scans/validates every segment, truncates a
  /// torn tail, rebuilds `dedup` (snapshot + record replay) when non-null,
  /// and readies the newest segment for appending (read_only skips the
  /// write side). Must be called once before anything else.
  Status Open(DedupIndex* dedup);

  /// Durably appends one batch record; returns its LSN. The record's own
  /// `lsn` field is ignored (the log stamps it). This is the exactly-once
  /// commit point: callers advance the client watermark only after Append
  /// returns OK, and ACK only after that (ack-after-log).
  /// Failpoint site: "ingest.append".
  Result<uint64_t> Append(const IngestRecord& record);

  /// Appends a revert record: the batch record at `cancelled_lsn` (the
  /// value Append returned for it) was rejected at admission, so replay
  /// must skip it and recovery must not count it against the client's
  /// watermark. Returns the revert's own LSN.
  Result<uint64_t> AppendRevert(uint64_t cancelled_lsn, uint64_t client_id,
                                uint64_t sequence);

  /// Seals the active segment and starts a fresh one headed by a watermark
  /// snapshot. With `TruncateBefore(last_lsn())` right after, this is the
  /// checkpoint-anchor protocol: once every shard's checkpoint covers all
  /// admitted batches, the whole history collapses to one snapshot-only
  /// segment.
  Status Rotate();

  /// Prunes sealed segments whose records all have LSN <= `lsn` (the
  /// active segment is never pruned). Callers pass the LSN their runtime
  /// checkpoints are known to cover. `keep_sealed_segments` retains that
  /// many of the newest sealed segments past the anchor — the
  /// `ingest.retention_segments` knob, giving offline replay tooling a
  /// bounded recent-history window even under aggressive steady-state
  /// truncation.
  Status TruncateBefore(uint64_t lsn, size_t keep_sealed_segments = 0);

  /// fsyncs the active segment now (regardless of the fsync option).
  Status Sync();

  /// Replays every surviving batch record in LSN order: records cancelled
  /// by a revert are skipped, so the callback sees exactly the batches an
  /// uncrashed server admitted, in admission order. Reads from disk; works
  /// in read_only mode and on a live log.
  Status Replay(
      const std::function<Status(const IngestRecord& record)>& fn) const;

  /// LSN of the last appended record; 0 when the log is empty.
  uint64_t last_lsn() const;

  IngestLogStats stats() const;

  const IngestLogOptions& options() const { return options_; }

 private:
  struct Segment {
    uint64_t base_lsn = 0;
    std::string path;
  };

  Status OpenLocked(DedupIndex* dedup);
  /// Creates `ingest-<base_lsn>.seg` via tmp+rename (header + watermark
  /// snapshot when a dedup index is attached) and opens it for appending.
  Status StartSegmentLocked(uint64_t base_lsn);
  Status AppendPayloadLocked(const std::vector<char>& payload);
  Status RotateLocked();
  uint64_t NextLsnLocked() { return next_lsn_++; }

  IngestLogOptions options_;

  mutable std::mutex mutex_;
  bool opened_ = false;
  std::vector<Segment> segments_;
  int active_fd_ = -1;
  size_t active_size_ = 0;
  uint64_t next_lsn_ = 1;
  DedupIndex* dedup_ = nullptr;
  IngestLogStats stats_;

  /// freeway_ingest_* handles; null while options_.metrics is null.
  Counter* metric_appends_ = nullptr;
  Counter* metric_reverts_ = nullptr;
  Counter* metric_rotations_ = nullptr;
  Counter* metric_pruned_ = nullptr;
  Histogram* metric_append_bytes_ = nullptr;
  Histogram* metric_append_seconds_ = nullptr;
};

}  // namespace freeway

#endif  // FREEWAYML_INGEST_INGEST_LOG_H_
